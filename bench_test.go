// Benchmarks: one testing.B target per paper artifact. Each regenerates
// its figure at a reduced scale (Scale/Nodes options) so `go test -bench=.`
// finishes in minutes; cmd/experiments at default options reproduces the
// full-scale numbers recorded in EXPERIMENTS.md.
package sdsrp_test

import (
	"testing"

	"sdsrp"
)

// benchOptions shrinks runs while keeping every sweep point and all four
// paper policies.
func benchOptions() sdsrp.ExperimentOptions {
	return sdsrp.ExperimentOptions{
		Scale:   0.05, // 900 simulated seconds
		Nodes:   20,
		Workers: 1, // serial: the benchmark measures simulation cost
	}
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	opts := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := sdsrp.RunExperiment(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) == 0 {
			b.Fatal("no panels")
		}
	}
}

// BenchmarkTable2Scenario measures one full-parameter Table II run
// (the paper's baseline configuration, SDSRP policy).
func BenchmarkTable2Scenario(b *testing.B) {
	sc := sdsrp.RandomWaypointScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sdsrp.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Scenario measures one full-parameter Table III run
// (200-taxi EPFL substitute, SDSRP policy).
func BenchmarkTable3Scenario(b *testing.B) {
	sc := sdsrp.EPFLScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sdsrp.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 3: intermeeting-time distributions (both mobility scenarios).
func BenchmarkFig3Intermeeting(b *testing.B) { benchExperiment(b, "fig3") }

// Fig. 4: the priority curve (pure math; no simulation).
func BenchmarkFig4PriorityCurve(b *testing.B) { benchExperiment(b, "fig4") }

// Fig. 8 (a)–(c): RWP metrics vs initial copies.
func BenchmarkFig8Copies(b *testing.B) { benchExperiment(b, "fig8copies") }

// Fig. 8 (d)–(f): RWP metrics vs buffer size.
func BenchmarkFig8Buffer(b *testing.B) { benchExperiment(b, "fig8buffer") }

// Fig. 8 (g)–(i): RWP metrics vs message generation rate.
func BenchmarkFig8Rate(b *testing.B) { benchExperiment(b, "fig8rate") }

// Fig. 9 (a)–(c): EPFL metrics vs initial copies.
func BenchmarkFig9Copies(b *testing.B) { benchExperiment(b, "fig9copies") }

// Fig. 9 (d)–(f): EPFL metrics vs buffer size.
func BenchmarkFig9Buffer(b *testing.B) { benchExperiment(b, "fig9buffer") }

// Fig. 9 (g)–(i): EPFL metrics vs message generation rate.
func BenchmarkFig9Rate(b *testing.B) { benchExperiment(b, "fig9rate") }

// DESIGN.md §8 ablations.
func BenchmarkAblationRate(b *testing.B)     { benchExperiment(b, "ablation-rate") }
func BenchmarkAblationDropList(b *testing.B) { benchExperiment(b, "ablation-droplist") }
func BenchmarkAblationTaylor(b *testing.B)   { benchExperiment(b, "ablation-taylor") }
func BenchmarkAblationOracle(b *testing.B)   { benchExperiment(b, "ablation-oracle") }
