// Benchmarks: one testing.B target per paper artifact. Targets that overlap
// the dtnbench regression suite (internal/bench) run the suite's own case
// definitions, so `go test -bench` and `dtnbench` measure identical work;
// the remaining figure benchmarks use the suite's shared reduced-scale
// options. cmd/experiments at default options reproduces the full-scale
// numbers recorded in EXPERIMENTS.md, and PERFORMANCE.md documents how these
// numbers relate to the BENCH_<n>.json reports.
package sdsrp_test

import (
	"path/filepath"
	"testing"

	"sdsrp"
	"sdsrp/internal/bench"
)

// benchSuiteCase runs one internal/bench suite case under testing.B. The
// case's Run closure is exactly what dtnbench measures, so ns/op and
// allocs/op here track the committed BENCH_<n>.json numbers.
func benchSuiteCase(b *testing.B, name string) {
	b.Helper()
	var found *bench.Case
	for _, c := range bench.Suite() {
		if c.Name == name {
			found = &c
			break
		}
	}
	if found == nil {
		b.Fatalf("suite case %q not found", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := found.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExperiment measures a sweep not covered by the regression suite,
// using the suite's shared reduced-scale options for comparability.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := sdsrp.RunExperiment(name, bench.BenchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) == 0 {
			b.Fatal("no panels")
		}
	}
}

// BenchmarkSmoke measures the suite's golden smoke scenario (the same run
// pinned byte-for-byte by internal/bench's golden-trace test).
func BenchmarkSmoke(b *testing.B) { benchSuiteCase(b, "smoke") }

// BenchmarkTable2Scenario measures one full-parameter Table II run
// (the paper's baseline configuration, SDSRP policy).
func BenchmarkTable2Scenario(b *testing.B) { benchSuiteCase(b, "table2") }

// BenchmarkTable3Scenario measures one full-parameter Table III run
// (200-taxi EPFL substitute, SDSRP policy).
func BenchmarkTable3Scenario(b *testing.B) { benchSuiteCase(b, "table3") }

// BenchmarkDenseScan measures the suite's contact-detection showcase: 400
// traffic-free nodes spread over 15×12 km, where scanning is the whole cost
// and the motion-bounded lazy sweep parks almost every pair.
func BenchmarkDenseScan(b *testing.B) { benchSuiteCase(b, "densescan") }

// BenchmarkDenseScanNaive runs the identical workload with the naive
// per-tick scanner — the denominator of the lazy sweep's speedup. The two
// runs produce byte-identical event streams (internal/world's differential
// test), so the delta is pure scanning cost.
func BenchmarkDenseScanNaive(b *testing.B) {
	sc := bench.DenseScanScenario()
	sc.ScanMode = "naive"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := sdsrp.Build(sc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseScanKinetic runs the densescan workload under the kinetic
// per-node planner — the same event stream again, measuring where the
// crossover between per-pair and per-node bookkeeping sits at 400 nodes
// (PERFORMANCE.md §7 tabulates it).
func BenchmarkDenseScanKinetic(b *testing.B) {
	sc := bench.DenseScanScenario()
	sc.ScanMode = "kinetic"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := sdsrp.Build(sc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScan100k measures the suite's large-fleet case: 100k nodes under
// the kinetic scanner, the scale the lazy planner cannot represent at all.
func BenchmarkScan100k(b *testing.B) { benchSuiteCase(b, "scan100k") }

// Fig. 3: intermeeting-time distributions (both mobility scenarios).
func BenchmarkFig3Intermeeting(b *testing.B) { benchExperiment(b, "fig3") }

// Fig. 4: the priority curve (pure math; no simulation).
func BenchmarkFig4PriorityCurve(b *testing.B) { benchExperiment(b, "fig4") }

// Fig. 8 (a)–(c): RWP metrics vs initial copies.
func BenchmarkFig8Copies(b *testing.B) { benchSuiteCase(b, "fig8copies") }

// Fig. 8 (d)–(f): RWP metrics vs buffer size.
func BenchmarkFig8Buffer(b *testing.B) { benchSuiteCase(b, "fig8buffer") }

// Fig. 8 (g)–(i): RWP metrics vs message generation rate.
func BenchmarkFig8Rate(b *testing.B) { benchSuiteCase(b, "fig8rate") }

// Fig. 9 (a)–(c): EPFL metrics vs initial copies.
func BenchmarkFig9Copies(b *testing.B) { benchExperiment(b, "fig9copies") }

// Fig. 9 (d)–(f): EPFL metrics vs buffer size.
func BenchmarkFig9Buffer(b *testing.B) { benchExperiment(b, "fig9buffer") }

// Fig. 9 (g)–(i): EPFL metrics vs message generation rate.
func BenchmarkFig9Rate(b *testing.B) { benchExperiment(b, "fig9rate") }

// Resilience: the suite's churn sweep from the fault-injection subsystem.
func BenchmarkResilienceChurn(b *testing.B) { benchSuiteCase(b, "resilience-churn") }

// DESIGN.md §8 ablations.
func BenchmarkAblationRate(b *testing.B)     { benchExperiment(b, "ablation-rate") }
func BenchmarkAblationDropList(b *testing.B) { benchExperiment(b, "ablation-droplist") }
func BenchmarkAblationTaylor(b *testing.B)   { benchExperiment(b, "ablation-taylor") }
func BenchmarkAblationOracle(b *testing.B)   { benchExperiment(b, "ablation-oracle") }

// BenchmarkReportWrite measures serializing a BENCH_<n>.json report. Output
// goes to b.TempDir() so benchmarking never dirties the working tree.
func BenchmarkReportWrite(b *testing.B) {
	rep := &bench.Report{
		Schema:    bench.SchemaVersion,
		Suite:     bench.SuiteVersion,
		GoVersion: "go-bench",
	}
	for _, c := range bench.Suite() {
		rep.Cases = append(rep.Cases, bench.CaseResult{
			Name: c.Name,
			Sim:  bench.Sim{Runs: 1, Events: 1000, Fingerprint: "0000000000000000"},
			Perf: bench.Perf{Iters: 2, NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1, EventsPerSec: 1},
		})
	}
	path := filepath.Join(b.TempDir(), "BENCH_bench.json")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.WriteFile(path); err != nil {
			b.Fatal(err)
		}
	}
}
