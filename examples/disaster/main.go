// Disaster models the paper's motivating disaster-response setting: search
// teams with short-range radios sweep a cordoned area (random-walk
// mobility), reporting every few seconds through a storage-starved DTN.
// It sweeps the per-device buffer from 1 MB to 4 MB and shows how SDSRP's
// scheduling-and-drop priority stretches scarce storage compared with the
// plain FIFO Spray-and-Wait.
//
//	go run ./examples/disaster
package main

import (
	"fmt"
	"log"

	"sdsrp"
	"sdsrp/internal/config"
	"sdsrp/internal/report"
)

func main() {
	base := sdsrp.RandomWaypointScenario()
	base.Name = "disaster"
	base.Area.Max.X, base.Area.Max.Y = 1800, 1500 // the cordoned zone
	// A heterogeneous response force: search teams sweeping on foot, a few
	// vehicles circling the perimeter, and static command posts acting as
	// big-buffer relays.
	base.Groups = []config.Group{
		{Name: "searchers", Count: 30, Mobility: sdsrp.Mobility{
			Kind:    config.MobilityRandomWalk,
			SpeedLo: 1, SpeedHi: 3, // on foot, over rubble
			EpochDist: 150, // sweep legs
		}},
		{Name: "vehicles", Count: 4, Mobility: sdsrp.Mobility{
			Kind:    config.MobilityRandomDirection,
			SpeedLo: 6, SpeedHi: 10, PauseLo: 10, PauseHi: 60,
		}},
		{Name: "command-posts", Count: 2, Mobility: sdsrp.Mobility{
			Kind: config.MobilityStatic,
		}, BufferBytes: 8 * sdsrp.MB},
	}
	base.Duration = 7200 // a two-hour operation
	base.TTL = 3600      // situation reports go stale after an hour
	base.GenIntervalLo, base.GenIntervalHi = 8, 15
	base.InitialCopies = 16
	base.PriorMeanIntermeeting = 3000

	buffers := []float64{1, 1.5, 2, 3, 4} // MB
	policies := []string{"SprayAndWait", "SDSRP"}

	var scs []sdsrp.Scenario
	for _, pol := range policies {
		for _, mb := range buffers {
			sc := base
			sc.PolicyName = pol
			sc.BufferBytes = int64(mb * float64(sdsrp.MB))
			scs = append(scs, sc)
		}
	}
	results, err := sdsrp.RunAll(scs, 0)
	if err != nil {
		log.Fatal(err)
	}

	mkPanel := func(id, ylabel string, get func(sdsrp.Result) float64) sdsrp.Panel {
		p := sdsrp.Panel{
			ID:     id,
			Title:  "Situation reports vs device buffer",
			XLabel: "buffer (MB)",
			YLabel: ylabel,
			X:      buffers,
		}
		for pi, pol := range policies {
			var c sdsrp.Curve
			c.Label = pol
			for bi := range buffers {
				c.Y = append(c.Y, get(results[pi*len(buffers)+bi]))
			}
			p.Curves = append(p.Curves, c)
		}
		return p
	}
	delivery := mkPanel("disaster-delivery", "delivery ratio",
		func(r sdsrp.Result) float64 { return r.DeliveryRatio })
	overhead := mkPanel("disaster-overhead", "overhead ratio",
		func(r sdsrp.Result) float64 { return r.OverheadRatio })

	fmt.Println(delivery.Markdown())
	fmt.Println(delivery.Chart(12))
	fmt.Println(overhead.Markdown())
	dGain := report.Mean(delivery.Curves[1].Y) - report.Mean(delivery.Curves[0].Y)
	oGain := report.Mean(overhead.Curves[0].Y) - report.Mean(overhead.Curves[1].Y)
	fmt.Printf("SDSRP vs FIFO across buffers: delivery %+.4f, overhead saved %+.2f\n", dGain, oGain)
	fmt.Println("With static command posts in the mix, delivery lands near parity;")
	fmt.Println("SDSRP's win here is radio economy — far fewer wasted forwards per")
	fmt.Println("delivered report, which is battery life in the field.")
}
