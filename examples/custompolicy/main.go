// Custompolicy shows how to plug a user-defined buffer-management strategy
// into the comparison harness. The example policy, "MyKnapsack", ranks
// messages by the paper's Eq. 10 utility divided by message size — the
// same value-density idea as the built-in Knapsack policy (inspired by the
// authors' EWSN 2015 follow-up, reference [11] of the paper), rebuilt here
// from scratch to demonstrate the extension API.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"sdsrp"
	"sdsrp/internal/core"
)

// knapsack scores a message by its Eq. 10 marginal delivery utility per
// megabyte of buffer it occupies.
type knapsack struct{}

func (knapsack) Name() string { return "MyKnapsack" }

func (knapsack) SendScore(v sdsrp.PolicyView, s *sdsrp.Stored) float64 {
	return knapsackScore(v, s)
}

func (knapsack) DropScore(v sdsrp.PolicyView, s *sdsrp.Stored) float64 {
	return knapsackScore(v, s)
}

func knapsackScore(v sdsrp.PolicyView, s *sdsrp.Stored) float64 {
	lambda := v.Lambda()
	if lambda <= 0 {
		return s.M.Remaining(v.Now())
	}
	u := core.Priority(v.SeenEstimate(s), v.LiveEstimate(s), s.Copies,
		s.M.Remaining(v.Now()), v.Nodes(), lambda)
	return u / (float64(s.M.Size) / 1e6)
}

func main() {
	if err := sdsrp.RegisterPolicy("MyKnapsack", func(*sdsrp.RandomStream) sdsrp.Policy {
		return knapsack{}
	}); err != nil {
		log.Fatal(err)
	}

	policies := []string{"SprayAndWait", "SDSRP", "MyKnapsack"}
	var scs []sdsrp.Scenario
	for _, pol := range policies {
		sc := sdsrp.RandomWaypointScenario()
		sc.Nodes = 40
		sc.Area.Max.X, sc.Area.Max.Y = 2800, 2200
		sc.Duration, sc.TTL = 6000, 6000
		sc.PolicyName = pol
		scs = append(scs, sc)
	}
	results, err := sdsrp.RunAll(scs, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("custom policy vs built-ins (40-node RWP, uniform 0.5 MB messages)")
	fmt.Printf("%-14s %10s %10s %10s\n", "policy", "delivery", "hopcounts", "overhead")
	for i, pol := range policies {
		r := results[i]
		fmt.Printf("%-14s %10.4f %10.3f %10.2f\n", pol, r.DeliveryRatio, r.AvgHops, r.OverheadRatio)
	}
	fmt.Println("\nWith uniform message sizes MyKnapsack ranks like SDSRP up to the")
	fmt.Println("size constant (it differs only through the dropped-list machinery")
	fmt.Println("reserved for built-ins), so the metrics land close together; the")
	fmt.Println("point is the three-line integration, not the win.")
}
