// Figures regenerates a slice of the paper's evaluation through the public
// experiment API and renders each panel three ways: markdown table, ASCII
// chart, and an SVG file under ./figures-out.
//
// The run is scaled down (-like options) so it finishes in under a minute;
// cmd/experiments reproduces the full-scale figures.
//
//	go run ./examples/figures
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sdsrp"
)

func main() {
	outDir := "figures-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	opts := sdsrp.ExperimentOptions{
		Scale: 0.15, // ~2700 simulated seconds per run
		Nodes: 40,
	}

	for _, name := range []string{"fig4", "fig8buffer"} {
		fmt.Printf("== regenerating %s (scaled) ==\n\n", name)
		panels, err := sdsrp.RunExperiment(name, opts)
		if err != nil {
			log.Fatal(err)
		}
		for i := range panels {
			p := &panels[i]
			fmt.Println(p.Markdown())
			fmt.Println(p.Chart(10))
			path := filepath.Join(outDir, p.ID+".svg")
			if err := os.WriteFile(path, []byte(p.SVG()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	fmt.Println("open the SVGs in any browser; run cmd/experiments for full scale")
}
