// Quickstart: run the paper's Table II scenario once under SDSRP and print
// the three headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdsrp"
)

func main() {
	// Start from the paper's random-waypoint preset (100 nodes, 2.5 MB
	// buffers, 0.5 MB messages every 25–35 s, TTL 300 min, L = 32)...
	sc := sdsrp.RandomWaypointScenario()

	// ...scaled down to a few seconds of wall clock for a demo.
	sc.Nodes = 40
	sc.Area.Max.X, sc.Area.Max.Y = 2800, 2200
	sc.Duration = 6000
	sc.TTL = 6000
	sc.PolicyName = "SDSRP"

	res, err := sdsrp.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SDSRP on %d-node random waypoint, %.0f simulated seconds\n",
		res.Scenario.Nodes, sc.Duration)
	fmt.Printf("  messages created   %d\n", res.Created)
	fmt.Printf("  delivery ratio     %.4f\n", res.DeliveryRatio)
	fmt.Printf("  average hopcounts  %.3f\n", res.AvgHops)
	fmt.Printf("  overhead ratio     %.3f\n", res.OverheadRatio)
	fmt.Printf("  buffer drops       %d (the congestion SDSRP manages)\n", res.PolicyDrops)
}
