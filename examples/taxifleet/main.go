// Taxifleet compares the paper's four buffer-management strategies on the
// EPFL-style taxi scenario (synthetic San Francisco fleet) — a miniature of
// the paper's Fig. 9 experiment.
//
//	go run ./examples/taxifleet
package main

import (
	"fmt"
	"log"

	"sdsrp"
)

func main() {
	policies := sdsrp.PaperPolicies()

	// One scenario per policy; everything else identical, including the
	// seed, so the fleets trace identical GPS tracks.
	var scs []sdsrp.Scenario
	for _, pol := range policies {
		sc := sdsrp.EPFLScenario()
		sc.Nodes = 80      // paper: 200 taxis; shrunk for a quick demo
		sc.Duration = 9000 // paper: 18000 s
		sc.TTL = 9000
		sc.PolicyName = pol
		scs = append(scs, sc)
	}

	results, err := sdsrp.RunAll(scs, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("EPFL-style taxi fleet, 80 cabs, 9000 s, buffer 2.5 MB, L = 32")
	fmt.Printf("%-16s %10s %10s %10s %8s\n", "policy", "delivery", "hopcounts", "overhead", "drops")
	for i, pol := range policies {
		r := results[i]
		fmt.Printf("%-16s %10.4f %10.3f %10.2f %8d\n",
			pol, r.DeliveryRatio, r.AvgHops, r.OverheadRatio, r.PolicyDrops)
	}
	fmt.Println("\nExpected shape (paper Fig. 9): SDSRP tops delivery with the")
	fmt.Println("lowest overhead; Spray-and-Wait-C trails on both.")
}
