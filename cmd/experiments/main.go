// Command experiments regenerates the paper's tables and figures.
//
// Every experiment prints its panels as a markdown table plus an ASCII
// chart; -out additionally writes per-panel TSV files for external
// plotting.
//
// Examples:
//
//	experiments -list
//	experiments -run fig8copies
//	experiments -run all -scale 0.25 -nodes 50   # quick pass
//	experiments -run fig9buffer -seeds 1,2,3 -out results/
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sdsrp"
	"sdsrp/internal/experiment"
	"sdsrp/internal/report"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment name or \"all\"")
		scale   = flag.Float64("scale", 1, "duration/TTL multiplier (<1 for quick runs)")
		nodes   = flag.Int("nodes", 0, "node-count override (0 = paper values)")
		seeds   = flag.String("seeds", "1", "comma-separated seeds to average over")
		workers = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		outDir  = flag.String("out", "", "directory for per-panel TSV files")
		svg     = flag.Bool("svg", false, "also write per-panel SVG charts (needs -out)")
		html    = flag.String("html", "", "write a single self-contained HTML report to this path")
		noChart = flag.Bool("no-chart", false, "suppress ASCII charts")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
		check   = flag.Bool("check", false, "after regenerating, verify the paper's qualitative claims (exit 1 on violation; calibrated to full scale)")
		journal = flag.String("journal", "", "record every finished run to this crash-safe JSONL manifest")
		resume  = flag.Bool("resume", false, "skip runs already journaled as done (needs -journal)")
		retries = flag.Int("retries", 0, "re-attempts per transiently failed run")
		timeout = flag.Duration("timeout", 0, "per-run wall-clock budget, e.g. 90s (0 = unbounded)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, s := range sdsrp.Experiments() {
			fmt.Printf("  %-18s %s\n", s.Name, s.Desc)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <name> or -run all")
		}
		return
	}

	opts := sdsrp.ExperimentOptions{
		Scale:      *scale,
		Nodes:      *nodes,
		Workers:    *workers,
		Retries:    *retries,
		RunTimeout: *timeout,
	}
	if *resume && *journal == "" {
		fatal("-resume needs -journal")
	}
	if *journal != "" {
		j, err := sdsrp.OpenRunJournal(*journal)
		if err != nil {
			fatal("%v", err)
		}
		defer j.Close()
		opts.Journal = j
		opts.Resume = *resume
	}

	// First SIGINT/SIGTERM drains: in-flight runs finish and are journaled,
	// unstarted runs are left for -resume. A second signal force-quits.
	//lint:invariant the signal goroutine only closes the interrupt channel, which the runner polls BETWEEN runs; it stops scheduling new runs and never touches a live engine's event stream
	interrupt := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "\nexperiments: interrupt — draining in-flight runs (interrupt again to force quit)")
		close(interrupt)
		<-sigc
		fmt.Fprintln(os.Stderr, "experiments: forced exit")
		os.Exit(130)
	}()
	opts.Interrupt = interrupt
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fatal("bad -seeds %q: %v", *seeds, err)
		}
		opts.Seeds = append(opts.Seeds, v)
	}
	if !*quiet {
		opts.ProgressStats = func(p sdsrp.ExperimentProgress) {
			var resumed string
			if p.Skipped > 0 {
				resumed = fmt.Sprintf("  (%d resumed)", p.Skipped)
			}
			if p.Done == p.Total {
				fmt.Fprintf(os.Stderr, "\r  %d/%d runs  elapsed %s%s%s\n",
					p.Done, p.Total, p.Elapsed.Round(time.Millisecond), resumed, strings.Repeat(" ", 12))
				return
			}
			fmt.Fprintf(os.Stderr, "\r  %d/%d runs  elapsed %s  eta %s%s   ",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.ETA.Round(time.Second), resumed)
		}
	}

	var names []string
	if *run == "all" {
		for _, s := range sdsrp.Experiments() {
			names = append(names, s.Name)
		}
	} else {
		names = strings.Split(*run, ",")
	}

	var sections []report.Section
	for _, name := range names {
		name = strings.TrimSpace(name)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s ==\n", name)
		}
		start := time.Now()
		panels, err := sdsrp.RunExperiment(name, opts)
		if errors.Is(err, sdsrp.ErrSweepInterrupted) {
			fmt.Fprintf(os.Stderr, "experiments: %s interrupted; finished runs are journaled", name)
			if *journal != "" {
				fmt.Fprintf(os.Stderr, " — rerun with -journal %s -resume to continue", *journal)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(130)
		}
		if err != nil {
			fatal("%s: %v", name, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		}
		if *html != "" {
			spec, _ := experiment.ByName(name)
			sections = append(sections, report.Section{Title: name, Note: spec.Desc, Panels: panels})
		}
		if *check && isCheckable(name) {
			if violations := experiment.CheckShapes(name, panels); len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintln(os.Stderr, "SHAPE VIOLATION:", v)
				}
				defer os.Exit(1)
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "  shapes OK for %s\n", name)
			}
		}
		for i := range panels {
			p := &panels[i]
			if err := p.Validate(); err != nil {
				fatal("%s: %v", name, err)
			}
			fmt.Println(p.Markdown())
			if !*noChart {
				fmt.Println(p.Chart(14))
			}
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					fatal("%v", err)
				}
				path := filepath.Join(*outDir, p.ID+".tsv")
				if err := os.WriteFile(path, []byte(p.TSV()), 0o644); err != nil {
					fatal("%v", err)
				}
				if *svg {
					spath := filepath.Join(*outDir, p.ID+".svg")
					if err := os.WriteFile(spath, []byte(p.SVG()), 0o644); err != nil {
						fatal("%v", err)
					}
				}
				if !*quiet {
					fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
				}
			}
		}
	}
	if *html != "" {
		writeHTML(*html, sections)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *html)
		}
	}
}

func isCheckable(name string) bool {
	for _, n := range experiment.CheckableFigures() {
		if n == name {
			return true
		}
	}
	return false
}

func writeHTML(path string, sections []report.Section) {
	if err := os.WriteFile(path, []byte(report.HTML("SDSRP paper reproduction", sections)), 0o644); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
