package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sdsrp/internal/msg"
	"sdsrp/internal/obs"
)

func runPaths(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paths", flag.ContinueOnError)
	msgID := fs.Int("msg", -1, "restrict to one message id (-1 = all)")
	jsonl := fs.Bool("jsonl", false, "dump full ledger records as JSONL instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := onePath(fs.Args())
	if err != nil {
		return err
	}
	ledger, _, err := foldFile(path)
	if err != nil {
		return err
	}
	var recs []*obs.MessageRecord
	if *msgID >= 0 {
		r := ledger.Record(msg.ID(*msgID))
		if r == nil {
			return fmt.Errorf("%s: no events for message %d", path, *msgID)
		}
		recs = []*obs.MessageRecord{r}
	} else {
		recs = ledger.Records()
	}
	if *jsonl {
		for _, r := range recs {
			b, err := json.Marshal(r)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(out, "%s\n", b); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range recs {
		if _, err := fmt.Fprintln(out, formatRecord(r)); err != nil {
			return err
		}
	}
	return nil
}

// formatRecord renders one provenance record on a single grep-friendly
// line.
func formatRecord(r *obs.MessageRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "msg %d %d->%d t=%s %s", r.ID, r.Source, r.Dest,
		trimFloat(r.Created), r.Fate)
	switch r.Fate {
	case obs.FateDelivered:
		fmt.Fprintf(&b, " at=%s latency=%ss hops=%d path %s",
			trimFloat(r.DeliveredAt), trimFloat(r.Latency), r.Hops, joinPath(r.Path))
	case obs.FateStranded:
		fmt.Fprintf(&b, " live=%d", r.LiveCopies)
	case obs.FateExpired, obs.FateDropped:
		if n := len(r.Removals); n > 0 {
			last := r.Removals[n-1]
			fmt.Fprintf(&b, " last=%s@node%d t=%s", last.Cause, last.Node, trimFloat(last.T))
		}
	}
	fmt.Fprintf(&b, " forwards=%d drops=%d refused=%d", len(r.Forwards),
		removalCount(r, "policy"), r.Refused)
	if r.Aborted > 0 {
		fmt.Fprintf(&b, " aborted=%d", r.Aborted)
	}
	if r.Lost > 0 {
		fmt.Fprintf(&b, " lost=%d", r.Lost)
	}
	return b.String()
}

func removalCount(r *obs.MessageRecord, cause string) int {
	n := 0
	for _, rm := range r.Removals {
		if rm.Cause == cause {
			n++
		}
	}
	return n
}

func joinPath(path []int) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, "->")
}

// trimFloat formats a float compactly ('g', shortest round-trip), matching
// the trace encoding.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
