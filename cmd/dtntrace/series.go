package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"strconv"

	"sdsrp/internal/obs"
)

// runSeries extracts the snapshot time-series as CSV: one row per snapshot
// event with aggregate occupancy columns, optionally widened to one used_<i>
// column per node for per-host congestion plots.
func runSeries(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("series", flag.ContinueOnError)
	perNode := fs.Bool("per-node", false, "append one used_<i> column per node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := onePath(fs.Args())
	if err != nil {
		return err
	}
	cw := csv.NewWriter(out)
	wroteHeader := false
	rows := 0
	err = eachEvent(path, func(ev obs.Event) error {
		if ev.Type != obs.Snapshot {
			return nil
		}
		if !wroteHeader {
			header := []string{"t", "live_msgs", "live_copies", "contacts",
				"queue", "used_total", "used_max"}
			if *perNode {
				for i := range ev.Used {
					header = append(header, "used_"+strconv.Itoa(i))
				}
			}
			if err := cw.Write(header); err != nil {
				return err
			}
			wroteHeader = true
		}
		var total, max int64
		for _, u := range ev.Used {
			total += u
			if u > max {
				max = u
			}
		}
		rec := []string{
			strconv.FormatFloat(ev.T, 'g', -1, 64),
			strconv.Itoa(ev.LiveMsgs),
			strconv.Itoa(ev.LiveCopies),
			strconv.Itoa(ev.Contacts),
			strconv.Itoa(ev.Queue),
			strconv.FormatInt(total, 10),
			strconv.FormatInt(max, 10),
		}
		if *perNode {
			for _, u := range ev.Used {
				rec = append(rec, strconv.FormatInt(u, 10))
			}
		}
		rows++
		return cw.Write(rec)
	})
	if err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if rows == 0 {
		return fmt.Errorf("%s: no snapshot events (run dtnsim with -snapshot-interval)", path)
	}
	return nil
}
