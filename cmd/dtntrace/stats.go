package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"sdsrp/internal/obs"
	"sdsrp/internal/stats"
)

// traceStats is the digest folded from one event log. The derived metrics
// replicate the collector's arithmetic exactly (integer hop sums, latency
// sums accumulated in delivery order, nearest-rank percentiles), so a
// warmup-free dtnsim run prints byte-identical numbers.
type traceStats struct {
	events    uint64
	snapshots uint64
	contacts  uint64
	created   uint64
	delivered uint64
	completed uint64
	started   uint64
	aborted   uint64
	refused   uint64
	lost      uint64
	policy    uint64
	expired   uint64

	ratio     float64
	avgHops   float64
	overhead  float64
	avgLat    float64
	medianLat float64
	p95Lat    float64

	kinds map[string]uint64
	fates map[string]int
}

func computeStats(l *obs.Ledger, m *obs.Metrics) traceStats {
	s := traceStats{
		snapshots: m.Count(obs.Snapshot),
		contacts:  m.Count(obs.ContactUp),
		created:   m.Count(obs.MessageCreated),
		delivered: m.Count(obs.MessageDelivered),
		completed: m.Count(obs.MessageForwarded) + m.Count(obs.MessageDelivered),
		started:   m.Count(obs.TransferStart),
		aborted:   m.Count(obs.TransferAbort),
		refused:   m.Count(obs.MessageRefused),
		lost:      m.Count(obs.TransferLost),
		policy:    m.Count(obs.MessageDropped),
		expired:   m.Count(obs.MessageExpired),
		kinds:     make(map[string]uint64),
		fates:     make(map[string]int),
	}
	s.events = m.Total()
	if s.created > 0 {
		s.ratio = float64(s.delivered) / float64(s.created)
	}
	var hopSum int
	var latSum float64
	var lat stats.Sampler
	for _, r := range l.Deliveries() {
		hopSum += r.Hops
		latSum += r.Latency
		lat.Add(r.Latency)
	}
	if s.delivered > 0 {
		n := float64(s.delivered)
		s.avgHops = float64(hopSum) / n
		s.avgLat = latSum / n
		s.medianLat = lat.Percentile(0.5)
		s.p95Lat = lat.Percentile(0.95)
		s.overhead = float64(s.completed-s.delivered) / n
	} else if s.completed > 0 {
		s.overhead = math.Inf(1)
	}
	for _, r := range l.Records() {
		s.fates[r.Fate]++
		for _, f := range r.Forwards {
			s.kinds[f.Kind]++
		}
	}
	return s
}

// forwardKinds is the fixed emission order for the per-kind breakdown (a
// map walk would be nondeterministic).
var forwardKinds = []string{"spray", "spray-source", "relay", "handoff"}

// fateOrder is the fixed emission order for the fate breakdown.
var fateOrder = []string{obs.FateDelivered, obs.FateDropped, obs.FateExpired, obs.FateStranded}

func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	check := fs.String("check", "", "captured dtnsim stdout to cross-check against (warmup-free runs only); exits non-zero on disagreement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := onePath(fs.Args())
	if err != nil {
		return err
	}
	ledger, metrics, err := foldFile(path)
	if err != nil {
		return err
	}
	s := computeStats(ledger, metrics)

	fmt.Fprintf(out, "events          %d (%d snapshots)\n", s.events, s.snapshots)
	fmt.Fprintf(out, "contacts        %d\n", s.contacts)
	fmt.Fprintf(out, "created         %d\n", s.created)
	fmt.Fprintf(out, "delivered       %d (ratio %.4f)\n", s.delivered, s.ratio)
	fmt.Fprintf(out, "avg hopcounts   %.3f\n", s.avgHops)
	fmt.Fprintf(out, "overhead ratio  %.3f\n", s.overhead)
	fmt.Fprintf(out, "latency         avg=%.1fs median=%.1fs p95=%.1fs\n",
		s.avgLat, s.medianLat, s.p95Lat)
	fmt.Fprintf(out, "transfers       started=%d completed=%d aborted=%d refused=%d\n",
		s.started, s.completed, s.aborted, s.refused)
	if s.lost > 0 {
		fmt.Fprintf(out, "faults          transfers lost=%d\n", s.lost)
	}
	fmt.Fprintf(out, "drops           policy=%d expired=%d\n", s.policy, s.expired)
	var kinds []string
	for _, k := range forwardKinds {
		if s.kinds[k] > 0 {
			kinds = append(kinds, fmt.Sprintf("%s=%d", k, s.kinds[k]))
		}
	}
	if len(kinds) > 0 {
		fmt.Fprintf(out, "forwards        %s\n", strings.Join(kinds, " "))
	}
	var fates []string
	for _, f := range fateOrder {
		fates = append(fates, fmt.Sprintf("%s=%d", f, s.fates[f]))
	}
	fmt.Fprintf(out, "fates           %s\n", strings.Join(fates, " "))
	if p := metrics.EvictPriority; p.Count() > 0 {
		fmt.Fprintf(out, "drop scores     n=%d min=%.3g mean=%.3g max=%.3g\n",
			p.Count(), p.Min(), p.Mean(), p.Max())
	}

	if *check != "" {
		if err := checkAgainstSim(out, s, *check); err != nil {
			return err
		}
		fmt.Fprintf(out, "check           ok: trace agrees with %s\n", *check)
	}
	return nil
}

// checkAgainstSim cross-validates the trace digest against a captured
// dtnsim stdout: every overlapping line must render identically. The drops
// line is prefix-matched because ACK purges are invisible to the trace
// (dtnsim appends acked=N).
func checkAgainstSim(out io.Writer, s traceStats, simPath string) error {
	f, err := os.Open(simPath)
	if err != nil {
		return err
	}
	defer f.Close()
	simLines := make(map[string]string) // label prefix -> full line
	labels := []string{"contacts", "created", "delivered", "avg hopcounts",
		"overhead ratio", "latency", "transfers", "drops", "faults"}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		for _, lb := range labels {
			if strings.HasPrefix(line, lb+" ") {
				simLines[lb] = line
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	type check struct {
		label  string
		want   string
		prefix bool // sim line may continue beyond want
	}
	checks := []check{
		{"contacts", fmt.Sprintf("contacts        %d", s.contacts), false},
		{"created", fmt.Sprintf("created         %d", s.created), false},
		{"delivered", fmt.Sprintf("delivered       %d (ratio %.4f)", s.delivered, s.ratio), false},
		{"avg hopcounts", fmt.Sprintf("avg hopcounts   %.3f", s.avgHops), false},
		{"overhead ratio", fmt.Sprintf("overhead ratio  %.3f", s.overhead), false},
		{"latency", fmt.Sprintf("latency         avg=%.1fs median=%.1fs p95=%.1fs",
			s.avgLat, s.medianLat, s.p95Lat), false},
		{"transfers", fmt.Sprintf("transfers       started=%d completed=%d aborted=%d refused=%d",
			s.started, s.completed, s.aborted, s.refused), false},
		{"drops", fmt.Sprintf("drops           policy=%d expired=%d", s.policy, s.expired), true},
	}
	if s.lost > 0 {
		checks = append(checks, check{"faults",
			fmt.Sprintf("faults          transfers lost=%d", s.lost), false})
	}
	var bad []string
	for _, c := range checks {
		got, ok := simLines[c.label]
		if !ok {
			// dtnsim omits the created-block when no traffic ran; only a
			// non-trivial trace expectation makes the absence an error.
			if c.want != "" && s.created > 0 {
				bad = append(bad, fmt.Sprintf("%s: missing from %s (trace says %q)", c.label, simPath, c.want))
			}
			continue
		}
		match := got == c.want
		if c.prefix {
			match = strings.HasPrefix(got, c.want)
		}
		if !match {
			bad = append(bad, fmt.Sprintf("%s:\n  sim:   %s\n  trace: %s", c.label, got, c.want))
		}
	}
	if len(bad) > 0 {
		fmt.Fprintf(out, "check           FAILED: %d disagreement(s)\n", len(bad))
		return fmt.Errorf("trace disagrees with %s:\n%s", simPath, strings.Join(bad, "\n"))
	}
	return nil
}
