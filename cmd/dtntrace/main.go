// Command dtntrace analyzes structured event logs written by dtnsim
// (-events trace.jsonl, optionally gzipped as trace.jsonl.gz).
//
// Subcommands:
//
//	dtntrace paths [-msg id] [-jsonl] trace.jsonl
//	    Reconstruct per-message provenance: custody chain of delivered
//	    messages, terminal fate (delivered/expired/dropped/stranded), and
//	    where copies died. -jsonl dumps the full ledger records.
//
//	dtntrace stats [-check sim.txt] trace.jsonl
//	    Delay/hop/drop-cause breakdowns folded from the trace. With -check,
//	    cross-validates against a captured dtnsim stdout and exits non-zero
//	    on any disagreement (the trace-smoke differential gate).
//
//	dtntrace series [-per-node] trace.jsonl
//	    Emit the snapshot time-series (buffer occupancy, live copies,
//	    active contacts, queue depth) as CSV for plotting.
//
//	dtntrace diff [-context n] a.jsonl b.jsonl
//	    Localize the first divergent event between two traces with
//	    file:line context, or report byte-identity. Exit 1 on divergence —
//	    the standing differential gate for engine/scanner changes.
package main

import (
	"fmt"
	"io"
	"os"

	"sdsrp/internal/obs"
)

const usage = `usage: dtntrace <command> [flags] <trace.jsonl[.gz]> ...

commands:
  paths    reconstruct per-message custody chains and terminal fates
  stats    delay/hop/drop-cause breakdowns (use -check to gate against dtnsim output)
  series   snapshot time-series as CSV (buffer occupancy, copies, contacts, queue)
  diff     first-divergent-event localization between two traces (exit 1 on divergence)

run 'dtntrace <command> -h' for command flags.`

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "paths":
		err = runPaths(os.Args[2:], os.Stdout)
	case "stats":
		err = runStats(os.Args[2:], os.Stdout)
	case "series":
		err = runSeries(os.Args[2:], os.Stdout)
	case "diff":
		var identical bool
		identical, err = runDiff(os.Args[2:], os.Stdout)
		if err == nil && !identical {
			os.Exit(1)
		}
	case "-h", "--help", "help":
		fmt.Println(usage)
		return
	default:
		fmt.Fprintf(os.Stderr, "dtntrace: unknown command %q\n%s\n", os.Args[1], usage)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtntrace: %v\n", err)
		os.Exit(2)
	}
}

// foldFile replays one event log into a ledger plus the count registry.
func foldFile(path string) (*obs.Ledger, *obs.Metrics, error) {
	f, err := obs.OpenLog(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	l, m, err := obs.FoldLog(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, m, nil
}

// onePath extracts the single positional trace argument.
func onePath(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("want exactly one trace file, got %d arguments", len(args))
	}
	return args[0], nil
}

// eachEvent streams a log through fn without materializing it.
func eachEvent(path string, fn func(obs.Event) error) error {
	f, err := obs.OpenLog(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := obs.NewLogReader(f)
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}
