package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"

	"sdsrp/internal/obs"
)

// lineScanner walks a trace line by line, remembering recent lines for
// divergence context.
type lineScanner struct {
	name string
	s    *bufio.Scanner
	line int
	eof  bool
	cur  string
}

func newLineScanner(path string) (*lineScanner, io.Closer, error) {
	f, err := obs.OpenLog(path)
	if err != nil {
		return nil, nil, err
	}
	s := bufio.NewScanner(f)
	s.Buffer(make([]byte, 0, 64<<10), 16<<20)
	return &lineScanner{name: path, s: s}, f, nil
}

// next advances to the following line; eof is sticky.
func (l *lineScanner) next() error {
	if l.s.Scan() {
		l.line++
		l.cur = l.s.Text()
		return nil
	}
	if err := l.s.Err(); err != nil {
		return fmt.Errorf("%s: %w", l.name, err)
	}
	l.eof = true
	l.cur = ""
	return nil
}

// runDiff compares two traces event-by-event and localizes the first
// divergence. It reports identical=true (and prints the event count) when
// the streams match byte-for-byte; otherwise it prints the first divergent
// event with n common lines of preceding context in file:line style.
func runDiff(args []string, out io.Writer) (identical bool, err error) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	context := fs.Int("context", 3, "common preceding lines of context to print on divergence")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("diff wants exactly two trace files, got %d arguments", fs.NArg())
	}
	aPath, bPath := fs.Arg(0), fs.Arg(1)
	a, ac, err := newLineScanner(aPath)
	if err != nil {
		return false, err
	}
	defer ac.Close()
	b, bc, err := newLineScanner(bPath)
	if err != nil {
		return false, err
	}
	defer bc.Close()

	n := *context
	if n < 0 {
		n = 0
	}
	recent := make([]string, 0, n) // ring of the last n common lines
	events := 0
	for {
		if err := a.next(); err != nil {
			return false, err
		}
		if err := b.next(); err != nil {
			return false, err
		}
		if a.eof && b.eof {
			fmt.Fprintf(out, "identical: %d events\n", events)
			return true, nil
		}
		if a.eof || b.eof || a.cur != b.cur {
			printDivergence(out, a, b, recent, n)
			return false, nil
		}
		events++
		if n > 0 {
			if len(recent) == n {
				copy(recent, recent[1:])
				recent = recent[:n-1]
			}
			recent = append(recent, fmt.Sprintf("%s:%d: %s", a.name, a.line, a.cur))
		}
	}
}

func printDivergence(out io.Writer, a, b *lineScanner, recent []string, n int) {
	line := a.line
	if b.line > line {
		line = b.line
	}
	fmt.Fprintf(out, "traces diverge at event %d:\n", line)
	if len(recent) > 0 {
		fmt.Fprintf(out, "common context (last %d of %d shared events):\n", len(recent), line-1)
		for _, l := range recent {
			fmt.Fprintf(out, "  %s\n", l)
		}
	}
	fmt.Fprintf(out, "first divergent event:\n")
	fmt.Fprintf(out, "  %s\n", sideLine(a))
	fmt.Fprintf(out, "  %s\n", sideLine(b))
}

func sideLine(s *lineScanner) string {
	if s.eof {
		return fmt.Sprintf("%s:%d: <end of trace>", s.name, s.line+1)
	}
	return fmt.Sprintf("%s:%d: %s", s.name, s.line, s.cur)
}
