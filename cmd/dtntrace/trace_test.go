package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sdsrp"
	"sdsrp/internal/obs"
)

// testScenario is a fast deterministic run exercising sprays, deliveries,
// policy drops, and expiries.
func testScenario(seed uint64) sdsrp.Scenario {
	sc := sdsrp.RandomWaypointScenario()
	sc.Nodes = 12
	sc.Duration = 1800
	sc.TTL = 600
	sc.Area.Max.X = 600
	sc.Area.Max.Y = 600
	sc.MessageSize = 100 * 1000
	sc.MessageSizeHi = 0
	sc.BufferBytes = 300 * 1000
	sc.Seed = seed
	return sc
}

// writeTrace runs sc with the JSONL tracer (and optional snapshot sampler)
// into path, returning the run's Result.
func writeTrace(t *testing.T, sc sdsrp.Scenario, path string, snapInterval float64) sdsrp.Result {
	t.Helper()
	w, err := sdsrp.CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	jsonl := sdsrp.NewJSONLTracer(w)
	world, err := sdsrp.Build(sc, sdsrp.WithTracer(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if snapInterval > 0 {
		if err := world.EnableSnapshots(snapInterval); err != nil {
			t.Fatal(err)
		}
	}
	res, err := world.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDiffIdenticalAcrossScanModes is the acceptance gate: naive and lazy
// contact scanning must produce byte-identical traces, and diff must say so —
// with one side gzipped to cover the transparent decompression path.
func TestDiffIdenticalAcrossScanModes(t *testing.T) {
	dir := t.TempDir()
	naive, lazy := filepath.Join(dir, "naive.jsonl"), filepath.Join(dir, "lazy.jsonl.gz")
	scN := testScenario(3)
	scN.ScanMode = "naive"
	scL := testScenario(3)
	scL.ScanMode = "lazy"
	writeTrace(t, scN, naive, 0)
	writeTrace(t, scL, lazy, 0)

	var out bytes.Buffer
	identical, err := runDiff([]string{naive, lazy}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Fatalf("scan modes diverge:\n%s", out.String())
	}
	if !strings.HasPrefix(out.String(), "identical: ") {
		t.Fatalf("diff output = %q", out.String())
	}
	var n int
	if _, err := fmt.Sscanf(out.String(), "identical: %d events", &n); err != nil || n == 0 {
		t.Fatalf("diff reported %q, want a positive event count", out.String())
	}
}

// TestDiffLocalizesDivergence pins the failure mode: different seeds must
// diverge, and the report must carry file:line context.
func TestDiffLocalizesDivergence(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	writeTrace(t, testScenario(3), a, 0)
	writeTrace(t, testScenario(4), b, 0)

	var out bytes.Buffer
	identical, err := runDiff([]string{"-context", "2", a, b}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if identical {
		t.Fatal("different seeds reported identical")
	}
	got := out.String()
	if !strings.Contains(got, "traces diverge at event ") {
		t.Fatalf("missing divergence header:\n%s", got)
	}
	// Both sides of the divergence must be cited in file:line style.
	for _, path := range []string{a, b} {
		if !strings.Contains(got, path+":") {
			t.Errorf("report does not cite %s:<line>:\n%s", path, got)
		}
	}
}

// TestDiffEOFDivergence: a truncated trace diverges at end-of-file, not with
// a spurious content mismatch.
func TestDiffEOFDivergence(t *testing.T) {
	dir := t.TempDir()
	full, cut := filepath.Join(dir, "full.jsonl"), filepath.Join(dir, "cut.jsonl")
	writeTrace(t, testScenario(3), full, 0)
	data, err := readFileLines(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 10 {
		t.Fatalf("trace too short: %d lines", len(data))
	}
	if err := writeFileLines(cut, data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	identical, err := runDiff([]string{full, cut}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if identical {
		t.Fatal("truncated trace reported identical")
	}
	if !strings.Contains(out.String(), "<end of trace>") {
		t.Fatalf("EOF divergence not flagged:\n%s", out.String())
	}
}

// TestStatsCheckAgainstSim is the trace-smoke invariant in miniature: fold
// the trace, render dtnsim's stat lines from the run's own Result, and the
// -check comparison must pass. Warmup-free, so every counter and float must
// agree bit-for-bit.
func TestStatsCheckAgainstSim(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl.gz")
	res := writeTrace(t, testScenario(3), trace, 0)
	if res.Created == 0 || res.Delivered == 0 {
		t.Fatalf("degenerate run: created=%d delivered=%d", res.Created, res.Delivered)
	}
	simOut := filepath.Join(dir, "sim.txt")
	if err := writeFileLines(simOut, renderSimStats(res)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runStats([]string{"-check", simOut, trace}, &out); err != nil {
		t.Fatalf("stats -check failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "check           ok") {
		t.Fatalf("missing check-ok line:\n%s", out.String())
	}
	// And a deliberately corrupted sim capture must be rejected.
	bad := filepath.Join(dir, "bad.txt")
	lines := renderSimStats(res)
	lines[1] = "created         99999"
	if err := writeFileLines(bad, lines); err != nil {
		t.Fatal(err)
	}
	if err := runStats([]string{"-check", bad, trace}, &bytes.Buffer{}); err == nil {
		t.Fatal("corrupted sim stats passed the check")
	}
}

// TestStatsCheckOnParallelTrace re-runs the collector-arithmetic gate on a
// sharded-scan trace (DESIGN.md §13): the parallel engine must produce a
// trace dtntrace can fold back into the exact printed summary, and that
// trace must be byte-identical to the serial run's. The run must actually
// have sharded (shard windows > 0), or the test degenerates to
// serial-vs-serial.
func TestStatsCheckOnParallelTrace(t *testing.T) {
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.jsonl")
	parallel := filepath.Join(dir, "parallel.jsonl.gz")
	writeTrace(t, testScenario(3), serial, 0)
	scP := testScenario(3)
	scP.Workers = 2
	resP := writeTrace(t, scP, parallel, 0)
	if resP.Perf.ShardWindows == 0 {
		t.Fatalf("workers=2 run fell back to serial (perf %+v)", resP.Perf)
	}

	var out bytes.Buffer
	identical, err := runDiff([]string{serial, parallel}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Fatalf("parallel trace diverges from serial:\n%s", out.String())
	}

	simOut := filepath.Join(dir, "sim.txt")
	if err := writeFileLines(simOut, renderSimStats(resP)); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runStats([]string{"-check", simOut, parallel}, &out); err != nil {
		t.Fatalf("stats -check failed on parallel trace: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "check           ok") {
		t.Fatalf("missing check-ok line:\n%s", out.String())
	}
}

// renderSimStats formats a Result exactly as dtnsim's summary printf block
// does.
func renderSimStats(res sdsrp.Result) []string {
	lines := []string{
		fmt.Sprintf("contacts        %d", res.Contacts),
		fmt.Sprintf("created         %d", res.Created),
		fmt.Sprintf("delivered       %d (ratio %.4f)", res.Delivered, res.DeliveryRatio),
		fmt.Sprintf("avg hopcounts   %.3f", res.AvgHops),
		fmt.Sprintf("overhead ratio  %.3f", res.OverheadRatio),
		fmt.Sprintf("latency         avg=%.1fs median=%.1fs p95=%.1fs",
			res.AvgLatency, res.MedianLatency, res.P95Latency),
		fmt.Sprintf("transfers       started=%d completed=%d aborted=%d refused=%d",
			res.Started, res.Forwards, res.Aborted, res.Refused),
	}
	if res.Lost > 0 {
		lines = append(lines, fmt.Sprintf("faults          transfers lost=%d", res.Lost))
	}
	lines = append(lines, fmt.Sprintf("drops           policy=%d expired=%d acked=%d",
		res.PolicyDrops, res.ExpiredDrops, res.AckPurges))
	return lines
}

// TestSeriesCSVShape checks the snapshot CSV: header, row cadence, per-node
// widening, and the no-snapshots error.
func TestSeriesCSVShape(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "snap.jsonl")
	sc := testScenario(3)
	writeTrace(t, sc, trace, 300)

	var out bytes.Buffer
	if err := runSeries([]string{trace}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "t,live_msgs,live_copies,contacts,queue,used_total,used_max" {
		t.Fatalf("header = %q", lines[0])
	}
	wantRows := int(sc.Duration / 300)
	if len(lines)-1 != wantRows {
		t.Fatalf("got %d rows, want %d", len(lines)-1, wantRows)
	}
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != 6 {
			t.Fatalf("row %q has %d commas, want 6", l, n)
		}
	}

	var per bytes.Buffer
	if err := runSeries([]string{"-per-node", trace}, &per); err != nil {
		t.Fatal(err)
	}
	perHeader := strings.SplitN(per.String(), "\n", 2)[0]
	wantCols := 7 + sc.Nodes
	if got := len(strings.Split(perHeader, ",")); got != wantCols {
		t.Fatalf("per-node header has %d columns, want %d: %q", got, wantCols, perHeader)
	}
	if !strings.Contains(perHeader, ",used_0,") || !strings.HasSuffix(perHeader, "used_"+strconv.Itoa(sc.Nodes-1)) {
		t.Fatalf("per-node header = %q", perHeader)
	}

	// A snapshot-less trace is an explicit error, not empty CSV.
	bare := filepath.Join(dir, "bare.jsonl")
	writeTrace(t, testScenario(3), bare, 0)
	if err := runSeries([]string{bare}, &bytes.Buffer{}); err == nil {
		t.Fatal("snapshot-less trace produced CSV silently")
	}
}

// TestPathsInvariants folds a real trace and checks every reconstructed
// record satisfies the provenance algebra.
func TestPathsInvariants(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	res := writeTrace(t, testScenario(3), trace, 0)
	ledger, _, err := foldFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	recs := ledger.Records()
	if len(recs) != res.Created {
		t.Fatalf("ledger has %d records, run created %d", len(recs), res.Created)
	}
	delivered := 0
	for _, r := range recs {
		switch r.Fate {
		case obs.FateDelivered:
			delivered++
			if len(r.Path) < 2 {
				t.Fatalf("msg %d: delivered with path %v", r.ID, r.Path)
			}
			if r.Path[0] != r.Source || r.Path[len(r.Path)-1] != r.Dest {
				t.Fatalf("msg %d: path %v does not run %d→%d", r.ID, r.Path, r.Source, r.Dest)
			}
			if len(r.Path)-1 != r.Hops {
				t.Fatalf("msg %d: path %v inconsistent with hops %d", r.ID, r.Path, r.Hops)
			}
			if r.Latency != r.DeliveredAt-r.Created {
				t.Fatalf("msg %d: latency %v != %v - %v", r.ID, r.Latency, r.DeliveredAt, r.Created)
			}
		case obs.FateStranded:
			if r.LiveCopies == 0 {
				t.Fatalf("msg %d: stranded with zero live copies", r.ID)
			}
		case obs.FateDropped, obs.FateExpired:
			if r.LiveCopies != 0 {
				t.Fatalf("msg %d: %s with %d live copies", r.ID, r.Fate, r.LiveCopies)
			}
		default:
			t.Fatalf("msg %d: unknown fate %q", r.ID, r.Fate)
		}
	}
	if delivered != res.Delivered {
		t.Fatalf("ledger fates count %d deliveries, run had %d", delivered, res.Delivered)
	}

	// The text renderer covers every record on one line each.
	var out bytes.Buffer
	if err := runPaths([]string{trace}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\n"); got != len(recs) {
		t.Fatalf("paths printed %d lines, want %d", got, len(recs))
	}
	// And -msg restricts to a single record.
	var one bytes.Buffer
	if err := runPaths([]string{"-msg", "1", trace}, &one); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(one.String(), "\n"); got != 1 {
		t.Fatalf("paths -msg 1 printed %d lines, want 1", got)
	}
	if !strings.HasPrefix(one.String(), "msg 1 ") {
		t.Fatalf("paths -msg 1 = %q", one.String())
	}
}

func readFileLines(path string) ([]string, error) {
	r, err := obs.OpenLog(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n"), nil
}

func writeFileLines(path string, lines []string) error {
	w, err := obs.CreateLog(path)
	if err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
