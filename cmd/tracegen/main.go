// Command tracegen emits a synthetic San Francisco taxi trace in the
// CRAWDAD epfl/mobility ("cabspotting") file format — one new_<id>.txt per
// cab — so the simulator's trace-replay path (dtnsim -trace-dir) can be
// exercised without the licensed dataset.
//
// Example:
//
//	tracegen -out /tmp/sfcabs -nodes 200 -duration 18000
//	dtnsim -scenario epfl -trace-dir /tmp/sfcabs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sdsrp/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory (required)")
		nodes    = flag.Int("nodes", 200, "number of cabs")
		duration = flag.Float64("duration", 18000, "trace length in seconds")
		interval = flag.Float64("interval", 30, "GPS fix period in seconds")
		seed     = flag.Uint64("seed", 1, "random seed")
		epoch    = flag.Int64("epoch", 1_211_000_000, "unix time of t=0 (the real dataset is from 2008)")
		format   = flag.String("format", "cab", "output format: cab (one cabspotting file per cab) or one (single ONE external-movement file)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out is required")
		os.Exit(1)
	}

	cfg := trace.DefaultSynthesizeConfig()
	cfg.Nodes = *nodes
	cfg.Duration = *duration
	cfg.SampleInterval = *interval
	cfg.Seed = *seed

	fleet := trace.Synthesize(cfg)

	if *format == "one" {
		if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil && filepath.Dir(*out) != "." {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteONE(f, fleet); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote ONE movement trace for %d cabs to %s\n", fleet.Nodes(), *out)
		return
	}

	cabs := fleet.ToSamples(trace.SanFrancisco, *epoch)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for i, samples := range cabs {
		path := filepath.Join(*out, fmt.Sprintf("new_cab%03d.txt", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteCab(f, samples); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d cab files (%.0fs at %.0fs fixes) to %s\n",
		len(cabs), *duration, *interval, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
