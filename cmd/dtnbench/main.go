// Command dtnbench runs the reproducible performance-regression suite
// (internal/bench) and emits a byte-stable BENCH_<n>.json report, optionally
// gated against a previous report.
//
// Usage:
//
//	dtnbench -list
//	dtnbench -out BENCH_4.json
//	dtnbench -out BENCH_4.json -baseline BENCH_3.json -max-regress 10
//	dtnbench -smoke -out /tmp/smoke.json
//
// Exit codes: 0 success, 1 regression gate failed (ns/op worse than
// -max-regress percent, a case's sim digest changed, or a baseline case
// vanished), 2 usage or runtime error.
//
// The suite and its reading are documented in PERFORMANCE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdsrp/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out        = flag.String("out", "", "write the BENCH_<n>.json report to this path")
		baseline   = flag.String("baseline", "", "previous BENCH_<n>.json to diff and gate against")
		maxRegress = flag.Float64("max-regress", 10, "fail (exit 1) when any case's ns/op regresses more than this percent")
		cases      = flag.String("cases", "", "comma-separated case names to run (default: all; see -list)")
		iters      = flag.Int("iters", 3, "measured iterations per case (min 2; the extra iterations double as a determinism check)")
		smoke      = flag.Bool("smoke", false, "run only the smoke cases (shorthand for -cases smoke,smoke-mc)")
		list       = flag.Bool("list", false, "list suite cases and exit")
		quiet      = flag.Bool("quiet", false, "suppress per-case progress on stderr")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dtnbench: unexpected argument %q\n", flag.Arg(0))
		return 2
	}

	if *list {
		for _, c := range bench.Suite() {
			fmt.Printf("%-18s %s\n", c.Name, c.Desc)
		}
		return 0
	}

	cfg := bench.Config{Iters: *iters}
	if *smoke {
		// The -mc twin rides along so CI's digest gate also certifies the
		// sharded parallel scan against the committed baseline.
		cfg.Cases = []string{"smoke", "smoke-mc"}
	} else if *cases != "" {
		for _, n := range strings.Split(*cases, ",") {
			if n = strings.TrimSpace(n); n != "" {
				cfg.Cases = append(cfg.Cases, n)
			}
		}
	}
	if !*quiet {
		cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "dtnbench:", msg) }
	}

	rep, err := bench.RunSuite(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtnbench:", err)
		return 2
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "dtnbench:", err)
			return 2
		}
		if !*quiet {
			fmt.Fprintln(os.Stderr, "dtnbench: wrote", *out)
		}
	} else if *baseline == "" {
		// No report file and no baseline: print the report itself.
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dtnbench:", err)
			return 2
		}
	}

	if *baseline != "" {
		base, err := bench.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtnbench:", err)
			return 2
		}
		if base.Suite != rep.Suite {
			fmt.Fprintf(os.Stderr, "dtnbench: baseline suite %q != current suite %q — not comparable\n", base.Suite, rep.Suite)
			return 2
		}
		if len(cfg.Cases) > 0 {
			// The run was filtered: restrict the baseline to the selection so
			// deliberately skipped cases are not reported as missing.
			filtered := *base
			filtered.Cases = nil
			for _, c := range base.Cases {
				for _, want := range cfg.Cases {
					if c.Name == want {
						filtered.Cases = append(filtered.Cases, c)
						break
					}
				}
			}
			base = &filtered
		}
		deltas := bench.Compare(base, rep)
		fmt.Print(bench.FormatDeltas(deltas, *maxRegress))
		if regs := bench.Regressions(deltas, *maxRegress); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "dtnbench: %d case(s) failed the regression gate (max %+.1f%% ns/op)\n", len(regs), *maxRegress)
			return 1
		}
		fmt.Fprintln(os.Stderr, "dtnbench: gate passed")
	}
	return 0
}
