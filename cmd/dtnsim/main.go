// Command dtnsim runs a single DTN simulation scenario and prints the
// headline metrics.
//
// Examples:
//
//	dtnsim                                   # Table II preset, SDSRP
//	dtnsim -scenario epfl -policy SprayAndWait-O
//	dtnsim -copies 64 -buffer 2.0 -gen 10,15 -seed 3
//	dtnsim -trace-dir /data/cabspottingdata  # replay real cabspotting files
//	dtnsim -intermeeting                     # traffic-free Fig. 3 measurement
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"sdsrp"
	"sdsrp/internal/config"
	"sdsrp/internal/trace"
	"sdsrp/internal/world"
)

func main() {
	var (
		scenario         = flag.String("scenario", "rwp", "preset: rwp (Table II) or epfl (Table III)")
		policy           = flag.String("policy", "SDSRP", "buffer policy: SprayAndWait, SprayAndWait-O, SprayAndWait-C, SDSRP, SDSRP-Taylor<k>, OracleUtility, Random, MOFO, LIFO")
		protocol         = flag.String("protocol", "spray-and-wait", "routing protocol: spray-and-wait, spray-and-wait-source, epidemic, direct, spray-and-focus")
		copies           = flag.Int("copies", 0, "initial copies L (0 = preset)")
		bufferMB         = flag.Float64("buffer", 0, "buffer size in MB (0 = preset)")
		gen              = flag.String("gen", "", "generation interval \"lo,hi\" seconds (empty = preset, \"off\" disables)")
		duration         = flag.Float64("duration", 0, "simulation seconds (0 = preset)")
		nodes            = flag.Int("nodes", 0, "node count (0 = preset)")
		seed             = flag.Uint64("seed", 1, "random seed")
		traceDir         = flag.String("trace-dir", "", "directory of cabspotting files (replaces synthetic mobility)")
		oneTrace         = flag.String("one-trace", "", "ONE external-movement file (replaces synthetic mobility)")
		contactTrace     = flag.String("contact-trace", "", "replay a recorded contact trace (\"a b start end\" lines; replaces mobility)")
		exportContacts   = flag.String("export-contacts", "", "record the run's contacts and write them as a replayable trace")
		inter            = flag.Bool("intermeeting", false, "record intermeeting times (disables traffic, prints Fig. 3 stats)")
		ttl              = flag.Float64("ttl", 0, "message TTL seconds (0 = preset)")
		oracleRate       = flag.Float64("oracle-rate", 0, "fixed mean intermeeting time (0 = distributed estimator)")
		noDropList       = flag.Bool("no-droplist", false, "disable SDSRP's dropped-list gossip")
		acks             = flag.Bool("acks", false, "enable the ACK/immunization extension")
		energyCap        = flag.Float64("energy", 0, "battery capacity in joules (0 = unlimited; drains 0.5 J/s scanning, 15/10 J/s radio)")
		warmup           = flag.Float64("warmup", 0, "exclude messages created before this time from metrics")
		configIn         = flag.String("config", "", "load scenario from a JSON file (flags below still override)")
		configOut        = flag.String("save-config", "", "write the effective scenario as JSON and exit")
		fatesOut         = flag.String("fates", "", "write per-message outcome CSV to this path")
		timelineOut      = flag.String("timeline", "", "write periodic run snapshots as CSV to this path")
		timelineInterval = flag.Float64("timeline-interval", 60, "snapshot period in seconds for -timeline")
		eventsOut        = flag.String("events", "", "write the structured lifecycle event log (JSONL) to this path (.gz = gzip)")
		snapInterval     = flag.Float64("snapshot-interval", 0, "emit a snapshot event into the event log every N sim-seconds (0 = off; needs -events)")
		profileOut       = flag.String("profile", "", "write a CPU profile of the run to this path")
		scanMode         = flag.String("scan", "", "connectivity scan strategy: lazy (default), kinetic, or naive; all are byte-identical")
		cellSize         = flag.Float64("cell-size", 0, "scan grid cell edge in metres (0 = radio range; must be >= range)")
		workers          = flag.Int("workers", 0, "sharded parallel scan goroutines (0/1 = serial; traces are byte-identical at any count)")
		maxEvents        = flag.Uint64("max-events", 0, "stop the run after this many engine events and report partial metrics (0 = unbounded)")
	)
	flag.Parse()

	var sc sdsrp.Scenario
	if *configIn != "" {
		var err error
		sc, err = config.Load(*configIn)
		if err != nil {
			fatal("%v", err)
		}
	} else {
		switch *scenario {
		case "rwp":
			sc = sdsrp.RandomWaypointScenario()
		case "epfl":
			sc = sdsrp.EPFLScenario()
		default:
			fatal("unknown scenario %q (want rwp or epfl)", *scenario)
		}
	}
	// With -config, flags only override when explicitly set on the command
	// line; otherwise their defaults apply on top of the chosen preset.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	fromPreset := *configIn == ""
	if fromPreset || set["seed"] {
		sc.Seed = *seed
	}
	if fromPreset || set["policy"] {
		sc.PolicyName = *policy
	}
	if fromPreset || set["protocol"] {
		sc.ProtocolName = *protocol
	}
	if fromPreset || set["no-droplist"] {
		sc.DisableDropList = *noDropList
	}
	if fromPreset || set["oracle-rate"] {
		sc.OracleRateMean = *oracleRate
	}
	if *copies > 0 {
		sc.InitialCopies = *copies
	}
	if *bufferMB > 0 {
		sc.BufferBytes = int64(*bufferMB * float64(config.MB))
	}
	if *duration > 0 {
		sc.Duration = *duration
	}
	if *ttl > 0 {
		sc.TTL = *ttl
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
	}
	if *traceDir != "" {
		sc.Mobility = sdsrp.Mobility{Kind: config.MobilityTraceDir, TraceDir: *traceDir}
	}
	if *oneTrace != "" {
		sc.Mobility = sdsrp.Mobility{Kind: config.MobilityONEFile, TraceFile: *oneTrace}
	}
	if *contactTrace != "" {
		sc.ContactTraceFile = *contactTrace
	}
	if *exportContacts != "" {
		sc.RecordContacts = true
	}
	switch {
	case *gen == "off":
		sc.GenIntervalLo = 0
	case *gen != "":
		var lo, hi float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(*gen, ",", " "), "%f %f", &lo, &hi); err != nil {
			fatal("bad -gen %q: want \"lo,hi\"", *gen)
		}
		sc.GenIntervalLo, sc.GenIntervalHi = lo, hi
	}
	if *inter {
		sc.GenIntervalLo = 0
		sc.RecordIntermeeting = true
	}
	if *acks {
		sc.UseAcks = true
	}
	if *warmup > 0 {
		sc.Warmup = *warmup
	}
	if *scanMode != "" {
		sc.ScanMode = *scanMode
	}
	if *cellSize > 0 {
		sc.CellSize = *cellSize
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *energyCap > 0 {
		sc.Energy = config.Energy{Capacity: *energyCap, ScanPerSec: 0.5, TxPerSec: 15, RxPerSec: 10}
	}
	if *maxEvents > 0 {
		sc.MaxEvents = *maxEvents
	}
	if *configOut != "" {
		if err := config.Save(sc, *configOut); err != nil {
			fatal("%v", err)
		}
		fmt.Println("wrote", *configOut)
		return
	}

	var events io.WriteCloser
	var jsonl *sdsrp.JSONLTracer
	var buildOpts []sdsrp.BuildOption
	if *eventsOut != "" {
		var err error
		events, err = sdsrp.CreateEventLog(*eventsOut)
		if err != nil {
			fatal("%v", err)
		}
		jsonl = sdsrp.NewJSONLTracer(events)
		buildOpts = append(buildOpts, sdsrp.WithTracer(jsonl))
	}
	w, err := sdsrp.Build(sc, buildOpts...)
	if err != nil {
		fatal("%v", err)
	}
	if *snapInterval > 0 {
		if err := w.EnableSnapshots(*snapInterval); err != nil {
			fatal("%v", err)
		}
	}
	if *timelineOut != "" {
		if err := w.EnableTimeline(*timelineInterval); err != nil {
			fatal("%v", err)
		}
	}
	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("%v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal("%v", err)
			}
		}()
	}
	res, err := w.Run()
	var budget *world.BudgetError
	if errors.As(err, &budget) {
		// A budget stop is a deliberate, deterministic cutoff: report how
		// far the run got and print the (partial) metrics below.
		fmt.Printf("budget          exceeded: %d events dispatched (max %d), stopped at sim time %.1fs of %.0fs\n",
			budget.Events, budget.MaxEvents, budget.SimTime, sc.Duration)
	} else if err != nil {
		fatal("%v", err)
	}
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			fatal("%v", err)
		}
		if err := events.Close(); err != nil {
			fatal("%v", err)
		}
	}
	if *exportContacts != "" {
		f, err := os.Create(*exportContacts)
		if err != nil {
			fatal("%v", err)
		}
		log := w.Manager.ContactLog()
		contacts := make([]trace.Contact, len(log))
		for i, c := range log {
			contacts[i] = trace.Contact{A: c.A, B: c.B, Start: c.Start, End: c.End}
		}
		if err := trace.WriteContacts(f, contacts); err != nil {
			f.Close()
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
	}
	if *fatesOut != "" {
		f, err := os.Create(*fatesOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := world.WriteFatesCSV(f, w.MessageFates()); err != nil {
			f.Close()
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
	}
	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := world.WriteTimelineCSV(f, w.Timeline()); err != nil {
			f.Close()
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
	}

	fmt.Printf("scenario        %s (seed %d, %d nodes, %.0fs)\n", sc.Name, sc.Seed, res.Scenario.Nodes, sc.Duration)
	fmt.Printf("policy          %s over %s\n", sc.PolicyName, sc.ProtocolName)
	fmt.Printf("contacts        %d\n", res.Contacts)
	if sc.RecordIntermeeting {
		fmt.Printf("intermeeting    n=%d mean=%.1fs lambda=%.3g exp-fit-err=%.4f\n",
			res.IntermeetingN, res.MeanIntermeeting, 1/res.MeanIntermeeting, res.ExpFitError)
	}
	if res.Created > 0 {
		fmt.Printf("created         %d\n", res.Created)
		fmt.Printf("delivered       %d (ratio %.4f)\n", res.Delivered, res.DeliveryRatio)
		fmt.Printf("avg hopcounts   %.3f\n", res.AvgHops)
		fmt.Printf("overhead ratio  %.3f\n", res.OverheadRatio)
		fmt.Printf("latency         avg=%.1fs median=%.1fs p95=%.1fs\n",
			res.AvgLatency, res.MedianLatency, res.P95Latency)
		fmt.Printf("transfers       started=%d completed=%d aborted=%d refused=%d\n",
			res.Started, res.Forwards, res.Aborted, res.Refused)
		if res.Lost > 0 {
			fmt.Printf("faults          transfers lost=%d\n", res.Lost)
		}
		fmt.Printf("drops           policy=%d expired=%d acked=%d\n",
			res.PolicyDrops, res.ExpiredDrops, res.AckPurges)
	}
	if res.Energy.Enabled {
		fmt.Printf("energy          used=%.0fJ dead=%d meanLevel=%.2f firstDeath=%.0fs\n",
			res.Energy.TotalUsed, res.Energy.DeadNodes, res.Energy.MeanLevel, res.Energy.FirstDeath)
	}
	fmt.Printf("perf            %s\n", res.Perf)
	if res.Perf.ScanFallback != "" {
		// Stderr, not stdout: the summary above is parsed by dtntrace
		// stats -check and must stay strategy-independent.
		fmt.Fprintf(os.Stderr, "dtnsim: scan strategy fallback: %s\n", res.Perf.ScanFallback)
	}
	if *eventsOut != "" {
		fmt.Printf("events          wrote %s\n", *eventsOut)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dtnsim: "+format+"\n", args...)
	os.Exit(1)
}
