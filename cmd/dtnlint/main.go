// Command dtnlint enforces the simulator's determinism, error-handling,
// and shard-safety invariants: no wall-clock reads in simulation logic, no
// global math/rand, no panics in library code, no map-iteration order
// leaking into emitted output or engine state, no bare float equality in
// score math, no package-level mutable state, goroutines, or escaping RNG
// substreams in the engine packages, and no allocations inside
// Performance-contract hot functions.
//
// Usage:
//
//	dtnlint [-checks list] [-list] [-json] [-summary] [packages]
//
// The tool loads every package of the enclosing module (the go.mod found
// at or above the working directory) using only the standard library's
// go/parser, go/ast, go/types, and go/token. Positional arguments narrow
// the report to matching module-relative paths; "./..." (the default)
// keeps everything.
//
// Findings print to stdout as "path:line:col: [check] message", sorted by
// position, and the exit status is 1. A clean run prints nothing and exits
// 0. Load or type-check failures exit 2.
//
// -json writes a machine-readable report instead: the check registry,
// every finding, and the shard-safety coverage of the engine packages
// (which are //lint:shard-safe-certified, how many annotated exemptions
// each carries). -summary prints the same coverage as a human table after
// the findings. -list prints each check with its one-line description.
//
// Suppress a finding by putting a comment on the flagged line or the line
// above it:
//
//	//lint:ignore float-eq bitwise tie-break keeps eviction order stable
//
// A panic that guards a genuinely unreachable state — or a deliberate,
// explained shard-safety touchpoint — is annotated instead:
//
//	//lint:invariant contacts were validated at Build time
//
// A package that passes the shard-safety checks declares it near its
// package clause:
//
//	//lint:shard-safe state lives in per-run structs; no substream escapes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sdsrp/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks with their descriptions and exit")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report (findings + shard-safety coverage)")
	summary := flag.Bool("summary", false, "print the shard-safety coverage table after the findings")
	dir := flag.String("C", "", "module root to lint (default: nearest go.mod above the working directory)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dtnlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks {
			fmt.Printf("%-17s %s\n", c.Name, c.Doc)
		}
		return
	}

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	cfg := lint.DefaultConfig()
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			c = strings.TrimSpace(c)
			if !lint.KnownCheck(c) {
				fatal(fmt.Errorf("dtnlint: unknown check %q (use -list)", c))
			}
			cfg.Checks = append(cfg.Checks, c)
		}
	}

	mod, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(mod, cfg)
	diags = filterArgs(diags, flag.Args())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.NewReport(mod, cfg, diags)); err != nil {
			fatal(err)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if *summary {
		lint.WriteSummary(os.Stdout, lint.Coverage(mod, cfg, diags))
	}
	if len(diags) > 0 {
		plural := "s"
		if len(diags) == 1 {
			plural = ""
		}
		fmt.Fprintf(os.Stderr, "dtnlint: %d finding%s\n", len(diags), plural)
		os.Exit(1)
	}
}

// filterArgs narrows findings to the requested package patterns. "./..."
// and an empty argument list mean the whole module; anything else is a
// module-relative path prefix ("internal/sim", "./cmd").
func filterArgs(diags []lint.Diagnostic, args []string) []lint.Diagnostic {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "." {
			return diags
		}
		a = strings.TrimPrefix(a, "./")
		a = strings.TrimSuffix(a, "/...")
		prefixes = append(prefixes, strings.TrimSuffix(a, "/"))
	}
	if len(prefixes) == 0 {
		return diags
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		for _, p := range prefixes {
			if d.File == p || strings.HasPrefix(d.File, p+"/") {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("dtnlint: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
