package sdsrp_test

import (
	"testing"

	"sdsrp"
)

func demoScenario() sdsrp.Scenario {
	sc := sdsrp.RandomWaypointScenario()
	sc.Nodes = 24
	sc.Area.Max.X, sc.Area.Max.Y = 1200, 900
	sc.Duration, sc.TTL = 2500, 2500
	return sc
}

func TestPublicRun(t *testing.T) {
	res, err := sdsrp.Run(demoScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Created == 0 || res.Contacts == 0 {
		t.Fatalf("degenerate run: %+v", res.Summary)
	}
}

func TestPublicRunRejectsInvalid(t *testing.T) {
	sc := demoScenario()
	sc.Nodes = 0
	if _, err := sdsrp.Run(sc); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestPublicBuildExposesWorld(t *testing.T) {
	w, err := sdsrp.Build(demoScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Hosts) != 24 {
		t.Fatalf("hosts = %d", len(w.Hosts))
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Created == 0 {
		t.Fatal("world run produced nothing")
	}
}

func TestPublicRunAllOrdering(t *testing.T) {
	a := demoScenario()
	b := demoScenario()
	b.PolicyName = "SprayAndWait"
	results, err := sdsrp.RunAll([]sdsrp.Scenario{a, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Scenario.PolicyName != "SDSRP" || results[1].Scenario.PolicyName != "SprayAndWait" {
		t.Fatal("results out of order")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(sdsrp.Experiments()) < 12 {
		t.Fatal("experiment registry too small")
	}
	if _, err := sdsrp.RunExperiment("no-such-figure", sdsrp.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	panels, err := sdsrp.RunExperiment("fig4", sdsrp.ExperimentOptions{})
	if err != nil || len(panels) != 1 {
		t.Fatalf("fig4: %v panels=%d", err, len(panels))
	}
}

func TestPublicPaperPolicies(t *testing.T) {
	ps := sdsrp.PaperPolicies()
	if len(ps) != 4 || ps[3] != "SDSRP" {
		t.Fatalf("paper policies = %v", ps)
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// harness defaults.
	ps[0] = "corrupted"
	if sdsrp.PaperPolicies()[0] != "SprayAndWait" {
		t.Fatal("PaperPolicies exposes internal state")
	}
}

type flatPolicy struct{}

func (flatPolicy) Name() string                                      { return "Flat" }
func (flatPolicy) SendScore(sdsrp.PolicyView, *sdsrp.Stored) float64 { return 1 }
func (flatPolicy) DropScore(sdsrp.PolicyView, *sdsrp.Stored) float64 { return 1 }

func TestPublicRegisterPolicy(t *testing.T) {
	if err := sdsrp.RegisterPolicy("FlatTest", func(*sdsrp.RandomStream) sdsrp.Policy {
		return flatPolicy{}
	}); err != nil {
		t.Fatal(err)
	}
	sc := demoScenario()
	sc.PolicyName = "FlatTest"
	res, err := sdsrp.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Created == 0 {
		t.Fatal("custom-policy run degenerate")
	}
}
