// Package sdsrp is a discrete-event delay-tolerant-network (DTN) simulator
// and a reference implementation of SDSRP — the message Scheduling and Drop
// Strategy on the Spray-and-Wait Routing Protocol of Wang, Yang, Wu and Liu
// (ICPP 2015).
//
// The package is a façade over the internal implementation:
//
//   - Scenario describes a run (presets RandomWaypointScenario and
//     EPFLScenario reproduce the paper's Tables II and III);
//   - Run executes one scenario and returns the headline metrics (delivery
//     ratio, average hopcounts, overhead ratio);
//   - Experiments / RunExperiment regenerate every figure of the paper;
//   - RegisterPolicy plugs user-defined buffer-management strategies into
//     the comparison harness.
//
// A minimal session:
//
//	sc := sdsrp.RandomWaypointScenario()
//	sc.PolicyName = "SDSRP"
//	res, err := sdsrp.Run(sc)
//	if err != nil { ... }
//	fmt.Println(res.DeliveryRatio, res.AvgHops, res.OverheadRatio)
package sdsrp

import (
	"io"

	"sdsrp/internal/config"
	"sdsrp/internal/experiment"
	"sdsrp/internal/fault"
	"sdsrp/internal/msg"
	"sdsrp/internal/obs"
	"sdsrp/internal/policy"
	"sdsrp/internal/report"
	"sdsrp/internal/rng"
	"sdsrp/internal/world"
)

// Core simulation types.
type (
	// Scenario fully describes one simulation run.
	Scenario = config.Scenario
	// Mobility selects and parameterizes the movement model.
	Mobility = config.Mobility
	// Result is the digest of a finished run.
	Result = world.Result
	// World is an assembled simulation (exposed for callers that want to
	// inspect hosts or step the engine themselves).
	World = world.World
)

// Crash-safety types (see internal/experiment): a RunJournal is an
// append-only JSONL manifest of finished runs keyed by scenario digest;
// attaching one to ExperimentOptions (plus Resume) lets an interrupted
// sweep restart without redoing completed work.
type (
	// RunJournal durably records finished runs, keyed by scenario digest.
	RunJournal = experiment.Journal
	// JournalEntry is one journaled run outcome.
	JournalEntry = experiment.Entry
	// SweepRunError attributes one failed run inside a batch (index, name,
	// cause); batch errors are an errors.Join of these.
	SweepRunError = experiment.RunError
	// SweepPanicError is a worker panic converted into a per-run error
	// (recovered value plus stack).
	SweepPanicError = experiment.PanicError
)

// Crash-safety sentinels, matched with errors.Is.
var (
	// ErrSweepInterrupted marks runs a sweep never started because its
	// Interrupt channel fired.
	ErrSweepInterrupted = experiment.ErrInterrupted
	// ErrBudgetExceeded marks runs stopped by the Scenario.MaxEvents
	// event budget.
	ErrBudgetExceeded = world.ErrBudgetExceeded
	// ErrRunTimeout marks runs stopped by the per-run wall-clock watchdog
	// (ExperimentOptions.RunTimeout).
	ErrRunTimeout = world.ErrRunTimeout
)

// OpenRunJournal opens (creating if needed) the run journal at path,
// healing a truncated tail line left by a crash mid-append.
func OpenRunJournal(path string) (*RunJournal, error) { return experiment.OpenJournal(path) }

// ScenarioDigest returns the scenario's content address: a SHA-256 hex
// digest over its canonical serialization. Equal digests mean the runs
// would simulate identically.
func ScenarioDigest(sc Scenario) (string, error) { return experiment.Digest(sc) }

// Experiment and reporting types.
type (
	// ExperimentOptions tunes experiment cost (scale, node count, seeds,
	// worker parallelism).
	ExperimentOptions = experiment.Options
	// ExperimentSpec names one runnable figure/ablation.
	ExperimentSpec = experiment.Spec
	// ExperimentProgress is the rich progress payload (elapsed, ETA,
	// per-run wall-clock) delivered to ExperimentOptions.ProgressStats.
	ExperimentProgress = experiment.ProgressInfo
	// Panel is one reproduced sub-figure (table + chart renderable).
	Panel = report.Panel
	// Curve is one line on a panel.
	Curve = report.Curve
)

// Observability types (see internal/obs).
type (
	// Tracer receives structured lifecycle events from an instrumented run.
	Tracer = obs.Tracer
	// TraceEvent is one simulation occurrence (message, contact, transfer,
	// or eviction transition).
	TraceEvent = obs.Event
	// TraceEventType classifies a TraceEvent.
	TraceEventType = obs.Type
	// TraceMetrics folds events into counters and histograms.
	TraceMetrics = obs.Metrics
	// JSONLTracer writes one JSON object per event per line.
	JSONLTracer = obs.JSONL
	// RingTracer keeps the most recent events in memory.
	RingTracer = obs.Ring
	// RunStats is the engine-level performance digest of one run.
	RunStats = obs.RunStats
	// MessageLedger folds an event stream into per-message provenance
	// records (lifecycle, custody chain, terminal fate).
	MessageLedger = obs.Ledger
	// MessageRecord is one message's reconstructed lifecycle.
	MessageRecord = obs.MessageRecord
	// BuildOption customizes Build beyond the scenario (e.g. WithTracer).
	BuildOption = world.BuildOption
)

// WithTracer makes Build route every lifecycle event of the run to tr.
func WithTracer(tr Tracer) BuildOption { return world.WithTracer(tr) }

// NewJSONLTracer returns a sink writing one deterministic JSON object per
// event per line; call Flush when the run finishes.
func NewJSONLTracer(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// NewRingTracer returns an in-memory sink keeping the last n events.
func NewRingTracer(n int) *obs.Ring { return obs.NewRing(n) }

// NewTraceMetrics returns an empty counters/histogram registry sink.
func NewTraceMetrics() *obs.Metrics { return obs.NewMetrics() }

// MultiTracer fans events out to every non-nil sink (nil when none).
func MultiTracer(sinks ...Tracer) Tracer { return obs.Multi(sinks...) }

// NewMessageLedger returns an empty provenance ledger sink.
func NewMessageLedger() *obs.Ledger { return obs.NewLedger() }

// FoldEventLog replays a JSONL event stream into a provenance ledger and a
// metrics registry.
func FoldEventLog(r io.Reader) (*MessageLedger, *TraceMetrics, error) {
	return obs.FoldLog(r)
}

// OpenEventLog opens a JSONL event log for reading, transparently
// decompressing paths ending in .gz.
func OpenEventLog(path string) (io.ReadCloser, error) { return obs.OpenLog(path) }

// CreateEventLog creates a JSONL event log for writing, transparently
// compressing paths ending in .gz.
func CreateEventLog(path string) (io.WriteCloser, error) { return obs.CreateLog(path) }

// Policy-extension types.
type (
	// Policy scores messages for scheduling (high first) and dropping
	// (low first).
	Policy = policy.Policy
	// PolicyView is the node state visible to a policy.
	PolicyView = policy.View
	// Stored is one node's copy of a message.
	Stored = msg.Stored
	// Message is the immutable identity of a DTN bundle.
	Message = msg.Message
	// RandomStream is a deterministic random stream handed to policy
	// factories.
	RandomStream = rng.Stream
)

// MB is the decimal megabyte used by buffer/message sizes.
const MB = config.MB

// Group is one homogeneous sub-population of a heterogeneous scenario.
type Group = config.Group

// Fault-injection types (see internal/fault): set Scenario.Faults to
// enable deterministic loss, flapping, jitter, churn, and adversarial
// roles.
type (
	// FaultConfig is the per-scenario fault-injection configuration.
	FaultConfig = fault.Config
	// FaultChurn parameterizes node crash/reboot churn.
	FaultChurn = fault.Churn
)

// TimelinePoint is one periodic snapshot of global run state.
type TimelinePoint = world.TimelinePoint

// Fate is the end-of-run outcome of one generated message.
type Fate = world.Fate

// WriteTimelineCSV writes timeline snapshots as CSV.
func WriteTimelineCSV(w io.Writer, pts []TimelinePoint) error {
	return world.WriteTimelineCSV(w, pts)
}

// WriteFatesCSV writes per-message outcomes as CSV.
func WriteFatesCSV(w io.Writer, fates []Fate) error {
	return world.WriteFatesCSV(w, fates)
}

// RandomWaypointScenario returns the paper's Table II synthetic preset.
func RandomWaypointScenario() Scenario { return config.RandomWaypoint() }

// EPFLScenario returns the paper's Table III taxi-trace preset (backed by
// the synthetic San Francisco fleet — see DESIGN.md §4).
func EPFLScenario() Scenario { return config.EPFL() }

// Build assembles a world without running it. Options (e.g. WithTracer)
// attach runtime wiring the serializable Scenario cannot carry.
func Build(sc Scenario, opts ...BuildOption) (*World, error) { return world.Build(sc, opts...) }

// Run builds and executes one scenario.
func Run(sc Scenario) (Result, error) {
	w, err := world.Build(sc)
	if err != nil {
		return Result{}, err
	}
	return w.Run()
}

// RunAll executes scenarios in parallel over the given worker count
// (0 = GOMAXPROCS) and returns results in input order.
func RunAll(scs []Scenario, workers int) ([]Result, error) {
	return experiment.Run(scs, workers, nil)
}

// Experiments lists every reproducible figure and ablation.
func Experiments() []ExperimentSpec { return experiment.All() }

// RunExperiment regenerates one figure by registry name (e.g.
// "fig8copies").
func RunExperiment(name string, o ExperimentOptions) ([]Panel, error) {
	spec, ok := experiment.ByName(name)
	if !ok {
		return nil, errUnknownExperiment(name)
	}
	return spec.Run(o)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "sdsrp: unknown experiment " + string(e)
}

// RegisterPolicy plugs a user-defined buffer-management strategy into the
// harness under the given name, making it usable as Scenario.PolicyName
// and in experiment option policy lists.
func RegisterPolicy(name string, factory func(*RandomStream) Policy) error {
	return policy.Register(name, func(s *rng.Stream) policy.Policy { return factory(s) })
}

// PaperPolicies are the four strategies compared throughout Section IV, in
// the paper's order: plain Spray-and-Wait (FIFO), Spray-and-Wait-O,
// Spray-and-Wait-C, and SDSRP.
func PaperPolicies() []string {
	return append([]string(nil), experiment.PaperPolicies...)
}
