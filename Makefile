# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint test test-short race bench fuzz fuzz-smoke experiments check resilience examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism-invariant static analysis (DESIGN.md §11): no wall-clock in
# simulation logic, no global math/rand, no library panics, no map-order
# emission, no bare float equality in score math.
lint:
	$(GO) run ./cmd/dtnlint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; exercises the concurrent experiment runner.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing bursts over the trace parsers.
fuzz:
	$(GO) test ./internal/trace -fuzz=FuzzParseCab -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseONE -fuzztime=30s

# CI-sized fuzzing pass: 30 s per fuzzer across every fuzz target.
fuzz-smoke:
	$(GO) test ./internal/trace -fuzz=FuzzParseCab -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseONE -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseContacts -fuzztime=30s
	$(GO) test ./internal/config -fuzz=FuzzScenarioJSON -fuzztime=30s

# Regenerate every paper figure + ablations at full scale (~30 min single-core).
experiments:
	$(GO) run ./cmd/experiments -run all -seeds 1,2,3 -out results -svg -html results/report.html

# Machine-verify the paper's qualitative claims at full scale.
check:
	$(GO) run ./cmd/experiments -run fig3,fig4,fig8copies,fig8buffer,fig8rate,fig9copies,fig9buffer,fig9rate -check -seeds 1,2,3 -no-chart -quiet

# Quick resilience sweep smoke (fault injection; ~1 min): delivery /
# overhead / latency vs loss, churn, and black-hole intensity.
resilience:
	$(GO) run ./cmd/experiments -run resilience-loss,resilience-churn,resilience-blackhole -scale 0.05 -nodes 24 -out results/resilience -no-chart

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxifleet
	$(GO) run ./examples/disaster
	$(GO) run ./examples/custompolicy
	$(GO) run ./examples/figures

clean:
	rm -rf results figures-out
