# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint lint-report test test-short race bench bench-smoke bench-report trace-smoke resume-smoke fuzz fuzz-smoke experiments check resilience examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism + hot-path + shard-safety static analysis (DESIGN.md §11),
# eleven checks: no wall-clock in simulation logic, no global math/rand, no
# library panics, no map-order emission, no bare float equality in score
# math, no scalar distance math (sqrt/Hypot) in scan-path packages, no
# package-level mutable state in engine packages, no concurrency primitives
# in the sim path, no RNG substreams escaping their owning subsystem, no
# map-iteration order flowing into engine state, and no allocation inside
# Performance-contract hot functions. `-summary` prints the per-package
# shard-safety certification table; `-json` emits the machine report.
lint:
	$(GO) run ./cmd/dtnlint ./...

lint-report:
	$(GO) run ./cmd/dtnlint -summary ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; exercises the concurrent experiment runner.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# CI-sized perf sanity pass (~1 min, see PERFORMANCE.md): runs the suite's
# smoke cases — serial and its multi-core twin smoke-mc — asserts the report
# round-trips through the schema, that two separate processes simulate
# byte-identically (second invocation gating on the first's sim digests),
# and that both digests still match the newest committed BENCH_<n>.json —
# any scanner or engine change that perturbs the event stream, serial or
# sharded, fails here before the full bench-report would catch it. The test
# step additionally pins smoke-mc's digest to smoke's (parallel ≡ serial)
# and that the sharded path actually engages at workers=2. The huge
# -max-regress disarms the timing gate (CI machines are noisy); only
# determinism failures can trip it.
bench-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/dtnbench -smoke -iters 3 -out $$tmp/smoke.json -quiet && \
	$(GO) run ./cmd/dtnbench -smoke -iters 2 -baseline $$tmp/smoke.json -max-regress 100000 -quiet && \
	$(GO) run ./cmd/dtnbench -smoke -iters 2 -max-regress 100000 -quiet \
		-baseline $$(ls BENCH_*.json | grep -v candidate | sort -t_ -k2 -n | tail -1) && \
	$(GO) run ./cmd/dtnbench -cases scan100k -iters 2 -max-regress 100000 -quiet \
		-baseline $$(ls BENCH_*.json | grep -v candidate | sort -t_ -k2 -n | tail -1) && \
	$(GO) test -short -run 'TestGoldenTraceByteIdentical|TestReportByteStable|TestSmokeCaseMatchesGoldenCounters|TestMultiCoreCasesMatchSerialDigests|TestSmokeMCEngagesShardedScan' ./internal/bench/ && \
	$(GO) test -run 'TestScan100kKineticScalesWithinBudget|TestCommittedScan100kPeakHeapWithinBudget' ./internal/bench/ && \
	rm -rf $$tmp

# Full regression suite (~1 h): write a candidate report and gate it against
# the newest committed BENCH_<n>.json. See PERFORMANCE.md for how to read
# the delta table and when to commit the candidate as the next baseline.
bench-report:
	$(GO) run ./cmd/dtnbench -iters 3 -out BENCH_candidate.json \
		-baseline $$(ls BENCH_*.json | grep -v candidate | sort -t_ -k2 -n | tail -1)

# Observability round-trip gate (~20 s): run dtnsim with the event log (gzip)
# and snapshot sampler, then require (a) dtntrace stats to reproduce the
# printed summary bit-for-bit from the trace alone, (b) a second same-seed
# run — executed under the sharded parallel scan (-workers 2) — to be
# byte-identical under dtntrace diff, and (c) a different-seed run to be
# flagged divergent. Catches any drift between the live collector and the
# event vocabulary, any nondeterminism in the emit path, and any divergence
# between the serial and parallel engines at the CLI surface.
trace-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) build -o $$tmp/dtnsim ./cmd/dtnsim && \
	$(GO) build -o $$tmp/dtntrace ./cmd/dtntrace && \
	$$tmp/dtnsim -nodes 24 -duration 3600 -seed 3 \
		-events $$tmp/a.jsonl.gz -snapshot-interval 300 > $$tmp/sim.txt && \
	$$tmp/dtnsim -nodes 24 -duration 3600 -seed 3 -workers 2 \
		-events $$tmp/b.jsonl -snapshot-interval 300 > /dev/null && \
	$$tmp/dtnsim -nodes 24 -duration 3600 -seed 4 \
		-events $$tmp/c.jsonl > /dev/null && \
	$$tmp/dtntrace stats -check $$tmp/sim.txt $$tmp/a.jsonl.gz && \
	$$tmp/dtntrace diff $$tmp/a.jsonl.gz $$tmp/b.jsonl && \
	if $$tmp/dtntrace diff $$tmp/a.jsonl.gz $$tmp/c.jsonl > /dev/null; then \
		echo "trace-smoke: different seeds reported identical" && exit 1; \
	else echo "divergence detected across seeds (expected)"; fi && \
	$$tmp/dtntrace series $$tmp/a.jsonl.gz | head -3 && \
	rm -rf $$tmp

# Crash-safety gate (~15 s): run a sweep uninterrupted for reference TSVs,
# rerun it with a run journal and SIGINT it mid-sweep (graceful drain), chop
# the journal tail to simulate a torn final append, then resume — and
# require the resumed TSVs byte-identical to the uninterrupted reference.
# On a machine fast enough to finish before the kill the resume degrades to
# a pure journal replay, which still gates byte-identity.
RESUME_SMOKE_FLAGS = -run fig8copies -scale 0.5 -nodes 60 -workers 1 -no-chart -quiet
resume-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) build -o $$tmp/experiments ./cmd/experiments && \
	$$tmp/experiments $(RESUME_SMOKE_FLAGS) -out $$tmp/ref > $$tmp/ref.txt && \
	{ $$tmp/experiments $(RESUME_SMOKE_FLAGS) -journal $$tmp/runs.jsonl \
		-out $$tmp/res > /dev/null 2>&1 & pid=$$!; \
	  sleep 1; kill -INT $$pid 2>/dev/null; wait $$pid; :; } && \
	truncate -s -7 $$tmp/runs.jsonl && \
	$$tmp/experiments $(RESUME_SMOKE_FLAGS) -journal $$tmp/runs.jsonl -resume \
		-out $$tmp/res > $$tmp/resumed.txt && \
	diff -r $$tmp/ref $$tmp/res && diff $$tmp/ref.txt $$tmp/resumed.txt && \
	echo "resume-smoke: resumed sweep byte-identical to uninterrupted reference" && \
	rm -rf $$tmp

# Short fuzzing bursts over the trace parsers.
fuzz:
	$(GO) test ./internal/trace -fuzz=FuzzParseCab -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseONE -fuzztime=30s

# CI-sized fuzzing pass: 30 s per fuzzer across every fuzz target.
fuzz-smoke:
	$(GO) test ./internal/trace -fuzz=FuzzParseCab -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseONE -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseContacts -fuzztime=30s
	$(GO) test ./internal/config -fuzz=FuzzScenarioJSON -fuzztime=30s

# Regenerate every paper figure + ablations at full scale (~30 min single-core).
experiments:
	$(GO) run ./cmd/experiments -run all -seeds 1,2,3 -out results -svg -html results/report.html

# Machine-verify the paper's qualitative claims at full scale.
check:
	$(GO) run ./cmd/experiments -run fig3,fig4,fig8copies,fig8buffer,fig8rate,fig9copies,fig9buffer,fig9rate -check -seeds 1,2,3 -no-chart -quiet

# Quick resilience sweep smoke (fault injection; ~1 min): delivery /
# overhead / latency vs loss, churn, and black-hole intensity.
resilience:
	$(GO) run ./cmd/experiments -run resilience-loss,resilience-churn,resilience-blackhole -scale 0.05 -nodes 24 -out results/resilience -no-chart

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxifleet
	$(GO) run ./examples/disaster
	$(GO) run ./examples/custompolicy
	$(GO) run ./examples/figures

clean:
	rm -rf results figures-out
