# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint test test-short race bench bench-smoke bench-report fuzz fuzz-smoke experiments check resilience examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism + hot-path static analysis (DESIGN.md §11): no wall-clock in
# simulation logic, no global math/rand, no library panics, no map-order
# emission, no bare float equality in score math, no scalar distance math
# (sqrt/Hypot) in scan-path packages.
lint:
	$(GO) run ./cmd/dtnlint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; exercises the concurrent experiment runner.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# CI-sized perf sanity pass (~1 min, see PERFORMANCE.md): runs the suite's
# smoke case, asserts the report round-trips through the schema, that two
# separate processes simulate byte-identically (second invocation gating on
# the first's sim digest), and that the digest still matches the newest
# committed BENCH_<n>.json — any scanner or engine change that perturbs the
# event stream fails here before the full bench-report would catch it. The
# huge -max-regress disarms the timing gate (CI machines are noisy); only
# determinism failures can trip it.
bench-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/dtnbench -smoke -iters 3 -out $$tmp/smoke.json -quiet && \
	$(GO) run ./cmd/dtnbench -smoke -iters 2 -baseline $$tmp/smoke.json -max-regress 100000 -quiet && \
	$(GO) run ./cmd/dtnbench -smoke -iters 2 -max-regress 100000 -quiet \
		-baseline $$(ls BENCH_*.json | grep -v candidate | sort -t_ -k2 -n | tail -1) && \
	$(GO) test -run 'TestGoldenTraceByteIdentical|TestReportByteStable|TestSmokeCaseMatchesGoldenCounters' ./internal/bench/ && \
	rm -rf $$tmp

# Full regression suite (~1 h): write a candidate report and gate it against
# the newest committed BENCH_<n>.json. See PERFORMANCE.md for how to read
# the delta table and when to commit the candidate as the next baseline.
bench-report:
	$(GO) run ./cmd/dtnbench -iters 3 -out BENCH_candidate.json \
		-baseline $$(ls BENCH_*.json | grep -v candidate | sort -t_ -k2 -n | tail -1)

# Short fuzzing bursts over the trace parsers.
fuzz:
	$(GO) test ./internal/trace -fuzz=FuzzParseCab -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseONE -fuzztime=30s

# CI-sized fuzzing pass: 30 s per fuzzer across every fuzz target.
fuzz-smoke:
	$(GO) test ./internal/trace -fuzz=FuzzParseCab -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseONE -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseContacts -fuzztime=30s
	$(GO) test ./internal/config -fuzz=FuzzScenarioJSON -fuzztime=30s

# Regenerate every paper figure + ablations at full scale (~30 min single-core).
experiments:
	$(GO) run ./cmd/experiments -run all -seeds 1,2,3 -out results -svg -html results/report.html

# Machine-verify the paper's qualitative claims at full scale.
check:
	$(GO) run ./cmd/experiments -run fig3,fig4,fig8copies,fig8buffer,fig8rate,fig9copies,fig9buffer,fig9rate -check -seeds 1,2,3 -no-chart -quiet

# Quick resilience sweep smoke (fault injection; ~1 min): delivery /
# overhead / latency vs loss, churn, and black-hole intensity.
resilience:
	$(GO) run ./cmd/experiments -run resilience-loss,resilience-churn,resilience-blackhole -scale 0.05 -nodes 24 -out results/resilience -no-chart

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxifleet
	$(GO) run ./examples/disaster
	$(GO) run ./examples/custompolicy
	$(GO) run ./examples/figures

clean:
	rm -rf results figures-out
