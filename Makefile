# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race bench fuzz experiments check examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; exercises the concurrent experiment runner.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing bursts over the trace parsers.
fuzz:
	$(GO) test ./internal/trace -fuzz=FuzzParseCab -fuzztime=30s
	$(GO) test ./internal/trace -fuzz=FuzzParseONE -fuzztime=30s

# Regenerate every paper figure + ablations at full scale (~30 min single-core).
experiments:
	$(GO) run ./cmd/experiments -run all -seeds 1,2,3 -out results -svg -html results/report.html

# Machine-verify the paper's qualitative claims at full scale.
check:
	$(GO) run ./cmd/experiments -run fig3,fig4,fig8copies,fig8buffer,fig8rate,fig9copies,fig9buffer,fig9rate -check -seeds 1,2,3 -no-chart -quiet

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxifleet
	$(GO) run ./examples/disaster
	$(GO) run ./examples/custompolicy
	$(GO) run ./examples/figures

clean:
	rm -rf results figures-out
