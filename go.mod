module sdsrp

go 1.22
