package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("draw %d diverged for identical seeds", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed on %d/100 draws", same)
	}
}

func TestSplitIsDrawIndependent(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume from a before splitting; children must still match.
	for i := 0; i < 57; i++ {
		a.Float64()
	}
	ca := a.Split("mobility")
	cb := b.Split("mobility")
	for i := 0; i < 100; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatalf("split children diverged at draw %d", i)
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	root := New(9)
	m := root.Split("mobility")
	tr := root.Split("traffic")
	same := 0
	for i := 0; i < 100; i++ {
		if m.Float64() == tr.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently-labeled children agreed on %d/100 draws", same)
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	root := New(11)
	a := root.SplitIndex("node", 0)
	b := root.SplitIndex("node", 1)
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("per-index streams appear identical")
	}
	// Same index must reproduce.
	c := root.SplitIndex("node", 0)
	d := New(11).SplitIndex("node", 0)
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("same-index streams differ")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Uniform(5,8) = %v out of range", v)
		}
	}
}

func TestIntRangeBounds(t *testing.T) {
	s := New(4)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.IntRange(10, 15)
		if v < 10 || v > 15 {
			t.Fatalf("IntRange(10,15) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := 10; v <= 15; v++ {
		if !seen[v] {
			t.Fatalf("IntRange never produced %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(5)
	const mean = 120.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > mean*0.02 {
		t.Fatalf("Exp sample mean %v, want ~%v", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(6)
	const mean, sd = 10.0, 2.0
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Normal(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("Normal mean %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Normal sd %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(8)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(10)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}
