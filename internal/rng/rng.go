// Package rng provides deterministic, splittable random number streams.
//
// A simulation run owns a root Stream derived from the scenario seed. Each
// subsystem (mobility, traffic, protocol tie-breaking, trace synthesis)
// derives an independent child stream by name, so adding randomness to one
// subsystem never perturbs the draw sequence of another. This keeps whole
// experiment sweeps reproducible run-to-run and bisection-friendly.
//lint:shard-safe streams are value-owned and split purely; this package defines the substream discipline the engine is checked against
package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random stream. It is not safe for concurrent
// use; derive one stream per goroutine with Split or SplitIndex.
type Stream struct {
	r *rand.Rand
	// fingerprint identifies the stream's seed lineage. Splitting hashes the
	// fingerprint with a label, so children depend only on (lineage, label),
	// never on how many values were drawn from the parent.
	fingerprint uint64
}

// New returns a root stream for the given seed.
func New(seed uint64) *Stream { return newChild(seed) }

// Split derives an independent child stream from this stream's lineage and
// a label. Splitting is pure: it does not consume randomness from s.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.fingerprint)
	h.Write(buf[:])
	h.Write([]byte(label))
	return newChild(h.Sum64())
}

// SplitIndex derives an independent child stream by label and integer index,
// for per-node or per-run streams.
func (s *Stream) SplitIndex(label string, i int) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.fingerprint)
	h.Write(buf[:])
	h.Write([]byte(label))
	putUint64(buf[:], uint64(i)+0x51ed2701)
	h.Write(buf[:])
	return newChild(h.Sum64())
}

func newChild(seed uint64) *Stream {
	return &Stream{
		r:           rand.New(rand.NewPCG(seed, seed^0xda942042e4dd58b5)),
		fingerprint: seed,
	}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo,hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// IntN returns a uniform int in [0,n). n must be > 0.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// IntRange returns a uniform int in [lo,hi]. Requires hi >= lo.
func (s *Stream) IntRange(lo, hi int) int {
	return lo + s.r.IntN(hi-lo+1)
}

// Exp returns an exponentially distributed value with the given mean.
// mean must be > 0.
func (s *Stream) Exp(mean float64) float64 {
	// Inverse CDF; 1-Float64() avoids log(0).
	return -mean * math.Log(1-s.r.Float64())
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// WeightedIndex picks index i with probability weights[i]/sum(weights).
// Weights must be non-negative with a positive sum.
func (s *Stream) WeightedIndex(weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	x := s.r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
