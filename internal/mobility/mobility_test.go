package mobility

import (
	"math"
	"testing"

	"sdsrp/internal/geo"
	"sdsrp/internal/rng"
)

func samplePositions(m Model, from, to, step float64) []geo.Point {
	var out []geo.Point
	for t := from; t <= to; t += step {
		out = append(out, m.Pos(t))
	}
	return out
}

func TestRandomWaypointStaysInArea(t *testing.T) {
	area := geo.NewRect(4500, 3400)
	m := NewRandomWaypoint(area, 2, 2, 0, 0, rng.New(1))
	for _, p := range samplePositions(m, 0, 20000, 7) {
		if !area.Contains(p) {
			t.Fatalf("position %v left the area", p)
		}
	}
}

func TestRandomWaypointSpeedBound(t *testing.T) {
	area := geo.NewRect(4500, 3400)
	m := NewRandomWaypoint(area, 2, 2, 0, 0, rng.New(2))
	prev := m.Pos(0)
	for ti := 1; ti <= 10000; ti++ {
		tt := float64(ti)
		p := m.Pos(tt)
		if d := p.Dist(prev); d > 2.0+1e-6 {
			t.Fatalf("moved %vm in 1s with 2m/s speed at t=%v", d, tt)
		}
		prev = p
	}
}

func TestRandomWaypointActuallyMoves(t *testing.T) {
	area := geo.NewRect(4500, 3400)
	m := NewRandomWaypoint(area, 2, 2, 0, 0, rng.New(3))
	start := m.Pos(0)
	moved := m.Pos(5000)
	if start.Dist(moved) < 1 {
		t.Fatal("node did not move in 5000s")
	}
}

func TestRandomWaypointPauses(t *testing.T) {
	// With a huge pause range relative to leg time, the node should often
	// be stationary across adjacent samples.
	area := geo.NewRect(100, 100)
	m := NewRandomWaypoint(area, 10, 10, 500, 1000, rng.New(4))
	stationary := 0
	prev := m.Pos(0)
	for ti := 1; ti < 5000; ti++ {
		p := m.Pos(float64(ti))
		if p == prev {
			stationary++
		}
		prev = p
	}
	if stationary < 4000 {
		t.Fatalf("node paused for only %d/5000 samples", stationary)
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	area := geo.NewRect(1000, 1000)
	a := NewRandomWaypoint(area, 1, 3, 0, 10, rng.New(7))
	b := NewRandomWaypoint(area, 1, 3, 0, 10, rng.New(7))
	for ti := 0; ti < 2000; ti += 3 {
		if a.Pos(float64(ti)) != b.Pos(float64(ti)) {
			t.Fatalf("trajectories diverged at t=%d", ti)
		}
	}
}

func TestRandomWaypointCoversArea(t *testing.T) {
	// Over a long run, positions should visit all four quadrants.
	area := geo.NewRect(1000, 1000)
	m := NewRandomWaypoint(area, 20, 20, 0, 0, rng.New(8))
	var q [4]int
	for _, p := range samplePositions(m, 0, 50000, 11) {
		i := 0
		if p.X > 500 {
			i |= 1
		}
		if p.Y > 500 {
			i |= 2
		}
		q[i]++
	}
	for i, c := range q {
		if c == 0 {
			t.Fatalf("quadrant %d never visited: %v", i, q)
		}
	}
}

func TestStatic(t *testing.T) {
	m := Static{P: geo.Point{X: 3, Y: 4}}
	if m.Pos(0) != m.Pos(1e9) {
		t.Fatal("static node moved")
	}
}

func TestRandomWalkStaysInAreaAndMoves(t *testing.T) {
	area := geo.NewRect(500, 500)
	m := NewRandomWalk(area, 2, 2, 100, rng.New(9))
	pts := samplePositions(m, 0, 10000, 5)
	for _, p := range pts {
		if !area.Contains(p) {
			t.Fatalf("random walk left area: %v", p)
		}
	}
	if pts[0].Dist(pts[len(pts)-1]) == 0 && pts[0].Dist(pts[len(pts)/2]) == 0 {
		t.Fatal("random walk did not move")
	}
}

func TestRandomDirectionReachesBorders(t *testing.T) {
	area := geo.NewRect(400, 400)
	m := NewRandomDirection(area, 5, 5, 0, 1, rng.New(10))
	onBorder := 0
	for _, p := range samplePositions(m, 0, 20000, 1) {
		if !area.Contains(p) {
			t.Fatalf("random direction left area: %v", p)
		}
		if p.X < 1e-6 || p.Y < 1e-6 || p.X > 400-1e-6 || p.Y > 400-1e-6 {
			onBorder++
		}
	}
	if onBorder == 0 {
		t.Fatal("random direction never reached a border")
	}
}

func TestReflect1(t *testing.T) {
	cases := []struct{ v, want float64 }{
		{50, 50}, {-10, 10}, {110, 90}, {210, 10}, {-110, 90}, {0, 0}, {100, 100},
	}
	for _, c := range cases {
		if got := reflect1(c.v, 0, 100); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("reflect1(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestBorderHit(t *testing.T) {
	area := geo.NewRect(100, 100)
	// Straight east from the centre hits (100, 50).
	p := borderHit(area, geo.Point{X: 50, Y: 50}, 0)
	if math.Abs(p.X-100) > 1e-9 || math.Abs(p.Y-50) > 1e-9 {
		t.Fatalf("borderHit east = %v", p)
	}
	// Straight north hits (50, 100).
	p = borderHit(area, geo.Point{X: 50, Y: 50}, math.Pi/2)
	if math.Abs(p.X-50) > 1e-9 || math.Abs(p.Y-100) > 1e-9 {
		t.Fatalf("borderHit north = %v", p)
	}
}

func TestPathPlayback(t *testing.T) {
	p, err := NewPath([]TimedPoint{
		{T: 10, P: geo.Point{X: 0, Y: 0}},
		{T: 20, P: geo.Point{X: 10, Y: 0}},
		{T: 40, P: geo.Point{X: 10, Y: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Pos(0) != (geo.Point{X: 0, Y: 0}) {
		t.Fatal("before first waypoint wrong")
	}
	if p.Pos(15) != (geo.Point{X: 5, Y: 0}) {
		t.Fatalf("mid-segment = %v", p.Pos(15))
	}
	if p.Pos(30) != (geo.Point{X: 10, Y: 10}) {
		t.Fatalf("second segment = %v", p.Pos(30))
	}
	if p.Pos(1000) != (geo.Point{X: 10, Y: 20}) {
		t.Fatal("after last waypoint wrong")
	}
	if p.Duration() != 30 || p.Start() != 10 {
		t.Fatalf("Duration=%v Start=%v", p.Duration(), p.Start())
	}
}

func TestPathSortsWaypoints(t *testing.T) {
	p, err := NewPath([]TimedPoint{
		{T: 20, P: geo.Point{X: 10, Y: 0}},
		{T: 10, P: geo.Point{X: 0, Y: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Pos(10) != (geo.Point{X: 0, Y: 0}) {
		t.Fatal("waypoints not sorted by time")
	}
}

func TestPathEmptyRejected(t *testing.T) {
	if _, err := NewPath(nil); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestPathDuplicateTimes(t *testing.T) {
	p, err := NewPath([]TimedPoint{
		{T: 10, P: geo.Point{X: 0, Y: 0}},
		{T: 10, P: geo.Point{X: 5, Y: 5}},
		{T: 20, P: geo.Point{X: 10, Y: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := p.Pos(10)
	if math.IsNaN(got.X) || math.IsNaN(got.Y) {
		t.Fatal("duplicate waypoint times produced NaN")
	}
}

func TestTaxiStaysInAreaAndAggregates(t *testing.T) {
	cfg := DefaultTaxiConfig()
	root := rng.New(20)
	const fleet = 40
	taxis := make([]*Taxi, fleet)
	for i := range taxis {
		taxis[i] = NewTaxi(cfg, root.SplitIndex("taxi", i))
	}
	// Sample the fleet over time; count positions near the dominant hotspot
	// versus an equal-sized control zone in an empty corner.
	hot := cfg.Hotspots[0].Center
	control := geo.Point{X: 5200, Y: 500}
	nearHot, nearControl := 0, 0
	for ti := 0; ti <= 18000; ti += 60 {
		for _, tx := range taxis {
			p := tx.Pos(float64(ti))
			if !cfg.Area.Contains(p) {
				t.Fatalf("taxi left area: %v", p)
			}
			if p.Dist(hot) < 600 {
				nearHot++
			}
			if p.Dist(control) < 600 {
				nearControl++
			}
		}
	}
	if nearHot < 4*nearControl {
		t.Fatalf("no aggregation: hot=%d control=%d", nearHot, nearControl)
	}
}

func TestTaxiDeterministic(t *testing.T) {
	cfg := DefaultTaxiConfig()
	a := NewTaxi(cfg, rng.New(31))
	b := NewTaxi(cfg, rng.New(31))
	for ti := 0; ti < 5000; ti += 13 {
		if a.Pos(float64(ti)) != b.Pos(float64(ti)) {
			t.Fatalf("taxi trajectories diverged at t=%d", ti)
		}
	}
}
