package mobility

import (
	"math"

	"sdsrp/internal/geo"
	"sdsrp/internal/rng"
)

// RandomWalk moves in a uniformly random direction for a fixed epoch
// distance, then turns; the walk reflects off the area borders. It is one of
// the mobility families for which intermeeting times have provably
// exponential tails (paper Section III-B, citing Groenevelt et al.).
type RandomWalk struct {
	legMover
}

// NewRandomWalk creates a random walker: each epoch covers epochDist metres
// at a speed drawn from [speedLo, speedHi] with no pauses.
func NewRandomWalk(area geo.Rect, speedLo, speedHi, epochDist float64, s *rng.Stream) *RandomWalk {
	start := uniformPoint(area, s)
	m := &RandomWalk{}
	m.legMover = newLegMover(start, speedHi+1e-12,
		func(from geo.Point) geo.Point {
			theta := s.Uniform(0, 2*math.Pi)
			dest := from.Add(geo.Vec{X: epochDist * math.Cos(theta), Y: epochDist * math.Sin(theta)})
			return reflect(area, dest)
		},
		func() float64 { return s.Uniform(speedLo, speedHi+1e-12) },
		func() float64 { return 0 },
	)
	return m
}

// RandomDirection picks a direction and travels until it reaches the area
// border, pauses, then picks a new direction.
type RandomDirection struct {
	legMover
}

// NewRandomDirection creates a random-direction walker.
func NewRandomDirection(area geo.Rect, speedLo, speedHi, pauseLo, pauseHi float64, s *rng.Stream) *RandomDirection {
	start := uniformPoint(area, s)
	m := &RandomDirection{}
	m.legMover = newLegMover(start, speedHi+1e-12,
		func(from geo.Point) geo.Point {
			theta := s.Uniform(0, 2*math.Pi)
			return borderHit(area, from, theta)
		},
		func() float64 { return s.Uniform(speedLo, speedHi+1e-12) },
		func() float64 { return s.Uniform(pauseLo, pauseHi+1e-12) },
	)
	return m
}

// reflect folds a point that left the area back inside by mirroring across
// the borders it crossed (repeatedly, for far excursions).
func reflect(area geo.Rect, p geo.Point) geo.Point {
	p.X = reflect1(p.X, area.Min.X, area.Max.X)
	p.Y = reflect1(p.Y, area.Min.Y, area.Max.Y)
	return p
}

func reflect1(v, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	span := hi - lo
	// Map onto a 2·span sawtooth.
	v = math.Mod(v-lo, 2*span)
	if v < 0 {
		v += 2 * span
	}
	if v > span {
		v = 2*span - v
	}
	return lo + v
}

// borderHit returns the first intersection of the ray (from, theta) with
// the area border. If the ray starts on the border pointing outward, the
// start point is returned.
func borderHit(area geo.Rect, from geo.Point, theta float64) geo.Point {
	dx, dy := math.Cos(theta), math.Sin(theta)
	best := math.Inf(1)
	consider := func(t float64) {
		if t > 1e-12 && t < best {
			best = t
		}
	}
	if dx > 0 {
		consider((area.Max.X - from.X) / dx)
	} else if dx < 0 {
		consider((area.Min.X - from.X) / dx)
	}
	if dy > 0 {
		consider((area.Max.Y - from.Y) / dy)
	} else if dy < 0 {
		consider((area.Min.Y - from.Y) / dy)
	}
	if math.IsInf(best, 1) {
		return from
	}
	return area.Clamp(from.Add(geo.Vec{X: dx * best, Y: dy * best}))
}
