// Package mobility implements node movement models.
//
// A Model yields a node's position at monotonically non-decreasing query
// times; the contact scanner samples every node each scan tick. Models are
// lazy: legs are generated on demand from a per-node deterministic stream,
// so two runs with the same seed trace identical paths.
//
// Implemented models: RandomWaypoint (the paper's synthetic scenario),
// RandomWalk and RandomDirection (used by the intermeeting-tail literature
// the paper cites), Static, Path (trace playback), and Taxi (hotspot-biased
// city driving, the EPFL substitute — see DESIGN.md §4).
//lint:shard-safe models own their substreams via constructor injection and touch no package state
package mobility

import (
	"sdsrp/internal/geo"
	"sdsrp/internal/rng"
)

// Model drives one node's movement.
type Model interface {
	// Pos returns the position at time t. Query times must be
	// non-decreasing across calls.
	Pos(t float64) geo.Point

	// MaxSpeed returns an upper bound on the node's speed in m/s: for any
	// t1 ≤ t2, |Pos(t2) − Pos(t1)| ≤ MaxSpeed() · (t2 − t1).
	//
	// # Performance contract
	//
	// This bound is what lets the planning contact scanners
	// (internal/network) skip distance checks physics rules out: the lazy
	// sweep (scan=lazy) parks a far-apart pair until the tick at which
	// the pair could first close to radio range, and the kinetic planner
	// (scan=kinetic) additionally parks a whole node for as long as the
	// bound proves it stays inside its grid bucket. The bound must
	// therefore hold for the model's entire lifetime and must never
	// under-report: a too-small value silently breaks contact detection
	// (missed link-ups), while a too-large value only costs earlier
	// wake-ups. Models with a configured speed range return the range's
	// upper cap; Static returns 0 (never checked against a moving peer
	// beyond the one parked deadline); trace playback (Path) returns the
	// steepest segment speed measured once at construction. A model free
	// to teleport may return +Inf, which disables parking for its pairs
	// and nodes. The value must be constant across the model's lifetime —
	// the scanners read it once at startup.
	MaxSpeed() float64
}

// legMover factors the travel/pause state machine shared by waypoint-style
// models. pickDest chooses the next destination; pickSpeed and pickPause
// draw per-leg parameters.
type legMover struct {
	from, to         geo.Point
	legStart, legEnd float64
	pauseEnd         float64
	maxSpeed         float64

	pickDest  func(from geo.Point) geo.Point
	pickSpeed func() float64
	pickPause func() float64
}

// newLegMover wires the state machine. maxSpeed must upper-bound every value
// pickSpeed can return; advance clamps non-positive draws to 1e-9, so the
// stored bound is floored there too.
func newLegMover(start geo.Point, maxSpeed float64, pickDest func(geo.Point) geo.Point, pickSpeed, pickPause func() float64) legMover {
	if maxSpeed < 1e-9 {
		maxSpeed = 1e-9
	}
	return legMover{
		from: start, to: start, maxSpeed: maxSpeed,
		pickDest: pickDest, pickSpeed: pickSpeed, pickPause: pickPause,
	}
}

// MaxSpeed implements Model. Per-leg speed is dist/dur with dur only ever
// clamped upward, so the drawn-speed cap passed to newLegMover is a true
// displacement bound.
func (l *legMover) MaxSpeed() float64 { return l.maxSpeed }

// Pos implements Model.
func (l *legMover) Pos(t float64) geo.Point {
	for t >= l.pauseEnd {
		l.advance()
	}
	switch {
	case t >= l.legEnd:
		return l.to // pausing at the destination
	case t <= l.legStart:
		return l.from
	default:
		frac := (t - l.legStart) / (l.legEnd - l.legStart)
		return l.from.Lerp(l.to, frac)
	}
}

func (l *legMover) advance() {
	l.from = l.to
	l.legStart = l.pauseEnd
	l.to = l.pickDest(l.from)
	speed := l.pickSpeed()
	if speed <= 0 {
		speed = 1e-9
	}
	//lint:ignore hot-dist leg duration needs the true length, not its square
	dur := l.from.Dist(l.to) / speed
	if dur < 1e-9 {
		dur = 1e-9 // zero-length legs must still advance time
	}
	l.legEnd = l.legStart + dur
	pause := l.pickPause()
	if pause < 0 {
		pause = 0
	}
	// Strictly positive progress guarantees Pos terminates.
	l.pauseEnd = l.legEnd + pause
	if l.pauseEnd <= l.legStart {
		l.pauseEnd = l.legStart + 1e-9
	}
}

// RandomWaypoint is the classic model: pick a uniform destination in the
// area, travel at a uniform-random speed, pause, repeat. The paper's Table
// II uses a fixed 2 m/s speed and no pause.
type RandomWaypoint struct {
	legMover
}

// NewRandomWaypoint creates a random-waypoint walker starting at a uniform
// random position. Speeds are drawn from [speedLo, speedHi], pauses from
// [pauseLo, pauseHi].
func NewRandomWaypoint(area geo.Rect, speedLo, speedHi, pauseLo, pauseHi float64, s *rng.Stream) *RandomWaypoint {
	start := uniformPoint(area, s)
	m := &RandomWaypoint{}
	m.legMover = newLegMover(start, speedHi+1e-12,
		func(geo.Point) geo.Point { return uniformPoint(area, s) },
		func() float64 { return s.Uniform(speedLo, speedHi+1e-12) },
		func() float64 { return s.Uniform(pauseLo, pauseHi+1e-12) },
	)
	return m
}

func uniformPoint(area geo.Rect, s *rng.Stream) geo.Point {
	return geo.Point{
		X: s.Uniform(area.Min.X, area.Max.X),
		Y: s.Uniform(area.Min.Y, area.Max.Y),
	}
}

// Static is a non-moving node (infrastructure, throwboxes, unit tests).
type Static struct {
	P geo.Point
}

// Pos implements Model.
func (m Static) Pos(float64) geo.Point { return m.P }

// MaxSpeed implements Model: a static node never moves.
func (m Static) MaxSpeed() float64 { return 0 }
