package mobility

import (
	"math"
	"testing"

	"sdsrp/internal/geo"
	"sdsrp/internal/graph"
	"sdsrp/internal/rng"
)

func testGrid(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GridCity(6, 5, 100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMapRouteStaysOnStreets(t *testing.T) {
	g := testGrid(t)
	m, err := NewMapRoute(g, 5, 5, 0, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Every sampled position must lie on a grid line (x or y a multiple of
	// the 100 m spacing, up to float noise).
	onStreet := func(p geo.Point) bool {
		mod := func(v float64) float64 {
			m := math.Mod(v, 100)
			return math.Min(m, 100-m)
		}
		return mod(p.X) < 1e-6 || mod(p.Y) < 1e-6
	}
	for ti := 0; ti <= 5000; ti++ {
		p := m.Pos(float64(ti))
		if !onStreet(p) {
			t.Fatalf("off-street position %v at t=%d", p, ti)
		}
		if !g.Bounds().Contains(p) {
			t.Fatalf("position %v outside map", p)
		}
	}
}

func TestMapRouteSpeedBound(t *testing.T) {
	g := testGrid(t)
	m, err := NewMapRoute(g, 5, 5, 0, 0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Pos(0)
	for ti := 1; ti <= 3000; ti++ {
		p := m.Pos(float64(ti))
		if p.Dist(prev) > 5+1e-6 {
			t.Fatalf("moved %vm in 1s at 5m/s", p.Dist(prev))
		}
		prev = p
	}
}

func TestMapRouteVisitsManyIntersections(t *testing.T) {
	g := testGrid(t)
	m, err := NewMapRoute(g, 10, 10, 0, 0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	visited := map[int]bool{}
	for ti := 0; ti <= 20000; ti++ {
		p := m.Pos(float64(ti))
		v := g.Nearest(p)
		if g.At(v).Dist(p) < 1e-6 {
			visited[v] = true
		}
	}
	if len(visited) < g.Len()/2 {
		t.Fatalf("visited only %d/%d intersections", len(visited), g.Len())
	}
}

func TestMapRoutePausesOnlyAtDestinations(t *testing.T) {
	g := testGrid(t)
	m, err := NewMapRoute(g, 10, 10, 50, 60, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// With 50-60 s pauses and 10 m/s travel, stationary stretches exist and
	// always occur at intersections.
	prev := m.Pos(0)
	stationaryAt := 0
	for ti := 1; ti <= 10000; ti++ {
		p := m.Pos(float64(ti))
		if p == prev {
			v := g.Nearest(p)
			if g.At(v).Dist(p) > 1e-6 {
				t.Fatalf("paused mid-street at %v", p)
			}
			stationaryAt++
		}
		prev = p
	}
	if stationaryAt == 0 {
		t.Fatal("never paused despite long pause range")
	}
}

func TestMapRouteDeterministic(t *testing.T) {
	g := testGrid(t)
	a, _ := NewMapRoute(g, 3, 7, 0, 20, rng.New(7))
	b, _ := NewMapRoute(g, 3, 7, 0, 20, rng.New(7))
	for ti := 0; ti < 4000; ti += 17 {
		if a.Pos(float64(ti)) != b.Pos(float64(ti)) {
			t.Fatalf("trajectories diverged at t=%d", ti)
		}
	}
}

func TestMapRouteRejectsBadGraphs(t *testing.T) {
	tiny := graph.New()
	tiny.AddVertex(geo.Point{})
	if _, err := NewMapRoute(tiny, 1, 1, 0, 0, rng.New(1)); err == nil {
		t.Fatal("single-vertex graph accepted")
	}
	disc := graph.New()
	disc.AddVertex(geo.Point{})
	disc.AddVertex(geo.Point{X: 10})
	if _, err := NewMapRoute(disc, 1, 1, 0, 0, rng.New(1)); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}
