package mobility

import (
	"fmt"

	"sdsrp/internal/geo"
	"sdsrp/internal/graph"
	"sdsrp/internal/rng"
)

// MapRoute is map-constrained movement (the ONE simulator's map-based
// model): the node picks a random intersection of a road graph, walks the
// shortest path to it vertex by vertex, pauses, and repeats. The paper's
// RWP description — "selecting a destination randomly and walking along
// the shortest path to reach the destination" — is exactly this model with
// the road graph as the constraint.
type MapRoute struct {
	legMover
}

// NewMapRoute creates a walker on g. The graph must be connected (every
// destination must be reachable); speeds and pauses are uniform in their
// ranges.
func NewMapRoute(g *graph.Graph, speedLo, speedHi, pauseLo, pauseHi float64, s *rng.Stream) (*MapRoute, error) {
	if g.Len() < 2 {
		return nil, fmt.Errorf("mobility: road graph needs at least 2 vertices")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("mobility: road graph is not connected")
	}
	cur := s.IntN(g.Len())
	var queue []int

	pickDest := func(geo.Point) geo.Point {
		if len(queue) == 0 {
			for {
				dst := s.IntN(g.Len())
				if dst == cur {
					continue
				}
				path, _, ok := g.ShortestPath(cur, dst)
				if !ok || len(path) < 2 {
					continue // unreachable; cannot happen on connected graphs
				}
				queue = append(queue[:0], path[1:]...)
				break
			}
		}
		next := queue[0]
		queue = queue[1:]
		cur = next
		return g.At(next)
	}
	m := &MapRoute{}
	m.legMover = newLegMover(g.At(cur), speedHi+1e-12,
		pickDest,
		func() float64 { return s.Uniform(speedLo, speedHi+1e-12) },
		func() float64 {
			if len(queue) > 0 {
				return 0 // mid-route: keep driving through intersections
			}
			return s.Uniform(pauseLo, pauseHi+1e-12)
		},
	)
	return m, nil
}
