package mobility

import (
	"fmt"
	"sort"

	"sdsrp/internal/geo"
)

// TimedPoint is one waypoint of a recorded trajectory.
type TimedPoint struct {
	T float64
	P geo.Point
}

// Path plays back a recorded trajectory, interpolating linearly between
// waypoints. Before the first waypoint the node sits at it; after the last
// it stays there. This is the adapter between trace files (internal/trace)
// and the simulator.
type Path struct {
	points []TimedPoint
	// cursor is the index of the last segment used; queries are
	// non-decreasing in time, so scanning forward from it is O(1) amortized.
	cursor int
}

// NewPath builds a playback model. Waypoints are sorted by time; at least
// one waypoint is required.
func NewPath(points []TimedPoint) (*Path, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("mobility: empty path")
	}
	sorted := append([]TimedPoint(nil), points...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	return &Path{points: sorted}, nil
}

// Pos implements Model.
func (p *Path) Pos(t float64) geo.Point {
	pts := p.points
	if t <= pts[0].T {
		p.cursor = 0
		return pts[0].P
	}
	last := len(pts) - 1
	if t >= pts[last].T {
		p.cursor = last
		return pts[last].P
	}
	// Resume from the cursor; rewind only if the caller went back in time.
	i := p.cursor
	if i > 0 && pts[i].T > t {
		i = sort.Search(len(pts), func(k int) bool { return pts[k].T > t }) - 1
	}
	for i+1 < len(pts) && pts[i+1].T <= t {
		i++
	}
	p.cursor = i
	a, b := pts[i], pts[i+1]
	if b.T == a.T {
		return b.P
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.P.Lerp(b.P, frac)
}

// Duration returns the time span covered by the path.
func (p *Path) Duration() float64 {
	return p.points[len(p.points)-1].T - p.points[0].T
}

// Start returns the first waypoint time.
func (p *Path) Start() float64 { return p.points[0].T }
