package mobility

import (
	"fmt"
	"math"
	"sort"

	"sdsrp/internal/geo"
)

// TimedPoint is one waypoint of a recorded trajectory.
type TimedPoint struct {
	T float64
	P geo.Point
}

// Path plays back a recorded trajectory, interpolating linearly between
// waypoints. Before the first waypoint the node sits at it; after the last
// it stays there. This is the adapter between trace files (internal/trace)
// and the simulator.
type Path struct {
	points []TimedPoint
	// cursor is the index of the last segment used; queries are
	// non-decreasing in time, so scanning forward from it is O(1) amortized.
	cursor int
	// maxSpeed is the steepest segment speed, measured once at
	// construction (the MaxSpeed performance contract).
	maxSpeed float64
}

// NewPath builds a playback model. Waypoints are sorted by time; at least
// one waypoint is required.
func NewPath(points []TimedPoint) (*Path, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("mobility: empty path")
	}
	sorted := append([]TimedPoint(nil), points...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	p := &Path{points: sorted}
	for i := 1; i < len(sorted); i++ {
		a, b := sorted[i-1], sorted[i]
		//lint:ignore hot-dist parse-time bound measurement, not a per-tick check
		d := a.P.Dist(b.P)
		if d == 0 {
			continue
		}
		var v float64
		if dt := b.T - a.T; dt > 0 {
			v = d / dt
		} else {
			v = math.Inf(1) // recorded teleport: no finite bound exists
		}
		if v > p.maxSpeed {
			p.maxSpeed = v
		}
	}
	// One part in 2^30 of headroom absorbs the rounding difference between
	// this measurement and the Lerp arithmetic Pos replays.
	p.maxSpeed *= 1 + 1e-9
	return p, nil
}

// MaxSpeed implements Model.
func (p *Path) MaxSpeed() float64 { return p.maxSpeed }

// Pos implements Model.
func (p *Path) Pos(t float64) geo.Point {
	pts := p.points
	if t <= pts[0].T {
		p.cursor = 0
		return pts[0].P
	}
	last := len(pts) - 1
	if t >= pts[last].T {
		p.cursor = last
		return pts[last].P
	}
	// Resume from the cursor; rewind only if the caller went back in time.
	i := p.cursor
	if i > 0 && pts[i].T > t {
		i = sort.Search(len(pts), func(k int) bool { return pts[k].T > t }) - 1
	}
	for i+1 < len(pts) && pts[i+1].T <= t {
		i++
	}
	p.cursor = i
	a, b := pts[i], pts[i+1]
	if b.T == a.T {
		return b.P
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.P.Lerp(b.P, frac)
}

// Duration returns the time span covered by the path.
func (p *Path) Duration() float64 {
	return p.points[len(p.points)-1].T - p.points[0].T
}

// Start returns the first waypoint time.
func (p *Path) Start() float64 { return p.points[0].T }
