package mobility

import (
	"sdsrp/internal/geo"
	"sdsrp/internal/rng"
)

// Hotspot is a popular destination zone for the Taxi model: trips end near
// Center with Gaussian scatter Sigma, chosen proportionally to Weight.
type Hotspot struct {
	Center geo.Point
	Sigma  float64
	Weight float64
}

// TaxiConfig parameterizes the synthetic city fleet that substitutes for
// the EPFL cabspotting trace (DESIGN.md §4). Defaults approximating San
// Francisco come from DefaultTaxiConfig.
type TaxiConfig struct {
	Area     geo.Rect
	Hotspots []Hotspot
	// UniformProb is the probability a trip ends at a uniform random spot
	// instead of a hotspot (outlying fares).
	UniformProb float64
	// Speed range in m/s (city driving).
	SpeedLo, SpeedHi float64
	// Pause range in seconds at each destination (pickup/dropoff idling).
	PauseLo, PauseHi float64
}

// DefaultTaxiConfig returns a San-Francisco-like layout: a ~13 km × 12 km
// box (city plus airport corridor, as covered by the cabspotting fleet)
// with eight weighted hotspots — a dominant downtown, a secondary
// mission/station cluster, and peripheral attractors. The dispersion is
// tuned so that a 200-taxi fleet meets *less* often than the paper's
// 100-node random-waypoint crowd (its Section IV-B2 observation) while
// still showing the strong aggregation its Fig. 9-(i) discussion relies
// on.
func DefaultTaxiConfig() TaxiConfig {
	return TaxiConfig{
		Area: geo.NewRect(13000, 12000),
		Hotspots: []Hotspot{
			{Center: geo.Point{X: 8800, Y: 9400}, Sigma: 700, Weight: 30}, // financial district
			{Center: geo.Point{X: 7700, Y: 8000}, Sigma: 800, Weight: 18}, // SoMa
			{Center: geo.Point{X: 6500, Y: 6200}, Sigma: 900, Weight: 12}, // Mission
			{Center: geo.Point{X: 9700, Y: 10800}, Sigma: 650, Weight: 8}, // North Beach
			{Center: geo.Point{X: 3400, Y: 9300}, Sigma: 1000, Weight: 7}, // Richmond
			{Center: geo.Point{X: 4000, Y: 4600}, Sigma: 1100, Weight: 6}, // Sunset
			{Center: geo.Point{X: 10500, Y: 1800}, Sigma: 750, Weight: 9}, // airport corridor
			{Center: geo.Point{X: 1800, Y: 1900}, Sigma: 1000, Weight: 4}, // lakeside
		},
		UniformProb: 0.25,
		SpeedLo:     6, SpeedHi: 14,
		PauseLo: 20, PauseHi: 180,
	}
}

// Taxi is the hotspot-biased waypoint model. Compared with RandomWaypoint
// it reproduces the qualitative EPFL properties the paper relies on: fewer,
// shorter contacts (higher speeds over a larger area) and strong spatial
// aggregation around popular zones.
type Taxi struct {
	legMover
}

// NewTaxi creates one taxi. The start position is drawn like a destination,
// so the initial fleet distribution already shows the aggregation pattern.
func NewTaxi(cfg TaxiConfig, s *rng.Stream) *Taxi {
	pick := func(geo.Point) geo.Point { return pickTaxiDest(cfg, s) }
	m := &Taxi{}
	m.legMover = newLegMover(pick(geo.Point{}), cfg.SpeedHi,
		pick,
		func() float64 { return s.Uniform(cfg.SpeedLo, cfg.SpeedHi) },
		func() float64 { return s.Uniform(cfg.PauseLo, cfg.PauseHi) },
	)
	return m
}

func pickTaxiDest(cfg TaxiConfig, s *rng.Stream) geo.Point {
	if len(cfg.Hotspots) == 0 || s.Bool(cfg.UniformProb) {
		return uniformPoint(cfg.Area, s)
	}
	weights := make([]float64, len(cfg.Hotspots))
	for i, h := range cfg.Hotspots {
		weights[i] = h.Weight
	}
	h := cfg.Hotspots[s.WeightedIndex(weights)]
	p := geo.Point{
		X: s.Normal(h.Center.X, h.Sigma),
		Y: s.Normal(h.Center.Y, h.Sigma),
	}
	return cfg.Area.Clamp(p)
}
