package routing

import "sdsrp/internal/msg"

// Kind classifies a transfer.
type Kind int

// Transfer kinds.
const (
	// KindDelivery hands the message to its destination (consumed there;
	// the sender deletes its copy on confirmation).
	KindDelivery Kind = iota
	// KindSpray is a binary spray: the receiver gets ⌊C/2⌋ tokens.
	KindSpray
	// KindSpraySource is source spray: the receiver gets exactly one token.
	KindSpraySource
	// KindRelay copies the message without token accounting (Epidemic).
	KindRelay
	// KindHandoff moves the copy to the receiver and deletes it at the
	// sender (Spray-and-Focus focus phase).
	KindHandoff
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDelivery:
		return "delivery"
	case KindSpray:
		return "spray"
	case KindSpraySource:
		return "spray-source"
	case KindRelay:
		return "relay"
	case KindHandoff:
		return "handoff"
	default:
		return "unknown"
	}
}

// Protocol decides replication eligibility. Buffer management is orthogonal
// (policy.Policy); the protocol only answers "may a offer s to b, and how".
// Stateful protocols (PRoPHET family) need one instance per host;
// ProtocolByName always returns a fresh instance.
type Protocol interface {
	Name() string
	// Eligible reports whether sender a may offer its copy s to peer b.
	Eligible(a, b *Host, s *msg.Stored) (Kind, bool)
}

// ContactHook is implemented by protocols that maintain per-node state from
// contact history (e.g. PRoPHET predictabilities). The host invokes it on
// every link-up.
type ContactHook interface {
	OnContact(self, peer *Host, now float64)
}

// deliverable handles the common delivery test: b is the destination and
// has not consumed the message yet.
func deliverable(b *Host, s *msg.Stored) bool {
	return s.M.Dest == b.id && !b.received[s.M.ID]
}

// peerWants is the common replication test: the peer does not hold the
// message, is not its (already-served) destination, and does not reject it
// via its dropped list.
func peerWants(b *Host, s *msg.Stored) bool {
	if b.buf.Has(s.M.ID) || b.received[s.M.ID] || b.id == s.M.Source {
		return false
	}
	if b.drops != nil && b.drops.RejectsIncoming(s.M.ID) {
		return false
	}
	if b.acks != nil && b.acks.Has(s.M.ID) {
		return false
	}
	return true
}

// SprayAndWait is the paper's protocol. Binary mode halves the token count
// at each spray (Spyropoulos et al.'s recommended variant, used throughout
// the paper); source mode hands out single tokens from the source only.
type SprayAndWait struct {
	Binary bool
}

// Name implements Protocol.
func (p SprayAndWait) Name() string {
	if p.Binary {
		return "spray-and-wait"
	}
	return "spray-and-wait-source"
}

// Eligible implements Protocol.
func (p SprayAndWait) Eligible(a, b *Host, s *msg.Stored) (Kind, bool) {
	if deliverable(b, s) {
		return KindDelivery, true
	}
	if s.Copies <= 1 || !peerWants(b, s) {
		return 0, false
	}
	if p.Binary {
		return KindSpray, true
	}
	// Source mode: only the source distributes tokens.
	if a.id != s.M.Source {
		return 0, false
	}
	return KindSpraySource, true
}

// Epidemic replicates to every peer missing the message (Vahdat & Becker).
type Epidemic struct{}

// Name implements Protocol.
func (Epidemic) Name() string { return "epidemic" }

// Eligible implements Protocol.
func (Epidemic) Eligible(_, b *Host, s *msg.Stored) (Kind, bool) {
	if deliverable(b, s) {
		return KindDelivery, true
	}
	if !peerWants(b, s) {
		return 0, false
	}
	return KindRelay, true
}

// DirectDelivery only ever hands the message to its destination.
type DirectDelivery struct{}

// Name implements Protocol.
func (DirectDelivery) Name() string { return "direct" }

// Eligible implements Protocol.
func (DirectDelivery) Eligible(_, b *Host, s *msg.Stored) (Kind, bool) {
	if deliverable(b, s) {
		return KindDelivery, true
	}
	return 0, false
}

// SprayAndFocus sprays binarily, but instead of waiting with the last
// token it hands the copy off to a relay that met the destination more
// recently than the current carrier (Spyropoulos et al. 2007, with
// last-encounter recency as the utility function).
type SprayAndFocus struct {
	// MinGain is the required recency advantage in seconds before a
	// handoff happens, damping ping-pong handoffs.
	MinGain float64
}

// Name implements Protocol.
func (SprayAndFocus) Name() string { return "spray-and-focus" }

// Eligible implements Protocol.
func (p SprayAndFocus) Eligible(a, b *Host, s *msg.Stored) (Kind, bool) {
	if deliverable(b, s) {
		return KindDelivery, true
	}
	if !peerWants(b, s) {
		return 0, false
	}
	if s.Copies > 1 {
		return KindSpray, true
	}
	// Focus phase: forward the lone token toward fresher information.
	bt, bok := b.LastContactWith(s.M.Dest)
	if !bok {
		return 0, false
	}
	at, aok := a.LastContactWith(s.M.Dest)
	if !aok || bt-at > p.MinGain {
		return KindHandoff, true
	}
	return 0, false
}

// ProtocolByName resolves a protocol name: "spray-and-wait" (binary),
// "spray-and-wait-source", "epidemic", "direct", "spray-and-focus".
func ProtocolByName(name string) (Protocol, bool) {
	switch name {
	case "spray-and-wait", "snw", "":
		return SprayAndWait{Binary: true}, true
	case "spray-and-wait-source", "snw-source":
		return SprayAndWait{Binary: false}, true
	case "epidemic":
		return Epidemic{}, true
	case "direct":
		return DirectDelivery{}, true
	case "spray-and-focus", "snf":
		return SprayAndFocus{MinGain: 60}, true
	case "prophet":
		return NewProphet(), true
	case "spray-and-wait-predict", "snw-predict":
		return NewSprayAndWaitPredict(), true
	}
	return nil, false
}
