package routing

import (
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/policy"
	"sdsrp/internal/stats"
)

func newAckNet(n int) *testNet {
	tn := &testNet{collector: stats.NewCollector(), tracker: NewTracker()}
	for i := 0; i < n; i++ {
		tn.hosts = append(tn.hosts, NewHost(HostConfig{
			ID: i, Nodes: n, Buffer: 10000,
			Policy: policy.FIFO{}, Proto: SprayAndWait{Binary: true},
			Rate:      core.FixedRate{Mean: 1200},
			UseAcks:   true,
			Clock:     func() float64 { return tn.now },
			Collector: tn.collector, Tracker: tn.tracker, Oracle: tn.tracker,
		}))
	}
	return tn
}

func TestAckCreatedOnDelivery(t *testing.T) {
	tn := newAckNet(4)
	a, dest := tn.hosts[0], tn.hosts[3]
	a.Originate(tn.message(1, 0, 3, 8, 500, 100000), 0)
	tn.now = 10
	offer, _ := a.NextOffer(dest, nil)
	CommitTransfer(a, dest, offer, tn.now)
	if !dest.AckTable().Has(1) {
		t.Fatal("delivery did not create an ACK")
	}
}

func TestAckGossipPurgesCopies(t *testing.T) {
	tn := newAckNet(5)
	a, b, dest := tn.hosts[0], tn.hosts[1], tn.hosts[3]
	a.Originate(tn.message(1, 0, 3, 8, 500, 100000), 0)
	tn.now = 10
	tn.transferAll(a, b) // b now carries a copy
	if !b.Buffer().Has(1) {
		t.Fatal("precondition: relay holds a copy")
	}
	tn.now = 20
	tn.transferAll(a, dest) // delivery; dest holds the ACK

	// b meets the destination: the ACK gossips over and purges b's copy.
	tn.now = 30
	b.OnLinkUp(dest, tn.now)
	if b.Buffer().Has(1) {
		t.Fatal("ACK gossip did not purge the delivered message")
	}
	if tn.collector.AckPurges != 1 {
		t.Fatalf("ack purges = %d", tn.collector.AckPurges)
	}
	// And b refuses to receive it again.
	c := tn.hosts[2]
	c.Originate(tn.message(1, 2, 3, 8, 500, 100000), tn.now)
	if _, ok := c.NextOffer(b, nil); ok {
		t.Fatal("immunized node accepted a dead message")
	}
	// Tracker stays balanced.
	if tn.tracker.Live(1) > 2 {
		t.Fatalf("tracker live = %d after purges", tn.tracker.Live(1))
	}
}

func TestAckSecondHandGossip(t *testing.T) {
	tn := newAckNet(5)
	a, b, c, dest := tn.hosts[0], tn.hosts[1], tn.hosts[2], tn.hosts[3]
	a.Originate(tn.message(1, 0, 3, 8, 500, 100000), 0)
	tn.now = 10
	tn.transferAll(a, dest)
	// dest -> b -> c relay chain of the ACK itself.
	b.OnLinkUp(dest, 20)
	c.OnLinkUp(b, 30)
	if !c.AckTable().Has(1) {
		t.Fatal("ACK did not propagate second-hand")
	}
	_ = c
}

func TestAcksDisabledByDefault(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 10000, false)
	if tn.hosts[0].AckTable() != nil {
		t.Fatal("ack table present without UseAcks")
	}
}
