package routing

import (
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/fault"
	"sdsrp/internal/obs"
	"sdsrp/internal/policy"
	"sdsrp/internal/stats"
)

// roleNet builds a 4-host net where host 1 is a black hole and host 2 is
// selfish.
func roleNet(tr obs.Tracer) *testNet {
	tn := &testNet{collector: stats.NewCollector(), tracker: NewTracker()}
	roles := []fault.Role{fault.RoleHonest, fault.RoleBlackHole, fault.RoleSelfish, fault.RoleHonest}
	for i := 0; i < 4; i++ {
		tn.hosts = append(tn.hosts, NewHost(HostConfig{
			ID:        i,
			Nodes:     4,
			Buffer:    1 << 20,
			Policy:    policy.FIFO{},
			Proto:     SprayAndWait{Binary: true},
			Rate:      core.FixedRate{Mean: 1200},
			Clock:     func() float64 { return tn.now },
			Collector: tn.collector,
			Tracker:   tn.tracker,
			Oracle:    tn.tracker,
			Tracer:    tr,
			Role:      roles[i],
		}))
	}
	return tn
}

// TestSelfishRefusesRelaysAcceptsDelivery: a selfish node declines every
// replication offer but still consumes messages addressed to it.
func TestSelfishRefusesRelaysAcceptsDelivery(t *testing.T) {
	tn := roleNet(nil)
	src, selfish := tn.hosts[0], tn.hosts[2]

	// Relay offer toward a third party: refused up-front.
	if !src.Originate(tn.message(1, 0, 3, 8, 500, 100000), 0) {
		t.Fatal("originate failed")
	}
	tn.now = 10
	offer, ok := src.NextOffer(selfish, nil)
	if !ok {
		t.Fatal("no offer")
	}
	if selfish.PreAccept(offer, tn.now) {
		t.Fatal("selfish node accepted a relay")
	}

	// Delivery to the selfish node itself: accepted and consumed.
	if !src.Originate(tn.message(2, 0, 2, 8, 500, 100000), tn.now) {
		t.Fatal("originate failed")
	}
	tn.now = 20
	if n := tn.transferAll(src, selfish); n != 1 {
		t.Fatalf("transferred %d to the selfish destination, want 1 delivery", n)
	}
	if !selfish.Received(2) {
		t.Fatal("selfish destination did not consume its own message")
	}
}

// TestBlackHoleSwallowsCopies: the sender spends its spray tokens, the
// receiver stores nothing, no dropped-list record is created, and the event
// stream shows forwarded followed by transfer_lost.
func TestBlackHoleSwallowsCopies(t *testing.T) {
	ring := obs.NewRing(16)
	tn := roleNet(ring)
	src, hole := tn.hosts[0], tn.hosts[1]

	if !src.Originate(tn.message(1, 0, 3, 8, 500, 100000), 0) {
		t.Fatal("originate failed")
	}
	tn.now = 10
	offer, ok := src.NextOffer(hole, nil)
	if !ok {
		t.Fatal("no offer")
	}
	if !hole.PreAccept(offer, tn.now) {
		t.Fatal("black hole must accept up-front")
	}
	if CommitTransfer(src, hole, offer, tn.now) {
		t.Fatal("commit reported success for a swallowed copy")
	}
	// Sender committed: binary spray halves 8 -> 4.
	if got := src.Buffer().Get(1).Copies; got != 4 {
		t.Fatalf("sender tokens = %d, want 4 (spent on the black hole)", got)
	}
	if hole.Buffer().Has(1) {
		t.Fatal("black hole stored the copy")
	}
	if tn.collector.Lost != 1 {
		t.Fatalf("collector.Lost = %d, want 1", tn.collector.Lost)
	}
	if tn.collector.PolicyDrops != 0 {
		t.Fatalf("black hole counted a policy drop: %d", tn.collector.PolicyDrops)
	}
	evs := ring.Events()
	if len(evs) < 2 {
		t.Fatalf("got %d events", len(evs))
	}
	last, prev := evs[len(evs)-1], evs[len(evs)-2]
	if prev.Type != obs.MessageForwarded || last.Type != obs.TransferLost {
		t.Fatalf("tail events = %v, %v; want forwarded, transfer_lost", prev.Type, last.Type)
	}
	if last.Node != 0 || last.Peer != 1 || last.Msg != 1 {
		t.Fatalf("transfer_lost fields: %+v", last)
	}
}

// TestWipeState: a reboot wipe empties the buffer, resets the dropped-list
// table, keeps the received set, and rebalances the tracker.
func TestWipeState(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 1<<20, true)
	h := tn.hosts[0]
	h.Originate(tn.message(1, 0, 3, 8, 500, 100000), 0)
	h.Originate(tn.message(2, 0, 3, 8, 500, 100000), 0)
	h.DropMessage(h.Buffer().Get(2), 5) // populate the dropped list
	h.received[7] = true

	tn.now = 10
	if n := h.WipeState(tn.now); n != 1 {
		t.Fatalf("wiped %d copies, want 1", n)
	}
	if h.Buffer().Len() != 0 {
		t.Fatal("buffer not empty after wipe")
	}
	if h.DropTable().Records() != 0 || h.DropTable().RejectsIncoming(2) {
		t.Fatal("dropped-list state survived the wipe")
	}
	if !h.received[7] {
		t.Fatal("received set must survive a reboot")
	}
	if tn.tracker.Live(1) != 0 {
		t.Fatalf("tracker live = %d after wipe, want 0", tn.tracker.Live(1))
	}
}
