package routing

import (
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/obs"
	"sdsrp/internal/policy"
	"sdsrp/internal/stats"
)

// tracedNet mirrors testNet but wires an obs sink into every host.
func tracedNet(n int, tr obs.Tracer, bufBytes int64) (*testNet, []*Host) {
	tn := &testNet{collector: stats.NewCollector(), tracker: NewTracker()}
	pol := policy.FIFO{}
	for i := 0; i < n; i++ {
		tn.hosts = append(tn.hosts, NewHost(HostConfig{
			ID:        i,
			Nodes:     n,
			Buffer:    bufBytes,
			Policy:    pol,
			Proto:     SprayAndWait{Binary: true},
			Rate:      core.FixedRate{Mean: 1200},
			Clock:     func() float64 { return tn.now },
			Collector: tn.collector,
			Tracker:   tn.tracker,
			Oracle:    tn.tracker,
			Tracer:    tr,
		}))
	}
	return tn, tn.hosts
}

// TestNilTracerEmitNoAlloc pins the zero-cost disabled path: with a nil
// tracer, the emit guard on the hot sites must not allocate.
func TestNilTracerEmitNoAlloc(t *testing.T) {
	tn, hosts := tracedNet(2, nil, 1<<20)
	h := hosts[0]
	ev := obs.Event{T: 1, Type: obs.MessageForwarded, Msg: 1, Node: 0, Peer: 1,
		Copies: 8, Kind: "spray"}
	if n := testing.AllocsPerRun(1000, func() { h.emit(ev) }); n != 0 {
		t.Fatalf("nil-tracer emit allocated %v times per run, want 0", n)
	}
	// Snapshot events carry a slice field; passing one through the guard
	// must still be free when the tracer is nil.
	used := []int64{100, 200}
	snap := obs.Event{T: 2, Type: obs.Snapshot, LiveMsgs: 1, LiveCopies: 2,
		Contacts: 1, Queue: 3, Used: used}
	if n := testing.AllocsPerRun(1000, func() { h.emit(snap) }); n != 0 {
		t.Fatalf("nil-tracer snapshot emit allocated %v times per run, want 0", n)
	}
	// The full eviction path with a nil tracer must not allocate for
	// tracing either: DropMessage's priority computation is guarded.
	m := tn.message(1, 0, 1, 8, 100, 3600)
	if !h.Originate(m, 0) {
		t.Fatal("originate failed")
	}
	s := h.Buffer().Get(1)
	if n := testing.AllocsPerRun(100, func() {
		if h.tracer != nil {
			t.Fatal("tracer must stay nil")
		}
		_ = s
	}); n != 0 {
		t.Fatalf("guard check allocated %v times per run", n)
	}
}

// TestTracerLifecycleEvents drives one create → spray → deliver → drop
// sequence and checks the emitted event stream.
func TestTracerLifecycleEvents(t *testing.T) {
	ring := obs.NewRing(64)
	tn, hosts := tracedNet(3, ring, 1<<20)
	src, relay, dst := hosts[0], hosts[1], hosts[2]

	m := tn.message(1, 0, 2, 8, 1000, 3600)
	if !src.Originate(m, tn.now) {
		t.Fatal("originate failed")
	}
	tn.now = 10
	if n := tn.transferAll(src, relay); n != 1 {
		t.Fatalf("spray transferred %d, want 1", n)
	}
	tn.now = 20
	if n := tn.transferAll(relay, dst); n != 1 {
		t.Fatalf("delivery transferred %d, want 1", n)
	}
	tn.now = 30
	s := src.Buffer().Get(1)
	if s == nil {
		t.Fatal("source copy missing")
	}
	src.DropMessage(s, tn.now)

	var types []obs.Type
	for _, ev := range ring.Events() {
		if ev.Msg != 1 {
			t.Fatalf("unexpected msg id %d in %+v", ev.Msg, ev)
		}
		types = append(types, ev.Type)
	}
	want := []obs.Type{obs.MessageCreated, obs.MessageForwarded,
		obs.MessageDelivered, obs.MessageDropped}
	if len(types) != len(want) {
		t.Fatalf("got %d events %v, want %v", len(types), types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, types[i], want[i], types)
		}
	}

	evs := ring.Events()
	if evs[0].Copies != 8 || evs[0].Peer != 2 || evs[0].Size != 1000 {
		t.Errorf("created event fields: %+v", evs[0])
	}
	if evs[1].Kind != "spray" || evs[1].Copies != 4 {
		t.Errorf("forwarded event fields: %+v", evs[1])
	}
	if evs[2].Hops != 2 || evs[2].Latency != 20 || evs[2].Peer != 2 {
		t.Errorf("delivered event fields: %+v", evs[2])
	}
	if evs[3].Node != 0 {
		t.Errorf("dropped event fields: %+v", evs[3])
	}
}

// TestTracerExpiryEvent checks that the TTL sweep emits expired events.
func TestTracerExpiryEvent(t *testing.T) {
	ring := obs.NewRing(16)
	tn, hosts := tracedNet(2, ring, 1<<20)
	m := tn.message(5, 0, 1, 4, 100, 50)
	if !hosts[0].Originate(m, tn.now) {
		t.Fatal("originate failed")
	}
	tn.now = 60
	if n := hosts[0].ExpireMessages(tn.now); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	evs := ring.Events()
	last := evs[len(evs)-1]
	if last.Type != obs.MessageExpired || last.Msg != 5 || last.Node != 0 {
		t.Fatalf("last event %+v, want expired msg 5 at node 0", last)
	}
}
