// Package routing implements DTN hosts and routing protocols.
//
// A Host owns one node's buffer, buffer-management policy, protocol state,
// and SDSRP estimators (intermeeting-rate estimator and dropped-list
// table). The network layer (internal/network) asks hosts what to transfer
// on each contact (NextOffer / PreAccept) and commits finished transfers
// (CommitTransfer); the world layer (internal/world) generates traffic and
// drives TTL expiry.
//lint:shard-safe host, ack, and tracker state is per-run and per-node; no package-level state
package routing

import (
	"fmt"

	"sdsrp/internal/buffer"
	"sdsrp/internal/core"
	"sdsrp/internal/fault"
	"sdsrp/internal/msg"
	"sdsrp/internal/obs"
	"sdsrp/internal/policy"
	"sdsrp/internal/stats"
)

// Oracle supplies ground-truth message spread for oracle policies and for
// ablation experiments. Implemented by the world's tracker.
type Oracle interface {
	// Seen returns the true m_i: nodes other than the source that have
	// carried message id.
	Seen(id msg.ID) int
	// Live returns the true n_i: nodes currently holding a copy.
	Live(id msg.ID) int
}

// HostConfig assembles a Host.
type HostConfig struct {
	ID     int
	Nodes  int // N, network size
	Buffer int64
	Policy policy.Policy
	Proto  Protocol
	// Rate supplies λ: a per-node *core.LambdaEstimator (distributed
	// operation) or core.FixedRate (oracle ablation).
	Rate core.RateSource
	// UseDropList enables the Fig. 5 dropped-list gossip (SDSRP's d̂_i
	// estimator and re-receipt rejection).
	UseDropList bool
	// UseAcks enables the immunization extension: delivered-message ACKs
	// gossip on contact; nodes purge and refuse acknowledged messages. The
	// paper's model runs without it (Section III-A); see AckTable.
	UseAcks bool
	// PreflightEviction makes receivers run the eviction plan BEFORE any
	// bytes move and refuse transfers whose payload would be the victim.
	// The default (false) is the paper's Algorithm 1: receive first, then
	// drop the weakest — wasting the bandwidth and spray tokens the paper's
	// analysis charges to the heuristic policies.
	PreflightEviction bool
	// Clock returns the current simulation time.
	Clock func() float64
	// Collector receives the run's counters. Required.
	Collector *stats.Collector
	// Tracker records ground-truth spread; may be nil.
	Tracker *Tracker
	// Oracle backs TrueSeen/TrueLive; may be nil (falls back to estimates).
	Oracle Oracle
	// Tracer receives structured lifecycle events; nil disables tracing at
	// zero cost.
	Tracer obs.Tracer
	// Role is the node's behaviour under the fault layer's adversary model:
	// honest (default), black-hole (accepts copies, silently discards them),
	// or selfish (refuses to relay for others).
	Role fault.Role
}

// Host is one DTN node's full protocol state.
type Host struct {
	id    int
	nodes int
	buf   *buffer.Buffer
	pol   policy.Policy
	proto Protocol
	// ord holds the policy-ordering scratch buffers, making per-contact
	// scheduling and eviction planning allocation-free at steady state.
	ord policy.Orderer

	rate      core.RateSource
	rateObs   core.ContactObserver // nil when rate is a fixed oracle
	drops     *core.DropTable
	useDrops  bool
	preflight bool
	acks      *AckTable

	clock     func() float64
	collector *stats.Collector
	tracker   *Tracker
	oracle    Oracle
	tracer    obs.Tracer
	role      fault.Role

	// seenMemo caches the Eq. 15 lineage estimate per stored copy. The
	// estimator walks the whole spray lineage, and a single contact scores
	// every buffered copy several times (send order, eviction plans, both
	// Eq. 10 terms) at one instant with unchanged inputs — see seenFor for
	// the keying argument.
	seenMemo map[*msg.Stored]seenEntry

	// received marks messages this host has consumed as their destination.
	received map[msg.ID]bool
	// lastContact records the latest link-up time per peer (Spray-and-Focus
	// utility).
	lastContact map[int]float64
}

// NewHost builds a host. It panics on an incomplete config — hosts are
// constructed by the world builder, so a bad config is a programming error.
func NewHost(cfg HostConfig) *Host {
	if cfg.Policy == nil || cfg.Proto == nil || cfg.Clock == nil || cfg.Collector == nil {
		//lint:invariant hosts are wired by world.Build from a validated scenario; a nil dependency is builder misuse, not input
		panic(fmt.Sprintf("routing: incomplete host config for node %d", cfg.ID))
	}
	h := &Host{
		id:          cfg.ID,
		nodes:       cfg.Nodes,
		buf:         buffer.New(cfg.Buffer),
		pol:         cfg.Policy,
		proto:       cfg.Proto,
		rate:        cfg.Rate,
		useDrops:    cfg.UseDropList,
		preflight:   cfg.PreflightEviction,
		clock:       cfg.Clock,
		collector:   cfg.Collector,
		tracker:     cfg.Tracker,
		oracle:      cfg.Oracle,
		tracer:      cfg.Tracer,
		role:        cfg.Role,
		seenMemo:    make(map[*msg.Stored]seenEntry),
		received:    make(map[msg.ID]bool),
		lastContact: make(map[int]float64),
	}
	if obs, ok := cfg.Rate.(core.ContactObserver); ok {
		h.rateObs = obs
	}
	if cfg.UseDropList {
		h.drops = core.NewDropTable(cfg.ID)
	}
	if cfg.UseAcks {
		h.acks = NewAckTable()
	}
	return h
}

// ID returns the node id.
func (h *Host) ID() int { return h.id }

// Tracer returns the host's event sink (nil when tracing is off).
func (h *Host) Tracer() obs.Tracer { return h.tracer }

// Role returns the node's adversarial role (RoleHonest normally).
func (h *Host) Role() fault.Role { return h.role }

// emit forwards ev to the tracer. The nil check is the entire disabled
// path: callers build the Event inline in the argument, so a nil tracer
// costs one branch and zero allocations.
func (h *Host) emit(ev obs.Event) {
	if h.tracer != nil {
		h.tracer.Emit(ev)
	}
}

// Buffer exposes the host's store (read-mostly; mutate only through host
// methods).
func (h *Host) Buffer() *buffer.Buffer { return h.buf }

// Policy returns the buffer-management strategy.
func (h *Host) Policy() policy.Policy { return h.pol }

// Received reports whether this host, as destination, has consumed id.
func (h *Host) Received(id msg.ID) bool { return h.received[id] }

// DropTable returns the host's gossip table (nil when disabled).
func (h *Host) DropTable() *core.DropTable { return h.drops }

// AckTable returns the host's immunization table (nil when disabled).
func (h *Host) AckTable() *AckTable { return h.acks }

// --- policy.View implementation -------------------------------------------

// Now implements policy.View.
func (h *Host) Now() float64 { return h.clock() }

// Nodes implements policy.View.
func (h *Host) Nodes() int { return h.nodes }

// Lambda implements policy.View.
func (h *Host) Lambda() float64 {
	if h.rate == nil {
		return 0
	}
	return h.rate.Lambda()
}

// EIMin implements policy.View.
func (h *Host) EIMin() float64 {
	if h.rate == nil {
		return 0
	}
	return h.rate.EIMin(h.nodes)
}

// seenEntry caches one EstimateSeen result together with the inputs that
// produced it.
type seenEntry struct {
	now, eimin float64
	copies     int
	sprayLen   int
	seen       int
}

// seenFor returns EstimateSeen(s, now) through the per-host memo.
//
// The cache is sound because EstimateSeen is a pure function of
// (SprayTimes, Copies, now, EIMin, nodes) and the key pins all of them:
// nodes is constant for the host, SprayTimes is append-only (its length
// determines its content for a given copy), and Copies plus the clock and
// rate estimate are compared directly. A hit therefore has bit-identical
// inputs and returns the bit-identical answer — the memo cannot change
// simulation behaviour, only skip the lineage walk.
func (h *Host) seenFor(s *msg.Stored) int {
	now, eimin := h.clock(), h.EIMin()
	if e, ok := h.seenMemo[s]; ok &&
		e.now == now && e.eimin == eimin &&
		e.copies == s.Copies && e.sprayLen == len(s.SprayTimes) {
		return e.seen
	}
	seen := core.EstimateSeen(s.SprayTimes, s.Copies, now, eimin, h.nodes)
	// The memo is only a cache: when stale entries (dropped copies,
	// transient phantoms) accumulate past a small multiple of the buffer
	// population, discard it wholesale rather than tracking lifetimes.
	if len(h.seenMemo) > 2*h.buf.Len()+64 {
		clear(h.seenMemo)
	}
	h.seenMemo[s] = seenEntry{now: now, eimin: eimin, copies: s.Copies,
		sprayLen: len(s.SprayTimes), seen: seen}
	return seen
}

// SeenEstimate implements policy.View with the Eq. 15 lineage estimator.
func (h *Host) SeenEstimate(s *msg.Stored) float64 {
	return float64(h.seenFor(s))
}

// LiveEstimate implements policy.View with Eq. 14, n̂ = m̂ + 1 − d̂.
func (h *Host) LiveEstimate(s *msg.Stored) float64 {
	dropped := 0
	if h.drops != nil {
		dropped = h.drops.DroppedCount(s.M.ID)
	}
	return float64(core.LiveCopies(h.seenFor(s), dropped, h.nodes))
}

// TrueSeen implements policy.View via the oracle, falling back to the
// estimate without one.
func (h *Host) TrueSeen(s *msg.Stored) float64 {
	if h.oracle == nil {
		return h.SeenEstimate(s)
	}
	return float64(h.oracle.Seen(s.M.ID))
}

// TrueLive implements policy.View via the oracle.
func (h *Host) TrueLive(s *msg.Stored) float64 {
	if h.oracle == nil {
		return h.LiveEstimate(s)
	}
	return float64(h.oracle.Live(s.M.ID))
}

var _ policy.View = (*Host)(nil)

// --- contact lifecycle ------------------------------------------------------

// OnLinkUp is called by the network layer when a contact with peer starts:
// it feeds the λ estimator, merges dropped-list gossip both ways, and
// refreshes the Spray-and-Focus recency table.
func (h *Host) OnLinkUp(peer *Host, now float64) {
	if h.rateObs != nil {
		h.rateObs.OnContactStart(peer.id, now)
	}
	if h.drops != nil && peer.drops != nil {
		h.drops.MergeFrom(peer.drops)
	}
	if h.acks != nil && peer.acks != nil {
		h.acks.MergeFrom(peer.acks)
		h.purgeAcked(now)
	}
	if hook, ok := h.proto.(ContactHook); ok {
		hook.OnContact(h, peer, now)
	}
	h.lastContact[peer.id] = now
}

// OnLinkDown is called when the contact with peer ends.
func (h *Host) OnLinkDown(peer *Host, now float64) {
	if h.rateObs != nil {
		h.rateObs.OnContactEnd(peer.id, now)
	}
}

// LastContactWith returns when this host last started a contact with node,
// and whether it ever has.
func (h *Host) LastContactWith(node int) (float64, bool) {
	t, ok := h.lastContact[node]
	return t, ok
}

// --- message lifecycle ------------------------------------------------------

// Originate injects a freshly generated message at this (source) host. The
// newcomer competes for buffer space under the host's own policy; a source
// whose buffer outranks the new message drops it on arrival. It reports
// whether the message was stored.
func (h *Host) Originate(m *msg.Message, now float64) bool {
	h.collector.MessageCreated(m.ID, m.Created)
	if h.tracker != nil {
		h.tracker.NoteCreated(m.ID, m.Source)
	}
	if h.tracer != nil {
		h.tracer.Emit(obs.Event{T: now, Type: obs.MessageCreated, Msg: m.ID,
			Node: m.Source, Peer: m.Dest, Size: m.Size, Copies: m.InitialCopies})
	}
	s := msg.NewSourceCopy(m)
	victims, ok := h.ord.PlanEviction(h.pol, h, h.buf, s)
	if !ok {
		if h.tracer != nil {
			h.tracer.Emit(obs.Event{T: now, Type: obs.MessageDropped, Msg: m.ID,
				Node: h.id, Priority: h.pol.DropScore(h, s)})
		}
		h.collector.Dropped()
		return false
	}
	for _, v := range victims {
		h.DropMessage(v, now)
	}
	if err := h.buf.Add(s); err != nil {
		//lint:invariant PlanEviction just freed enough bytes for s in this same event; Add cannot overflow
		panic(fmt.Sprintf("routing: originate after eviction: %v", err))
	}
	if h.tracker != nil {
		h.tracker.NoteStored(m.ID, h.id)
	}
	return true
}

// DropMessage evicts s under the buffer policy: it leaves the buffer,
// enters the host's dropped list (when enabled) and counts as a policy
// drop.
func (h *Host) DropMessage(s *msg.Stored, now float64) {
	if h.buf.Remove(s.M.ID) == nil {
		return
	}
	if h.tracer != nil {
		h.tracer.Emit(obs.Event{T: now, Type: obs.MessageDropped, Msg: s.M.ID,
			Node: h.id, Priority: h.pol.DropScore(h, s)})
	}
	if h.drops != nil {
		h.drops.RecordDrop(s.M.ID, now)
	}
	if h.tracker != nil {
		h.tracker.NoteRemoved(s.M.ID, h.id)
	}
	h.collector.Dropped()
}

// purgeAcked removes buffered copies of delivered messages (immunization).
func (h *Host) purgeAcked(now float64) {
	if h.acks == nil {
		return
	}
	var dead []*msg.Stored
	for _, s := range h.buf.Items() {
		if h.acks.Has(s.M.ID) {
			dead = append(dead, s)
		}
	}
	for _, s := range dead {
		h.buf.Remove(s.M.ID)
		if h.tracker != nil {
			h.tracker.NoteRemoved(s.M.ID, h.id)
		}
		h.collector.AckPurged()
	}
	_ = now
}

// WipeState models a cold reboot after a churn outage: every buffered copy
// and the whole dropped-list table are lost. Delivered-message state
// (received set, ACKs) and the λ estimator survive — a destination does not
// forget what it consumed, and contact history is long-lived radio firmware
// state in this model. Peers still hold (and re-gossip) this node's old
// drop record. It returns the number of copies lost.
func (h *Host) WipeState(now float64) int {
	items := h.buf.Items()
	dead := make([]*msg.Stored, len(items))
	copy(dead, items) // Remove mutates the buffer's backing slice
	for _, s := range dead {
		h.buf.Remove(s.M.ID)
		if h.tracker != nil {
			h.tracker.NoteRemoved(s.M.ID, h.id)
		}
	}
	if h.drops != nil {
		h.drops.Reset()
	}
	_ = now
	return len(dead)
}

// ExpireMessages removes every dead message at time now and forgets their
// dropped-list records (an expired message can no longer influence any
// decision). It returns the number removed.
func (h *Host) ExpireMessages(now float64) int {
	dead := h.buf.Expired(now, nil)
	for _, s := range dead {
		h.buf.Remove(s.M.ID)
		if h.tracer != nil {
			h.tracer.Emit(obs.Event{T: now, Type: obs.MessageExpired, Msg: s.M.ID, Node: h.id})
		}
		if h.tracker != nil {
			h.tracker.NoteRemoved(s.M.ID, h.id)
		}
		if h.drops != nil {
			h.drops.Forget(s.M.ID)
		}
		if h.acks != nil {
			h.acks.Forget(s.M.ID)
		}
		h.collector.Expired()
	}
	return len(dead)
}
