package routing

import "sdsrp/internal/msg"

// Tracker maintains the simulator's ground-truth view of message spread:
// the true m_i (distinct non-source carriers so far) and n_i (current
// holders). It backs oracle policies and the estimator-accuracy ablation.
type Tracker struct {
	source  map[msg.ID]int
	carried map[msg.ID]map[int]bool // every node that ever stored a copy
	live    map[msg.ID]int          // current holder count
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		source:  make(map[msg.ID]int),
		carried: make(map[msg.ID]map[int]bool),
		live:    make(map[msg.ID]int),
	}
}

// NoteCreated registers a message and its source node.
func (t *Tracker) NoteCreated(id msg.ID, source int) {
	t.source[id] = source
	if t.carried[id] == nil {
		t.carried[id] = make(map[int]bool)
	}
}

// NoteStored registers that node now holds a copy of id.
func (t *Tracker) NoteStored(id msg.ID, node int) {
	set := t.carried[id]
	if set == nil {
		set = make(map[int]bool)
		t.carried[id] = set
	}
	set[node] = true
	t.live[id]++
}

// NoteRemoved registers that node no longer holds a copy (drop, expiry,
// delivery cleanup, or handoff).
func (t *Tracker) NoteRemoved(id msg.ID, node int) {
	if t.live[id] > 0 {
		t.live[id]--
	}
	_ = node
}

// NoteDelivered registers that the destination consumed the message. The
// destination counts as having seen it even though it never buffers it.
func (t *Tracker) NoteDelivered(id msg.ID, node int) {
	set := t.carried[id]
	if set == nil {
		set = make(map[int]bool)
		t.carried[id] = set
	}
	set[node] = true
}

// Seen implements Oracle: carriers excluding the source.
func (t *Tracker) Seen(id msg.ID) int {
	set := t.carried[id]
	n := len(set)
	if src, ok := t.source[id]; ok && set[src] {
		n--
	}
	return n
}

// Live implements Oracle: current holder count.
func (t *Tracker) Live(id msg.ID) int { return t.live[id] }

var _ Oracle = (*Tracker)(nil)
