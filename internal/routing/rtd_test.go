package routing

import (
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/msg"
	"sdsrp/internal/policy"
	"sdsrp/internal/stats"
)

// Receive-then-drop semantics (Algorithm 1, the default): a completed
// transfer whose payload is the weakest message still costs the sender's
// tokens and counts as a forward, and the receiver's dropped list learns
// the message.
func TestArrivalDropDestroysTokensAndCountsForward(t *testing.T) {
	tn := newTestNet(4, policy.TTLRatio{}, SprayAndWait{Binary: true}, 500, true)
	a, b := tn.hosts[0], tn.hosts[1]
	// Receiver full with a fresh message.
	fresh := tn.message(1, 1, 3, 8, 500, 100000)
	b.Originate(fresh, 0)
	// Sender sprays a stale message (lower TTL ratio): weakest on arrival.
	stale := tn.message(2, 0, 3, 8, 500, 600)
	a.Originate(stale, 0)
	tn.now = 10

	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.S.M.ID != 2 {
		t.Fatalf("offer = %+v", offer)
	}
	if !b.PreAccept(offer, tn.now) {
		t.Fatal("receive-then-drop mode must not preflight-refuse on eviction")
	}
	if CommitTransfer(a, b, offer, tn.now) {
		t.Fatal("commit reported success for an arrival-dropped message")
	}
	// Sender tokens were spent.
	if got := a.Buffer().Get(2); got.Copies != 4 {
		t.Fatalf("sender copies = %d, want 4 (split happened)", got.Copies)
	}
	// The transfer counts as a forward; the arrival drop as a policy drop.
	if tn.collector.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", tn.collector.Forwards)
	}
	if tn.collector.PolicyDrops != 1 {
		t.Fatalf("drops = %d, want 1", tn.collector.PolicyDrops)
	}
	// The receiver never stored it, and its buffer still holds the fresh one.
	if b.Buffer().Has(2) || !b.Buffer().Has(1) {
		t.Fatal("receiver buffer state wrong")
	}
	// With the dropped list enabled, the receiver refuses a re-offer.
	if b.DropTable() == nil || !b.DropTable().RejectsIncoming(2) {
		t.Fatal("arrival drop not recorded in the dropped list")
	}
	if _, ok := a.NextOffer(b, nil); ok {
		t.Fatal("message re-offered despite dropped-list rejection")
	}
}

// In preflight mode the same exchange is refused before any bytes move:
// sender tokens intact, nothing forwarded.
func TestPreflightModeRefusesBeforeBytesMove(t *testing.T) {
	tn := &testNet{collector: stats.NewCollector(), tracker: NewTracker()}
	mk := func(id int) *Host {
		return NewHost(HostConfig{
			ID: id, Nodes: 4, Buffer: 500,
			Policy: policy.TTLRatio{}, Proto: SprayAndWait{Binary: true},
			Rate:              core.FixedRate{Mean: 1200},
			PreflightEviction: true,
			Clock:             func() float64 { return tn.now },
			Collector:         tn.collector, Tracker: tn.tracker, Oracle: tn.tracker,
		})
	}
	a, b := mk(0), mk(1)
	b.Originate(&msg.Message{ID: 1, Source: 1, Dest: 3, Size: 500, Created: 0, TTL: 100000, InitialCopies: 8}, 0)
	a.Originate(&msg.Message{ID: 2, Source: 0, Dest: 3, Size: 500, Created: 0, TTL: 600, InitialCopies: 8}, 0)
	tn.now = 10
	offer, ok := a.NextOffer(b, nil)
	if !ok {
		t.Fatal("no offer")
	}
	if b.PreAccept(offer, tn.now) {
		t.Fatal("preflight accepted the weakest newcomer")
	}
	if got := a.Buffer().Get(2); got.Copies != 8 {
		t.Fatalf("sender copies = %d, want untouched 8", got.Copies)
	}
	if tn.collector.Forwards != 0 {
		t.Fatal("refused transfer counted as forward")
	}
}

// Arrival drops must not corrupt the ground-truth tracker: the copy was
// never stored, so live counts stay balanced.
func TestArrivalDropTrackerBalance(t *testing.T) {
	tn := newTestNet(4, policy.TTLRatio{}, SprayAndWait{Binary: true}, 500, false)
	a, b := tn.hosts[0], tn.hosts[1]
	b.Originate(tn.message(1, 1, 3, 8, 500, 100000), 0)
	a.Originate(tn.message(2, 0, 3, 8, 500, 600), 0)
	tn.now = 10
	offer, _ := a.NextOffer(b, nil)
	CommitTransfer(a, b, offer, tn.now)
	if tn.tracker.Live(2) != 1 { // only the sender's copy
		t.Fatalf("tracker live = %d, want 1", tn.tracker.Live(2))
	}
}
