package routing

import (
	"fmt"

	"sdsrp/internal/fault"
	"sdsrp/internal/msg"
	"sdsrp/internal/obs"
)

// Offer is a proposed transfer of the sender's copy S with semantics Kind.
type Offer struct {
	S    *msg.Stored
	Kind Kind
}

// NextOffer picks the next transfer from h to peer: the highest-priority
// eligible message under the host's buffer-management policy, exactly as
// the paper's Algorithm 1 schedules ("return ID_S", the top-priority
// message). Deliveries get no special treatment — a wait-phase copy meeting
// its destination still has to win the priority ordering, which is
// precisely what sinks Spray-and-Wait-C in the paper's evaluation (its
// deliverable copies always rank last). Messages for which skip returns
// true are ignored (the network layer uses this to avoid re-offering
// messages refused earlier in the same contact). ok is false when nothing
// is eligible.
func (h *Host) NextOffer(peer *Host, skip func(msg.ID) bool) (Offer, bool) {
	now := h.clock()
	ordered := h.ord.SendOrder(h.pol, h, h.buf.Items())
	for _, s := range ordered {
		if s.M.Expired(now) || (skip != nil && skip(s.M.ID)) {
			continue
		}
		if kind, ok := h.proto.Eligible(h, peer, s); ok {
			return Offer{S: s, Kind: kind}, true
		}
	}
	return Offer{}, false
}

// Phantom builds the copy the receiver would hold if the offer completed at
// time now, without mutating the sender's copy. The receiver's policy
// evaluates this phantom when planning eviction.
func (o Offer) Phantom(now float64) *msg.Stored {
	switch o.Kind {
	case KindSpray:
		give := o.S.Copies / 2
		history := make([]float64, len(o.S.SprayTimes)+1)
		copy(history, o.S.SprayTimes)
		history[len(history)-1] = now
		return &msg.Stored{M: o.S.M, Copies: give, ReceivedAt: now,
			Hops: o.S.Hops + 1, SprayTimes: history}
	case KindSpraySource:
		history := make([]float64, len(o.S.SprayTimes)+1)
		copy(history, o.S.SprayTimes)
		history[len(history)-1] = now
		return &msg.Stored{M: o.S.M, Copies: 1, ReceivedAt: now,
			Hops: o.S.Hops + 1, SprayTimes: history}
	case KindRelay:
		return o.S.Relay(now, 1)
	case KindHandoff:
		return o.S.Relay(now, o.S.Copies)
	case KindDelivery:
		// Deliveries are consumed, not stored.
		return &msg.Stored{M: o.S.M, Copies: o.S.Copies, ReceivedAt: now, Hops: o.S.Hops + 1}
	default:
		//lint:invariant Kind is assigned only from the four KindX constants by the offer constructors
		panic(fmt.Sprintf("routing: phantom for unknown kind %v", o.Kind))
	}
}

// PreAccept is the receiver-side preflight run before any bytes move.
// Deliveries are always welcome. A replication is rejected when the
// receiver's dropped list contains the message (the paper's "nodes reject
// receiving the message already in their dropped lists" — re-checked here
// because gossip merged mid-contact may postdate the Eligible check) and,
// only in preflight-eviction mode (an ablation; the paper's Algorithm 1
// receives first and drops after), when the receiver's buffer could not
// admit the phantom under its eviction policy. PreAccept does not mutate
// the buffer.
func (h *Host) PreAccept(o Offer, now float64) bool {
	if o.Kind == KindDelivery {
		return true
	}
	// A selfish node refuses to carry anyone else's traffic (it still
	// accepts deliveries above and originates its own messages).
	if h.role == fault.RoleSelfish {
		return false
	}
	if h.drops != nil && h.drops.RejectsIncoming(o.S.M.ID) {
		return false
	}
	if !h.preflight {
		return true
	}
	_, ok := h.ord.PlanEviction(h.pol, h, h.buf, o.Phantom(now))
	return ok
}

// CommitTransfer finalizes a completed transfer between sender and
// receiver. It performs the sender-side token accounting, the
// receiver-side eviction + store, and all stats bookkeeping. It returns
// false when the completed bytes were wasted (the receiver acquired the
// message through a third party mid-transfer, or its buffer filled with
// higher-priority traffic).
func CommitTransfer(sender, receiver *Host, o Offer, now float64) bool {
	id := o.S.M.ID
	c := sender.collector

	if o.Kind == KindDelivery {
		if receiver.received[id] {
			// A second copy arrived through another path mid-transfer.
			sender.emit(obs.Event{T: now, Type: obs.MessageRefused, Msg: id,
				Node: sender.id, Peer: receiver.id})
			c.TransferRefused()
			return false
		}
		receiver.received[id] = true
		if receiver.acks != nil {
			receiver.acks.Add(id)
		}
		c.TransferCompleted()
		c.Delivered(id, now, o.S.M.Created, o.S.Hops+1)
		sender.emit(obs.Event{T: now, Type: obs.MessageDelivered, Msg: id,
			Node: sender.id, Peer: receiver.id, Hops: o.S.Hops + 1,
			Latency: now - o.S.M.Created})
		// The delivering node knows the destination is served: its copy is
		// useless now.
		if sender.buf.Remove(id) != nil && sender.tracker != nil {
			sender.tracker.NoteRemoved(id, sender.id)
		}
		if receiver.tracker != nil {
			receiver.tracker.NoteDelivered(id, receiver.id)
		}
		return true
	}

	// Replication kinds. Re-validate: the receiver's state may have changed
	// during the transfer. A duplicate or dropped-list hit wastes the
	// transfer without touching the sender's tokens (header-level dedup).
	if receiver.buf.Has(id) || receiver.received[id] ||
		(receiver.drops != nil && receiver.drops.RejectsIncoming(id)) {
		sender.emit(obs.Event{T: now, Type: obs.MessageRefused, Msg: id,
			Node: sender.id, Peer: receiver.id})
		c.TransferRefused()
		return false
	}
	incoming := o.Phantom(now)

	// The bytes moved: the sender's token accounting is final regardless of
	// what the receiver's buffer policy decides next (Algorithm 1 receives
	// first, then drops — a discarded newcomer destroys the sprayed
	// tokens).
	switch o.Kind {
	case KindSpray:
		got := o.S.Split(now)
		// Split recomputes the same numbers as Phantom; they must agree.
		if got.Copies != incoming.Copies {
			//lint:invariant Phantom and Split compute ⌊C/2⌋ from the same copy; divergence means the token ledger is corrupt
			panic("routing: phantom/split divergence")
		}
	case KindSpraySource:
		o.S.Copies--
		o.S.SprayTimes = append(o.S.SprayTimes, now)
	case KindRelay:
		// No sender-side token change.
	case KindHandoff:
		if sender.buf.Remove(id) != nil && sender.tracker != nil {
			sender.tracker.NoteRemoved(id, sender.id)
		}
	}
	o.S.Forwarded++
	c.TransferCompleted()
	sender.emit(obs.Event{T: now, Type: obs.MessageForwarded, Msg: id,
		Node: sender.id, Peer: receiver.id, Copies: incoming.Copies,
		Kind: o.Kind.String()})

	// A black-hole receiver swallows the copy after the sender committed:
	// tokens and bandwidth are spent, nothing is stored, and — unlike a
	// policy drop — no dropped-list record betrays the attacker.
	if receiver.role == fault.RoleBlackHole {
		receiver.emit(obs.Event{T: now, Type: obs.TransferLost, Msg: id,
			Node: sender.id, Peer: receiver.id})
		c.TransferLost()
		return false
	}

	victims, ok := receiver.ord.PlanEviction(receiver.pol, receiver, receiver.buf, incoming)
	if !ok {
		// The newcomer is the weakest: dropped on arrival. It enters the
		// receiver's dropped list (enabling SDSRP's future pre-rejection)
		// and counts as a policy drop.
		if receiver.tracer != nil {
			receiver.tracer.Emit(obs.Event{T: now, Type: obs.MessageDropped,
				Msg: id, Node: receiver.id,
				Priority: receiver.pol.DropScore(receiver, incoming)})
		}
		if receiver.drops != nil {
			receiver.drops.RecordDrop(id, now)
		}
		c.Dropped()
		return false
	}
	for _, v := range victims {
		receiver.DropMessage(v, now)
	}
	if err := receiver.buf.Add(incoming); err != nil {
		//lint:invariant PlanEviction just freed enough bytes for incoming in this same event; Add cannot overflow
		panic(fmt.Sprintf("routing: add after eviction: %v", err))
	}
	if receiver.tracker != nil {
		receiver.tracker.NoteStored(id, receiver.id)
	}
	return true
}
