package routing

import (
	"math"
	"testing"

	"sdsrp/internal/policy"
)

func TestPredictTableDirectEncounter(t *testing.T) {
	tb := NewPredictTable()
	tb.Encounter(5, nil, 0)
	if p := tb.P(5, 0); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("P after first encounter = %v, want 0.75", p)
	}
	tb.Encounter(5, nil, 0)
	// 0.75 + 0.25*0.75 = 0.9375
	if p := tb.P(5, 0); math.Abs(p-0.9375) > 1e-12 {
		t.Fatalf("P after second encounter = %v", p)
	}
	if p := tb.P(6, 0); p != 0 {
		t.Fatalf("unmet node has P = %v", p)
	}
}

func TestPredictTableAging(t *testing.T) {
	tb := NewPredictTable()
	tb.Encounter(5, nil, 0)
	// After 10 aging units: 0.75 * 0.98^10.
	want := 0.75 * math.Pow(0.98, 10)
	if p := tb.P(5, 10*tb.AgingUnit); math.Abs(p-want) > 1e-9 {
		t.Fatalf("aged P = %v, want %v", p, want)
	}
	// Tiny values are garbage-collected eventually.
	_ = tb.P(5, 1e9)
	if tb.Len() != 0 {
		t.Fatalf("stale entries survived: %d", tb.Len())
	}
}

func TestPredictTableTransitivity(t *testing.T) {
	a := NewPredictTable()
	b := NewPredictTable()
	// b knows the destination 9 well.
	b.Encounter(9, nil, 0)
	// a meets b: direct P(a,b)=0.75 and transitive P(a,9)=0.75*0.75*0.25.
	a.Encounter(1, b, 0)
	want := 0.75 * 0.75 * 0.25
	if p := a.P(9, 0); math.Abs(p-want) > 1e-12 {
		t.Fatalf("transitive P = %v, want %v", p, want)
	}
	// Transitivity never lowers an existing higher value.
	a.p[9] = 0.9
	a.Encounter(1, b, 0)
	if p := a.P(9, 0); p < 0.9 {
		t.Fatalf("transitive update lowered P to %v", p)
	}
}

func TestProphetEligibility(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, NewProphet(), 10000, false)
	// Each host needs its own instance.
	for i := range tn.hosts {
		tn.hosts[i].proto = NewProphet()
	}
	a, b := tn.hosts[0], tn.hosts[1]
	a.Originate(tn.message(1, 0, 3, 1, 500, 100000), 0)
	// Neither has met the destination: no relay.
	if _, ok := a.NextOffer(b, nil); ok {
		t.Fatal("prophet relayed without predictability gain")
	}
	// b meets the destination: now b is the better carrier.
	tn.now = 100
	b.OnLinkUp(tn.hosts[3], tn.now)
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.Kind != KindRelay {
		t.Fatalf("offer = %+v ok=%v", offer, ok)
	}
	// Direct delivery always allowed.
	offer, ok = a.NextOffer(tn.hosts[3], nil)
	if !ok || offer.Kind != KindDelivery {
		t.Fatal("prophet refused direct delivery")
	}
}

func TestProphetContactHookWiring(t *testing.T) {
	tn := newTestNet(3, policy.FIFO{}, NewProphet(), 10000, false)
	for i := range tn.hosts {
		tn.hosts[i].proto = NewProphet()
	}
	a, b := tn.hosts[0], tn.hosts[1]
	a.OnLinkUp(b, 10)
	b.OnLinkUp(a, 10)
	at := predictTableOf(a)
	if at.P(1, 10) <= 0 {
		t.Fatal("OnLinkUp did not feed the prophet table")
	}
}

func TestPredictGatedSpray(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, NewSprayAndWaitPredict(), 10000, false)
	for i := range tn.hosts {
		tn.hosts[i].proto = NewSprayAndWaitPredict()
	}
	a, b, c := tn.hosts[0], tn.hosts[1], tn.hosts[2]
	a.Originate(tn.message(1, 0, 3, 8, 500, 100000), 0)
	// No information anywhere: tie (0 >= 0) keeps spraying alive.
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.Kind != KindSpray {
		t.Fatalf("uninformed spray blocked: %+v ok=%v", offer, ok)
	}
	// The carrier meets the destination: peers with no knowledge are now
	// worse than the carrier, so spraying to them stops.
	tn.now = 50
	a.OnLinkUp(tn.hosts[3], tn.now)
	if _, ok := a.NextOffer(c, nil); ok {
		t.Fatal("sprayed to a strictly worse peer")
	}
	// A peer that also met the destination qualifies again.
	c.OnLinkUp(tn.hosts[3], tn.now)
	c.OnLinkUp(tn.hosts[3], tn.now) // twice: P_c > P_a after aging equality
	tn.now = 60
	if _, ok := a.NextOffer(c, nil); !ok {
		t.Fatal("spray to an equally-promising peer blocked")
	}
}

func TestProtocolByNameReturnsFreshInstances(t *testing.T) {
	p1, _ := ProtocolByName("prophet")
	p2, _ := ProtocolByName("prophet")
	if p1.(*Prophet).table == p2.(*Prophet).table {
		t.Fatal("prophet instances share state")
	}
	if _, ok := ProtocolByName("spray-and-wait-predict"); !ok {
		t.Fatal("snw-predict unknown")
	}
}
