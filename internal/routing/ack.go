package routing

import "sdsrp/internal/msg"

// AckTable implements the immunization ("anti-packet") mechanism the paper
// explicitly excludes from its model (Section III-A) and that we provide as
// an extension: when a message reaches its destination, a compact ACK
// record is created; ACKs gossip on every contact, and nodes purge and
// refuse copies of acknowledged messages. The extra-ack experiment
// quantifies how much of the buffer-management problem immunization would
// solve on its own.
type AckTable struct {
	acked map[msg.ID]struct{}
}

// NewAckTable returns an empty table.
func NewAckTable() *AckTable {
	return &AckTable{acked: make(map[msg.ID]struct{})}
}

// Add records that id has been delivered.
func (t *AckTable) Add(id msg.ID) { t.acked[id] = struct{}{} }

// Has reports whether id is known to be delivered.
func (t *AckTable) Has(id msg.ID) bool {
	_, ok := t.acked[id]
	return ok
}

// MergeFrom absorbs the peer's ACKs.
func (t *AckTable) MergeFrom(peer *AckTable) {
	for id := range peer.acked {
		t.acked[id] = struct{}{}
	}
}

// Len returns the number of acknowledged messages known.
func (t *AckTable) Len() int { return len(t.acked) }

// Forget drops the record for id (TTL expiry: the ACK is moot once the
// message is globally dead).
func (t *AckTable) Forget(id msg.ID) { delete(t.acked, id) }
