package routing

import (
	"math"

	"sdsrp/internal/msg"
)

// PredictTable is the PRoPHET delivery-predictability state of one node
// (Lindgren et al.): P(this, x) estimates the chance of eventually meeting
// node x, grown on direct encounters, propagated transitively, and aged
// over time. It also powers the predictability-gated spray variant the
// paper cites among Spray-and-Wait improvements (Shahid & Asif's
// multischeme spraying).
type PredictTable struct {
	p         map[int]float64
	lastAge   float64
	PInit     float64 // direct-encounter increment (default 0.75)
	Beta      float64 // transitivity damping (default 0.25)
	Gamma     float64 // aging base per AgingUnit (default 0.98)
	AgingUnit float64 // seconds per aging step (default 30)
}

// NewPredictTable returns a table with the protocol's canonical constants.
func NewPredictTable() *PredictTable {
	return &PredictTable{
		p:         make(map[int]float64),
		PInit:     0.75,
		Beta:      0.25,
		Gamma:     0.98,
		AgingUnit: 30,
	}
}

// age decays every entry by Gamma^(Δt/AgingUnit).
func (t *PredictTable) age(now float64) {
	dt := now - t.lastAge
	if dt <= 0 {
		return
	}
	factor := math.Pow(t.Gamma, dt/t.AgingUnit)
	for id, v := range t.p {
		v *= factor
		if v < 1e-6 {
			delete(t.p, id)
		} else {
			t.p[id] = v
		}
	}
	t.lastAge = now
}

// P returns the aged predictability of meeting node x at time now.
func (t *PredictTable) P(x int, now float64) float64 {
	t.age(now)
	return t.p[x]
}

// Encounter applies the direct-encounter update for peer and the
// transitive update through the peer's table.
func (t *PredictTable) Encounter(peer int, peerTable *PredictTable, now float64) {
	t.age(now)
	t.p[peer] += (1 - t.p[peer]) * t.PInit
	if peerTable == nil {
		return
	}
	peerTable.age(now)
	pab := t.p[peer]
	for x, pbx := range peerTable.p {
		if x == peer {
			continue
		}
		if v := pab * pbx * t.Beta; v > t.p[x] {
			t.p[x] = v
		}
	}
}

// Len returns the number of tracked destinations (diagnostics).
func (t *PredictTable) Len() int { return len(t.p) }

// predictTableOf fetches a host's table when its protocol carries one.
func predictTableOf(h *Host) *PredictTable {
	switch proto := h.proto.(type) {
	case *Prophet:
		return proto.table
	case *SprayAndWaitPredict:
		return proto.table
	}
	return nil
}

// Prophet is the PRoPHET router: replicate to peers with strictly higher
// delivery predictability for the destination. Each host needs its own
// instance (the table is per-node state); ProtocolByName returns fresh
// instances.
type Prophet struct {
	table *PredictTable
}

// NewProphet returns a router with an empty predictability table.
func NewProphet() *Prophet { return &Prophet{table: NewPredictTable()} }

// Name implements Protocol.
func (*Prophet) Name() string { return "prophet" }

// OnContact implements ContactHook.
func (p *Prophet) OnContact(self, peer *Host, now float64) {
	p.table.Encounter(peer.id, predictTableOf(peer), now)
}

// Eligible implements Protocol.
func (p *Prophet) Eligible(a, b *Host, s *msg.Stored) (Kind, bool) {
	if deliverable(b, s) {
		return KindDelivery, true
	}
	if !peerWants(b, s) {
		return 0, false
	}
	bt := predictTableOf(b)
	if bt == nil {
		return 0, false
	}
	now := a.clock()
	if bt.P(s.M.Dest, now) > p.table.P(s.M.Dest, now) {
		return KindRelay, true
	}
	return 0, false
}

// SprayAndWaitPredict is the predictability-gated binary spray of the
// paper's reference [20] (Shahid & Asif): spray half the tokens only to
// peers whose delivery predictability for the destination is at least the
// carrier's; the wait phase is unchanged. It avoids "identical spraying
// and blind forwarding".
type SprayAndWaitPredict struct {
	table *PredictTable
}

// NewSprayAndWaitPredict returns a fresh instance (per-host state).
func NewSprayAndWaitPredict() *SprayAndWaitPredict {
	return &SprayAndWaitPredict{table: NewPredictTable()}
}

// Name implements Protocol.
func (*SprayAndWaitPredict) Name() string { return "spray-and-wait-predict" }

// OnContact implements ContactHook.
func (p *SprayAndWaitPredict) OnContact(self, peer *Host, now float64) {
	p.table.Encounter(peer.id, predictTableOf(peer), now)
}

// Eligible implements Protocol.
func (p *SprayAndWaitPredict) Eligible(a, b *Host, s *msg.Stored) (Kind, bool) {
	if deliverable(b, s) {
		return KindDelivery, true
	}
	if s.Copies <= 1 || !peerWants(b, s) {
		return 0, false
	}
	bt := predictTableOf(b)
	if bt == nil {
		return 0, false
	}
	now := a.clock()
	// Gate: the peer must look at least as promising as the carrier; a
	// peer with no information (P=0) still receives when the carrier has
	// none either, preserving spray liveness early on.
	if bt.P(s.M.Dest, now) >= p.table.P(s.M.Dest, now) {
		return KindSpray, true
	}
	return 0, false
}
