package routing

import (
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/msg"
	"sdsrp/internal/policy"
	"sdsrp/internal/stats"
)

// testNet is a tiny harness: hosts sharing a clock, collector and tracker.
type testNet struct {
	now       float64
	collector *stats.Collector
	tracker   *Tracker
	hosts     []*Host
}

func newTestNet(n int, pol policy.Policy, proto Protocol, bufBytes int64, dropList bool) *testNet {
	tn := &testNet{collector: stats.NewCollector(), tracker: NewTracker()}
	for i := 0; i < n; i++ {
		tn.hosts = append(tn.hosts, NewHost(HostConfig{
			ID:          i,
			Nodes:       n,
			Buffer:      bufBytes,
			Policy:      pol,
			Proto:       proto,
			Rate:        core.FixedRate{Mean: 1200},
			UseDropList: dropList,
			Clock:       func() float64 { return tn.now },
			Collector:   tn.collector,
			Tracker:     tn.tracker,
			Oracle:      tn.tracker,
		}))
	}
	return tn
}

func (tn *testNet) message(id msg.ID, src, dst, copies int, size int64, ttl float64) *msg.Message {
	return &msg.Message{ID: id, Source: src, Dest: dst, Size: size,
		Created: tn.now, TTL: ttl, InitialCopies: copies}
}

// transferAll performs one full exchange from a to b: repeatedly take the
// best offer and commit it (as if bandwidth were infinite).
func (tn *testNet) transferAll(a, b *Host) int {
	count := 0
	refused := map[msg.ID]bool{}
	for {
		offer, ok := a.NextOffer(b, func(id msg.ID) bool { return refused[id] })
		if !ok {
			return count
		}
		if !b.PreAccept(offer, tn.now) || !CommitTransfer(a, b, offer, tn.now) {
			refused[offer.S.M.ID] = true
			continue
		}
		count++
	}
}

func TestOriginateStores(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 1000, false)
	h := tn.hosts[0]
	if !h.Originate(tn.message(1, 0, 3, 8, 400, 1000), 0) {
		t.Fatal("originate failed")
	}
	if !h.Buffer().Has(1) {
		t.Fatal("message not stored")
	}
	if tn.collector.Created != 1 {
		t.Fatalf("created = %d", tn.collector.Created)
	}
	if tn.tracker.Live(1) != 1 || tn.tracker.Seen(1) != 0 {
		t.Fatalf("tracker live=%d seen=%d", tn.tracker.Live(1), tn.tracker.Seen(1))
	}
}

func TestOriginateOverflowEvictsOldest(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 1000, false)
	h := tn.hosts[0]
	tn.now = 1
	h.Originate(tn.message(1, 0, 3, 8, 600, 1000), tn.now)
	tn.now = 2
	h.Originate(tn.message(2, 0, 3, 8, 600, 1000), tn.now)
	if h.Buffer().Has(1) || !h.Buffer().Has(2) {
		t.Fatal("FIFO origination did not evict the older message")
	}
	if tn.collector.PolicyDrops != 1 {
		t.Fatalf("drops = %d", tn.collector.PolicyDrops)
	}
	if tn.tracker.Live(1) != 0 {
		t.Fatalf("tracker live(1) = %d", tn.tracker.Live(1))
	}
}

func TestSprayTransfer(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 10000, false)
	a, b := tn.hosts[0], tn.hosts[1]
	a.Originate(tn.message(1, 0, 3, 8, 500, 1000), 0)

	tn.now = 10
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.Kind != KindSpray {
		t.Fatalf("offer = %+v ok=%v", offer, ok)
	}
	if !b.PreAccept(offer, tn.now) {
		t.Fatal("preflight rejected")
	}
	if !CommitTransfer(a, b, offer, tn.now) {
		t.Fatal("commit failed")
	}
	as, bs := a.Buffer().Get(1), b.Buffer().Get(1)
	if as.Copies != 4 || bs.Copies != 4 {
		t.Fatalf("token split %d/%d, want 4/4", as.Copies, bs.Copies)
	}
	if bs.Hops != 1 || as.Hops != 0 {
		t.Fatalf("hops %d/%d", as.Hops, bs.Hops)
	}
	if len(as.SprayTimes) != 1 || len(bs.SprayTimes) != 1 || bs.SprayTimes[0] != 10 {
		t.Fatal("spray history wrong")
	}
	if tn.collector.Forwards != 1 {
		t.Fatalf("forwards = %d", tn.collector.Forwards)
	}
	if tn.tracker.Live(1) != 2 || tn.tracker.Seen(1) != 1 {
		t.Fatalf("tracker live=%d seen=%d", tn.tracker.Live(1), tn.tracker.Seen(1))
	}
	// b must not be offered the same message again.
	if _, ok := a.NextOffer(b, nil); ok {
		t.Fatal("re-offered a message the peer already has")
	}
}

func TestWaitPhaseNoSpray(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 10000, false)
	a, b := tn.hosts[0], tn.hosts[1]
	m := tn.message(1, 0, 3, 1, 500, 1000) // single copy: wait phase from birth
	a.Originate(m, 0)
	if _, ok := a.NextOffer(b, nil); ok {
		t.Fatal("wait-phase message sprayed to a relay")
	}
	// But the destination still gets it.
	dest := tn.hosts[3]
	offer, ok := a.NextOffer(dest, nil)
	if !ok || offer.Kind != KindDelivery {
		t.Fatalf("wait-phase delivery offer = %v %v", offer, ok)
	}
}

func TestDeliveryConsumes(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 10000, false)
	a, dest := tn.hosts[0], tn.hosts[3]
	a.Originate(tn.message(1, 0, 3, 8, 500, 1000), 0)
	tn.now = 20
	offer, _ := a.NextOffer(dest, nil)
	if offer.Kind != KindDelivery {
		t.Fatalf("kind = %v", offer.Kind)
	}
	if !CommitTransfer(a, dest, offer, tn.now) {
		t.Fatal("delivery failed")
	}
	if a.Buffer().Has(1) {
		t.Fatal("sender kept its copy after confirmed delivery")
	}
	if dest.Buffer().Has(1) {
		t.Fatal("destination buffered a consumed message")
	}
	if !dest.Received(1) {
		t.Fatal("destination did not record receipt")
	}
	s := tn.collector.Summarize()
	if s.Delivered != 1 || s.Forwards != 1 {
		t.Fatalf("delivered=%d forwards=%d", s.Delivered, s.Forwards)
	}
	if tn.tracker.Live(1) != 0 || tn.tracker.Seen(1) != 1 {
		t.Fatalf("tracker live=%d seen=%d", tn.tracker.Live(1), tn.tracker.Seen(1))
	}
	// Delivering again from another holder is refused.
	b := tn.hosts[1]
	b.Originate(tn.message(1, 0, 3, 8, 500, 1000), tn.now) // same id copy
	if _, ok := b.NextOffer(dest, nil); ok {
		t.Fatal("destination accepted a duplicate")
	}
}

// Algorithm 1 schedules purely by priority: a deliverable message does NOT
// jump the queue. Under FIFO, the older spray goes out before the newer
// message even though the peer is that newer message's destination.
func TestSchedulingIsPurePriorityOrder(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 10000, false)
	a, b := tn.hosts[0], tn.hosts[1]
	a.Originate(tn.message(1, 0, 2, 8, 500, 1000), 0) // for someone else, older
	tn.now = 1
	a.Originate(tn.message(2, 0, 1, 8, 500, 1000), tn.now) // for b, newer
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.Kind != KindSpray || offer.S.M.ID != 1 {
		t.Fatalf("offer = %+v, want spray of the older message 1", offer)
	}
	// Once the peer holds message 1, the delivery of message 2 is next.
	CommitTransfer(a, b, offer, tn.now)
	offer, ok = a.NextOffer(b, nil)
	if !ok || offer.Kind != KindDelivery || offer.S.M.ID != 2 {
		t.Fatalf("second offer = %+v, want delivery of 2", offer)
	}
}

// Under SW-C the wait-phase copy ranks last even against its own
// destination — the scheduling pathology the paper attributes to
// Spray-and-Wait-C.
func TestSWCDelaysDeliverableWaitCopies(t *testing.T) {
	tn := newTestNet(4, policy.CopiesRatio{}, SprayAndWait{Binary: true}, 10000, false)
	a, b := tn.hosts[0], tn.hosts[1]
	waitCopy := tn.message(1, 0, 1, 8, 500, 1000) // destined for b
	a.Originate(waitCopy, 0)
	a.Buffer().Get(1).Copies = 1 // wait phase
	a.Originate(tn.message(2, 0, 3, 8, 500, 1000), 0)
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.S.M.ID != 2 {
		t.Fatalf("offer = %+v, want the token-rich spray first", offer)
	}
}

func TestNextOfferSkipAndExpiry(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 10000, false)
	a, b := tn.hosts[0], tn.hosts[1]
	a.Originate(tn.message(1, 0, 3, 8, 500, 50), 0) // will expire at t=50
	tn.now = 1
	a.Originate(tn.message(2, 0, 3, 8, 500, 1000), tn.now)
	tn.now = 60 // message 1 now expired
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.S.M.ID != 2 {
		t.Fatalf("expired message offered: %+v", offer)
	}
	if _, ok := a.NextOffer(b, func(id msg.ID) bool { return id == 2 }); ok {
		t.Fatal("skip function ignored")
	}
}

func TestPolicyOrderDrivesOffers(t *testing.T) {
	tn := newTestNet(4, policy.TTLRatio{}, SprayAndWait{Binary: true}, 10000, false)
	a, b := tn.hosts[0], tn.hosts[1]
	a.Originate(tn.message(1, 0, 3, 8, 400, 100), 0)  // expiring soon
	a.Originate(tn.message(2, 0, 3, 8, 400, 5000), 0) // fresh
	tn.now = 10
	offer, _ := a.NextOffer(b, nil)
	if offer.S.M.ID != 2 {
		t.Fatalf("SW-O offered %d first, want the fresher 2", offer.S.M.ID)
	}
}

func TestCommitRefusedWhenReceiverGotCopyMeanwhile(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 10000, false)
	a, b, c := tn.hosts[0], tn.hosts[1], tn.hosts[2]
	a.Originate(tn.message(1, 0, 3, 8, 500, 1000), 0)
	tn.now = 5
	offer, _ := a.NextOffer(b, nil)
	// While the transfer is in flight, b receives the message from c.
	tn.transferAll(a, c)
	offer2, ok := c.NextOffer(b, nil)
	if !ok {
		t.Fatal("c has nothing for b")
	}
	CommitTransfer(c, b, offer2, tn.now)
	// Now the original transfer lands: refused, sender tokens unchanged.
	before := offer.S.Copies
	if CommitTransfer(a, b, offer, tn.now) {
		t.Fatal("duplicate commit succeeded")
	}
	if offer.S.Copies != before {
		t.Fatal("refused commit still split tokens")
	}
	if tn.collector.Refused == 0 {
		t.Fatal("refusal not counted")
	}
}

func TestEvictionOnReceive(t *testing.T) {
	// Receiver buffer fits one message; FIFO evicts its old one for the new.
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 500, false)
	a, b := tn.hosts[0], tn.hosts[1]
	b.Originate(tn.message(1, 1, 3, 8, 500, 1000), 0)
	tn.now = 5
	a.Originate(tn.message(2, 0, 3, 8, 500, 1000), tn.now)
	tn.now = 10
	offer, _ := a.NextOffer(b, nil)
	if !b.PreAccept(offer, tn.now) {
		t.Fatal("preflight rejected acceptable message")
	}
	if !CommitTransfer(a, b, offer, tn.now) {
		t.Fatal("commit failed")
	}
	if b.Buffer().Has(1) || !b.Buffer().Has(2) {
		t.Fatal("eviction wrong")
	}
	if tn.collector.PolicyDrops != 1 {
		t.Fatalf("drops = %d", tn.collector.PolicyDrops)
	}
}

func TestDropListRejectsReceipt(t *testing.T) {
	tn := newTestNet(4, policy.SDSRP{}, SprayAndWait{Binary: true}, 10000, true)
	a, b := tn.hosts[0], tn.hosts[1]
	a.Originate(tn.message(1, 0, 3, 8, 500, 1000), 0)
	// b dropped message 1 in the past.
	bCopy := &msg.Stored{M: tn.message(1, 0, 3, 8, 500, 1000), Copies: 1}
	b.Buffer().Add(bCopy)
	b.DropMessage(bCopy, 1)
	tn.now = 10
	if _, ok := a.NextOffer(b, nil); ok {
		t.Fatal("peer offered a message in its dropped list")
	}
}

func TestDropListGossipOnLinkUp(t *testing.T) {
	tn := newTestNet(4, policy.SDSRP{}, SprayAndWait{Binary: true}, 10000, true)
	a, b, c := tn.hosts[0], tn.hosts[1], tn.hosts[2]
	aCopy := &msg.Stored{M: tn.message(9, 0, 3, 8, 500, 1000), Copies: 1}
	a.Buffer().Add(aCopy)
	a.DropMessage(aCopy, 1)
	b.OnLinkUp(a, 5)
	if b.DropTable().DroppedCount(9) != 1 {
		t.Fatal("gossip did not propagate the drop record")
	}
	// Second-hand gossip: b -> c.
	c.OnLinkUp(b, 8)
	if c.DropTable().DroppedCount(9) != 1 {
		t.Fatal("second-hand gossip failed")
	}
}

func TestExpireMessages(t *testing.T) {
	tn := newTestNet(4, policy.SDSRP{}, SprayAndWait{Binary: true}, 10000, true)
	a := tn.hosts[0]
	a.Originate(tn.message(1, 0, 3, 8, 500, 50), 0)
	a.Originate(tn.message(2, 0, 3, 8, 500, 5000), 0)
	tn.now = 100
	if n := a.ExpireMessages(tn.now); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if a.Buffer().Has(1) || !a.Buffer().Has(2) {
		t.Fatal("expiry removed wrong message")
	}
	if tn.collector.ExpiredDrops != 1 {
		t.Fatalf("expired counter = %d", tn.collector.ExpiredDrops)
	}
	if tn.tracker.Live(1) != 0 {
		t.Fatal("tracker still counts expired copy")
	}
}

func TestEpidemicRelaysWithoutTokens(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, Epidemic{}, 10000, false)
	a, b := tn.hosts[0], tn.hosts[1]
	a.Originate(tn.message(1, 0, 3, 1, 500, 1000), 0)
	tn.now = 10
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.Kind != KindRelay {
		t.Fatalf("offer = %+v ok=%v", offer, ok)
	}
	CommitTransfer(a, b, offer, tn.now)
	if !a.Buffer().Has(1) || !b.Buffer().Has(1) {
		t.Fatal("epidemic relay should copy, not move")
	}
	if b.Buffer().Get(1).Hops != 1 {
		t.Fatal("relay hops wrong")
	}
}

func TestDirectDeliveryOnlyDest(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, DirectDelivery{}, 10000, false)
	a := tn.hosts[0]
	a.Originate(tn.message(1, 0, 3, 4, 500, 1000), 0)
	if _, ok := a.NextOffer(tn.hosts[1], nil); ok {
		t.Fatal("direct delivery offered to a relay")
	}
	offer, ok := a.NextOffer(tn.hosts[3], nil)
	if !ok || offer.Kind != KindDelivery {
		t.Fatal("direct delivery failed to the destination")
	}
}

func TestSprayAndFocusHandoff(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndFocus{MinGain: 10}, 10000, false)
	a, b := tn.hosts[0], tn.hosts[1]
	a.Originate(tn.message(1, 0, 3, 1, 500, 1000), 0) // wait/focus phase
	// b met the destination recently; a never did.
	b.OnLinkUp(tn.hosts[3], 90)
	tn.now = 100
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.Kind != KindHandoff {
		t.Fatalf("offer = %+v ok=%v", offer, ok)
	}
	CommitTransfer(a, b, offer, tn.now)
	if a.Buffer().Has(1) {
		t.Fatal("handoff left the copy at the sender")
	}
	if got := b.Buffer().Get(1); got == nil || got.Copies != 1 {
		t.Fatal("handoff did not move the copy")
	}
	// Reverse direction: a (never met dest) gains nothing from handing back.
	offer2, ok2 := b.NextOffer(a, nil)
	if ok2 && offer2.Kind == KindHandoff {
		t.Fatal("ping-pong handoff")
	}
}

func TestSourceSprayMode(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: false}, 10000, false)
	a, b, c := tn.hosts[0], tn.hosts[1], tn.hosts[2]
	a.Originate(tn.message(1, 0, 3, 4, 500, 1000), 0)
	tn.now = 10
	offer, ok := a.NextOffer(b, nil)
	if !ok || offer.Kind != KindSpraySource {
		t.Fatalf("offer = %+v", offer)
	}
	CommitTransfer(a, b, offer, tn.now)
	if a.Buffer().Get(1).Copies != 3 || b.Buffer().Get(1).Copies != 1 {
		t.Fatal("source spray token accounting wrong")
	}
	// The relay b must not spray further.
	if _, ok := b.NextOffer(c, nil); ok {
		t.Fatal("relay sprayed in source mode")
	}
}

func TestFullSprayWaitDeliveryCycle(t *testing.T) {
	// End-to-end over the host layer: spray through relays until the
	// destination is met; token conservation holds throughout.
	tn := newTestNet(6, policy.FIFO{}, SprayAndWait{Binary: true}, 10000, false)
	src := tn.hosts[0]
	src.Originate(tn.message(1, 0, 5, 8, 500, 100000), 0)
	relays := []*Host{tn.hosts[1], tn.hosts[2], tn.hosts[3], tn.hosts[4]}
	for i, r := range relays {
		tn.now = float64(10 * (i + 1))
		tn.transferAll(src, r)
	}
	total := 0
	for _, h := range tn.hosts[:5] {
		if s := h.Buffer().Get(1); s != nil {
			total += s.Copies
		}
	}
	if total != 8 {
		t.Fatalf("token conservation violated: %d", total)
	}
	// A relay holding a copy meets the destination.
	tn.now = 100
	carrier := tn.hosts[1]
	if carrier.Buffer().Get(1) == nil {
		t.Fatal("relay 1 unexpectedly empty")
	}
	n := tn.transferAll(carrier, tn.hosts[5])
	if n != 1 {
		t.Fatalf("delivery transfers = %d", n)
	}
	if tn.collector.Summarize().Delivered != 1 {
		t.Fatal("message not delivered")
	}
}

func TestTrackerSeenExcludesSource(t *testing.T) {
	tr := NewTracker()
	tr.NoteCreated(1, 7)
	tr.NoteStored(1, 7)
	if tr.Seen(1) != 0 {
		t.Fatalf("seen = %d, want 0", tr.Seen(1))
	}
	tr.NoteStored(1, 8)
	tr.NoteStored(1, 9)
	if tr.Seen(1) != 2 || tr.Live(1) != 3 {
		t.Fatalf("seen=%d live=%d", tr.Seen(1), tr.Live(1))
	}
	tr.NoteRemoved(1, 8)
	if tr.Seen(1) != 2 || tr.Live(1) != 2 {
		t.Fatalf("after removal: seen=%d live=%d", tr.Seen(1), tr.Live(1))
	}
	// Re-storing at a node that already carried it doesn't inflate seen.
	tr.NoteStored(1, 8)
	if tr.Seen(1) != 2 {
		t.Fatalf("seen inflated to %d", tr.Seen(1))
	}
}

func TestLambdaEstimatorWiring(t *testing.T) {
	tn := &testNet{collector: stats.NewCollector(), tracker: NewTracker()}
	est := core.NewLambdaEstimator(1000, 1)
	h := NewHost(HostConfig{
		ID: 0, Nodes: 4, Buffer: 1000,
		Policy: policy.SDSRP{}, Proto: SprayAndWait{Binary: true},
		Rate:  est,
		Clock: func() float64 { return tn.now }, Collector: tn.collector,
	})
	peer := NewHost(HostConfig{
		ID: 1, Nodes: 4, Buffer: 1000,
		Policy: policy.SDSRP{}, Proto: SprayAndWait{Binary: true},
		Rate:  core.FixedRate{Mean: 1000},
		Clock: func() float64 { return tn.now }, Collector: tn.collector,
	})
	h.OnLinkUp(peer, 10)
	h.OnLinkDown(peer, 20)
	h.OnLinkUp(peer, 520) // sample: 500
	if est.Samples() != 1 {
		t.Fatalf("samples = %d", est.Samples())
	}
	if h.Lambda() <= 0 || h.EIMin() <= 0 {
		t.Fatal("host rate accessors broken")
	}
}

func TestProtocolByName(t *testing.T) {
	for _, name := range []string{"spray-and-wait", "snw", "spray-and-wait-source",
		"epidemic", "direct", "spray-and-focus", ""} {
		if _, ok := ProtocolByName(name); !ok {
			t.Fatalf("ProtocolByName(%q) failed", name)
		}
	}
	if _, ok := ProtocolByName("bogus"); ok {
		t.Fatal("bogus protocol accepted")
	}
}

// The host's policy.View implementation feeds SDSRP's estimators: verify
// the wiring end to end on a hand-built spread state.
func TestHostViewEstimates(t *testing.T) {
	tn := newTestNet(100, policy.SDSRP{}, SprayAndWait{Binary: true}, 10000, true)
	h := tn.hosts[0]
	if h.Nodes() != 100 {
		t.Fatalf("Nodes = %d", h.Nodes())
	}
	if h.Lambda() <= 0 || h.EIMin() <= 0 {
		t.Fatal("rate accessors not positive with a fixed rate")
	}
	// A copy with two splits long ago: m̂ bounded by tokens, n̂ = m̂+1-d̂.
	m := tn.message(42, 0, 9, 8, 500, 100000)
	s := &msg.Stored{M: m, Copies: 2, SprayTimes: []float64{0, 10}}
	tn.now = 100000 // far future: subtree doubling saturates at token bound
	seen := h.SeenEstimate(s)
	if seen < 2 || seen > 8 {
		t.Fatalf("SeenEstimate = %v, want within (splits, L]", seen)
	}
	liveBefore := h.LiveEstimate(s)
	// Two nodes report dropping the message: n̂ decreases accordingly.
	h.DropTable().RecordDrop(42, 50)
	other := tn.hosts[1]
	otherCopy := &msg.Stored{M: m, Copies: 1}
	other.Buffer().Add(otherCopy)
	other.DropMessage(otherCopy, 60)
	h.OnLinkUp(other, 70)
	liveAfter := h.LiveEstimate(s)
	if liveAfter >= liveBefore {
		t.Fatalf("LiveEstimate did not fall with drops: %v -> %v", liveBefore, liveAfter)
	}
	if liveAfter < 1 {
		t.Fatalf("LiveEstimate below 1: %v", liveAfter)
	}
}

// Oracle accessors read the tracker's ground truth.
func TestHostOracleAccessors(t *testing.T) {
	tn := newTestNet(5, policy.OracleUtility{}, SprayAndWait{Binary: true}, 10000, false)
	a := tn.hosts[0]
	a.Originate(tn.message(1, 0, 4, 8, 500, 100000), 0)
	tn.now = 10
	tn.transferAll(a, tn.hosts[1])
	tn.transferAll(a, tn.hosts[2])
	s := a.Buffer().Get(1)
	if got := a.TrueSeen(s); got != 2 {
		t.Fatalf("TrueSeen = %v, want 2", got)
	}
	if got := a.TrueLive(s); got != 3 {
		t.Fatalf("TrueLive = %v, want 3", got)
	}
}

func TestOriginateOversizedMessageDropped(t *testing.T) {
	tn := newTestNet(4, policy.FIFO{}, SprayAndWait{Binary: true}, 400, false)
	h := tn.hosts[0]
	if h.Originate(tn.message(1, 0, 3, 8, 500, 1000), 0) {
		t.Fatal("message larger than the buffer stored")
	}
	if tn.collector.Created != 1 || tn.collector.PolicyDrops != 1 {
		t.Fatalf("created=%d drops=%d", tn.collector.Created, tn.collector.PolicyDrops)
	}
	if tn.tracker.Live(1) != 0 {
		t.Fatal("tracker counts an unstored message")
	}
}
