// Package graph provides the road-network substrate for map-constrained
// mobility (the ONE simulator's map-based movement): an undirected weighted
// graph embedded in the plane, shortest paths, and nearest-vertex lookup.
package graph

import (
	"fmt"
	"math"

	"sdsrp/internal/eventq"
	"sdsrp/internal/geo"
)

// Graph is an undirected road network. Vertices are points in the plane;
// edge weights are Euclidean lengths. Construct with New, then AddVertex /
// AddEdge; Freeze validates connectivity queries.
type Graph struct {
	verts []geo.Point
	adj   [][]halfEdge
}

type halfEdge struct {
	to int32
	w  float64
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddVertex adds a vertex at p and returns its id.
func (g *Graph) AddVertex(p geo.Point) int {
	g.verts = append(g.verts, p)
	g.adj = append(g.adj, nil)
	return len(g.verts) - 1
}

// AddEdge connects vertices a and b with weight equal to their Euclidean
// distance. Self-loops are rejected; duplicate edges are ignored.
func (g *Graph) AddEdge(a, b int) error {
	if a == b {
		return fmt.Errorf("graph: self-loop at %d", a)
	}
	if a < 0 || a >= len(g.verts) || b < 0 || b >= len(g.verts) {
		return fmt.Errorf("graph: edge %d-%d out of range", a, b)
	}
	for _, e := range g.adj[a] {
		if int(e.to) == b {
			return nil
		}
	}
	w := g.verts[a].Dist(g.verts[b])
	g.adj[a] = append(g.adj[a], halfEdge{to: int32(b), w: w})
	g.adj[b] = append(g.adj[b], halfEdge{to: int32(a), w: w})
	return nil
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.verts) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// At returns the position of vertex v.
func (g *Graph) At(v int) geo.Point { return g.verts[v] }

// Bounds returns the bounding box of all vertices (zero rect when empty).
func (g *Graph) Bounds() geo.Rect {
	if len(g.verts) == 0 {
		return geo.Rect{}
	}
	lo, hi := g.verts[0], g.verts[0]
	for _, p := range g.verts[1:] {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	return geo.Rect{Min: lo, Max: hi}
}

// Nearest returns the vertex closest to p (-1 when the graph is empty).
func (g *Graph) Nearest(p geo.Point) int {
	best, bestD := -1, math.Inf(1)
	for i, v := range g.verts {
		if d := v.Dist2(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// ShortestPath returns the vertex sequence of a minimum-length path from a
// to b (inclusive) and its length. ok is false when b is unreachable.
// Plain binary-heap Dijkstra: road graphs here are small (thousands of
// vertices), queried once per movement leg.
func (g *Graph) ShortestPath(a, b int) (path []int, length float64, ok bool) {
	n := len(g.verts)
	if a < 0 || a >= n || b < 0 || b >= n {
		return nil, 0, false
	}
	if a == b {
		return []int{a}, 0, true
	}
	dist := make([]float64, n)
	prev := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	type item struct {
		v int32
		d float64
	}
	pq := eventq.New(func(x, y item) bool { return x.d < y.d })
	dist[a] = 0
	pq.Push(item{int32(a), 0})
	for {
		it, any := pq.Pop()
		if !any {
			return nil, 0, false
		}
		v := int(it.v)
		if done[v] {
			continue
		}
		done[v] = true
		if v == b {
			break
		}
		for _, e := range g.adj[v] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = it.v
				pq.Push(item{e.to, nd})
			}
		}
	}
	for v := int32(b); v != -1; v = prev[v] {
		path = append(path, int(v))
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[b], true
}

// Connected reports whether every vertex is reachable from vertex 0
// (vacuously true for empty graphs).
func (g *Graph) Connected() bool {
	if len(g.verts) == 0 {
		return true
	}
	seen := make([]bool, len(g.verts))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, int(e.to))
			}
		}
	}
	return count == len(g.verts)
}
