package graph

import (
	"testing"

	"sdsrp/internal/geo"
	"sdsrp/internal/rng"
)

func BenchmarkShortestPathGrid(b *testing.B) {
	g, err := GridCity(30, 30, 100, 0.1, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := s.IntN(g.Len())
		c := s.IntN(g.Len())
		if _, _, ok := g.ShortestPath(a, c); !ok {
			b.Fatal("unreachable on connected grid")
		}
	}
}

func BenchmarkNearest(b *testing.B) {
	g, _ := GridCity(30, 30, 100, 0, nil)
	s := rng.New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Nearest(geo.Point{X: s.Uniform(0, 2900), Y: s.Uniform(0, 2900)})
	}
}
