package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sdsrp/internal/geo"
	"sdsrp/internal/rng"
)

// square builds a 4-vertex unit square with one diagonal:
//
//	3---2
//	| / |
//	0---1
func square() *Graph {
	g := New()
	g.AddVertex(geo.Point{X: 0, Y: 0})
	g.AddVertex(geo.Point{X: 1, Y: 0})
	g.AddVertex(geo.Point{X: 1, Y: 1})
	g.AddVertex(geo.Point{X: 0, Y: 1})
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(0, 2)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := square()
	if g.Len() != 4 || g.Edges() != 5 {
		t.Fatalf("len=%d edges=%d", g.Len(), g.Edges())
	}
	if !g.Connected() {
		t.Fatal("square not connected")
	}
	b := g.Bounds()
	if b.Min != (geo.Point{}) || b.Max != (geo.Point{X: 1, Y: 1}) {
		t.Fatalf("bounds = %v", b)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := square()
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	// Duplicate edges are ignored, not doubled.
	before := g.Edges()
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != before {
		t.Fatal("duplicate edge doubled")
	}
}

func TestShortestPath(t *testing.T) {
	g := square()
	// 0 -> 2 direct along the diagonal (length sqrt 2 < 2 via corners).
	path, length, ok := g.ShortestPath(0, 2)
	if !ok || len(path) != 2 || path[0] != 0 || path[1] != 2 {
		t.Fatalf("path = %v ok=%v", path, ok)
	}
	if math.Abs(length-math.Sqrt2) > 1e-12 {
		t.Fatalf("length = %v", length)
	}
	// 1 -> 3: two equal 2-hop routes; either is fine but length must be 2.
	_, length, ok = g.ShortestPath(1, 3)
	if !ok || math.Abs(length-2) > 1e-12 {
		t.Fatalf("1->3 length = %v", length)
	}
	// Trivial and invalid queries.
	if p, l, ok := g.ShortestPath(2, 2); !ok || l != 0 || len(p) != 1 {
		t.Fatal("self path wrong")
	}
	if _, _, ok := g.ShortestPath(0, 99); ok {
		t.Fatal("out-of-range target accepted")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	g.AddVertex(geo.Point{})
	g.AddVertex(geo.Point{X: 5})
	if _, _, ok := g.ShortestPath(0, 1); ok {
		t.Fatal("unreachable target reported reachable")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestNearest(t *testing.T) {
	g := square()
	if v := g.Nearest(geo.Point{X: 0.9, Y: 0.1}); v != 1 {
		t.Fatalf("Nearest = %d, want 1", v)
	}
	if v := New().Nearest(geo.Point{}); v != -1 {
		t.Fatalf("Nearest on empty = %d", v)
	}
}

func TestGridCity(t *testing.T) {
	g, err := GridCity(5, 4, 100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 20 {
		t.Fatalf("vertices = %d", g.Len())
	}
	// 4*4 horizontal + 5*3 vertical segments.
	if g.Edges() != 31 {
		t.Fatalf("edges = %d, want 31", g.Edges())
	}
	if !g.Connected() {
		t.Fatal("full grid not connected")
	}
	// Manhattan distance along streets: (0,0) to (4,3) = 700 m.
	_, length, ok := g.ShortestPath(0, g.Len()-1)
	if !ok || math.Abs(length-700) > 1e-9 {
		t.Fatalf("corner-to-corner = %v", length)
	}
}

func TestGridCityWithDrops(t *testing.T) {
	g, err := GridCity(8, 8, 50, 0.3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("dropped grid not repaired to connectivity")
	}
	full, _ := GridCity(8, 8, 50, 0, nil)
	if g.Edges() >= full.Edges() {
		t.Fatal("no street segments actually dropped")
	}
}

func TestGridCityErrors(t *testing.T) {
	if _, err := GridCity(1, 5, 100, 0, nil); err == nil {
		t.Fatal("1-column grid accepted")
	}
	if _, err := GridCity(3, 3, 0, 0, nil); err == nil {
		t.Fatal("zero spacing accepted")
	}
}

func TestParseEdgeList(t *testing.T) {
	in := `# a triangle with a stub
0 0 100 0
100 0 100 100
100 100 0 0

0 0 -50 0
`
	g, err := ParseEdgeList(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 || g.Edges() != 4 {
		t.Fatalf("len=%d edges=%d", g.Len(), g.Edges())
	}
	if !g.Connected() {
		t.Fatal("parsed graph not connected")
	}
}

func TestParseEdgeListSnapping(t *testing.T) {
	// The second segment's endpoint is 0.4 m from vertex (100,0): snapped.
	in := "0 0 100 0\n100.4 0 200 0\n"
	g, err := ParseEdgeList(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("vertices = %d, want 3 after snapping", g.Len())
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	for _, in := range []string{"", "1 2 3\n", "a b c d\n"} {
		if _, err := ParseEdgeList(strings.NewReader(in), 1); err == nil {
			t.Fatalf("ParseEdgeList(%q) accepted", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, _ := GridCity(4, 3, 75, 0, nil)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ParseEdgeList(&buf, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != g.Len() || h.Edges() != g.Edges() {
		t.Fatalf("round trip: %d/%d vs %d/%d", h.Len(), h.Edges(), g.Len(), g.Edges())
	}
	// Path lengths preserved.
	_, want, _ := g.ShortestPath(0, g.Len()-1)
	_, got, ok := h.ShortestPath(h.Nearest(g.At(0)), h.Nearest(g.At(g.Len()-1)))
	if !ok || math.Abs(got-want) > 1e-6 {
		t.Fatalf("path length %v vs %v", got, want)
	}
}

func TestDijkstraAgainstBruteForce(t *testing.T) {
	// Random connected graphs: compare Dijkstra with Floyd–Warshall.
	s := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		const n = 12
		g := New()
		for i := 0; i < n; i++ {
			g.AddVertex(geo.Point{X: s.Uniform(0, 100), Y: s.Uniform(0, 100)})
		}
		for i := 1; i < n; i++ {
			g.AddEdge(i, s.IntN(i)) // spanning tree: connected
		}
		for k := 0; k < 10; k++ {
			g.AddEdge(s.IntN(n), (s.IntN(n-1)+1+s.IntN(n))%n)
		}
		// Floyd–Warshall over the same weights.
		const inf = math.MaxFloat64
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = inf
				}
			}
		}
		for v := 0; v < n; v++ {
			for _, e := range g.adj[v] {
				d[v][e.to] = e.w
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k] != inf && d[k][j] != inf && d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				_, got, ok := g.ShortestPath(a, b)
				if !ok {
					t.Fatalf("trial %d: %d->%d unreachable in connected graph", trial, a, b)
				}
				if math.Abs(got-d[a][b]) > 1e-9 {
					t.Fatalf("trial %d: %d->%d dijkstra %v vs floyd %v", trial, a, b, got, d[a][b])
				}
			}
		}
	}
}
