package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sdsrp/internal/geo"
	"sdsrp/internal/rng"
)

// GridCity generates a Manhattan street grid: cols × rows intersections
// spaced `spacing` metres apart, every adjacent pair connected. With
// dropProb > 0, that fraction of street segments is removed at random
// (construction, parks) while keeping the grid connected — removals that
// would disconnect it are re-inserted.
func GridCity(cols, rows int, spacing, dropProb float64, s *rng.Stream) (*Graph, error) {
	if cols < 2 || rows < 2 {
		return nil, fmt.Errorf("graph: grid needs at least 2x2 intersections")
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("graph: spacing must be positive")
	}
	g := New()
	id := func(c, r int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddVertex(geo.Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	type seg struct{ a, b int }
	var segs []seg
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				segs = append(segs, seg{id(c, r), id(c+1, r)})
			}
			if r+1 < rows {
				segs = append(segs, seg{id(c, r), id(c, r+1)})
			}
		}
	}
	for _, sg := range segs {
		if dropProb > 0 && s != nil && s.Bool(dropProb) {
			continue
		}
		if err := g.AddEdge(sg.a, sg.b); err != nil {
			return nil, err
		}
	}
	// Repair connectivity by re-adding dropped segments until connected.
	if !g.Connected() {
		for _, sg := range segs {
			if g.Connected() {
				break
			}
			g.AddEdge(sg.a, sg.b)
		}
	}
	return g, nil
}

// ParseEdgeList reads a road graph from a simple text format: one segment
// per line, `x1 y1 x2 y2` in metres. Endpoints closer than snap metres to
// an existing vertex reuse it, so hand-written maps need not repeat exact
// coordinates. Blank lines and '#' comments are skipped.
func ParseEdgeList(r io.Reader, snap float64) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	vertexAt := func(p geo.Point) int {
		if v := g.Nearest(p); v >= 0 && g.At(v).Dist(p) <= snap {
			return v
		}
		return g.AddVertex(p)
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("graph: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		var vals [4]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			vals[i] = v
		}
		a := vertexAt(geo.Point{X: vals[0], Y: vals[1]})
		b := vertexAt(geo.Point{X: vals[2], Y: vals[3]})
		if a == b {
			continue // zero-length segment after snapping
		}
		if err := g.AddEdge(a, b); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	return g, nil
}

// WriteEdgeList writes the graph in the ParseEdgeList format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.Len(); v++ {
		for _, e := range g.adj[v] {
			if int(e.to) > v { // each undirected edge once
				a, b := g.At(v), g.At(int(e.to))
				if _, err := fmt.Fprintf(bw, "%g %g %g %g\n", a.X, a.Y, b.X, b.Y); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
