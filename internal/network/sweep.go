package network

import (
	"sdsrp/internal/geo"
)

// This file implements the motion-bounded lazy scan planner (Config.Scan =
// ScanLazy, the default): the ConnectivityOptimizer idea from the ONE
// simulator, rebuilt on the mobility.MaxSpeed contract.
//
// Every unordered node pair is in exactly one of four states:
//
//   - near:   checked every tick (it could plausibly transition).
//   - linked: a live link; the per-tick down check walks Manager.links.
//   - parked: physics rules the pair out of radio range until a computed
//     wake tick; it sits in a tick-bucketed wake wheel and is neither
//     distance-checked nor grid-compared until then.
//   - retired: neither endpoint can move (closing speed 0) while the pair
//     is out of range — the distance never changes, so it is never
//     re-checked.
//
// A pair at measured distance d with effective range r and closing-speed
// bound c = MaxSpeed(a) + MaxSpeed(b) cannot be in range before d−r metres
// close, i.e. for K = floor((d_lo − r) / (c·interval)) whole ticks, where
// d_lo is a conservative lower bound on d (geo.DistLowerBound). Skipping
// ticks T+1..T+K−1 leaves a margin of at least one full tick of closing
// (c·interval) plus the d−d_lo slack, which dominates every float-rounding
// step in the chain (position interpolation, the distance square root, and
// the engine's accumulated tick times). Pairs only park when K ≥ 2 — a
// one-tick park costs wheel traffic without skipping anything.
//
// Byte-identity with the naive scanner:
//
//   - The predicate (Manager.pairInContact) is the same code and the same
//     float comparisons; position sampling is lazy but Model.Pos is
//     deterministic for a given query time regardless of intermediate
//     queries, so sampled values are bit-identical to the naive schedule.
//   - Downs derive from Manager.links exactly like the naive path and are
//     emitted in sortPairKeys order — canonical, so trivially identical.
//   - Ups: a tick with zero or one new link needs no ordering. A tick with
//     two or more falls back to the naive up loop itself (full sample, grid
//     rebuild, enumeration in grid order) — the candidate sets provably
//     coincide, so the emitted stream is the naive one by construction.
//   - Faults wake conservatively: every linkDown (scan, flap, churn)
//     returns its pair to near; churned or energy-dead nodes make the
//     predicate false but never justify parking on their own, so their
//     pairs keep exact per-tick semantics while in distance range.
//
// The wheel is hashed: bucket = tick mod wheelBuckets. An entry whose wake
// tick lies a lap or more ahead is re-kept with one comparison when its
// bucket comes around.
//
// Workloads where most pairs close fast (many fast movers, short park
// deadlines) can wake pairs so often that per-pair bookkeeping costs more
// than the naive per-node sampling pass. The planner watches its own load
// (loadWindow below) and permanently hands the run back to scanNaive when
// that happens — byte-identity makes the switch unobservable, and the
// trigger reads only simulated state, so it is deterministic.

const (
	// wheelBuckets must be a power of two (bucket index is masked).
	wheelBuckets = 256
	// maxParkTicks caps a park so that the accumulated float error of
	// tick-time addition stays far inside the deadline margin; a pair
	// re-checked once every million ticks is already free.
	maxParkTicks = 1_000_000
	// loadWindow is the self-monitoring window (in ticks) for the naive
	// fallback: if a window's near-set checks exceed loadWindow·n — i.e.
	// the planner distance-checks more pairs per tick than there are nodes
	// — per-pair waking costs more than naive's per-node sample + grid
	// pass, and the planner retires itself for the rest of the run. The
	// trigger depends only on simulated state, so it is deterministic, and
	// both strategies emit byte-identical streams, so switching mid-run is
	// unobservable. The bootstrap tick (a full O(n²) pass by design) is
	// excluded from the first window.
	loadWindow = 64
)

// Pair-state codes. near pairs live in the active slice; parked pairs in
// the wheel; linked pairs are tracked by Manager.links; retired pairs are
// nowhere.
const (
	sweepNear uint8 = iota
	sweepLinked
	sweepParked
	sweepRetired
)

type sweep struct {
	m *Manager
	n int
	// tick counts Scan calls; the first call is tick 1. Wake deadlines are
	// absolute ticks.
	tick     int64
	interval float64
	// speed[i] is models[i].MaxSpeed(), read once at construction (the
	// contract requires it to be constant).
	speed []float64

	state []uint8 // per pair index
	wake  []int64 // absolute wake tick, valid while state == sweepParked
	// pairA/pairB invert pairIndex (built once; O(1) hot-path decode).
	pairA []int32
	pairB []int32
	// active holds the near pairs; slot[p] is p's position in it (-1 when
	// not active). Swap-removal keeps both O(1); iteration order is
	// internal only — every emission below is canonically ordered.
	active []int32
	slot   []int32
	// The wheel is an intrusive singly-linked list per bucket: wheelHead[b]
	// is the first parked pair in bucket b (-1 when empty) and next[p]
	// chains parked pairs. Parking pushes onto the head and waking unlinks
	// in place, so the wheel never allocates after construction.
	wheelHead [wheelBuckets]int32
	next      []int32

	// posTick stamps the tick each node's position was last sampled, so a
	// node shared by several near pairs moves once per tick.
	posTick []int64
	parked  int64 // pairs currently parked or retired, for the skip counter
	ups     []pairKey
	// windowChecked accumulates near-set checks toward the loadWindow
	// fallback decision.
	windowChecked uint64
}

// newSweep builds the planner with every non-linked pair near: the first
// tick is a full O(n²) pass that parks everything physics allows. It
// returns nil — falling the run back to the kinetic planner — at n ≥ 65536:
// the triangular pair index would overflow the int32 bookkeeping one node
// later (the check is on n, not the pair count, because at exactly 65536
// nodes the ~2.1 G pairs still "fit" int32 while the six per-pair arrays
// would ask for ~78 GB), and the kinetic scanner's O(n) state is the right
// tool well before that.
func newSweep(m *Manager) *sweep {
	n := len(m.hosts)
	if n >= 65536 {
		return nil
	}
	pairs := n * (n - 1) / 2
	s := &sweep{
		m:        m,
		n:        n,
		interval: m.cfg.ScanInterval,
		speed:    make([]float64, n),
		state:    make([]uint8, pairs),
		wake:     make([]int64, pairs),
		active:   make([]int32, 0, pairs),
		slot:     make([]int32, pairs),
		next:     make([]int32, pairs),
		posTick:  make([]int64, n),
	}
	for b := range s.wheelHead {
		s.wheelHead[b] = -1
	}
	for i, model := range m.models {
		s.speed[i] = model.MaxSpeed()
	}
	s.pairA = make([]int32, pairs)
	s.pairB = make([]int32, pairs)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			p := s.pairIndex(a, b)
			s.pairA[p], s.pairB[p] = int32(a), int32(b)
		}
	}
	for p := 0; p < pairs; p++ {
		s.slot[p] = int32(len(s.active))
		s.active = append(s.active, int32(p))
	}
	return s
}

// pairIndex maps an unordered pair (a<b) to its dense triangular index.
func (s *sweep) pairIndex(a, b int) int {
	return a*(2*s.n-a-1)/2 + (b - a - 1)
}

// pairNodes inverts pairIndex.
func (s *sweep) pairNodes(p int32) (int, int) {
	return int(s.pairA[p]), int(s.pairB[p])
}

// activate moves pair p into the near set.
func (s *sweep) activate(p int32) {
	s.state[p] = sweepNear
	s.slot[p] = int32(len(s.active))
	s.active = append(s.active, p)
}

// deactivate swap-removes pair p from the near set.
func (s *sweep) deactivate(p int32) {
	i := s.slot[p]
	last := int32(len(s.active) - 1)
	moved := s.active[last]
	s.active[i] = moved
	s.slot[moved] = i
	s.active = s.active[:last]
	s.slot[p] = -1
}

// onLinkUp marks the pair linked; the down check walks Manager.links, so
// the pair leaves the near set.
func (s *sweep) onLinkUp(k pairKey) {
	p := int32(s.pairIndex(int(k[0]), int(k[1])))
	if s.state[p] == sweepNear {
		s.deactivate(p)
	}
	s.state[p] = sweepLinked
}

// onLinkDown conservatively returns the pair to the near set, whatever tore
// the link down. The next tick re-parks it if it is genuinely far.
func (s *sweep) onLinkDown(k pairKey) {
	p := int32(s.pairIndex(int(k[0]), int(k[1])))
	if s.state[p] != sweepLinked {
		return // scheduled-mode replay can down a pair the planner never saw up
	}
	s.activate(p)
}

// park moves near pair p into the wheel until the absolute tick wakeAt.
func (s *sweep) park(p int32, wakeAt int64) {
	s.deactivate(p)
	s.state[p] = sweepParked
	s.wake[p] = wakeAt
	b := wakeAt & (wheelBuckets - 1)
	s.next[p] = s.wheelHead[b]
	s.wheelHead[b] = p
	s.parked++
}

// retire removes near pair p permanently: closing speed is zero while the
// pair is out of range, so its distance can never change.
func (s *sweep) retire(p int32) {
	s.deactivate(p)
	s.state[p] = sweepRetired
	s.parked++
}

// parkTicks returns how many whole ticks pair (a,b) at squared distance d2
// and effective range r is guaranteed to stay out of range, or -1 when the
// pair can never close (out of range with closing-speed bound zero). 0 or 1
// means the pair must stay near.
func (s *sweep) parkTicks(a, b int, d2, r float64) int64 {
	gap := geo.DistLowerBound(d2) - r
	if gap <= 0 {
		// In (or at) radio range: the pair stays near regardless of speeds.
		// The caller reaches here with the contact predicate false when an
		// endpoint is churn-downed or energy-dead; distance did not rule the
		// pair out, so retiring a static-static pair here would make the
		// endpoint's reboot unobservable (nothing wakes a retired pair) and
		// diverge from the naive scanner, which re-ups the link.
		return 0
	}
	c := s.speed[a] + s.speed[b]
	if c <= 0 {
		return -1
	}
	k := gap / (c * s.interval) // c = +Inf (teleporting model) gives 0
	if !(k < maxParkTicks) {    // catches NaN too, though c and gap are finite
		return maxParkTicks
	}
	return int64(k)
}

// samplePos samples node i's position once per tick.
func (s *sweep) samplePos(i int, now float64) {
	if s.posTick[i] != s.tick {
		s.m.positions[i] = s.m.models[i].Pos(now)
		s.posTick[i] = s.tick
	}
}

// scanLazy is the lazy counterpart of scanNaive; the emitted event stream
// is byte-identical (see the file comment for the argument).
func (m *Manager) scanLazy(now float64) {
	s := m.sweep
	s.tick++

	// 1. Wake pairs whose deadline arrived: unlink them from the bucket's
	// intrusive list. Entries parked a lap or more ahead stay with one
	// comparison.
	for pp := &s.wheelHead[s.tick&(wheelBuckets-1)]; *pp != -1; {
		p := *pp
		if s.wake[p] <= s.tick {
			*pp = s.next[p]
			s.activate(p)
			s.parked--
			m.wakeups++
		} else {
			pp = &s.next[p]
		}
	}

	// 2. Check every near pair: collect up candidates, park or retire the
	// provably-far, and clear flap suppression exactly where the naive
	// flapped sweep would (predicate false). The loop index only advances
	// when the pair stays near — park/retire swap-remove under it.
	ups := s.ups[:0]
	checked := uint64(0)
	for i := 0; i < len(s.active); {
		p := s.active[i]
		a, b := s.pairNodes(p)
		s.samplePos(a, now)
		s.samplePos(b, now)
		checked++
		r := m.pairRange(a, b)
		d2 := m.positions[a].Dist2(m.positions[b])
		alive := m.energy.alive(a) && m.energy.alive(b) &&
			!m.isDown(a) && !m.isDown(b)
		if alive && d2 <= r*r {
			k := keyOf(a, b)
			if !m.flapped[k] {
				ups = append(ups, k)
			}
			i++
			continue
		}
		if m.flapped != nil {
			delete(m.flapped, keyOf(a, b))
		}
		// Parking (and retiring) is justified by distance alone: a dead or
		// churned node at parking distance cannot reach range before the
		// wake tick regardless of its radio state. In-range pairs whose
		// predicate failed for radio-state reasons get K = 0 and stay near.
		switch K := s.parkTicks(a, b, d2, r); {
		case K < 0:
			s.retire(p)
		case K >= 2:
			s.park(p, s.tick+K)
		default:
			i++
		}
	}
	if s.tick > 1 {
		s.windowChecked += checked
	}

	// 3. Downs, exactly like the naive path: recompute the predicate per
	// live link, canonical sort, teardown with deferred kicks.
	downs := m.downsBuf[:0]
	for k := range m.links {
		a, b := int(k[0]), int(k[1])
		s.samplePos(a, now)
		s.samplePos(b, now)
		checked++
		if !m.pairInContact(a, b) {
			downs = append(downs, k)
		}
	}
	sortPairKeys(downs)
	freed := m.freedBuf[:0]
	for _, k := range downs {
		freed = m.linkDown(k, now, freed)
	}

	// 4. Ups. One candidate needs no ordering; two or more replay the
	// naive up loop itself so the emission order is the grid enumeration
	// order, byte for byte.
	switch len(ups) {
	case 0:
	case 1:
		if _, up := m.links[ups[0]]; !up {
			m.linkUp(ups[0], now)
		}
	default:
		for i := range m.models {
			s.samplePos(i, now)
		}
		m.grid.Update(m.positions)
		m.pairBuf = m.grid.Pairs(m.maxRange, m.pairBuf[:0])
		checked += uint64(len(m.pairBuf))
		for _, pr := range m.pairBuf {
			if !m.pairInContact(int(pr[0]), int(pr[1])) {
				continue
			}
			k := pairKey{pr[0], pr[1]}
			if m.flapped[k] {
				continue
			}
			if _, up := m.links[k]; !up {
				m.linkUp(k, now)
			}
		}
	}
	s.ups = ups[:0]

	m.pairsChecked += checked
	m.pairsSkipped += uint64(s.parked)
	m.finishScan(freed, now)

	// 5. Self-monitoring fallback: when the near set sustains more checks
	// per tick than naive's per-node sampling pass, parking is not paying —
	// retire the planner and let Scan dispatch to scanNaive from the next
	// tick on. See the loadWindow comment for why this is deterministic and
	// stream-preserving.
	if s.tick%loadWindow == 0 {
		if s.windowChecked > loadWindow*uint64(s.n) {
			m.sweep = nil
			m.noteFallback("lazy:load-monitor->naive")
		}
		s.windowChecked = 0
	}
}
