package network

// Sharded parallel contact scan (DESIGN.md §13).
//
// The scan is the only per-tick O(n)–O(n²) work in the engine, and the only
// phase whose inputs are read-only snapshots (positions, liveness) rather
// than evolving event state — so it is the one place the engine can go
// multi-core without touching the event loop's total order. The design is
// strictly "parallel propose, serial commit":
//
//   Phase A (parallel)  each shard samples mobility positions for a
//                       contiguous chunk of nodes. Models are node-private
//                       (constructor-injected RNG substreams), and every
//                       node is sampled at every tick exactly as the naive
//                       scanner does, so model state evolves identically
//                       regardless of worker count.
//   barrier
//   window start        every W ticks the stripe assignment is refreshed
//   (serial)            from current positions: the area is cut into
//                       `stripes` vertical bands, and W is the conservative
//                       lookahead shard.WindowTicks(band−maxRange, c_max,
//                       interval) — nodes assigned to non-adjacent bands
//                       cannot meet within the window. The per-shard id
//                       lists are rebuilt here too, once per window: the
//                       assignment is frozen between window starts, so
//                       bucket membership is reusable for W ticks.
//   Phase B (parallel)  shard s indexes the nodes of bands s and s+1 in a
//                       private grid covering just those two bands
//                       (UpdateSubset over the window's frozen id list —
//                       O(band) work, no full-fleet rescan) and proposes
//                       its owned candidate contacts: pairs within maxRange
//                       whose lower band is s. Cross-band pairs are counted
//                       as hand-offs. All shared state touched here
//                       (positions, liveness, ranges) is read-only until
//                       the barrier.
//   barrier
//   merge (serial)      link-downs tear down in the canonical sorted-key
//                       order (same code path as the serial scanners);
//                       link-ups apply the proposed candidates — directly
//                       when the tick has at most one, or by replaying the
//                       naive grid pass when two or more arrive in the same
//                       tick, reproducing the serial up-ordering exactly
//                       (the same trick sweep.go uses). All event emission,
//                       transfer scheduling, and RNG draws happen here, on
//                       one goroutine, in the serial engine's order.
//
// Byte-identity across worker counts follows: the proposal phases compute
// the same pair set the naive scanner would (the window bound makes the
// stripe enumeration complete; pairInContact is the same predicate reading
// the same positions), and every ordering that reaches the event stream is
// produced by the identical serial code. If no valid window exists — a
// +Inf MaxSpeed model, or bands too narrow for the fleet's speed — the
// constructor refuses and the Manager falls back to the configured serial
// strategy for the whole run.

import (
	"math"

	"sdsrp/internal/geo"
	"sdsrp/internal/shard"
)

// parScan is the sharded strategy's per-run state. All slices indexed by
// shard are written only by that shard between barriers; everything else is
// touched only from the serial merge phase.
type parScan struct {
	m       *Manager
	pool    *shard.Pool
	stripes int
	window  int     // ticks per lookahead window, ≥ 1
	bandW   float64 // stripe width in metres
	minX    float64
	tick    int // ticks into the current window; 0 = assignment tick

	stripe []int32 // node -> band index, frozen at window start

	// Per-shard scratch, disjoint by construction.
	grids   []*geo.Grid
	ids     [][]int32
	pairs   [][][2]int32
	cand    [][]pairKey
	checked []uint64
	handoff []uint64
}

// newParScan builds the sharded strategy, or returns nil when the scenario
// admits no conservative window (serial fallback): fewer than two workers
// or nodes, a fleet with an unbounded MaxSpeed, or stripes so narrow that
// one tick of head-on closing could cross the inter-band gap.
func newParScan(m *Manager, workers int) *parScan {
	n := len(m.hosts)
	if workers < 2 || n < 2 {
		m.noteFallback("parscan:degenerate-input->serial")
		return nil
	}
	cmax := 0.0
	for _, model := range m.models {
		cmax = math.Max(cmax, model.MaxSpeed())
	}
	bandW := m.cfg.Area.W() / float64(workers)
	window := shard.WindowTicks(bandW-m.maxRange, cmax, m.cfg.ScanInterval)
	if window < 1 {
		if math.IsInf(cmax, 1) {
			m.noteFallback("parscan:unbounded-max-speed->serial")
		} else {
			m.noteFallback("parscan:no-conservative-window->serial")
		}
		return nil
	}
	ps := &parScan{
		m:       m,
		pool:    shard.NewPool(workers),
		stripes: workers,
		window:  window,
		bandW:   bandW,
		minX:    m.cfg.Area.Min.X,
		stripe:  make([]int32, n),
		grids:   make([]*geo.Grid, workers),
		ids:     make([][]int32, workers),
		pairs:   make([][][2]int32, workers),
		cand:    make([][]pairKey, workers),
		checked: make([]uint64, workers),
		handoff: make([]uint64, workers),
	}
	for s := range ps.grids {
		// Each shard's grid covers only its own two bands, not the whole
		// area: the cell table scales with the band, and clamping at the
		// sub-rect edges preserves candidate completeness exactly as it
		// does on the full grid (an in-range pair's clamped positions still
		// land in the same or adjacent columns). Enumeration order inside a
		// shard never reaches the event stream — the serial merge re-derives
		// the emission order — so the sub-rect is unobservable.
		lo := ps.minX + float64(s)*bandW
		hi := lo + 2*bandW
		if hi > m.cfg.Area.Max.X {
			hi = m.cfg.Area.Max.X
		}
		band := geo.Rect{
			Min: geo.Point{X: lo, Y: m.cfg.Area.Min.Y},
			Max: geo.Point{X: hi, Y: m.cfg.Area.Max.Y},
		}
		ps.grids[s] = geo.NewGrid(band, m.grid.CellSize(), n)
	}
	return ps
}

// chunk returns the half-open node range [lo, hi) that shard s samples in
// Phase A: contiguous, near-equal slices of the id space. The partition is
// load-balance only — sampling is per-node independent — so it need not
// match the spatial stripes.
func chunk(n, shards, s int) (lo, hi int) {
	lo = n * s / shards
	hi = n * (s + 1) / shards
	return lo, hi
}

// scanSharded is the sharded strategy's tick. It must emit exactly the
// event sequence scanNaive would.
func (m *Manager) scanSharded(now float64) {
	ps := m.par
	n := len(m.hosts)

	// Phase A: parallel position sampling over disjoint node chunks.
	ps.pool.Run(ps.stripes, func(s int) {
		lo, hi := chunk(n, ps.stripes, s)
		for i := lo; i < hi; i++ {
			m.positions[i] = m.models[i].Pos(now)
		}
	})
	m.shardBarriers++

	// Window start: refresh the band assignment from current positions.
	// Serial and O(n); the window bound guarantees the assignment stays
	// conservative for the next `window` ticks.
	if ps.tick == 0 {
		m.shardWindows++
		for s := range ps.ids {
			ps.ids[s] = ps.ids[s][:0]
		}
		for i := 0; i < n; i++ {
			b := int32((m.positions[i].X - ps.minX) / ps.bandW)
			if b < 0 {
				b = 0
			} else if b >= int32(ps.stripes) {
				b = int32(ps.stripes) - 1
			}
			ps.stripe[i] = b
			// Shard s indexes bands s and s+1, so a node in band b belongs
			// to shards b−1 and b. Built once per window — the assignment
			// is frozen until the next window start, so the previous
			// per-tick O(n·workers) re-collection was pure waste. The
			// ascending append order preserves UpdateSubset's enumeration
			// order exactly.
			if b > 0 {
				ps.ids[b-1] = append(ps.ids[b-1], int32(i))
			}
			ps.ids[b] = append(ps.ids[b], int32(i))
		}
	}
	ps.tick++
	if ps.tick >= ps.window {
		ps.tick = 0
	}

	// Phase B: each shard proposes its owned in-contact candidates. Writes
	// are confined to slot s of the per-shard slices; reads (positions,
	// stripe, energy, churn, ranges) are frozen until the barrier.
	ps.pool.Run(ps.stripes, func(s int) {
		g := ps.grids[s]
		g.UpdateSubset(m.positions, ps.ids[s])
		ps.pairs[s] = g.Pairs(m.maxRange, ps.pairs[s][:0])
		cand := ps.cand[s][:0]
		for _, p := range ps.pairs[s] {
			a, b := int(p[0]), int(p[1])
			sa, sb := ps.stripe[a], ps.stripe[b]
			if sa > sb {
				sa, sb = sb, sa
			}
			if sa != int32(s) {
				continue // both endpoints in band s+1: owned by shard s+1
			}
			ps.checked[s]++
			if !m.pairInContact(a, b) {
				continue
			}
			if sa != sb {
				ps.handoff[s]++
			}
			cand = append(cand, keyOf(a, b))
		}
		ps.cand[s] = cand
	})
	m.shardBarriers++

	// Serial merge. Downs first, in the canonical sorted-key order — the
	// exact code path scanNaive runs.
	downs := m.downsBuf[:0]
	for k := range m.links {
		if !m.pairInContact(int(k[0]), int(k[1])) {
			downs = append(downs, k)
		}
	}
	sortPairKeys(downs)
	freed := m.freedBuf[:0]
	for _, k := range downs {
		freed = m.linkDown(k, now, freed)
	}

	// Ups: count the genuinely new links among the proposals. Zero or one
	// need no ordering decision; two or more replay the naive grid pass so
	// the up sequence — and every transfer and gossip event it triggers —
	// matches the serial engine byte for byte.
	ups := 0
	var only pairKey
	for s := range ps.cand {
		for _, k := range ps.cand[s] {
			if m.flapped[k] {
				continue
			}
			if _, up := m.links[k]; up {
				continue
			}
			if ups == 0 {
				only = k
			}
			ups++
		}
	}
	switch {
	case ups == 1:
		m.linkUp(only, now)
	case ups >= 2:
		m.grid.Update(m.positions)
		m.pairBuf = m.grid.Pairs(m.maxRange, m.pairBuf[:0])
		m.pairsChecked += uint64(len(m.pairBuf))
		for _, p := range m.pairBuf {
			if !m.pairInContact(int(p[0]), int(p[1])) {
				continue
			}
			k := pairKey{p[0], p[1]}
			if m.flapped[k] {
				continue
			}
			if _, up := m.links[k]; !up {
				m.linkUp(k, now)
			}
		}
	}

	// Separated pairs may flap again on their next genuine contact.
	for k := range m.flapped {
		if !m.pairInContact(int(k[0]), int(k[1])) {
			delete(m.flapped, k)
		}
	}
	for s := range ps.checked {
		m.pairsChecked += ps.checked[s]
		m.shardHandoffs += ps.handoff[s]
		ps.checked[s], ps.handoff[s] = 0, 0
	}
	m.pairsChecked += uint64(len(m.links)) + uint64(len(m.flapped))
	m.finishScan(freed, now)
}
