package network

import (
	"math"
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/msg"
	"sdsrp/internal/policy"
	"sdsrp/internal/rng"
	"sdsrp/internal/routing"
	"sdsrp/internal/sim"
	"sdsrp/internal/stats"
)

// puppet is a test mobility model whose position is set explicitly.
type puppet struct{ p geo.Point }

func (m *puppet) Pos(float64) geo.Point { return m.p }

// MaxSpeed implements mobility.Model: puppets teleport, so no finite bound
// exists and the lazy scanner checks them every tick.
func (m *puppet) MaxSpeed() float64 { return math.Inf(1) }

type rig struct {
	eng       *sim.Engine
	collector *stats.Collector
	inter     *stats.Intermeeting
	hosts     []*routing.Host
	puppets   []*puppet
	mgr       *Manager
}

// mustManager unwraps NewManager in test rigs where the config is known
// good.
func mustManager(m *Manager, err error) *Manager {
	if err != nil {
		panic(err)
	}
	return m
}

// newRig builds n hosts at given positions with 100 B/s bandwidth,
// 100 m range, and 1 s scans.
func newRig(n int, bufBytes int64) *rig {
	r := &rig{eng: sim.NewEngine(), collector: stats.NewCollector(), inter: &stats.Intermeeting{}}
	tracker := routing.NewTracker()
	models := make([]mobility.Model, n)
	for i := 0; i < n; i++ {
		pp := &puppet{p: geo.Point{X: float64(10000 + 1000*i), Y: 0}} // far apart
		r.puppets = append(r.puppets, pp)
		models[i] = pp
		r.hosts = append(r.hosts, routing.NewHost(routing.HostConfig{
			ID: i, Nodes: n, Buffer: bufBytes,
			Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:      core.FixedRate{Mean: 1200},
			Clock:     r.eng.Now,
			Collector: r.collector,
			Tracker:   tracker,
			Oracle:    tracker,
		}))
	}
	r.mgr = mustManager(NewManager(r.eng, Config{
		Area: geo.NewRect(50000, 1000), Range: 100, Bandwidth: 100, ScanInterval: 1,
	}, r.hosts, models, r.collector, r.inter))
	r.mgr.Start()
	return r
}

func (r *rig) msg(id msg.ID, src, dst, copies int, size int64) *msg.Message {
	return &msg.Message{ID: id, Source: src, Dest: dst, Size: size,
		Created: r.eng.Now(), TTL: 1e9, InitialCopies: copies}
}

func TestLinkUpAndDelivery(t *testing.T) {
	r := newRig(2, 10000)
	r.hosts[0].Originate(r.msg(1, 0, 1, 8, 500), 0)
	// Put both nodes together: contact from the first scan.
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(30)
	if r.mgr.Contacts() != 1 || r.mgr.ActiveLinks() != 1 {
		t.Fatalf("contacts=%d links=%d", r.mgr.Contacts(), r.mgr.ActiveLinks())
	}
	s := r.collector.Summarize()
	if s.Delivered != 1 {
		t.Fatalf("delivered = %d", s.Delivered)
	}
	// 500 B at 100 B/s = 5 s; the scan fires at t=1, so delivery at t=6.
	if rec := s.AvgLatency; rec != 6 {
		t.Fatalf("latency = %v, want 6", rec)
	}
}

func TestTransferAbortOnLinkDown(t *testing.T) {
	r := newRig(2, 10000)
	r.hosts[0].Originate(r.msg(1, 0, 1, 8, 500), 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	// Separate them at t=3 (mid-transfer: transfer runs 1..6).
	r.eng.At(2.5, func(float64) { r.puppets[1].p = geo.Point{X: 5000, Y: 0} })
	r.eng.Run(30)
	s := r.collector.Summarize()
	if s.Delivered != 0 {
		t.Fatal("delivered despite abort")
	}
	if s.Aborted != 1 || s.Started != 1 {
		t.Fatalf("aborted=%d started=%d", s.Aborted, s.Started)
	}
	// The sender's copy is intact for the next contact.
	if got := r.hosts[0].Buffer().Get(1); got == nil || got.Copies != 8 {
		t.Fatal("sender state corrupted by abort")
	}
}

func TestRetryAfterReunion(t *testing.T) {
	r := newRig(2, 10000)
	r.hosts[0].Originate(r.msg(1, 0, 1, 8, 500), 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.At(2.5, func(float64) { r.puppets[1].p = geo.Point{X: 5000, Y: 0} })
	r.eng.At(10, func(float64) { r.puppets[1].p = geo.Point{X: 60, Y: 0} })
	r.eng.Run(60)
	s := r.collector.Summarize()
	if s.Delivered != 1 {
		t.Fatalf("delivered = %d after reunion", s.Delivered)
	}
	if r.mgr.Contacts() != 2 {
		t.Fatalf("contacts = %d", r.mgr.Contacts())
	}
}

func TestIntermeetingRecorded(t *testing.T) {
	r := newRig(2, 10000)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.At(5.5, func(float64) { r.puppets[1].p = geo.Point{X: 5000, Y: 0} })
	r.eng.At(20.5, func(float64) { r.puppets[1].p = geo.Point{X: 50, Y: 0} })
	r.eng.Run(30)
	if r.inter.Count() != 1 {
		t.Fatalf("intermeeting samples = %d", r.inter.Count())
	}
	// Down observed at the t=6 scan, up again at the t=21 scan.
	if got := r.inter.Mean(); got != 15 {
		t.Fatalf("intermeeting = %v, want 15", got)
	}
}

func TestHalfDuplexSerializesTransfers(t *testing.T) {
	// One source, two neighbours: the source can only feed one at a time.
	r := newRig(3, 10000)
	r.hosts[0].Originate(r.msg(1, 0, 2, 8, 500), 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}  // relay
	r.puppets[2].p = geo.Point{X: -50, Y: 0} // destination
	r.eng.Run(3.5)                           // one transfer window only (5s each)
	if r.collector.Started != 1 {
		t.Fatalf("started = %d, want 1 (half duplex)", r.collector.Started)
	}
	r.eng.Run(30)
	s := r.collector.Summarize()
	if s.Delivered != 1 {
		t.Fatalf("delivered = %d", s.Delivered)
	}
	// Delivery first (to 2), then spray to 1: two completed transfers.
	if s.Forwards != 2 {
		t.Fatalf("forwards = %d", s.Forwards)
	}
	if got := r.hosts[1].Buffer().Get(1); got == nil {
		t.Fatal("relay never got the spray")
	}
}

func TestRefusalNotReofferedWithinContact(t *testing.T) {
	// Receiver's buffer holds a fresher message under SW-O; the incoming
	// stale message is refused once and not retried for the contact.
	r := newRig(2, 10000)
	// Swap policies: rebuild host 1 with SW-O and a tiny buffer.
	tracker := routing.NewTracker()
	r.hosts[1] = routing.NewHost(routing.HostConfig{
		ID: 1, Nodes: 2, Buffer: 500,
		Policy: policy.TTLRatio{}, Proto: routing.SprayAndWait{Binary: true},
		Rate:  core.FixedRate{Mean: 1200},
		Clock: r.eng.Now, Collector: r.collector, Tracker: tracker, Oracle: tracker,
	})
	// Fresh message already at the receiver.
	fresh := &msg.Message{ID: 5, Source: 1, Dest: 0, Size: 500, Created: 0, TTL: 1e6, InitialCopies: 1}
	r.hosts[1].Originate(fresh, 0)
	// Stale message at the sender (about to expire).
	stale := &msg.Message{ID: 6, Source: 0, Dest: 9999, Size: 500, Created: 0, TTL: 400, InitialCopies: 8}
	_ = stale
	r.hosts[0].Originate(&msg.Message{ID: 6, Source: 0, Dest: 1, Size: 500, Created: 0, TTL: 400, InitialCopies: 8}, 0)
	_ = fresh
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(30)
	// Message 6 is deliverable to host 1 (dest=1), so it is delivered, not
	// refused. This test instead checks its reverse: host 1's message 5 is
	// deliverable to host 0 — both get through. Deliveries bypass buffers.
	s := r.collector.Summarize()
	if s.Delivered != 2 {
		t.Fatalf("delivered = %d", s.Delivered)
	}
}

// setupCongestedPair builds two SW-O hosts with one-slot buffers: host 1
// holds a fresh message, host 0 a near-expiry one. preflight selects the
// overflow semantics under test.
func setupCongestedPair(r *rig, preflight bool) {
	tracker := routing.NewTracker()
	for i := 0; i < 2; i++ {
		r.hosts[i] = routing.NewHost(routing.HostConfig{
			ID: i, Nodes: 2, Buffer: 500,
			Policy: policy.TTLRatio{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:              core.FixedRate{Mean: 1200},
			PreflightEviction: preflight,
			Clock:             r.eng.Now, Collector: r.collector, Tracker: tracker, Oracle: tracker,
		})
	}
	// Receiver full with a fresh message destined elsewhere.
	r.hosts[1].Originate(&msg.Message{ID: 5, Source: 1, Dest: 99, Size: 500, Created: 0, TTL: 1e6, InitialCopies: 8}, 0)
	// Sender has a near-expiry message for a third party: the weakest under SW-O.
	r.hosts[0].Originate(&msg.Message{ID: 6, Source: 0, Dest: 98, Size: 500, Created: 0, TTL: 500, InitialCopies: 8}, 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
}

func TestPreflightModeRefusesWeakNewcomer(t *testing.T) {
	r := newRig(2, 10000)
	setupCongestedPair(r, true)
	r.eng.Run(30)
	s := r.collector.Summarize()
	if s.Refused == 0 {
		t.Fatal("no refusal recorded")
	}
	if s.Started != 1 { // only 1→0 spray of message 5 runs
		t.Fatalf("started = %d, want 1", s.Started)
	}
	if r.hosts[1].Buffer().Has(6) {
		t.Fatal("refused message stored anyway")
	}
}

func TestReceiveThenDropWastesTransfer(t *testing.T) {
	// Default Algorithm 1 semantics: the stale spray transfers anyway,
	// costs a forward and the sender's tokens, and is dropped on arrival.
	r := newRig(2, 10000)
	setupCongestedPair(r, false)
	r.eng.Run(30)
	s := r.collector.Summarize()
	if s.Started != 2 {
		t.Fatalf("started = %d, want both directions to transfer", s.Started)
	}
	if r.hosts[1].Buffer().Has(6) {
		t.Fatal("weak newcomer stored")
	}
	// The sender's tokens were destroyed by the arrival drop.
	if got := r.hosts[0].Buffer().Get(6); got != nil && got.Copies == 8 {
		t.Fatal("sender tokens not spent on the wasted spray")
	}
	if s.PolicyDrops == 0 {
		t.Fatal("arrival drop not counted")
	}
}

func TestScanIsDeterministic(t *testing.T) {
	run := func() stats.Summary {
		eng := sim.NewEngine()
		collector := stats.NewCollector()
		tracker := routing.NewTracker()
		const n = 20
		hosts := make([]*routing.Host, n)
		models := make([]mobility.Model, n)
		area := geo.NewRect(800, 800)
		for i := 0; i < n; i++ {
			hosts[i] = routing.NewHost(routing.HostConfig{
				ID: i, Nodes: n, Buffer: 2000,
				Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
				Rate:  core.FixedRate{Mean: 600},
				Clock: eng.Now, Collector: collector, Tracker: tracker, Oracle: tracker,
			})
			models[i] = mobility.NewRandomWaypoint(area, 5, 5, 0, 0, rng.New(uint64(i)))
		}
		mgr := mustManager(NewManager(eng, Config{Area: area, Range: 60, Bandwidth: 250, ScanInterval: 1},
			hosts, models, collector, nil))
		mgr.Start()
		// Traffic: a message every 40 s between fixed pairs.
		id := msg.ID(0)
		eng.Every(40, func(now float64) {
			id++
			src := int(id) % n
			dst := (int(id) + 7) % n
			hosts[src].Originate(&msg.Message{ID: id, Source: src, Dest: dst,
				Size: 500, Created: now, TTL: 2000, InitialCopies: 8}, now)
			mgr.Kick(src, now)
		})
		eng.Run(2000)
		return collector.Summarize()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Created == 0 || a.Forwards == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}

func TestPerNodeRanges(t *testing.T) {
	// Node 0 has a 200 m radio, node 1 a 60 m radio, node 2 a 200 m radio.
	// Contact requires BOTH radios to reach: 0-1 at 100 m apart stay
	// disconnected (1's radio is too short); 0-2 at 150 m connect.
	eng := sim.NewEngine()
	collector := stats.NewCollector()
	tracker := routing.NewTracker()
	hosts := make([]*routing.Host, 3)
	models := make([]mobility.Model, 3)
	pos := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 150}}
	for i := range hosts {
		hosts[i] = routing.NewHost(routing.HostConfig{
			ID: i, Nodes: 3, Buffer: 10000,
			Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:  core.FixedRate{Mean: 1200},
			Clock: eng.Now, Collector: collector, Tracker: tracker, Oracle: tracker,
		})
		models[i] = &puppet{p: pos[i]}
	}
	mgr := mustManager(NewManager(eng, Config{
		Area: geo.NewRect(1000, 1000), Range: 100, Bandwidth: 100, ScanInterval: 1,
		Ranges: []float64{200, 60, 200},
	}, hosts, models, collector, nil))
	mgr.Start()
	eng.Run(5)
	if mgr.ActiveLinks() != 1 {
		t.Fatalf("links = %d, want only the 0-2 link", mgr.ActiveLinks())
	}
	if mgr.Contacts() != 1 {
		t.Fatalf("contacts = %d", mgr.Contacts())
	}
}

func TestNewManagerRejectsBadInputs(t *testing.T) {
	eng := sim.NewEngine()
	collector := stats.NewCollector()
	h := routing.NewHost(routing.HostConfig{
		ID: 0, Nodes: 1, Buffer: 10, Policy: policy.FIFO{},
		Proto: routing.SprayAndWait{Binary: true}, Rate: core.FixedRate{Mean: 1},
		Clock: eng.Now, Collector: collector,
	})
	if _, err := NewManager(eng, Config{Area: geo.NewRect(10, 10), Range: 1, Bandwidth: 1,
		ScanInterval: 1, Ranges: []float64{1, 2}},
		[]*routing.Host{h}, []mobility.Model{&puppet{}}, collector, nil); err == nil {
		t.Fatal("no error on bad Ranges length")
	}
	if _, err := NewManager(eng, Config{Area: geo.NewRect(10, 10), Range: 1, Bandwidth: 1,
		ScanInterval: 1},
		[]*routing.Host{h}, nil, collector, nil); err == nil {
		t.Fatal("no error on hosts/models mismatch")
	}
}

func TestTransferAbortsWhenMessageExpiresInFlight(t *testing.T) {
	r := newRig(2, 10000)
	// TTL 3 s: the 5 s transfer (starting at the t=1 scan) outlives it.
	m := &msg.Message{ID: 1, Source: 0, Dest: 1, Size: 500, Created: 0,
		TTL: 3, InitialCopies: 8}
	r.hosts[0].Originate(m, 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(30)
	s := r.collector.Summarize()
	if s.Delivered != 0 {
		t.Fatal("expired message delivered")
	}
	if s.Aborted == 0 {
		t.Fatal("in-flight expiry not counted as abort")
	}
	if s.Forwards != 0 {
		t.Fatal("expired transfer counted as forward")
	}
}

func TestTransferAbortsWhenSenderCopyEvictedInFlight(t *testing.T) {
	r := newRig(2, 10000)
	tracker := routing.NewTracker()
	// Tiny sender buffer: originating a second message mid-transfer evicts
	// the in-flight one (FIFO evicts oldest).
	r.hosts[0] = routing.NewHost(routing.HostConfig{
		ID: 0, Nodes: 2, Buffer: 500,
		Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
		Rate:  core.FixedRate{Mean: 1200},
		Clock: r.eng.Now, Collector: r.collector, Tracker: tracker, Oracle: tracker,
	})
	r.hosts[0].Originate(&msg.Message{ID: 1, Source: 0, Dest: 1, Size: 500,
		Created: 0, TTL: 1e6, InitialCopies: 8}, 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	// Transfer runs 1..6; at t=3 a new origination evicts message 1.
	r.eng.At(3, func(now float64) {
		r.hosts[0].Originate(&msg.Message{ID: 2, Source: 0, Dest: 99, Size: 500,
			Created: now, TTL: 1e6, InitialCopies: 8}, now)
	})
	r.eng.Run(30)
	s := r.collector.Summarize()
	if s.Delivered != 0 {
		t.Fatal("evicted in-flight message delivered")
	}
	if s.Aborted == 0 {
		t.Fatal("mid-flight eviction not treated as abort")
	}
}
