package network

import (
	"fmt"
	"sort"
)

// Contact is one recorded encounter between two nodes, for contact-trace-
// driven simulation (Haggle/Infocom-style datasets record exactly this).
type Contact struct {
	A, B       int
	Start, End float64
}

// ValidateContacts checks a recorded contact list against a population of n
// nodes: self-contacts, out-of-range ids, and empty or negative intervals
// are rejected. Callers that assemble contacts from external traces should
// validate at build time so later replay cannot fail.
func ValidateContacts(contacts []Contact, n int) error {
	for _, c := range contacts {
		if c.A == c.B {
			return fmt.Errorf("network: contact with itself: node %d", c.A)
		}
		if c.A < 0 || c.A >= n || c.B < 0 || c.B >= n {
			return fmt.Errorf("network: contact %d-%d out of range (N=%d)", c.A, c.B, n)
		}
		if c.End <= c.Start || c.Start < 0 {
			return fmt.Errorf("network: contact %d-%d has bad interval [%v,%v]", c.A, c.B, c.Start, c.End)
		}
	}
	return nil
}

// StartScheduled drives the manager from a recorded contact list instead of
// the mobility scanner: link-up/down events fire at the listed times and
// the transfer engine runs unchanged on top. Call instead of Start.
//
// Contacts failing ValidateContacts are rejected. Overlapping contacts for
// the same pair are merged implicitly (a second "up" while the link is up
// is ignored; the link stays up until the last scheduled down). The energy
// model's scan drain does not apply (there is no radio discovery to model);
// transfer drain still does. A churn-crashed node misses the remainder of
// any recorded contact that starts or is in progress during its outage.
func (m *Manager) StartScheduled(contacts []Contact) error {
	if err := ValidateContacts(contacts, len(m.hosts)); err != nil {
		return err
	}
	m.scheduleChurn()
	sorted := append([]Contact(nil), contacts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	// Track how many overlapping recorded contacts keep each pair up, so
	// merged intervals behave like one long contact. The map is only ever
	// indexed by key, never ranged: link transitions fire in the engine's
	// (time, seq) order fixed by the sorted schedule above, so no map
	// iteration order can reach the event stream.
	depth := make(map[pairKey]int)
	for _, c := range sorted {
		c := c
		k := keyOf(c.A, c.B)
		m.eng.At(c.Start, func(now float64) {
			depth[k]++
			if depth[k] == 1 && !m.isDown(int(k[0])) && !m.isDown(int(k[1])) {
				if _, up := m.links[k]; !up {
					m.linkUp(k, now)
				}
			}
		})
		m.eng.At(c.End, func(now float64) {
			depth[k]--
			if depth[k] <= 0 {
				if _, up := m.links[k]; up {
					for _, id := range m.linkDown(k, now, nil) {
						m.kick(id, now)
					}
				}
			}
		})
	}
	return nil
}
