package network

import (
	"math"
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/policy"
	"sdsrp/internal/routing"
	"sdsrp/internal/sim"
	"sdsrp/internal/stats"
)

func TestParkTicksDeadlines(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name     string
		va, vb   float64
		interval float64
		d, r     float64
		want     int64
	}{
		{"both-static", 0, 0, 1, 500, 50, -1},
		{"static-in-range", 0, 0, 1, 40, 50, 0},              // in range ⇒ near, never retired
		{"static-at-range", 0, 0, 1, 50, 50, 0},              // boundary counts as in range
		{"negative-speed-sum-guards", 0, -1, 1, 500, 50, -1}, // contract violation still safe
		{"in-range", 2, 2, 1, 40, 50, 0},
		{"exactly-at-range", 2, 2, 1, 50, 50, 0}, // lower bound < r ⇒ gap < 0
		{"just-outside", 2, 2, 1, 54, 50, 0},     // gap ≈ 4, c·I = 4 ⇒ K = 0
		{"one-tick-away", 2, 2, 1, 57, 50, 1},
		{"equal-speeds", 3, 3, 1, 650, 50, 99},    // gap ≈ 600, c = 6
		{"asymmetric", 0, 5, 1, 550, 50, 99},      // one mover carries the bound
		{"long-interval", 1, 1, 30, 6050, 50, 99}, // denominator scales with tick length
		{"teleporter", inf, 2, 1, 1e6, 50, 0},     // +Inf closing speed: checked every tick
		{"crawler-caps", 1e-9, 0, 1, 1e6, 50, maxParkTicks},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &sweep{interval: tc.interval, speed: []float64{tc.va, tc.vb}}
			got := s.parkTicks(0, 1, tc.d*tc.d, tc.r)
			if got != tc.want {
				t.Fatalf("parkTicks(d=%g, r=%g, v=%g+%g, I=%g) = %d, want %d",
					tc.d, tc.r, tc.va, tc.vb, tc.interval, got, tc.want)
			}
		})
	}
}

// TestParkTicksConservative pins the safety property the byte-identity proof
// rests on: over K skipped ticks the pair can close at most K·c·I metres,
// which never reaches the (conservatively lower-bounded) gap.
func TestParkTicksConservative(t *testing.T) {
	for _, va := range []float64{0, 0.5, 2, 13.9} {
		for _, vb := range []float64{0.01, 1, 7} {
			for _, interval := range []float64{0.1, 1, 30} {
				for _, d := range []float64{51, 60, 200, 4000, 1e7} {
					const r = 50.0
					s := &sweep{interval: interval, speed: []float64{va, vb}}
					k := s.parkTicks(0, 1, d*d, r)
					if k < 0 {
						t.Fatalf("finite speeds %g+%g retired", va, vb)
					}
					// K ticks of closing at the bound must not reach the true
					// gap; the DistLowerBound slack (~d·1e-9) dominates every
					// rounding step in this chain.
					c := va + vb
					if maxClose := float64(k) * c * interval; maxClose > d-r {
						t.Fatalf("parkTicks(d=%g, c=%g, I=%g) = %d can close %g > gap %g",
							d, c, interval, k, maxClose, d-r)
					}
				}
			}
		}
	}
}

// pathManager builds a 1s-scan lazy-mode manager over trace-playback models.
func pathManager(t *testing.T, eng *sim.Engine, rng float64, paths ...[]mobility.TimedPoint) *Manager {
	t.Helper()
	collector := stats.NewCollector()
	tracker := routing.NewTracker()
	n := len(paths)
	hosts := make([]*routing.Host, n)
	models := make([]mobility.Model, n)
	for i, pts := range paths {
		hosts[i] = routing.NewHost(routing.HostConfig{
			ID: i, Nodes: n, Buffer: 10000,
			Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:  core.FixedRate{Mean: 1200},
			Clock: eng.Now, Collector: collector, Tracker: tracker, Oracle: tracker,
		})
		p, err := mobility.NewPath(pts)
		if err != nil {
			t.Fatal(err)
		}
		models[i] = p
	}
	return mustManager(NewManager(eng, Config{
		Area: geo.NewRect(100000, 1000), Range: rng, Bandwidth: 100, ScanInterval: 1,
	}, hosts, models, collector, nil))
}

// TestSweepParksAndWakesAcrossWheelLaps drives a 1 m/s node 400 m toward a
// fixed one, ending 30 m away (range 50). The pair parks once for ~379
// ticks — more than one full wheel lap, so the bucket entry is re-kept at
// least once — wakes within a tick or two of the true earliest approach,
// and still produces the contact.
func TestSweepParksAndWakesAcrossWheelLaps(t *testing.T) {
	eng := sim.NewEngine()
	m := pathManager(t, eng, 50,
		[]mobility.TimedPoint{{T: 0, P: geo.Point{X: 300, Y: 0}}}, // single waypoint: MaxSpeed 0
		[]mobility.TimedPoint{{T: 0, P: geo.Point{X: 730, Y: 0}}, {T: 400, P: geo.Point{X: 330, Y: 0}}},
	)
	m.Start()
	eng.Run(500)
	if got := m.ActiveLinks(); got != 1 {
		t.Fatalf("ActiveLinks = %d, want the pair linked at rest 30 m apart", got)
	}
	checked, skipped, wakeups := m.ScanStats()
	if wakeups != 1 {
		t.Fatalf("wakeups = %d, want exactly 1 (single park, single wake)", wakeups)
	}
	if skipped < 300 {
		t.Fatalf("pairsSkipped = %d, want ≥ 300 parked ticks", skipped)
	}
	// 500 ticks of naive scanning would evaluate the predicate ≥ 500 times;
	// the planner pays one check up front, the post-wake approach, and the
	// per-tick down check while linked.
	if checked >= 400 {
		t.Fatalf("pairsChecked = %d — parking saved nothing", checked)
	}
}

// TestSweepRetiresStaticPairs: two immobile nodes out of range are checked on
// the first tick and never again.
func TestSweepRetiresStaticPairs(t *testing.T) {
	eng := sim.NewEngine()
	collector := stats.NewCollector()
	tracker := routing.NewTracker()
	hosts := make([]*routing.Host, 2)
	models := []mobility.Model{
		mobility.Static{P: geo.Point{X: 0, Y: 0}},
		mobility.Static{P: geo.Point{X: 500, Y: 0}},
	}
	for i := range hosts {
		hosts[i] = routing.NewHost(routing.HostConfig{
			ID: i, Nodes: 2, Buffer: 10000,
			Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:  core.FixedRate{Mean: 1200},
			Clock: eng.Now, Collector: collector, Tracker: tracker, Oracle: tracker,
		})
	}
	m := mustManager(NewManager(eng, Config{
		Area: geo.NewRect(1000, 1000), Range: 100, Bandwidth: 100, ScanInterval: 1,
	}, hosts, models, collector, nil))
	m.Start()
	eng.Run(200)
	checked, skipped, wakeups := m.ScanStats()
	if checked != 1 {
		t.Fatalf("pairsChecked = %d, want exactly the first-tick check", checked)
	}
	if wakeups != 0 {
		t.Fatalf("wakeups = %d for a retired pair", wakeups)
	}
	if skipped < 190 {
		t.Fatalf("pairsSkipped = %d, want one per remaining tick", skipped)
	}
}

// TestSweepStaticPairSurvivesChurnReboot pins the regression where an
// in-range static-static pair with a churn-downed endpoint was permanently
// retired (closing speed 0) on its first scan: nothing ever wakes a retired
// pair, so the link would never come up after the reboot, diverging from
// the naive scanner. The pair must instead stay near — distance did not
// rule it out — and link as soon as the endpoint is back.
func TestSweepStaticPairSurvivesChurnReboot(t *testing.T) {
	eng := sim.NewEngine()
	collector := stats.NewCollector()
	tracker := routing.NewTracker()
	hosts := make([]*routing.Host, 2)
	models := []mobility.Model{
		mobility.Static{P: geo.Point{X: 0, Y: 0}},
		mobility.Static{P: geo.Point{X: 30, Y: 0}},
	}
	for i := range hosts {
		hosts[i] = routing.NewHost(routing.HostConfig{
			ID: i, Nodes: 2, Buffer: 10000,
			Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:  core.FixedRate{Mean: 1200},
			Clock: eng.Now, Collector: collector, Tracker: tracker, Oracle: tracker,
		})
	}
	m := mustManager(NewManager(eng, Config{
		Area: geo.NewRect(1000, 1000), Range: 50, Bandwidth: 100, ScanInterval: 1,
	}, hosts, models, collector, nil))
	// Crash node 1 by hand (churn bookkeeping without an injector), scan
	// while it is dark, then reboot and scan again.
	m.down = make([]bool, 2)
	m.down[1] = true
	m.Scan(1)
	if got := m.ActiveLinks(); got != 0 {
		t.Fatalf("ActiveLinks = %d while an endpoint is down, want 0", got)
	}
	m.down[1] = false
	m.Scan(2)
	if got := m.ActiveLinks(); got != 1 {
		t.Fatalf("ActiveLinks = %d after reboot, want the in-range static pair re-linked", got)
	}
}

// TestPairIndexRoundTrip checks the triangular index and its table-driven
// inverse over every pair of a 9-node fleet, plus the initial active-set
// bookkeeping.
func TestPairIndexRoundTrip(t *testing.T) {
	r := newRig(9, 10000)
	s := r.mgr.sweep
	if s == nil {
		t.Fatal("default scan mode did not build the sweep planner")
	}
	seen := make(map[int]bool)
	for a := 0; a < 9; a++ {
		for b := a + 1; b < 9; b++ {
			p := s.pairIndex(a, b)
			if p < 0 || p >= 36 {
				t.Fatalf("pairIndex(%d,%d) = %d out of range", a, b, p)
			}
			if seen[p] {
				t.Fatalf("pairIndex(%d,%d) = %d collides", a, b, p)
			}
			seen[p] = true
			ga, gb := s.pairNodes(int32(p))
			if ga != a || gb != b {
				t.Fatalf("pairNodes(%d) = (%d,%d), want (%d,%d)", p, ga, gb, a, b)
			}
		}
	}
	if len(s.active) != 36 {
		t.Fatalf("active = %d pairs, want all 36 near at construction", len(s.active))
	}
	for i, p := range s.active {
		if s.slot[p] != int32(i) {
			t.Fatalf("slot[%d] = %d, want %d", p, s.slot[p], i)
		}
	}
}
