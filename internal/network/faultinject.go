package network

import (
	"sort"

	"sdsrp/internal/obs"
)

// This file actuates the fault layer's link-flap and node-churn models on
// the radio state the Manager owns. The decisions themselves (whether, when,
// how long) are drawn by internal/fault from its dedicated rng substreams;
// here they only turn into link teardowns and scheduled engine events, so
// the no-fault path costs a nil check per call site.

// flapLink force-drops a live link when its flap timer fires. The pair is
// suppressed from re-upping until the nodes genuinely leave radio range
// (scanner mode); in scheduled mode the next recorded contact re-ups it.
func (m *Manager) flapLink(k pairKey, now float64) {
	if _, up := m.links[k]; !up {
		return // timer should have been canceled with the link; be safe
	}
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{T: now, Type: obs.LinkFlap, Node: int(k[0]), Peer: int(k[1])})
	}
	if m.flapped != nil {
		m.flapped[k] = true
	}
	freed := m.linkDown(k, now, nil)
	kickAll(m, freed, now, -1)
}

// scheduleChurn arms the first crash clock of every churn-eligible node.
// Called once from Start / StartScheduled; each node then cycles
// crash → reboot → crash through engine events.
func (m *Manager) scheduleChurn() {
	if !m.faults.ChurnEnabled() {
		return
	}
	// Node order fixes the draw order of the initial uptimes.
	for id := range m.hosts {
		if m.faults.Churns(id) {
			m.scheduleCrash(id, m.faults.NextUptime())
		}
	}
}

func (m *Manager) scheduleCrash(id int, after float64) {
	m.eng.After(after, func(now float64) { m.nodeDown(id, now) })
}

// nodeDown crashes host id: every live link is torn down (aborting
// in-flight transfers), the node stops appearing in scans and scheduled
// link-ups, and a reboot is scheduled after a drawn outage.
func (m *Manager) nodeDown(id int, now float64) {
	m.down[id] = true
	// Collect the neighbor-map keys, then sort: teardown order feeds
	// emitted events and must not inherit map iteration order.
	keys := make([]pairKey, 0, len(m.neighbors[id]))
	for p := range m.neighbors[id] {
		keys = append(keys, keyOf(id, p))
	}
	sortPairKeys(keys)
	var freed []int
	for _, k := range keys {
		freed = m.linkDown(k, now, freed)
	}
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{T: now, Type: obs.NodeDown, Node: id})
	}
	// Surviving peers may have other live links; the crashed node must not
	// start anything.
	kickAll(m, freed, now, id)
	m.eng.After(m.faults.NextOutage(), func(upAt float64) { m.nodeUp(id, upAt) })
}

// nodeUp reboots host id. With WipeOnReboot the host loses its buffer and
// dropped-list state (a cold restart); either way the node rejoins the
// network at the next scan or scheduled contact, and its next crash is
// armed.
func (m *Manager) nodeUp(id int, now float64) {
	m.down[id] = false
	if m.faults.WipeOnReboot() {
		m.hosts[id].WipeState(now)
	}
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{T: now, Type: obs.NodeUp, Node: id})
	}
	m.scheduleCrash(id, m.faults.NextUptime())
}

// isDown reports whether churn currently keeps host id dark.
func (m *Manager) isDown(id int) bool { return m.down != nil && m.down[id] }

// kickAll kicks the freed endpoints in deterministic order, skipping
// duplicates and the excluded id (-1 for none).
func kickAll(m *Manager, freed []int, now float64, exclude int) {
	if len(freed) == 0 {
		return
	}
	sort.Ints(freed)
	prev := -1
	for _, id := range freed {
		if id != prev && id != exclude {
			m.kick(id, now)
		}
		prev = id
	}
}
