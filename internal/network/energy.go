package network

import "sdsrp/internal/stats"

// EnergyConfig models per-node batteries, following the ONE simulator's
// energy module: scanning and transferring drain a finite budget and a
// depleted node's radio goes dark (the node keeps its buffer but neither
// scans nor transfers). A zero Capacity disables the model.
type EnergyConfig struct {
	// Capacity is the initial battery budget per node, in joules.
	Capacity float64
	// ScanPerSec drains continuously while the radio is on (discovery
	// beaconing), charged per scan tick.
	ScanPerSec float64
	// TxPerSec drains while sending; RxPerSec while receiving. Both are
	// charged per transfer for its actual duration (including the elapsed
	// part of aborted transfers).
	TxPerSec float64
	RxPerSec float64
}

// Enabled reports whether the energy model is active.
func (e EnergyConfig) Enabled() bool { return e.Capacity > 0 }

// energyState tracks the fleet's batteries inside the Manager.
type energyState struct {
	cfg     EnergyConfig
	level   []float64
	dead    int
	used    float64
	deaths  stats.Sampler // death times, for survivability reporting
	started []float64     // per-transfer bookkeeping is handled by caller
}

func newEnergyState(cfg EnergyConfig, n int) *energyState {
	if !cfg.Enabled() {
		return nil
	}
	s := &energyState{cfg: cfg, level: make([]float64, n)}
	for i := range s.level {
		s.level[i] = cfg.Capacity
	}
	return s
}

// alive reports whether node id still has battery.
func (s *energyState) alive(id int) bool { return s == nil || s.level[id] > 0 }

// drain charges amount joules to node id at time now, recording death when
// the battery crosses zero.
func (s *energyState) drain(id int, amount, now float64) {
	if s == nil || amount <= 0 || s.level[id] <= 0 {
		return
	}
	s.used += amount
	s.level[id] -= amount
	if s.level[id] <= 0 {
		s.level[id] = 0
		s.dead++
		s.deaths.Add(now)
	}
}

// EnergyReport summarizes battery state at a point in time.
type EnergyReport struct {
	Enabled    bool
	DeadNodes  int
	TotalUsed  float64
	MeanLevel  float64 // mean remaining fraction across nodes
	FirstDeath float64 // time of the first depletion (0 when none)
}

// EnergyReport returns the manager's battery summary.
func (m *Manager) EnergyReport() EnergyReport {
	s := m.energy
	if s == nil {
		return EnergyReport{}
	}
	var frac float64
	for _, v := range s.level {
		frac += v / s.cfg.Capacity
	}
	r := EnergyReport{
		Enabled:   true,
		DeadNodes: s.dead,
		TotalUsed: s.used,
		MeanLevel: frac / float64(len(s.level)),
	}
	if s.deaths.Count() > 0 {
		r.FirstDeath = s.deaths.Min()
	}
	return r
}
