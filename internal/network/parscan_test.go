package network

import (
	"bytes"
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/obs"
	"sdsrp/internal/policy"
	"sdsrp/internal/routing"
	"sdsrp/internal/sim"
	"sdsrp/internal/stats"
)

// mover is a constant-velocity test model with an honest MaxSpeed bound —
// unlike puppet it can participate in the sharded scan, whose lookahead
// window trusts the bound.
type mover struct {
	p0    geo.Point
	vx    float64
	speed float64
}

func (m *mover) Pos(t float64) geo.Point { return geo.Point{X: m.p0.X + m.vx*t, Y: m.p0.Y} }
func (m *mover) MaxSpeed() float64       { return m.speed }

// parRig builds a 6-node fleet engineered to produce three link-ups at the
// same scan tick in three different shard territories: one pair interior to
// stripe 0, one interior to stripe 1 (of a 2-worker split over the 2000 m
// area), and one straddling the boundary (a hand-off pair). Every pair
// starts 112 m apart closing at 2 m/s, so all three cross the 100 m range
// threshold between the t=5 and t=6 scans.
func parRig(workers int, scan string, sink *bytes.Buffer) (*sim.Engine, *Manager, func() error) {
	eng := sim.NewEngine()
	collector := stats.NewCollector()
	tracker := routing.NewTracker()
	starts := [][2]float64{
		{200, 312},   // stripe 0 interior
		{1500, 1612}, // stripe 1 interior
		{944, 1056},  // straddles the 1000 m boundary
	}
	var hosts []*routing.Host
	var models []mobility.Model
	id := 0
	for _, s := range starts {
		models = append(models,
			&mover{p0: geo.Point{X: s[0], Y: float64(100 * id)}, vx: 1, speed: 1},
			&mover{p0: geo.Point{X: s[1], Y: float64(100 * id)}, vx: -1, speed: 1})
		id++
	}
	for i := range models {
		hosts = append(hosts, routing.NewHost(routing.HostConfig{
			ID: i, Nodes: len(models), Buffer: 1 << 20,
			Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:      core.FixedRate{Mean: 1200},
			Clock:     eng.Now,
			Collector: collector,
			Tracker:   tracker,
			Oracle:    tracker,
		}))
	}
	jsonl := obs.NewJSONL(sink)
	mgr := mustManager(NewManager(eng, Config{
		Area: geo.NewRect(2000, 1000), Range: 100, Bandwidth: 100, ScanInterval: 1,
		Scan: scan, Workers: workers, Tracer: jsonl,
	}, hosts, models, collector, nil))
	mgr.Start()
	return eng, mgr, jsonl.Flush
}

// TestBarrierMergeOrdersSimultaneousCrossShardUps is the focused unit test
// for the merge phase (DESIGN.md §13): three contacts appearing at the same
// timestamp in three different shard territories — including one hand-off
// pair owned across the stripe boundary — must be committed in exactly the
// order the serial naive scanner emits, byte for byte.
func TestBarrierMergeOrdersSimultaneousCrossShardUps(t *testing.T) {
	var naive, par bytes.Buffer
	engN, _, flushN := parRig(1, ScanNaive, &naive)
	engN.Run(10)
	if err := flushN(); err != nil {
		t.Fatal(err)
	}
	engP, mgrP, flushP := parRig(2, ScanNaive, &par)
	if mgrP.par == nil {
		t.Fatal("2-worker rig did not construct the sharded scan (window refused?)")
	}
	engP.Run(10)
	if err := flushP(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(naive.Bytes(), par.Bytes()) {
		nl := bytes.Split(naive.Bytes(), []byte("\n"))
		pl := bytes.Split(par.Bytes(), []byte("\n"))
		n := min(len(nl), len(pl))
		for i := 0; i < n; i++ {
			if !bytes.Equal(nl[i], pl[i]) {
				t.Fatalf("merge order diverges at line %d:\n  naive:   %s\n  sharded: %s", i+1, nl[i], pl[i])
			}
		}
		t.Fatalf("trace lengths differ: naive %d, sharded %d", len(nl), len(pl))
	}
	if mgrP.Contacts() != 3 {
		t.Fatalf("expected 3 simultaneous contacts, got %d", mgrP.Contacts())
	}
	windows, barriers, handoffs := mgrP.ShardStats()
	if windows == 0 || barriers == 0 {
		t.Fatalf("sharded path inert: windows=%d barriers=%d", windows, barriers)
	}
	// Two barriers per scan tick, ticks at t=1..10.
	if barriers != 20 {
		t.Fatalf("barriers = %d, want 20 (2 per tick × 10 ticks)", barriers)
	}
	if handoffs == 0 {
		t.Fatal("boundary pair never counted as a hand-off")
	}
}

// TestNewParScanRefusals pins every serial-fallback condition the
// constructor documents.
func TestNewParScanRefusals(t *testing.T) {
	build := func(workers int, models []mobility.Model, area geo.Rect, interval float64) *Manager {
		eng := sim.NewEngine()
		collector := stats.NewCollector()
		tracker := routing.NewTracker()
		var hosts []*routing.Host
		for i := range models {
			hosts = append(hosts, routing.NewHost(routing.HostConfig{
				ID: i, Nodes: len(models), Buffer: 1 << 20,
				Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
				Rate: core.FixedRate{Mean: 1200}, Clock: eng.Now,
				Collector: collector, Tracker: tracker, Oracle: tracker,
			}))
		}
		return mustManager(NewManager(eng, Config{
			Area: area, Range: 100, Bandwidth: 100, ScanInterval: interval,
			Workers: workers,
		}, hosts, models, collector, nil))
	}
	slow := func(n int) []mobility.Model {
		var ms []mobility.Model
		for i := 0; i < n; i++ {
			ms = append(ms, &mover{p0: geo.Point{X: float64(200 * i)}, speed: 1})
		}
		return ms
	}
	area := geo.NewRect(2000, 1000)

	if m := build(2, slow(4), area, 1); m.par == nil {
		t.Fatal("bounded fleet with wide stripes should shard")
	}
	// One unbounded model poisons the fleet-wide window.
	inf := slow(4)
	inf[2] = &puppet{p: geo.Point{X: 400}}
	if m := build(2, inf, area, 1); m.par != nil {
		t.Fatal("+Inf MaxSpeed fleet must fall back to serial")
	}
	// Stripes narrower than the radio range leave no gap.
	if m := build(64, slow(4), area, 1); m.par != nil {
		t.Fatal("64 stripes over 2000 m (31 m bands < 100 m range) must fall back")
	}
	// A scan interval so coarse one tick of closing crosses the gap: band
	// 1000 m, gap 900 m, 2 m/s mutual closing × 500 s tick = 1000 m ≥ gap.
	if m := build(2, slow(4), area, 500); m.par != nil {
		t.Fatal("gap smaller than one tick of closing must fall back")
	}
	// Degenerate populations.
	if m := build(1, slow(4), area, 1); m.par != nil {
		t.Fatal("workers=1 must stay serial")
	}
	if m := build(2, slow(1), area, 1); m.par != nil {
		t.Fatal("single-node fleet must stay serial")
	}
}
