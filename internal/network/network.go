// Package network implements the radio model: grid-accelerated contact
// detection and half-duplex, bandwidth-limited transfers that abort when
// nodes move out of range.
//
// Semantics (matching what the paper's ONE setup exercises):
//
//   - Nodes are in contact while within Range metres; the scanner samples
//     positions every ScanInterval seconds and diffs the in-range pair set.
//   - A node runs at most one transfer at a time (send or receive); a link
//     carries at most one active transfer.
//   - A transfer takes size/Bandwidth seconds. Link-down mid-transfer
//     aborts it: the receiver discards partial data, the sender's state is
//     untouched.
//   - When a link is idle, the sender's buffer-management policy picks the
//     next message (routing.Host.NextOffer, the paper's Algorithm 1
//     ordering). The receiver refuses up-front only what its dropped list
//     rejects (or, in the preflight-eviction ablation, what its buffer
//     policy would discard); refused and arrival-dropped messages are not
//     re-offered during the same contact.
//   - Optional per-node radio ranges (both radios must reach), a battery
//     model (EnergyConfig), and contact-trace replay (StartScheduled)
//     extend the paper's fixed setup.
//lint:shard-safe manager state is per-run; map iteration feeding the event stream is collect-then-sort throughout
package network

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sdsrp/internal/fault"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/msg"
	"sdsrp/internal/obs"
	"sdsrp/internal/routing"
	"sdsrp/internal/sim"
	"sdsrp/internal/stats"
)

// Config parameterizes the radio model.
type Config struct {
	Area         geo.Rect
	Range        float64 // metres
	Bandwidth    float64 // bytes per second
	ScanInterval float64 // seconds between connectivity scans
	// Ranges optionally gives each node its own radio range; nil uses
	// Range for everyone. Two nodes are in contact when their distance is
	// at most the smaller of their ranges (a link needs both directions).
	Ranges []float64
	// Energy enables the per-node battery model when Capacity > 0.
	Energy EnergyConfig
	// RecordContacts keeps a log of finished contacts (a, b, start, end)
	// retrievable from ContactLog — exportable as a replayable trace.
	RecordContacts bool
	// Tracer receives contact and transfer events; nil disables tracing.
	Tracer obs.Tracer
	// Faults is the run's fault injector; nil disables fault injection at
	// zero cost (every hot-path probe is a nil-guarded branch).
	Faults *fault.Injector
	// Scan selects the connectivity-scan strategy. ScanLazy (the default
	// when empty) parks pairs that physics rules out of radio range —
	// using each mobility model's MaxSpeed bound — in a wake wheel and
	// skips their distance checks until the earliest tick they could
	// close; ScanKinetic keeps the same motion-bounded parking but per
	// node (kinetic.go): nodes park against their grid-bucket
	// neighbourhood, so state is O(n) instead of lazy's O(n²) pair
	// arrays (~29 bytes per unordered pair, ≈1.4 GB at n = 10000);
	// ScanNaive re-checks every grid-candidate pair each tick. All three
	// emit byte-identical event streams. Fleets large enough to overflow
	// lazy's int32 pair index (n ≥ 65536) fall back to ScanKinetic — the
	// fallback is reported by FallbackReason. Pick ScanKinetic explicitly
	// for large fleets, ScanNaive when memory is tighter than scan time.
	Scan string
	// CellSize overrides the scan grid's bucket edge length in metres
	// (0 uses the largest radio range, the minimum legal value — smaller
	// buckets would let the 3×3 neighbourhood miss contacts). Larger
	// buckets trade candidate-set tightness for fewer kinetic wheel wakes
	// and a smaller cell table over sparse areas; contact semantics are
	// unchanged, but the grid's enumeration order (and therefore
	// same-tick link-up order) differs between cell sizes, so traces are
	// only comparable across runs using the same value.
	CellSize float64
	// Workers enables the sharded parallel scan (parscan.go, DESIGN.md
	// §13) when ≥ 2: the area is cut into Workers vertical stripes whose
	// position sampling and candidate-pair enumeration run concurrently
	// inside a conservative lookahead window, with all event emission
	// serialized at the window barrier — traces are byte-identical to the
	// serial scanners for every worker count. 0 or 1 keeps the configured
	// serial strategy. When the scenario admits no conservative window
	// (an unbounded-MaxSpeed fleet, or stripes narrower than one tick of
	// head-on closing), the Manager silently falls back to the serial
	// strategy for the whole run; ShardStats distinguishes the cases.
	Workers int
}

// Scan strategy names accepted by Config.Scan.
const (
	ScanLazy    = "lazy"
	ScanNaive   = "naive"
	ScanKinetic = "kinetic"
)

// pairKey identifies an unordered host pair, low id first.
type pairKey [2]int32

func keyOf(a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{int32(a), int32(b)}
}

// sortPairKeys orders link keys lexicographically — the canonical order for
// keys collected from the link and neighbor maps before any teardown or
// event emission, so map iteration order never reaches observable output.
func sortPairKeys(keys []pairKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
}

type transfer struct {
	link      *link
	sender    *routing.Host
	receiver  *routing.Host
	offer     routing.Offer
	done      sim.EventID
	startedAt float64
}

type link struct {
	key    pairKey
	a, b   *routing.Host // a.ID() < b.ID()
	upAt   float64
	active *transfer
	// refusedTo[0] holds ids refused by b (direction a→b); refusedTo[1]
	// ids refused by a (direction b→a). Cleared when the contact ends.
	refusedTo [2]map[msg.ID]bool
	// flip alternates which direction gets first pick, for fairness
	// during long contacts.
	flip bool
	// bw is this contact's bandwidth multiplier (1 unless the fault
	// layer's jitter model drew otherwise).
	bw float64
	// flapTimer, when armed, force-drops the link early (fault layer).
	flapTimer sim.EventID
}

// Manager owns the links and transfer scheduling for one simulation run.
type Manager struct {
	eng    *sim.Engine
	cfg    Config
	hosts  []*routing.Host
	models []mobility.Model
	grid   *geo.Grid

	links     map[pairKey]*link
	neighbors []map[int]*link // per host: peer id -> link
	busy      []bool

	collector *stats.Collector
	inter     *stats.Intermeeting // may be nil
	tracer    obs.Tracer          // may be nil
	lastEnd   map[pairKey]float64

	positions  []geo.Point
	pairBuf    [][2]int32
	contacts   int
	durations  stats.Sampler
	energy     *energyState
	ranges     []float64 // per-node; nil when uniform
	maxRange   float64
	contactLog []Contact

	faults *fault.Injector
	// down marks churn-crashed nodes (nil unless churn is enabled).
	down []bool
	// flapped suppresses re-up of pairs whose contact the flap model cut,
	// until the nodes genuinely separate (nil unless flapping is enabled).
	flapped map[pairKey]bool

	// sweep is the lazy scan planner (nil in naive, kinetic, and sharded
	// modes).
	sweep *sweep
	// kin is the kinetic per-node scan planner (nil unless ScanKinetic,
	// or unless the lazy planner's pair index overflowed and the run fell
	// back here).
	kin *kinetic
	// par is the sharded parallel scan state (nil unless Config.Workers
	// ≥ 2 and the scenario admits a conservative lookahead window).
	par *parScan
	// fallback records, in first-occurrence order, every scan-strategy
	// fallback the run took (see FallbackReason).
	fallback []string
	// Sharded-scan counters (see ShardStats).
	shardWindows  uint64
	shardBarriers uint64
	shardHandoffs uint64
	// downsBuf and freedBuf are per-tick scratch, reused so a steady-state
	// scan allocates nothing.
	downsBuf []pairKey
	freedBuf []int
	// Scan-strategy counters (see ScanStats).
	pairsChecked uint64
	pairsSkipped uint64
	wakeups      uint64
}

// NewManager wires the radio model. hosts[i] moves along models[i]. It
// returns an error on inconsistent inputs (mismatched hosts/models or
// per-node range table) — these come from user-assembled configuration, not
// programmer invariants.
func NewManager(eng *sim.Engine, cfg Config, hosts []*routing.Host, models []mobility.Model,
	collector *stats.Collector, inter *stats.Intermeeting) (*Manager, error) {
	if len(hosts) != len(models) {
		return nil, fmt.Errorf("network: %d hosts but %d mobility models", len(hosts), len(models))
	}
	n := len(hosts)
	maxRange := cfg.Range
	if cfg.Ranges != nil {
		if len(cfg.Ranges) != n {
			return nil, fmt.Errorf("network: %d per-node ranges for %d hosts", len(cfg.Ranges), n)
		}
		for _, r := range cfg.Ranges {
			if r > maxRange {
				maxRange = r
			}
		}
	}
	cell := maxRange
	if cfg.CellSize != 0 {
		if cfg.CellSize < maxRange {
			return nil, fmt.Errorf("network: cell size %v is below the largest radio range %v (a 3×3 bucket neighbourhood would miss contacts)", cfg.CellSize, maxRange)
		}
		cell = cfg.CellSize
	}
	m := &Manager{
		eng:       eng,
		cfg:       cfg,
		hosts:     hosts,
		models:    models,
		ranges:    cfg.Ranges,
		maxRange:  maxRange,
		grid:      geo.NewGrid(cfg.Area, cell, n),
		links:     make(map[pairKey]*link),
		neighbors: make([]map[int]*link, n),
		busy:      make([]bool, n),
		collector: collector,
		inter:     inter,
		tracer:    cfg.Tracer,
		lastEnd:   make(map[pairKey]float64),
		positions: make([]geo.Point, n),
		energy:    newEnergyState(cfg.Energy, n),
		faults:    cfg.Faults,
	}
	for i := range m.neighbors {
		m.neighbors[i] = make(map[int]*link)
	}
	if m.faults.ChurnEnabled() {
		m.down = make([]bool, n)
	}
	if m.faults.FlapEnabled() {
		m.flapped = make(map[pairKey]bool)
	}
	switch cfg.Scan {
	case "", ScanLazy, ScanNaive, ScanKinetic:
	default:
		return nil, fmt.Errorf("network: unknown scan strategy %q (want %q, %q, or %q)", cfg.Scan, ScanLazy, ScanNaive, ScanKinetic)
	}
	// The sharded parallel scan supersedes the serial strategies when it
	// can construct a conservative window; otherwise the run falls back to
	// the strategy Scan names (all orderings emit identical traces).
	if cfg.Workers > 1 {
		m.par = newParScan(m, cfg.Workers)
	}
	if m.par == nil {
		switch cfg.Scan {
		case ScanNaive:
		case ScanKinetic:
			m.kin = newKinetic(m)
		default: // "" or ScanLazy
			if m.sweep = newSweep(m); m.sweep == nil {
				// The triangular pair index would overflow int32
				// (n ≥ 65536); the kinetic planner's O(n) state is the
				// right tool there and emits the identical stream.
				m.noteFallback("lazy:pair-index-overflow->kinetic")
				m.kin = newKinetic(m)
			}
		}
	}
	return m, nil
}

// noteFallback records a scan-strategy fallback reason once.
func (m *Manager) noteFallback(reason string) {
	for _, r := range m.fallback {
		if r == reason {
			return
		}
	}
	m.fallback = append(m.fallback, reason)
}

// FallbackReason returns the comma-joined, first-occurrence-ordered list of
// scan-strategy fallbacks this run took, or "" when every configured
// strategy held. Reasons cover the lazy planner's pair-index overflow
// (n ≥ 65536 → kinetic), every newParScan refusal (the serial fallback that
// previously signalled only implicitly via ShardWindows == 0), and the lazy
// and kinetic planners' load-monitor retirements to the naive scan. Every
// fallback is byte-identity-preserving; this string exists so capacity
// planning never has to infer the active strategy from counters.
func (m *Manager) FallbackReason() string {
	return strings.Join(m.fallback, ",")
}

// ScanStats reports the scan-strategy work counters: distance-predicate
// evaluations performed, ticks of work skipped by parking (pair-ticks under
// the lazy planner, parked node-ticks under the kinetic planner; always 0
// in naive mode), and wheel wakeups (pairs for lazy, nodes for kinetic).
// These describe strategy work, not simulation outcome — they differ across
// strategies while the event trace stays byte-identical.
func (m *Manager) ScanStats() (checked, skipped, wakeups uint64) {
	return m.pairsChecked, m.pairsSkipped, m.wakeups
}

// ShardStats reports the sharded parallel scan's progress counters: lookahead
// windows opened (stripe reassignments), barriers crossed (two per scan tick
// — after the sampling phase and after the enumeration phase), and hand-offs
// (in-contact candidate pairs straddling two stripes, merged serially at the
// barrier). All zero when the scan runs serially — including the silent
// fallback when Config.Workers ≥ 2 but the scenario admits no conservative
// window — so a zero windows counter on a Workers ≥ 2 run is the documented
// fallback signal.
func (m *Manager) ShardStats() (windows, barriers, handoffs uint64) {
	return m.shardWindows, m.shardBarriers, m.shardHandoffs
}

// Start schedules the periodic connectivity scan. Call once before
// Engine.Run.
func (m *Manager) Start() {
	m.scheduleChurn()
	m.eng.Every(m.cfg.ScanInterval, m.Scan)
}

// Contacts returns the number of contacts (link-up events) so far.
func (m *Manager) Contacts() int { return m.contacts }

// ActiveLinks returns the number of links currently up.
func (m *Manager) ActiveLinks() int { return len(m.links) }

// ContactDurations returns the sampler of finished contact lengths in
// seconds (links still up at the horizon are not included).
func (m *Manager) ContactDurations() *stats.Sampler { return &m.durations }

// ContactLog returns the finished contacts recorded so far (empty unless
// Config.RecordContacts; links still up at the horizon are not included).
func (m *Manager) ContactLog() []Contact { return m.contactLog }

// Scan samples positions, diffs the in-range pair set against the active
// links, and emits link-up/down transitions. Exported for tests; normally
// driven by Start. Dispatches to the strategy selected by Config.Scan; both
// strategies emit byte-identical event streams.
func (m *Manager) Scan(now float64) {
	// Radios beacon continuously: charge the scan drain first so nodes that
	// die this tick drop out of the pair set immediately.
	if m.energy != nil {
		for i := range m.hosts {
			m.energy.drain(i, m.cfg.Energy.ScanPerSec*m.cfg.ScanInterval, now)
		}
	}
	if m.par != nil {
		m.scanSharded(now)
		return
	}
	if m.sweep != nil {
		m.scanLazy(now)
		return
	}
	if m.kin != nil {
		m.scanKinetic(now)
		return
	}
	m.scanNaive(now)
}

func (m *Manager) scanNaive(now float64) {
	for i, model := range m.models {
		m.positions[i] = model.Pos(now)
	}
	m.grid.Update(m.positions)
	m.pairBuf = m.grid.Pairs(m.maxRange, m.pairBuf[:0])

	// Downs first (frees endpoints). Collect the link-map keys, then sort:
	// the teardown order must never inherit map iteration order, or the
	// abort/kick sequence — and every event it emits — would vary run to run.
	// The in-contact predicate is recomputed per link instead of consulting a
	// freshly built pair-set map: pairInContact true implies membership in
	// pairBuf (the grid finds every pair within maxRange ≥ the pair range),
	// so the diff against the old map semantics is exact — and the per-tick
	// map allocation is gone.
	downs := m.downsBuf[:0]
	for k := range m.links {
		if !m.pairInContact(int(k[0]), int(k[1])) {
			downs = append(downs, k)
		}
	}
	sortPairKeys(downs)
	// Kicks are deferred until every down in this tick is processed, so a
	// freed endpoint never starts a transfer on a sibling link that is
	// itself about to drop in the same tick.
	freed := m.freedBuf[:0]
	for _, k := range downs {
		freed = m.linkDown(k, now, freed)
	}

	// Ups in grid order (already deterministic), skipping existing links,
	// dead endpoints, and flap-suppressed pairs (a flapped contact stays
	// down until the nodes genuinely separate).
	for _, p := range m.pairBuf {
		if !m.pairInContact(int(p[0]), int(p[1])) {
			continue
		}
		k := pairKey{p[0], p[1]}
		if m.flapped[k] {
			continue
		}
		if _, up := m.links[k]; !up {
			m.linkUp(k, now)
		}
	}
	// Separated pairs may flap again on their next genuine contact.
	for k := range m.flapped {
		if !m.pairInContact(int(k[0]), int(k[1])) {
			delete(m.flapped, k)
		}
	}
	m.pairsChecked += uint64(len(m.links)) + uint64(len(m.pairBuf)) + uint64(len(m.flapped))
	m.finishScan(freed, now)
}

// finishScan kicks the endpoints freed by this tick's downs, in sorted
// deduplicated order, and parks the scratch slices for the next tick.
func (m *Manager) finishScan(freed []int, now float64) {
	if len(freed) > 0 {
		sort.Ints(freed)
		prev := -1
		for _, id := range freed {
			if id != prev {
				m.kick(id, now)
				prev = id
			}
		}
	}
	m.downsBuf = m.downsBuf[:0]
	m.freedBuf = freed[:0]
}

// pairInContact is the scan predicate: both radios alive, neither node
// churn-crashed, and the distance within the pair's effective range (the
// smaller of the two radios; both must reach). Callers must have sampled
// both positions for the current tick.
func (m *Manager) pairInContact(a, b int) bool {
	if !m.energy.alive(a) || !m.energy.alive(b) {
		return false
	}
	if m.isDown(a) || m.isDown(b) {
		return false
	}
	r := m.pairRange(a, b)
	return m.positions[a].Dist2(m.positions[b]) <= r*r
}

// pairRange returns the effective radio range of the pair: a link needs
// both radios to reach.
func (m *Manager) pairRange(a, b int) float64 {
	if m.ranges == nil {
		return m.cfg.Range
	}
	return math.Min(m.ranges[a], m.ranges[b])
}

func (m *Manager) linkUp(k pairKey, now float64) {
	a, b := m.hosts[k[0]], m.hosts[k[1]]
	l := &link{key: k, a: a, b: b, upAt: now, bw: 1}
	l.refusedTo[0] = make(map[msg.ID]bool)
	l.refusedTo[1] = make(map[msg.ID]bool)
	if m.faults != nil {
		// Fixed draw order (jitter, then flap), each from its own
		// substream, so enabling one model never shifts the other.
		l.bw = m.faults.BandwidthScale()
		if d, ok := m.faults.FlapAfter(); ok {
			l.flapTimer = m.eng.After(d, func(flapAt float64) { m.flapLink(k, flapAt) })
		}
	}
	m.links[k] = l
	m.neighbors[k[0]][int(k[1])] = l
	m.neighbors[k[1]][int(k[0])] = l
	if m.sweep != nil {
		m.sweep.onLinkUp(k)
	}
	m.contacts++
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{T: now, Type: obs.ContactUp, Node: int(k[0]), Peer: int(k[1])})
	}

	if m.inter != nil {
		if end, ok := m.lastEnd[k]; ok {
			m.inter.Add(now - end)
		}
	}
	a.OnLinkUp(b, now)
	b.OnLinkUp(a, now)
	m.tryStart(l, now)
}

// linkDown tears the link down, aborting any in-flight transfer. Endpoints
// freed by an abort are appended to freed (deduplicated by the caller) so
// their next transfers start only after the caller finishes its batch of
// topology changes; the updated slice is returned.
func (m *Manager) linkDown(k pairKey, now float64, freed []int) []int {
	l := m.links[k]
	delete(m.links, k)
	l.flapTimer.Cancel()
	m.durations.Add(now - l.upAt)
	if m.cfg.RecordContacts {
		m.contactLog = append(m.contactLog, Contact{
			A: int(k[0]), B: int(k[1]), Start: l.upAt, End: now,
		})
	}
	delete(m.neighbors[k[0]], int(k[1]))
	delete(m.neighbors[k[1]], int(k[0]))
	if m.sweep != nil {
		// Every teardown — scan separation, flap, churn crash — returns the
		// pair to the every-tick set; the next tick re-parks it if it is
		// genuinely far. This conservative wake is what keeps fault
		// interactions exact.
		m.sweep.onLinkDown(k)
	}
	if m.kin != nil {
		// Same discipline per node: both endpoints wake and re-park next
		// tick if their neighbourhoods are genuinely quiet.
		m.kin.onLinkDown(k)
	}
	m.lastEnd[k] = now
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{T: now, Type: obs.ContactDown, Node: int(k[0]), Peer: int(k[1])})
	}

	l.a.OnLinkDown(l.b, now)
	l.b.OnLinkDown(l.a, now)

	if t := l.active; t != nil {
		t.done.Cancel()
		l.active = nil
		m.busy[t.sender.ID()] = false
		m.busy[t.receiver.ID()] = false
		m.chargeTransfer(t, now-t.startedAt, now)
		m.collector.TransferAborted()
		if m.tracer != nil {
			m.tracer.Emit(obs.Event{T: now, Type: obs.TransferAbort, Msg: t.offer.S.M.ID,
				Node: t.sender.ID(), Peer: t.receiver.ID()})
		}
		// The endpoints are free again; they may have other live links.
		freed = append(freed, t.sender.ID(), t.receiver.ID())
	}
	return freed
}

// Kick re-evaluates transfer opportunities for host id (used by the world
// when new traffic appears at a node mid-contact).
func (m *Manager) Kick(id int, now float64) { m.kick(id, now) }

func (m *Manager) kick(id int, now float64) {
	peers := make([]int, 0, len(m.neighbors[id]))
	for p := range m.neighbors[id] {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	for _, p := range peers {
		l, ok := m.neighbors[id][p]
		if !ok {
			continue // the previous iteration may have torn state down
		}
		m.tryStart(l, now)
	}
}

// tryStart attempts to begin a transfer on l in either direction. The
// starting direction alternates per attempt for fairness.
func (m *Manager) tryStart(l *link, now float64) {
	if l.active != nil || m.busy[l.a.ID()] || m.busy[l.b.ID()] {
		return
	}
	first, second := 0, 1 // 0 = a→b, 1 = b→a
	if l.flip {
		first, second = 1, 0
	}
	if m.startDirection(l, first, now) {
		return
	}
	m.startDirection(l, second, now)
}

func (m *Manager) startDirection(l *link, dir int, now float64) bool {
	sender, receiver := l.a, l.b
	if dir == 1 {
		sender, receiver = l.b, l.a
	}
	refused := l.refusedTo[dir]
	for {
		offer, ok := sender.NextOffer(receiver, func(id msg.ID) bool { return refused[id] })
		if !ok {
			return false
		}
		if !receiver.PreAccept(offer, now) {
			refused[offer.S.M.ID] = true
			m.collector.TransferRefused()
			if m.tracer != nil {
				m.tracer.Emit(obs.Event{T: now, Type: obs.MessageRefused, Msg: offer.S.M.ID,
					Node: sender.ID(), Peer: receiver.ID()})
			}
			continue
		}
		t := &transfer{link: l, sender: sender, receiver: receiver, offer: offer, startedAt: now}
		dur := float64(offer.S.M.Size) / (m.cfg.Bandwidth * l.bw)
		t.done = m.eng.At(now+dur, func(doneAt float64) { m.complete(t, doneAt) })
		l.active = t
		l.flip = !l.flip
		m.busy[sender.ID()] = true
		m.busy[receiver.ID()] = true
		m.collector.TransferStarted()
		if m.tracer != nil {
			m.tracer.Emit(obs.Event{T: now, Type: obs.TransferStart, Msg: offer.S.M.ID,
				Node: sender.ID(), Peer: receiver.ID(), Size: offer.S.M.Size,
				Kind: offer.Kind.String()})
		}
		return true
	}
}

func (m *Manager) complete(t *transfer, now float64) {
	t.link.active = nil
	m.busy[t.sender.ID()] = false
	m.busy[t.receiver.ID()] = false
	m.chargeTransfer(t, now-t.startedAt, now)

	id := t.offer.S.M.ID
	switch {
	case t.offer.S.M.Expired(now):
		// Died in flight; receiver discards.
		m.collector.TransferAborted()
		if m.tracer != nil {
			m.tracer.Emit(obs.Event{T: now, Type: obs.TransferAbort, Msg: id,
				Node: t.sender.ID(), Peer: t.receiver.ID()})
		}
	case !t.sender.Buffer().Has(id):
		// The sender's copy vanished mid-flight (evicted by a message it
		// originated, or expired and swept).
		m.collector.TransferAborted()
		if m.tracer != nil {
			m.tracer.Emit(obs.Event{T: now, Type: obs.TransferAbort, Msg: id,
				Node: t.sender.ID(), Peer: t.receiver.ID()})
		}
	case m.faults.LoseTransfer():
		// Injected radio loss: the bytes crossed the wire but the frame is
		// unusable. The receiver discards; the sender's tokens are intact
		// and the message may be re-offered (the retry costs real contact
		// time, exactly like a real-world retransmission).
		m.collector.TransferLost()
		if m.tracer != nil {
			m.tracer.Emit(obs.Event{T: now, Type: obs.TransferLost, Msg: id,
				Node: t.sender.ID(), Peer: t.receiver.ID()})
		}
	default:
		if !routing.CommitTransfer(t.sender, t.receiver, t.offer, now) {
			// Receiver-side late refusal; don't re-offer this contact.
			dir := 0
			if t.sender == t.link.b {
				dir = 1
			}
			t.link.refusedTo[dir][id] = true
		}
	}
	m.kick(t.sender.ID(), now)
	m.kick(t.receiver.ID(), now)
}

// chargeTransfer drains both endpoints for elapsed seconds of radio time.
func (m *Manager) chargeTransfer(t *transfer, elapsed, now float64) {
	if m.energy == nil || elapsed <= 0 {
		return
	}
	m.energy.drain(t.sender.ID(), m.cfg.Energy.TxPerSec*elapsed, now)
	m.energy.drain(t.receiver.ID(), m.cfg.Energy.RxPerSec*elapsed, now)
}
