package network

import (
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/msg"
	"sdsrp/internal/policy"
	"sdsrp/internal/routing"
	"sdsrp/internal/sim"
	"sdsrp/internal/stats"
)

// newEnergyRig is newRig with a battery model attached.
func newEnergyRig(n int, energy EnergyConfig) *rig {
	r := &rig{eng: sim.NewEngine(), collector: stats.NewCollector(), inter: &stats.Intermeeting{}}
	tracker := routing.NewTracker()
	models := make([]mobility.Model, n)
	for i := 0; i < n; i++ {
		pp := &puppet{p: geo.Point{X: float64(10000 + 1000*i), Y: 0}}
		r.puppets = append(r.puppets, pp)
		models[i] = pp
		r.hosts = append(r.hosts, routing.NewHost(routing.HostConfig{
			ID: i, Nodes: n, Buffer: 10000,
			Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:      core.FixedRate{Mean: 1200},
			Clock:     r.eng.Now,
			Collector: r.collector,
			Tracker:   tracker,
			Oracle:    tracker,
		}))
	}
	r.mgr = mustManager(NewManager(r.eng, Config{
		Area: geo.NewRect(50000, 1000), Range: 100, Bandwidth: 100, ScanInterval: 1,
		Energy: energy,
	}, r.hosts, models, r.collector, r.inter))
	r.mgr.Start()
	return r
}

func TestEnergyDisabledByDefault(t *testing.T) {
	r := newRig(2, 10000)
	r.eng.Run(10)
	if rep := r.mgr.EnergyReport(); rep.Enabled {
		t.Fatal("energy enabled without config")
	}
}

func TestEnergyScanDrainKillsRadios(t *testing.T) {
	// 10 J budget, 1 J/s scan drain: radios die at t=10.
	r := newEnergyRig(2, EnergyConfig{Capacity: 10, ScanPerSec: 1})
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(30)
	rep := r.mgr.EnergyReport()
	if !rep.Enabled || rep.DeadNodes != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.FirstDeath != 10 {
		t.Fatalf("first death at %v, want 10", rep.FirstDeath)
	}
	if r.mgr.ActiveLinks() != 0 {
		t.Fatal("dead nodes still linked")
	}
	if rep.MeanLevel != 0 {
		t.Fatalf("mean level = %v", rep.MeanLevel)
	}
}

func TestEnergyTransferDrain(t *testing.T) {
	// No scan drain; only the 5 s delivery transfer costs energy:
	// sender 5×2 = 10 J, receiver 5×1 = 5 J.
	r := newEnergyRig(2, EnergyConfig{Capacity: 100, TxPerSec: 2, RxPerSec: 1})
	r.hosts[0].Originate(&testMsg, 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(30)
	rep := r.mgr.EnergyReport()
	if rep.TotalUsed != 15 {
		t.Fatalf("energy used = %v, want 15", rep.TotalUsed)
	}
	if rep.DeadNodes != 0 {
		t.Fatal("unexpected deaths")
	}
	if r.collector.Summarize().Delivered != 1 {
		t.Fatal("delivery failed under energy model")
	}
}

func TestEnergyAbortedTransferChargedPartially(t *testing.T) {
	r := newEnergyRig(2, EnergyConfig{Capacity: 100, TxPerSec: 2, RxPerSec: 1})
	r.hosts[0].Originate(&testMsg2, 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	// Transfer runs 1..6; separation observed at the t=3 scan: 2 s elapsed.
	r.eng.At(2.5, func(float64) { r.puppets[1].p = geo.Point{X: 5000, Y: 0} })
	r.eng.Run(30)
	rep := r.mgr.EnergyReport()
	if rep.TotalUsed != 6 { // 2s × (2+1)
		t.Fatalf("energy used = %v, want 6", rep.TotalUsed)
	}
}

func TestEnergyDeathSilencesNode(t *testing.T) {
	// The sender has only enough for ~4 s of its own scanning + transmit
	// time; it dies mid-run and stops originating contacts.
	r := newEnergyRig(3, EnergyConfig{Capacity: 8, ScanPerSec: 1})
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(7) // both drained 7 J: alive, link up
	if r.mgr.ActiveLinks() != 1 {
		t.Fatalf("links = %d before death", r.mgr.ActiveLinks())
	}
	r.eng.Run(30) // die at t=8
	if r.mgr.ActiveLinks() != 0 {
		t.Fatal("links survive battery death")
	}
	// A third node parked next to a dead one gets no contact.
	r.puppets[2].p = geo.Point{X: 25, Y: 0}
	before := r.mgr.Contacts()
	r.eng.Run(40)
	if r.mgr.Contacts() != before {
		t.Fatal("dead node formed a new contact")
	}
}

// Shared fixtures for energy tests (package-level so Originate sees stable
// pointers).
var testMsg = msgFixture(1)
var testMsg2 = msgFixture(2)

func msgFixture(id int32) msgT {
	return msgT{ID: msg.ID(id), Source: 0, Dest: 1, Size: 500,
		Created: 0, TTL: 1e9, InitialCopies: 8}
}

type msgT = msg.Message
