package network

import (
	"testing"

	"sdsrp/internal/core"
	"sdsrp/internal/fault"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/obs"
	"sdsrp/internal/policy"
	"sdsrp/internal/rng"
	"sdsrp/internal/routing"
	"sdsrp/internal/sim"
	"sdsrp/internal/stats"
)

// newFaultRig mirrors newRig with a fault injector wired in (and an
// optional tracer).
func newFaultRig(n int, bufBytes int64, fcfg fault.Config, tr obs.Tracer) *rig {
	r := &rig{eng: sim.NewEngine(), collector: stats.NewCollector(), inter: &stats.Intermeeting{}}
	tracker := routing.NewTracker()
	inj := fault.New(fcfg, rng.New(99).Split("fault"), n, nil)
	models := make([]mobility.Model, n)
	for i := 0; i < n; i++ {
		pp := &puppet{p: geo.Point{X: float64(10000 + 1000*i), Y: 0}} // far apart
		r.puppets = append(r.puppets, pp)
		models[i] = pp
		r.hosts = append(r.hosts, routing.NewHost(routing.HostConfig{
			ID: i, Nodes: n, Buffer: bufBytes,
			Policy: policy.FIFO{}, Proto: routing.SprayAndWait{Binary: true},
			Rate:      core.FixedRate{Mean: 1200},
			Clock:     r.eng.Now,
			Collector: r.collector,
			Tracker:   tracker,
			Oracle:    tracker,
			Tracer:    tr,
			Role:      inj.Role(i),
		}))
	}
	r.mgr = mustManager(NewManager(r.eng, Config{
		Area: geo.NewRect(50000, 1000), Range: 100, Bandwidth: 100, ScanInterval: 1,
		Tracer: tr, Faults: inj,
	}, r.hosts, models, r.collector, r.inter))
	r.mgr.Start()
	return r
}

// TestTransferLossDiscardsEverything: with loss probability 1 no transfer
// ever commits — zero deliveries, zero forwards, every completion counted
// as lost — yet the sender's copy and tokens stay intact.
func TestTransferLossDiscardsEverything(t *testing.T) {
	r := newFaultRig(2, 10000, fault.Config{TransferLossProb: 1}, nil)
	r.hosts[0].Originate(r.msg(1, 0, 1, 8, 500), 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(30)
	s := r.collector.Summarize()
	if s.Delivered != 0 || s.Forwards != 0 {
		t.Fatalf("delivered=%d forwards=%d under total loss", s.Delivered, s.Forwards)
	}
	if s.Lost == 0 {
		t.Fatal("no transfers counted as lost")
	}
	if got := r.hosts[0].Buffer().Get(1); got == nil || got.Copies != 8 {
		t.Fatalf("sender state perturbed by wire loss: %+v", got)
	}
	// Lossy completions free the link: every completed transfer was
	// started, and retries keep coming while the contact lasts.
	if s.Started < s.Lost || s.Lost < 2 {
		t.Fatalf("started=%d lost=%d, want continuing retries", s.Started, s.Lost)
	}
}

// TestLinkFlapCutsContacts: a tiny mean up-time chops the standing contact
// into flaps, and the pair stays down until the nodes separate.
func TestLinkFlapCutsContacts(t *testing.T) {
	metrics := obs.NewMetrics()
	r := newFaultRig(2, 10000, fault.Config{LinkFlapMeanUp: 2}, metrics)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(100)
	if metrics.Count(obs.LinkFlap) == 0 {
		t.Fatal("no link_flap events despite a 2 s mean up-time")
	}
	// Every flap is followed by a contact_down; the pair never re-ups
	// while in range, so exactly one contact_up exists.
	if up := metrics.Count(obs.ContactUp); up != 1 {
		t.Fatalf("contact_up = %d, want 1 (flapped pair must stay down in range)", up)
	}
	if r.mgr.ActiveLinks() != 0 {
		t.Fatal("flapped link still active")
	}

	// Separation clears the suppression: move apart, then together again.
	r.puppets[1].p = geo.Point{X: 5000, Y: 0}
	r.eng.Run(105)
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(110)
	if up := metrics.Count(obs.ContactUp); up != 2 {
		t.Fatalf("contact_up = %d after re-approach, want 2", up)
	}
}

// TestChurnCrashReboot: a churned node goes dark (links torn, no re-up
// while down), reboots, and — with WipeOnReboot — loses its buffer.
func TestChurnCrashReboot(t *testing.T) {
	metrics := obs.NewMetrics()
	r := newFaultRig(2, 10000, fault.Config{
		Churn: fault.Churn{MeanUp: 5, MeanDown: 5, WipeOnReboot: true},
	}, metrics)
	r.hosts[0].Originate(r.msg(1, 0, 1, 8, 500), 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(200)
	downs, ups := metrics.Count(obs.NodeDown), metrics.Count(obs.NodeUp)
	if downs == 0 {
		t.Fatal("no node_down events despite a 5 s mean uptime")
	}
	if ups == 0 || downs < ups {
		t.Fatalf("node_down=%d node_up=%d inconsistent", downs, ups)
	}
	// Contacts were repeatedly re-established after reboots.
	if metrics.Count(obs.ContactUp) < 2 {
		t.Fatalf("contact_up = %d, want churn-driven reconnects", metrics.Count(obs.ContactUp))
	}
}

// TestChurnWipeLosesBuffer pins the wipe semantics end to end: crash the
// only copy holder and the message is gone for good.
func TestChurnWipeLosesBuffer(t *testing.T) {
	r := newFaultRig(2, 10000, fault.Config{
		Churn: fault.Churn{MeanUp: 3, MeanDown: 1, WipeOnReboot: true},
	}, nil)
	r.hosts[0].Originate(r.msg(1, 0, 1, 8, 500), 0)
	// Nodes stay apart: the message cannot replicate before the crash, and
	// the wipe on the first reboot erases the only copy for good.
	r.eng.Run(200)
	if r.hosts[0].Buffer().Has(1) {
		t.Fatal("buffer survived a wiping reboot")
	}
}

// TestBandwidthJitterStretchesTransfers: with a pinned 0.5 multiplier the
// 500 B / 100 B/s transfer takes 10 s instead of 5.
func TestBandwidthJitterStretchesTransfers(t *testing.T) {
	r := newFaultRig(2, 10000, fault.Config{
		BandwidthJitterLo: 0.5, BandwidthJitterHi: 0.5,
	}, nil)
	r.hosts[0].Originate(r.msg(1, 0, 1, 8, 500), 0)
	r.puppets[0].p = geo.Point{X: 0, Y: 0}
	r.puppets[1].p = geo.Point{X: 50, Y: 0}
	r.eng.Run(30)
	s := r.collector.Summarize()
	if s.Delivered != 1 {
		t.Fatalf("delivered = %d", s.Delivered)
	}
	// Scan at t=1 starts the transfer; 500/(100*0.5) = 10 s → t=11.
	if s.AvgLatency != 11 {
		t.Fatalf("latency = %v, want 11 under halved bandwidth", s.AvgLatency)
	}
}
