package network

import (
	"math"
	"sort"

	"sdsrp/internal/geo"
)

// This file implements the kinetic grid-bucketed scan planner (Config.Scan =
// ScanKinetic): per-NODE parking state where the lazy sweep (sweep.go) keeps
// per-PAIR state. The six triangular O(n²) arrays become a handful of O(n)
// ones (~45 bytes per node), which is what makes 100k–1M node fleets
// representable at all — the lazy planner's int32 pair index overflows at
// n = 65536 and its arrays would need ~1.4 GB at n = 10000.
//
// Every node is in one of two states:
//
//   - awake:  sampled and checked against its 3×3 grid-bucket neighbourhood
//     every tick.
//   - parked: physics rules the node irrelevant until a computed wake tick;
//     it sits in a tick-bucketed wake wheel and is neither sampled nor
//     enumerated until then (its pairs are still reachable: awake nodes see
//     parked neighbours in the buckets).
//
// A node i parks until the earliest tick anything about its neighbourhood
// could change, the minimum of:
//
//   - the cell deadline floor((d_edge − slack) / (MaxSpeed(i)·interval)):
//     with d_edge the distance from i's position to its assigned bucket's
//     boundary, i provably stays inside that bucket (so its membership list
//     stays truthful) for that many whole ticks;
//   - for every non-linked node j in i's 3×3 bucket neighbourhood, the pair
//     deadline floor((d_lo − r) / ((MaxSpeed(i)+MaxSpeed(j))·interval)) —
//     the sweep's motion bound, applied with the pair's combined closing
//     speed (d_lo = geo.DistLowerBound of the measured distance, r the
//     pair's effective range).
//
// Exactness argument (byte-identity with scanNaive):
//
//   - Claim: every in-contact non-linked pair has at least one awake
//     endpoint on every tick where the contact predicate holds — so it is
//     checked and becomes an up candidate on exactly the naive schedule.
//     Suppose both endpoints were parked at tick t with the pair in range.
//     Take the later parker, j (parked at t_j ≤ t). If i sat in j's 3×3
//     neighbourhood at t_j, j's pair deadline bounds the pair out of range
//     through j's wake tick (> t) — contradiction. If i sat two or more
//     buckets away at t_j, both nodes stay strictly inside their assigned
//     buckets until their wakes (cell deadline), so their distance exceeds
//     one full cell edge ≥ the maximum radio range — contradiction.
//   - In-range pairs give a zero pair deadline, so both endpoints stay
//     awake and the pair is re-checked every tick. This reproduces the
//     naive per-tick semantics for radio-state transitions exactly: a
//     churn-crashed or energy-dead endpoint in distance range keeps the
//     predicate false without parking anything, so the reboot or re-charge
//     re-ups the link on the same tick the naive scanner would.
//   - Flap suppression clears on the same tick as the naive sweep: a
//     flapped pair's endpoints are awake from the teardown on (zero pair
//     deadline while in range), and the suppression is deleted by the
//     awake-side check on the first tick the predicate goes false — before
//     either endpoint can park (parking requires a positive distance gap,
//     which implies that same predicate-false check already ran).
//   - Every linkDown — scan separation, flap, churn crash — wakes both
//     endpoints (onLinkDown), the same conservative discipline the sweep
//     applies to pairs; linked pairs are excluded from pair deadlines
//     because the per-tick down walk over Manager.links owns them.
//   - Downs derive from Manager.links exactly like the naive path, in
//     sortPairKeys order. Position sampling is lazy but Model.Pos is
//     deterministic for a given query time, so sampled values are
//     bit-identical to the naive schedule.
//   - Ups: zero or one candidate needs no ordering. Two or more are sorted
//     into the exact naive grid-pass emission order without rebuilding the
//     grid (emitUps below): the planner's buckets mirror geo.Grid's cell
//     mapping (same Grid, same CellIndex arithmetic), so the naive
//     enumeration order — occupied cells in ascending-min-id order, each
//     visiting itself then its four forward neighbours — is reconstructable
//     from candidate cell coordinates alone. This keeps multi-up ticks
//     O(candidates·log) instead of O(n), which matters at 100k nodes where
//     some tick almost always has two ups somewhere.
//
// The wake wheel is the sweep's tick-hashed design, but doubly linked:
// link-down wakes must unlink a parked node mid-bucket in O(1), and a
// re-park may carry an earlier deadline than a stale entry would pop at, so
// lazy deletion is not safe here. Bucket membership lists are doubly linked
// for the same reason (cell moves unlink in O(1)).
//
// Like the sweep, the planner watches its own load (loadWindow): workloads
// whose awake set sustains more neighbour checks per tick than there are
// nodes pay more for bookkeeping than naive's flat per-node pass, and the
// planner retires itself — deterministically, and unobservably in the
// event stream — for the rest of the run.

// Node-state codes. Awake nodes live in the active slice; parked nodes in
// the wake wheel.
const (
	kinAwake uint8 = iota
	kinParked
)

// upCand carries one up candidate's reconstructed grid-pass position: the
// generating cell's rank (its minimum bucketed node id — exactly the order
// geo.Grid.Update appends cells to its occupied list, since ids are
// inserted ascending), the enumeration phase (0 = within-cell, 1..4 = the
// forward neighbour directions E, SW, S, SE), and the iteration ids (a from
// the generating cell, b from the neighbour cell).
type upCand struct {
	key  pairKey
	rank int32
	dir  int8
	a, b int32
}

type kinetic struct {
	m *Manager
	n int
	// tick counts Scan calls; the first call is tick 1. Wake deadlines are
	// absolute ticks.
	tick     int64
	interval float64
	// speed[i] is models[i].MaxSpeed(), read once at construction (the
	// contract requires it to be constant).
	speed []float64
	// cols/rows mirror Manager.grid's bucket geometry; cell assignment
	// always goes through grid.CellIndex so the two structures can never
	// disagree on a float-rounding decision.
	cols, rows int

	state  []uint8
	wake   []int64 // absolute wake tick, valid while state == kinParked
	cellOf []int32 // assigned bucket, -1 until the bootstrap tick assigns it

	// The wake wheel: one doubly-linked intrusive list per tick bucket.
	wheelHead [wheelBuckets]int32
	wnext     []int32
	wprev     []int32

	// Bucket membership: one doubly-linked intrusive list per grid cell,
	// holding every node (awake or parked) assigned to it.
	cellHead []int32
	cnext    []int32
	cprev    []int32

	// active holds the awake nodes; slot[i] is i's position in it (-1 when
	// parked). Swap-removal keeps both O(1); iteration order is internal
	// only — every emission below is canonically ordered.
	active []int32
	slot   []int32

	// posTick stamps the tick each node's position was last sampled, so a
	// node read by several neighbourhoods moves once per tick.
	posTick []int64
	parked  int64 // nodes currently parked, for the skip counter
	ups     []pairKey
	ord     []upCand
	// windowChecked accumulates neighbour checks toward the loadWindow
	// retirement decision.
	windowChecked uint64
}

// newKinetic builds the planner with every node awake: the first tick
// assigns buckets and runs a full neighbourhood pass (equivalent to the
// naive bootstrap), parking everything physics allows. Unlike newSweep
// there is no size ceiling — state is O(n) — and no refusal: a fleet with
// unbounded MaxSpeed simply never parks and the load monitor hands the run
// to scanNaive.
func newKinetic(m *Manager) *kinetic {
	n := len(m.hosts)
	cols, rows := m.grid.Dims()
	s := &kinetic{
		m:        m,
		n:        n,
		interval: m.cfg.ScanInterval,
		speed:    make([]float64, n),
		cols:     cols,
		rows:     rows,
		state:    make([]uint8, n),
		wake:     make([]int64, n),
		cellOf:   make([]int32, n),
		wnext:    make([]int32, n),
		wprev:    make([]int32, n),
		cellHead: make([]int32, cols*rows),
		cnext:    make([]int32, n),
		cprev:    make([]int32, n),
		active:   make([]int32, 0, n),
		slot:     make([]int32, n),
		posTick:  make([]int64, n),
	}
	for b := range s.wheelHead {
		s.wheelHead[b] = -1
	}
	for ci := range s.cellHead {
		s.cellHead[ci] = -1
	}
	for i, model := range m.models {
		s.speed[i] = model.MaxSpeed()
		s.cellOf[i] = -1
		s.slot[i] = int32(i)
		s.active = append(s.active, int32(i))
	}
	return s
}

// moveCell reassigns node i to bucket ci, splicing its membership links.
//
// Performance contract: O(1) pointer splices, no allocation.
func (s *kinetic) moveCell(i int, ci int32) {
	if old := s.cellOf[i]; old >= 0 {
		if p := s.cprev[i]; p >= 0 {
			s.cnext[p] = s.cnext[i]
		} else {
			s.cellHead[old] = s.cnext[i]
		}
		if nx := s.cnext[i]; nx >= 0 {
			s.cprev[nx] = s.cprev[i]
		}
	}
	s.cellOf[i] = ci
	h := s.cellHead[ci]
	s.cnext[i] = h
	s.cprev[i] = -1
	if h >= 0 {
		s.cprev[h] = int32(i)
	}
	s.cellHead[ci] = int32(i)
}

// activate moves node i into the awake set.
func (s *kinetic) activate(i int32) {
	s.state[i] = kinAwake
	s.slot[i] = int32(len(s.active))
	s.active = append(s.active, i)
}

// deactivate swap-removes node i from the awake set.
func (s *kinetic) deactivate(i int32) {
	p := s.slot[i]
	last := int32(len(s.active) - 1)
	moved := s.active[last]
	s.active[p] = moved
	s.slot[moved] = p
	s.active = s.active[:last]
	s.slot[i] = -1
}

// park moves awake node i into the wheel until the absolute tick wakeAt.
//
// Performance contract: O(1) list splices, no allocation.
func (s *kinetic) park(i int32, wakeAt int64) {
	s.deactivate(i)
	s.state[i] = kinParked
	s.wake[i] = wakeAt
	b := wakeAt & (wheelBuckets - 1)
	h := s.wheelHead[b]
	s.wnext[i] = h
	s.wprev[i] = -1
	if h >= 0 {
		s.wprev[h] = i
	}
	s.wheelHead[b] = i
	s.parked++
}

// wakeNode returns a parked node to the awake set before its deadline,
// unlinking it from its wheel bucket in place. No-op on awake nodes, so
// every teardown path may call it unconditionally.
//
// Performance contract: O(1) list splices, no allocation.
func (s *kinetic) wakeNode(i int32) {
	if s.state[i] != kinParked {
		return
	}
	b := s.wake[i] & (wheelBuckets - 1)
	if p := s.wprev[i]; p >= 0 {
		s.wnext[p] = s.wnext[i]
	} else {
		s.wheelHead[b] = s.wnext[i]
	}
	if nx := s.wnext[i]; nx >= 0 {
		s.wprev[nx] = s.wprev[i]
	}
	s.parked--
	s.activate(i)
}

// onLinkDown conservatively wakes both endpoints of a torn-down link,
// whatever tore it down (scan separation, flap, churn crash) — the per-node
// equivalent of the sweep's return-to-near discipline. The woken nodes
// re-park next tick if their neighbourhoods are genuinely quiet.
func (s *kinetic) onLinkDown(k pairKey) {
	s.wakeNode(k[0])
	s.wakeNode(k[1])
}

// cellTicks bounds how many whole ticks node i provably stays inside its
// assigned bucket: the distance to the bucket boundary, minus conservative
// slack dominating float rounding, over the node's speed bound. Clamped
// out-of-area positions give a non-positive margin and keep the node awake.
//
// Performance contract: pure arithmetic, no allocation.
func (s *kinetic) cellTicks(i int) int64 {
	d := s.m.grid.BoundaryDist(s.m.positions[i], int(s.cellOf[i]))
	d -= d*1e-9 + 1e-9
	if d <= 0 {
		return 0
	}
	c := s.speed[i]
	if c <= 0 {
		return maxParkTicks
	}
	k := d / (c * s.interval)
	if !(k < maxParkTicks) { // catches NaN too, though c and d are finite
		return maxParkTicks
	}
	return int64(k)
}

// pairTicks is the sweep's motion bound for pair (i,j) at squared distance
// d2 and effective range r: whole ticks the pair provably stays out of
// range. 0 means the pair pins both endpoints awake; an out-of-range pair
// with closing-speed bound zero cannot constrain the deadline at all.
//
// Performance contract: pure arithmetic, no allocation.
func (s *kinetic) pairTicks(i, j int, d2, r float64) int64 {
	gap := geo.DistLowerBound(d2) - r
	if gap <= 0 {
		// In (or at) radio range: both endpoints stay awake regardless of
		// speeds, preserving naive per-tick semantics for churned or
		// energy-dead endpoints (see the file comment).
		return 0
	}
	c := s.speed[i] + s.speed[j]
	if c <= 0 {
		return maxParkTicks
	}
	k := gap / (c * s.interval) // c = +Inf (teleporting model) gives 0
	if !(k < maxParkTicks) {
		return maxParkTicks
	}
	return int64(k)
}

// samplePos samples node i's position once per tick.
func (s *kinetic) samplePos(i int, now float64) {
	if s.posTick[i] != s.tick {
		s.m.positions[i] = s.m.models[i].Pos(now)
		s.posTick[i] = s.tick
	}
}

// scanKinetic is the kinetic counterpart of scanNaive; the emitted event
// stream is byte-identical (see the file comment for the argument).
func (m *Manager) scanKinetic(now float64) {
	s := m.kin
	s.tick++

	// 1. Wake nodes whose deadline arrived. Entries parked a lap or more
	// ahead stay with one comparison; prev links are patched through the
	// same head pointer walk the sweep's wheel uses.
	for pp := &s.wheelHead[s.tick&(wheelBuckets-1)]; *pp != -1; {
		i := *pp
		if s.wake[i] <= s.tick {
			*pp = s.wnext[i]
			if nx := s.wnext[i]; nx >= 0 {
				s.wprev[nx] = s.wprev[i]
			}
			s.parked--
			s.activate(i)
			m.wakeups++
		} else {
			pp = &s.wnext[i]
		}
	}

	// 2. Reassign every awake node's bucket from its current position,
	// before any neighbourhood is enumerated: a check must never consult a
	// stale assignment of an awake node (parked assignments are truthful by
	// the cell deadline). Assignment goes through the Manager grid's own
	// CellIndex so the bucket geometry is bit-exact with the naive pass.
	for _, ii := range s.active {
		i := int(ii)
		s.samplePos(i, now)
		if ci := int32(m.grid.CellIndex(m.positions[i])); ci != s.cellOf[i] {
			s.moveCell(i, ci)
		}
	}

	// 3. Each awake node scans its 3×3 bucket neighbourhood: collect up
	// candidates, clear flap suppression exactly where the naive sweep
	// would (predicate false), and compute the node's park deadline. The
	// pair check is deduplicated — the lower-id endpoint owns it when both
	// are awake — and the loop index only advances when the node stays
	// awake (park swap-removes under it).
	s.ups = s.ups[:0]
	checked := uint64(0)
	for idx := 0; idx < len(s.active); {
		i := int(s.active[idx])
		minK := s.cellTicks(i)
		ci := int(s.cellOf[i])
		cx, cy := ci%s.cols, ci/s.cols
		for dy := -1; dy <= 1; dy++ {
			ny := cy + dy
			if ny < 0 || ny >= s.rows {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := cx + dx
				if nx < 0 || nx >= s.cols {
					continue
				}
				for j := s.cellHead[ny*s.cols+nx]; j != -1; j = s.cnext[j] {
					jj := int(j)
					if jj == i {
						continue
					}
					if _, linked := m.neighbors[i][jj]; linked {
						// The per-tick down walk over Manager.links owns
						// linked pairs; they never constrain a deadline.
						continue
					}
					s.samplePos(jj, now)
					checked++
					r := m.pairRange(i, jj)
					d2 := m.positions[i].Dist2(m.positions[jj])
					if s.state[j] == kinParked || jj > i {
						if m.energy.alive(i) && m.energy.alive(jj) &&
							!m.isDown(i) && !m.isDown(jj) && d2 <= r*r {
							k := keyOf(i, jj)
							if !m.flapped[k] {
								s.ups = append(s.ups, k)
							}
						} else if m.flapped != nil {
							delete(m.flapped, keyOf(i, jj))
						}
					}
					if K := s.pairTicks(i, jj, d2, r); K < minK {
						minK = K
					}
				}
			}
		}
		if minK >= 2 {
			s.park(int32(i), s.tick+minK)
		} else {
			idx++
		}
	}
	if s.tick > 1 {
		s.windowChecked += checked
	}

	// 4. Downs, exactly like the naive path: recompute the predicate per
	// live link, canonical sort, teardown with deferred kicks. linkDown
	// wakes both endpoints via onLinkDown.
	downs := m.downsBuf[:0]
	for k := range m.links {
		a, b := int(k[0]), int(k[1])
		s.samplePos(a, now)
		s.samplePos(b, now)
		checked++
		if !m.pairInContact(a, b) {
			downs = append(downs, k)
		}
	}
	sortPairKeys(downs)
	freed := m.freedBuf[:0]
	for _, k := range downs {
		freed = m.linkDown(k, now, freed)
	}

	// 5. Ups. One candidate needs no ordering; two or more are sorted into
	// the naive grid-pass order from the bucket structure alone.
	switch len(s.ups) {
	case 0:
	case 1:
		if _, up := m.links[s.ups[0]]; !up {
			m.linkUp(s.ups[0], now)
		}
	default:
		s.emitUps(now)
	}

	m.pairsChecked += checked
	m.pairsSkipped += uint64(s.parked)
	m.finishScan(freed, now)

	// 6. Self-monitoring retirement, the sweep's loadWindow policy: when
	// the awake set sustains more neighbour checks per tick than there are
	// nodes, parking is not paying — hand the run to scanNaive for good.
	// The trigger reads only simulated state, so it is deterministic, and
	// byte-identity makes the switch unobservable. The bootstrap tick (a
	// full neighbourhood pass by design) is excluded from the first window.
	if s.tick%loadWindow == 0 {
		if s.windowChecked > loadWindow*uint64(s.n) {
			m.kin = nil
			m.noteFallback("kinetic:load-monitor->naive")
		}
		s.windowChecked = 0
	}
}

// fwdDir maps a cell-coordinate delta to the 1-based index of geo.Grid's
// forward-neighbour enumeration order (E, SW, S, SE), or 0 when the delta
// is not a forward direction.
func fwdDir(dx, dy int) int8 {
	switch {
	case dx == 1 && dy == 0:
		return 1
	case dx == -1 && dy == 1:
		return 2
	case dx == 0 && dy == 1:
		return 3
	case dx == 1 && dy == 1:
		return 4
	}
	return 0
}

// minID returns the smallest node id bucketed in cell ci. Because
// geo.Grid.Update inserts ids in ascending order and appends a cell to its
// occupied list the first time an id lands in it, ascending min-id order IS
// the grid's cell visit order — which makes the rank reconstructable
// without building the grid.
func (s *kinetic) minID(ci int32) int32 {
	min := int32(math.MaxInt32)
	for j := s.cellHead[ci]; j != -1; j = s.cnext[j] {
		if j < min {
			min = j
		}
	}
	return min
}

// emitUps emits two-or-more up candidates in the exact order the naive grid
// pass would: cells in ascending-min-id (= occupied-list) order; within a
// cell, the within-cell phase then the four forward-neighbour phases; within
// a phase, lexicographic iteration ids. Candidate cells are identical to a
// freshly built grid's because every bucket assignment is truthful (awake
// nodes reassigned this tick, parked nodes pinned by their cell deadline)
// and computed by the same CellIndex arithmetic.
func (s *kinetic) emitUps(now float64) {
	m := s.m
	ord := s.ord[:0]
	ok := true
	for _, k := range s.ups {
		ca, cb := s.cellOf[k[0]], s.cellOf[k[1]]
		c := upCand{key: k, a: k[0], b: k[1]}
		if ca != cb {
			dx := int(cb)%s.cols - int(ca)%s.cols
			dy := int(cb)/s.cols - int(ca)/s.cols
			if d := fwdDir(dx, dy); d > 0 {
				c.dir = d
			} else if d := fwdDir(-dx, -dy); d > 0 {
				c.dir, c.a, c.b, ca = d, k[1], k[0], cb
			} else {
				ok = false
				break
			}
		}
		c.rank = s.minID(ca)
		ord = append(ord, c)
	}
	s.ord = ord
	if !ok {
		// Safety valve: an in-range pair spanning non-adjacent buckets
		// would mean the cell size dropped below the radio range — kept
		// impossible by NewManager's validation. Replay the naive pass,
		// which is correct by construction, rather than guessing an order.
		s.replayNaiveUps(now)
		return
	}
	sort.Slice(ord, func(x, y int) bool {
		if ord[x].rank != ord[y].rank {
			return ord[x].rank < ord[y].rank
		}
		if ord[x].dir != ord[y].dir {
			return ord[x].dir < ord[y].dir
		}
		if ord[x].a != ord[y].a {
			return ord[x].a < ord[y].a
		}
		return ord[x].b < ord[y].b
	})
	for _, c := range ord {
		if _, up := m.links[c.key]; !up {
			m.linkUp(c.key, now)
		}
	}
}

// replayNaiveUps is the sweep's multi-up fallback: sample everyone, rebuild
// the grid, and emit ups in grid order. Kept only as emitUps's safety valve.
func (s *kinetic) replayNaiveUps(now float64) {
	m := s.m
	for i := range m.models {
		s.samplePos(i, now)
	}
	m.grid.Update(m.positions)
	m.pairBuf = m.grid.Pairs(m.maxRange, m.pairBuf[:0])
	m.pairsChecked += uint64(len(m.pairBuf))
	for _, pr := range m.pairBuf {
		if !m.pairInContact(int(pr[0]), int(pr[1])) {
			continue
		}
		k := pairKey{pr[0], pr[1]}
		if m.flapped[k] {
			continue
		}
		if _, up := m.links[k]; !up {
			m.linkUp(k, now)
		}
	}
}
