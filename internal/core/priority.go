// Package core implements the SDSRP priority model and its distributed
// estimators (Wang et al., ICPP 2015, Section III).
//
// The exported surface is organized in three layers:
//
//   - Pure priority math: Priority (Eq. 10), PriorityFromProbabilities
//     (Eq. 11), TaylorPriority (Eq. 13), the probability building blocks
//     ProbDelivered (Eq. 5) and ProbWillDeliver (Eq. 6) and the peak
//     condition (Eq. 12 / Fig. 4).
//   - Parameter estimators: LambdaEstimator for the intermeeting rate λ,
//     EstimateSeen for m_i(T_i) via the binary-spray lineage (Eq. 15 /
//     Fig. 6).
//   - DropTable, the gossiped dropped-message records used to estimate
//     d_i(T_i) (Fig. 5) and hence n_i via Eq. 14.
package core

import "math"

// PeakPR is the value of P(R_i) at which priority is maximal: 1 − 1/e
// (paper Eq. 12 discussion and Fig. 4).
const PeakPR = 1 - 1/math.E

// Exposure is the bracket term shared by Eqs. 6–10:
//
//	A(C_i, R_i) = (log2(C_i)+1)·R_i − log2(C_i)·(log2(C_i)+1) / (2(N−1)λ)
//
// It aggregates the remaining spray opportunities of a copy with C_i tokens
// and R_i seconds to live, each spray costing about E(I_min) = 1/((N−1)λ).
// A negative value means the copy cannot finish spraying before expiry; it
// is clamped to 0 so the derived probability stays in [0,1].
func Exposure(copies int, remaining float64, nodes int, lambda float64) float64 {
	if copies < 1 {
		copies = 1
	}
	l2 := math.Log2(float64(copies))
	a := (l2+1)*remaining - l2*(l2+1)/(2*float64(nodes-1)*lambda)
	if a < 0 || math.IsNaN(a) {
		return 0
	}
	return a
}

// ProbDelivered is Eq. 5: P(T_i) = m_i / (N−1), the probability that the
// message already reached its destination given that m_i of the other N−1
// nodes have seen it. The result is clamped to [0,1].
func ProbDelivered(seen float64, nodes int) float64 {
	p := seen / float64(nodes-1)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ProbWillDeliver is Eq. 6: P(R_i) = 1 − exp(−λ·n_i·A(C_i,R_i)), the
// probability that an undelivered message with n_i live copies reaches the
// destination within the remaining TTL.
func ProbWillDeliver(live float64, copies int, remaining float64, nodes int, lambda float64) float64 {
	a := Exposure(copies, remaining, nodes, lambda)
	return 1 - math.Exp(-lambda*live*a)
}

// Priority is Eq. 10: the marginal effect ∂P/∂n_i of adding (replicating)
// or removing (dropping) one copy of the message on the global delivery
// ratio,
//
//	U_i = (1 − m_i/(N−1)) · λ · A · exp(−λ·n_i·A).
//
// seen is m̂_i, live is n̂_i, copies is C_i (tokens at this node), remaining
// is R_i in seconds, nodes is N and lambda is the fitted intermeeting rate.
func Priority(seen, live float64, copies int, remaining float64, nodes int, lambda float64) float64 {
	a := Exposure(copies, remaining, nodes, lambda)
	return (1 - ProbDelivered(seen, nodes)) * lambda * a * math.Exp(-lambda*live*a)
}

// PriorityFromProbabilities is Eq. 11, the same utility expressed through
// the two delivery probabilities:
//
//	U_i = (1 − P(T_i)) · (P(R_i) − 1) · ln(1 − P(R_i)) / n_i.
//
// It equals Priority when pT, pR are produced by ProbDelivered and
// ProbWillDeliver with the same inputs. pR = 1 maps to 0 (the limit value).
func PriorityFromProbabilities(pT, pR, live float64) float64 {
	if live <= 0 || pR >= 1 || pR < 0 {
		return 0
	}
	return (1 - pT) * (pR - 1) * math.Log(1-pR) / live
}

// TaylorPriority is Eq. 13: the k-term Taylor truncation of Eq. 11 using
// −ln(1−x) = Σ x^j/j,
//
//	U_i ≈ (1 − P(T_i)) · (1 − P(R_i)) · Σ_{j=1..k} P(R_i)^j / j / n_i.
//
// Larger k approaches the idealized curve of Fig. 4 at higher compute cost.
func TaylorPriority(pT, pR, live float64, k int) float64 {
	if live <= 0 || pR >= 1 || pR < 0 || k < 1 {
		return 0
	}
	var sum, pow float64
	pow = 1
	for j := 1; j <= k; j++ {
		pow *= pR
		sum += pow / float64(j)
	}
	return (1 - pT) * (1 - pR) * sum / live
}

// PeakExposureCondition evaluates Eq. 12's balance: it returns the
// difference between the expected encounter time 1/(λ·n_i) and the summed
// remaining spray-phase time Σ_{k=0..log2(C_i)} (R_i − k·E(I_min)). A zero
// value means P(R_i) = 1 − 1/e, the priority peak.
func PeakExposureCondition(live float64, copies int, remaining float64, nodes int, lambda float64) float64 {
	if copies < 1 {
		copies = 1
	}
	eiMin := 1 / (float64(nodes-1) * lambda)
	l2 := int(math.Round(math.Log2(float64(copies))))
	var sum float64
	for k := 0; k <= l2; k++ {
		sum += remaining - float64(k)*eiMin
	}
	return 1/(lambda*live) - sum
}
