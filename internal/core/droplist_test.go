package core

import (
	"testing"
	"testing/quick"

	"sdsrp/internal/msg"
)

func TestDropTableOwnRecord(t *testing.T) {
	dt := NewDropTable(3)
	if dt.RejectsIncoming(1) || dt.DroppedCount(1) != 0 {
		t.Fatal("fresh table not empty")
	}
	dt.RecordDrop(1, 100)
	if !dt.RejectsIncoming(1) {
		t.Fatal("own drop not rejected")
	}
	if dt.DroppedCount(1) != 1 {
		t.Fatalf("DroppedCount = %d", dt.DroppedCount(1))
	}
	// Duplicate drop does not double-count.
	dt.RecordDrop(1, 200)
	if dt.DroppedCount(1) != 1 {
		t.Fatalf("DroppedCount after dup = %d", dt.DroppedCount(1))
	}
}

func TestDropTableGossip(t *testing.T) {
	a := NewDropTable(1)
	b := NewDropTable(2)
	a.RecordDrop(10, 50)
	b.MergeFrom(a)
	if b.DroppedCount(10) != 1 {
		t.Fatalf("b count = %d after merge", b.DroppedCount(10))
	}
	// b did not drop 10 itself, so it does not reject it.
	if b.RejectsIncoming(10) {
		t.Fatal("b rejects a message it never dropped")
	}
	// a learns of b's drops too.
	b.RecordDrop(11, 60)
	a.MergeFrom(b)
	if a.DroppedCount(11) != 1 || a.DroppedCount(10) != 1 {
		t.Fatalf("a counts = %d,%d", a.DroppedCount(10), a.DroppedCount(11))
	}
}

func TestDropTableNewestRecordWins(t *testing.T) {
	a := NewDropTable(1)
	b := NewDropTable(2)
	c := NewDropTable(3)

	a.RecordDrop(10, 50)
	b.MergeFrom(a) // b caches a@50 with {10}
	a.RecordDrop(11, 80)
	c.MergeFrom(a) // c caches a@80 with {10,11}

	// b has the stale record; merging from c upgrades it.
	b.MergeFrom(c)
	if b.DroppedCount(11) != 1 {
		t.Fatal("newer record did not propagate through intermediary")
	}
	// Merging the stale copy back into c must not regress it.
	c.MergeFrom(b)
	if c.DroppedCount(11) != 1 {
		t.Fatal("stale record overwrote newer one")
	}
}

func TestDropTableOwnRecordAuthoritative(t *testing.T) {
	a := NewDropTable(1)
	b := NewDropTable(2)
	a.RecordDrop(10, 50)
	b.MergeFrom(a)
	// Forge a "newer" record for owner 1 inside b's cache by having b's
	// table gossiped back; a must keep its own version.
	a.RecordDrop(11, 60)
	a.MergeFrom(b)
	if a.DroppedCount(11) != 1 {
		t.Fatal("gossip overwrote the owner's own record")
	}
	if !a.RejectsIncoming(11) {
		t.Fatal("own drop lost after merge")
	}
}

func TestDropTableMergeIsolation(t *testing.T) {
	// After a merge, the source mutating its own record must not leak into
	// the cached copy (records are cloned).
	a := NewDropTable(1)
	b := NewDropTable(2)
	a.RecordDrop(10, 50)
	b.MergeFrom(a)
	a.RecordDrop(12, 55)
	if b.DroppedCount(12) != 0 {
		t.Fatal("cached record shares storage with the owner's record")
	}
}

func TestDropTableCounts(t *testing.T) {
	tables := make([]*DropTable, 5)
	for i := range tables {
		tables[i] = NewDropTable(i)
	}
	// Nodes 0,1,2 drop message 7 at different times.
	tables[0].RecordDrop(7, 10)
	tables[1].RecordDrop(7, 20)
	tables[2].RecordDrop(7, 30)
	// Gossip chain 0->3, 1->3, 2->3.
	tables[3].MergeFrom(tables[0])
	tables[3].MergeFrom(tables[1])
	tables[3].MergeFrom(tables[2])
	if tables[3].DroppedCount(7) != 3 {
		t.Fatalf("count = %d, want 3", tables[3].DroppedCount(7))
	}
	if tables[3].Records() != 3 {
		t.Fatalf("records = %d, want 3", tables[3].Records())
	}
}

func TestDropTableForget(t *testing.T) {
	a := NewDropTable(1)
	b := NewDropTable(2)
	a.RecordDrop(10, 50)
	a.RecordDrop(11, 51)
	b.RecordDrop(10, 60)
	a.MergeFrom(b)
	if a.DroppedCount(10) != 2 {
		t.Fatalf("precondition: count=%d", a.DroppedCount(10))
	}
	a.Forget(10)
	if a.DroppedCount(10) != 0 {
		t.Fatal("Forget left counts")
	}
	if a.DroppedCount(11) != 1 {
		t.Fatal("Forget removed unrelated message")
	}
	if a.RejectsIncoming(10) {
		t.Fatal("Forget left rejection state")
	}
}

// Property: however records are gossiped around, a node's DroppedCount for a
// message equals the number of distinct owners that dropped it among the
// records it has seen (eventual consistency of the count derivation).
func TestPropertyGossipCountConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		const nNodes = 6
		tables := make([]*DropTable, nNodes)
		for i := range tables {
			tables[i] = NewDropTable(i)
		}
		dropped := make([]map[msg.ID]bool, nNodes) // truth: who dropped what
		for i := range dropped {
			dropped[i] = map[msg.ID]bool{}
		}
		now := 1.0
		for _, op := range ops {
			a := int(op) % nNodes
			b := int(op>>4) % nNodes
			if op%3 == 0 {
				id := msg.ID(op % 7)
				tables[a].RecordDrop(id, now)
				dropped[a][id] = true
			} else if a != b {
				tables[a].MergeFrom(tables[b])
				tables[b].MergeFrom(tables[a])
			}
			now++
		}
		// Fully gossip everything to node 0.
		for i := 1; i < nNodes; i++ {
			tables[0].MergeFrom(tables[i])
		}
		for id := msg.ID(0); id < 7; id++ {
			want := 0
			for i := 0; i < nNodes; i++ {
				if dropped[i][id] {
					want++
				}
			}
			if tables[0].DroppedCount(id) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
