package core

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	tN      = 100
	tLambda = 1.0 / 1200.0 // mean intermeeting 20 min
)

func TestExposureBasics(t *testing.T) {
	// C=1 (wait phase): A = R exactly.
	if a := Exposure(1, 5000, tN, tLambda); a != 5000 {
		t.Fatalf("Exposure(C=1) = %v, want 5000", a)
	}
	// More copies, same TTL: more spray opportunities, larger exposure
	// (while R dominates the correction term).
	a16 := Exposure(16, 5000, tN, tLambda)
	a4 := Exposure(4, 5000, tN, tLambda)
	if a16 <= a4 {
		t.Fatalf("Exposure not increasing in copies: A(16)=%v A(4)=%v", a16, a4)
	}
	// Tiny remaining TTL with many copies: correction dominates, clamped to 0.
	if a := Exposure(64, 0.001, tN, tLambda); a != 0 {
		t.Fatalf("Exposure with no time = %v, want clamp to 0", a)
	}
	// Copies below 1 treated as 1.
	if Exposure(0, 100, tN, tLambda) != Exposure(1, 100, tN, tLambda) {
		t.Fatal("Exposure(0) != Exposure(1)")
	}
}

func TestProbDelivered(t *testing.T) {
	if p := ProbDelivered(0, tN); p != 0 {
		t.Fatalf("P(T) with m=0 is %v", p)
	}
	if p := ProbDelivered(99, tN); p != 1 {
		t.Fatalf("P(T) with m=N-1 is %v", p)
	}
	if p := ProbDelivered(49.5, tN); p != 0.5 {
		t.Fatalf("P(T) = %v, want 0.5", p)
	}
	if p := ProbDelivered(500, tN); p != 1 {
		t.Fatalf("P(T) not clamped above: %v", p)
	}
	if p := ProbDelivered(-3, tN); p != 0 {
		t.Fatalf("P(T) not clamped below: %v", p)
	}
}

func TestProbWillDeliverRange(t *testing.T) {
	for _, c := range []int{1, 2, 8, 32, 64} {
		for _, r := range []float64{0, 100, 5000, 18000} {
			for _, n := range []float64{1, 5, 50} {
				p := ProbWillDeliver(n, c, r, tN, tLambda)
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Fatalf("P(R) out of range: C=%d R=%v n=%v -> %v", c, r, n, p)
				}
			}
		}
	}
	// Zero remaining time: cannot deliver.
	if p := ProbWillDeliver(10, 1, 0, tN, tLambda); p != 0 {
		t.Fatalf("P(R) with R=0 is %v", p)
	}
	// More live copies => higher delivery probability.
	p1 := ProbWillDeliver(1, 4, 3000, tN, tLambda)
	p10 := ProbWillDeliver(10, 4, 3000, tN, tLambda)
	if p10 <= p1 {
		t.Fatalf("P(R) not increasing in live copies: %v vs %v", p1, p10)
	}
}

// Eq. 10 and Eq. 11 are algebraically the same quantity; verify over a grid
// plus random inputs.
func TestEq10MatchesEq11(t *testing.T) {
	check := func(seen, live float64, copies int, remaining float64) {
		u10 := Priority(seen, live, copies, remaining, tN, tLambda)
		pT := ProbDelivered(seen, tN)
		pR := ProbWillDeliver(live, copies, remaining, tN, tLambda)
		u11 := PriorityFromProbabilities(pT, pR, live)
		if math.Abs(u10-u11) > 1e-12*(1+math.Abs(u10)) {
			t.Fatalf("Eq10=%v Eq11=%v (m=%v n=%v C=%d R=%v)", u10, u11, seen, live, copies, remaining)
		}
	}
	for _, seen := range []float64{0, 1, 10, 50, 98} {
		for _, live := range []float64{1, 2, 8, 40} {
			for _, copies := range []int{1, 2, 16, 64} {
				for _, remaining := range []float64{10, 1000, 18000} {
					check(seen, live, copies, remaining)
				}
			}
		}
	}
	f := func(seenRaw, liveRaw uint8, copiesRaw uint8, remRaw uint16) bool {
		seen := float64(seenRaw % 99)
		live := float64(liveRaw%50 + 1)
		copies := int(copiesRaw)%64 + 1
		remaining := float64(remRaw)
		u10 := Priority(seen, live, copies, remaining, tN, tLambda)
		pT := ProbDelivered(seen, tN)
		pR := ProbWillDeliver(live, copies, remaining, tN, tLambda)
		u11 := PriorityFromProbabilities(pT, pR, live)
		return math.Abs(u10-u11) <= 1e-12*(1+math.Abs(u10))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Priority decreases monotonically with the delivered probability (more
// nodes have seen it => less urgent), Section III-B.
func TestPriorityMonotoneInSeen(t *testing.T) {
	prev := math.Inf(1)
	for seen := 0.0; seen <= 98; seen++ {
		u := Priority(seen, 5, 8, 6000, tN, tLambda)
		if u > prev+1e-15 {
			t.Fatalf("priority increased with seen at m=%v: %v > %v", seen, u, prev)
		}
		prev = u
	}
}

// More live copies in the network => lower priority (paper: "a greater
// amount of copies of message i in the network leads to lower priority").
// This holds on the exp(−λnA) side once λnA ≥ 1, i.e. past the peak; below
// it the utility trade-off is non-monotone by design (Fig. 4). We verify the
// derivative sign in the past-peak regime.
func TestPriorityDecreasesWithLiveCopiesPastPeak(t *testing.T) {
	copies, remaining := 8, 15000.0
	a := Exposure(copies, remaining, tN, tLambda)
	nStar := 1 / (tLambda * a) // peak location in n
	prev := math.Inf(1)
	for n := math.Ceil(nStar); n < nStar+40; n++ {
		u := Priority(3, n, copies, remaining, tN, tLambda)
		if u > prev+1e-18 {
			t.Fatalf("priority increased with n=%v past peak: %v > %v", n, u, prev)
		}
		prev = u
	}
}

// The Fig. 4 shape: as a function of pR, utility rises to a peak at
// pR = 1 − 1/e and falls after.
func TestPeakAtOneMinusInvE(t *testing.T) {
	u := func(pR float64) float64 { return PriorityFromProbabilities(0.3, pR, 7) }
	peak := u(PeakPR)
	for _, pR := range []float64{0, 0.1, 0.3, 0.5, 0.6, 0.64, 0.75, 0.9, 0.99} {
		if u(pR) > peak+1e-12 {
			t.Fatalf("u(%v)=%v exceeds u(peak)=%v", pR, u(pR), peak)
		}
	}
	// Strictly increasing before, strictly decreasing after.
	if !(u(0.2) < u(0.4) && u(0.4) < u(0.6)) {
		t.Fatal("not increasing before peak")
	}
	if !(u(0.7) > u(0.8) && u(0.8) > u(0.95)) {
		t.Fatal("not decreasing after peak")
	}
}

func TestPriorityBoundaryValues(t *testing.T) {
	// Fully seen message: zero priority.
	if u := Priority(99, 5, 8, 5000, tN, tLambda); u != 0 {
		t.Fatalf("priority of fully-seen message = %v", u)
	}
	// Expired message: zero priority.
	if u := Priority(3, 5, 8, 0, tN, tLambda); u != 0 {
		t.Fatalf("priority of expired message = %v", u)
	}
	// Eq. 11 guards.
	if PriorityFromProbabilities(0.5, 1.0, 3) != 0 {
		t.Fatal("Eq11 at pR=1 not 0")
	}
	if PriorityFromProbabilities(0.5, 0.5, 0) != 0 {
		t.Fatal("Eq11 with n=0 not 0")
	}
	if PriorityFromProbabilities(0.5, -0.1, 3) != 0 {
		t.Fatal("Eq11 with negative pR not 0")
	}
}

// Taylor truncation converges to the closed form from below as k grows.
func TestTaylorConvergence(t *testing.T) {
	pT, live := 0.2, 6.0
	for _, pR := range []float64{0.05, 0.3, PeakPR, 0.8, 0.95} {
		ideal := PriorityFromProbabilities(pT, pR, live)
		prevErr := math.Inf(1)
		prevVal := 0.0
		for k := 1; k <= 60; k++ {
			v := TaylorPriority(pT, pR, live, k)
			if v < prevVal-1e-15 {
				t.Fatalf("Taylor not monotone in k at pR=%v k=%d", pR, k)
			}
			prevVal = v
			err := math.Abs(v - ideal)
			if err > prevErr+1e-15 {
				t.Fatalf("Taylor error grew at pR=%v k=%d", pR, k)
			}
			prevErr = err
		}
		if prevErr > 1e-3*(1+ideal) && pR < 0.9 {
			t.Fatalf("Taylor k=60 still off by %v at pR=%v", prevErr, pR)
		}
	}
}

func TestTaylorGuards(t *testing.T) {
	if TaylorPriority(0.1, 0.5, 5, 0) != 0 {
		t.Fatal("k=0 not 0")
	}
	if TaylorPriority(0.1, 1.0, 5, 3) != 0 {
		t.Fatal("pR=1 not 0")
	}
}

// Eq. 12: where the peak condition evaluates to zero, P(R) must equal
// 1 − 1/e.
func TestPeakExposureConditionConsistency(t *testing.T) {
	copies := 8
	remaining := 10000.0
	// Find n where the condition crosses zero, by bisection over n.
	lo, hi := 0.01, 500.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if PeakExposureCondition(mid, copies, remaining, tN, tLambda) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	nStar := (lo + hi) / 2
	pR := ProbWillDeliver(nStar, copies, remaining, tN, tLambda)
	if math.Abs(pR-PeakPR) > 1e-6 {
		t.Fatalf("P(R) at Eq.12 root = %v, want %v", pR, PeakPR)
	}
}

// The paper's Fig. 2 insight: a message whose copies and TTL are both "up
// soon" can out-rank one with plenty of both, because the latter sits past
// the utility peak. Reproduce a concrete instance.
func TestFig2Inversion(t *testing.T) {
	// Message i: many copies and long TTL, already widely spread.
	ui := Priority(60, 40, 16, 15000, tN, tLambda)
	// Message j: few copies, short TTL, barely spread — before the peak.
	uj := Priority(4, 3, 2, 2500, tN, tLambda)
	if uj <= ui {
		t.Fatalf("expected the scarce/urgent message to win: ui=%v uj=%v", ui, uj)
	}
	// Early on (node c of Fig. 2), while both messages are still below the
	// utility peak (λ·n·A < 1), the roomier message wins instead.
	uiEarly := Priority(2, 3, 16, 80, tN, tLambda)
	ujEarly := Priority(2, 3, 4, 60, tN, tLambda)
	if uiEarly <= ujEarly {
		t.Fatalf("expected the roomier message to win early: ui=%v uj=%v", uiEarly, ujEarly)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[float64]int{0.5: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 16: 4, 17: 5}
	for v, want := range cases {
		if got := Log2Ceil(v); got != want {
			t.Fatalf("Log2Ceil(%v) = %d, want %d", v, got, want)
		}
	}
}
