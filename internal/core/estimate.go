package core

import "math"

// LambdaEstimator maintains a node's running estimate of the mean
// intermeeting time E(I) from its own contact history (Definition 1). A
// configurable prior keeps the estimate sane before enough samples arrive;
// the prior is blended as priorWeight pseudo-samples.
type LambdaEstimator struct {
	priorMean   float64
	priorWeight float64
	sum         float64
	n           int
	lastEnd     map[int]float64 // peer -> end time of previous contact
}

// NewLambdaEstimator returns an estimator seeded with a prior mean
// intermeeting time (seconds) carrying the given pseudo-sample weight.
// priorMean must be > 0 when priorWeight > 0.
func NewLambdaEstimator(priorMean, priorWeight float64) *LambdaEstimator {
	return &LambdaEstimator{
		priorMean:   priorMean,
		priorWeight: priorWeight,
		lastEnd:     make(map[int]float64),
	}
}

// OnContactStart records the start of a contact with peer at time now and
// harvests an intermeeting sample if a previous contact with that peer has
// ended before.
func (e *LambdaEstimator) OnContactStart(peer int, now float64) {
	if end, ok := e.lastEnd[peer]; ok {
		if s := now - end; s >= 0 {
			e.sum += s
			e.n++
		}
	}
}

// OnContactEnd records the end of a contact with peer at time now.
func (e *LambdaEstimator) OnContactEnd(peer int, now float64) {
	e.lastEnd[peer] = now
}

// Samples returns the number of real (non-prior) samples absorbed.
func (e *LambdaEstimator) Samples() int { return e.n }

// MeanI returns the blended estimate of E(I).
func (e *LambdaEstimator) MeanI() float64 {
	w := e.priorWeight + float64(e.n)
	if w == 0 {
		return 0
	}
	return (e.priorMean*e.priorWeight + e.sum) / w
}

// Lambda returns λ = 1/E(I), or 0 when no information is available.
func (e *LambdaEstimator) Lambda() float64 {
	m := e.MeanI()
	if m <= 0 {
		return 0
	}
	return 1 / m
}

// EIMin returns E(I_min) = E(I)/(N−1) for a network of nodes nodes (Eq. 3).
func (e *LambdaEstimator) EIMin(nodes int) float64 {
	return e.MeanI() / float64(nodes-1)
}

// ContactObserver is implemented by rate estimators that learn from the
// node's contact history; the routing host feeds them on every link
// transition.
type ContactObserver interface {
	OnContactStart(peer int, now float64)
	OnContactEnd(peer int, now float64)
}

// CensusEstimator estimates λ from the node's contact *rate* rather than
// from completed intermeeting gaps: a node that has seen c contacts over
// elapsed time t with N−1 potential peers estimates the pairwise meeting
// rate as λ̂ = c / (t·(N−1)).
//
// Under the paper's own assumption (exponential pairwise intermeetings)
// this is unbiased, whereas averaging observed gaps (LambdaEstimator) is
// censored: pairs that fail to re-meet within the run contribute nothing,
// biasing E(I) low by whatever fraction of pairwise gaps outlast the
// experiment — a factor of ~7 at the paper's Table II scale. The prior is
// blended as priorWeight pseudo-contacts spread over the prior mean.
type CensusEstimator struct {
	priorMean   float64
	priorWeight float64
	nodes       int
	contacts    int
	lastEvent   float64
}

// NewCensusEstimator returns a census estimator for a network of nodes
// nodes, seeded with a prior mean intermeeting time carrying priorWeight
// pseudo-contacts.
func NewCensusEstimator(priorMean, priorWeight float64, nodes int) *CensusEstimator {
	return &CensusEstimator{priorMean: priorMean, priorWeight: priorWeight, nodes: nodes}
}

// OnContactStart implements ContactObserver.
func (e *CensusEstimator) OnContactStart(_ int, now float64) {
	e.contacts++
	if now > e.lastEvent {
		e.lastEvent = now
	}
}

// OnContactEnd implements ContactObserver.
func (e *CensusEstimator) OnContactEnd(_ int, now float64) {
	if now > e.lastEvent {
		e.lastEvent = now
	}
}

// Samples returns the number of observed contacts.
func (e *CensusEstimator) Samples() int { return e.contacts }

// MeanI returns the blended estimate of the pairwise E(I).
func (e *CensusEstimator) MeanI() float64 {
	n1 := float64(e.nodes - 1)
	if n1 <= 0 {
		return e.priorMean
	}
	// Pseudo-observations: priorWeight contacts over the time they would
	// take at the prior rate.
	pseudoTime := e.priorWeight * e.priorMean / n1
	num := float64(e.contacts) + e.priorWeight
	den := e.lastEvent + pseudoTime
	if num <= 0 || den <= 0 {
		return 0
	}
	// Any-peer meeting rate num/den; pairwise rate is 1/(N−1) of it.
	return n1 * den / num
}

// Lambda returns 1/E(I), or 0 when no information is available.
func (e *CensusEstimator) Lambda() float64 {
	m := e.MeanI()
	if m <= 0 {
		return 0
	}
	return 1 / m
}

// EIMin returns E(I)/(N−1) (Eq. 3).
func (e *CensusEstimator) EIMin(nodes int) float64 {
	return e.MeanI() / float64(nodes-1)
}

var (
	_ RateSource      = (*CensusEstimator)(nil)
	_ ContactObserver = (*CensusEstimator)(nil)
	_ ContactObserver = (*LambdaEstimator)(nil)
)

// maxSubtreeShift bounds the per-subtree doubling exponent in EstimateSeen;
// 2^30 already exceeds any realistic N by orders of magnitude and the result
// is clamped to N−1 anyway.
const maxSubtreeShift = 30

// EstimateSeen implements Eq. 15 / Fig. 6 with token-conservation bounds:
// given the ascending binary-split times of a copy's lineage, the copy's
// current token count C_i, the current time, and E(I_min), it estimates
// m_i(T_i) — how many nodes other than the source have seen the message.
//
// Each split spawned a subtree assumed to have kept splitting every
// E(I_min), so the subtree born at t_k holds 2^⌊(t−t_k)/E(I_min)⌋ carriers
// (for the most recent split that power is 2⁰ = 1, Eq. 15's "+1" term).
// Unlike the literal Eq. 15 we additionally cap each subtree by the spray
// tokens it received — a subtree handed T tokens can never exceed T
// carriers under Spray-and-Wait, so the estimate saturates near the spray
// budget L rather than at N−1 (unbounded doubling makes every aged message
// look fully spread, collapsing all priorities to zero; see DESIGN.md §2).
// Walking the lineage backwards, the split k steps before the latest one
// handed away about C_i·2^k tokens. The result is clamped to
// [len(sprayTimes), nodes−1]: the lineage itself proves one recipient per
// split, and no more than N−1 nodes exist to infect.
func EstimateSeen(sprayTimes []float64, copies int, now, eiMin float64, nodes int) int {
	n := len(sprayTimes)
	if n == 0 {
		return 0
	}
	if copies < 1 {
		copies = 1
	}
	m := 0
	if eiMin <= 0 {
		// No rate information: count only the proven lineage recipients.
		m = n
	} else {
		for j, t := range sprayTimes {
			// Clamp before the int conversion: (now-t)/eiMin can exceed the
			// float64-to-int range, whose conversion is implementation-defined.
			sf := (now - t) / eiMin
			shift := 0
			switch {
			case sf >= maxSubtreeShift:
				shift = maxSubtreeShift
			case sf > 0:
				shift = int(sf)
			}
			grown := 1 << uint(shift)
			bound := tokenBound(copies, n-1-j)
			if grown > bound {
				grown = bound
			}
			m += grown
		}
	}
	if m < n {
		m = n
	}
	if m > nodes-1 {
		m = nodes - 1
	}
	return m
}

// tokenBound approximates the tokens handed to the subtree k splits before
// the lineage's latest one: C_i·2^k, saturating instead of overflowing.
func tokenBound(copies, k int) int {
	if k >= maxSubtreeShift {
		return 1 << maxSubtreeShift
	}
	b := copies << uint(k)
	if b < 1 {
		return 1
	}
	return b
}

// LiveCopies is Eq. 14: n_i = m_i + 1 − d_i, clamped to at least 1 (the
// holder itself) and at most nodes.
func LiveCopies(seen, dropped, nodes int) int {
	n := seen + 1 - dropped
	if n < 1 {
		n = 1
	}
	if n > nodes {
		n = nodes
	}
	return n
}

// FixedRate is a RateSource with a known mean intermeeting time, used for
// oracle ablations where the true network-wide rate is supplied.
type FixedRate struct{ Mean float64 }

// MeanI returns the fixed mean.
func (f FixedRate) MeanI() float64 { return f.Mean }

// Lambda returns 1/mean.
func (f FixedRate) Lambda() float64 {
	if f.Mean <= 0 {
		return 0
	}
	return 1 / f.Mean
}

// EIMin returns mean/(N−1).
func (f FixedRate) EIMin(nodes int) float64 { return f.Mean / float64(nodes-1) }

// RateSource abstracts where λ comes from: a per-node LambdaEstimator
// (distributed, the paper's deployment story) or a FixedRate oracle
// (ablation).
type RateSource interface {
	MeanI() float64
	Lambda() float64
	EIMin(nodes int) float64
}

var (
	_ RateSource = (*LambdaEstimator)(nil)
	_ RateSource = FixedRate{}
)

// Log2Ceil returns ⌈log2(v)⌉ for v ≥ 1; 0 for v ≤ 1. Helper for spray-tree
// height computations n = log2(C/C_i).
func Log2Ceil(v float64) int {
	if v <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(v)))
}
