package core

import (
	"slices"

	"sdsrp/internal/msg"
)

// DropRecord is one node's dropped-message record (paper Fig. 5): the set of
// messages that node has evicted, stamped with the time of its latest drop.
// Only the owner mutates its record; everyone else caches and forwards it.
//
// The set is a sorted id slice rather than a map: message ids are dense
// small integers, gossip replaces whole records (a memcpy for a slice, a
// rehash per element for a map), and the merge path diffs consecutive
// generations with one linear walk. This representation is what keeps
// DropTable.MergeFrom — the dominant per-contact cost of the dense paper
// scenarios — off the profile.
type DropRecord struct {
	Owner int
	Time  float64 // generation time of the record: the owner's latest drop
	ids   []msg.ID
}

// Contains reports whether the record's set holds id.
func (r *DropRecord) Contains(id msg.ID) bool {
	_, ok := slices.BinarySearch(r.ids, id)
	return ok
}

// DropTable is a node's view of every node's drop record, gossiped on
// contact. It answers two questions for SDSRP:
//
//   - d̂_i (DroppedCount): how many nodes are known to have dropped message
//     i, feeding n_i via Eq. 14;
//   - RejectsIncoming: whether this node itself has dropped i and must
//     refuse to receive it again ("nodes reject receiving the message
//     already in their dropped lists").
//
// Storage is owner-indexed and id-indexed: records[owner] is the newest
// known record for that node, and counts[id] the number of owners whose set
// holds id. Both slices grow on demand, so the table still accepts sparse
// or test-fabricated ids; real runs use the world's dense 1..K numbering.
type DropTable struct {
	self    int
	records []*DropRecord // owner -> newest known record; nil = none
	nrec    int           // non-nil records (Records)
	counts  []int32       // message id -> #owners whose set contains it
}

// NewDropTable returns an empty table for node self.
func NewDropTable(self int) *DropTable {
	return &DropTable{self: self}
}

// record returns the slot for owner, growing the table as needed.
func (t *DropTable) record(owner int) *DropRecord {
	if owner >= len(t.records) {
		t.records = append(t.records, make([]*DropRecord, owner+1-len(t.records))...)
	}
	return t.records[owner]
}

func (t *DropTable) incCount(id msg.ID) {
	if int(id) >= len(t.counts) {
		t.counts = append(t.counts, make([]int32, int(id)+1-len(t.counts))...)
	}
	t.counts[id]++
}

func (t *DropTable) decCount(id msg.ID) {
	if int(id) < len(t.counts) {
		t.counts[id]--
	}
}

// RecordDrop registers that this node evicted message id at time now,
// updating its own record's generation time (only the owner may do this).
func (t *DropTable) RecordDrop(id msg.ID, now float64) {
	rec := t.record(t.self)
	if rec == nil {
		rec = &DropRecord{Owner: t.self}
		t.records[t.self] = rec
		t.nrec++
	}
	rec.Time = now
	if pos, dup := slices.BinarySearch(rec.ids, id); !dup {
		rec.ids = slices.Insert(rec.ids, pos, id)
		t.incCount(id)
	}
}

// MergeFrom absorbs every record in the peer's table that is newer than the
// locally cached copy for the same owner, following the Fig. 5 update rule
// (keep the record with the latest record time; a node's own record is
// authoritative and never overwritten by gossip). A replaced record updates
// the count index by a sorted diff walk of the two generations, so only ids
// that actually changed hands cost anything; the cached copy reuses its
// backing array, so steady-state gossip does not allocate.
func (t *DropTable) MergeFrom(peer *DropTable) {
	for owner, rec := range peer.records {
		if rec == nil || owner == t.self {
			continue
		}
		cur := t.record(owner)
		if cur != nil && cur.Time >= rec.Time {
			continue
		}
		var old []msg.ID
		if cur == nil {
			cur = &DropRecord{Owner: owner}
			t.records[owner] = cur
			t.nrec++
		} else {
			old = cur.ids
		}
		// Diff walk: decrement ids only in the old generation, increment
		// ids only in the new one; shared ids cost a comparison each.
		i, j := 0, 0
		for i < len(old) || j < len(rec.ids) {
			switch {
			case j >= len(rec.ids) || (i < len(old) && old[i] < rec.ids[j]):
				t.decCount(old[i])
				i++
			case i >= len(old) || rec.ids[j] < old[i]:
				t.incCount(rec.ids[j])
				j++
			default:
				i, j = i+1, j+1
			}
		}
		cur.Time = rec.Time
		cur.ids = append(cur.ids[:0], rec.ids...)
	}
}

// DroppedCount returns d̂_i: the number of distinct nodes known to have
// dropped message id.
func (t *DropTable) DroppedCount(id msg.ID) int {
	if int(id) >= len(t.counts) || id < 0 {
		return 0
	}
	return int(t.counts[id])
}

// RejectsIncoming reports whether this node previously dropped id itself
// and therefore refuses to store it again.
func (t *DropTable) RejectsIncoming(id msg.ID) bool {
	if t.self >= len(t.records) {
		return false
	}
	rec := t.records[t.self]
	return rec != nil && rec.Contains(id)
}

// Forget removes all knowledge of id (used when a message expires globally:
// its records can no longer influence any decision). Calling Forget for a
// live message would corrupt d̂_i, so callers gate it on TTL expiry.
func (t *DropTable) Forget(id msg.ID) {
	for _, rec := range t.records {
		if rec == nil {
			continue
		}
		if pos, ok := slices.BinarySearch(rec.ids, id); ok {
			rec.ids = slices.Delete(rec.ids, pos, pos+1)
		}
	}
	if int(id) < len(t.counts) && id >= 0 {
		t.counts[id] = 0
	}
}

// Records returns the number of owner records known (diagnostics).
func (t *DropTable) Records() int { return t.nrec }

// Reset discards every record — the node's own and all gossiped copies.
// Used by the fault layer's crash/reboot churn when a reboot wipes state;
// peers still hold (and will re-gossip) this node's old record.
func (t *DropTable) Reset() {
	clear(t.records)
	t.nrec = 0
	clear(t.counts)
}
