package core

import "sdsrp/internal/msg"

// DropRecord is one node's dropped-message record (paper Fig. 5): the set of
// messages that node has evicted, stamped with the time of its latest drop.
// Only the owner mutates its record; everyone else caches and forwards it.
type DropRecord struct {
	Owner int
	Time  float64 // generation time of the record: the owner's latest drop
	Set   map[msg.ID]struct{}
}

// clone returns a deep copy; merged-in records are cached by reference to
// the gossip payload, so the owner's live record must never be shared.
func (r *DropRecord) clone() *DropRecord {
	c := &DropRecord{Owner: r.Owner, Time: r.Time, Set: make(map[msg.ID]struct{}, len(r.Set))}
	for id := range r.Set {
		c.Set[id] = struct{}{}
	}
	return c
}

// DropTable is a node's view of every node's drop record, gossiped on
// contact. It answers two questions for SDSRP:
//
//   - d̂_i (DroppedCount): how many nodes are known to have dropped message
//     i, feeding n_i via Eq. 14;
//   - RejectsIncoming: whether this node itself has dropped i and must
//     refuse to receive it again ("nodes reject receiving the message
//     already in their dropped lists").
type DropTable struct {
	self    int
	records map[int]*DropRecord // owner -> newest known record
	counts  map[msg.ID]int      // message -> #owners whose set contains it
}

// NewDropTable returns an empty table for node self.
func NewDropTable(self int) *DropTable {
	return &DropTable{
		self:    self,
		records: make(map[int]*DropRecord),
		counts:  make(map[msg.ID]int),
	}
}

// RecordDrop registers that this node evicted message id at time now,
// updating its own record's generation time (only the owner may do this).
func (t *DropTable) RecordDrop(id msg.ID, now float64) {
	rec := t.records[t.self]
	if rec == nil {
		rec = &DropRecord{Owner: t.self, Set: make(map[msg.ID]struct{})}
		t.records[t.self] = rec
	}
	rec.Time = now
	if _, dup := rec.Set[id]; !dup {
		rec.Set[id] = struct{}{}
		t.counts[id]++
	}
}

// MergeFrom absorbs every record in the peer's table that is newer than the
// locally cached copy for the same owner, following the Fig. 5 update rule
// (keep the record with the latest record time; a node's own record is
// authoritative and never overwritten by gossip).
func (t *DropTable) MergeFrom(peer *DropTable) {
	for owner, rec := range peer.records {
		if owner == t.self {
			continue
		}
		cur := t.records[owner]
		if cur != nil && cur.Time >= rec.Time {
			continue
		}
		if cur != nil {
			for id := range cur.Set {
				t.counts[id]--
				if t.counts[id] == 0 {
					delete(t.counts, id)
				}
			}
		}
		cp := rec.clone()
		t.records[owner] = cp
		for id := range cp.Set {
			t.counts[id]++
		}
	}
}

// DroppedCount returns d̂_i: the number of distinct nodes known to have
// dropped message id.
func (t *DropTable) DroppedCount(id msg.ID) int { return t.counts[id] }

// RejectsIncoming reports whether this node previously dropped id itself
// and therefore refuses to store it again.
func (t *DropTable) RejectsIncoming(id msg.ID) bool {
	rec := t.records[t.self]
	if rec == nil {
		return false
	}
	_, ok := rec.Set[id]
	return ok
}

// Forget removes all knowledge of id (used when a message expires globally:
// its records can no longer influence any decision). Calling Forget for a
// live message would corrupt d̂_i, so callers gate it on TTL expiry.
func (t *DropTable) Forget(id msg.ID) {
	for _, rec := range t.records {
		delete(rec.Set, id)
	}
	delete(t.counts, id)
}

// Records returns the number of owner records known (diagnostics).
func (t *DropTable) Records() int { return len(t.records) }

// Reset discards every record — the node's own and all gossiped copies.
// Used by the fault layer's crash/reboot churn when a reboot wipes state;
// peers still hold (and will re-gossip) this node's old record.
func (t *DropTable) Reset() {
	t.records = make(map[int]*DropRecord)
	t.counts = make(map[msg.ID]int)
}
