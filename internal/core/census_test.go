package core

import (
	"math"
	"testing"

	"sdsrp/internal/rng"
)

func TestCensusEstimatorPriorOnly(t *testing.T) {
	e := NewCensusEstimator(20000, 1, 100)
	if got := e.MeanI(); math.Abs(got-20000) > 1e-9 {
		t.Fatalf("MeanI = %v, want prior", got)
	}
	if e.Samples() != 0 {
		t.Fatal("prior counted as contacts")
	}
	if e.Lambda() <= 0 {
		t.Fatal("prior lambda not positive")
	}
}

func TestCensusEstimatorRate(t *testing.T) {
	// 99 peers, one contact every 100 s: any-peer rate 0.01/s, so the
	// pairwise mean intermeeting is 99/0.01 = 9900 s. Use a weightless
	// prior to test the raw rate.
	e := NewCensusEstimator(0, 0, 100)
	now := 0.0
	for i := 0; i < 500; i++ {
		now += 100
		e.OnContactStart(i%99, now)
		e.OnContactEnd(i%99, now+5)
	}
	if got := e.MeanI(); math.Abs(got-9900) > 9900*0.05 {
		t.Fatalf("MeanI = %v, want ~9900", got)
	}
	if got := e.EIMin(100); math.Abs(got-100) > 10 {
		t.Fatalf("EIMin = %v, want ~100 (the contact period)", got)
	}
}

func TestCensusEstimatorBlendsAwayFromPrior(t *testing.T) {
	e := NewCensusEstimator(99999, 2, 50)
	now := 0.0
	for i := 0; i < 20000; i++ {
		now += 10
		e.OnContactStart(i%49, now)
	}
	// True any-peer period 10 s → pairwise mean 490 s; the wild prior must
	// be overwhelmed.
	if got := e.MeanI(); math.Abs(got-490) > 490*0.1 {
		t.Fatalf("MeanI = %v, want ~490", got)
	}
}

// The motivating bias: in a finite window, gap-averaging only sees the
// short intermeetings while the census stays near the truth.
func TestCensusUnbiasedWhereGapAverageIsCensored(t *testing.T) {
	s := rng.New(3)
	const (
		nodes    = 100
		trueMean = 22000.0 // pairwise E(I) well beyond the window
		window   = 18000.0
	)
	gap := NewLambdaEstimator(0, 0)
	census := NewCensusEstimator(0, 0, nodes)
	// Simulate one node's contact process: each of the 99 pairs meets as a
	// Poisson process of rate 1/trueMean, truncated to the window.
	for peer := 0; peer < nodes-1; peer++ {
		now := s.Exp(trueMean)
		for now < window {
			gap.OnContactStart(peer, now)
			census.OnContactStart(peer, now)
			gap.OnContactEnd(peer, now)
			census.OnContactEnd(peer, now)
			now += s.Exp(trueMean)
		}
	}
	censusErr := math.Abs(census.MeanI() - trueMean)
	if censusErr > trueMean*0.5 {
		t.Fatalf("census MeanI = %v, want within 50%% of %v", census.MeanI(), trueMean)
	}
	if gap.Samples() > 0 {
		gapErr := math.Abs(gap.MeanI() - trueMean)
		if gapErr < censusErr {
			t.Fatalf("expected censored gap average (got %v) to be worse than census (%v)",
				gap.MeanI(), census.MeanI())
		}
		if gap.MeanI() > trueMean*0.75 {
			t.Fatalf("gap average %v not visibly censored below %v", gap.MeanI(), trueMean)
		}
	}
}

func TestCensusEstimatorDegenerate(t *testing.T) {
	e := NewCensusEstimator(0, 0, 1) // N-1 = 0
	if e.MeanI() != 0 {
		t.Fatalf("MeanI = %v for single-node network, want prior 0", e.MeanI())
	}
	if (NewCensusEstimator(0, 0, 100)).Lambda() != 0 {
		t.Fatal("no-information lambda not 0")
	}
}
