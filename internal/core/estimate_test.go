package core

import (
	"math"
	"testing"

	"sdsrp/internal/rng"
)

func TestLambdaEstimatorPriorOnly(t *testing.T) {
	e := NewLambdaEstimator(1200, 5)
	if e.MeanI() != 1200 {
		t.Fatalf("MeanI = %v, want prior 1200", e.MeanI())
	}
	if math.Abs(e.Lambda()-1.0/1200) > 1e-15 {
		t.Fatalf("Lambda = %v", e.Lambda())
	}
	if e.Samples() != 0 {
		t.Fatal("prior counted as samples")
	}
}

func TestLambdaEstimatorSampling(t *testing.T) {
	e := NewLambdaEstimator(100, 1)
	// First contact with peer 7: no previous end, no sample.
	e.OnContactStart(7, 50)
	e.OnContactEnd(7, 60)
	if e.Samples() != 0 {
		t.Fatal("sample harvested from first contact")
	}
	// Next contact 140s later: one sample of 140.
	e.OnContactStart(7, 200)
	if e.Samples() != 1 {
		t.Fatalf("Samples = %d, want 1", e.Samples())
	}
	// Blend: (100*1 + 140) / 2 = 120.
	if e.MeanI() != 120 {
		t.Fatalf("MeanI = %v, want 120", e.MeanI())
	}
	e.OnContactEnd(7, 210)
	e.OnContactStart(7, 270) // sample 60
	// (100 + 140 + 60) / 3 = 100.
	if e.MeanI() != 100 {
		t.Fatalf("MeanI = %v, want 100", e.MeanI())
	}
}

func TestLambdaEstimatorPerPeerIndependent(t *testing.T) {
	e := NewLambdaEstimator(0, 0)
	e.OnContactEnd(1, 100)
	e.OnContactEnd(2, 150)
	e.OnContactStart(1, 300) // sample 200
	e.OnContactStart(2, 250) // sample 100
	if e.Samples() != 2 || e.MeanI() != 150 {
		t.Fatalf("samples=%d mean=%v", e.Samples(), e.MeanI())
	}
}

func TestLambdaEstimatorNoInfo(t *testing.T) {
	e := NewLambdaEstimator(0, 0)
	if e.MeanI() != 0 || e.Lambda() != 0 {
		t.Fatal("estimator with no info should return 0")
	}
}

func TestLambdaEstimatorConvergesToTruth(t *testing.T) {
	s := rng.New(44)
	e := NewLambdaEstimator(9999, 3) // wildly wrong prior, light weight
	const trueMean = 250.0
	now := 0.0
	for i := 0; i < 20000; i++ {
		e.OnContactEnd(1, now)
		now += s.Exp(trueMean)
		e.OnContactStart(1, now)
		now += 10 // contact duration
	}
	if math.Abs(e.MeanI()-trueMean) > trueMean*0.05 {
		t.Fatalf("MeanI = %v, want ~%v", e.MeanI(), trueMean)
	}
}

func TestEIMinScaling(t *testing.T) {
	e := NewLambdaEstimator(990, 1)
	if got := e.EIMin(100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("EIMin = %v, want 10", got)
	}
}

func TestEstimateSeenNoSplits(t *testing.T) {
	if m := EstimateSeen(nil, 1024, 100, 10, 100); m != 0 {
		t.Fatalf("m with no splits = %d, want 0", m)
	}
}

func TestEstimateSeenSingleSplit(t *testing.T) {
	// Immediately after the only split, just the sibling is known (Eq. 15's
	// "+1" term).
	if m := EstimateSeen([]float64{50}, 1024, 50, 10, 100); m != 1 {
		t.Fatalf("m = %d, want 1", m)
	}
	// One E(I_min) later the sibling's subtree is assumed to have doubled.
	if m := EstimateSeen([]float64{50}, 1024, 60, 10, 100); m != 2 {
		t.Fatalf("m = %d, want 2", m)
	}
}

func TestEstimateSeenTokenBound(t *testing.T) {
	// A copy holding C=4 tokens after one split long ago: the sibling
	// subtree received ~4 tokens, so it can never exceed 4 carriers no
	// matter how much time passed.
	if m := EstimateSeen([]float64{0}, 4, 1e6, 10, 100); m != 4 {
		t.Fatalf("m = %d, want token bound 4", m)
	}
	// Two splits, C=4 now: subtrees got ~8 and ~4 tokens; saturation at 12,
	// well below N-1.
	if m := EstimateSeen([]float64{0, 5}, 4, 1e6, 10, 100); m != 12 {
		t.Fatalf("m = %d, want 12", m)
	}
	// The saturation level is about L - C_i: a fully aged lineage with
	// L=32 and C_i=1 has seen ~31 nodes, not N-1.
	if m := EstimateSeen([]float64{0, 1, 2, 3, 4}, 1, 1e6, 10, 100); m != 31 {
		t.Fatalf("m = %d, want 31", m)
	}
}

func TestEstimateSeenDoubling(t *testing.T) {
	// Splits at t=0 and t=30, E(Imin)=10, now=30: the t=0 subtree has had
	// floor(30/10)=3 doublings -> 8 nodes; plus the sibling of the last
	// split -> 9.
	if m := EstimateSeen([]float64{0, 30}, 1024, 30, 10, 1000); m != 9 {
		t.Fatalf("m = %d, want 9", m)
	}
	// Immediately after both splits happened back-to-back: 2^0 + 1 = 2.
	if m := EstimateSeen([]float64{30, 30}, 1024, 30, 10, 1000); m != 2 {
		t.Fatalf("m = %d, want 2", m)
	}
}

func TestEstimateSeenClampedToN(t *testing.T) {
	// Huge elapsed time: estimate saturates at N-1.
	if m := EstimateSeen([]float64{0, 1, 2}, 1024, 1e7, 1, 50); m != 49 {
		t.Fatalf("m = %d, want 49", m)
	}
	// Overflow-proof even with pathological EIMin.
	if m := EstimateSeen([]float64{0, 0, 0}, 1024, 1e12, 1e-9, 100); m != 99 {
		t.Fatalf("m = %d, want 99", m)
	}
}

func TestEstimateSeenLowerClamp(t *testing.T) {
	// Each split proves at least one recipient: m >= number of splits.
	if m := EstimateSeen([]float64{10, 11, 12, 13}, 1024, 13, 1000, 100); m < 4 {
		t.Fatalf("m = %d, want >= 4", m)
	}
}

func TestEstimateSeenNoRateInfo(t *testing.T) {
	if m := EstimateSeen([]float64{1, 2, 3}, 1024, 10, 0, 100); m != 3 {
		t.Fatalf("m with eiMin=0 = %d, want lineage count 3", m)
	}
}

func TestLiveCopies(t *testing.T) {
	if n := LiveCopies(10, 3, 100); n != 8 {
		t.Fatalf("n = %d, want 8", n)
	}
	// Never below 1 (the holder exists).
	if n := LiveCopies(2, 10, 100); n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	// Never above N.
	if n := LiveCopies(200, 0, 100); n != 100 {
		t.Fatalf("n = %d, want 100", n)
	}
}

func TestFixedRate(t *testing.T) {
	f := FixedRate{Mean: 500}
	if f.MeanI() != 500 || math.Abs(f.Lambda()-0.002) > 1e-15 {
		t.Fatal("FixedRate accessors wrong")
	}
	if math.Abs(f.EIMin(101)-5) > 1e-12 {
		t.Fatalf("EIMin = %v", f.EIMin(101))
	}
	if (FixedRate{}).Lambda() != 0 {
		t.Fatal("zero FixedRate Lambda not 0")
	}
}
