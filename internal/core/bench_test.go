package core

import (
	"testing"

	"sdsrp/internal/msg"
)

// Micro-benchmarks for the hot SDSRP paths: the Eq. 10 priority is
// evaluated for every buffered message at every scheduling decision, and
// the drop-table merge runs twice per contact.

func BenchmarkPriority(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Priority(float64(i%90), float64(i%20+1), 1+i%64, 9000, 100, 1.0/21000)
	}
	_ = sink
}

func BenchmarkTaylorPriority(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += TaylorPriority(0.3, 0.5, float64(i%20+1), 3)
	}
	_ = sink
}

func BenchmarkEstimateSeen(b *testing.B) {
	history := []float64{100, 400, 900, 1600, 2500}
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += EstimateSeen(history, 2, float64(3000+i%100), 220, 100)
	}
	_ = sink
}

func BenchmarkDropTableMerge(b *testing.B) {
	// A realistic mid-run state: 100 owners, a few hundred drops each side.
	mk := func(self int) *DropTable {
		t := NewDropTable(self)
		for owner := 0; owner < 100; owner++ {
			if owner == self {
				continue
			}
			src := NewDropTable(owner)
			for k := 0; k < 6; k++ {
				src.RecordDrop(msg.ID(owner*10+k), float64(owner+k))
			}
			t.MergeFrom(src)
		}
		return t
	}
	a, bb := mk(0), mk(1)
	for k := 0; k < 50; k++ {
		a.RecordDrop(msg.ID(5000+k), float64(k))
		bb.RecordDrop(msg.ID(6000+k), float64(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MergeFrom(bb)
		bb.MergeFrom(a)
	}
}

func BenchmarkCensusEstimator(b *testing.B) {
	e := NewCensusEstimator(20000, 1, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.OnContactStart(i%99, float64(i))
		_ = e.Lambda()
	}
}
