package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// checkWallclock flags time.Now and time.Since outside the perf-timing
// allowlist. Wall-clock reads inside simulation logic leak host speed into
// results; simulated time must be injected instead.
func checkWallclock(p *Pass) {
	for i, f := range p.Pkg.Files {
		if inScope(p.Pkg.Filenames[i], p.Cfg.WallclockAllow) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if name := obj.Name(); name == "Now" || name == "Since" {
				p.reportf(sel.Pos(), "no-wallclock",
					"time.%s outside the perf-timing allowlist; inject simulated time (sim.Engine clock) instead", name)
			}
			return true
		})
	}
}

// checkRNGDiscipline flags imports of math/rand and math/rand/v2 outside
// the seeded-stream wrapper package. Global rand draws are seeded from the
// environment and shared across subsystems, which breaks run-to-run
// reproducibility; all randomness must flow through injected rng.Stream
// substreams.
func checkRNGDiscipline(p *Pass) {
	if inScope(p.Pkg.Rel, p.Cfg.RNGExempt) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.reportf(imp.Pos(), "rng-discipline",
					"import of %s outside internal/rng; draw from an injected *rng.Stream substream instead", path)
			}
		}
	}
}

// checkNoPanic flags panic calls in library packages. A panic either is an
// unreachable-invariant guard — then it carries a //lint:invariant <reason>
// annotation — or it belongs to a reachable failure path and must become
// an error return.
func checkNoPanic(p *Pass) {
	if len(p.Cfg.PanicScope) > 0 && !inScope(p.Pkg.Rel, p.Cfg.PanicScope) {
		return
	}
	for i, f := range p.Pkg.Files {
		file := p.Pkg.Filenames[i]
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			line := p.fset.Position(call.Pos()).Line
			if p.Pkg.invariantAt(file, line) {
				return true
			}
			p.reportf(call.Pos(), "no-panic",
				"panic in library code; return an error or annotate the guard with //lint:invariant <reason>")
			return true
		})
	}
}

// emissionMethods are method names treated as output sinks: calling one
// from inside a map-range body serializes map iteration order into the
// emitted stream.
var emissionMethods = map[string]bool{
	"Emit":        true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// sortFuncs are the sort/slices entry points accepted as establishing a
// deterministic order for a collected slice.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Ints": true, "Strings": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

// checkMapEmit flags `for … range <map>` loops that leak Go's randomized
// map iteration order into observable output. Two forms are diagnosed:
// direct emission (Emit / Write* / fmt print calls) inside the loop body,
// and appends to a slice declared outside the loop that is never sorted
// afterwards in the same function. The collect-keys-then-sort idiom —
// append inside the loop, sort.Slice after it — passes.
func checkMapEmit(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkMapRangesIn(fd.Body)
		}
	}
}

// checkMapRangesIn analyzes every map-range loop in one function body,
// using the whole body as the scope in which a later sort may legitimize a
// collected slice.
func (p *Pass) checkMapRangesIn(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Pkg.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		p.checkMapRangeBody(body, rng)
		return true
	})
}

func (p *Pass) checkMapRangeBody(funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, sink := p.emissionCall(call); sink {
			p.reportf(call.Pos(), "ordered-map-emit",
				"%s inside map iteration emits in randomized order; iterate sorted keys instead", name)
			return true
		}
		target := p.appendTarget(call)
		if target == nil || p.declaredWithin(target, rng) {
			return true
		}
		if !p.sortedAfter(funcBody, target, rng.End()) {
			p.reportf(call.Pos(), "ordered-map-emit",
				"append to %q inside map iteration without a later sort; sort keys before emission", target.Name())
		}
		return true
	})
}

// emissionCall reports whether call writes to an output sink, returning a
// printable name for the diagnostic.
func (p *Pass) emissionCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	// Method sinks: x.Emit(...), w.Write(...), b.WriteString(...).
	if emissionMethods[name] && p.Pkg.Info.Selections[sel] != nil {
		return name, true
	}
	// Package sinks: fmt.Fprintf(...), fmt.Println(...).
	if obj := p.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
		return "fmt." + name, true
	}
	return "", false
}

// appendTarget returns the object a builtin append call grows, or nil when
// call is not an append.
func (p *Pass) appendTarget(call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
		return nil
	}
	return p.rootObject(call.Args[0])
}

// rootObject resolves the variable or field an expression ultimately
// names: x, x.f, x[i], (*x) all resolve to a stable object.
func (p *Pass) rootObject(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := p.Pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		return p.Pkg.Info.Uses[e.Sel]
	case *ast.IndexExpr:
		return p.rootObject(e.X)
	case *ast.SliceExpr:
		return p.rootObject(e.X)
	case *ast.StarExpr:
		return p.rootObject(e.X)
	case *ast.ParenExpr:
		return p.rootObject(e.X)
	}
	return nil
}

// declaredWithin reports whether obj is declared inside the range
// statement itself — a per-iteration local whose ordering cannot escape.
func (p *Pass) declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// sortedAfter reports whether an ordering call mentioning obj appears
// after pos within the function body: a sort/slices entry point, or a
// helper whose name marks it as a sort (sortPairKeys, SortByID, …).
func (p *Pass) sortedAfter(funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !p.isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if p.mentions(arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes calls that establish a deterministic order: the
// sort and slices package entry points, and any function or method whose
// name starts with "sort"/"Sort".
func (p *Pass) isSortCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if fn := p.Pkg.Info.Uses[fun.Sel]; fn != nil && fn.Pkg() != nil && sortFuncs[name] {
			if path := fn.Pkg().Path(); path == "sort" || path == "slices" {
				return true
			}
		}
	default:
		return false
	}
	return strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort")
}

// mentions reports whether expression e references obj anywhere inside it.
func (p *Pass) mentions(e ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if hit {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if p.Pkg.Info.Uses[n] == obj {
				hit = true
			}
		case *ast.SelectorExpr:
			if p.Pkg.Info.Uses[n.Sel] == obj {
				hit = true
			}
		}
		return !hit
	})
	return hit
}

// checkFloatEq flags == and != between floating-point operands in the
// score-math packages. Exact float comparison is either a bug (derived
// quantities rarely compare equal) or a deliberate bitwise tie-break that
// deserves a //lint:ignore annotation explaining itself.
func checkFloatEq(p *Pass) {
	if len(p.Cfg.FloatEqScope) > 0 && !inScope(p.Pkg.Rel, p.Cfg.FloatEqScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if p.isFloat(bin.X) || p.isFloat(bin.Y) {
				p.reportf(bin.OpPos, "float-eq",
					"floating-point %s comparison; use an epsilon or annotate the intentional bitwise tie-break", bin.Op)
			}
			return true
		})
	}
}

func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkHotDist flags scalar Euclidean distances in the hot-path packages:
// calls to a method named Dist (geo.Point.Dist in this module) and calls to
// math.Hypot. Both take a square root per pair; radius comparisons on the
// scan path must compare squared distances (Dist2 against r*r) instead.
// Canonical definitions and parse-time bound measurements suppress the
// finding with //lint:ignore hot-dist <reason>.
func checkHotDist(p *Pass) {
	if len(p.Cfg.HotDistScope) > 0 && !inScope(p.Pkg.Rel, p.Cfg.HotDistScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Hypot":
				if obj := p.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "math" {
					p.reportf(call.Pos(), "hot-dist",
						"math.Hypot in a hot-path package; compare squared distances (Dist2 against r*r) or annotate the off-path use")
				}
			case "Dist":
				// Method calls only: a package-level function named Dist has
				// no selection entry and is someone else's business.
				if p.Pkg.Info.Selections[sel] != nil {
					p.reportf(call.Pos(), "hot-dist",
						"scalar Dist on a hot path; compare squared distances (Dist2 against r*r) or annotate the off-path use")
				}
			}
			return true
		})
	}
}
