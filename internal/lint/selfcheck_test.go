package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoLintsClean loads the whole module and requires a clean run of
// the full suite under the default config — the gate `make lint` applies
// on every commit. Any new wall-clock read, global rand draw, bare panic,
// or unsorted map emission fails this test.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(m.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk is missing code", len(m.Pkgs))
	}
	cfg := DefaultConfig()
	diags := Run(m, cfg)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("repo has %d lint findings; run `make lint` for the same report", len(diags))
	}

	// Shard-safety certification: every engine-path package must declare
	// //lint:shard-safe with a reason — a clean run alone is not a
	// certification, and a new engine package cannot slip in uncertified.
	cov := Coverage(m, cfg, diags)
	if len(cov) != len(cfg.EngineScope) {
		t.Fatalf("coverage has %d packages, want %d (one per EngineScope entry)", len(cov), len(cfg.EngineScope))
	}
	for _, c := range cov {
		if !c.Certified {
			t.Errorf("engine package %s is not //lint:shard-safe certified", c.Package)
		}
		if c.Findings != 0 {
			t.Errorf("engine package %s has %d surviving shard-safety findings", c.Package, c.Findings)
		}
	}
}

// TestDefaultConfigNamesRealPaths guards the allowlist against bit-rot:
// every scoped path must still exist in the repository, so a rename
// cannot silently widen or narrow enforcement.
func TestDefaultConfigNamesRealPaths(t *testing.T) {
	cfg := DefaultConfig()
	paths := append([]string{}, cfg.WallclockAllow...)
	paths = append(paths, cfg.RNGExempt...)
	paths = append(paths, cfg.PanicScope...)
	paths = append(paths, cfg.FloatEqScope...)
	paths = append(paths, cfg.HotDistScope...)
	paths = append(paths, cfg.EngineScope...)
	paths = append(paths, cfg.ConcAllow...)
	paths = append(paths, cfg.AllocHotScope...)
	for _, p := range paths {
		abs := filepath.Join("..", "..", filepath.FromSlash(p))
		if _, err := os.Stat(abs); err != nil {
			t.Errorf("DefaultConfig names %q, which does not exist in the repo: %v", p, err)
		}
	}
}
