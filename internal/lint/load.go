package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the full import path ("sdsrp/internal/sim").
	Path string
	// Rel is the module-relative directory ("" for the module root).
	Rel string
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Filenames is parallel to Files: module-relative slash paths.
	Filenames []string
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info

	// ignores maps file → line → lint:ignore directives on that line.
	ignores map[string]map[int][]directive
	// invariants maps file → line → true when a lint:invariant annotation
	// sits on that line.
	invariants map[string]map[int]bool
	// shardSafe records a //lint:shard-safe certification directive in any
	// of the package's files.
	shardSafe bool
	// ignoreCount counts lint:ignore directives per check name and
	// invariantCount counts lint:invariant annotations — the coverage
	// report's "annotated exemptions" per package.
	ignoreCount    map[string]int
	invariantCount int
	// directiveProblems records malformed directives as findings.
	directiveProblems []Diagnostic
}

// relFile converts an absolute file name from the fileset into the
// module-relative slash form used in diagnostics.
func (p *Package) relFile(abs string) string {
	if p.Rel == "" {
		return filepath.ToSlash(filepath.Base(abs))
	}
	return p.Rel + "/" + filepath.ToSlash(filepath.Base(abs))
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	checks []string
	reason string
}

// Module is a fully loaded module (or a single fixture package) ready to
// be linted.
type Module struct {
	// Root is the absolute directory the load started from.
	Root string
	// ModPath is the module path from go.mod ("" for fixture loads).
	ModPath string
	Fset    *token.FileSet
	// Pkgs is sorted by import path.
	Pkgs []*Package
}

// LoadModule walks the module rooted at dir, parses every non-test .go
// file of every package (skipping testdata, vendor, hidden, and underscore
// directories), and type-checks the packages in dependency order. Stdlib
// imports resolve through the toolchain's source importer, so the loader
// needs nothing beyond GOROOT. Type errors are joined into the returned
// error; the analysis requires a compiling module.
func LoadModule(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, ModPath: modPath, Fset: token.NewFileSet()}
	parsed := make(map[string]*Package, len(dirs)) // import path → package
	imports := make(map[string][]string, len(dirs))
	for _, d := range dirs {
		rel, _ := filepath.Rel(root, d)
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		path := modPath
		if rel != "" {
			path = modPath + "/" + rel
		}
		pkg, deps, err := parseDir(m.Fset, d, path, rel, modPath)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		parsed[path] = pkg
		imports[path] = deps
	}
	order, err := topoOrder(parsed, imports)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		local: make(map[string]*types.Package, len(order)),
		std:   importer.ForCompiler(m.Fset, "source", nil),
	}
	var typeErrs []string
	for _, path := range order {
		pkg := parsed[path]
		if err := typeCheck(m.Fset, pkg, imp); err != nil {
			typeErrs = append(typeErrs, err.Error())
			continue
		}
		imp.local[path] = pkg.Types
		m.Pkgs = append(m.Pkgs, pkg)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	if len(typeErrs) > 0 {
		sort.Strings(typeErrs)
		return m, errors.New(strings.Join(typeErrs, "\n"))
	}
	return m, nil
}

// LoadDir loads a single package directory outside any module — the
// fixture loader. Imports must resolve from the standard library.
func LoadDir(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel := filepath.Base(root)
	m := &Module{Root: root, Fset: token.NewFileSet()}
	pkg, _, err := parseDir(m.Fset, root, rel, rel, "")
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	imp := &moduleImporter{std: importer.ForCompiler(m.Fset, "source", nil)}
	if err := typeCheck(m.Fset, pkg, imp); err != nil {
		return nil, err
	}
	m.Pkgs = []*Package{pkg}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs returns every directory under root that may hold a package,
// in sorted order. The skip set mirrors the go tool: testdata, vendor,
// and dot- or underscore-prefixed directories are invisible.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory. It returns a nil
// package when the directory holds no Go sources, and the list of
// in-module import paths for dependency ordering.
func parseDir(fset *token.FileSet, dir, path, rel, modPath string) (*Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	pkg := &Package{
		Path:        path,
		Rel:         rel,
		ignores:     make(map[string]map[int][]directive),
		invariants:  make(map[string]map[int]bool),
		ignoreCount: make(map[string]int),
	}
	var deps []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		pkg.Files = append(pkg.Files, f)
		relName := pkg.relFile(name)
		pkg.Filenames = append(pkg.Filenames, relName)
		pkg.parseDirectives(fset, f, relName)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if modPath != "" && (p == modPath || strings.HasPrefix(p, modPath+"/")) {
				deps = append(deps, p)
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil, nil
	}
	return pkg, deps, nil
}

// parseDirectives scans one file's comments for //lint:ignore and
// //lint:invariant directives, recording well-formed ones by line and
// malformed ones as lint-directive findings.
func (p *Package) parseDirectives(fset *token.FileSet, f *ast.File, relName string) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			kind, rest, _ := strings.Cut(text, " ")
			switch kind {
			case "ignore":
				check, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if check == "" || strings.TrimSpace(reason) == "" {
					p.directiveProblems = append(p.directiveProblems, Diagnostic{
						File: relName, Line: pos.Line, Col: pos.Column, Check: "lint-directive",
						Msg: "malformed directive: want //lint:ignore <check> <reason>",
					})
					continue
				}
				if !KnownCheck(check) {
					p.directiveProblems = append(p.directiveProblems, Diagnostic{
						File: relName, Line: pos.Line, Col: pos.Column, Check: "lint-directive",
						Msg: fmt.Sprintf("unknown check %q in //lint:ignore", check),
					})
					continue
				}
				if p.ignores[relName] == nil {
					p.ignores[relName] = make(map[int][]directive)
				}
				p.ignores[relName][pos.Line] = append(p.ignores[relName][pos.Line],
					directive{checks: []string{check}, reason: reason})
				p.ignoreCount[check]++
			case "invariant":
				if strings.TrimSpace(rest) == "" {
					p.directiveProblems = append(p.directiveProblems, Diagnostic{
						File: relName, Line: pos.Line, Col: pos.Column, Check: "lint-directive",
						Msg: "malformed directive: want //lint:invariant <reason>",
					})
					continue
				}
				if p.invariants[relName] == nil {
					p.invariants[relName] = make(map[int]bool)
				}
				p.invariants[relName][pos.Line] = true
				p.invariantCount++
			case "shard-safe":
				if strings.TrimSpace(rest) == "" {
					p.directiveProblems = append(p.directiveProblems, Diagnostic{
						File: relName, Line: pos.Line, Col: pos.Column, Check: "lint-directive",
						Msg: "malformed directive: want //lint:shard-safe <reason>",
					})
					continue
				}
				p.shardSafe = true
			default:
				p.directiveProblems = append(p.directiveProblems, Diagnostic{
					File: relName, Line: pos.Line, Col: pos.Column, Check: "lint-directive",
					Msg: fmt.Sprintf("unknown directive //lint:%s", kind),
				})
			}
		}
	}
}

// invariantAt reports whether a lint:invariant annotation covers the given
// file line (same line or the line above).
func (p *Package) invariantAt(file string, line int) bool {
	lines := p.invariants[file]
	return lines[line] || lines[line-1]
}

// topoOrder sorts import paths so every package follows its in-module
// dependencies. Visiting in sorted order keeps the result deterministic.
func topoOrder(pkgs map[string]*Package, imports map[string][]string) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int, len(paths))
	order := make([]string, 0, len(paths))
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		deps := append([]string(nil), imports[path]...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := pkgs[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves in-module imports from already-checked packages
// and everything else through the stdlib source importer.
type moduleImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over one parsed package, filling pkg.Types and
// pkg.Info.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	var errs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			errs = append(errs, err.Error())
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if len(errs) > 0 {
		return fmt.Errorf("lint: type-checking %s: %s", pkg.Path, strings.Join(errs, "; "))
	}
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
