// Package wallclock exercises the no-wallclock check: reading the host
// clock inside simulation logic leaks hardware speed into results.
package wallclock

import "time"

// Uptime reads the wall clock twice; both reads are violations here
// because the fixture config has an empty allowlist.
func Uptime() time.Duration {
	start := time.Now()      // want no-wallclock
	return time.Since(start) // want no-wallclock
}

// Timestamp returns a formatted wall-clock reading.
func Timestamp() string {
	return time.Now().Format(time.RFC3339) // want no-wallclock
}

// Suppressed demonstrates a //lint:ignore annotation on the line above.
func Suppressed() time.Time {
	//lint:ignore no-wallclock fixture demonstrates an allowlisted perf-timing read
	return time.Now()
}

// Injected is the compliant pattern: the clock arrives as a dependency.
func Injected(now func() time.Time) time.Time {
	return now()
}
