// Package rngdiscipline exercises the rng-discipline check: global
// math/rand draws are seeded from the environment and shared across
// subsystems, destroying run-to-run reproducibility.
package rngdiscipline

import (
	"math/rand" // want rng-discipline
)

// Roll draws from the global source — the import line is the finding.
func Roll() int { return rand.Intn(6) }
