package rngdiscipline

import (
	mrand "math/rand/v2" // want rng-discipline
)

// RollV2 draws from the v2 global source; the renamed import still counts.
func RollV2() int { return mrand.IntN(6) }
