// Package directives exercises lint-directive validation: malformed or
// unknown suppressions are findings themselves, so a typo can never
// silently disable enforcement.
//
// Expected findings are asserted by line number in lint_test.go — a `want`
// marker cannot share a line with a directive, because everything after
// the directive keyword parses as its reason.
package directives

// Bad stacks one of every malformed directive form above a finding that
// must survive them all.
func Bad(a, b float64) bool {
	//lint:ignore float-eq
	_ = a
	//lint:ignore no-such-check the named check does not exist
	_ = b
	//lint:invariant
	_ = a
	//lint:frobnicate unknown directive kind
	return a == b
}

// badCert claims shard-safety with no reason: the certification is a
// reviewed statement, so an empty one is itself a finding (and does not
// certify the package).

//lint:shard-safe
func badCert() {}
