// Package sharedmutable exercises the shared-mutable check: package-level
// mutable state is invisible to a per-shard ownership story, so two shards
// dispatching in parallel would race on it. Run state must live in
// constructed per-run structs; the only package-level vars the check
// tolerates by shape are blank interface-compliance assertions and
// sentinel errors (type error, immutable by convention).
//
//lint:shard-safe fixture: certification is a declaration, orthogonal to findings — the coverage test asserts both
package sharedmutable

import "errors"

// registry is the classic settable singleton — always flagged.
var registry = map[string]int{} // want shared-mutable

// counter and gauge share one spec line: one finding per name.
var counter, gauge int // want shared-mutable shared-mutable

// ErrClosed is a sentinel error — immutable by convention, exempt.
var ErrClosed = errors.New("sharedmutable: closed")

// The blank identifier carries interface-compliance assertions, not state.
var _ = registry

// limit is a constant — not state at all.
const limit = 8

// Suppression forms: //lint:ignore silences the line below, and
// //lint:invariant documents a deliberate, explained exemption.

//lint:ignore shared-mutable fixture demonstrates suppression
var suppressed int

//lint:invariant write-once before any run starts; never written on the event path
var annotated = []string{"seed"}

// localState shows function-local vars are per-call and never flagged.
func localState() int {
	var scratch = make([]int, 0, limit)
	scratch = append(scratch, counter)
	return len(scratch)
}
