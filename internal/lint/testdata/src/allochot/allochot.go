// Package allochot exercises the alloc-hot check: a function whose doc
// comment carries a "Performance contract" promises steady-state
// allocation-free operation, so composite literals, make, fresh appends,
// closures, and interface boxing of non-pointer values inside it are
// findings. Functions without the contract marker may allocate freely.
package allochot

// pool is reusable scratch space a contract function may grow in place.
type pool struct {
	items []int
	out   []int
}

// sink accepts any value; passing a concrete non-pointer boxes it.
func sink(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// sprint is a variadic any sink.
func sprint(vs ...any) int { return len(vs) }

// fill reuses scratch.
//
// Performance contract: grows the reused backing slice in place only;
// warm, fill allocates nothing.
func (p *pool) fill(xs []int) {
	p.items = append(p.items[:0], xs...)
}

// grow extends the same backing slice it assigns — in-place, exempt.
//
// Performance contract: amortized growth against reused backing.
func (p *pool) grow(x int) {
	p.items = append(p.items, x)
}

// heapLit allocates a composite literal per call.
//
// Performance contract: violated below, on purpose.
func heapLit() *pool {
	return &pool{} // want alloc-hot
}

// valueLit builds a struct value on the stack — not a heap allocation.
//
// Performance contract: value composites stay off the heap.
func valueLit() pool {
	return pool{}
}

// literals allocates a map and a slice literal per call.
//
// Performance contract: violated below, on purpose.
func literals() int {
	m := map[int]int{1: 1} // want alloc-hot
	s := []int{2}          // want alloc-hot
	return m[1] + s[0]
}

// maker allocates through the builtin.
//
// Performance contract: violated below, on purpose.
func maker(n int) []int {
	return make([]int, n) // want alloc-hot
}

// fresh appends into a different slice than it grows.
//
// Performance contract: violated below, on purpose.
func fresh(p *pool, xs []int) []int {
	p.out = append(p.items, xs...) // want alloc-hot
	return p.out
}

// closure allocates a func literal per call.
//
// Performance contract: violated below, on purpose.
func closure(x int) func() int {
	return func() int { return x } // want alloc-hot
}

// boxes passes values across interface boundaries: concrete non-pointer
// values allocate; pointers and nil ride the data word for free.
//
// Performance contract: violated below, on purpose.
func boxes(p *pool, n int) int {
	total := sink(n) // want alloc-hot
	total += sink(p)
	total += sink(nil)
	total += sprint(n, p) // want alloc-hot
	return total
}

// repass forwards its variadic slice — no boxing happens at this site.
//
// Performance contract: pure pass-through.
func repass(vs ...any) int { return sprint(vs...) }

// suppressed documents a sanctioned warm-up allocation.
//
// Performance contract: the warm-up below is measured and annotated.
func suppressed(n int) []int {
	//lint:ignore alloc-hot warm-up allocation measured and accepted
	return make([]int, n)
}

// unmarked carries no contract and may allocate freely.
func unmarked(n int) []int {
	fns := []func() int{func() int { return n }}
	return append(make([]int, 0, n), fns[0]())
}
