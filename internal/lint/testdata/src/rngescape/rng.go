// Package rng is the fixture stand-in for the engine's substream package:
// the rng-escape analyzer identifies substreams by the named types Stream
// and Source declared in a package named rng, so the fixture declares both
// locally and exercises the escapes in the same package.
package rng

// Stream is the deterministic substream stand-in.
type Stream struct{ state uint64 }

// Uint64 advances the stream.
func (s *Stream) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

// Source is the root-generator stand-in.
type Source struct{ state uint64 }

// NewSource seeds a root source.
func NewSource(seed uint64) *Source { return &Source{state: seed} }

// Derive splits off a substream.
func (r *Source) Derive() *Stream { return &Stream{state: r.state + 1} }
