package rng

// node is a subsystem holding a draw callback and its own substream.
type node struct {
	draw func() uint64
	s    *Stream
}

// NewNode is the sanctioned hand-off: closures (and streams) flow into a
// subsystem through constructor parameters.
func NewNode(draw func() uint64) *node { return &node{draw: draw} }

// newOwned shows the constructor taking the stream itself.
func newOwned(s *Stream) *node { return &node{s: s, draw: s.Uint64} }

// storeClosure stows a stream-capturing closure in a long-lived field:
// the closure drags the substream across the subsystem boundary.
func storeClosure(n *node, s *Stream) {
	n.draw = func() uint64 { return s.Uint64() } // want rng-escape
}

// leak returns a stream-capturing closure to an unknown caller.
func leak(s *Stream) func() uint64 {
	return func() uint64 { return s.Uint64() } // want rng-escape
}

// handOff passes a capturing closure to a non-constructor callee.
func handOff(s *Stream, schedule func(func() uint64)) {
	schedule(func() uint64 { return s.Uint64() }) // want rng-escape
}

// reseed overwrites a subsystem's substream mid-run.
func (n *node) reseed(s *Stream) {
	n.s = s // want rng-escape
}

// buildDriven hands a capturing closure to a constructor — the sanctioned
// ownership transfer — and is not flagged.
func buildDriven(s *Stream) *node {
	return NewNode(func() uint64 { return s.Uint64() })
}

// localUse keeps ownership: immediately invoked and locally bound
// closures never leave the enclosing function on their own.
func localUse(s *Stream) uint64 {
	double := func() uint64 { return s.Uint64() * 2 }
	return func() uint64 { return double() + s.Uint64() }()
}

// fieldAccess closures reach the stream through its container; ownership
// of the container, not the substream, is what moved, and the field-store
// rule polices the container's own assignments.
func fieldAccess(n *node) func() uint64 {
	return func() uint64 { return n.s.Uint64() }
}

// Suppression forms.

// reseedIgnored demonstrates //lint:ignore suppression.
func (n *node) reseedIgnored(s *Stream) {
	//lint:ignore rng-escape fixture demonstrates suppression
	n.s = s
}

// reseedInvariant carries the engine-style deliberate exemption.
func (n *node) reseedInvariant(s *Stream) {
	//lint:invariant the replacement stream is split from the node's own lineage at a barrier, preserving the draw sequence
	n.s = s
}
