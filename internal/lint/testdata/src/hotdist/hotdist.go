// Package hotdist exercises the hot-dist check: scalar Euclidean distances
// (Dist method calls, math.Hypot) where a squared comparison would do.
package hotdist

import "math"

// Point mirrors the module's geo.Point shape.
type Point struct{ X, Y float64 }

// Dist is the canonical scalar distance; its own Hypot is flagged unless
// annotated (the real geo.Point.Dist carries the annotation).
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y) // want hot-dist
}

// Dist2 is the squared distance the check steers callers toward.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

func inRange(a, b Point, r float64) bool {
	return a.Dist(b) <= r // want hot-dist
}

func inRange2(a, b Point, r float64) bool {
	return a.Dist2(b) <= r*r // squared comparison: clean
}

func hypotenuse(dx, dy float64) float64 {
	return math.Hypot(dx, dy) // want hot-dist
}

// An annotated scalar use stays quiet.
func length(dx, dy float64) float64 {
	//lint:ignore hot-dist canonical definition used off the scan path
	return math.Hypot(dx, dy)
}

// Dist the package-level function is not a distance method; calls to it
// pass.
func Dist(a, b float64) float64 { return b - a }

func span(a, b float64) float64 { return Dist(a, b) }
