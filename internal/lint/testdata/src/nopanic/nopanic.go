// Package nopanic exercises the no-panic check: reachable failure paths
// in library code must return errors; only annotated unreachable
// invariants may panic.
package nopanic

import "errors"

// Sqrt panics on bad input — a reachable failure path that should be an
// error return.
func Sqrt(x float64) float64 {
	if x < 0 {
		panic("nopanic: negative input") // want no-panic
	}
	return x // fixture stub; precision is irrelevant
}

// Checked is the compliant conversion of Sqrt.
func Checked(x float64) (float64, error) {
	if x < 0 {
		return 0, errors.New("nopanic: negative input")
	}
	return x, nil
}

// Invariant guards a state the caller contract makes unreachable; the
// annotation keeps the panic.
func Invariant(state int) int {
	switch state {
	case 0, 1:
		return state
	default:
		//lint:invariant state is assigned only from the two exported constants
		panic("nopanic: impossible state")
	}
}

// Ignored demonstrates that //lint:ignore also silences the check.
func Ignored() {
	//lint:ignore no-panic fixture demonstrates the generic suppression path
	panic("nopanic: suppressed")
}
