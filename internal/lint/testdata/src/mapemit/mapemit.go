// Package mapemit exercises the ordered-map-emit check: Go randomizes map
// iteration order, so emitting from inside a map range makes output differ
// run to run even under a fixed seed.
package mapemit

import (
	"fmt"
	"io"
	"sort"
)

// Sink is a minimal event sink with the conventional Emit method name.
type Sink struct{ W io.Writer }

// Emit writes one value.
func (s Sink) Emit(v int) { fmt.Fprintln(s.W, v) }

// EmitUnsorted streams map entries in iteration order — always flagged.
func EmitUnsorted(m map[int]int, s Sink) {
	for k := range m {
		s.Emit(k) // want ordered-map-emit
	}
}

// PrintUnsorted writes map entries through fmt in iteration order.
func PrintUnsorted(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want ordered-map-emit
	}
}

// WriteUnsorted streams through an io.Writer method in iteration order.
func WriteUnsorted(m map[string][]byte, w io.Writer) {
	for _, b := range m {
		if _, err := w.Write(b); err != nil { // want ordered-map-emit
			return
		}
	}
}

// CollectUnsorted returns keys in iteration order; no sort follows in this
// function, so the caller inherits randomized order.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want ordered-map-emit
	}
	return keys
}

// CollectSorted is the canonical sorted-keys idiom: collect, sort, use.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectSortSlice accepts the sort.Slice form too.
func CollectSortSlice(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// CollectHelperSorted accepts a named sort helper as establishing order.
func CollectHelperSorted(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []int) { sort.Ints(keys) }

// LocalAccumulator appends to a slice declared inside the loop body — a
// per-iteration local whose order cannot escape; not flagged.
func LocalAccumulator(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var pair []int
		pair = append(pair, vs...)
		total += len(pair)
	}
	return total
}

// SliceRange ranges a slice, not a map; emission order is already
// deterministic.
func SliceRange(vs []int, s Sink) {
	for _, v := range vs {
		s.Emit(v)
	}
}

// Ignored demonstrates suppression of a deliberate unordered emission.
func Ignored(m map[int]int, s Sink) {
	for k := range m {
		//lint:ignore ordered-map-emit fixture demonstrates suppression of order-insensitive output
		s.Emit(k)
	}
}
