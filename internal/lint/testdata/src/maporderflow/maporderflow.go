// Package maporderflow exercises the map-order-flow check: Go randomizes
// map iteration order, so state mutated under a map range must be
// order-independent. Floating-point accumulation is not associative,
// last-writer-wins assignments keep whichever key the runtime visited
// last, and scheduling calls turn map order into event order. Exempt by
// shape: per-key updates, loop-invariant stores, integer counters, and
// slice collection (which ordered-map-emit already polices).
package maporderflow

import "sort"

// queue is a scheduling stand-in: At enqueues an event time.
type queue struct{ times []float64 }

// At records one scheduled time.
func (q *queue) At(t float64) { q.times = append(q.times, t) }

// sumFloat accumulates a float in map order — not associative.
func sumFloat(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want map-order-flow
	}
	return sum
}

// countInt is associative and passes.
func countInt(m map[int]float64) int {
	n := 0
	for range m {
		n += 1
	}
	return n
}

// argmax keeps the last writer in map order: ties resolve to whichever
// key the runtime happened to visit last.
func argmax(m map[int]float64) int {
	best := -1
	var bestScore float64
	for k, v := range m {
		if v > bestScore {
			best = k      // want map-order-flow
			bestScore = v // want map-order-flow
		}
	}
	return best
}

// perKey writes through the loop key — order-independent, exempt.
func perKey(m, out map[int]float64) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// flagSet stores a loop-invariant value — idempotent across orders.
func flagSet(m map[int]int) bool {
	dirty := false
	for range m {
		dirty = true
	}
	return dirty
}

// collect delegates slice collection to ordered-map-emit, which accepts
// the collect-then-sort idiom.
func collect(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// schedule enqueues per map element — map order becomes event order.
func schedule(m map[int]float64, q *queue) {
	for _, v := range m {
		q.At(v) // want map-order-flow
	}
}

// perElement builds its queue inside the loop: per-element state never
// outlives one iteration, so ordering cannot leak.
func perElement(m map[int]float64) int {
	total := 0
	for _, v := range m {
		var q queue
		q.At(v)
		total += len(q.times)
	}
	return total
}

// Suppression forms.

// sumIgnored demonstrates //lint:ignore suppression.
func sumIgnored(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:ignore map-order-flow fixture demonstrates suppression
		sum += v
	}
	return sum
}

// sumInvariant carries the engine-style deliberate exemption.
func sumInvariant(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:invariant the accumulator is reduced again at a barrier before anything observes it
		sum += v
	}
	return sum
}
