// Package noconcsim exercises the no-conc-sim check: a simulation run is
// single-threaded by design, so goroutines, channels, select, and the sync
// primitives have no business in the sim path. Concurrency enters only at
// the future shard barrier; the experiment fan-out parallelizes across
// whole runs under Config.ConcAllow, never inside one.
package noconcsim

import (
	"sync"        // want no-conc-sim
	"sync/atomic" // want no-conc-sim
)

// mutexUser exercises the import findings: the imports themselves are the
// diagnostics, not every lock site.
func mutexUser() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	var c atomic.Int64
	c.Add(1)
}

// spawn starts a goroutine — event flow leaves the deterministic queue.
func spawn(done func()) {
	go done() // want no-conc-sim
}

// sendRecv exercises the channel findings: the type, the send, and the
// receive are each a separate escape hatch from deterministic dispatch.
func sendRecv() int {
	ch := make(chan int, 1) // want no-conc-sim
	ch <- 1                 // want no-conc-sim
	return <-ch             // want no-conc-sim
}

// selector exercises select and the receive inside its comm clause.
func selector(a chan int) int { // want no-conc-sim
	select { // want no-conc-sim
	case v := <-a: // want no-conc-sim
		return v
	default:
		return 0
	}
}

// Suppression forms.

//lint:ignore no-conc-sim fixture demonstrates suppression
func suppressed(ch chan int) {}

// annotated carries the engine-style deliberate exemption.
func annotated(watch func()) {
	//lint:invariant the watcher only observes completed state; it feeds nothing back into the event stream
	go watch()
}
