// Package floateq exercises the float-eq check: exact equality between
// derived floating-point quantities is almost always a bug; deliberate
// bitwise tie-breaks must say so.
package floateq

// Same compares two scores with exact equality.
func Same(a, b float64) bool {
	return a == b // want float-eq
}

// Different compares float32 operands with !=.
func Different(a, b float32) bool {
	return a != b // want float-eq
}

// MixedConst compares a float variable against an untyped constant.
func MixedConst(a float64) bool {
	return a == 0.1 // want float-eq
}

// Less uses an ordered comparison — fine.
func Less(a, b float64) bool { return a < b }

// IntEq compares integers — fine.
func IntEq(a, b int) bool { return a == b }

// TieBreak documents an intentional bitwise comparison.
func TieBreak(a, b float64, i, j int) bool {
	//lint:ignore float-eq bitwise tie-break keeps the fixture sort deterministic
	if a != b {
		return a > b
	}
	return i < j
}
