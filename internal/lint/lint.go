// Package lint is dtnlint's engine: a stdlib-only static-analysis suite
// that machine-checks the simulator's determinism, error-handling, and
// hot-path invariants (same seed ⇒ byte-identical results).
//
// The suite is built from go/parser, go/ast, go/types, and go/token alone,
// preserving the module's zero-external-dependency constraint. Six checks
// run over every non-test file of every package in the module:
//
//   - no-wallclock: time.Now / time.Since are forbidden outside an explicit
//     perf-timing allowlist. Simulated time must be injected.
//   - rng-discipline: math/rand and math/rand/v2 may be imported only by
//     internal/rng; all randomness flows through seeded rng.Stream splits.
//   - no-panic: panic(...) in internal/ library packages must either carry
//     a //lint:invariant <reason> annotation (unreachable-invariant guard)
//     or be converted to an error return.
//   - ordered-map-emit: a `for … range <map>` loop must not emit (Emit,
//     Write*, fmt print family) in iteration order, and may append to an
//     outer slice only when that slice is sorted afterwards in the same
//     function (the collect-keys-then-sort idiom).
//   - float-eq: == / != on floating-point operands in the score-math
//     packages (internal/policy, internal/buffer); exact comparisons there
//     are almost always a tie-break that needs an explicit annotation.
//   - hot-dist: scalar Euclidean distances (a Dist method call or
//     math.Hypot) in the per-tick hot-path packages; radius comparisons
//     there must use squared distances (geo.Point.Dist2 against r·r) — a
//     square root per pair per tick dominated the scanner profile before
//     the lazy sweep. Legitimate scalar uses (canonical definitions,
//     parse-time bounds) carry a //lint:ignore hot-dist annotation.
//
// Findings can be suppressed with a `//lint:ignore <check> <reason>`
// comment on the flagged line or the line above it. Malformed or
// unknown-check directives are themselves reported (check "lint-directive"),
// so a typo cannot silently disable enforcement.
//
// Diagnostics are emitted in a deterministic order (file, line, column,
// check, message) with module-relative slash-separated paths, so the tool's
// own output is byte-stable run to run — the same property it enforces.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// CheckNames lists every check in the suite, in documentation order.
// "lint-directive" (malformed suppression comments) always runs.
var CheckNames = []string{
	"no-wallclock",
	"rng-discipline",
	"no-panic",
	"ordered-map-emit",
	"float-eq",
	"hot-dist",
}

// KnownCheck reports whether name is a check of the suite (including the
// implicit directive validator).
func KnownCheck(name string) bool {
	if name == "lint-directive" {
		return true
	}
	for _, c := range CheckNames {
		if c == name {
			return true
		}
	}
	return false
}

// Config scopes the checks to the right parts of a module. Scope entries
// are module-relative slash-separated paths: an entry matches a file when
// it equals the file path exactly or is a directory prefix of it ("cmd"
// matches cmd/dtnsim/main.go). An empty scope list means "everywhere" for
// applies-where scopes and "nowhere" for allowlists, so the zero Config is
// the strictest configuration — what the fixture tests use.
type Config struct {
	// Checks selects a subset of checks by name; empty runs the full suite.
	Checks []string
	// WallclockAllow lists files and directories where time.Now/time.Since
	// are legitimate (real perf timing, CLI progress output).
	WallclockAllow []string
	// RNGExempt lists packages allowed to import math/rand[/v2] — the
	// seeded-stream wrapper itself.
	RNGExempt []string
	// PanicScope limits no-panic to these directories; empty = everywhere.
	PanicScope []string
	// FloatEqScope limits float-eq to these directories; empty = everywhere.
	FloatEqScope []string
	// HotDistScope limits hot-dist to these directories; empty = everywhere.
	// The default config lists the packages executed every scan tick.
	HotDistScope []string
}

// DefaultConfig returns the scoping for this repository: the allowlist and
// scopes named in the determinism-invariants section of DESIGN.md.
func DefaultConfig() Config {
	return Config{
		WallclockAllow: []string{
			"internal/sim/sim.go",           // engine wall-clock perf counter
			"internal/experiment/runner.go", // batch ETA accounting
			"internal/bench",                // benchmark harness measurement
			"cmd",                           // CLI progress and timing output
		},
		RNGExempt:    []string{"internal/rng"},
		PanicScope:   []string{"internal"},
		FloatEqScope: []string{"internal/policy", "internal/buffer"},
		HotDistScope: []string{
			"internal/geo",
			"internal/mobility",
			"internal/network",
			"internal/policy",
			"internal/routing",
		},
	}
}

func (c Config) wants(check string) bool {
	if len(c.Checks) == 0 {
		return true
	}
	for _, n := range c.Checks {
		if n == check {
			return true
		}
	}
	return false
}

// inScope reports whether the module-relative path matches any entry.
func inScope(rel string, entries []string) bool {
	for _, e := range entries {
		e = strings.TrimSuffix(e, "/")
		if rel == e || strings.HasPrefix(rel, e+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, addressed by module-relative position.
type Diagnostic struct {
	File  string // slash-separated, relative to the module root
	Line  int
	Col   int
	Check string
	Msg   string
}

// String formats the finding as path:line:col: [check] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Msg)
}

// sortDiagnostics orders findings deterministically: file, line, column,
// check name, message.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// Pass hands one package to one check and collects its findings.
type Pass struct {
	Pkg   *Package
	Cfg   Config
	diags *[]Diagnostic
	fset  *token.FileSet
}

// reportf records a finding at pos.
func (p *Pass) reportf(pos token.Pos, check, format string, args ...any) {
	position := p.fset.Position(pos)
	rel := p.Pkg.relFile(position.Filename)
	*p.diags = append(*p.diags, Diagnostic{
		File:  rel,
		Line:  position.Line,
		Col:   position.Column,
		Check: check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Run executes the configured checks over every package of m and returns
// the surviving findings in deterministic order. Suppressed findings are
// dropped; malformed directives are reported as lint-directive findings.
func Run(m *Module, cfg Config) []Diagnostic {
	var diags []Diagnostic
	checks := []struct {
		name string
		fn   func(*Pass)
	}{
		{"no-wallclock", checkWallclock},
		{"rng-discipline", checkRNGDiscipline},
		{"no-panic", checkNoPanic},
		{"ordered-map-emit", checkMapEmit},
		{"float-eq", checkFloatEq},
		{"hot-dist", checkHotDist},
	}
	for _, pkg := range m.Pkgs {
		pass := &Pass{Pkg: pkg, Cfg: cfg, diags: &diags, fset: m.Fset}
		for _, c := range checks {
			if cfg.wants(c.name) {
				c.fn(pass)
			}
		}
		diags = append(diags, pkg.directiveProblems...)
	}
	diags = applySuppressions(m, diags)
	sortDiagnostics(diags)
	return diags
}

// applySuppressions drops findings covered by a lint:ignore directive on
// the same line or the line above.
func applySuppressions(m *Module, diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Check != "lint-directive" && m.suppressed(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (m *Module) suppressed(d Diagnostic) bool {
	for _, pkg := range m.Pkgs {
		lines, ok := pkg.ignores[d.File]
		if !ok {
			continue
		}
		for _, ln := range []int{d.Line, d.Line - 1} {
			for _, dir := range lines[ln] {
				for _, c := range dir.checks {
					if c == d.Check {
						return true
					}
				}
			}
		}
	}
	return false
}
