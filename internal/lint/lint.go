// Package lint is dtnlint's engine: a stdlib-only static-analysis suite
// that machine-checks the simulator's determinism, error-handling,
// hot-path, and shard-safety invariants (same seed ⇒ byte-identical
// results, and — once event execution is sharded — the same bytes from a
// parallel run as from the serial engine).
//
// The suite is built from go/parser, go/ast, go/types, and go/token alone,
// preserving the module's zero-external-dependency constraint. Eleven
// checks run over every non-test file of every package in the module:
//
//   - no-wallclock: time.Now / time.Since are forbidden outside an explicit
//     perf-timing allowlist. Simulated time must be injected.
//   - rng-discipline: math/rand and math/rand/v2 may be imported only by
//     internal/rng; all randomness flows through seeded rng.Stream splits.
//   - no-panic: panic(...) in internal/ library packages must either carry
//     a //lint:invariant <reason> annotation (unreachable-invariant guard)
//     or be converted to an error return.
//   - ordered-map-emit: a `for … range <map>` loop must not emit (Emit,
//     Write*, fmt print family) in iteration order, and may append to an
//     outer slice only when that slice is sorted afterwards in the same
//     function (the collect-keys-then-sort idiom).
//   - float-eq: == / != on floating-point operands in the score-math
//     packages (internal/policy, internal/buffer); exact comparisons there
//     are almost always a tie-break that needs an explicit annotation.
//   - hot-dist: scalar Euclidean distances (a Dist method call or
//     math.Hypot) in the per-tick hot-path packages; radius comparisons
//     there must use squared distances (geo.Point.Dist2 against r·r) — a
//     square root per pair per tick dominated the scanner profile before
//     the lazy sweep. Legitimate scalar uses (canonical definitions,
//     parse-time bounds) carry a //lint:ignore hot-dist annotation.
//
// Five shard-safety checks certify that the engine-path packages can run
// under deterministic sharded parallel event execution (DESIGN.md §11):
//
//   - shared-mutable: package-level mutable state (vars, non-const maps or
//     slices, settable singletons) in an engine-path package. Any of it
//     races once shards run concurrently; state must live in constructed
//     per-run structs. Sentinel errors (error-typed Err* vars) and blank
//     interface-compliance assertions are exempt by shape.
//   - no-conc-sim: go statements, channel operations, select, channel
//     types, and sync / sync/atomic imports anywhere in the deterministic
//     sim path. Concurrency may enter only through the future shard
//     barrier; the experiment fan-out, bench harness, obs sinks, and CLIs
//     are allowlisted.
//   - rng-escape: an *rng.Stream / *rng.Source substream must not be
//     captured by a closure that outlives the statement (stored in a
//     struct field, returned, or handed to a non-constructor call) and
//     must not be stored into a struct field outside a constructor —
//     the substream-ownership discipline per-shard determinism requires.
//   - map-order-flow: extends ordered-map-emit from emission sites to
//     state flow. Inside a map-range body: floating-point accumulation
//     into outer state, order-dependent assignments to outer state
//     (last-writer-wins, argmax), and event-scheduling calls (At / After /
//     Every / Push / Schedule) are all map-order-dependent; sort the keys
//     first. Per-key updates (outer[k] = v keyed by the loop variable) and
//     associative integer counters are exempt by shape.
//   - alloc-hot: composite-literal heap allocations, make, fresh-slice
//     append growth, and interface boxing inside functions that carry a
//     "Performance contract" doc comment in the hot-path packages
//     (internal/geo, eventq, policy, buffer). The PR-4 contracts promise
//     steady-state allocation-free operation; this check keeps the promise
//     machine-verified.
//
// A package that passes the shard-safety checks can declare it with a
// `//lint:shard-safe <reason>` comment; Coverage reports which engine
// packages are certified and how many annotated exemptions each carries.
//
// Findings can be suppressed with a `//lint:ignore <check> <reason>`
// comment on the flagged line or the line above it; shard-safety findings
// also accept a `//lint:invariant <reason>` annotation for deliberate,
// explained touchpoints. Malformed or unknown-check directives are
// themselves reported (check "lint-directive"), so a typo cannot silently
// disable enforcement.
//
// Diagnostics are emitted in a deterministic order (file, line, column,
// check, message) with module-relative slash-separated paths, so the tool's
// own output is byte-stable run to run — the same property it enforces.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// CheckInfo is one registry entry: a check name and its one-line
// description, printed by `dtnlint -list` and embedded in -json reports.
type CheckInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// Checks is the registry of every check in the suite, in documentation
// order. "lint-directive" (malformed suppression comments) always runs and
// is listed last.
var Checks = []CheckInfo{
	{"no-wallclock", "time.Now/time.Since outside the perf-timing allowlist; inject simulated time"},
	{"rng-discipline", "math/rand import outside internal/rng; use injected rng.Stream substreams"},
	{"no-panic", "panic in library code without a //lint:invariant unreachable-guard annotation"},
	{"ordered-map-emit", "map-range loop emitting or collecting in randomized iteration order"},
	{"float-eq", "bare ==/!= on floats in score math; use an epsilon or annotate the tie-break"},
	{"hot-dist", "scalar Euclidean distance on the scan path; compare squared distances"},
	{"shared-mutable", "package-level mutable state in an engine package; shards would race on it"},
	{"no-conc-sim", "goroutine/channel/sync use inside the deterministic sim path"},
	{"rng-escape", "RNG substream escaping its owning subsystem outside a constructor"},
	{"map-order-flow", "map-iteration order flowing into engine state, scheduling, or float sums"},
	{"alloc-hot", "allocation or interface boxing inside a Performance-contract hot function"},
}

// CheckNames lists every check name in the suite, in documentation order,
// derived from the Checks registry.
var CheckNames = func() []string {
	names := make([]string, len(Checks))
	for i, c := range Checks {
		names[i] = c.Name
	}
	return names
}()

// KnownCheck reports whether name is a check of the suite (including the
// implicit directive validator).
func KnownCheck(name string) bool {
	if name == "lint-directive" {
		return true
	}
	for _, c := range CheckNames {
		if c == name {
			return true
		}
	}
	return false
}

// Config scopes the checks to the right parts of a module. Scope entries
// are module-relative slash-separated paths: an entry matches a file when
// it equals the file path exactly or is a directory prefix of it ("cmd"
// matches cmd/dtnsim/main.go). An empty scope list means "everywhere" for
// applies-where scopes and "nowhere" for allowlists, so the zero Config is
// the strictest configuration — what the fixture tests use.
type Config struct {
	// Checks selects a subset of checks by name; empty runs the full suite.
	Checks []string
	// WallclockAllow lists files and directories where time.Now/time.Since
	// are legitimate (real perf timing, CLI progress output).
	WallclockAllow []string
	// RNGExempt lists packages allowed to import math/rand[/v2] — the
	// seeded-stream wrapper itself.
	RNGExempt []string
	// PanicScope limits no-panic to these directories; empty = everywhere.
	PanicScope []string
	// FloatEqScope limits float-eq to these directories; empty = everywhere.
	FloatEqScope []string
	// HotDistScope limits hot-dist to these directories; empty = everywhere.
	// The default config lists the packages executed every scan tick.
	HotDistScope []string
	// EngineScope limits the shard-safety state checks (shared-mutable,
	// rng-escape, map-order-flow) to these directories; empty = everywhere.
	// The default config lists every package on the sharded-execution path.
	EngineScope []string
	// ConcAllow lists packages where goroutines, channels, and sync are
	// legitimate (the experiment fan-out, bench harness, obs sinks, CLIs).
	// no-conc-sim runs everywhere else; an empty list exempts nothing.
	ConcAllow []string
	// AllocHotScope limits alloc-hot to these directories; empty =
	// everywhere. Within scope only functions whose doc comment carries a
	// "Performance contract" marker are analyzed.
	AllocHotScope []string
}

// DefaultConfig returns the scoping for this repository: the allowlist and
// scopes named in the determinism-invariants section of DESIGN.md.
func DefaultConfig() Config {
	return Config{
		WallclockAllow: []string{
			"internal/sim/sim.go",           // engine wall-clock perf counter
			"internal/experiment/runner.go", // batch ETA accounting
			"internal/bench",                // benchmark harness measurement
			"cmd",                           // CLI progress and timing output
		},
		RNGExempt:    []string{"internal/rng"},
		PanicScope:   []string{"internal"},
		FloatEqScope: []string{"internal/policy", "internal/buffer"},
		HotDistScope: []string{
			"internal/geo",
			"internal/mobility",
			"internal/network",
			"internal/policy",
			"internal/routing",
		},
		EngineScope: []string{
			"internal/sim",
			"internal/world",
			"internal/network",
			"internal/routing",
			"internal/policy",
			"internal/buffer",
			"internal/mobility",
			"internal/geo",
			"internal/eventq",
			"internal/fault",
			"internal/msg",
			"internal/rng",
			"internal/shard",
		},
		ConcAllow: []string{
			"internal/experiment", // worker fan-out across whole runs
			"internal/bench",      // harness measurement plumbing
			"internal/obs",        // sink side of the event stream
			"internal/shard",      // the sanctioned fork-join barrier (DESIGN.md §13)
			"cmd",                 // CLI signal handling and progress
		},
		AllocHotScope: []string{
			"internal/geo",
			"internal/eventq",
			"internal/policy",
			"internal/buffer",
		},
	}
}

func (c Config) wants(check string) bool {
	if len(c.Checks) == 0 {
		return true
	}
	for _, n := range c.Checks {
		if n == check {
			return true
		}
	}
	return false
}

// inScope reports whether the module-relative path matches any entry.
func inScope(rel string, entries []string) bool {
	for _, e := range entries {
		e = strings.TrimSuffix(e, "/")
		if rel == e || strings.HasPrefix(rel, e+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, addressed by module-relative position.
type Diagnostic struct {
	File  string `json:"file"` // slash-separated, relative to the module root
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

// String formats the finding as path:line:col: [check] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Msg)
}

// sortDiagnostics orders findings deterministically: file, line, column,
// check name, message.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// Pass hands one package to one check and collects its findings.
type Pass struct {
	Pkg   *Package
	Cfg   Config
	diags *[]Diagnostic
	fset  *token.FileSet
}

// reportf records a finding at pos.
func (p *Pass) reportf(pos token.Pos, check, format string, args ...any) {
	position := p.fset.Position(pos)
	rel := p.Pkg.relFile(position.Filename)
	*p.diags = append(*p.diags, Diagnostic{
		File:  rel,
		Line:  position.Line,
		Col:   position.Column,
		Check: check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Run executes the configured checks over every package of m and returns
// the surviving findings in deterministic order. Suppressed findings are
// dropped; malformed directives are reported as lint-directive findings.
func Run(m *Module, cfg Config) []Diagnostic {
	var diags []Diagnostic
	checks := []struct {
		name string
		fn   func(*Pass)
	}{
		{"no-wallclock", checkWallclock},
		{"rng-discipline", checkRNGDiscipline},
		{"no-panic", checkNoPanic},
		{"ordered-map-emit", checkMapEmit},
		{"float-eq", checkFloatEq},
		{"hot-dist", checkHotDist},
		{"shared-mutable", checkSharedMutable},
		{"no-conc-sim", checkNoConcSim},
		{"rng-escape", checkRNGEscape},
		{"map-order-flow", checkMapOrderFlow},
		{"alloc-hot", checkAllocHot},
	}
	for _, pkg := range m.Pkgs {
		pass := &Pass{Pkg: pkg, Cfg: cfg, diags: &diags, fset: m.Fset}
		for _, c := range checks {
			if cfg.wants(c.name) {
				c.fn(pass)
			}
		}
		diags = append(diags, pkg.directiveProblems...)
	}
	diags = applySuppressions(m, diags)
	sortDiagnostics(diags)
	return diags
}

// applySuppressions drops findings covered by a lint:ignore directive on
// the same line or the line above.
func applySuppressions(m *Module, diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Check != "lint-directive" && m.suppressed(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (m *Module) suppressed(d Diagnostic) bool {
	for _, pkg := range m.Pkgs {
		lines, ok := pkg.ignores[d.File]
		if !ok {
			continue
		}
		for _, ln := range []int{d.Line, d.Line - 1} {
			for _, dir := range lines[ln] {
				for _, c := range dir.checks {
					if c == d.Check {
						return true
					}
				}
			}
		}
	}
	return false
}
