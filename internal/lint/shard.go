package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file holds the shard-safety analyzers: the checks that certify an
// engine-path package can run under deterministic sharded parallel event
// execution. They are dataflow-aware (go/types-backed) rather than purely
// syntactic: shared-mutable reasons about package state shape, rng-escape
// about substream ownership, map-order-flow about state touched under map
// iteration, and alloc-hot about allocation sites inside functions bound by
// a Performance-contract godoc. no-conc-sim fences concurrency primitives
// out of the sim path entirely.
//
// All four shard-safety checks (shared-mutable, no-conc-sim, rng-escape,
// map-order-flow) accept a //lint:invariant <reason> annotation as a
// deliberate, explained exemption in addition to //lint:ignore — the
// annotation is how the engine documents its known cross-shard touchpoints.

// reportShard records a shard-safety finding unless a //lint:invariant
// annotation covers the line (same line or the line above).
func (p *Pass) reportShard(pos token.Pos, check, format string, args ...any) {
	position := p.fset.Position(pos)
	rel := p.Pkg.relFile(position.Filename)
	if p.Pkg.invariantAt(rel, position.Line) {
		return
	}
	p.reportf(pos, check, format, args...)
}

// checkSharedMutable flags package-level mutable state in engine-path
// packages: any var declaration, including maps, slices, and settable
// singletons. Once event execution is sharded, two shards touching the same
// package variable race; run state must live in constructed structs.
// Exempt by shape: the blank identifier (interface-compliance assertions)
// and sentinel errors (vars of type error, conventionally immutable).
func checkSharedMutable(p *Pass) {
	if len(p.Cfg.EngineScope) > 0 && !inScope(p.Pkg.Rel, p.Cfg.EngineScope) {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := p.Pkg.Info.Defs[name]
					if obj != nil && types.Identical(obj.Type(), errType) {
						continue // sentinel error, immutable by convention
					}
					p.reportShard(name.Pos(), "shared-mutable",
						"package-level mutable state %q in an engine package; shards would race on it — move it into a constructed per-run struct", name.Name)
				}
			}
		}
	}
}

// checkNoConcSim flags concurrency primitives in the deterministic sim
// path: go statements, channel sends/receives, select, channel types, and
// imports of sync or sync/atomic. A simulation run is single-threaded by
// design; concurrency may enter only through the future shard barrier.
// The experiment fan-out, bench harness, obs sinks, and CLIs (Config.
// ConcAllow) parallelize across whole runs, never inside one.
func checkNoConcSim(p *Pass) {
	if inScope(p.Pkg.Rel, p.Cfg.ConcAllow) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				p.reportShard(imp.Pos(), "no-conc-sim",
					"import of %s in the sim path; a run is single-threaded — concurrency enters only at the shard barrier", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.reportShard(n.Pos(), "no-conc-sim",
					"go statement in the sim path; a run is single-threaded — concurrency enters only at the shard barrier")
			case *ast.SendStmt:
				p.reportShard(n.Pos(), "no-conc-sim",
					"channel send in the sim path; event flow must stay on the deterministic queue")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.reportShard(n.Pos(), "no-conc-sim",
						"channel receive in the sim path; event flow must stay on the deterministic queue")
				}
			case *ast.SelectStmt:
				p.reportShard(n.Pos(), "no-conc-sim",
					"select in the sim path; a run is single-threaded — concurrency enters only at the shard barrier")
			case *ast.ChanType:
				p.reportShard(n.Pos(), "no-conc-sim",
					"channel type in the sim path; event flow must stay on the deterministic queue")
				return false // the contained element type needs no second visit
			}
			return true
		})
	}
}

// isStreamType reports whether t is (a pointer to) the deterministic RNG
// substream type: a named Stream or Source declared in a package named rng.
func isStreamType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "rng" {
		return false
	}
	return obj.Name() == "Stream" || obj.Name() == "Source"
}

// checkRNGEscape enforces the substream-ownership discipline per-shard
// determinism requires: an *rng.Stream may flow into a subsystem only
// through constructor parameters. Two escapes are flagged: a closure that
// captures a substream and outlives its statement (stored in a struct
// field, returned, or handed to a non-constructor call — the closure drags
// the substream wherever it is later invoked), and a substream stored into
// a struct field from inside a method (re-seeding a subsystem mid-run).
func checkRNGEscape(p *Pass) {
	if len(p.Cfg.EngineScope) > 0 && !inScope(p.Pkg.Rel, p.Cfg.EngineScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		allowed := p.allowedClosures(f)
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if allowed[lit] {
				return true
			}
			if name, captures := p.capturedStream(lit); captures {
				p.reportShard(lit.Pos(), "rng-escape",
					"closure capturing substream %q escapes its owning subsystem; pass the stream through a constructor parameter instead", name)
			}
			return true
		})
		// Field stores from methods: x.f = <stream> outside a constructor.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					if _, ok := lhs.(*ast.SelectorExpr); !ok {
						continue
					}
					if i < len(as.Rhs) && isStreamType(p.Pkg.Info.TypeOf(as.Rhs[i])) {
						p.reportShard(as.Pos(), "rng-escape",
							"substream stored into a struct field inside a method; substreams are assigned once, in a constructor")
					}
				}
				return true
			})
		}
	}
}

// allowedClosures classifies the closure positions that do not constitute
// an ownership escape: immediately invoked literals, literals handed to a
// constructor (New*/new* call — the sanctioned ownership transfer), and
// literals bound to a local variable or declaration (still owned by the
// enclosing function until something else moves them).
func (p *Pass) allowedClosures(f *ast.File) map[*ast.FuncLit]bool {
	allowed := make(map[*ast.FuncLit]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				allowed[lit] = true // immediately invoked
			}
			if constructorName(calleeName(n)) {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						allowed[lit] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if _, local := n.Lhs[i].(*ast.Ident); local {
					allowed[lit] = true
				}
			}
		case *ast.FuncDecl:
			// Local var declarations inside function bodies keep ownership.
			if n.Body == nil {
				return true
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if vs, ok := m.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						if lit, ok := v.(*ast.FuncLit); ok {
							allowed[lit] = true
						}
					}
				}
				return true
			})
		}
		return true
	})
	return allowed
}

// calleeName extracts the called function's bare name, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// constructorName reports whether a callee name marks a constructor — the
// position where handing over a substream (or a closure around one) is the
// sanctioned ownership transfer.
func constructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// capturedStream reports whether lit references a substream variable
// declared outside the literal — a captured free variable, not a parameter.
// Field accesses (x.stream) are attributed to the captured container, not
// the stream, and are left to the field-store rule.
func (p *Pass) capturedStream(lit *ast.FuncLit) (string, bool) {
	var name string
	selected := make(map[*ast.Ident]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selected[sel.Sel] = true
		}
		return true
	})
	ast.Inspect(lit, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || selected[id] {
			return true
		}
		obj, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || !isStreamType(obj.Type()) {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() >= lit.End() {
			name = id.Name
		}
		return true
	})
	return name, name != ""
}

// schedulingMethods are method names that enqueue work on the event stream;
// calling one per map-iteration element schedules events in map order.
var schedulingMethods = map[string]bool{
	"At": true, "After": true, "Every": true, "Push": true, "Schedule": true,
}

// checkMapOrderFlow extends ordered-map-emit from emission sites to state
// flow: inside a `for … range <map>` body it flags floating-point
// accumulation into outer state (float addition is not associative, so the
// sum depends on iteration order), order-dependent plain assignments to
// outer state (last-writer-wins and argmax patterns), and event-scheduling
// calls (map order becomes event order). Exempt by shape: per-key updates
// (outer[k] = v indexed by the loop key), assignments whose right-hand side
// is independent of the loop variables (idempotent flag sets), integer
// counters (associative), and anything under a //lint:invariant.
func checkMapOrderFlow(p *Pass) {
	if len(p.Cfg.EngineScope) > 0 && !inScope(p.Pkg.Rel, p.Cfg.EngineScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Pkg.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			p.checkOrderFlowBody(rng)
			return true
		})
	}
}

// loopVarObjects resolves the key and value loop variables of a range
// statement to their type objects (nil when blank or absent).
func (p *Pass) loopVarObjects(rng *ast.RangeStmt) (key, val types.Object) {
	resolve := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return p.Pkg.Info.Uses[id]
	}
	if rng.Key != nil {
		key = resolve(rng.Key)
	}
	if rng.Value != nil {
		val = resolve(rng.Value)
	}
	return key, val
}

func (p *Pass) checkOrderFlowBody(rng *ast.RangeStmt) {
	key, val := p.loopVarObjects(rng)
	mentionsLoopVar := func(e ast.Expr) bool {
		return (key != nil && p.mentions(e, key)) || (val != nil && p.mentions(e, val))
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := n.Lhs[0]
				obj := p.rootObject(lhs)
				if obj == nil || p.declaredWithin(obj, rng) || !p.isFloat(lhs) {
					return true
				}
				p.reportShard(n.Pos(), "map-order-flow",
					"floating-point accumulation into %q in map order; float addition is not associative — sort the keys first", obj.Name())
			case token.ASSIGN:
				for i, lhs := range n.Lhs {
					obj := p.rootObject(lhs)
					if obj == nil || p.declaredWithin(obj, rng) {
						continue
					}
					if i < len(n.Rhs) {
						if call, ok := n.Rhs[i].(*ast.CallExpr); ok && p.appendTarget(call) != nil {
							continue // slice collection is ordered-map-emit's concern
						}
					}
					if idx := indexExprOf(lhs); idx != nil && key != nil && p.mentions(idx.Index, key) {
						continue // per-key update: outer[k] = v is order-independent
					}
					if i < len(n.Rhs) && !mentionsLoopVar(n.Rhs[i]) && !mentionsLoopVar(lhs) {
						continue // loop-invariant store: idempotent across orders
					}
					p.reportShard(n.Pos(), "map-order-flow",
						"map-order-dependent assignment to %q (last writer wins); sort the keys first", obj.Name())
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !schedulingMethods[sel.Sel.Name] || p.Pkg.Info.Selections[sel] == nil {
				return true
			}
			recv := p.rootObject(sel.X)
			if recv == nil || p.declaredWithin(recv, rng) {
				return true
			}
			p.reportShard(n.Pos(), "map-order-flow",
				"%s call inside map iteration schedules events in map order; sort the keys first", sel.Sel.Name)
		}
		return true
	})
}

// indexExprOf unwraps stars and parens to the index expression at the root
// of an assignment target, or nil.
func indexExprOf(e ast.Expr) *ast.IndexExpr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return x
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// allocHotMarker is the godoc phrase that binds a function to the hot-path
// allocation contract. PR 4 wrote the contracts at package level; functions
// that carry one in their own doc comment are the machine-checked surface.
const allocHotMarker = "Performance contract"

// checkAllocHot flags allocation sites inside functions whose doc comment
// carries the hot-path performance contract: heap composite literals
// (&T{...}), map and slice literals, make, closure literals, append into a
// fresh slice (in-place x = append(x, ...) growth is amortized-free and
// passes), and interface boxing of non-pointer values at call sites. The
// contracts promise steady-state allocation-free operation; every site
// here either breaks the promise or documents itself with //lint:ignore.
func checkAllocHot(p *Pass) {
	if len(p.Cfg.AllocHotScope) > 0 && !inScope(p.Pkg.Rel, p.Cfg.AllocHotScope) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			if !strings.Contains(fd.Doc.Text(), allocHotMarker) {
				continue
			}
			p.checkAllocsIn(fd)
		}
	}
}

func (p *Pass) checkAllocsIn(fd *ast.FuncDecl) {
	inPlace := p.inPlaceAppends(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.reportf(n.Pos(), "alloc-hot",
						"heap composite literal in a Performance-contract function; reuse scratch space or hoist the allocation")
					return false
				}
			}
		case *ast.CompositeLit:
			switch p.underlyingOf(n).(type) {
			case *types.Map, *types.Slice:
				p.reportf(n.Pos(), "alloc-hot",
					"map/slice literal allocates in a Performance-contract function; reuse scratch space or hoist the allocation")
			}
		case *ast.FuncLit:
			p.reportf(n.Pos(), "alloc-hot",
				"func literal allocates a closure in a Performance-contract function; hoist it or use a method value on reused state")
			return false
		case *ast.CallExpr:
			p.checkAllocCall(n, inPlace)
		}
		return true
	})
}

func (p *Pass) underlyingOf(e ast.Expr) types.Type {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// inPlaceAppends collects append calls of the shape x = append(x, ...) or
// x = append(x[:0], ...), whose growth is amortized against the backing
// array the contract already accounts for.
func (p *Pass) inPlaceAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	ok := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		for i, rhs := range as.Rhs {
			call, isCall := rhs.(*ast.CallExpr)
			if !isCall || i >= len(as.Lhs) {
				continue
			}
			target := p.appendTarget(call)
			if target == nil {
				continue
			}
			if p.rootObject(as.Lhs[i]) == target {
				ok[call] = true
			}
		}
		return true
	})
	return ok
}

// checkAllocCall flags builtin make, non-in-place append, and interface
// boxing of non-pointer arguments inside a contract function.
func (p *Pass) checkAllocCall(call *ast.CallExpr, inPlace map[*ast.CallExpr]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				p.reportf(call.Pos(), "alloc-hot",
					"make in a Performance-contract function; allocate in the constructor and reuse")
			case "append":
				if !inPlace[call] {
					p.reportf(call.Pos(), "alloc-hot",
						"append into a fresh slice in a Performance-contract function; grow in place (x = append(x, ...)) against reused backing")
				}
			}
			return
		}
	}
	sig, ok := p.Pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // args... re-passes the slice itself; no boxing
			}
			slice, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			param = slice.Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if p.boxesInterface(arg, param) {
			p.reportf(arg.Pos(), "alloc-hot",
				"interface boxing of a non-pointer value in a Performance-contract function; pass a pointer or hoist off the hot path")
		}
	}
}

// boxesInterface reports whether passing arg to a parameter of type param
// converts a concrete non-pointer value to an interface — the conversion
// that allocates when the value escapes. Pointers fit the interface data
// word and are free; type parameters are resolved at instantiation and are
// not interfaces at runtime.
func (p *Pass) boxesInterface(arg ast.Expr, param types.Type) bool {
	if param == nil {
		return false
	}
	if _, isTP := param.(*types.TypeParam); isTP {
		return false
	}
	if _, isIface := param.Underlying().(*types.Interface); !isIface {
		return false
	}
	tv, ok := p.Pkg.Info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	at := tv.Type
	if _, isTP := at.(*types.TypeParam); isTP {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return false
	}
	return true
}
