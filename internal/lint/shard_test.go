package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCheckRegistry pins the public registry: eleven checks, every one
// named, documented, and mirrored into CheckNames in declaration order.
func TestCheckRegistry(t *testing.T) {
	if len(Checks) != 11 {
		t.Fatalf("registry has %d checks, want 11", len(Checks))
	}
	seen := make(map[string]bool)
	for i, c := range Checks {
		if c.Name == "" || c.Doc == "" {
			t.Errorf("check %d (%q) is missing a name or doc line", i, c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
		if CheckNames[i] != c.Name {
			t.Errorf("CheckNames[%d] = %q, want %q", i, CheckNames[i], c.Name)
		}
	}
	for name := range shardChecks {
		if !seen[name] {
			t.Errorf("shard check %q is not in the registry", name)
		}
	}
}

// TestCoverage runs the suite over fixtures and checks the certification
// summary: sharedmutable declares //lint:shard-safe (certification is a
// declaration, orthogonal to findings) and carries one invariant plus one
// shard-check ignore; noconcsim declares nothing.
func TestCoverage(t *testing.T) {
	m := loadFixture(t, "sharedmutable")
	diags := Run(m, Config{})
	cov := Coverage(m, Config{}, diags)
	if len(cov) != 1 {
		t.Fatalf("coverage has %d entries, want 1: %v", len(cov), cov)
	}
	c := cov[0]
	if c.Package != "sharedmutable" {
		t.Errorf("coverage package = %q, want %q", c.Package, "sharedmutable")
	}
	if !c.Certified {
		t.Error("sharedmutable declares //lint:shard-safe but is not certified")
	}
	if c.Findings != len(diags) {
		t.Errorf("coverage findings = %d, want %d (every diagnostic is a shard check here)", c.Findings, len(diags))
	}
	if c.Findings == 0 {
		t.Error("fixture produced no findings; the positives went missing")
	}
	if c.Exemptions != 2 {
		t.Errorf("exemptions = %d, want 2 (one invariant + one ignored shared-mutable)", c.Exemptions)
	}

	m = loadFixture(t, "noconcsim")
	cov = Coverage(m, Config{}, Run(m, Config{}))
	if len(cov) != 1 || cov[0].Certified {
		t.Errorf("noconcsim should be a single uncertified package: %v", cov)
	}
}

// TestCoverageScope restricts the engine scope and requires out-of-scope
// packages to vanish from the summary.
func TestCoverageScope(t *testing.T) {
	m := loadFixture(t, "noconcsim")
	if cov := Coverage(m, Config{EngineScope: []string{"elsewhere"}}, nil); len(cov) != 0 {
		t.Errorf("out-of-scope package still covered: %v", cov)
	}
}

// TestReportJSON renders the machine-readable report and pins its shape:
// the registry rides along, empty diagnostics render as [] (not null),
// and coverage is present.
func TestReportJSON(t *testing.T) {
	m := loadFixture(t, "sharedmutable")
	rep := NewReport(m, Config{}, nil)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"checks"`, `"diagnostics":[]`, `"coverage"`, `"shared-mutable"`, `"certified":true`} {
		if !strings.Contains(s, want) {
			t.Errorf("report JSON missing %s:\n%s", want, s)
		}
	}
}

// TestShardInvariantSuppression pins the exemption channel the engine
// relies on: //lint:invariant silences the four shard-safety dataflow
// checks but never alloc-hot, whose contract only //lint:ignore waives.
func TestShardInvariantSuppression(t *testing.T) {
	m := loadFixture(t, "maporderflow")
	for _, d := range Run(m, Config{}) {
		if strings.Contains(d.Msg, "barrier before anything observes it") {
			t.Errorf("invariant-annotated finding survived: %v", d)
		}
	}
}
