package lint

import (
	"fmt"
	"io"
	"path"
)

// shardChecks are the analyzers whose clean pass (or annotated exemptions)
// a //lint:shard-safe certification claims.
var shardChecks = map[string]bool{
	"shared-mutable": true,
	"no-conc-sim":    true,
	"rng-escape":     true,
	"map-order-flow": true,
	"alloc-hot":      true,
}

// PackageCoverage summarizes one engine-path package's shard-safety state:
// whether it declares //lint:shard-safe, how many shard-safety findings
// survived suppression, and how many annotated exemptions (lint:invariant
// annotations plus shard-check lint:ignore suppressions) it carries.
type PackageCoverage struct {
	Package    string `json:"package"` // module-relative directory; "." for the root
	Certified  bool   `json:"certified"`
	Findings   int    `json:"findings"`
	Exemptions int    `json:"exemptions"`
}

// Report is the machine-readable output of one lint run: the check
// registry, every surviving finding, and the shard-safety coverage of the
// engine packages. Field order is fixed, so encoding/json renders it
// byte-stable — the same property the tool enforces.
type Report struct {
	Checks      []CheckInfo       `json:"checks"`
	Diagnostics []Diagnostic      `json:"diagnostics"`
	Coverage    []PackageCoverage `json:"coverage"`
}

// Coverage computes the shard-safety certification summary for the engine
// packages of m (every package when cfg.EngineScope is empty), given the
// surviving diagnostics of a Run. Packages come back in path order.
func Coverage(m *Module, cfg Config, diags []Diagnostic) []PackageCoverage {
	findings := make(map[string]int) // package rel → surviving shard findings
	for _, d := range diags {
		if !shardChecks[d.Check] {
			continue
		}
		dir := path.Dir(d.File)
		if dir == "." {
			dir = ""
		}
		findings[dir]++
	}
	var out []PackageCoverage
	for _, pkg := range m.Pkgs {
		if len(cfg.EngineScope) > 0 && !inScope(pkg.Rel, cfg.EngineScope) {
			continue
		}
		exempt := pkg.invariantCount
		for check, n := range pkg.ignoreCount {
			if shardChecks[check] {
				exempt += n
			}
		}
		rel := pkg.Rel
		if rel == "" {
			rel = "."
		}
		out = append(out, PackageCoverage{
			Package:    rel,
			Certified:  pkg.shardSafe,
			Findings:   findings[pkg.Rel],
			Exemptions: exempt,
		})
	}
	return out
}

// NewReport bundles a run's findings with the check registry and coverage.
func NewReport(m *Module, cfg Config, diags []Diagnostic) Report {
	if diags == nil {
		diags = []Diagnostic{} // render as [] rather than null
	}
	cov := Coverage(m, cfg, diags)
	if cov == nil {
		cov = []PackageCoverage{}
	}
	return Report{Checks: Checks, Diagnostics: diags, Coverage: cov}
}

// WriteSummary renders the coverage table for humans: one line per engine
// package with its certification state, surviving shard-safety findings,
// and annotated exemptions.
func WriteSummary(w io.Writer, cov []PackageCoverage) {
	certified := 0
	for _, c := range cov {
		if c.Certified {
			certified++
		}
	}
	fmt.Fprintf(w, "shard-safety coverage: %d/%d engine packages certified\n", certified, len(cov))
	for _, c := range cov {
		state := "UNCERTIFIED"
		if c.Certified {
			state = "shard-safe"
		}
		fmt.Fprintf(w, "  %-20s %-12s findings=%d exemptions=%d\n",
			c.Package, state, c.Findings, c.Exemptions)
	}
}
