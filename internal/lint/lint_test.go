package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads one golden package from testdata/src.
func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	m, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return m
}

// wantMarkers extracts the "// want check [check...]" expectations from a
// fixture package's sources, keyed "file:line:check".
func wantMarkers(t *testing.T, name string) map[string]int {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		rel := name + "/" + e.Name()
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, check := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d:%s", rel, i+1, check)]++
			}
		}
	}
	return want
}

// keyed collapses diagnostics to "file:line:check" counts.
func keyed(diags []Diagnostic) map[string]int {
	got := make(map[string]int)
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Check)]++
	}
	return got
}

func diffKeys(t *testing.T, got, want map[string]int) {
	t.Helper()
	keys := make([]string, 0, len(got)+len(want))
	for k := range got {
		keys = append(keys, k)
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("%s: got %d findings, want %d", k, got[k], want[k])
		}
	}
}

// TestFixtures runs the full suite over each golden package with the
// strict zero config and compares findings against the // want markers.
func TestFixtures(t *testing.T) {
	for _, name := range []string{
		"wallclock", "rngdiscipline", "nopanic", "mapemit", "floateq", "hotdist",
		"sharedmutable", "noconcsim", "rngescape", "maporderflow", "allochot",
	} {
		t.Run(name, func(t *testing.T) {
			m := loadFixture(t, name)
			diffKeys(t, keyed(Run(m, Config{})), wantMarkers(t, name))
		})
	}
}

// TestDirectiveValidation asserts the malformed-directive findings by
// explicit line number (a want marker cannot share a line with a
// directive — it would parse as the directive's reason).
func TestDirectiveValidation(t *testing.T) {
	m := loadFixture(t, "directives")
	want := map[string]int{
		"directives/directives.go:13:lint-directive": 1, // ignore without reason
		"directives/directives.go:15:lint-directive": 1, // unknown check name
		"directives/directives.go:17:lint-directive": 1, // invariant without reason
		"directives/directives.go:19:lint-directive": 1, // unknown directive kind
		"directives/directives.go:20:float-eq":       1, // survives the broken suppressions
		"directives/directives.go:27:lint-directive": 1, // shard-safe without reason
	}
	diffKeys(t, keyed(Run(m, Config{})), want)
	for _, pkg := range m.Pkgs {
		if pkg.shardSafe {
			t.Error("a reasonless //lint:shard-safe still certified the package")
		}
	}
}

// TestChecksSubset verifies Config.Checks narrows the suite.
func TestChecksSubset(t *testing.T) {
	m := loadFixture(t, "wallclock")
	if diags := Run(m, Config{Checks: []string{"no-panic"}}); len(diags) != 0 {
		t.Fatalf("no-panic over the wallclock fixture found %d diags: %v", len(diags), diags)
	}
	if diags := Run(m, Config{Checks: []string{"no-wallclock"}}); len(diags) != 3 {
		t.Fatalf("no-wallclock subset found %d diags, want 3: %v", len(diags), diags)
	}
}

// TestScoping verifies the Config scope semantics the default config
// relies on: allowlists silence files, scopes restrict packages.
func TestScoping(t *testing.T) {
	m := loadFixture(t, "wallclock")
	cfg := Config{WallclockAllow: []string{"wallclock"}}
	if diags := Run(m, cfg); len(diags) != 0 {
		t.Fatalf("allowlisted fixture still reported %d diags: %v", len(diags), diags)
	}
	m = loadFixture(t, "floateq")
	cfg = Config{FloatEqScope: []string{"elsewhere"}}
	if diags := Run(m, cfg); len(diags) != 0 {
		t.Fatalf("out-of-scope float-eq reported %d diags: %v", len(diags), diags)
	}
	m = loadFixture(t, "rngdiscipline")
	cfg = Config{RNGExempt: []string{"rngdiscipline"}}
	if diags := Run(m, cfg); len(diags) != 0 {
		t.Fatalf("exempt rng package reported %d diags: %v", len(diags), diags)
	}
}

// TestInScope pins the path-matching rules scope entries use.
func TestInScope(t *testing.T) {
	cases := []struct {
		rel     string
		entries []string
		want    bool
	}{
		{"cmd/dtnsim/main.go", []string{"cmd"}, true},
		{"cmd/dtnsim/main.go", []string{"cmd/"}, true},
		{"cmdline/main.go", []string{"cmd"}, false},
		{"internal/sim/sim.go", []string{"internal/sim/sim.go"}, true},
		{"internal/sim/sim_extra.go", []string{"internal/sim/sim.go"}, false},
		{"internal/rng", []string{"internal/rng"}, true},
		{"anything", nil, false},
	}
	for _, c := range cases {
		if got := inScope(c.rel, c.entries); got != c.want {
			t.Errorf("inScope(%q, %v) = %v, want %v", c.rel, c.entries, got, c.want)
		}
	}
}

// TestDeterministicOutput loads and lints the same fixture twice and
// requires byte-identical, position-sorted rendering — the property the
// tool enforces elsewhere.
func TestDeterministicOutput(t *testing.T) {
	lint := func() []Diagnostic {
		return Run(loadFixture(t, "mapemit"), Config{})
	}
	a, b := lint(), lint()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("two runs rendered differently:\n%v\n--\n%v", a, b)
	}
	for i := 1; i < len(a); i++ {
		p, q := a[i-1], a[i]
		if p.File > q.File || (p.File == q.File && p.Line > q.Line) {
			t.Fatalf("diagnostics out of position order: %v before %v", p, q)
		}
	}
	if len(a) == 0 {
		t.Fatal("mapemit fixture produced no findings")
	}
}
