// Package report renders experiment results as tables (markdown / TSV) and
// ASCII line charts, so every figure of the paper can be regenerated as
// text from cmd/experiments.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Curve is one line on a panel (one policy's metric over the sweep).
type Curve struct {
	Label string
	Y     []float64
}

// Panel is one sub-figure, e.g. Fig. 8-(a): a metric as a function of one
// swept parameter, one curve per policy.
type Panel struct {
	ID     string // e.g. "fig8a"
	Title  string
	XLabel string
	YLabel string
	// XTicks labels the sweep points (defaults to formatted X when nil).
	XTicks []string
	X      []float64
	Curves []Curve
}

// Validate reports structural problems (mismatched lengths).
func (p *Panel) Validate() error {
	if len(p.X) == 0 {
		return fmt.Errorf("report: panel %s has no sweep points", p.ID)
	}
	if p.XTicks != nil && len(p.XTicks) != len(p.X) {
		return fmt.Errorf("report: panel %s has %d ticks for %d points", p.ID, len(p.XTicks), len(p.X))
	}
	for _, c := range p.Curves {
		if len(c.Y) != len(p.X) {
			return fmt.Errorf("report: panel %s curve %q has %d values for %d points",
				p.ID, c.Label, len(c.Y), len(p.X))
		}
	}
	return nil
}

func (p *Panel) ticks() []string {
	if p.XTicks != nil {
		return p.XTicks
	}
	out := make([]string, len(p.X))
	for i, x := range p.X {
		out[i] = formatNum(x)
	}
	return out
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case math.IsInf(v, 0):
		return "inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Markdown renders the panel as a markdown table: one row per sweep point,
// one column per curve.
func (p *Panel) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", p.ID, p.Title)
	ticks := p.ticks()
	b.WriteString("| " + p.XLabel)
	for _, c := range p.Curves {
		b.WriteString(" | " + c.Label)
	}
	b.WriteString(" |\n|")
	for i := 0; i <= len(p.Curves); i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for i := range p.X {
		b.WriteString("| " + ticks[i])
		for _, c := range p.Curves {
			b.WriteString(" | " + formatCell(c.Y[i]))
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

// TSV renders the panel as a tab-separated table with a header row.
func (p *Panel) TSV() string {
	var b strings.Builder
	b.WriteString(p.XLabel)
	for _, c := range p.Curves {
		b.WriteString("\t" + c.Label)
	}
	b.WriteString("\n")
	ticks := p.ticks()
	for i := range p.X {
		b.WriteString(ticks[i])
		for _, c := range p.Curves {
			fmt.Fprintf(&b, "\t%g", c.Y[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// curveMarks are the per-curve plotting glyphs, in curve order.
var curveMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders an ASCII line chart of the panel, height rows tall
// (minimum 6). Curves are drawn with distinct glyphs; a legend follows.
func (p *Panel) Chart(height int) string {
	if height < 6 {
		height = 6
	}
	width := len(p.X)*6 + 2
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range p.Curves {
		for _, v := range c.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) { // no finite data
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(i int) int { return 2 + i*6 }
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for ci, c := range p.Curves {
		mark := curveMarks[ci%len(curveMarks)]
		for i, v := range c.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			grid[row(v)][col(i)] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (y: %s)\n", p.ID, p.Title, p.YLabel)
	for r, line := range grid {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10s |%s\n", formatCell(yVal), string(line))
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "\n")
	// X tick row (abbreviated to fit the 6-char pitch).
	tickLine := []byte(strings.Repeat(" ", width+12))
	for i, tk := range p.ticks() {
		if len(tk) > 5 {
			tk = tk[:5]
		}
		copy(tickLine[12+col(i)-len(tk)/2:], tk)
	}
	b.WriteString(strings.TrimRight(string(tickLine), " ") + "\n")
	for ci, c := range p.Curves {
		fmt.Fprintf(&b, "  %c %s\n", curveMarks[ci%len(curveMarks)], c.Label)
	}
	return b.String()
}
