package report

import (
	"fmt"
	"strings"
)

// HTML renders a set of panels as one self-contained page: inline SVG
// charts next to their data tables, grouped under section headings. It is
// what `cmd/experiments -html` writes, so a whole reproduction run can be
// reviewed in a browser without any tooling.
func HTML(title string, sections []Section) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n")
	b.WriteString(`<meta charset="utf-8">` + "\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", xmlEscape(title))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 1000px; margin: 2rem auto; padding: 0 1rem; color: #222; }
h1 { border-bottom: 2px solid #ddd; padding-bottom: .3rem; }
h2 { margin-top: 2.5rem; border-bottom: 1px solid #eee; }
table { border-collapse: collapse; font-size: .85rem; margin: 1rem 0; }
th, td { border: 1px solid #ddd; padding: .25rem .6rem; text-align: right; }
th { background: #f5f5f5; }
figure { margin: 1rem 0; }
figcaption { font-size: .8rem; color: #666; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", xmlEscape(title))
	for _, sec := range sections {
		fmt.Fprintf(&b, "<h2>%s</h2>\n", xmlEscape(sec.Title))
		if sec.Note != "" {
			fmt.Fprintf(&b, "<p>%s</p>\n", xmlEscape(sec.Note))
		}
		for i := range sec.Panels {
			p := &sec.Panels[i]
			b.WriteString("<figure>\n")
			b.WriteString(p.SVG())
			fmt.Fprintf(&b, "<figcaption>%s — %s</figcaption>\n", xmlEscape(p.ID), xmlEscape(p.Title))
			b.WriteString("</figure>\n")
			b.WriteString(p.HTMLTable())
		}
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// Section groups panels under a heading in an HTML report.
type Section struct {
	Title  string
	Note   string
	Panels []Panel
}

// HTMLTable renders the panel's data as an HTML table.
func (p *Panel) HTMLTable() string {
	var b strings.Builder
	b.WriteString("<table>\n<tr><th>" + xmlEscape(p.XLabel) + "</th>")
	for _, c := range p.Curves {
		b.WriteString("<th>" + xmlEscape(c.Label) + "</th>")
	}
	b.WriteString("</tr>\n")
	ticks := p.ticks()
	for i := range p.X {
		b.WriteString("<tr><td>" + xmlEscape(ticks[i]) + "</td>")
		for _, c := range p.Curves {
			b.WriteString("<td>" + formatCell(c.Y[i]) + "</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	return b.String()
}
