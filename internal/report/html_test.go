package report

import (
	"strings"
	"testing"
)

func TestHTMLReport(t *testing.T) {
	out := HTML("SDSRP reproduction", []Section{
		{Title: "Fig. 8", Note: "random waypoint", Panels: []Panel{*samplePanel()}},
	})
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>SDSRP reproduction</title>",
		"<h2>Fig. 8</h2>",
		"<svg",
		"<figcaption>fig8a",
		"<th>SDSRP</th>",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
}

func TestHTMLEscapes(t *testing.T) {
	p := samplePanel()
	p.Title = "<b>bold</b>"
	out := HTML(`x"y`, []Section{{Title: "<i>", Panels: []Panel{*p}}})
	if strings.Contains(out, "<b>bold</b>") || strings.Contains(out, "<h2><i></h2>") {
		t.Fatal("HTML injection not escaped")
	}
}

func TestHTMLTableRowCount(t *testing.T) {
	table := samplePanel().HTMLTable()
	if got := strings.Count(table, "<tr>"); got != 4 { // header + 3 rows
		t.Fatalf("rows = %d", got)
	}
}
