package report

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func TestSVGWellFormed(t *testing.T) {
	out := samplePanel().SVG()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, out)
		}
	}
}

func TestSVGContainsCurvesAndLabels(t *testing.T) {
	out := samplePanel().SVG()
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
	for _, want := range []string{"SDSRP", "FIFO", "delivery ratio", "fig8a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// One marker per finite point.
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Fatalf("markers = %d, want 6", got)
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	p := samplePanel()
	p.Title = `<script>&"attack"`
	out := p.SVG()
	if strings.Contains(out, "<script>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;&amp;&quot;attack&quot;") {
		t.Fatalf("escaped title missing:\n%s", out)
	}
}

func TestSVGBreaksAtNonFinite(t *testing.T) {
	p := &Panel{
		ID: "gap", Title: "gap", XLabel: "x", YLabel: "y",
		X:      []float64{1, 2, 3, 4, 5},
		Curves: []Curve{{Label: "c", Y: []float64{1, 2, math.Inf(1), 4, 5}}},
	}
	out := p.SVG()
	// The infinity splits the line into two polylines and skips its marker.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2 (split at Inf)", got)
	}
	if got := strings.Count(out, "<circle"); got != 4 {
		t.Fatalf("markers = %d, want 4", got)
	}
}

func TestSVGDegenerate(t *testing.T) {
	flat := &Panel{ID: "f", XLabel: "x", YLabel: "y",
		X: []float64{1}, Curves: []Curve{{Label: "c", Y: []float64{7}}}}
	out := flat.SVG()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("degenerate panel broke SVG skeleton")
	}
	nan := &Panel{ID: "n", XLabel: "x", YLabel: "y",
		X: []float64{1, 2}, Curves: []Curve{{Label: "c", Y: []float64{math.NaN(), math.NaN()}}}}
	_ = nan.SVG() // must not panic
}
