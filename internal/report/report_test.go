package report

import (
	"math"
	"strings"
	"testing"
)

func samplePanel() *Panel {
	return &Panel{
		ID: "fig8a", Title: "Delivery ratio vs copies",
		XLabel: "L", YLabel: "delivery ratio",
		X: []float64{16, 20, 24},
		Curves: []Curve{
			{Label: "SDSRP", Y: []float64{0.30, 0.32, 0.33}},
			{Label: "FIFO", Y: []float64{0.25, 0.24, 0.22}},
		},
	}
}

func TestValidate(t *testing.T) {
	p := samplePanel()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Curves[0].Y = p.Curves[0].Y[:2]
	if err := p.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	empty := &Panel{ID: "x"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty panel accepted")
	}
	ticks := samplePanel()
	ticks.XTicks = []string{"a"}
	if err := ticks.Validate(); err == nil {
		t.Fatal("tick mismatch accepted")
	}
}

func TestMarkdown(t *testing.T) {
	md := samplePanel().Markdown()
	for _, want := range []string{"fig8a", "| L | SDSRP | FIFO |", "| 16 | 0.3000 | 0.2500 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTSV(t *testing.T) {
	tsv := samplePanel().TSV()
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if len(lines) != 4 {
		t.Fatalf("tsv lines = %d", len(lines))
	}
	if lines[0] != "L\tSDSRP\tFIFO" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "16\t0.3\t0.25" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestTSVCustomTicks(t *testing.T) {
	p := samplePanel()
	p.XTicks = []string{"10-15", "15-20", "20-25"}
	tsv := p.TSV()
	if !strings.Contains(tsv, "10-15\t") {
		t.Fatalf("custom ticks missing:\n%s", tsv)
	}
}

func TestChartContainsCurvesAndLegend(t *testing.T) {
	ch := samplePanel().Chart(10)
	if !strings.Contains(ch, "*") || !strings.Contains(ch, "o") {
		t.Fatalf("chart missing glyphs:\n%s", ch)
	}
	if !strings.Contains(ch, "* SDSRP") || !strings.Contains(ch, "o FIFO") {
		t.Fatalf("chart missing legend:\n%s", ch)
	}
}

func TestChartHandlesDegenerateData(t *testing.T) {
	p := &Panel{ID: "flat", XLabel: "x", YLabel: "y",
		X:      []float64{1, 2},
		Curves: []Curve{{Label: "c", Y: []float64{5, 5}}}}
	if ch := p.Chart(6); !strings.Contains(ch, "c") {
		t.Fatal("flat chart broken")
	}
	nan := &Panel{ID: "nan", XLabel: "x", YLabel: "y",
		X:      []float64{1},
		Curves: []Curve{{Label: "c", Y: []float64{math.NaN()}}}}
	_ = nan.Chart(6) // must not panic
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean([]float64{1, math.NaN(), 3}); m != 2 {
		t.Fatalf("Mean with NaN = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean of empty not NaN")
	}
}

func TestWinFraction(t *testing.T) {
	a := []float64{3, 3, 1}
	b := []float64{1, 3, 2}
	if w := WinFraction(a, b); w != 0.5 { // win, tie, loss
		t.Fatalf("WinFraction = %v", w)
	}
	if !math.IsNaN(WinFraction(a, b[:2])) {
		t.Fatal("mismatched lengths not NaN")
	}
}

func TestTrend(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	up := []float64{0, 2, 4, 6}
	if s := Trend(x, up); math.Abs(s-2) > 1e-12 {
		t.Fatalf("Trend up = %v", s)
	}
	flat := []float64{5, 5, 5, 5}
	if s := Trend(x, flat); math.Abs(s) > 1e-12 {
		t.Fatalf("Trend flat = %v", s)
	}
	if !math.IsNaN(Trend(x[:1], up[:1])) {
		t.Fatal("single point trend not NaN")
	}
}

func TestCurveByLabel(t *testing.T) {
	p := samplePanel()
	if c := p.CurveByLabel("FIFO"); c == nil || c.Y[0] != 0.25 {
		t.Fatal("CurveByLabel failed")
	}
	if p.CurveByLabel("missing") != nil {
		t.Fatal("missing label found")
	}
}
