package report

import "math"

// Mean returns the arithmetic mean of the finite values in y (NaN when none
// are finite).
func Mean(y []float64) float64 {
	var sum float64
	n := 0
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// WinFraction returns the fraction of indices where a[i] > b[i], counting
// ties as half. It is the shape check used to confirm curve orderings
// ("SDSRP above FIFO across the sweep").
func WinFraction(a, b []float64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return math.NaN()
	}
	var wins float64
	for i := range a {
		switch {
		case a[i] > b[i]:
			wins++
		case a[i] == b[i]:
			wins += 0.5
		}
	}
	return wins / float64(len(a))
}

// Trend returns the least-squares slope of y against x, ignoring non-finite
// values. It quantifies "rising" (positive) vs "falling" (negative) curves.
func Trend(x, y []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0.0
	for i := range x {
		if i >= len(y) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			continue
		}
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		n++
	}
	den := n*sxx - sx*sx
	if n < 2 || den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// CurveByLabel finds a curve in a panel, or nil.
func (p *Panel) CurveByLabel(label string) *Curve {
	for i := range p.Curves {
		if p.Curves[i].Label == label {
			return &p.Curves[i]
		}
	}
	return nil
}
