package report

import (
	"fmt"
	"math"
	"strings"
)

// svgPalette holds the per-curve stroke colours (colour-blind-safe).
var svgPalette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7",
	"#e69f00", "#56b4e9", "#f0e442", "#000000",
}

// svgLayout fixes the chart geometry in pixels.
const (
	svgW       = 720
	svgH       = 420
	svgLeft    = 70
	svgRight   = 20
	svgTop     = 40
	svgBottom  = 60
	svgLegendY = 18
)

// SVG renders the panel as a standalone SVG line chart: axes with ticks,
// one polyline + markers per curve, and a legend. Non-finite values break
// the polyline rather than distorting the scale.
func (p *Panel) SVG() string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range p.Curves {
		for _, v := range c.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.08
	lo, hi = lo-pad, hi+pad

	xlo, xhi := p.X[0], p.X[len(p.X)-1]
	if xhi == xlo {
		xhi = xlo + 1
	}
	plotW := float64(svgW - svgLeft - svgRight)
	plotH := float64(svgH - svgTop - svgBottom)
	px := func(x float64) float64 { return svgLeft + (x-xlo)/(xhi-xlo)*plotW }
	py := func(y float64) float64 { return svgTop + (1-(y-lo)/(hi-lo))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgW, svgH, svgW, svgH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="14" font-weight="bold">%s — %s</text>`+"\n",
		svgLeft, xmlEscape(p.ID), xmlEscape(p.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgLeft, svgTop, svgLeft, svgH-svgBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		svgLeft, svgH-svgBottom, svgW-svgRight, svgH-svgBottom)

	// Y ticks (5).
	for i := 0; i <= 4; i++ {
		v := lo + (hi-lo)*float64(i)/4
		y := py(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			svgLeft, y, svgW-svgRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			svgLeft-6, y+4, formatCell(v))
	}
	// X ticks: every point when few, else ~8 evenly spaced.
	ticks := p.ticks()
	step := 1
	if len(ticks) > 8 {
		step = (len(ticks) + 7) / 8
	}
	for i := 0; i < len(p.X); i += step {
		x := px(p.X[i])
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, svgH-svgBottom, x, svgH-svgBottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, svgH-svgBottom+20, xmlEscape(ticks[i]))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		svgLeft+int(plotW/2), svgH-12, xmlEscape(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		svgTop+int(plotH/2), svgTop+int(plotH/2), xmlEscape(p.YLabel))

	// Curves.
	for ci, c := range p.Curves {
		colour := svgPalette[ci%len(svgPalette)]
		var seg []string
		flush := func() {
			if len(seg) >= 2 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
					strings.Join(seg, " "), colour)
			}
			seg = seg[:0]
		}
		for i, v := range c.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				flush()
				continue
			}
			seg = append(seg, fmt.Sprintf("%.1f,%.1f", px(p.X[i]), py(v)))
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(p.X[i]), py(v), colour)
		}
		flush()
		// Legend entry.
		lx := svgLeft + 10 + ci*160
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			lx, svgTop-svgLegendY, colour)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+16, svgTop-svgLegendY+10, xmlEscape(c.Label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
