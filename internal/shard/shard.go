// Package shard provides the two primitives of the deterministic parallel
// scan (DESIGN.md §13): the conservative lookahead-window arithmetic derived
// from the mobility.Model MaxSpeed contract, and a fork-join pool that runs
// one closure per spatial shard and blocks at a barrier until all complete.
//
// The execution model is "parallel propose, serial commit": shards run
// read-only or shard-private work between barriers (position sampling,
// candidate-pair enumeration), and every state mutation that can reach the
// event stream happens in the single-threaded merge phase that follows the
// barrier. The pool is therefore the only place in the engine where
// goroutines exist; everything it runs must be data-race-free by
// construction (disjoint writes, read-only shared state), and the caller —
// not the pool — owns that proof (network.parScan documents its own).
//
// Goroutines are spawned per Run call rather than kept in a persistent
// worker pool: a spawn is ~1µs, runs are ~100µs–10ms of scan work, and the
// absence of long-lived goroutines means no Close/lifecycle plumbing, no
// leak risk across the thousands of engine runs a sweep performs, and
// nothing for the race detector to misattribute between runs.
//
//lint:shard-safe the pool is the sanctioned barrier primitive: per-call WaitGroup fork-join, no package state, no RNG, no time
package shard

import (
	"math"
	"sync"
)

// MaxWindowTicks caps the lookahead window for all-static fleets (MaxSpeed
// 0 makes the physics bound infinite). Re-deriving the stripe assignment
// every 1024 ticks costs nothing measurable and keeps the window counter
// live as a heartbeat in long runs.
const MaxWindowTicks = 1024

// WindowTicks returns the length, in scan ticks, of the conservative
// lookahead window: the number of consecutive ticks two node populations
// separated by at least gap metres can be processed independently before
// motion could have carried a pair of them into radio contact.
//
// The physics bound is gap/(2·maxSpeed) seconds — two nodes closing
// head-on at maxSpeed each eat the gap at 2·maxSpeed m/s — floored to
// whole ticks of interval seconds. The returned W is strict: motion over
// W ticks covers < gap metres even when the division is exact, so a pair
// straddling a window boundary can never be missed.
//
// Degenerate inputs return the serial sentinel 0 (no parallel window
// exists): non-positive gap or interval, infinite or NaN maxSpeed (the
// MaxSpeed contract allows +Inf for "unbounded"), or a gap too small to
// survive even one tick of closing. maxSpeed 0 (an all-static fleet)
// returns MaxWindowTicks rather than an unbounded window. Mixed-speed
// fleets must pass the fleet-wide maximum — any under-report voids the
// bound, exactly as it would void the lazy scanner's park deadlines.
func WindowTicks(gap, maxSpeed, interval float64) int {
	if !(gap > 0) || !(interval > 0) {
		return 0
	}
	if math.IsInf(maxSpeed, 1) || math.IsNaN(maxSpeed) || maxSpeed < 0 {
		return 0
	}
	if maxSpeed == 0 {
		return MaxWindowTicks
	}
	w := int(math.Floor(gap / (2 * maxSpeed * interval)))
	// Enforce strictness: W ticks of mutual closing must cover strictly
	// less than gap, or an exactly-divisible gap lands a pair in contact
	// on the last tick of the window.
	for w > 0 && 2*maxSpeed*interval*float64(w) >= gap {
		w--
	}
	if w > MaxWindowTicks {
		w = MaxWindowTicks
	}
	return w
}

// Pool runs per-shard closures concurrently and joins them at a barrier.
// A pool with one worker (or a single-shard run) executes inline on the
// caller's goroutine — the serial engine never pays for the machinery.
type Pool struct {
	workers int
}

// NewPool returns a pool that runs up to workers closures concurrently.
// Values below 1 are treated as 1 (serial).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the concurrency the pool was built with.
func (p *Pool) Workers() int { return p.workers }

// Run invokes fn(s) for every shard s in [0, n) and returns only when all
// invocations have completed — the window barrier. Shard 0 runs on the
// caller's goroutine; shards 1..n-1 each get a fresh goroutine when the
// pool is concurrent. fn must confine its writes to shard-private state
// (anything indexed by s, or disjoint slices agreed with the caller);
// shared reads are safe because no Run participant writes shared state.
func (p *Pool) Run(n int, fn func(s int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for s := 0; s < n; s++ {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for s := 1; s < n; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	fn(0)
	wg.Wait()
}
