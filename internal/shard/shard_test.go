package shard

import (
	"math"
	"sync/atomic"
	"testing"
)

// TestWindowTicks pins the lookahead arithmetic the parallel scan's
// correctness argument rests on (DESIGN.md §13): the window must be
// strictly shorter than the time two head-on movers need to close the
// stripe gap, degenerate speeds must force the serial fallback, and
// static fleets must hit the cap rather than an unbounded window.
func TestWindowTicks(t *testing.T) {
	cases := []struct {
		name                 string
		gap, speed, interval float64
		want                 int
	}{
		// Plain case: 101 m gap, 5 m/s closing each side, 1 s ticks →
		// 2·5·10 = 100 < 101, ten safe ticks.
		{"typical", 101, 5, 1, 10},
		// Exactly divisible gap: 100/(2·5·1) = 10, but 10 ticks of closing
		// reach the gap exactly — strictness demands 9.
		{"exact-division-conservative", 100, 5, 1, 9},
		// Gap smaller than one tick of mutual closing → serial fallback.
		{"gap-under-one-tick", 5, 5, 1, 0},
		{"gap-exactly-one-tick", 10, 5, 1, 0},
		// Zero-speed fleet: physics bound is infinite, capped instead.
		{"all-static-capped", 100, 0, 1, MaxWindowTicks},
		{"static-huge-gap-capped", 1e12, 0, 0.1, MaxWindowTicks},
		// MaxSpeed contract allows +Inf ("unbounded"): no window exists.
		{"inf-speed-serial", 100, math.Inf(1), 1, 0},
		{"nan-speed-serial", 100, math.NaN(), 1, 0},
		{"negative-speed-serial", 100, -3, 1, 0},
		// Degenerate geometry/time.
		{"zero-gap", 0, 5, 1, 0},
		{"negative-gap", -10, 5, 1, 0},
		{"zero-interval", 100, 5, 0, 0},
		{"nan-gap", math.NaN(), 5, 1, 0},
		// Coarse ticks shrink the window in tick units.
		{"coarse-interval", 101, 5, 10, 1},
		{"coarse-interval-too-big", 101, 5, 11, 0},
		// Cap applies to slow movers over huge gaps too.
		{"slow-mover-capped", 1e9, 0.001, 1, MaxWindowTicks},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := WindowTicks(c.gap, c.speed, c.interval); got != c.want {
				t.Fatalf("WindowTicks(%v, %v, %v) = %d, want %d", c.gap, c.speed, c.interval, got, c.want)
			}
		})
	}
}

// TestWindowTicksMixedFleet documents the caller obligation: a mixed-speed
// fleet parameterizes the window by its fastest member, and the resulting
// window is valid (strict) for every slower pairing too.
func TestWindowTicksMixedFleet(t *testing.T) {
	speeds := []float64{0, 1.5, 13.9, 2.7} // pedestrians + one vehicle
	cmax := 0.0
	for _, s := range speeds {
		cmax = math.Max(cmax, s)
	}
	w := WindowTicks(500, cmax, 1)
	if w < 1 {
		t.Fatalf("fleet window collapsed to serial: %d", w)
	}
	// The fleet-wide window must satisfy the strict bound for the fastest
	// pair; slower pairs close more slowly, so the same W covers them.
	if 2*cmax*float64(w) >= 500 {
		t.Fatalf("window %d not strict for cmax=%v", w, cmax)
	}
	for _, s := range speeds {
		if 2*s*float64(w) >= 500 {
			t.Fatalf("window %d unsafe for member speed %v", w, s)
		}
	}
}

// TestWindowTicksStrictness property-checks the bound over a grid of
// inputs: whenever a window is granted, W ticks of head-on closing must
// cover strictly less than the gap.
func TestWindowTicksStrictness(t *testing.T) {
	for _, gap := range []float64{0.1, 1, 37, 100, 1234.5} {
		for _, speed := range []float64{0.01, 0.5, 1, 13.9, 250} {
			for _, interval := range []float64{0.1, 1, 25, 3600} {
				w := WindowTicks(gap, speed, interval)
				if w < 0 {
					t.Fatalf("negative window for (%v,%v,%v)", gap, speed, interval)
				}
				if w > 0 && 2*speed*interval*float64(w) >= gap {
					t.Fatalf("WindowTicks(%v,%v,%v)=%d violates strict bound", gap, speed, interval, w)
				}
			}
		}
	}
}

// TestPoolRunCoversEveryShard checks the fork-join contract for serial and
// concurrent pools: every shard index in [0,n) runs exactly once and Run
// does not return before all complete (the counter is fully settled at the
// barrier). Run under -race this also witnesses that disjoint per-shard
// writes are the data-race-free pattern the scan relies on.
func TestPoolRunCoversEveryShard(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		for _, n := range []int{0, 1, 2, 4, 7, 16} {
			p := NewPool(workers)
			hits := make([]int32, n)
			var total atomic.Int32
			p.Run(n, func(s int) {
				atomic.AddInt32(&hits[s], 1)
				total.Add(1)
			})
			if int(total.Load()) != n {
				t.Fatalf("workers=%d n=%d: %d invocations, want %d", workers, n, total.Load(), n)
			}
			for s, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: shard %d ran %d times", workers, n, s, h)
				}
			}
		}
	}
}

// TestPoolRunIsABarrier stresses that writes made inside Run are visible
// after it returns, phase after phase — the property the scan's
// sample/enumerate/commit sequencing depends on.
func TestPoolRunIsABarrier(t *testing.T) {
	p := NewPool(4)
	const n = 8
	buf := make([]int, n)
	for round := 1; round <= 50; round++ {
		p.Run(n, func(s int) { buf[s] = round })
		for s, v := range buf {
			if v != round {
				t.Fatalf("round %d: shard %d write not visible after barrier (got %d)", round, s, v)
			}
		}
	}
}

func TestNewPoolClampsWorkers(t *testing.T) {
	if got := NewPool(-3).Workers(); got != 1 {
		t.Fatalf("NewPool(-3).Workers() = %d, want 1", got)
	}
	if got := NewPool(6).Workers(); got != 6 {
		t.Fatalf("NewPool(6).Workers() = %d, want 6", got)
	}
}
