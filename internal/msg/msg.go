// Package msg defines DTN messages and the per-node state of a stored copy.
//
// A Message is the immutable identity of a bundle (source, destination,
// size, TTL). A Stored is one node's copy of it: the remaining spray count
// C_i, the hop count of this copy, and the lineage of binary-spray split
// times used by SDSRP's m_i estimator (paper Eq. 15 / Fig. 6).
//lint:shard-safe plain data types; no package state
package msg

// ID identifies a message network-wide.
type ID int32

// Message is the immutable part of a DTN bundle, shared by all copies.
type Message struct {
	ID            ID
	Source, Dest  int     // node ids
	Size          int64   // bytes
	Created       float64 // simulation seconds
	TTL           float64 // lifetime in seconds from Created
	InitialCopies int     // L in Spray-and-Wait; C in the paper's Table I
}

// Expiry returns the absolute time at which the message dies.
func (m *Message) Expiry() float64 { return m.Created + m.TTL }

// Expired reports whether the message is dead at time now.
func (m *Message) Expired(now float64) bool { return now >= m.Expiry() }

// Remaining returns R_i, the remaining TTL at time now, clamped at 0.
func (m *Message) Remaining(now float64) float64 {
	r := m.Expiry() - now
	if r < 0 {
		return 0
	}
	return r
}

// Elapsed returns T_i, the time since generation, clamped at 0.
func (m *Message) Elapsed(now float64) float64 {
	t := now - m.Created
	if t < 0 {
		return 0
	}
	return t
}

// Stored is one node's copy of a message.
type Stored struct {
	M          *Message
	Copies     int     // C_i: spray tokens held by this node
	ReceivedAt float64 // when this node obtained the copy (creation time at the source)
	Hops       int     // hops this copy has traveled from the source
	Forwarded  int     // times this node has forwarded the copy (MOFO policy)
	// SprayTimes is the ascending list of binary-split times along this
	// copy's lineage, from the first split at the source to the split that
	// produced (or last divided) this copy. SDSRP uses it to estimate
	// m_i(T_i) per Eq. 15.
	SprayTimes []float64
}

// NewSourceCopy returns the copy held by the source at generation time.
func NewSourceCopy(m *Message) *Stored {
	return &Stored{M: m, Copies: m.InitialCopies, ReceivedAt: m.Created}
}

// Split performs a binary spray at time now: the receiver's copy gets
// ⌊C/2⌋ tokens and the sender keeps ⌈C/2⌉. Both lineages record the split.
// Split panics if the sender has fewer than 2 tokens; wait-phase copies must
// not be sprayed.
func (s *Stored) Split(now float64) *Stored {
	if s.Copies < 2 {
		//lint:invariant the protocol offers KindSpray only for Copies >= 2 (wait-phase copies relay or hand off)
		panic("msg: Split on a wait-phase copy")
	}
	give := s.Copies / 2
	keep := s.Copies - give
	history := make([]float64, len(s.SprayTimes)+1)
	copy(history, s.SprayTimes)
	history[len(history)-1] = now

	s.Copies = keep
	s.SprayTimes = append(s.SprayTimes, now)

	return &Stored{
		M:          s.M,
		Copies:     give,
		ReceivedAt: now,
		Hops:       s.Hops + 1,
		SprayTimes: history,
	}
}

// Relay returns the copy created at a non-spraying forward (Epidemic or
// direct delivery): the receiver gets an equal view of the message with the
// hop count advanced. Token count is whatever the caller decides.
func (s *Stored) Relay(now float64, copies int) *Stored {
	history := make([]float64, len(s.SprayTimes))
	copy(history, s.SprayTimes)
	return &Stored{
		M:          s.M,
		Copies:     copies,
		ReceivedAt: now,
		Hops:       s.Hops + 1,
		SprayTimes: history,
	}
}

// WaitPhase reports whether this copy may only be delivered directly to the
// destination (single spray token left).
func (s *Stored) WaitPhase() bool { return s.Copies <= 1 }
