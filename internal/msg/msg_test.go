package msg

import (
	"testing"
	"testing/quick"
)

func newTestMessage() *Message {
	return &Message{ID: 1, Source: 0, Dest: 5, Size: 500000, Created: 100, TTL: 18000, InitialCopies: 16}
}

func TestTTLAccessors(t *testing.T) {
	m := newTestMessage()
	if m.Expiry() != 18100 {
		t.Fatalf("Expiry = %v", m.Expiry())
	}
	if m.Expired(18099.9) {
		t.Fatal("Expired before expiry")
	}
	if !m.Expired(18100) {
		t.Fatal("not Expired at expiry")
	}
	if r := m.Remaining(10100); r != 8000 {
		t.Fatalf("Remaining = %v, want 8000", r)
	}
	if r := m.Remaining(99999); r != 0 {
		t.Fatalf("Remaining past expiry = %v, want 0", r)
	}
	if e := m.Elapsed(150); e != 50 {
		t.Fatalf("Elapsed = %v, want 50", e)
	}
	if e := m.Elapsed(50); e != 0 {
		t.Fatalf("Elapsed before creation = %v, want 0", e)
	}
}

func TestNewSourceCopy(t *testing.T) {
	m := newTestMessage()
	s := NewSourceCopy(m)
	if s.Copies != 16 || s.Hops != 0 || s.ReceivedAt != 100 || len(s.SprayTimes) != 0 {
		t.Fatalf("source copy = %+v", s)
	}
	if s.WaitPhase() {
		t.Fatal("source copy with 16 tokens reported wait phase")
	}
}

func TestSplitEven(t *testing.T) {
	m := newTestMessage()
	s := NewSourceCopy(m)
	r := s.Split(200)
	if s.Copies != 8 || r.Copies != 8 {
		t.Fatalf("split 16 -> %d + %d", s.Copies, r.Copies)
	}
	if r.Hops != 1 || s.Hops != 0 {
		t.Fatalf("hops after split: sender %d receiver %d", s.Hops, r.Hops)
	}
	if len(s.SprayTimes) != 1 || s.SprayTimes[0] != 200 {
		t.Fatalf("sender history = %v", s.SprayTimes)
	}
	if len(r.SprayTimes) != 1 || r.SprayTimes[0] != 200 {
		t.Fatalf("receiver history = %v", r.SprayTimes)
	}
	if r.ReceivedAt != 200 {
		t.Fatalf("receiver ReceivedAt = %v", r.ReceivedAt)
	}
}

func TestSplitOdd(t *testing.T) {
	m := newTestMessage()
	s := NewSourceCopy(m)
	s.Copies = 5
	r := s.Split(300)
	// Sender keeps the ceiling per the paper's binary spray.
	if s.Copies != 3 || r.Copies != 2 {
		t.Fatalf("split 5 -> %d + %d, want 3 + 2", s.Copies, r.Copies)
	}
}

func TestSplitDownToWaitPhase(t *testing.T) {
	m := newTestMessage()
	s := NewSourceCopy(m)
	now := 200.0
	splits := 0
	for !s.WaitPhase() {
		s.Split(now)
		now += 10
		splits++
	}
	if splits != 4 { // 16 -> 8 -> 4 -> 2 -> 1
		t.Fatalf("splits to wait phase = %d, want 4", splits)
	}
	if len(s.SprayTimes) != 4 {
		t.Fatalf("history length = %d, want 4", len(s.SprayTimes))
	}
}

func TestSplitWaitPhasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split on 1 token did not panic")
		}
	}()
	m := newTestMessage()
	s := NewSourceCopy(m)
	s.Copies = 1
	s.Split(10)
}

func TestSplitHistoryIsolation(t *testing.T) {
	// Mutating the sender's history after a split must not affect the
	// receiver's copy, and vice versa.
	m := newTestMessage()
	s := NewSourceCopy(m)
	r := s.Split(200)
	s.Split(250)
	if len(r.SprayTimes) != 1 {
		t.Fatalf("receiver history grew with sender: %v", r.SprayTimes)
	}
	r2 := r.Split(300)
	if len(s.SprayTimes) != 2 {
		t.Fatalf("sender history affected by receiver split: %v", s.SprayTimes)
	}
	if len(r2.SprayTimes) != 2 || r2.SprayTimes[1] != 300 {
		t.Fatalf("grandchild history = %v", r2.SprayTimes)
	}
}

func TestRelay(t *testing.T) {
	m := newTestMessage()
	s := NewSourceCopy(m)
	s.Split(200)
	r := s.Relay(400, 1)
	if r.Copies != 1 || r.Hops != 1 || r.ReceivedAt != 400 {
		t.Fatalf("relay copy = %+v", r)
	}
	if len(r.SprayTimes) != len(s.SprayTimes) {
		t.Fatal("relay did not carry spray history")
	}
	r.SprayTimes[0] = -1
	if s.SprayTimes[0] == -1 {
		t.Fatal("relay shares history storage with sender")
	}
}

// Property: token conservation — after any sequence of splits, the total
// token count over all live copies equals the initial count, and every
// copy's history length equals the number of splits on its lineage.
func TestPropertyTokenConservation(t *testing.T) {
	f := func(seed uint8, initial uint8) bool {
		l := int(initial)%63 + 2 // 2..64
		m := &Message{ID: 2, Size: 1, TTL: 100, InitialCopies: l}
		copies := []*Stored{NewSourceCopy(m)}
		now := 1.0
		x := uint32(seed) + 1
		for step := 0; step < 40; step++ {
			x = x*1664525 + 1013904223
			i := int(x>>8) % len(copies)
			if copies[i].Copies >= 2 {
				copies = append(copies, copies[i].Split(now))
				now++
			}
		}
		total := 0
		for _, c := range copies {
			total += c.Copies
			if c.Copies < 1 {
				return false
			}
		}
		return total == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
