package config

import (
	"strings"
	"testing"

	"sdsrp/internal/fault"
)

func TestRandomWaypointPresetMatchesTableII(t *testing.T) {
	sc := RandomWaypoint()
	if sc.Duration != 18000 {
		t.Fatalf("duration = %v", sc.Duration)
	}
	if sc.Area.W() != 4500 || sc.Area.H() != 3400 {
		t.Fatalf("area = %v", sc.Area)
	}
	if sc.Nodes != 100 {
		t.Fatalf("nodes = %d", sc.Nodes)
	}
	if sc.Mobility.SpeedLo != 2 || sc.Mobility.SpeedHi != 2 {
		t.Fatalf("speed = [%v,%v]", sc.Mobility.SpeedLo, sc.Mobility.SpeedHi)
	}
	if sc.Bandwidth != 31250 { // 250 kbit/s
		t.Fatalf("bandwidth = %v", sc.Bandwidth)
	}
	if sc.Range != 100 {
		t.Fatalf("range = %v", sc.Range)
	}
	if sc.BufferBytes != 2_500_000 {
		t.Fatalf("buffer = %d", sc.BufferBytes)
	}
	if sc.MessageSize != 500_000 {
		t.Fatalf("message size = %d", sc.MessageSize)
	}
	if sc.GenIntervalLo != 25 || sc.GenIntervalHi != 35 {
		t.Fatalf("gen interval = [%v,%v]", sc.GenIntervalLo, sc.GenIntervalHi)
	}
	if sc.TTL != 18000 { // 300 min
		t.Fatalf("ttl = %v", sc.TTL)
	}
	if sc.InitialCopies != 32 {
		t.Fatalf("copies = %d", sc.InitialCopies)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
}

func TestEPFLPresetMatchesTableIII(t *testing.T) {
	sc := EPFL()
	if sc.Nodes != 200 {
		t.Fatalf("nodes = %d", sc.Nodes)
	}
	if sc.Mobility.Kind != MobilityTaxi {
		t.Fatalf("kind = %v", sc.Mobility.Kind)
	}
	if sc.Duration != 18000 || sc.TTL != 18000 {
		t.Fatalf("duration/ttl = %v/%v", sc.Duration, sc.TTL)
	}
	if sc.BufferBytes != 2_500_000 || sc.MessageSize != 500_000 {
		t.Fatal("buffer/message sizes differ from Table III")
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	break3 := func(mut func(*Scenario)) error {
		sc := RandomWaypoint()
		mut(&sc)
		return sc.Validate()
	}
	cases := map[string]func(*Scenario){
		"duration":      func(s *Scenario) { s.Duration = 0 },
		"nodes":         func(s *Scenario) { s.Nodes = 1 },
		"range":         func(s *Scenario) { s.Range = -1 },
		"bandwidth":     func(s *Scenario) { s.Bandwidth = 0 },
		"scan":          func(s *Scenario) { s.ScanInterval = 0 },
		"message size":  func(s *Scenario) { s.MessageSize = 0 },
		"buffer":        func(s *Scenario) { s.BufferBytes = 100 },
		"ttl":           func(s *Scenario) { s.TTL = 0 },
		"gen interval":  func(s *Scenario) { s.GenIntervalLo, s.GenIntervalHi = 30, 20 },
		"copies":        func(s *Scenario) { s.InitialCopies = 0 },
		"expiry":        func(s *Scenario) { s.ExpiryInterval = 0 },
		"speed":         func(s *Scenario) { s.Mobility.SpeedLo, s.Mobility.SpeedHi = 0, 0 },
		"mobility kind": func(s *Scenario) { s.Mobility.Kind = "hovercraft" },
		"trace dir":     func(s *Scenario) { s.Mobility = Mobility{Kind: MobilityTraceDir} },
		"fault loss":    func(s *Scenario) { s.Faults.TransferLossProb = 1.5 },
		"fault jitter":  func(s *Scenario) { s.Faults.BandwidthJitterLo, s.Faults.BandwidthJitterHi = 2, 1 },
		"fault churn":   func(s *Scenario) { s.Faults.Churn.MeanUp = 100 }, // no MeanDown
		"fault roles":   func(s *Scenario) { s.Faults.BlackHoleFraction, s.Faults.SelfishFraction = 0.7, 0.7 },
		"churn group":   func(s *Scenario) { s.Faults.Churn = fault.Churn{MeanUp: 10, MeanDown: 10, Groups: []string{"ghost"}} },
	}
	for name, mut := range cases {
		if err := break3(mut); err == nil {
			t.Fatalf("Validate accepted broken %s", name)
		}
	}
}

func TestValidateJoinsMultipleErrors(t *testing.T) {
	sc := RandomWaypoint()
	sc.Duration = 0
	sc.Range = 0
	err := sc.Validate()
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "duration") || !strings.Contains(err.Error(), "range") {
		t.Fatalf("errors not joined: %v", err)
	}
}

func TestTrafficCanBeDisabled(t *testing.T) {
	sc := RandomWaypoint()
	sc.GenIntervalLo = 0
	if err := sc.Validate(); err != nil {
		t.Fatalf("traffic-free scenario rejected: %v", err)
	}
}
