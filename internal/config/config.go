// Package config defines simulation scenarios and the paper's two presets
// (Table II: random-waypoint; Table III: EPFL taxi trace).
package config

import (
	"errors"
	"fmt"

	"sdsrp/internal/fault"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
)

// Byte-size units (decimal, as in the ONE simulator's "2.5M").
const (
	KB int64 = 1_000
	MB int64 = 1_000_000
)

// MobilityKind selects the movement model.
type MobilityKind string

// Supported mobility kinds.
const (
	MobilityRWP             MobilityKind = "random-waypoint"
	MobilityRandomWalk      MobilityKind = "random-walk"
	MobilityRandomDirection MobilityKind = "random-direction"
	MobilityTaxi            MobilityKind = "taxi"      // synthetic EPFL substitute
	MobilityTraceDir        MobilityKind = "trace-dir" // real cabspotting files
	MobilityONEFile         MobilityKind = "one-trace" // ONE external-movement file
	MobilityStatic          MobilityKind = "static"    // fixed positions (relays, throwboxes)
	MobilityMapGrid         MobilityKind = "map-grid"  // shortest paths on a street grid
	MobilityMapFile         MobilityKind = "map-file"  // shortest paths on an edge-list road map
)

// Mobility parameterizes the movement model.
type Mobility struct {
	Kind MobilityKind

	// Waypoint-family parameters (RWP, walk, direction).
	SpeedLo, SpeedHi float64 // m/s
	PauseLo, PauseHi float64 // s
	EpochDist        float64 // random-walk leg length, m

	// Taxi parameters (synthetic trace).
	Taxi mobility.TaxiConfig
	// SampleInterval is the synthetic GPS fix period in seconds.
	SampleInterval float64

	// TraceDir points at a directory of cabspotting files for
	// MobilityTraceDir.
	TraceDir string
	// TraceFile points at a ONE external-movement file for MobilityONEFile.
	TraceFile string

	// Map-constrained movement (MobilityMapGrid / MobilityMapFile): nodes
	// walk shortest paths on a road graph between random intersections.
	MapCols, MapRows int     // grid intersections (map-grid)
	MapSpacing       float64 // street spacing in metres (map-grid)
	MapDropProb      float64 // fraction of street segments removed (map-grid)
	MapFile          string  // edge-list road map path (map-file)
	MapSnap          float64 // vertex snap distance for map files (default 1 m)
}

// Scenario fully describes one simulation run.
type Scenario struct {
	Name     string
	Seed     uint64
	Duration float64 // s
	// Warmup excludes messages generated before this time (seconds) from
	// the per-message metrics, letting buffers and estimators reach steady
	// state first. 0 (the paper's setting) counts everything.
	Warmup float64

	Nodes int
	Area  geo.Rect // synthetic mobility area (trace kinds override it)

	Mobility Mobility
	// ContactTraceFile, when set, replaces mobility entirely: the radio
	// layer replays a recorded contact trace (one "a b start end" line per
	// encounter, the Haggle/Infocom convention). Nodes is raised to cover
	// every id in the trace.
	ContactTraceFile string
	// Groups optionally splits the population into heterogeneous groups
	// (e.g. pedestrians plus vehicles, or mobile nodes plus fixed relays).
	// When non-empty, Groups replaces Nodes/Mobility/BufferBytes for node
	// construction: the network has ΣCount nodes, each group moving under
	// its own mobility model and buffer size (0 fields fall back to the
	// scenario-level values). Trace-driven kinds are not allowed inside
	// groups.
	Groups []Group

	Range        float64 // radio range, m
	Bandwidth    float64 // bytes/s
	ScanInterval float64 // connectivity scan period, s
	// ScanMode selects the connectivity-scan strategy: "lazy" (the default
	// when empty) skips pair checks the mobility speed bounds rule out;
	// "kinetic" keeps per-node park deadlines in grid buckets, scaling to
	// fleets the lazy pair index cannot hold (its O(n²) arrays refuse at
	// 65536 nodes and fall back to kinetic); "naive" re-checks every
	// candidate pair each tick. All three produce byte-identical event
	// streams — the knob is an escape hatch for perf comparison and for
	// custom mobility models whose MaxSpeed bound is not trusted.
	ScanMode string
	// CellSize overrides the spatial-hash cell edge (metres) used by the
	// connectivity scan's grid. 0, the default, uses the largest radio
	// range in the scenario — the smallest complete cell. Values below
	// that range are rejected (a 3×3 neighbourhood would miss in-range
	// pairs). Changing the cell size changes the grid's pair enumeration
	// order, so traces are only comparable across runs that share a cell
	// size.
	CellSize float64
	// Workers ≥ 2 runs the connectivity scan's sampling and candidate
	// enumeration phases concurrently on that many spatially sharded
	// goroutines (DESIGN.md §13), with every event committed serially at
	// the window barrier — traces stay byte-identical to the serial
	// engine for any worker count. 0 or 1 (the default) is fully serial.
	// When the scenario admits no conservative lookahead window (an
	// unbounded-MaxSpeed mobility model, or stripes narrower than one
	// scan tick of head-on closing), the run silently falls back to the
	// serial ScanMode strategy; Result.Perf.ShardWindows == 0 is the
	// fallback signal.
	Workers int

	BufferBytes int64
	MessageSize int64
	// MessageSizeHi > 0 enables heterogeneous payloads: each message's
	// size is drawn uniformly from [MessageSize, MessageSizeHi] bytes.
	// 0 keeps the paper's fixed 0.5 MB payloads.
	MessageSizeHi int64
	TTL           float64 // s
	// One message is generated network-wide every Uniform[GenIntervalLo,
	// GenIntervalHi] seconds. GenIntervalLo <= 0 disables traffic (used by
	// the Fig. 3 intermeeting measurement).
	GenIntervalLo, GenIntervalHi float64
	InitialCopies                int

	PolicyName   string // see policy.ByName
	ProtocolName string // see routing.ProtocolByName

	ExpiryInterval float64 // TTL sweep period, s

	// PriorMeanIntermeeting seeds each node's λ estimator (pseudo-sample
	// mean and weight). Ignored when OracleRateMean > 0.
	PriorMeanIntermeeting float64
	PriorWeight           float64
	// GapLambdaEstimator selects the paper-literal intermeeting-gap
	// estimator instead of the default contact-census estimator (see
	// core.CensusEstimator for why the gap average is censored/biased at
	// this experiment scale). Ablation: ablation-lambda.
	GapLambdaEstimator bool
	// OracleRateMean > 0 gives every node a fixed true E(I) instead of the
	// distributed estimator (ablation).
	OracleRateMean float64

	// DisableDropList turns off the Fig. 5 gossip even for SDSRP
	// (ablation: d̂_i = 0 and no re-receipt rejection).
	DisableDropList bool

	// PreflightEviction is an ablation of the overflow semantics: when set,
	// receivers evaluate the eviction plan before any bytes move and refuse
	// transfers whose payload would be the victim, saving the bandwidth and
	// spray tokens that the paper's Algorithm 1 (receive first, drop after —
	// the default here) spends.
	PreflightEviction bool

	// Energy enables the per-node battery model when Capacity > 0: radios
	// drain while scanning and transferring, and a depleted node's radio
	// goes dark (extension; the paper models no energy constraints).
	Energy Energy

	// UseAcks enables the immunization extension (delivered-message ACKs
	// gossip and purge copies). The paper's model excludes it; extra-ack
	// measures its effect.
	UseAcks bool

	// Faults configures the deterministic fault-injection layer (radio
	// loss, link flapping, bandwidth jitter, node churn, adversarial
	// roles). The zero value disables it entirely; see internal/fault.
	Faults fault.Config

	// MaxEvents, when > 0, bounds the total number of engine events a run
	// may dispatch; the run stops with world.ErrBudgetExceeded once the
	// budget is exhausted. The cutoff depends only on the event stream, so
	// it is deterministic: the same scenario always stops at the same
	// event. 0 (the default) leaves the run unbounded. This is runaway
	// protection for sweeps and services, not a modeling knob.
	MaxEvents uint64

	// RecordIntermeeting enables the Fig. 3 sample recorder.
	RecordIntermeeting bool
	// RecordContacts logs every finished contact so the run can be exported
	// as a replayable contact trace (see ContactTraceFile).
	RecordContacts bool
}

// Energy parameterizes the battery model (joules and joules/second).
type Energy struct {
	Capacity   float64
	ScanPerSec float64
	TxPerSec   float64
	RxPerSec   float64
}

// Group is one homogeneous sub-population of a heterogeneous scenario.
type Group struct {
	// Name labels the group in diagnostics.
	Name  string
	Count int
	// Mobility for this group; Kind must be a synthetic model.
	Mobility Mobility
	// BufferBytes overrides the scenario buffer for this group when > 0.
	BufferBytes int64
	// Range overrides the scenario radio range for this group when > 0
	// (e.g. long-range fixed relays among short-range handhelds).
	Range float64
}

// RandomWaypoint returns the paper's Table II baseline scenario: 100
// pedestrian nodes at 2 m/s in a 4500 m × 3400 m area, 2.5 MB buffers,
// 0.5 MB messages every 25–35 s with 300 min TTL and L = 32 copies.
func RandomWaypoint() Scenario {
	return Scenario{
		Name:     "random-waypoint",
		Seed:     1,
		Duration: 18000,
		Nodes:    100,
		Area:     geo.NewRect(4500, 3400),
		Mobility: Mobility{
			Kind:    MobilityRWP,
			SpeedLo: 2, SpeedHi: 2,
			PauseLo: 0, PauseHi: 0,
		},
		Range:         100,
		Bandwidth:     31_250, // 250 kbit/s
		ScanInterval:  1,
		BufferBytes:   2*MB + MB/2,
		MessageSize:   MB / 2,
		TTL:           300 * 60,
		GenIntervalLo: 25, GenIntervalHi: 35,
		InitialCopies:         32,
		PolicyName:            "SDSRP",
		ProtocolName:          "spray-and-wait",
		ExpiryInterval:        60,
		PriorMeanIntermeeting: 20000,
		PriorWeight:           1,
	}
}

// EPFL returns the paper's Table III scenario backed by the synthetic taxi
// fleet (DESIGN.md §4): 200 taxis over the first 18 000 s, radio and
// traffic parameters identical to Table II.
func EPFL() Scenario {
	sc := RandomWaypoint()
	sc.Name = "epfl"
	sc.Nodes = 200
	sc.Mobility = Mobility{
		Kind:           MobilityTaxi,
		Taxi:           mobility.DefaultTaxiConfig(),
		SampleInterval: 30,
	}
	sc.Area = sc.Mobility.Taxi.Area
	sc.PriorMeanIntermeeting = 40000
	return sc
}

// Validate checks the scenario for inconsistencies that would make a run
// meaningless rather than merely slow.
func (s Scenario) Validate() error {
	var errs []error
	add := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if s.Duration <= 0 {
		add("duration %v must be positive", s.Duration)
	}
	if s.Nodes < 2 {
		add("need at least 2 nodes, got %d", s.Nodes)
	}
	if s.Range <= 0 {
		add("range %v must be positive", s.Range)
	}
	if s.Bandwidth <= 0 {
		add("bandwidth %v must be positive", s.Bandwidth)
	}
	if s.ScanInterval <= 0 {
		add("scan interval %v must be positive", s.ScanInterval)
	}
	switch s.ScanMode {
	case "", "lazy", "kinetic", "naive":
	default:
		add("scan mode %q unknown (want \"lazy\", \"kinetic\" or \"naive\")", s.ScanMode)
	}
	if s.CellSize != 0 && s.CellSize < s.Range {
		add("cell size %v must be 0 (auto) or >= range %v", s.CellSize, s.Range)
	}
	if s.Workers < 0 {
		add("workers %d must be non-negative (0 or 1 = serial)", s.Workers)
	}
	if s.MessageSize <= 0 {
		add("message size %d must be positive", s.MessageSize)
	}
	maxMsg := s.MessageSize
	if s.MessageSizeHi > 0 {
		if s.MessageSizeHi < s.MessageSize {
			add("message size range [%d,%d] inverted", s.MessageSize, s.MessageSizeHi)
		}
		maxMsg = s.MessageSizeHi
	}
	if s.BufferBytes < maxMsg {
		add("buffer %dB cannot hold even one %dB message", s.BufferBytes, maxMsg)
	}
	if s.TTL <= 0 {
		add("ttl %v must be positive", s.TTL)
	}
	if s.GenIntervalLo > 0 && s.GenIntervalHi < s.GenIntervalLo {
		add("generation interval [%v,%v] inverted", s.GenIntervalLo, s.GenIntervalHi)
	}
	if s.InitialCopies < 1 {
		add("initial copies %d must be >= 1", s.InitialCopies)
	}
	if s.ExpiryInterval <= 0 {
		add("expiry interval %v must be positive", s.ExpiryInterval)
	}
	if s.Warmup < 0 || s.Warmup >= s.Duration {
		add("warmup %v must be in [0, duration)", s.Warmup)
	}
	if s.Energy.Capacity > 0 &&
		s.Energy.ScanPerSec <= 0 && s.Energy.TxPerSec <= 0 && s.Energy.RxPerSec <= 0 {
		add("energy model enabled with no drain rates")
	}
	if s.Energy.Capacity < 0 || s.Energy.ScanPerSec < 0 || s.Energy.TxPerSec < 0 || s.Energy.RxPerSec < 0 {
		add("energy parameters must be non-negative")
	}
	groupNames := make([]string, 0, len(s.Groups))
	for _, g := range s.Groups {
		groupNames = append(groupNames, g.Name)
	}
	if err := s.Faults.Validate(groupNames); err != nil {
		errs = append(errs, err)
	}
	if s.ContactTraceFile != "" {
		return errors.Join(errs...) // mobility/area are unused
	}
	if len(s.Groups) > 0 {
		total := 0
		for i, g := range s.Groups {
			if g.Count <= 0 {
				add("group %d has count %d", i, g.Count)
			}
			total += g.Count
			switch g.Mobility.Kind {
			case MobilityRWP, MobilityRandomWalk, MobilityRandomDirection, MobilityStatic:
			default:
				add("group %d has unsupported mobility kind %q", i, g.Mobility.Kind)
			}
			if g.BufferBytes > 0 && g.BufferBytes < maxMsg {
				add("group %d buffer %dB cannot hold a %dB message", i, g.BufferBytes, maxMsg)
			}
			if s.CellSize != 0 && g.Range > s.CellSize {
				add("group %d range %v exceeds cell size %v", i, g.Range, s.CellSize)
			}
		}
		if total < 2 {
			add("groups hold %d nodes, need at least 2", total)
		}
		if s.Area.W() <= 0 || s.Area.H() <= 0 {
			add("area %v degenerate", s.Area)
		}
		return errors.Join(errs...)
	}
	switch s.Mobility.Kind {
	case MobilityRWP, MobilityRandomDirection:
		if s.Mobility.SpeedHi < s.Mobility.SpeedLo || s.Mobility.SpeedLo <= 0 {
			add("speed range [%v,%v] invalid", s.Mobility.SpeedLo, s.Mobility.SpeedHi)
		}
		if s.Area.W() <= 0 || s.Area.H() <= 0 {
			add("area %v degenerate", s.Area)
		}
	case MobilityRandomWalk:
		if s.Mobility.EpochDist <= 0 {
			add("random walk epoch distance must be positive")
		}
		if s.Mobility.SpeedLo <= 0 {
			add("speed must be positive")
		}
	case MobilityTaxi:
		if s.Mobility.SampleInterval <= 0 {
			add("taxi sample interval must be positive")
		}
		if s.Mobility.Taxi.Area.W() <= 0 {
			add("taxi area degenerate")
		}
	case MobilityTraceDir:
		if s.Mobility.TraceDir == "" {
			add("trace-dir mobility needs TraceDir")
		}
	case MobilityMapGrid:
		if s.Mobility.MapCols < 2 || s.Mobility.MapRows < 2 {
			add("map-grid needs at least 2x2 intersections")
		}
		if s.Mobility.MapSpacing <= 0 {
			add("map-grid spacing must be positive")
		}
		if s.Mobility.MapDropProb < 0 || s.Mobility.MapDropProb >= 1 {
			add("map-grid drop probability must be in [0,1)")
		}
		if s.Mobility.SpeedLo <= 0 || s.Mobility.SpeedHi < s.Mobility.SpeedLo {
			add("speed range [%v,%v] invalid", s.Mobility.SpeedLo, s.Mobility.SpeedHi)
		}
	case MobilityMapFile:
		if s.Mobility.MapFile == "" {
			add("map-file mobility needs MapFile")
		}
		if s.Mobility.SpeedLo <= 0 || s.Mobility.SpeedHi < s.Mobility.SpeedLo {
			add("speed range [%v,%v] invalid", s.Mobility.SpeedLo, s.Mobility.SpeedHi)
		}
	case MobilityONEFile:
		if s.Mobility.TraceFile == "" {
			add("one-trace mobility needs TraceFile")
		}
	default:
		add("unknown mobility kind %q", s.Mobility.Kind)
	}
	return errors.Join(errs...)
}
