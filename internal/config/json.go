package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// MarshalJSON output is the plain struct encoding; these helpers exist so
// command-line tools and test fixtures can persist scenarios.

// Save writes the scenario as indented JSON to path.
func Save(sc Scenario, path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// Load reads a scenario from a JSON file written by Save (or by hand).
// Unknown fields are rejected to catch typos; the result is validated.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Parse decodes a scenario from JSON bytes with strict field checking and
// validates it.
func Parse(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}
