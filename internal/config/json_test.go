package config

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	sc := EPFL()
	sc.Seed = 42
	sc.PolicyName = "SprayAndWait-O"
	if err := Save(sc, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.PolicyName != "SprayAndWait-O" || got.Nodes != sc.Nodes {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Mobility.Kind != MobilityTaxi {
		t.Fatalf("mobility kind = %v", got.Mobility.Kind)
	}
	if len(got.Mobility.Taxi.Hotspots) != len(sc.Mobility.Taxi.Hotspots) {
		t.Fatal("hotspots lost")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"Name":"x","Bufersize":5}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadRejectsInvalidScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "invalid.json")
	os.WriteFile(path, []byte(`{"Name":"x"}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseGarbage(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}
