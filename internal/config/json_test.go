package config

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sdsrp/internal/fault"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	sc := EPFL()
	sc.Seed = 42
	sc.PolicyName = "SprayAndWait-O"
	if err := Save(sc, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.PolicyName != "SprayAndWait-O" || got.Nodes != sc.Nodes {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Mobility.Kind != MobilityTaxi {
		t.Fatalf("mobility kind = %v", got.Mobility.Kind)
	}
	if len(got.Mobility.Taxi.Hotspots) != len(sc.Mobility.Taxi.Hotspots) {
		t.Fatal("hotspots lost")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"Name":"x","Bufersize":5}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadRejectsInvalidScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "invalid.json")
	os.WriteFile(path, []byte(`{"Name":"x"}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseGarbage(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestFaultsJSONRoundTrip: a scenario with every fault axis set survives
// Save/Load bit-exactly, and an invalid Faults section is rejected at Load
// time (not at Build time).
func TestFaultsJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faulted.json")
	sc := RandomWaypoint()
	sc.Faults = fault.Config{
		TransferLossProb:  0.1,
		LinkFlapMeanUp:    120,
		BandwidthJitterLo: 0.7,
		BandwidthJitterHi: 1.1,
		Churn:             fault.Churn{MeanUp: 3000, MeanDown: 300, WipeOnReboot: true},
		BlackHoleFraction: 0.05,
		SelfishFraction:   0.1,
	}
	if err := Save(sc, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Faults, sc.Faults) {
		t.Fatalf("faults round trip:\n got %+v\nwant %+v", got.Faults, sc.Faults)
	}

	sc.Faults.TransferLossProb = 1.5 // out of [0,1]
	if err := Save(sc, path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("invalid fault config accepted at load time")
	}
}

// FuzzScenarioJSON is the parser's safety property: Parse never panics, and
// any scenario it accepts re-marshals to JSON that parses back to the same
// scenario (no field is silently dropped or mangled).
func FuzzScenarioJSON(f *testing.F) {
	seed := func(sc Scenario) {
		data, err := json.Marshal(sc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	seed(RandomWaypoint())
	seed(EPFL())
	faulted := RandomWaypoint()
	faulted.Faults = fault.Config{
		TransferLossProb: 0.2,
		Churn:            fault.Churn{MeanUp: 1000, MeanDown: 100},
	}
	seed(faulted)
	f.Add(`{"Name":"x"}`)
	f.Add(`{"Faults":{"TransferLossProb":2}}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := Parse([]byte(in))
		if err != nil {
			return
		}
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		again, err := Parse(data)
		if err != nil {
			t.Fatalf("marshal of an accepted scenario does not re-parse: %v", err)
		}
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("round trip changed the scenario:\n got %+v\nwant %+v", again, sc)
		}
	})
}
