package policy

import (
	"fmt"

	"sdsrp/internal/core"
	"sdsrp/internal/msg"
	"sdsrp/internal/rng"
)

// FIFO is the paper's plain "Spray and Wait" buffer management: transmit the
// oldest-received message first and evict the oldest-received message on
// overflow (newcomers always win).
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "SprayAndWait" }

// SendScore implements Policy: older copies transmit first.
func (FIFO) SendScore(_ View, s *msg.Stored) float64 { return -s.ReceivedAt }

// DropScore implements Policy: older copies evict first.
func (FIFO) DropScore(_ View, s *msg.Stored) float64 { return s.ReceivedAt }

// TTLRatio is "Spray and Wait-O": priority is the ratio between the
// remaining TTL and the initial TTL. Fresh messages are transmitted first;
// messages about to expire are evicted first.
type TTLRatio struct{}

// Name implements Policy.
func (TTLRatio) Name() string { return "SprayAndWait-O" }

func ttlRatio(v View, s *msg.Stored) float64 {
	if s.M.TTL <= 0 {
		return 0
	}
	return s.M.Remaining(v.Now()) / s.M.TTL
}

// SendScore implements Policy.
func (TTLRatio) SendScore(v View, s *msg.Stored) float64 { return ttlRatio(v, s) }

// DropScore implements Policy.
func (TTLRatio) DropScore(v View, s *msg.Stored) float64 { return ttlRatio(v, s) }

// CopiesRatio is "Spray and Wait-C": priority is the ratio between the
// current copy count and the initial copy count. Token-rich messages are
// transmitted first; wait-phase messages are evicted first.
type CopiesRatio struct{}

// Name implements Policy.
func (CopiesRatio) Name() string { return "SprayAndWait-C" }

func copiesRatio(s *msg.Stored) float64 {
	if s.M.InitialCopies <= 0 {
		return 0
	}
	return float64(s.Copies) / float64(s.M.InitialCopies)
}

// SendScore implements Policy.
func (CopiesRatio) SendScore(_ View, s *msg.Stored) float64 { return copiesRatio(s) }

// DropScore implements Policy.
func (CopiesRatio) DropScore(_ View, s *msg.Stored) float64 { return copiesRatio(s) }

// SDSRP is the paper's strategy: both orders are driven by the Eq. 10
// utility, evaluated with the node's distributed estimates of m̂_i and n̂_i.
type SDSRP struct{}

// Name implements Policy.
func (SDSRP) Name() string { return "SDSRP" }

func sdsrpScore(v View, s *msg.Stored) float64 {
	lambda := v.Lambda()
	if lambda <= 0 {
		// No rate information yet: fall back to remaining-TTL ordering so
		// early-run behaviour is sane rather than arbitrary.
		return s.M.Remaining(v.Now()) * 1e-12
	}
	return core.Priority(v.SeenEstimate(s), v.LiveEstimate(s), s.Copies,
		s.M.Remaining(v.Now()), v.Nodes(), lambda)
}

// SendScore implements Policy.
func (SDSRP) SendScore(v View, s *msg.Stored) float64 { return sdsrpScore(v, s) }

// DropScore implements Policy.
func (SDSRP) DropScore(v View, s *msg.Stored) float64 { return sdsrpScore(v, s) }

// SDSRPTaylor is SDSRP with the Eq. 13 k-term Taylor approximation instead
// of the closed-form utility — the paper's reduced-computation variant.
type SDSRPTaylor struct {
	K int
}

// Name implements Policy.
func (p SDSRPTaylor) Name() string { return fmt.Sprintf("SDSRP-Taylor%d", p.K) }

func (p SDSRPTaylor) score(v View, s *msg.Stored) float64 {
	lambda := v.Lambda()
	if lambda <= 0 {
		return s.M.Remaining(v.Now()) * 1e-12
	}
	live := v.LiveEstimate(s)
	pT := core.ProbDelivered(v.SeenEstimate(s), v.Nodes())
	pR := core.ProbWillDeliver(live, s.Copies, s.M.Remaining(v.Now()), v.Nodes(), lambda)
	return core.TaylorPriority(pT, pR, live, p.K)
}

// SendScore implements Policy.
func (p SDSRPTaylor) SendScore(v View, s *msg.Stored) float64 { return p.score(v, s) }

// DropScore implements Policy.
func (p SDSRPTaylor) DropScore(v View, s *msg.Stored) float64 { return p.score(v, s) }

// OracleUtility is the GBSD-style upper bound: the Eq. 10 utility computed
// from the simulator's ground-truth m_i and n_i instead of the distributed
// estimates. Only meaningful with a View wired to the oracle.
type OracleUtility struct{}

// Name implements Policy.
func (OracleUtility) Name() string { return "OracleUtility" }

func oracleScore(v View, s *msg.Stored) float64 {
	lambda := v.Lambda()
	if lambda <= 0 {
		return s.M.Remaining(v.Now()) * 1e-12
	}
	return core.Priority(v.TrueSeen(s), v.TrueLive(s), s.Copies,
		s.M.Remaining(v.Now()), v.Nodes(), lambda)
}

// SendScore implements Policy.
func (OracleUtility) SendScore(v View, s *msg.Stored) float64 { return oracleScore(v, s) }

// DropScore implements Policy.
func (OracleUtility) DropScore(v View, s *msg.Stored) float64 { return oracleScore(v, s) }

// Random schedules and evicts uniformly at random (a common DTN baseline).
// Scores are drawn from a deterministic stream, so runs remain reproducible.
type Random struct {
	S *rng.Stream
}

// NewRandom returns a Random policy drawing from stream s.
func NewRandom(s *rng.Stream) Random { return Random{S: s} }

// Name implements Policy.
func (Random) Name() string { return "Random" }

// SendScore implements Policy.
func (r Random) SendScore(_ View, _ *msg.Stored) float64 { return r.S.Float64() }

// DropScore implements Policy.
func (r Random) DropScore(_ View, _ *msg.Stored) float64 { return r.S.Float64() }

// MOFO ("evict most forwarded first", Lindgren & Phanse) transmits in FIFO
// order but evicts the copy this node has forwarded most often, on the
// theory that it has already had its share of spreading.
type MOFO struct{}

// Name implements Policy.
func (MOFO) Name() string { return "MOFO" }

// SendScore implements Policy.
func (MOFO) SendScore(_ View, s *msg.Stored) float64 { return -s.ReceivedAt }

// DropScore implements Policy.
func (MOFO) DropScore(_ View, s *msg.Stored) float64 { return -float64(s.Forwarded) }

// LIFO evicts the newest-received message first (the newcomer loses unless
// something even newer is buffered) and transmits newest first.
type LIFO struct{}

// Name implements Policy.
func (LIFO) Name() string { return "LIFO" }

// SendScore implements Policy.
func (LIFO) SendScore(_ View, s *msg.Stored) float64 { return s.ReceivedAt }

// DropScore implements Policy.
func (LIFO) DropScore(_ View, s *msg.Stored) float64 { return -s.ReceivedAt }

// ByName returns the policy with the given name, using stream for policies
// that need randomness. Recognized names: SprayAndWait (FIFO), SprayAndWait-O,
// SprayAndWait-C, SDSRP, SDSRP-Taylor<k>, OracleUtility, Random, MOFO, LIFO.
func ByName(name string, stream *rng.Stream) (Policy, error) {
	switch name {
	case "SprayAndWait", "FIFO":
		return FIFO{}, nil
	case "SprayAndWait-O", "SWO":
		return TTLRatio{}, nil
	case "SprayAndWait-C", "SWC":
		return CopiesRatio{}, nil
	case "SDSRP":
		return SDSRP{}, nil
	case "OracleUtility":
		return OracleUtility{}, nil
	case "Random":
		return NewRandom(stream), nil
	case "MOFO":
		return MOFO{}, nil
	case "LIFO":
		return LIFO{}, nil
	case "Knapsack":
		return Knapsack{}, nil
	case "DropLargest":
		return DropLargest{}, nil
	}
	var k int
	if n, _ := fmt.Sscanf(name, "SDSRP-Taylor%d", &k); n == 1 && k >= 1 {
		return SDSRPTaylor{K: k}, nil
	}
	if p, ok := fromRegistry(name, stream); ok {
		return p, nil
	}
	return nil, fmt.Errorf("policy: unknown strategy %q", name)
}
