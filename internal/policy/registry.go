package policy

import (
	"fmt"
	//lint:invariant the mutex only serializes Register calls made before any run starts; no lock is taken on the sim path once factories are frozen
	"sync"

	"sdsrp/internal/rng"
)

// Factory builds a policy instance; stream supplies deterministic
// randomness for policies that need it and may be ignored.
type Factory func(stream *rng.Stream) Policy

// The registry is the one deliberate piece of package state on the engine
// path: user policies register once, at program start, before any world is
// built. During a run every access is a read (ByName at construction), so
// shards can never observe a mutation — the event stream is independent of
// it. Registration mid-run would be a caller bug, not a determinism leak.
var (
	//lint:invariant write-once before any run; read-only at construction time, never on the event path
	registryMu sync.RWMutex
	//lint:invariant write-once before any run; read-only at construction time, never on the event path
	registry = map[string]Factory{}
)

// Register makes a user-defined policy constructible through ByName (and
// therefore usable from config.Scenario.PolicyName). Built-in names cannot
// be overridden; registering the same name twice is an error.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("policy: Register needs a name and a factory")
	}
	if isBuiltin(name) {
		return fmt.Errorf("policy: %q is a built-in strategy", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("policy: %q already registered", name)
	}
	registry[name] = f
	return nil
}

func isBuiltin(name string) bool {
	switch name {
	case "SprayAndWait", "FIFO", "SprayAndWait-O", "SWO", "SprayAndWait-C", "SWC",
		"SDSRP", "OracleUtility", "Random", "MOFO", "LIFO", "Knapsack", "DropLargest":
		return true
	}
	var k int
	n, _ := fmt.Sscanf(name, "SDSRP-Taylor%d", &k)
	return n == 1
}

func fromRegistry(name string, stream *rng.Stream) (Policy, bool) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, false
	}
	return f(stream), true
}
