package policy

import (
	"sdsrp/internal/core"
	"sdsrp/internal/msg"
)

// Knapsack is the size-aware variant of SDSRP in the spirit of the
// authors' follow-up knapsack formulation (EWSN 2015, reference [11] of
// the paper): with heterogeneous payloads, buffer space is the knapsack
// capacity and each message's value is its Eq. 10 marginal delivery
// utility, so the score is utility per byte. With uniform payloads it
// orders identically to SDSRP.
type Knapsack struct{}

// Name implements Policy.
func (Knapsack) Name() string { return "Knapsack" }

func knapsackScore(v View, s *msg.Stored) float64 {
	lambda := v.Lambda()
	if lambda <= 0 {
		return s.M.Remaining(v.Now()) * 1e-12
	}
	u := core.Priority(v.SeenEstimate(s), v.LiveEstimate(s), s.Copies,
		s.M.Remaining(v.Now()), v.Nodes(), lambda)
	return u / float64(s.M.Size)
}

// SendScore implements Policy.
func (Knapsack) SendScore(v View, s *msg.Stored) float64 { return knapsackScore(v, s) }

// DropScore implements Policy.
func (Knapsack) DropScore(v View, s *msg.Stored) float64 { return knapsackScore(v, s) }

// DropLargest evicts the biggest message first ("DLA" in the DTN buffer
// management literature): one eviction frees the most space. Transmission
// order is smallest-first, squeezing more messages through short contacts.
type DropLargest struct{}

// Name implements Policy.
func (DropLargest) Name() string { return "DropLargest" }

// SendScore implements Policy: smaller messages first (higher score).
func (DropLargest) SendScore(_ View, s *msg.Stored) float64 { return -float64(s.M.Size) }

// DropScore implements Policy: larger messages evicted first (lower score).
func (DropLargest) DropScore(_ View, s *msg.Stored) float64 { return -float64(s.M.Size) }
