package policy

import (
	"testing"

	"sdsrp/internal/msg"
	"sdsrp/internal/rng"
)

type constPolicy struct{ v float64 }

func (p constPolicy) Name() string                            { return "Const" }
func (p constPolicy) SendScore(View, *msg.Stored) float64     { return p.v }
func (p constPolicy) DropScore(v View, s *msg.Stored) float64 { return p.v }

func TestRegisterAndResolve(t *testing.T) {
	if err := Register("TestConst", func(*rng.Stream) Policy { return constPolicy{v: 7} }); err != nil {
		t.Fatal(err)
	}
	p, err := ByName("TestConst", rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.SendScore(nil, nil) != 7 {
		t.Fatal("registered policy not constructed")
	}
}

func TestRegisterRejectsBuiltinsAndDuplicates(t *testing.T) {
	if err := Register("SDSRP", func(*rng.Stream) Policy { return constPolicy{} }); err == nil {
		t.Fatal("built-in name overridden")
	}
	if err := Register("SDSRP-Taylor9", func(*rng.Stream) Policy { return constPolicy{} }); err == nil {
		t.Fatal("built-in Taylor pattern overridden")
	}
	if err := Register("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	if err := Register("TestDup", func(*rng.Stream) Policy { return constPolicy{} }); err != nil {
		t.Fatal(err)
	}
	if err := Register("TestDup", func(*rng.Stream) Policy { return constPolicy{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
