package policy

import (
	"testing"

	"sdsrp/internal/buffer"
	"sdsrp/internal/core"
	"sdsrp/internal/msg"
	"sdsrp/internal/rng"
)

// fakeView is a minimal policy.View with fixed estimates per message id.
type fakeView struct {
	now    float64
	nodes  int
	lambda float64
	seen   map[msg.ID]float64
	live   map[msg.ID]float64
}

func (f *fakeView) Now() float64    { return f.now }
func (f *fakeView) Nodes() int      { return f.nodes }
func (f *fakeView) Lambda() float64 { return f.lambda }
func (f *fakeView) EIMin() float64 {
	if f.lambda == 0 {
		return 0
	}
	return 1 / (f.lambda * float64(f.nodes-1))
}
func (f *fakeView) SeenEstimate(s *msg.Stored) float64 { return f.seen[s.M.ID] }
func (f *fakeView) LiveEstimate(s *msg.Stored) float64 {
	if v, ok := f.live[s.M.ID]; ok {
		return v
	}
	return 1
}
func (f *fakeView) TrueSeen(s *msg.Stored) float64 { return f.SeenEstimate(s) }
func (f *fakeView) TrueLive(s *msg.Stored) float64 { return f.LiveEstimate(s) }

func defaultView() *fakeView {
	return &fakeView{now: 1000, nodes: 100, lambda: 1.0 / 1200,
		seen: map[msg.ID]float64{}, live: map[msg.ID]float64{}}
}

func stored(id msg.ID, received float64, copies, initial int, created, ttl float64) *msg.Stored {
	m := &msg.Message{ID: id, Size: 100, Created: created, TTL: ttl, InitialCopies: initial}
	return &msg.Stored{M: m, Copies: copies, ReceivedAt: received}
}

func ids(items []*msg.Stored) []msg.ID {
	out := make([]msg.ID, len(items))
	for i, s := range items {
		out[i] = s.M.ID
	}
	return out
}

func wantIDs(t *testing.T, got []*msg.Stored, want ...msg.ID) {
	t.Helper()
	g := ids(got)
	if len(g) != len(want) {
		t.Fatalf("got %v, want %v", g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("got %v, want %v", g, want)
		}
	}
}

func TestFIFOSendOrder(t *testing.T) {
	v := defaultView()
	items := []*msg.Stored{
		stored(1, 300, 4, 16, 0, 18000),
		stored(2, 100, 4, 16, 0, 18000),
		stored(3, 200, 4, 16, 0, 18000),
	}
	wantIDs(t, SendOrder(FIFO{}, v, items), 2, 3, 1)
}

func TestTTLRatioSendOrder(t *testing.T) {
	v := defaultView()
	items := []*msg.Stored{
		stored(1, 0, 4, 16, 0, 2000),   // remaining 1000/2000 = 0.5
		stored(2, 0, 4, 16, 900, 2000), // remaining 1900/2000 = 0.95
		stored(3, 0, 4, 16, 0, 1100),   // remaining 100/1100 ≈ 0.09
	}
	wantIDs(t, SendOrder(TTLRatio{}, v, items), 2, 1, 3)
}

func TestCopiesRatioSendOrder(t *testing.T) {
	v := defaultView()
	items := []*msg.Stored{
		stored(1, 0, 1, 16, 0, 18000),  // 1/16
		stored(2, 0, 16, 16, 0, 18000), // 1
		stored(3, 0, 4, 8, 0, 18000),   // 0.5
	}
	wantIDs(t, SendOrder(CopiesRatio{}, v, items), 2, 3, 1)
}

func TestSDSRPSendOrderPrefersUnspread(t *testing.T) {
	v := defaultView()
	// Same copies/TTL; message 2 is known to be far more spread.
	v.seen[1], v.live[1] = 2, 2
	v.seen[2], v.live[2] = 80, 40
	items := []*msg.Stored{
		stored(1, 0, 8, 16, 0, 18000),
		stored(2, 0, 8, 16, 0, 18000),
	}
	wantIDs(t, SendOrder(SDSRP{}, v, items), 1, 2)
}

func TestSDSRPNoLambdaFallsBackToTTL(t *testing.T) {
	v := defaultView()
	v.lambda = 0
	items := []*msg.Stored{
		stored(1, 0, 8, 16, 0, 2000),  // dies at 2000, now=1000
		stored(2, 0, 8, 16, 0, 18000), // dies much later
	}
	wantIDs(t, SendOrder(SDSRP{}, v, items), 2, 1)
}

func TestSendOrderDeterministicTies(t *testing.T) {
	v := defaultView()
	items := []*msg.Stored{
		stored(3, 100, 4, 16, 0, 18000),
		stored(1, 100, 4, 16, 0, 18000),
		stored(2, 100, 4, 16, 0, 18000),
	}
	wantIDs(t, SendOrder(FIFO{}, v, items), 1, 2, 3)
}

func TestSendOrderDoesNotMutateInput(t *testing.T) {
	v := defaultView()
	items := []*msg.Stored{
		stored(1, 300, 4, 16, 0, 18000),
		stored(2, 100, 4, 16, 0, 18000),
	}
	SendOrder(FIFO{}, v, items)
	if items[0].M.ID != 1 || items[1].M.ID != 2 {
		t.Fatal("SendOrder reordered the caller's slice")
	}
}

func fillBuffer(t *testing.T, entries ...*msg.Stored) *buffer.Buffer {
	t.Helper()
	var total int64
	for _, e := range entries {
		total += e.M.Size
	}
	b := buffer.New(total) // exactly full
	for _, e := range entries {
		if err := b.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestPlanEvictionFitsWithoutVictims(t *testing.T) {
	v := defaultView()
	b := buffer.New(1000)
	b.Add(stored(1, 0, 4, 16, 0, 18000))
	victims, ok := PlanEviction(FIFO{}, v, b, stored(2, 1000, 4, 16, 0, 18000))
	if !ok || len(victims) != 0 {
		t.Fatalf("fit case: victims=%v ok=%v", ids(victims), ok)
	}
}

func TestPlanEvictionFIFOEvictsOldest(t *testing.T) {
	v := defaultView()
	b := fillBuffer(t,
		stored(1, 100, 4, 16, 0, 18000),
		stored(2, 50, 4, 16, 0, 18000),
		stored(3, 200, 4, 16, 0, 18000),
	)
	victims, ok := PlanEviction(FIFO{}, v, b, stored(4, 1000, 4, 16, 0, 18000))
	if !ok {
		t.Fatal("FIFO rejected a newcomer")
	}
	wantIDs(t, victims, 2)
}

func TestPlanEvictionRejectsWeakNewcomer(t *testing.T) {
	v := defaultView()
	// SW-O: newcomer nearly expired, buffered messages fresh -> reject.
	b := fillBuffer(t,
		stored(1, 0, 4, 16, 900, 18000),
		stored(2, 0, 4, 16, 950, 18000),
	)
	in := stored(3, 1000, 4, 16, 0, 1001) // remaining 1/1001
	victims, ok := PlanEviction(TTLRatio{}, v, b, in)
	if ok || victims != nil {
		t.Fatalf("weak newcomer accepted: victims=%v", ids(victims))
	}
}

func TestPlanEvictionMultipleVictims(t *testing.T) {
	v := defaultView()
	small1 := stored(1, 10, 4, 16, 0, 18000)
	small2 := stored(2, 20, 4, 16, 0, 18000)
	big := &msg.Stored{M: &msg.Message{ID: 3, Size: 200, Created: 0, TTL: 18000, InitialCopies: 16}, Copies: 4, ReceivedAt: 900}
	b := fillBuffer(t, small1, small2) // capacity 200, full
	victims, ok := PlanEviction(FIFO{}, v, b, big)
	if !ok {
		t.Fatal("big newcomer rejected despite evictable victims")
	}
	wantIDs(t, victims, 1, 2)
}

func TestPlanEvictionStopsEarly(t *testing.T) {
	v := defaultView()
	b := buffer.New(250)
	b.Add(stored(1, 10, 4, 16, 0, 18000))
	b.Add(stored(2, 20, 4, 16, 0, 18000)) // used 200, free 50
	victims, ok := PlanEviction(FIFO{}, v, b, stored(3, 900, 4, 16, 0, 18000))
	if !ok {
		t.Fatal("rejected")
	}
	wantIDs(t, victims, 1) // one eviction suffices (100 freed + 50 free)
}

func TestPlanEvictionOversizedMessage(t *testing.T) {
	v := defaultView()
	b := buffer.New(150)
	in := &msg.Stored{M: &msg.Message{ID: 1, Size: 151, TTL: 10}, Copies: 1}
	if _, ok := PlanEviction(FIFO{}, v, b, in); ok {
		t.Fatal("message larger than capacity accepted")
	}
}

func TestPlanEvictionPartialRejection(t *testing.T) {
	// The newcomer outranks one victim but not the next: rejection, and no
	// victims reported (nothing should be dropped for a refused message).
	v := defaultView()
	b := fillBuffer(t,
		stored(1, 0, 4, 16, 500, 18000), // ratio (18000-500)/18000
		stored(2, 0, 4, 16, 990, 18000), // fresher
	)
	in := &msg.Stored{M: &msg.Message{ID: 3, Size: 200, Created: 800, TTL: 18000, InitialCopies: 16}, Copies: 4, ReceivedAt: 1000}
	victims, ok := PlanEviction(TTLRatio{}, v, b, in)
	if ok {
		t.Fatal("accepted though the second victim outranks the newcomer")
	}
	if victims != nil {
		t.Fatalf("rejection must not name victims, got %v", ids(victims))
	}
}

func TestMOFODropsMostForwarded(t *testing.T) {
	v := defaultView()
	a := stored(1, 10, 4, 16, 0, 18000)
	a.Forwarded = 5
	bb := stored(2, 20, 4, 16, 0, 18000)
	bb.Forwarded = 1
	b := fillBuffer(t, a, bb)
	victims, ok := PlanEviction(MOFO{}, v, b, stored(3, 900, 4, 16, 0, 18000))
	if !ok {
		t.Fatal("rejected")
	}
	wantIDs(t, victims, 1)
}

func TestLIFOEvictsNewest(t *testing.T) {
	v := defaultView()
	b := fillBuffer(t,
		stored(1, 10, 4, 16, 0, 18000),
		stored(2, 500, 4, 16, 0, 18000),
	)
	// Newcomer received now (newest of all): it is the weakest -> rejected.
	if _, ok := PlanEviction(LIFO{}, v, b, stored(3, 1000, 4, 16, 0, 18000)); ok {
		t.Fatal("LIFO accepted the newest message")
	}
}

func TestRandomPolicyDeterministicStream(t *testing.T) {
	v := defaultView()
	items := []*msg.Stored{
		stored(1, 0, 4, 16, 0, 18000),
		stored(2, 0, 4, 16, 0, 18000),
		stored(3, 0, 4, 16, 0, 18000),
	}
	a := SendOrder(NewRandom(rng.New(5)), v, items)
	b := SendOrder(NewRandom(rng.New(5)), v, items)
	for i := range a {
		if a[i].M.ID != b[i].M.ID {
			t.Fatal("Random policy not reproducible from equal seeds")
		}
	}
}

func TestOracleUtilityUsesTruth(t *testing.T) {
	v := defaultView()
	v.seen[1], v.live[1] = 0, 1 // estimates say unspread
	// fakeView's TrueSeen == SeenEstimate, so Oracle and SDSRP agree here.
	s := stored(1, 0, 8, 16, 0, 18000)
	if (OracleUtility{}).SendScore(v, s) != (SDSRP{}).SendScore(v, s) {
		t.Fatal("oracle and estimate disagree on identical inputs")
	}
}

func TestSDSRPTaylorApproachesSDSRP(t *testing.T) {
	v := defaultView()
	v.seen[1], v.live[1] = 10, 5
	s := stored(1, 0, 8, 16, 0, 18000)
	exact := SDSRP{}.SendScore(v, s)
	k1 := SDSRPTaylor{K: 1}.SendScore(v, s)
	k8 := SDSRPTaylor{K: 8}.SendScore(v, s)
	k64 := SDSRPTaylor{K: 64}.SendScore(v, s)
	if !(abs(k64-exact) <= abs(k8-exact) && abs(k8-exact) <= abs(k1-exact)) {
		t.Fatalf("Taylor error not shrinking: k1=%v k8=%v k64=%v exact=%v", k1, k8, k64, exact)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestByName(t *testing.T) {
	stream := rng.New(1)
	for _, name := range []string{"SprayAndWait", "SprayAndWait-O", "SprayAndWait-C",
		"SDSRP", "OracleUtility", "Random", "MOFO", "LIFO", "SDSRP-Taylor3"} {
		p, err := ByName(name, stream)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("ByName(%q) returned unnamed policy", name)
		}
	}
	if _, err := ByName("Bogus", stream); err == nil {
		t.Fatal("unknown name accepted")
	}
	if p, err := ByName("SDSRP-Taylor3", stream); err != nil || p.Name() != "SDSRP-Taylor3" {
		t.Fatalf("Taylor parse wrong: %v %v", p, err)
	}
}

// The priority inversion at the heart of the paper (Fig. 2) must flow
// through the policy layer: with SDSRP the scarce, urgent message outranks
// the widely-spread one even though SW-O and SW-C both rank it last.
func TestSDSRPDisagreesWithHeuristics(t *testing.T) {
	v := defaultView()
	v.seen[1], v.live[1] = 60, 40
	v.seen[2], v.live[2] = 4, 3
	spread := stored(1, 0, 16, 64, 0, 18000) // high copies & TTL, widely seen
	scarce := stored(2, 0, 2, 64, 0, 3500)   // few copies, short TTL, barely seen
	items := []*msg.Stored{spread, scarce}

	wantIDs(t, SendOrder(SDSRP{}, v, items), 2, 1)
	wantIDs(t, SendOrder(TTLRatio{}, v, items), 1, 2)
	wantIDs(t, SendOrder(CopiesRatio{}, v, items), 1, 2)
	_ = core.PeakPR // documents why: the spread message sits past the peak
}

func BenchmarkSendOrder(b *testing.B) {
	v := defaultView()
	var items []*msg.Stored
	for i := 0; i < 8; i++ {
		items = append(items, stored(msg.ID(i+1), float64(i*100), 1+i%16, 32, 0, 18000))
		v.seen[msg.ID(i+1)] = float64(i * 5)
		v.live[msg.ID(i+1)] = float64(1 + i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SendOrder(SDSRP{}, v, items)
	}
}

func BenchmarkPlanEviction(b *testing.B) {
	v := defaultView()
	buf := buffer.New(800)
	for i := 0; i < 8; i++ {
		buf.Add(stored(msg.ID(i+1), float64(i*100), 1+i%16, 32, 0, 18000))
	}
	incoming := stored(99, 1000, 8, 32, 500, 18000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PlanEviction(SDSRP{}, v, buf, incoming)
	}
}
