// Package policy implements buffer-management strategies: the scheduling
// order (which message to transmit first during a contact) and the drop
// order (which message to evict on overflow).
//
// The paper compares four strategies on top of binary Spray-and-Wait:
//
//   - FIFO ("Spray and Wait"): send oldest-received first, evict
//     oldest-received first; newcomers are always accepted.
//   - SW-O ("Spray and Wait-O"): priority = remaining TTL / initial TTL.
//   - SW-C ("Spray and Wait-C"): priority = current copies / initial copies.
//   - SDSRP: priority = Eq. 10 utility from internal/core.
//
// Additional strategies (Random, MOFO, LIFO, OracleUtility, SDSRP-Taylor)
// support the ablations listed in DESIGN.md §8.
//
// # Performance contract
//
// Ordering happens on every contact (send scheduling) and on every buffer
// overflow (eviction planning), which makes it a simulator hot path: see
// PERFORMANCE.md. Hot callers hold an Orderer — a reusable scratch space for
// the (message, score) ranking — so steady-state ordering is allocation-free.
// Scores are always computed in input order before sorting, and ties always
// break on ascending message ID, so the reusable path draws RNG and ranks
// byte-identically to the throwaway SendOrder/PlanEviction convenience
// functions.
//lint:shard-safe the write-once policy registry is the single annotated package state; runtime state lives in per-run Orderer scratch
package policy

import (
	"sort"

	"sdsrp/internal/buffer"
	"sdsrp/internal/msg"
)

// View exposes the per-node state a policy may consult when scoring a
// message. It is implemented by the routing host.
type View interface {
	// Now is the current simulation time.
	Now() float64
	// Nodes is N, the network size.
	Nodes() int
	// Lambda is the node's current intermeeting-rate estimate (may be 0
	// early in a run).
	Lambda() float64
	// EIMin is the estimated minimum-intermeeting expectation E(I_min).
	EIMin() float64
	// SeenEstimate returns m̂_i for the copy (SDSRP's Eq. 15 estimator).
	SeenEstimate(s *msg.Stored) float64
	// LiveEstimate returns n̂_i for the copy (Eq. 14).
	LiveEstimate(s *msg.Stored) float64
	// TrueSeen returns the simulator's ground-truth m_i, for oracle
	// ablation policies. Implementations without oracle access return
	// SeenEstimate.
	TrueSeen(s *msg.Stored) float64
	// TrueLive returns the ground-truth n_i.
	TrueLive(s *msg.Stored) float64
}

// Policy scores messages. Both scores are "higher is better": the highest
// SendScore is transmitted first; the lowest DropScore is evicted first.
type Policy interface {
	Name() string
	SendScore(v View, s *msg.Stored) float64
	DropScore(v View, s *msg.Stored) float64
}

// Orderer computes send and eviction orders using reusable scratch buffers,
// so a host's per-contact scheduling is allocation-free at steady state.
// Slices returned by its methods alias the scratch space and are valid only
// until the next call on the same Orderer; each host owns one and uses the
// results within a single event. The zero value is ready to use. Not safe
// for concurrent use.
type Orderer struct {
	send    ranking
	evict   ranking
	victims []*msg.Stored
}

// ranking is a sortable (message, score) column pair. Holding it as an
// addressable field lets sort.Stable take an interface value without
// allocating a closure per call.
type ranking struct {
	items  []*msg.Stored
	scores []float64
	// desc selects descending score order (send ranking); ascending is the
	// eviction ranking. Ties always break on ascending message ID.
	desc bool
}

func (r *ranking) Len() int { return len(r.items) }

func (r *ranking) Less(i, j int) bool {
	si, sj := r.scores[i], r.scores[j]
	//lint:ignore float-eq bitwise tie-break: only exactly equal scores fall through to the ID order
	if si != sj {
		if r.desc {
			return si > sj
		}
		return si < sj
	}
	return r.items[i].M.ID < r.items[j].M.ID
}

func (r *ranking) Swap(i, j int) {
	r.items[i], r.items[j] = r.items[j], r.items[i]
	r.scores[i], r.scores[j] = r.scores[j], r.scores[i]
}

// rank loads the items and their scores (computed in input order, which
// matters for stateful policies like Random) and sorts them.
//
// Performance contract: copies into reused scratch slices in place and
// sorts through the pointer receiver (no interface boxing of values);
// warm, rank allocates nothing.
func (r *ranking) rank(p Policy, v View, items []*msg.Stored, score func(Policy, View, *msg.Stored) float64) {
	r.items = append(r.items[:0], items...)
	r.scores = r.scores[:0]
	for _, s := range items {
		r.scores = append(r.scores, score(p, v, s))
	}
	sort.Stable(r)
}

func sendScore(p Policy, v View, s *msg.Stored) float64 { return p.SendScore(v, s) }
func dropScore(p Policy, v View, s *msg.Stored) float64 { return p.DropScore(v, s) }

// SendOrder returns the buffered copies sorted into transmission order
// (first element = next to send). The sort is deterministic: ties break on
// message ID. The input slice is not modified; the returned slice is
// scratch space valid until the next call.
//
// Performance contract: ranks into the Orderer's reused scratch space;
// warm, SendOrder allocates nothing.
func (o *Orderer) SendOrder(p Policy, v View, items []*msg.Stored) []*msg.Stored {
	o.send.desc = true
	o.send.rank(p, v, items, sendScore)
	return o.send.items
}

// SendOrder is the convenience form using a throwaway Orderer. Hot paths
// hold an Orderer and call its method instead.
func SendOrder(p Policy, v View, items []*msg.Stored) []*msg.Stored {
	var o Orderer
	return o.SendOrder(p, v, items)
}

// PlanEviction decides whether incoming can be stored in buf, evicting
// lower-scored victims if needed. It mirrors Algorithm 1 of the paper
// generalized to heterogeneous sizes: repeatedly compare the lowest
// DropScore among the buffered messages against the newcomer's; if the
// newcomer is the weakest, reject it; otherwise evict the weakest and
// retry. Victims are returned in eviction order; accept reports whether
// incoming fits after those evictions. buf is not modified.
//
// Performance contract: ranks and collects victims in the Orderer's reused
// scratch space; warm, PlanEviction allocates nothing.
func (o *Orderer) PlanEviction(p Policy, v View, buf *buffer.Buffer, incoming *msg.Stored) (victims []*msg.Stored, accept bool) {
	if incoming.M.Size > buf.Capacity() {
		return nil, false
	}
	free := buf.Free()
	if incoming.M.Size <= free {
		return nil, true
	}
	// Ascending score: weakest first; ties break on ID for determinism.
	o.evict.desc = false
	o.evict.rank(p, v, buf.Items(), dropScore)
	inScore := p.DropScore(v, incoming)
	victims = o.victims[:0]
	for i, s := range o.evict.items {
		if free >= incoming.M.Size {
			break
		}
		if !weakerThanIncoming(o.evict.scores[i], inScore, s.M.ID, incoming.M.ID) {
			// The weakest survivor outranks the newcomer: reject.
			return nil, false
		}
		victims = append(victims, s)
		free += s.M.Size
	}
	o.victims = victims
	return victims, free >= incoming.M.Size
}

// PlanEviction is the convenience form using a throwaway Orderer.
func PlanEviction(p Policy, v View, buf *buffer.Buffer, incoming *msg.Stored) ([]*msg.Stored, bool) {
	var o Orderer
	return o.PlanEviction(p, v, buf, incoming)
}

// weakerThanIncoming applies the same ordering as the eviction sort, so the
// newcomer takes its place in the ranking rather than winning ties.
func weakerThanIncoming(score, inScore float64, id, inID msg.ID) bool {
	//lint:ignore float-eq bitwise tie-break: must rank exactly like the eviction sort above or Algorithm 1 loops
	if score != inScore {
		return score < inScore
	}
	return id < inID
}
