// Package policy implements buffer-management strategies: the scheduling
// order (which message to transmit first during a contact) and the drop
// order (which message to evict on overflow).
//
// The paper compares four strategies on top of binary Spray-and-Wait:
//
//   - FIFO ("Spray and Wait"): send oldest-received first, evict
//     oldest-received first; newcomers are always accepted.
//   - SW-O ("Spray and Wait-O"): priority = remaining TTL / initial TTL.
//   - SW-C ("Spray and Wait-C"): priority = current copies / initial copies.
//   - SDSRP: priority = Eq. 10 utility from internal/core.
//
// Additional strategies (Random, MOFO, LIFO, OracleUtility, SDSRP-Taylor)
// support the ablations listed in DESIGN.md §8.
package policy

import (
	"sort"

	"sdsrp/internal/buffer"
	"sdsrp/internal/msg"
)

// View exposes the per-node state a policy may consult when scoring a
// message. It is implemented by the routing host.
type View interface {
	// Now is the current simulation time.
	Now() float64
	// Nodes is N, the network size.
	Nodes() int
	// Lambda is the node's current intermeeting-rate estimate (may be 0
	// early in a run).
	Lambda() float64
	// EIMin is the estimated minimum-intermeeting expectation E(I_min).
	EIMin() float64
	// SeenEstimate returns m̂_i for the copy (SDSRP's Eq. 15 estimator).
	SeenEstimate(s *msg.Stored) float64
	// LiveEstimate returns n̂_i for the copy (Eq. 14).
	LiveEstimate(s *msg.Stored) float64
	// TrueSeen returns the simulator's ground-truth m_i, for oracle
	// ablation policies. Implementations without oracle access return
	// SeenEstimate.
	TrueSeen(s *msg.Stored) float64
	// TrueLive returns the ground-truth n_i.
	TrueLive(s *msg.Stored) float64
}

// Policy scores messages. Both scores are "higher is better": the highest
// SendScore is transmitted first; the lowest DropScore is evicted first.
type Policy interface {
	Name() string
	SendScore(v View, s *msg.Stored) float64
	DropScore(v View, s *msg.Stored) float64
}

// SendOrder returns the buffered copies sorted into transmission order
// (first element = next to send). The sort is deterministic: ties break on
// message ID. The input slice is not modified.
func SendOrder(p Policy, v View, items []*msg.Stored) []*msg.Stored {
	out := append([]*msg.Stored(nil), items...)
	scores := make(map[msg.ID]float64, len(out))
	for _, s := range out {
		scores[s.M.ID] = p.SendScore(v, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := scores[out[i].M.ID], scores[out[j].M.ID]
		//lint:ignore float-eq bitwise tie-break: only exactly equal scores fall through to the ID order
		if si != sj {
			return si > sj
		}
		return out[i].M.ID < out[j].M.ID
	})
	return out
}

// PlanEviction decides whether incoming can be stored in buf, evicting
// lower-scored victims if needed. It mirrors Algorithm 1 of the paper
// generalized to heterogeneous sizes: repeatedly compare the lowest
// DropScore among the buffered messages against the newcomer's; if the
// newcomer is the weakest, reject it; otherwise evict the weakest and
// retry. Victims are returned in eviction order; accept reports whether
// incoming fits after those evictions. buf is not modified.
func PlanEviction(p Policy, v View, buf *buffer.Buffer, incoming *msg.Stored) (victims []*msg.Stored, accept bool) {
	if incoming.M.Size > buf.Capacity() {
		return nil, false
	}
	free := buf.Free()
	if incoming.M.Size <= free {
		return nil, true
	}
	type scored struct {
		s     *msg.Stored
		score float64
	}
	cands := make([]scored, 0, buf.Len())
	for _, s := range buf.Items() {
		cands = append(cands, scored{s, p.DropScore(v, s)})
	}
	// Ascending score: weakest first; ties break on ID for determinism.
	sort.SliceStable(cands, func(i, j int) bool {
		//lint:ignore float-eq bitwise tie-break: only exactly equal scores fall through to the ID order
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].s.M.ID < cands[j].s.M.ID
	})
	inScore := p.DropScore(v, incoming)
	for _, c := range cands {
		if free >= incoming.M.Size {
			break
		}
		if !weakerThanIncoming(c.score, inScore, c.s.M.ID, incoming.M.ID) {
			// The weakest survivor outranks the newcomer: reject.
			return nil, false
		}
		victims = append(victims, c.s)
		free += c.s.M.Size
	}
	return victims, free >= incoming.M.Size
}

// weakerThanIncoming applies the same ordering as the eviction sort, so the
// newcomer takes its place in the ranking rather than winning ties.
func weakerThanIncoming(score, inScore float64, id, inID msg.ID) bool {
	//lint:ignore float-eq bitwise tie-break: must rank exactly like the eviction sort above or Algorithm 1 loops
	if score != inScore {
		return score < inScore
	}
	return id < inID
}
