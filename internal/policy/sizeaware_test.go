package policy

import (
	"testing"

	"sdsrp/internal/buffer"
	"sdsrp/internal/msg"
	"sdsrp/internal/rng"
)

func sized(id msg.ID, size int64, received float64) *msg.Stored {
	m := &msg.Message{ID: id, Size: size, Created: 0, TTL: 18000, InitialCopies: 16}
	return &msg.Stored{M: m, Copies: 4, ReceivedAt: received}
}

func TestDropLargestOrdering(t *testing.T) {
	v := defaultView()
	items := []*msg.Stored{
		sized(1, 900, 0),
		sized(2, 100, 0),
		sized(3, 500, 0),
	}
	// Smallest transmits first.
	wantIDs(t, SendOrder(DropLargest{}, v, items), 2, 3, 1)
	// Largest evicted first.
	b := buffer.New(1500)
	for _, s := range items {
		if err := b.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	victims, ok := PlanEviction(DropLargest{}, v, b, sized(4, 200, 1000))
	if !ok {
		t.Fatal("rejected")
	}
	wantIDs(t, victims, 1)
}

func TestKnapsackPrefersDenseUtility(t *testing.T) {
	v := defaultView()
	// Same spread state; message 2 is four times smaller, so its utility
	// density is higher.
	v.seen[1], v.live[1] = 3, 2
	v.seen[2], v.live[2] = 3, 2
	big := sized(1, 1_000_000, 0)
	small := sized(2, 250_000, 0)
	items := []*msg.Stored{big, small}
	wantIDs(t, SendOrder(Knapsack{}, v, items), 2, 1)
	// SDSRP (size-blind) ties them apart only by ID.
	wantIDs(t, SendOrder(SDSRP{}, v, items), 1, 2)
}

func TestKnapsackNoLambdaFallback(t *testing.T) {
	v := defaultView()
	v.lambda = 0
	s := sized(1, 500, 0)
	if (Knapsack{}).SendScore(v, s) <= 0 {
		t.Fatal("fallback score not positive for live message")
	}
}

func TestSizeAwareByName(t *testing.T) {
	for _, name := range []string{"Knapsack", "DropLargest"} {
		p, err := ByName(name, rng.New(1))
		if err != nil || p.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, p, err)
		}
		if err := Register(name, func(*rng.Stream) Policy { return FIFO{} }); err == nil {
			t.Fatalf("built-in %q overridable", name)
		}
	}
}
