package fault

import (
	"testing"

	"sdsrp/internal/rng"
)

func TestEnabled(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"zero", Config{}, false},
		{"loss", Config{TransferLossProb: 0.1}, true},
		{"flap", Config{LinkFlapMeanUp: 60}, true},
		{"jitter", Config{BandwidthJitterLo: 0.5, BandwidthJitterHi: 1}, true},
		{"jitter-pinned", Config{BandwidthJitterLo: 1, BandwidthJitterHi: 1}, true},
		{"churn", Config{Churn: Churn{MeanUp: 100, MeanDown: 10}}, true},
		{"blackhole", Config{BlackHoleFraction: 0.2}, true},
		{"selfish", Config{SelfishFraction: 0.2}, true},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("%s: Enabled() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	groups := []string{"taxis", "buses"}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"negative loss", Config{TransferLossProb: -0.1}},
		{"loss above one", Config{TransferLossProb: 1.5}},
		{"negative flap", Config{LinkFlapMeanUp: -1}},
		{"jitter zero lo", Config{BandwidthJitterHi: 2}},
		{"jitter inverted", Config{BandwidthJitterLo: 2, BandwidthJitterHi: 1}},
		{"churn negative", Config{Churn: Churn{MeanUp: -5, MeanDown: 1}}},
		{"churn no down", Config{Churn: Churn{MeanUp: 100}}},
		{"churn bad group", Config{Churn: Churn{MeanUp: 100, MeanDown: 10, Groups: []string{"trams"}}}},
		{"churn groups disabled", Config{Churn: Churn{Groups: []string{"taxis"}}}},
		{"blackhole negative", Config{BlackHoleFraction: -0.1}},
		{"selfish above one", Config{SelfishFraction: 1.1}},
		{"fractions sum", Config{BlackHoleFraction: 0.6, SelfishFraction: 0.6}},
	}
	for _, c := range bad {
		if err := c.cfg.Validate(groups); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.cfg)
		}
	}
	good := []Config{
		{},
		{TransferLossProb: 1},
		{BandwidthJitterLo: 1, BandwidthJitterHi: 1},
		{Churn: Churn{MeanUp: 100, MeanDown: 10, Groups: []string{"taxis", "buses"}}},
		{BlackHoleFraction: 0.5, SelfishFraction: 0.5},
		{TransferLossProb: 0.1, LinkFlapMeanUp: 60, BandwidthJitterLo: 0.5,
			BandwidthJitterHi: 1.5, Churn: Churn{MeanUp: 600, MeanDown: 60}},
	}
	for i, cfg := range good {
		if err := cfg.Validate(groups); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	// Churn groups on a homogeneous scenario (no declared groups) must fail.
	cfg := Config{Churn: Churn{MeanUp: 100, MeanDown: 10, Groups: []string{"taxis"}}}
	if err := cfg.Validate(nil); err == nil {
		t.Error("churn group accepted against a group-less scenario")
	}
}

// TestDisabledConfigYieldsNil pins the zero-cost contract: a disabled config
// produces a nil injector.
func TestDisabledConfigYieldsNil(t *testing.T) {
	if in := New(Config{}, rng.New(1).Split("fault"), 10, nil); in != nil {
		t.Fatal("disabled config produced a non-nil injector")
	}
}

// TestNilInjectorNoAlloc pins the disabled hot path: every nil-receiver
// method must be branch-only — zero allocations.
func TestNilInjectorNoAlloc(t *testing.T) {
	var in *Injector
	n := testing.AllocsPerRun(1000, func() {
		if in.LoseTransfer() {
			t.Fatal("nil injector lost a transfer")
		}
		if _, ok := in.FlapAfter(); ok {
			t.Fatal("nil injector flapped")
		}
		if s := in.BandwidthScale(); s != 1 {
			t.Fatalf("nil injector scaled bandwidth by %v", s)
		}
		if in.ChurnEnabled() || in.Churns(0) || in.WipeOnReboot() {
			t.Fatal("nil injector churns")
		}
		if in.Role(0) != RoleHonest {
			t.Fatal("nil injector assigned a role")
		}
	})
	if n != 0 {
		t.Fatalf("nil-injector path allocated %v times per run, want 0", n)
	}
}

// TestDrawDeterminism: same stream fingerprint, same draw sequence.
func TestDrawDeterminism(t *testing.T) {
	cfg := Config{TransferLossProb: 0.3, LinkFlapMeanUp: 60,
		BandwidthJitterLo: 0.5, BandwidthJitterHi: 1.5,
		Churn:             Churn{MeanUp: 600, MeanDown: 60},
		BlackHoleFraction: 0.25, SelfishFraction: 0.25}
	seq := func() []float64 {
		in := New(cfg, rng.New(42).Split("fault"), 20, nil)
		var out []float64
		for i := 0; i < 50; i++ {
			if in.LoseTransfer() {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
			d, _ := in.FlapAfter()
			out = append(out, d, in.BandwidthScale(), in.NextUptime(),
				in.NextOutage(), float64(in.Role(i%20)))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSubstreamIsolation: enabling or tuning one fault model must not shift
// another model's draw sequence — the heart of the determinism guarantee.
func TestSubstreamIsolation(t *testing.T) {
	lossDraws := func(cfg Config) []bool {
		in := New(cfg, rng.New(7).Split("fault"), 10, nil)
		out := make([]bool, 100)
		for i := range out {
			out[i] = in.LoseTransfer()
		}
		return out
	}
	base := lossDraws(Config{TransferLossProb: 0.3})
	withAll := lossDraws(Config{TransferLossProb: 0.3, LinkFlapMeanUp: 60,
		BandwidthJitterLo: 0.5, BandwidthJitterHi: 1.5,
		Churn: Churn{MeanUp: 600, MeanDown: 60}, BlackHoleFraction: 0.3})
	for i := range base {
		if base[i] != withAll[i] {
			t.Fatalf("loss draw %d shifted when other models were enabled", i)
		}
	}
	// Interleaving draws from other models must not disturb loss either.
	in := New(Config{TransferLossProb: 0.3, LinkFlapMeanUp: 60,
		BandwidthJitterLo: 0.5, BandwidthJitterHi: 1.5},
		rng.New(7).Split("fault"), 10, nil)
	for i := range base {
		in.FlapAfter()
		in.BandwidthScale()
		if got := in.LoseTransfer(); got != base[i] {
			t.Fatalf("loss draw %d shifted under interleaved flap/jitter draws", i)
		}
	}
}

// TestZeroIntensityDrawsNothing: zero-intensity axes must not consume
// randomness, so their substreams stay untouched.
func TestZeroIntensityDrawsNothing(t *testing.T) {
	in := New(Config{BandwidthJitterLo: 1, BandwidthJitterHi: 1},
		rng.New(3).Split("fault"), 10, nil)
	if in == nil {
		t.Fatal("pinned jitter should yield a live injector")
	}
	for i := 0; i < 10; i++ {
		if in.LoseTransfer() {
			t.Fatal("loss drawn at zero intensity")
		}
		if _, ok := in.FlapAfter(); ok {
			t.Fatal("flap drawn while disabled")
		}
		if s := in.BandwidthScale(); s != 1 {
			t.Fatalf("pinned jitter drew %v, want exactly 1", s)
		}
		if in.Role(i) != RoleHonest {
			t.Fatal("role assigned without adversary fractions")
		}
	}
}

func TestRoleAssignment(t *testing.T) {
	const n = 40
	in := New(Config{BlackHoleFraction: 0.25, SelfishFraction: 0.1},
		rng.New(11).Split("fault"), n, nil)
	var black, selfish int
	for i := 0; i < n; i++ {
		switch in.Role(i) {
		case RoleBlackHole:
			black++
		case RoleSelfish:
			selfish++
		}
	}
	if black != 10 {
		t.Errorf("black holes = %d, want 10", black)
	}
	if selfish != 4 {
		t.Errorf("selfish = %d, want 4", selfish)
	}
	// Same seed, same placement.
	in2 := New(Config{BlackHoleFraction: 0.25, SelfishFraction: 0.1},
		rng.New(11).Split("fault"), n, nil)
	for i := 0; i < n; i++ {
		if in.Role(i) != in2.Role(i) {
			t.Fatalf("role of node %d differs across same-seed injectors", i)
		}
	}
}

func TestChurnable(t *testing.T) {
	churnable := []bool{true, false, true, false}
	in := New(Config{Churn: Churn{MeanUp: 100, MeanDown: 10}},
		rng.New(5).Split("fault"), 4, churnable)
	for i, want := range churnable {
		if got := in.Churns(i); got != want {
			t.Errorf("Churns(%d) = %v, want %v", i, got, want)
		}
	}
	all := New(Config{Churn: Churn{MeanUp: 100, MeanDown: 10}},
		rng.New(5).Split("fault"), 4, nil)
	for i := 0; i < 4; i++ {
		if !all.Churns(i) {
			t.Errorf("nil churnable: Churns(%d) = false, want true", i)
		}
	}
}

func TestRoleString(t *testing.T) {
	if RoleHonest.String() != "honest" || RoleBlackHole.String() != "black-hole" ||
		RoleSelfish.String() != "selfish" || Role(99).String() != "unknown" {
		t.Error("Role.String mapping broken")
	}
}
