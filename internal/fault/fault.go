// Package fault implements deterministic fault injection for the simulator:
// composable adversity models (radio loss, link flapping, bandwidth jitter,
// node crash/reboot churn, black-hole and selfish nodes) driven entirely by
// a dedicated rng substream.
//
// Design constraints, in priority order:
//
//   - Determinism. Every fault decision is drawn from a child of the run's
//     "fault" stream, split per model ("loss", "flap", "jitter", "churn",
//     "roles"). Splitting is pure, so enabling one fault model never
//     perturbs the draw sequence of another — and enabling any of them
//     never perturbs the mobility, traffic, or policy streams. Same seed,
//     same faults ⇒ byte-identical event logs.
//   - Zero cost when off. A disabled Config yields a nil *Injector; every
//     Injector method is nil-safe and allocation-free on the nil receiver,
//     so instrumented hot paths pay one branch when faults are off (the
//     same discipline as obs.Tracer).
//   - Zero intensity ≡ disabled. A model whose parameters make it a no-op
//     (loss probability 0, jitter multiplier pinned to 1) draws nothing or
//     draws values that cannot change behaviour, so a zero-intensity run is
//     byte-identical to a fault-free run.
//
// The package holds the fault *model* only: configuration, validation, role
// assignment, and random draws. Actuation lives with the subsystems that own
// the affected state — internal/network cuts links and discards transfers,
// internal/routing implements adversarial node behaviour, internal/world
// wires it all from config.Scenario.Faults.
//lint:shard-safe the injector owns four substreams injected at construction; no package state
package fault

import (
	"errors"
	"fmt"

	"sdsrp/internal/rng"
)

// Role classifies a node's behaviour under the adversary model.
type Role uint8

const (
	// RoleHonest nodes follow the protocol.
	RoleHonest Role = iota
	// RoleBlackHole nodes accept every relayed copy and silently discard
	// it: the sender spends its bytes and spray tokens, the copy vanishes.
	RoleBlackHole
	// RoleSelfish nodes refuse to carry traffic for others (every
	// replication offer is declined) but still send their own messages and
	// consume messages addressed to them.
	RoleSelfish
)

// String returns a stable name for diagnostics.
func (r Role) String() string {
	switch r {
	case RoleHonest:
		return "honest"
	case RoleBlackHole:
		return "black-hole"
	case RoleSelfish:
		return "selfish"
	default:
		return "unknown"
	}
}

// Config is the serializable fault section of a scenario. The zero value
// disables fault injection entirely.
type Config struct {
	// TransferLossProb is the probability that a completed transfer is
	// discarded by the receiver (the bytes crossed the wire but the frame
	// is unusable). Applies to every transfer kind, deliveries included.
	// The sender's state is untouched, exactly as for a link-down abort.
	TransferLossProb float64

	// LinkFlapMeanUp, when > 0, cuts every contact short after an
	// exponentially distributed up-time with this mean (seconds). A flapped
	// pair stays down until the nodes genuinely leave radio range, so a
	// flap truncates the contact rather than toggling it.
	LinkFlapMeanUp float64

	// BandwidthJitterLo/Hi, when set, scale each contact's bandwidth by a
	// per-contact multiplier drawn uniformly from [Lo, Hi]. Both zero
	// disables jitter; Lo = Hi = 1 is an explicit no-op (useful for
	// isolation tests).
	BandwidthJitterLo float64
	BandwidthJitterHi float64

	// Churn crashes and reboots nodes.
	Churn Churn

	// BlackHoleFraction and SelfishFraction of the population are assigned
	// the corresponding Role (deterministically, from the fault stream).
	// The fractions must sum to at most 1.
	BlackHoleFraction float64
	SelfishFraction   float64
}

// Churn parameterizes node crash/reboot cycling: a node stays up for
// Exp(MeanUp) seconds, goes dark for Exp(MeanDown) seconds (links cut,
// radio off), then reboots and repeats.
type Churn struct {
	// MeanUp is the mean uptime in seconds; 0 disables churn.
	MeanUp float64
	// MeanDown is the mean outage duration in seconds. Required when
	// MeanUp > 0.
	MeanDown float64
	// WipeOnReboot loses the node's buffer contents and dropped-list state
	// across the outage (a cold restart instead of a radio blackout).
	WipeOnReboot bool
	// Groups optionally restricts churn to the named scenario groups
	// (config.Scenario.Groups). Empty means every node churns.
	Groups []string
}

// Enabled reports whether churn is active.
func (c Churn) Enabled() bool { return c.MeanUp > 0 }

// Enabled reports whether any fault model is configured. Note that a
// pinned-to-1 bandwidth jitter counts as enabled (it draws, harmlessly).
func (c Config) Enabled() bool {
	return c.TransferLossProb > 0 ||
		c.LinkFlapMeanUp > 0 ||
		c.BandwidthJitterLo != 0 || c.BandwidthJitterHi != 0 ||
		c.Churn.Enabled() ||
		c.BlackHoleFraction > 0 || c.SelfishFraction > 0
}

// Validate checks the configuration. groupNames lists the scenario's
// declared node groups (nil for homogeneous scenarios); churn group
// references are checked against it.
func (c Config) Validate(groupNames []string) error {
	var errs []error
	add := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if c.TransferLossProb < 0 || c.TransferLossProb > 1 {
		add("faults: transfer loss probability %v must be in [0,1]", c.TransferLossProb)
	}
	if c.LinkFlapMeanUp < 0 {
		add("faults: link flap mean up-time %v must be non-negative", c.LinkFlapMeanUp)
	}
	if c.BandwidthJitterLo != 0 || c.BandwidthJitterHi != 0 {
		if c.BandwidthJitterLo <= 0 || c.BandwidthJitterHi < c.BandwidthJitterLo {
			add("faults: bandwidth jitter [%v,%v] must satisfy 0 < lo <= hi",
				c.BandwidthJitterLo, c.BandwidthJitterHi)
		}
	}
	if c.Churn.MeanUp < 0 || c.Churn.MeanDown < 0 {
		add("faults: churn means must be non-negative")
	}
	if c.Churn.MeanUp > 0 && c.Churn.MeanDown <= 0 {
		add("faults: churn needs MeanDown > 0 when MeanUp is set")
	}
	if len(c.Churn.Groups) > 0 {
		if c.Churn.MeanUp <= 0 {
			add("faults: churn groups named but churn disabled (MeanUp = 0)")
		}
		declared := make(map[string]bool, len(groupNames))
		for _, g := range groupNames {
			declared[g] = true
		}
		for _, g := range c.Churn.Groups {
			if !declared[g] {
				add("faults: churn group %q not declared in scenario groups", g)
			}
		}
	}
	if c.BlackHoleFraction < 0 || c.BlackHoleFraction > 1 {
		add("faults: black-hole fraction %v must be in [0,1]", c.BlackHoleFraction)
	}
	if c.SelfishFraction < 0 || c.SelfishFraction > 1 {
		add("faults: selfish fraction %v must be in [0,1]", c.SelfishFraction)
	}
	if c.BlackHoleFraction >= 0 && c.SelfishFraction >= 0 &&
		c.BlackHoleFraction+c.SelfishFraction > 1 {
		add("faults: black-hole + selfish fractions %v exceed 1",
			c.BlackHoleFraction+c.SelfishFraction)
	}
	return errors.Join(errs...)
}

// Injector is the runtime fault model of one simulation. A nil *Injector is
// the disabled state: every method is nil-safe and returns the benign
// answer without drawing or allocating.
type Injector struct {
	cfg Config

	// One independent substream per model, so enabling or tuning one model
	// never shifts another's draw sequence.
	loss   *rng.Stream
	flap   *rng.Stream
	jitter *rng.Stream
	churn  *rng.Stream

	roles     []Role // nil when no adversary fractions are set
	churnable []bool // nil means every node churns
}

// New builds an injector from cfg, deriving per-model substreams from
// stream (the run's dedicated "fault" split). churnable optionally marks
// which nodes are subject to churn (nil = all); it is ignored when churn is
// off. New returns nil when cfg is entirely disabled — the zero-cost path.
func New(cfg Config, stream *rng.Stream, nodes int, churnable []bool) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	in := &Injector{
		cfg:    cfg,
		loss:   stream.Split("loss"),
		flap:   stream.Split("flap"),
		jitter: stream.Split("jitter"),
		churn:  stream.Split("churn"),
	}
	if cfg.Churn.Enabled() {
		in.churnable = churnable
	}
	if cfg.BlackHoleFraction > 0 || cfg.SelfishFraction > 0 {
		in.roles = assignRoles(stream.Split("roles"), nodes,
			cfg.BlackHoleFraction, cfg.SelfishFraction)
	}
	return in
}

// assignRoles picks exactly round(frac·n) nodes per adversarial role via a
// random permutation, so the adversary population is deterministic in size
// and placement for a given seed.
func assignRoles(s *rng.Stream, nodes int, blackFrac, selfishFrac float64) []Role {
	roles := make([]Role, nodes)
	nBlack := int(blackFrac*float64(nodes) + 0.5)
	nSelfish := int(selfishFrac*float64(nodes) + 0.5)
	if nBlack+nSelfish > nodes {
		nSelfish = nodes - nBlack
	}
	perm := s.Perm(nodes)
	for i := 0; i < nBlack; i++ {
		roles[perm[i]] = RoleBlackHole
	}
	for i := nBlack; i < nBlack+nSelfish; i++ {
		roles[perm[i]] = RoleSelfish
	}
	return roles
}

// Config returns the configuration (zero value on the nil injector).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// LoseTransfer draws whether the transfer that just completed on the wire
// is discarded by the receiver. No draw happens at zero intensity.
func (in *Injector) LoseTransfer() bool {
	if in == nil || in.cfg.TransferLossProb <= 0 {
		return false
	}
	return in.loss.Bool(in.cfg.TransferLossProb)
}

// FlapEnabled reports whether link flapping is configured.
func (in *Injector) FlapEnabled() bool { return in != nil && in.cfg.LinkFlapMeanUp > 0 }

// FlapAfter draws the forced-down delay for a contact that just came up.
// ok is false when link flapping is disabled (no draw).
func (in *Injector) FlapAfter() (delay float64, ok bool) {
	if in == nil || in.cfg.LinkFlapMeanUp <= 0 {
		return 0, false
	}
	return in.flap.Exp(in.cfg.LinkFlapMeanUp), true
}

// BandwidthScale draws the per-contact bandwidth multiplier, or returns
// exactly 1 (no draw) when jitter is disabled.
func (in *Injector) BandwidthScale() float64 {
	if in == nil || (in.cfg.BandwidthJitterLo == 0 && in.cfg.BandwidthJitterHi == 0) {
		return 1
	}
	return in.jitter.Uniform(in.cfg.BandwidthJitterLo, in.cfg.BandwidthJitterHi)
}

// ChurnEnabled reports whether node churn is active.
func (in *Injector) ChurnEnabled() bool {
	return in != nil && in.cfg.Churn.Enabled()
}

// Churns reports whether node id is subject to churn.
func (in *Injector) Churns(id int) bool {
	if !in.ChurnEnabled() {
		return false
	}
	return in.churnable == nil || in.churnable[id]
}

// NextUptime draws how long a node stays up before its next crash.
func (in *Injector) NextUptime() float64 { return in.churn.Exp(in.cfg.Churn.MeanUp) }

// NextOutage draws how long a crashed node stays dark.
func (in *Injector) NextOutage() float64 { return in.churn.Exp(in.cfg.Churn.MeanDown) }

// WipeOnReboot reports whether reboots lose buffer and dropped-list state.
func (in *Injector) WipeOnReboot() bool { return in != nil && in.cfg.Churn.WipeOnReboot }

// Role returns node id's behavioural role (RoleHonest on the nil injector
// or when no adversary is configured).
func (in *Injector) Role(id int) Role {
	if in == nil || in.roles == nil {
		return RoleHonest
	}
	return in.roles[id]
}
