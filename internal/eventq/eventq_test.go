package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intQueue() *Queue[int] { return New(func(a, b int) bool { return a < b }) }

func TestEmptyQueue(t *testing.T) {
	q := intQueue()
	if q.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
}

func TestPushPopSingle(t *testing.T) {
	q := intQueue()
	q.Push(42)
	if v, ok := q.Peek(); !ok || v != 42 {
		t.Fatalf("Peek = %d,%v want 42,true", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != 42 {
		t.Fatalf("Pop = %d,%v want 42,true", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after pop = %d, want 0", q.Len())
	}
}

func TestAscendingOrder(t *testing.T) {
	q := intQueue()
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range in {
		q.Push(v)
	}
	for want := 0; want < 10; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d,true", v, ok, want)
		}
	}
}

func TestDuplicates(t *testing.T) {
	q := intQueue()
	for i := 0; i < 5; i++ {
		q.Push(7)
		q.Push(3)
	}
	got := q.Drain(nil)
	want := []int{3, 3, 3, 3, 3, 7, 7, 7, 7, 7}
	if len(got) != len(want) {
		t.Fatalf("Drain len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := intQueue()
	q.Push(10)
	q.Push(1)
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
	q.Push(0)
	q.Push(5)
	if v, _ := q.Pop(); v != 0 {
		t.Fatalf("got %d, want 0", v)
	}
	if v, _ := q.Pop(); v != 5 {
		t.Fatalf("got %d, want 5", v)
	}
	if v, _ := q.Pop(); v != 10 {
		t.Fatalf("got %d, want 10", v)
	}
}

func TestClear(t *testing.T) {
	q := intQueue()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", q.Len())
	}
	q.Push(3)
	if v, _ := q.Pop(); v != 3 {
		t.Fatalf("queue unusable after Clear: got %d", v)
	}
}

func TestReorder(t *testing.T) {
	type item struct{ pri int }
	a, b, c := &item{1}, &item{2}, &item{3}
	q := New(func(x, y *item) bool { return x.pri < y.pri })
	q.Push(a)
	q.Push(b)
	q.Push(c)
	// Invert priorities in place, then re-heapify.
	a.pri, c.pri = 9, 0
	q.Reorder()
	if v, _ := q.Pop(); v != c {
		t.Fatal("Reorder did not float the new minimum")
	}
	if v, _ := q.Pop(); v != b {
		t.Fatal("Reorder lost the middle element's position")
	}
	if v, _ := q.Pop(); v != a {
		t.Fatal("Reorder did not sink the new maximum")
	}
}

func TestNewWithCapacity(t *testing.T) {
	q := NewWithCapacity(func(a, b int) bool { return a < b }, 64)
	for i := 63; i >= 0; i-- {
		q.Push(i)
	}
	for want := 0; want < 64; want++ {
		if v, _ := q.Pop(); v != want {
			t.Fatalf("got %d want %d", v, want)
		}
	}
}

// Property: draining the queue yields exactly the multiset pushed, sorted.
func TestPropertyDrainSorts(t *testing.T) {
	f := func(xs []int16) bool {
		q := New(func(a, b int16) bool { return a < b })
		for _, x := range xs {
			q.Push(x)
		}
		got := q.Drain(nil)
		want := append([]int16(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved random push/pop maintains the invariant that every
// Pop returns the minimum of the current contents.
func TestPropertyRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := intQueue()
	var mirror []int
	for op := 0; op < 5000; op++ {
		if rng.Intn(3) != 0 || len(mirror) == 0 {
			v := rng.Intn(1000)
			q.Push(v)
			mirror = append(mirror, v)
		} else {
			min := 0
			for i, v := range mirror {
				if v < mirror[min] {
					min = i
				}
				_ = v
			}
			want := mirror[min]
			mirror = append(mirror[:min], mirror[min+1:]...)
			got, ok := q.Pop()
			if !ok || got != want {
				t.Fatalf("op %d: Pop = %d,%v want %d,true", op, got, ok, want)
			}
		}
		if q.Len() != len(mirror) {
			t.Fatalf("op %d: Len = %d, mirror %d", op, q.Len(), len(mirror))
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := NewWithCapacity(func(a, b int) bool { return a < b }, 1024)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(rng.Intn(1 << 20))
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
