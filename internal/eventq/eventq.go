// Package eventq provides a generic binary-heap priority queue used by the
// simulation engine and by internal schedulers.
//
// The queue is a min-heap ordered by a user-supplied less function. It is
// deliberately not safe for concurrent use: a simulation run is single
// threaded by design (see internal/sim), and keeping the queue lock-free
// keeps Push/Pop on the hot path allocation- and contention-free.
//
// # Performance contract
//
// The heap is backed by a single slice that only grows: Pop shrinks the
// length but keeps the capacity, and zeroes the vacated slot so the element
// (typically a pointer) is released to the GC. Once the backing array has
// reached the run's peak queue depth, Push and Pop allocate nothing —
// internal/sim layers an event free-list on top (recycling dispatched event
// structs), which together make steady-state scheduling fully
// allocation-free. Push/Pop are O(log n); Peek and Len are O(1).
//
//lint:shard-safe no package state; each shard owns its queue instance, and the heap never reads anything but the injected less function
package eventq

// Queue is a binary min-heap of T ordered by the less function supplied to
// New. The zero value is not usable; construct with New.
type Queue[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty queue ordered by less. less must define a strict weak
// ordering; ties are broken by heap layout, so callers that need total
// determinism must make less itself total (e.g. compare a sequence number
// last).
func New[T any](less func(a, b T) bool) *Queue[T] {
	return &Queue[T]{less: less}
}

// NewWithCapacity is New with a pre-sized backing array, for callers that
// know roughly how many items will be in flight.
func NewWithCapacity[T any](less func(a, b T) bool, capacity int) *Queue[T] {
	return &Queue[T]{items: make([]T, 0, capacity), less: less}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push adds v to the queue in O(log n).
//
// Performance contract: grows the backing array in place only; once the
// array has reached the run's peak queue depth, Push allocates nothing.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.up(len(q.items) - 1)
}

// Peek returns the minimum item without removing it. ok is false when the
// queue is empty.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

// Pop removes and returns the minimum item in O(log n). ok is false when the
// queue is empty.
//
// Performance contract: shrinks the length but keeps the capacity and
// zeroes the vacated slot; Pop never allocates.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero T
	q.items[last] = zero // release references for GC
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return v, true
}

// Clear empties the queue, keeping the backing array for reuse.
func (q *Queue[T]) Clear() {
	var zero T
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = q.items[:0]
}

// Reorder re-establishes the heap invariant after the ordering of items may
// have changed (for example, after mutating priorities in place). O(n).
func (q *Queue[T]) Reorder() {
	for i := len(q.items)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// Drain repeatedly pops items into out until the queue is empty, returning
// the filled slice. The result is in ascending order.
func (q *Queue[T]) Drain(out []T) []T {
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && q.less(q.items[right], q.items[left]) {
			child = right
		}
		if !q.less(q.items[child], q.items[i]) {
			return
		}
		q.items[i], q.items[child] = q.items[child], q.items[i]
		i = child
	}
}
