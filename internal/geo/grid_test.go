package geo

import (
	"reflect"
	"sort"
	"testing"

	"sdsrp/internal/rng"
)

// bruteForcePairs computes all in-range pairs the slow way.
func bruteForcePairs(pos []Point, radius float64) [][2]int32 {
	var out [][2]int32
	r2 := radius * radius
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist2(pos[j]) <= r2 {
				out = append(out, [2]int32{int32(i), int32(j)})
			}
		}
	}
	return out
}

func sortPairs(p [][2]int32) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}

func pairsEqual(a, b [][2]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridMatchesBruteForce(t *testing.T) {
	s := rng.New(99)
	area := NewRect(4500, 3400)
	const n = 150
	const radius = 100.0
	g := NewGrid(area, radius, n)
	pos := make([]Point, n)
	for trial := 0; trial < 20; trial++ {
		for i := range pos {
			pos[i] = Point{s.Uniform(0, area.W()), s.Uniform(0, area.H())}
		}
		g.Update(pos)
		got := g.Pairs(radius, nil)
		want := bruteForcePairs(pos, radius)
		sortPairs(got)
		sortPairs(want)
		if !pairsEqual(got, want) {
			t.Fatalf("trial %d: grid pairs (%d) != brute force (%d)", trial, len(got), len(want))
		}
	}
}

func TestGridClusteredPositions(t *testing.T) {
	// All nodes in one spot: every pair must be reported exactly once.
	const n = 20
	area := NewRect(1000, 1000)
	g := NewGrid(area, 100, n)
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{500, 500}
	}
	g.Update(pos)
	got := g.Pairs(100, nil)
	if len(got) != n*(n-1)/2 {
		t.Fatalf("got %d pairs, want %d", len(got), n*(n-1)/2)
	}
	seen := map[[2]int32]bool{}
	for _, p := range got {
		if p[0] >= p[1] {
			t.Fatalf("pair %v not ordered", p)
		}
		if seen[p] {
			t.Fatalf("pair %v reported twice", p)
		}
		seen[p] = true
	}
}

func TestGridBoundaryPositions(t *testing.T) {
	// Nodes exactly on area edges and corners must not panic or be lost.
	area := NewRect(300, 300)
	pos := []Point{{0, 0}, {300, 300}, {300, 0}, {0, 300}, {299.9, 299.9}}
	g := NewGrid(area, 100, len(pos))
	g.Update(pos)
	got := g.Pairs(100, nil)
	want := bruteForcePairs(pos, 100)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
}

func TestGridOutOfBoundsClamped(t *testing.T) {
	// Positions slightly outside the area (trace jitter) are clamped to
	// border cells rather than crashing.
	area := NewRect(100, 100)
	pos := []Point{{-5, -5}, {-4, -4}, {105, 105}}
	g := NewGrid(area, 50, len(pos))
	g.Update(pos)
	got := g.Pairs(10, nil)
	if len(got) != 1 {
		t.Fatalf("got %d pairs, want 1", len(got))
	}
}

func TestGridNear(t *testing.T) {
	area := NewRect(1000, 1000)
	pos := []Point{{100, 100}, {150, 100}, {400, 400}, {100, 190}}
	g := NewGrid(area, 100, len(pos))
	g.Update(pos)
	got := g.Near(Point{100, 100}, 95, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("Near = %v, want [0 1 3]", got)
	}
}

func TestGridReuseAcrossUpdates(t *testing.T) {
	s := rng.New(7)
	area := NewRect(500, 500)
	const n = 40
	g := NewGrid(area, 100, n)
	pos := make([]Point, n)
	var buf [][2]int32
	for tick := 0; tick < 50; tick++ {
		for i := range pos {
			pos[i] = Point{s.Uniform(0, 500), s.Uniform(0, 500)}
		}
		g.Update(pos)
		buf = g.Pairs(100, buf[:0])
		want := bruteForcePairs(pos, 100)
		if len(buf) != len(want) {
			t.Fatalf("tick %d: %d pairs, want %d", tick, len(buf), len(want))
		}
	}
}

func BenchmarkGridPairs100(b *testing.B) {
	s := rng.New(1)
	area := NewRect(4500, 3400)
	const n = 100
	g := NewGrid(area, 100, n)
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{s.Uniform(0, 4500), s.Uniform(0, 3400)}
	}
	var buf [][2]int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Update(pos)
		buf = g.Pairs(100, buf[:0])
	}
}

// TestUpdateSubsetMatchesUpdate checks the sharded-scan contract: indexing
// the full id set via UpdateSubset (ascending ids) is indistinguishable
// from Update — same pairs in the same order — and indexing a subset
// yields exactly the brute-force pairs within that subset.
func TestUpdateSubsetMatchesUpdate(t *testing.T) {
	s := rng.New(42)
	area := NewRect(900, 700)
	const n = 60
	gFull := NewGrid(area, 120, n)
	gSub := NewGrid(area, 120, n)
	pos := make([]Point, n)
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	var bufA, bufB [][2]int32
	for tick := 0; tick < 30; tick++ {
		for i := range pos {
			pos[i] = Point{s.Uniform(0, 900), s.Uniform(0, 700)}
		}
		gFull.Update(pos)
		gSub.UpdateSubset(pos, all)
		bufA = gFull.Pairs(120, bufA[:0])
		bufB = gSub.Pairs(120, bufB[:0])
		if !reflect.DeepEqual(bufA, bufB) {
			t.Fatalf("tick %d: UpdateSubset(all) pairs diverge from Update:\n%v\n%v", tick, bufA, bufB)
		}

		// A proper subset (every other id) must yield exactly the
		// brute-force pairs restricted to it.
		half := all[:0:0]
		in := make([]bool, n)
		for i := 0; i < n; i += 2 {
			half = append(half, int32(i))
			in[i] = true
		}
		gSub.UpdateSubset(pos, half)
		bufB = gSub.Pairs(120, bufB[:0])
		var want [][2]int32
		for _, p := range bruteForcePairs(pos, 120) {
			if in[p[0]] && in[p[1]] {
				want = append(want, p)
			}
		}
		if len(bufB) != len(want) {
			t.Fatalf("tick %d: subset pairs %d, want %d", tick, len(bufB), len(want))
		}
		for _, p := range bufB {
			if !in[p[0]] || !in[p[1]] {
				t.Fatalf("tick %d: pair %v includes an id outside the subset", tick, p)
			}
		}
	}
}

// TestUpdateSubsetDeterministicOrder pins that two identical subset
// rebuilds enumerate pairs in the same order — the property that lets a
// shard's candidate list feed the serial merge without sorting.
func TestUpdateSubsetDeterministicOrder(t *testing.T) {
	s := rng.New(5)
	area := NewRect(400, 400)
	const n = 25
	g1 := NewGrid(area, 80, n)
	g2 := NewGrid(area, 80, n)
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{s.Uniform(0, 400), s.Uniform(0, 400)}
	}
	ids := []int32{3, 7, 8, 11, 12, 15, 20, 24}
	g1.UpdateSubset(pos, ids)
	g2.UpdateSubset(pos, ids)
	a := g1.Pairs(80, nil)
	b := g2.Pairs(80, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same subset, different pair order:\n%v\n%v", a, b)
	}
}
