// Package geo provides 2-D geometry primitives and a uniform-grid spatial
// index used by the contact scanner to find node pairs within radio range
// without O(N²) distance checks.
//
// # Performance contract
//
// Grid is the per-tick hot path of the whole simulator: the network scanner
// calls Update then Pairs once per scan interval for the entire run (see
// PERFORMANCE.md for the cost model). Both query methods — Pairs and Near —
// therefore follow the append-to-out idiom: they append results to the
// caller-supplied slice and return the extended slice, so a caller that
// passes back last tick's buffer as out[:0] queries with zero allocations
// at steady state. Passing nil is always valid and yields a fresh slice.
// Results alias the out buffer: reusing it overwrites the previous call's
// results in place (internal/geo/reuse_test.go pins these semantics).
//
// Grid.Update likewise reuses its per-cell buckets, so a rebuild every scan
// tick is a copy plus bucketing with no steady-state allocation.
//lint:shard-safe pure geometry plus per-instance grid state; nothing shared
package geo

import "math"

// Point is a position in metres.
type Point struct {
	X, Y float64
}

// Add returns p + v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q. On hot paths that
// only compare against a radius, prefer Dist2 (the dtnlint hot-dist check
// enforces this in the scanner/routing packages).
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	//lint:ignore hot-dist this is the canonical definition Dist2 callers avoid
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Prefer this
// on hot paths where only comparisons against a squared radius are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// DistLowerBound converts a squared distance (Point.Dist2) into a
// conservative lower bound on the true distance: the result is guaranteed
// not to exceed the exact Euclidean distance, shaving a relative 1e-9 plus
// an absolute 1e-9 m to absorb every rounding step between the coordinates
// and the square root. The lazy contact scanner derives park deadlines from
// it, where an over-estimate would skip a tick a contact could start on.
func DistLowerBound(d2 float64) float64 {
	d := math.Sqrt(d2)
	return d - (d*1e-9 + 1e-9)
}

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Vec is a displacement in metres.
type Vec struct {
	X, Y float64
}

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 {
	//lint:ignore hot-dist canonical length definition; used off the scan path
	return math.Hypot(v.X, v.Y)
}

// Norm returns v scaled to unit length; the zero vector is returned as-is.
func (v Vec) Norm() Vec {
	l := v.Len()
	if l == 0 {
		return v
	}
	return Vec{v.X / l, v.Y / l}
}

// Rect is an axis-aligned rectangle with Min at the lower-left corner.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle [0,w]×[0,h].
func NewRect(w, h float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{w, h}}
}

// W returns the rectangle width.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}
