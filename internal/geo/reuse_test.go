package geo

import (
	"testing"
)

// gridWith builds a grid over a 1000×1000 area with the given positions.
func gridWith(pos []Point) *Grid {
	g := NewGrid(NewRect(1000, 1000), 100, len(pos))
	g.Update(pos)
	return g
}

// TestPairsReusesBackingArray pins the scratch-buffer contract: passing a
// truncated previous result back in reuses its backing array instead of
// allocating, and the appended contents are identical to a fresh query.
func TestPairsReusesBackingArray(t *testing.T) {
	pos := []Point{{100, 100}, {150, 100}, {400, 400}, {410, 410}, {100, 190}}
	g := gridWith(pos)

	fresh := g.Pairs(100, nil)
	if len(fresh) == 0 {
		t.Fatal("expected at least one pair")
	}

	// Warm a scratch buffer, then reuse it: no growth may occur.
	scratch := g.Pairs(100, nil)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = g.Pairs(100, scratch[:0])
	})
	if allocs != 0 {
		t.Errorf("Pairs with warm scratch allocated %.1f times per call, want 0", allocs)
	}
	if len(scratch) != len(fresh) {
		t.Fatalf("reused query returned %d pairs, fresh returned %d", len(scratch), len(fresh))
	}
	for i := range fresh {
		if scratch[i] != fresh[i] {
			t.Errorf("pair %d: reused %v != fresh %v", i, scratch[i], fresh[i])
		}
	}
}

// TestPairsAppendsWithoutTruncating pins that Pairs appends to out as given:
// a caller passing a non-empty slice keeps its prefix. Callers wanting reuse
// must pass out[:0] themselves.
func TestPairsAppendsWithoutTruncating(t *testing.T) {
	pos := []Point{{100, 100}, {150, 100}}
	g := gridWith(pos)

	sentinel := [2]int32{-7, -9}
	out := g.Pairs(100, [][2]int32{sentinel})
	if len(out) < 2 {
		t.Fatalf("got %d entries, want sentinel plus at least one pair", len(out))
	}
	if out[0] != sentinel {
		t.Errorf("prefix overwritten: got %v, want sentinel %v", out[0], sentinel)
	}
}

// TestPairsReuseAliasesPriorResult documents the aliasing hazard of the
// reuse idiom: reusing a buffer via out[:0] overwrites the previous call's
// results in place, so a caller must finish consuming (or copy) one query
// before issuing the next on the same buffer.
func TestPairsReuseAliasesPriorResult(t *testing.T) {
	near := []Point{{100, 100}, {150, 100}, {400, 400}}
	g := gridWith(near)

	first := g.Pairs(100, nil)
	if len(first) != 1 || first[0] != [2]int32{0, 1} {
		t.Fatalf("setup: got %v, want [[0 1]]", first)
	}
	kept := first[0]

	// Move the nodes and rerun into the same buffer: node pair (1,2) is now
	// the only contact.
	g.Update([]Point{{100, 100}, {400, 390}, {400, 400}})
	second := g.Pairs(100, first[:0])
	if len(second) != 1 || second[0] != [2]int32{1, 2} {
		t.Fatalf("after move: got %v, want [[1 2]]", second)
	}
	// The old view now shows the new data: same backing array.
	if first[0] == kept {
		t.Errorf("expected first[0] to be overwritten by reuse, still %v", first[0])
	}
	if first[0] != second[0] {
		t.Errorf("first and second should alias: %v != %v", first[0], second[0])
	}
}

// TestNearReusesBackingArray mirrors the Pairs contract for Near.
func TestNearReusesBackingArray(t *testing.T) {
	pos := []Point{{100, 100}, {150, 100}, {400, 400}, {100, 190}}
	g := gridWith(pos)

	fresh := g.Near(Point{100, 100}, 95, nil)
	if len(fresh) == 0 {
		t.Fatal("expected at least one neighbour")
	}

	scratch := g.Near(Point{100, 100}, 95, nil)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = g.Near(Point{100, 100}, 95, scratch[:0])
	})
	if allocs != 0 {
		t.Errorf("Near with warm scratch allocated %.1f times per call, want 0", allocs)
	}
	if len(scratch) != len(fresh) {
		t.Fatalf("reused query returned %d ids, fresh returned %d", len(scratch), len(fresh))
	}
	for i := range fresh {
		if scratch[i] != fresh[i] {
			t.Errorf("id %d: reused %v != fresh %v", i, scratch[i], fresh[i])
		}
	}

	// Appending semantics: a non-empty prefix survives.
	out := g.Near(Point{100, 100}, 95, []int32{-5})
	if len(out) == 0 || out[0] != -5 {
		t.Errorf("prefix not preserved: %v", out)
	}
}
