package geo

// Grid is a uniform spatial hash over a rectangle. Items are identified by a
// dense integer id in [0, n). The cell size should be at least the query
// radius so a 3×3 cell neighbourhood covers every candidate pair.
//
// The grid is rebuilt (Update) every scan tick rather than maintained
// incrementally: with N ≤ a few hundred nodes a rebuild is a handful of
// microseconds and keeps the structure trivially correct.
type Grid struct {
	area     Rect
	cell     float64
	cols     int
	rows     int
	cells    [][]int32 // per-cell item ids
	pos      []Point   // last known position per item
	occupied []int32   // indices of non-empty cells, for fast reset
}

// NewGrid creates a grid over area with the given cell size for n items.
// cell must be > 0.
func NewGrid(area Rect, cell float64, n int) *Grid {
	cols := int(area.W()/cell) + 1
	rows := int(area.H()/cell) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		area:  area,
		cell:  cell,
		cols:  cols,
		rows:  rows,
		cells: make([][]int32, cols*rows),
		pos:   make([]Point, n),
	}
}

// CellSize returns the grid's cell edge length in metres.
func (g *Grid) CellSize() float64 { return g.cell }

// Dims returns the grid's column and row counts.
func (g *Grid) Dims() (cols, rows int) { return g.cols, g.rows }

// CellIndex exposes the grid's cell mapping: the dense index of the cell
// containing p, with out-of-area points clamped to the border cells. Two
// structures that bucket by CellIndex of the same Grid agree exactly —
// including every float-rounding decision — which is what lets the kinetic
// scanner (internal/network) keep its own incremental buckets while staying
// byte-compatible with this grid's Pairs enumeration.
//
// Performance contract: pure arithmetic, no allocation.
func (g *Grid) CellIndex(p Point) int { return g.index(p) }

// BoundaryDist returns the distance from p to the nearest edge of cell ci's
// box (≤ 0 when p lies on the boundary or outside the box, which happens
// for clamped out-of-area points). Callers using it as a containment margin
// must subtract their own conservative slack.
//
// Performance contract: pure arithmetic (axis minima, no square roots), no
// allocation.
func (g *Grid) BoundaryDist(p Point, ci int) float64 {
	lox := g.area.Min.X + float64(ci%g.cols)*g.cell
	loy := g.area.Min.Y + float64(ci/g.cols)*g.cell
	d := p.X - lox
	if hi := lox + g.cell - p.X; hi < d {
		d = hi
	}
	if dy := p.Y - loy; dy < d {
		d = dy
	}
	if hi := loy + g.cell - p.Y; hi < d {
		d = hi
	}
	return d
}

func (g *Grid) index(p Point) int {
	cx := int((p.X - g.area.Min.X) / g.cell)
	cy := int((p.Y - g.area.Min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Update replaces all item positions. len(pos) must equal the n passed to
// NewGrid.
//
// Performance contract: reuses the per-cell buckets and the occupied list
// across rebuilds; once every visited cell has reached its peak occupancy,
// Update allocates nothing.
func (g *Grid) Update(pos []Point) {
	for _, ci := range g.occupied {
		g.cells[ci] = g.cells[ci][:0]
	}
	g.occupied = g.occupied[:0]
	copy(g.pos, pos)
	for id, p := range pos {
		ci := g.index(p)
		if len(g.cells[ci]) == 0 {
			g.occupied = append(g.occupied, int32(ci))
		}
		g.cells[ci] = append(g.cells[ci], int32(id))
	}
}

// UpdateSubset rebuilds the grid from only the listed item ids, reading
// their coordinates from pos (which must have the full length n passed to
// NewGrid — ids index into it). Queries then see just the subset: Pairs
// enumerates pairs within it, in the deterministic order fixed by the
// insertion sequence, so callers wanting the same order as Update must
// pass ids in ascending order. Only the listed ids' cached positions are
// refreshed — unlisted items keep stale coordinates, which subset queries
// never read. Built for the sharded scan's per-stripe grids (DESIGN.md
// §13), where each shard indexes its own node band plus the neighbouring
// one.
//
// Performance contract: O(len(ids)) regardless of n, with the same bucket
// reuse as Update — a steady-state rebuild allocates nothing.
func (g *Grid) UpdateSubset(pos []Point, ids []int32) {
	for _, ci := range g.occupied {
		g.cells[ci] = g.cells[ci][:0]
	}
	g.occupied = g.occupied[:0]
	for _, id := range ids {
		g.pos[id] = pos[id]
		ci := g.index(pos[id])
		if len(g.cells[ci]) == 0 {
			g.occupied = append(g.occupied, int32(ci))
		}
		g.cells[ci] = append(g.cells[ci], id)
	}
}

// Pairs appends to out every unordered pair (a,b), a<b, whose distance is at
// most radius, and returns the extended slice. radius must be ≤ the cell
// size for completeness.
//
// Performance contract: compares squared distances only and writes through
// the caller's slice; with a warm out buffer Pairs allocates nothing.
func (g *Grid) Pairs(radius float64, out [][2]int32) [][2]int32 {
	r2 := radius * radius
	for _, ciAny := range g.occupied {
		ci := int(ciAny)
		cx := ci % g.cols
		cy := ci / g.cols
		items := g.cells[ci]
		// Pairs within the cell itself.
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				a, b := items[i], items[j]
				if g.pos[a].Dist2(g.pos[b]) <= r2 {
					out = appendPair(out, a, b)
				}
			}
		}
		// Pairs with forward neighbour cells only (E, SW, S, SE) so each
		// cell pair is visited exactly once.
		for _, d := range [4][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
			nx, ny := cx+d[0], cy+d[1]
			if nx < 0 || nx >= g.cols || ny >= g.rows {
				continue
			}
			other := g.cells[ny*g.cols+nx]
			for _, a := range items {
				for _, b := range other {
					if g.pos[a].Dist2(g.pos[b]) <= r2 {
						out = appendPair(out, a, b)
					}
				}
			}
		}
	}
	return out
}

func appendPair(out [][2]int32, a, b int32) [][2]int32 {
	if a > b {
		a, b = b, a
	}
	return append(out, [2]int32{a, b})
}

// Near appends to out the ids of all items within radius of p (including
// items at exactly radius), and returns the extended slice.
//
// Performance contract: compares squared distances only and writes through
// the caller's slice; with a warm out buffer Near allocates nothing.
func (g *Grid) Near(p Point, radius float64, out []int32) []int32 {
	r2 := radius * radius
	cx := int((p.X - g.area.Min.X) / g.cell)
	cy := int((p.Y - g.area.Min.Y) / g.cell)
	span := int(radius/g.cell) + 1
	for dy := -span; dy <= span; dy++ {
		ny := cy + dy
		if ny < 0 || ny >= g.rows {
			continue
		}
		for dx := -span; dx <= span; dx++ {
			nx := cx + dx
			if nx < 0 || nx >= g.cols {
				continue
			}
			for _, id := range g.cells[ny*g.cols+nx] {
				if g.pos[id].Dist2(p) <= r2 {
					out = append(out, id)
				}
			}
		}
	}
	return out
}
