package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.Dist(q); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d2 := p.Dist2(q); d2 != 25 {
		t.Fatalf("Dist2 = %v, want 25", d2)
	}
}

func TestLerp(t *testing.T) {
	p := Point{0, 0}
	q := Point{10, 20}
	if mid := p.Lerp(q, 0.5); mid != (Point{5, 10}) {
		t.Fatalf("Lerp(0.5) = %v", mid)
	}
	if start := p.Lerp(q, 0); start != p {
		t.Fatalf("Lerp(0) = %v", start)
	}
	if end := p.Lerp(q, 1); end != q {
		t.Fatalf("Lerp(1) = %v", end)
	}
}

func TestVecNorm(t *testing.T) {
	v := Vec{3, 4}
	n := v.Norm()
	if math.Abs(n.Len()-1) > 1e-12 {
		t.Fatalf("Norm length = %v", n.Len())
	}
	zero := Vec{}
	if zero.Norm() != zero {
		t.Fatal("Norm of zero vector changed it")
	}
}

func TestVecScaleAdd(t *testing.T) {
	p := Point{1, 1}.Add(Vec{2, 3}.Scale(2))
	if p != (Point{5, 7}) {
		t.Fatalf("Add/Scale = %v", p)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(100, 50)
	if r.W() != 100 || r.H() != 50 {
		t.Fatalf("W,H = %v,%v", r.W(), r.H())
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{100, 50}) {
		t.Fatal("Contains rejects corners")
	}
	if r.Contains(Point{100.01, 0}) {
		t.Fatal("Contains accepts outside point")
	}
	c := r.Clamp(Point{-5, 60})
	if c != (Point{0, 50}) {
		t.Fatalf("Clamp = %v", c)
	}
}

// Property: Dist is symmetric and satisfies the triangle inequality.
func TestPropertyDistMetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Bound magnitudes to avoid overflow-driven noise.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistLowerBound(t *testing.T) {
	// The bound must never exceed the true distance, across magnitudes from
	// sub-metre to continental, and must stay tight (within a part in 1e8).
	for _, d := range []float64{0, 1e-9, 0.001, 1, 3.5, 100, 4500, 1e7, 1e12} {
		lo := DistLowerBound(d * d)
		if lo > d {
			t.Fatalf("DistLowerBound(%g²) = %g exceeds the true distance", d, lo)
		}
		if d > 0 && lo < d*(1-1e-8)-1e-8 {
			t.Fatalf("DistLowerBound(%g²) = %g is needlessly loose", d, lo)
		}
	}
	// Exact squares round-trip through sqrt exactly, so only the explicit
	// slack separates the bound from the distance.
	if lo := DistLowerBound(25); lo >= 5 || lo < 5-1e-6 {
		t.Fatalf("DistLowerBound(25) = %g, want just under 5", lo)
	}
	if err := quick.Check(func(x, y float64) bool {
		d2 := x*x + y*y
		if math.IsInf(d2, 0) || math.IsNaN(d2) {
			return true
		}
		return DistLowerBound(d2) <= math.Hypot(x, y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
