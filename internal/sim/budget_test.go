package sim

import (
	"testing"
	"time"
)

// chain schedules a self-perpetuating event chain so the queue never drains
// before the horizon — the shape of a runaway run a watchdog must stop.
func chain(e *Engine, step float64) {
	var next func(now float64)
	next = func(now float64) { e.At(now+step, next) }
	e.At(0, next)
}

func TestMaxEventsBudget(t *testing.T) {
	e := NewEngine()
	chain(e, 1)
	e.SetMaxEvents(100)
	e.Run(1e12)
	if !e.BudgetExceeded() {
		t.Fatal("budget not reported exceeded")
	}
	if e.Processed() != 100 {
		t.Errorf("processed %d events, want exactly the 100-event budget", e.Processed())
	}
}

func TestMaxEventsNotHit(t *testing.T) {
	e := NewEngine()
	var fired int
	for i := 0; i < 10; i++ {
		e.At(float64(i), func(float64) { fired++ })
	}
	e.SetMaxEvents(100)
	e.Run(1000)
	if e.BudgetExceeded() {
		t.Error("budget reported exceeded on an under-budget run")
	}
	if fired != 10 {
		t.Errorf("fired %d events, want 10", fired)
	}
}

// TestBudgetResume checks a budget stop leaves the engine in a resumable
// state: raising the budget and re-running continues from the cutoff.
func TestBudgetResume(t *testing.T) {
	e := NewEngine()
	chain(e, 1)
	e.SetMaxEvents(50)
	e.Run(1e12)
	if e.Processed() != 50 {
		t.Fatalf("processed %d, want 50", e.Processed())
	}
	e.SetMaxEvents(120)
	e.Run(1e12)
	if e.Processed() != 120 {
		t.Errorf("after raising the budget processed %d, want 120", e.Processed())
	}
}

func TestWallDeadline(t *testing.T) {
	e := NewEngine()
	chain(e, 1)
	// An already-expired deadline trips at the first stride check.
	e.SetWallDeadline(time.Now().Add(-time.Second))
	// Cap with a budget far above the stride so a broken deadline check
	// fails the test instead of hanging it.
	e.SetMaxEvents(10 * deadlineStride)
	e.Run(1e12)
	if !e.DeadlineExceeded() {
		t.Fatal("expired deadline not reported")
	}
	if e.Processed() != deadlineStride {
		t.Errorf("processed %d events, want one stride (%d)", e.Processed(), deadlineStride)
	}
}

func TestWallDeadlineFarFuture(t *testing.T) {
	e := NewEngine()
	chain(e, 1)
	e.SetWallDeadline(time.Now().Add(time.Hour))
	e.SetMaxEvents(2 * deadlineStride)
	e.Run(1e12)
	if e.DeadlineExceeded() {
		t.Error("future deadline reported exceeded")
	}
	if !e.BudgetExceeded() {
		t.Error("budget should have stopped the capped run")
	}
}
