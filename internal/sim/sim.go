// Package sim implements a deterministic discrete-event simulation engine.
//
// Events are callbacks ordered by (time, sequence number); the sequence
// number makes ties deterministic, so a run is fully reproducible from the
// scenario seed. A single Engine is driven by one goroutine; cross-run
// parallelism lives in internal/experiment, which runs independent engines
// on a worker pool.
//lint:shard-safe engine state is per-Engine; the wall-deadline watchdog is the one annotated wall-clock touchpoint and stops dispatch without reordering it
package sim

import (
	"fmt"
	"math"
	"time"

	"sdsrp/internal/eventq"
)

// Handler is an event callback. It runs at its scheduled time with the
// engine clock already advanced.
type Handler func(now float64)

type event struct {
	time     float64
	seq      uint64
	canceled bool
	// gen counts recycles of this pooled object. An EventID snapshots the
	// generation at scheduling time, so a stale handle cannot cancel the
	// unrelated event that later reuses the same allocation.
	gen uint64
	fn  Handler
	// owner backs the engine's live-depth accounting: Cancel tells the
	// owner a queued event went dead. It is nil for control blocks that are
	// never queued (Every's ticker handle).
	owner *Engine
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is invalid.
type EventID struct {
	ev  *event
	gen uint64
}

// Cancel marks the event as canceled; a canceled event is skipped when its
// time comes. Canceling an already-run or already-canceled event is a no-op
// (the generation check makes a handle to a recycled event inert).
func (id EventID) Cancel() {
	if id.ev != nil && id.ev.gen == id.gen && !id.ev.canceled {
		id.ev.canceled = true
		if id.ev.owner != nil {
			id.ev.owner.canceledQueued++
		}
	}
}

// Engine is a discrete-event simulator clock plus pending-event queue.
// Construct with NewEngine. Not safe for concurrent use.
type Engine struct {
	now     float64
	seq     uint64
	queue   *eventq.Queue[*event]
	stopped bool
	// Processed counts events actually dispatched (excluding canceled).
	processed uint64
	// peakQueue is the deepest the pending queue has ever been.
	peakQueue int
	// wall accumulates real time spent inside Run.
	wall time.Duration
	// free is the event free-list: dispatched and canceled events are
	// recycled here instead of being re-allocated, making steady-state
	// scheduling allocation-free. Capacity is bounded by the peak queue
	// depth.
	free []*event
	// canceledQueued counts queued-but-canceled events awaiting reap, so
	// Live can report the true pending depth without walking the heap.
	canceledQueued int
	// maxEvents, when > 0, bounds how many events Run may dispatch in
	// total; the budget guard against a pathological scenario spinning
	// forever. Deterministic: the same scenario always stops at the same
	// event.
	maxEvents uint64
	budgetHit bool
	// deadline, when non-zero, is a wall-clock cutoff checked every
	// deadlineStride dispatches. Unlike the event budget this is
	// inherently non-deterministic (it depends on host speed); it exists
	// for the experiment runner's per-run watchdog, not for simulation
	// semantics.
	deadline    time.Time
	deadlineHit bool
}

// deadlineStride is how many dispatches pass between wall-clock deadline
// checks: rare enough that time.Now stays off the hot path, frequent enough
// that an overdue run stops within milliseconds.
const deadlineStride = 8192

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{
		queue: eventq.NewWithCapacity(func(a, b *event) bool {
			if a.time != b.time {
				return a.time < b.time
			}
			return a.seq < b.seq
		}, 1024),
	}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events dispatched so far.
func (e *Engine) Processed() uint64 { return e.processed }

// PeakQueue returns the maximum pending-event queue depth observed.
func (e *Engine) PeakQueue() int { return e.peakQueue }

// Wall returns the cumulative real time spent inside Run.
func (e *Engine) Wall() time.Duration { return e.wall }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it is always a logic error in a discrete-event model.
func (e *Engine) At(t float64, fn Handler) EventID {
	if t < e.now {
		//lint:invariant documented At contract: scheduling in the past is always a logic error in a discrete-event model
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		//lint:invariant a NaN deadline would silently vanish in the heap ordering; failing loudly preserves determinism
		panic("sim: scheduling event at NaN time")
	}
	ev := e.alloc()
	ev.time, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	e.queue.Push(ev)
	if n := e.queue.Len(); n > e.peakQueue {
		e.peakQueue = n
	}
	return EventID{ev, ev.gen}
}

// alloc takes an event from the free-list, falling back to the heap.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{owner: e}
}

// recycle returns a popped event to the free-list. Bumping the generation
// invalidates every outstanding EventID for it; clearing fn releases the
// closure for GC.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.canceled = false
	ev.fn = nil
	e.free = append(e.free, ev)
}

// After schedules fn to run d seconds from now. d must be ≥ 0.
func (e *Engine) After(d float64, fn Handler) EventID {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run now+d, now+2d, ... until the engine stops or the
// returned EventID is canceled. Each firing passes the current time.
// d must be > 0.
func (e *Engine) Every(d float64, fn Handler) EventID {
	if d <= 0 {
		//lint:invariant documented Every contract: a non-positive period would loop the clock forever at one instant
		panic("sim: Every requires positive period")
	}
	// ctl carries the cancel flag across re-schedules. It is never queued,
	// so it is never recycled and its generation stays 0 — the returned
	// EventID remains valid for the ticker's whole lifetime.
	ctl := &event{}
	var tick Handler
	tick = func(now float64) {
		if ctl.canceled || e.stopped {
			return
		}
		fn(now)
		if ctl.canceled || e.stopped {
			return
		}
		e.At(now+d, tick)
	}
	e.At(e.now+d, tick)
	return EventID{ctl, ctl.gen}
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// SetMaxEvents bounds the total number of events the engine may dispatch
// across all Run calls; 0 removes the bound. When the budget is exhausted
// Run returns early and BudgetExceeded reports true. The cutoff is a
// function of the event stream alone, so it is as deterministic as the
// simulation itself.
func (e *Engine) SetMaxEvents(n uint64) { e.maxEvents = n }

// BudgetExceeded reports whether a Run stopped because the SetMaxEvents
// budget was exhausted.
func (e *Engine) BudgetExceeded() bool { return e.budgetHit }

// SetWallDeadline arms a wall-clock watchdog: Run returns early once real
// time passes t (checked every few thousand dispatches). The zero time
// disarms it. This is a runner-layer safety net against runaway runs; it is
// NOT deterministic and must never gate simulation semantics.
func (e *Engine) SetWallDeadline(t time.Time) { e.deadline = t }

// DeadlineExceeded reports whether a Run stopped because the SetWallDeadline
// watchdog fired.
func (e *Engine) DeadlineExceeded() bool { return e.deadlineHit }

// Run dispatches events in order until the queue empties, Stop is called,
// the next event is strictly after horizon, the SetMaxEvents budget is
// exhausted, or the SetWallDeadline watchdog fires. The clock finishes at
// min(last event time, horizon); early budget/deadline exits leave it at the
// last dispatched event (query BudgetExceeded / DeadlineExceeded).
func (e *Engine) Run(horizon float64) {
	start := time.Now()
	defer func() { e.wall += time.Since(start) }()
	e.stopped = false
	for {
		if e.stopped {
			return
		}
		ev, ok := e.queue.Peek()
		if !ok {
			if horizon > e.now {
				e.now = horizon
			}
			return
		}
		if ev.time > horizon {
			e.now = horizon
			return
		}
		e.queue.Pop()
		if ev.canceled {
			e.canceledQueued--
			e.recycle(ev)
			continue
		}
		// Capture the payload and recycle before dispatching: the handler
		// may schedule new events, and the freed object can serve them.
		t, fn := ev.time, ev.fn
		e.recycle(ev)
		e.now = t
		e.processed++
		fn(t)
		if e.maxEvents > 0 && e.processed >= e.maxEvents {
			e.budgetHit = true
			return
		}
		//lint:invariant the wall-clock deadline only decides WHEN to stop dispatching; it never reorders, drops, or injects events, so a run that finishes under the deadline is byte-identical to one with no deadline at all
		if !e.deadline.IsZero() && e.processed%deadlineStride == 0 && time.Now().After(e.deadline) {
			e.deadlineHit = true
			return
		}
	}
}

// Pending returns the number of events in the queue, including canceled
// events not yet reaped. Intended for tests and diagnostics.
func (e *Engine) Pending() int { return e.queue.Len() }

// Live returns the number of queued events that will actually dispatch —
// Pending minus canceled events awaiting reap. This is the queue-depth
// signal the observability snapshots record.
func (e *Engine) Live() int { return e.queue.Len() - e.canceledQueued }
