package sim

import (
	"testing"
)

func TestRunEmpty(t *testing.T) {
	e := NewEngine()
	e.Run(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want horizon 100", e.Now())
	}
}

func TestEventOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(5, func(float64) { order = append(order, 2) })
	e.At(1, func(float64) { order = append(order, 1) })
	e.At(9, func(float64) { order = append(order, 3) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(5, func(float64) { order = append(order, "a") })
	e.At(5, func(float64) { order = append(order, "b") })
	e.At(5, func(float64) { order = append(order, "c") })
	e.Run(10)
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie order = %q, want abc", got)
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var at float64
	e.At(7.5, func(now float64) { at = now })
	e.Run(100)
	if at != 7.5 {
		t.Fatalf("handler saw now=%v, want 7.5", at)
	}
	if e.Now() != 100 {
		t.Fatalf("final Now = %v, want 100", e.Now())
	}
}

func TestHorizonCutsOff(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(50, func(float64) { ran = true })
	e.Run(49)
	if ran {
		t.Fatal("event after horizon ran")
	}
	if e.Now() != 49 {
		t.Fatalf("Now = %v, want 49", e.Now())
	}
	// Continuing past the horizon runs it.
	e.Run(100)
	if !ran {
		t.Fatal("event did not run on continued Run")
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.At(10, func(now float64) {
		e.After(5, func(now2 float64) { times = append(times, now2) })
	})
	e.Run(100)
	if len(times) != 1 || times[0] != 15 {
		t.Fatalf("times = %v, want [15]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func(now float64) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func(float64) {})
	})
	e.Run(20)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.At(5, func(float64) { ran = true })
	id.Cancel()
	e.Run(10)
	if ran {
		t.Fatal("canceled event ran")
	}
	// Double-cancel and cancel-after-run are no-ops.
	id.Cancel()
	id2 := e.At(15, func(float64) {})
	e.Run(20)
	id2.Cancel()
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var fires []float64
	e.Every(10, func(now float64) { fires = append(fires, now) })
	e.Run(35)
	if len(fires) != 3 || fires[0] != 10 || fires[1] != 20 || fires[2] != 30 {
		t.Fatalf("fires = %v", fires)
	}
}

func TestEveryCancel(t *testing.T) {
	e := NewEngine()
	count := 0
	var id EventID
	id = e.Every(10, func(now float64) {
		count++
		if count == 2 {
			id.Cancel()
		}
	})
	e.Run(1000)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestEveryStopsWithEngine(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(1, func(now float64) {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	e.Run(1e9)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	// An event scheduling another event at the same timestamp runs it in the
	// same Run pass, after all previously scheduled same-time events.
	e := NewEngine()
	var order []string
	e.At(5, func(now float64) {
		order = append(order, "first")
		e.At(5, func(float64) { order = append(order, "nested") })
	})
	e.At(5, func(float64) { order = append(order, "second") })
	e.Run(10)
	want := []string{"first", "second", "nested"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLiveExcludesCanceled(t *testing.T) {
	e := NewEngine()
	ids := make([]EventID, 0, 4)
	for i := 1; i <= 4; i++ {
		ids = append(ids, e.At(float64(i*10), func(float64) {}))
	}
	if e.Live() != 4 || e.Pending() != 4 {
		t.Fatalf("Live/Pending = %d/%d, want 4/4", e.Live(), e.Pending())
	}
	ids[1].Cancel()
	ids[3].Cancel()
	// Canceled events still occupy the heap but no longer count as live.
	if e.Live() != 2 || e.Pending() != 4 {
		t.Fatalf("after cancel: Live/Pending = %d/%d, want 2/4", e.Live(), e.Pending())
	}
	// Double-cancel must not double-decrement.
	ids[1].Cancel()
	if e.Live() != 2 {
		t.Fatalf("double-cancel changed Live to %d", e.Live())
	}
	// Canceled events are reaped when their time comes: after running past
	// t=20 the first dead event is gone from the heap and the counter.
	e.Run(25)
	if e.Live() != 1 || e.Pending() != 2 {
		t.Fatalf("mid-run: Live/Pending = %d/%d, want 1/2", e.Live(), e.Pending())
	}
	e.Run(100)
	if e.Live() != 0 || e.Pending() != 0 {
		t.Fatalf("drained: Live/Pending = %d/%d, want 0/0", e.Live(), e.Pending())
	}
}

func TestLiveWithEveryCancel(t *testing.T) {
	// Every's control handle is never queued; canceling the ticker must not
	// disturb the live-depth counter.
	e := NewEngine()
	count := 0
	var id EventID
	id = e.Every(10, func(now float64) {
		count++
		if count == 2 {
			id.Cancel()
		}
	})
	e.Run(100)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if e.Live() != 0 || e.Pending() != 0 {
		t.Fatalf("Live/Pending = %d/%d, want 0/0", e.Live(), e.Pending())
	}
	// A fresh schedule keeps working after the ticker shutdown.
	e.At(200, func(float64) {})
	if e.Live() != 1 {
		t.Fatalf("Live = %d, want 1", e.Live())
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.At(float64(i), func(float64) {})
	}
	id := e.At(3.5, func(float64) {})
	id.Cancel()
	e.Run(100)
	if e.Processed() != 10 {
		t.Fatalf("Processed = %d, want 10", e.Processed())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var log []float64
		e.Every(3, func(now float64) { log = append(log, now) })
		e.Every(5, func(now float64) { log = append(log, now+0.1) })
		e.At(7, func(now float64) {
			e.After(2, func(n2 float64) { log = append(log, n2+0.2) })
		})
		e.Run(50)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func(float64) {})
		if e.Pending() > 4096 {
			e.Run(e.Now() + 0.5)
		}
	}
}

// Property: however events are scheduled (random times, nested scheduling),
// they execute in non-decreasing time order and same-time events in
// scheduling order.
func TestPropertyEventOrdering(t *testing.T) {
	x := uint32(12345)
	next := func(n int) int {
		x = x*1664525 + 1013904223
		return int(x>>8) % n
	}
	e := NewEngine()
	type stamp struct {
		time float64
		seq  int
	}
	var log []stamp
	seq := 0
	for i := 0; i < 500; i++ {
		tt := float64(next(1000))
		mySeq := seq
		seq++
		e.At(tt, func(now float64) {
			log = append(log, stamp{now, mySeq})
			// Occasionally schedule a same-time follow-up.
			if len(log)%7 == 0 {
				s2 := seq
				seq++
				e.At(now, func(n2 float64) { log = append(log, stamp{n2, s2}) })
			}
		})
	}
	e.Run(2000)
	for i := 1; i < len(log); i++ {
		if log[i].time < log[i-1].time {
			t.Fatalf("time went backwards at %d: %v < %v", i, log[i].time, log[i-1].time)
		}
		if log[i].time == log[i-1].time && log[i].seq < log[i-1].seq {
			t.Fatalf("same-time events out of scheduling order at %d", i)
		}
	}
	if len(log) < 500 {
		t.Fatalf("only %d events ran", len(log))
	}
}
