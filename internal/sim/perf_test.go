package sim

import "testing"

// TestPeakQueueAndWall checks the engine's perf counters: peak queue depth
// reflects the deepest simultaneous backlog, and Run accumulates wall time.
func TestPeakQueueAndWall(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(float64(i+1), func(float64) {})
	}
	if got := e.PeakQueue(); got != 5 {
		t.Fatalf("PeakQueue = %d, want 5", got)
	}
	e.Run(10)
	// Draining must not raise the peak.
	if got := e.PeakQueue(); got != 5 {
		t.Fatalf("PeakQueue after run = %d, want 5", got)
	}
	if e.Wall() <= 0 {
		t.Fatal("Wall not accumulated")
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}
