package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSamplerEmpty(t *testing.T) {
	var s Sampler
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(0.5) != 0 {
		t.Fatal("empty sampler not zero")
	}
}

func TestSamplerBasics(t *testing.T) {
	var s Sampler
	for _, v := range []float64{5, 1, 9, 3} {
		s.Add(v)
	}
	s.Add(math.NaN()) // ignored
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 4.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSamplerPercentile(t *testing.T) {
	var s Sampler
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(0.5); p != 50 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(0.95); p != 95 {
		t.Fatalf("p95 = %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := s.Percentile(1); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
}

func TestSamplerAddAfterQuery(t *testing.T) {
	var s Sampler
	s.Add(10)
	if s.Max() != 10 {
		t.Fatal("max wrong")
	}
	s.Add(20) // after a sorted query
	if s.Max() != 20 || s.Min() != 10 {
		t.Fatal("sampler stale after post-query Add")
	}
}

// Property: Min <= Percentile(p) <= Max for any data and p, and Mean lies
// within [Min, Max].
func TestSamplerPropertyBounds(t *testing.T) {
	f := func(raw []float64, praw uint8) bool {
		var s Sampler
		for _, v := range raw {
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				// Bound magnitudes so the running sum cannot overflow;
				// the property under test is ordering, not overflow.
				s.Add(math.Mod(v, 1e9))
			}
		}
		if s.Count() == 0 {
			return true
		}
		p := float64(praw) / 255
		q := s.Percentile(p)
		return s.Min() <= q && q <= s.Max() &&
			s.Min() <= s.Mean()+1e-9*math.Abs(s.Mean()) &&
			s.Mean() <= s.Max()+1e-9*math.Abs(s.Max())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
