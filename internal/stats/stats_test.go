package stats

import (
	"math"
	"testing"

	"sdsrp/internal/msg"
)

func TestEmptySummary(t *testing.T) {
	c := NewCollector()
	s := c.Summarize()
	if s.DeliveryRatio != 0 || s.AvgHops != 0 || s.OverheadRatio != 0 || s.AvgLatency != 0 {
		t.Fatalf("empty summary has nonzero derived metrics: %+v", s)
	}
}

func TestDeliveryRatio(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.MessageCreated(msg.ID(100+i), 0)
	}
	c.Delivered(1, 100, 0, 3)
	c.Delivered(2, 200, 50, 5)
	s := c.Summarize()
	if s.DeliveryRatio != 0.2 {
		t.Fatalf("DeliveryRatio = %v, want 0.2", s.DeliveryRatio)
	}
	if s.AvgHops != 4 {
		t.Fatalf("AvgHops = %v, want 4", s.AvgHops)
	}
	if s.AvgLatency != 125 {
		t.Fatalf("AvgLatency = %v, want (100+150)/2", s.AvgLatency)
	}
}

func TestDuplicateDeliveryNotDoubleCounted(t *testing.T) {
	c := NewCollector()
	c.MessageCreated(1, 0)
	if !c.Delivered(1, 10, 0, 2) {
		t.Fatal("first delivery not reported as first")
	}
	if c.Delivered(1, 20, 0, 7) {
		t.Fatal("second delivery reported as first")
	}
	s := c.Summarize()
	if s.Delivered != 1 || s.Duplicates != 1 {
		t.Fatalf("delivered=%d dup=%d", s.Delivered, s.Duplicates)
	}
	if s.AvgHops != 2 {
		t.Fatalf("AvgHops uses duplicate record: %v", s.AvgHops)
	}
	if !c.WasDelivered(1) || c.WasDelivered(2) {
		t.Fatal("WasDelivered wrong")
	}
}

func TestOverheadRatio(t *testing.T) {
	c := NewCollector()
	c.MessageCreated(1, 0)
	c.MessageCreated(2, 0)
	for i := 0; i < 10; i++ {
		c.TransferCompleted()
	}
	c.Delivered(1, 5, 0, 1)
	c.Delivered(2, 6, 0, 1)
	s := c.Summarize()
	if s.OverheadRatio != 4 { // (10-2)/2
		t.Fatalf("OverheadRatio = %v, want 4", s.OverheadRatio)
	}
}

func TestOverheadWithoutDeliveries(t *testing.T) {
	c := NewCollector()
	c.TransferCompleted()
	s := c.Summarize()
	if !math.IsInf(s.OverheadRatio, 1) {
		t.Fatalf("OverheadRatio = %v, want +Inf", s.OverheadRatio)
	}
}

func TestCounterPassthrough(t *testing.T) {
	c := NewCollector()
	c.TransferStarted()
	c.TransferStarted()
	c.TransferAborted()
	c.TransferRefused()
	c.Dropped()
	c.Dropped()
	c.Dropped()
	c.Expired()
	s := c.Summarize()
	if s.Started != 2 || s.Aborted != 1 || s.Refused != 1 || s.PolicyDrops != 3 || s.ExpiredDrops != 1 {
		t.Fatalf("counters wrong: %+v", s)
	}
}

func TestWarmupExclusion(t *testing.T) {
	c := NewCollector()
	c.WarmupUntil = 100
	c.MessageCreated(1, 50)  // warm-up: excluded
	c.MessageCreated(2, 150) // counted
	if c.Created != 1 {
		t.Fatalf("Created = %d, want 1", c.Created)
	}
	if !c.IsExcluded(1) || c.IsExcluded(2) {
		t.Fatal("exclusion marks wrong")
	}
	// Delivering the warm-up message leaves all metrics untouched.
	if c.Delivered(1, 200, 50, 3) {
		t.Fatal("warm-up delivery reported as first")
	}
	c.Delivered(2, 300, 150, 2)
	s := c.Summarize()
	if s.Delivered != 1 || s.DeliveryRatio != 1 || s.AvgHops != 2 {
		t.Fatalf("summary polluted by warm-up: %+v", s)
	}
	if s.Duplicates != 0 {
		t.Fatal("warm-up delivery counted as duplicate")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.MessageCreated(msg.ID(i), 0)
		c.Delivered(msg.ID(i), float64(i), 0, 1)
	}
	s := c.Summarize()
	if s.MedianLatency != 50 {
		t.Fatalf("median = %v, want 50", s.MedianLatency)
	}
	if s.P95Latency != 95 {
		t.Fatalf("p95 = %v, want 95", s.P95Latency)
	}
	empty := NewCollector().Summarize()
	if empty.MedianLatency != 0 || empty.P95Latency != 0 {
		t.Fatal("percentiles nonzero with no deliveries")
	}
}
