package stats

import (
	"math"
	"testing"

	"sdsrp/internal/rng"
)

func TestIntermeetingEmpty(t *testing.T) {
	var im Intermeeting
	if im.Count() != 0 || im.Mean() != 0 || im.Lambda() != 0 {
		t.Fatal("empty recorder not zero")
	}
	if im.Histogram(10) != nil {
		t.Fatal("Histogram on empty recorder not nil")
	}
	if !math.IsNaN(im.ExpFitError()) {
		t.Fatal("ExpFitError on empty recorder not NaN")
	}
}

func TestIntermeetingIgnoresNegative(t *testing.T) {
	var im Intermeeting
	im.Add(-1)
	im.Add(math.NaN())
	im.Add(5)
	if im.Count() != 1 || im.Mean() != 5 {
		t.Fatalf("count=%d mean=%v", im.Count(), im.Mean())
	}
}

func TestIntermeetingMeanLambda(t *testing.T) {
	var im Intermeeting
	for _, v := range []float64{10, 20, 30} {
		im.Add(v)
	}
	if im.Mean() != 20 {
		t.Fatalf("Mean = %v", im.Mean())
	}
	if math.Abs(im.Lambda()-0.05) > 1e-12 {
		t.Fatalf("Lambda = %v", im.Lambda())
	}
}

func TestExponentialSamplesFitWell(t *testing.T) {
	s := rng.New(5)
	var im Intermeeting
	const mean = 300.0
	for i := 0; i < 50000; i++ {
		im.Add(s.Exp(mean))
	}
	if math.Abs(im.Mean()-mean) > mean*0.03 {
		t.Fatalf("Mean = %v, want ~%v", im.Mean(), mean)
	}
	if err := im.ExpFitError(); err > 0.02 {
		t.Fatalf("ExpFitError = %v for true exponential data", err)
	}
}

func TestUniformSamplesFitBadly(t *testing.T) {
	s := rng.New(6)
	var im Intermeeting
	for i := 0; i < 50000; i++ {
		im.Add(s.Uniform(100, 101)) // far from exponential
	}
	if err := im.ExpFitError(); err < 0.1 {
		t.Fatalf("ExpFitError = %v, expected clearly bad fit", err)
	}
}

func TestHistogram(t *testing.T) {
	var im Intermeeting
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		im.Add(v)
	}
	bins := im.Histogram(5)
	if len(bins) != 5 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Hi <= b.Lo {
			t.Fatalf("bad bin bounds %v", b)
		}
	}
	if total != 10 {
		t.Fatalf("histogram lost samples: %d", total)
	}
	// Density integrates to ~1.
	var integral float64
	for _, b := range bins {
		integral += b.Density * (b.Hi - b.Lo)
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integral = %v", integral)
	}
}

func TestCCDF(t *testing.T) {
	var im Intermeeting
	for _, v := range []float64{1, 2, 3, 4} {
		im.Add(v)
	}
	got := im.CCDF([]float64{0, 1, 2.5, 4, 5})
	want := []float64{1, 0.75, 0.5, 0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CCDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
