package stats

import (
	"math"
	"sort"
)

// Sampler accumulates scalar samples (contact durations, queue depths, …)
// and answers summary queries. The zero value is ready to use.
type Sampler struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Add records one sample; NaNs are ignored.
func (s *Sampler) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.samples = append(s.samples, v)
	s.sum += v
	s.sorted = false
}

// Count returns the number of samples.
func (s *Sampler) Count() int { return len(s.samples) }

// Mean returns the sample mean, or 0 with no samples.
func (s *Sampler) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample, or 0 with none.
func (s *Sampler) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or 0 with none.
func (s *Sampler) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-quantile (p in [0,1]) by nearest-rank, or 0
// with no samples.
func (s *Sampler) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 1 {
		return s.samples[len(s.samples)-1]
	}
	i := int(math.Ceil(p*float64(len(s.samples)))) - 1
	if i < 0 {
		i = 0
	}
	return s.samples[i]
}

func (s *Sampler) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}
