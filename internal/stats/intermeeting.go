package stats

import (
	"math"
	"sort"
)

// Intermeeting records intermeeting-time samples (the gap between the end of
// one contact and the start of the next for a node pair) and fits an
// exponential distribution to them, reproducing the paper's Fig. 3 analysis.
type Intermeeting struct {
	samples []float64
	sum     float64
}

// Add records one intermeeting sample in seconds. Negative samples are
// ignored (they indicate overlapping contacts and carry no information).
func (im *Intermeeting) Add(sample float64) {
	if sample < 0 || math.IsNaN(sample) {
		return
	}
	im.samples = append(im.samples, sample)
	im.sum += sample
}

// Count returns the number of samples.
func (im *Intermeeting) Count() int { return len(im.samples) }

// Mean returns E(I), the sample mean, or 0 with no samples.
func (im *Intermeeting) Mean() float64 {
	if len(im.samples) == 0 {
		return 0
	}
	return im.sum / float64(len(im.samples))
}

// Lambda returns the fitted exponential rate 1/E(I), or 0 with no samples.
func (im *Intermeeting) Lambda() float64 {
	m := im.Mean()
	if m == 0 {
		return 0
	}
	return 1 / m
}

// HistogramBin is one bin of an empirical density alongside the fitted
// exponential density at the bin centre.
type HistogramBin struct {
	Lo, Hi   float64
	Count    int
	Density  float64 // empirical: count / (n · width)
	ExpModel float64 // λ·exp(−λ·centre) with λ fitted from the mean
}

// Histogram bins the samples into nbins equal-width bins over [0, max].
// It returns nil with no samples.
func (im *Intermeeting) Histogram(nbins int) []HistogramBin {
	if len(im.samples) == 0 || nbins <= 0 {
		return nil
	}
	maxV := 0.0
	for _, v := range im.samples {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	width := maxV / float64(nbins)
	bins := make([]HistogramBin, nbins)
	lambda := im.Lambda()
	for i := range bins {
		bins[i].Lo = float64(i) * width
		bins[i].Hi = bins[i].Lo + width
		centre := bins[i].Lo + width/2
		bins[i].ExpModel = lambda * math.Exp(-lambda*centre)
	}
	for _, v := range im.samples {
		i := int(v / width)
		if i >= nbins {
			i = nbins - 1
		}
		bins[i].Count++
	}
	n := float64(len(im.samples))
	for i := range bins {
		bins[i].Density = float64(bins[i].Count) / (n * width)
	}
	return bins
}

// CCDF returns the empirical complementary CDF evaluated at each x:
// P(I > x).
func (im *Intermeeting) CCDF(xs []float64) []float64 {
	sorted := append([]float64(nil), im.samples...)
	sort.Float64s(sorted)
	out := make([]float64, len(xs))
	n := float64(len(sorted))
	if n == 0 {
		return out
	}
	for i, x := range xs {
		// Index of first sample > x.
		j := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
		out[i] = float64(len(sorted)-j) / n
	}
	return out
}

// ExpFitError returns the mean absolute difference between the empirical
// CCDF and the fitted exponential CCDF exp(−λx), sampled at the deciles of
// the data. Small values (≲0.05) indicate the exponential-tail hypothesis
// the paper relies on holds.
func (im *Intermeeting) ExpFitError() float64 {
	if len(im.samples) < 10 {
		return math.NaN()
	}
	sorted := append([]float64(nil), im.samples...)
	sort.Float64s(sorted)
	lambda := im.Lambda()
	var xs []float64
	for d := 1; d <= 9; d++ {
		xs = append(xs, sorted[len(sorted)*d/10])
	}
	emp := im.CCDF(xs)
	var err float64
	for i, x := range xs {
		err += math.Abs(emp[i] - math.Exp(-lambda*x))
	}
	return err / float64(len(xs))
}
