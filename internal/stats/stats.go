// Package stats collects simulation metrics.
//
// The three headline metrics match the paper's Section IV definitions:
//
//   - delivery ratio: delivered messages / created messages
//   - average hopcounts: mean hops of successfully delivered messages
//   - overhead ratio: (forwards − deliveries) / deliveries
//
// plus auxiliary counters (aborts, refusals, drops) and the intermeeting
// time recorder used to reproduce Fig. 3.
package stats

import (
	"math"

	"sdsrp/internal/msg"
)

// Collector accumulates counters for one simulation run. Not safe for
// concurrent use; a run is single-threaded.
type Collector struct {
	// WarmupUntil excludes messages created before it from the per-message
	// metrics (created count, deliveries, hops, latency). Transfer- and
	// drop-level counters still include warm-up activity; the headline
	// ratios are computed over post-warm-up messages only.
	WarmupUntil float64

	Created  int // messages generated
	Forwards int // successfully completed transfers (including delivery hops)
	Started  int // transfers begun
	Aborted  int // transfers cut by link-down
	Refused  int // transfers declined up-front (dropped-list or overflow preflight)
	Lost     int // transfers completed on the wire but discarded by the receiver

	PolicyDrops  int // buffer-overflow evictions
	ExpiredDrops int // TTL removals
	AckPurges    int // copies purged by the immunization extension

	delivered  map[msg.ID]DeliveryRecord
	excluded   map[msg.ID]bool // warm-up messages, invisible to metrics
	duplicates int             // deliveries of already-delivered messages
	latencies  Sampler         // delivery latencies in delivery order
	// Running sums accumulated in delivery order, so Summarize never
	// depends on map iteration order (float addition is not associative).
	hopSum     int
	latencySum float64
}

// DeliveryRecord describes the first delivery of a message.
type DeliveryRecord struct {
	At      float64
	Latency float64
	Hops    int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		delivered: make(map[msg.ID]DeliveryRecord),
		excluded:  make(map[msg.ID]bool),
	}
}

// MessageCreated counts a generated message; messages born during warm-up
// are recorded as excluded instead.
func (c *Collector) MessageCreated(id msg.ID, created float64) {
	if created < c.WarmupUntil {
		c.excluded[id] = true
		return
	}
	c.Created++
}

// IsExcluded reports whether id was generated during warm-up.
func (c *Collector) IsExcluded(id msg.ID) bool { return c.excluded[id] }

// TransferStarted counts a transfer beginning.
func (c *Collector) TransferStarted() { c.Started++ }

// TransferAborted counts a transfer cut mid-flight.
func (c *Collector) TransferAborted() { c.Aborted++ }

// TransferRefused counts a transfer declined before any bytes moved.
func (c *Collector) TransferRefused() { c.Refused++ }

// TransferLost counts a transfer whose bytes crossed the wire but were
// discarded by the receiver (injected loss or a black-hole node).
func (c *Collector) TransferLost() { c.Lost++ }

// TransferCompleted counts a successful transfer (a "forward" in the
// paper's overhead metric, whether spray, relay, or final delivery).
func (c *Collector) TransferCompleted() { c.Forwards++ }

// Dropped counts a policy eviction.
func (c *Collector) Dropped() { c.PolicyDrops++ }

// Expired counts a TTL removal.
func (c *Collector) Expired() { c.ExpiredDrops++ }

// AckPurged counts a copy removed by ACK immunization.
func (c *Collector) AckPurged() { c.AckPurges++ }

// Delivered records a message reaching its destination. Only the first
// delivery of each message counts; later copies are tallied as duplicates.
// It reports whether this was the first delivery.
func (c *Collector) Delivered(id msg.ID, now, created float64, hops int) bool {
	if c.excluded[id] {
		return false
	}
	if _, ok := c.delivered[id]; ok {
		c.duplicates++
		return false
	}
	c.delivered[id] = DeliveryRecord{At: now, Latency: now - created, Hops: hops}
	c.hopSum += hops
	c.latencySum += now - created
	c.latencies.Add(now - created)
	return true
}

// DeliveryOf returns the delivery record for id, if delivered.
func (c *Collector) DeliveryOf(id msg.ID) (DeliveryRecord, bool) {
	r, ok := c.delivered[id]
	return r, ok
}

// WasDelivered reports whether id has reached its destination.
func (c *Collector) WasDelivered(id msg.ID) bool {
	_, ok := c.delivered[id]
	return ok
}

// DeliveredCount returns the number of distinct messages delivered.
func (c *Collector) DeliveredCount() int { return len(c.delivered) }

// Duplicates returns the number of redundant deliveries observed.
func (c *Collector) Duplicates() int { return c.duplicates }

// Summary is the digest of a finished run.
type Summary struct {
	Created       int
	Delivered     int
	Forwards      int
	Started       int
	Aborted       int
	Refused       int
	Lost          int
	PolicyDrops   int
	ExpiredDrops  int
	AckPurges     int
	Duplicates    int
	DeliveryRatio float64
	AvgHops       float64
	OverheadRatio float64
	AvgLatency    float64
	// MedianLatency and P95Latency summarize the delivery-delay
	// distribution (0 with no deliveries).
	MedianLatency float64
	P95Latency    float64
}

// Summarize computes the derived metrics. Ratios involving zero deliveries
// are reported as 0 (delivery, hops, latency) and NaN-free: overhead with
// zero deliveries is reported as +Inf only when forwards occurred, else 0.
func (c *Collector) Summarize() Summary {
	s := Summary{
		Created:      c.Created,
		Delivered:    len(c.delivered),
		Forwards:     c.Forwards,
		Started:      c.Started,
		Aborted:      c.Aborted,
		Refused:      c.Refused,
		Lost:         c.Lost,
		PolicyDrops:  c.PolicyDrops,
		ExpiredDrops: c.ExpiredDrops,
		AckPurges:    c.AckPurges,
		Duplicates:   c.duplicates,
	}
	if c.Created > 0 {
		s.DeliveryRatio = float64(s.Delivered) / float64(c.Created)
	}
	if s.Delivered > 0 {
		s.AvgHops = float64(c.hopSum) / float64(s.Delivered)
		s.AvgLatency = c.latencySum / float64(s.Delivered)
		s.MedianLatency = c.latencies.Percentile(0.5)
		s.P95Latency = c.latencies.Percentile(0.95)
		s.OverheadRatio = float64(c.Forwards-s.Delivered) / float64(s.Delivered)
	} else if c.Forwards > 0 {
		s.OverheadRatio = math.Inf(1)
	}
	return s
}
