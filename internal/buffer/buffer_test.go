package buffer

import (
	"testing"
	"testing/quick"

	"sdsrp/internal/msg"
)

func mk(id msg.ID, size int64) *msg.Stored {
	m := &msg.Message{ID: id, Size: size, TTL: 1000, InitialCopies: 4}
	return msg.NewSourceCopy(m)
}

func TestEmpty(t *testing.T) {
	b := New(1000)
	if b.Len() != 0 || b.Used() != 0 || b.Free() != 1000 || b.Capacity() != 1000 {
		t.Fatalf("empty buffer state wrong: %d %d %d", b.Len(), b.Used(), b.Free())
	}
	if b.Oldest() != nil {
		t.Fatal("Oldest on empty buffer not nil")
	}
	if b.Remove(1) != nil {
		t.Fatal("Remove on empty buffer not nil")
	}
}

func TestAddAccounting(t *testing.T) {
	b := New(1000)
	if err := b.Add(mk(1, 400)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(mk(2, 600)); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 1000 || b.Free() != 0 || b.Len() != 2 {
		t.Fatalf("state after fills: used=%d free=%d len=%d", b.Used(), b.Free(), b.Len())
	}
	if !b.Has(1) || !b.Has(2) || b.Has(3) {
		t.Fatal("Has wrong")
	}
}

func TestAddOverflowRejected(t *testing.T) {
	b := New(500)
	if err := b.Add(mk(1, 400)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(mk(2, 101)); err == nil {
		t.Fatal("overflow Add succeeded")
	}
	if b.Len() != 1 || b.Used() != 400 {
		t.Fatal("failed Add mutated buffer")
	}
}

func TestAddDuplicateRejected(t *testing.T) {
	b := New(1000)
	if err := b.Add(mk(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(mk(1, 100)); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
}

func TestRemove(t *testing.T) {
	b := New(1000)
	b.Add(mk(1, 100))
	b.Add(mk(2, 200))
	b.Add(mk(3, 300))
	s := b.Remove(2)
	if s == nil || s.M.ID != 2 {
		t.Fatalf("Remove returned %v", s)
	}
	if b.Used() != 400 || b.Len() != 2 {
		t.Fatalf("after remove: used=%d len=%d", b.Used(), b.Len())
	}
	// Order preserved; index still valid.
	items := b.Items()
	if items[0].M.ID != 1 || items[1].M.ID != 3 {
		t.Fatalf("order after remove: %v %v", items[0].M.ID, items[1].M.ID)
	}
	if got := b.Get(3); got == nil || got.M.ID != 3 {
		t.Fatal("index corrupted after remove")
	}
}

func TestInsertionOrderAndOldest(t *testing.T) {
	b := New(10000)
	for id := msg.ID(1); id <= 5; id++ {
		b.Add(mk(id, 10))
	}
	if b.Oldest().M.ID != 1 {
		t.Fatalf("Oldest = %d", b.Oldest().M.ID)
	}
	b.Remove(1)
	if b.Oldest().M.ID != 2 {
		t.Fatalf("Oldest after remove = %d", b.Oldest().M.ID)
	}
}

func TestFits(t *testing.T) {
	b := New(100)
	if !b.Fits(100) || b.Fits(101) {
		t.Fatal("Fits wrong on empty")
	}
	b.Add(mk(1, 60))
	if !b.Fits(40) || b.Fits(41) {
		t.Fatal("Fits wrong after add")
	}
}

func TestExpired(t *testing.T) {
	b := New(10000)
	m1 := &msg.Message{ID: 1, Size: 10, Created: 0, TTL: 50}
	m2 := &msg.Message{ID: 2, Size: 10, Created: 0, TTL: 500}
	b.Add(msg.NewSourceCopy(m1))
	b.Add(msg.NewSourceCopy(m2))
	dead := b.Expired(100, nil)
	if len(dead) != 1 || dead[0].M.ID != 1 {
		t.Fatalf("Expired = %v", dead)
	}
	if len(b.Expired(10, nil)) != 0 {
		t.Fatal("Expired reported live message")
	}
}

// Property: any sequence of adds and removes keeps Used equal to the sum of
// stored sizes, keeps the index consistent, and never exceeds capacity.
func TestPropertyAccountingInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := New(5000)
		live := map[msg.ID]int64{}
		nextID := msg.ID(1)
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := int64(op%900) + 1
				if b.Fits(size) {
					if b.Add(mk(nextID, size)) != nil {
						return false
					}
					live[nextID] = size
					nextID++
				}
			} else {
				// Remove some live id (map iteration order is fine here).
				for id := range live {
					if b.Remove(id) == nil {
						return false
					}
					delete(live, id)
					break
				}
			}
			var sum int64
			for _, sz := range live {
				sum += sz
			}
			if b.Used() != sum || b.Used() > b.Capacity() || b.Len() != len(live) {
				return false
			}
			for id := range live {
				got := b.Get(id)
				if got == nil || got.M.ID != id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddRemove(b *testing.B) {
	buf := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := msg.ID(i % 64)
		if buf.Has(id) {
			buf.Remove(id)
		}
		buf.Add(mk(id, 1024))
	}
}
