// Package buffer implements a node's byte-budgeted message store.
//
// The buffer only accounts and stores; *which* message to evict on overflow
// is a policy decision made by internal/policy and executed by the router.
// Iteration order is insertion order (FIFO), which the FIFO policy relies
// on directly.
//
// # Performance contract
//
// Items returns the live backing slice (not a copy) in insertion order;
// callers must not mutate it and must not hold it across an Add or Remove.
// internal/policy's Orderer copies it into its own scratch space before
// sorting for exactly this reason. Lookups (Has/Get) go through a
// by-ID map, so membership checks on the transfer hot path are O(1);
// Remove compacts the slice in place, preserving order, at O(n) — overflow
// evictions are rare relative to lookups. Byte accounting (Used/Free) is
// maintained incrementally and costs O(1).
//lint:shard-safe per-node store; no package state, no substreams
package buffer

import (
	"fmt"

	"sdsrp/internal/msg"
)

// Buffer is a byte-capacity-bounded store of message copies. The zero value
// is not usable; construct with New.
type Buffer struct {
	capacity int64
	used     int64
	items    []*msg.Stored  // insertion order
	index    map[msg.ID]int // id -> position in items
}

// New returns an empty buffer with the given capacity in bytes.
func New(capacity int64) *Buffer {
	return &Buffer{capacity: capacity, index: make(map[msg.ID]int)}
}

// Capacity returns the byte capacity.
func (b *Buffer) Capacity() int64 { return b.capacity }

// Used returns the bytes currently stored.
func (b *Buffer) Used() int64 { return b.used }

// Free returns the bytes available.
func (b *Buffer) Free() int64 { return b.capacity - b.used }

// Len returns the number of stored messages.
func (b *Buffer) Len() int { return len(b.items) }

// Has reports whether a copy of message id is stored.
//
// Performance contract: a single map probe; O(1) and allocation-free on
// the transfer hot path.
func (b *Buffer) Has(id msg.ID) bool {
	_, ok := b.index[id]
	return ok
}

// Get returns the stored copy of id, or nil.
//
// Performance contract: a single map probe; O(1) and allocation-free on
// the transfer hot path.
func (b *Buffer) Get(id msg.ID) *msg.Stored {
	if i, ok := b.index[id]; ok {
		return b.items[i]
	}
	return nil
}

// Items returns the stored copies in insertion (receive) order. The returned
// slice is the buffer's backing storage: callers must not mutate it and must
// not hold it across Add/Remove calls.
func (b *Buffer) Items() []*msg.Stored { return b.items }

// Add stores s. It returns an error if a copy of the same message is already
// present or if it does not fit; the router must evict first.
func (b *Buffer) Add(s *msg.Stored) error {
	if _, ok := b.index[s.M.ID]; ok {
		return fmt.Errorf("buffer: duplicate message %d", s.M.ID)
	}
	if s.M.Size > b.Free() {
		return fmt.Errorf("buffer: message %d (%dB) exceeds free space (%dB)",
			s.M.ID, s.M.Size, b.Free())
	}
	b.index[s.M.ID] = len(b.items)
	b.items = append(b.items, s)
	b.used += s.M.Size
	return nil
}

// Remove deletes the copy of id and returns it, or nil if absent. Insertion
// order of the remaining items is preserved.
func (b *Buffer) Remove(id msg.ID) *msg.Stored {
	i, ok := b.index[id]
	if !ok {
		return nil
	}
	s := b.items[i]
	copy(b.items[i:], b.items[i+1:])
	b.items[len(b.items)-1] = nil
	b.items = b.items[:len(b.items)-1]
	delete(b.index, id)
	for j := i; j < len(b.items); j++ {
		b.index[b.items[j].M.ID] = j
	}
	b.used -= s.M.Size
	return s
}

// Oldest returns the earliest-inserted copy, or nil when empty.
func (b *Buffer) Oldest() *msg.Stored {
	if len(b.items) == 0 {
		return nil
	}
	return b.items[0]
}

// Fits reports whether a message of the given size could be stored right now
// without eviction.
func (b *Buffer) Fits(size int64) bool { return size <= b.Free() }

// Expired appends to out all copies whose message is dead at now.
func (b *Buffer) Expired(now float64, out []*msg.Stored) []*msg.Stored {
	for _, s := range b.items {
		if s.M.Expired(now) {
			out = append(out, s)
		}
	}
	return out
}
