package experiment

import (
	"fmt"
	"math"

	"sdsrp/internal/report"
)

// CheckShapes evaluates the qualitative claims of the paper's Section IV
// against regenerated panels and returns a list of violations (empty when
// every encoded claim holds). It is the science-regression harness behind
// `cmd/experiments -check`: code changes that silently break a curve
// ordering fail the check even while unit tests stay green.
//
// The expectations deliberately use sweep-wide aggregates (means, trends,
// win fractions) rather than point-wise dominance, since single points are
// seed-noisy; EXPERIMENTS.md documents the point-wise record.
func CheckShapes(name string, panels []report.Panel) []string {
	var v []string
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	get := func(i int, label string) *report.Curve {
		if i >= len(panels) {
			add("%s: missing panel %d", name, i)
			return nil
		}
		c := panels[i].CurveByLabel(label)
		if c == nil {
			add("%s/%s: missing curve %q", name, panels[i].ID, label)
		}
		return c
	}
	meanOf := func(i int, label string) float64 {
		if c := get(i, label); c != nil {
			return report.Mean(c.Y)
		}
		return math.NaN()
	}

	switch name {
	case "fig3":
		for _, p := range panels {
			emp := p.CurveByLabel("empirical")
			model := p.CurveByLabel("exp fit")
			if emp == nil || model == nil {
				add("%s/%s: curves missing", name, p.ID)
				continue
			}
			if emp.Y[0] <= emp.Y[len(emp.Y)-1] {
				add("%s/%s: density not front-loaded (not exponential-like)", name, p.ID)
			}
			// The empirical density should track the fitted exponential:
			// mean absolute gap below half the model's peak.
			var gap, peak float64
			for i := range emp.Y {
				gap += math.Abs(emp.Y[i] - model.Y[i])
				peak = math.Max(peak, model.Y[i])
			}
			gap /= float64(len(emp.Y))
			if gap > peak/2 {
				add("%s/%s: empirical density far from exponential fit (gap %.3g vs peak %.3g)", name, p.ID, gap, peak)
			}
		}

	case "fig4":
		p := panels[0]
		ideal := p.CurveByLabel("idealization")
		if ideal == nil {
			add("fig4: idealization curve missing")
			break
		}
		best := 0
		for i, y := range ideal.Y {
			if y > ideal.Y[best] {
				best = i
			}
		}
		if math.Abs(p.X[best]-(1-1/math.E)) > 0.05 {
			add("fig4: peak at P(R)=%.3f, want ≈0.632", p.X[best])
		}
		for _, lbl := range []string{"Taylor k=1", "Taylor k=5"} {
			c := p.CurveByLabel(lbl)
			if c == nil {
				add("fig4: %s missing", lbl)
				continue
			}
			for i := range c.Y {
				if c.Y[i] > ideal.Y[i]+1e-9 {
					add("fig4: %s exceeds idealization at P(R)=%.2f", lbl, p.X[i])
					break
				}
			}
		}

	case "fig8copies", "fig9copies", "fig8buffer", "fig9buffer", "fig8rate", "fig9rate":
		const (
			dr = 0 // delivery panel index
			hp = 1 // hopcounts
			oh = 2 // overhead
		)
		// SW-C delivers least of the four, on average over the sweep.
		swc := meanOf(dr, "SprayAndWait-C")
		for _, other := range []string{"SprayAndWait", "SprayAndWait-O", "SDSRP"} {
			if m := meanOf(dr, other); !math.IsNaN(m) && swc >= m {
				add("%s: SW-C delivery (%.3f) not below %s (%.3f)", name, swc, other, m)
			}
		}
		// Delivery vs plain SW. On the EPFL figures SDSRP leads outright;
		// on RWP the light-load corner is genuinely close (the documented
		// honest mismatch in EXPERIMENTS.md), so the claim there is a 10%
		// band plus leadership at the most-congested sweep point.
		sdsrp, sw := meanOf(dr, "SDSRP"), meanOf(dr, "SprayAndWait")
		if len(name) >= 4 && name[:4] == "fig9" {
			if sdsrp <= sw {
				add("%s: SDSRP delivery (%.3f) not above SW (%.3f) on EPFL", name, sdsrp, sw)
			}
		} else {
			if sdsrp < sw*0.90 {
				add("%s: SDSRP delivery (%.3f) clearly below SW (%.3f)", name, sdsrp, sw)
			}
			cs, cw := get(dr, "SDSRP"), get(dr, "SprayAndWait")
			if name == "fig8rate" && cs != nil && cw != nil && cs.Y[0] < cw.Y[0] {
				add("%s: SDSRP not leading at the most congested interval", name)
			}
		}
		// Hopcounts: SW-C lowest; SDSRP "similar" to SW (the paper's wording)
		// — flag only when SDSRP clearly exceeds plain SW (>15% relative; on
		// the EPFL substitute SDSRP's extra successful long-haul deliveries
		// push its mean a few percent above SW's).
		if meanOf(hp, "SDSRP") > meanOf(hp, "SprayAndWait")*1.15 {
			add("%s: SDSRP hopcounts clearly above SW", name)
		}
		if meanOf(hp, "SprayAndWait-C") > meanOf(hp, "SprayAndWait") {
			add("%s: SW-C hopcounts above SW", name)
		}
		// Overhead: SDSRP lowest, SW-C highest, across most of the sweep.
		for _, other := range []string{"SprayAndWait", "SprayAndWait-O", "SprayAndWait-C"} {
			c1, c2 := get(oh, "SDSRP"), get(oh, other)
			if c1 == nil || c2 == nil {
				continue
			}
			if report.WinFraction(c2.Y, c1.Y) < 0.75 {
				add("%s: SDSRP overhead not below %s on ≥75%% of the sweep", name, other)
			}
		}
		if meanOf(oh, "SprayAndWait-C") < meanOf(oh, "SprayAndWait") {
			add("%s: SW-C overhead below SW", name)
		}
		// Sweep-specific trends.
		switch name {
		case "fig8buffer", "fig9buffer", "fig8rate", "fig9rate":
			// Delivery improves as buffers grow / load lightens.
			for _, lbl := range []string{"SprayAndWait", "SDSRP"} {
				if c := get(dr, lbl); c != nil && report.Trend(panels[dr].X, c.Y) <= 0 {
					add("%s: %s delivery not rising along the sweep", name, lbl)
				}
			}
		case "fig8copies", "fig9copies":
			// SW-O declines with L.
			if c := get(dr, "SprayAndWait-O"); c != nil && report.Trend(panels[dr].X, c.Y) >= 0 {
				add("%s: SW-O delivery not declining with L", name)
			}
		}

	default:
		add("no shape expectations encoded for %s", name)
	}
	return v
}

// CheckableFigures lists the experiment names CheckShapes understands.
func CheckableFigures() []string {
	return []string{"fig3", "fig4", "fig8copies", "fig8buffer", "fig8rate",
		"fig9copies", "fig9buffer", "fig9rate"}
}
