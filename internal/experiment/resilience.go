package experiment

import (
	"fmt"

	"sdsrp/internal/config"
	"sdsrp/internal/fault"
	"sdsrp/internal/report"
)

// resilienceSweep runs the compared policies across a fault-intensity axis
// (instead of the usual buffer-size axis) and produces the three paper
// metric panels. setFault installs the fault config for intensity point xi
// into a scenario whose Duration has already been scaled.
func resilienceSweep(id, title, xlabel string, x []float64, ticks []string,
	setFault func(*config.Scenario, int), o Options) ([]report.Panel, error) {
	o = o.withDefaults()
	base := o.apply(config.RandomWaypoint())

	type cell struct{ policy, point int }
	var scs []config.Scenario
	var cells []cell
	for pi, pol := range o.Policies {
		for xi := range x {
			for _, seed := range o.Seeds {
				sc := base
				sc.PolicyName = pol
				sc.Seed = seed
				setFault(&sc, xi)
				sc.Name = fmt.Sprintf("%s-%s-%s-%d", id, pol, ticks[xi], seed)
				scs = append(scs, sc)
				cells = append(cells, cell{pi, xi})
			}
		}
	}
	results, err := o.runBatch(scs)
	if err != nil {
		return nil, err
	}
	metrics := paperMetrics()
	panels := make([]report.Panel, len(metrics))
	for mi, m := range metrics {
		panels[mi] = report.Panel{
			ID:     fmt.Sprintf("%s-%c", id, 'a'+mi),
			Title:  title + " — " + m.label,
			XLabel: xlabel,
			YLabel: m.label,
			XTicks: ticks,
			X:      x,
		}
		for pi, pol := range o.Policies {
			y := make([]float64, len(x))
			for xi := range x {
				var sum float64
				n := 0
				for ci, c := range cells {
					if c.policy == pi && c.point == xi {
						sum += m.get(results[ci])
						n++
					}
				}
				y[xi] = sum / float64(n)
			}
			panels[mi].Curves = append(panels[mi].Curves, report.Curve{Label: pol, Y: y})
		}
	}
	return panels, nil
}

// ResilienceLoss sweeps per-transfer loss probability: transfers complete on
// the wire (spending contact time and spray tokens) but the payload is
// discarded at the receiver. Redundancy-heavy policies shrug it off;
// token-frugal ones pay more per lost copy.
func ResilienceLoss(o Options) ([]report.Panel, error) {
	probs := []float64{0, 0.1, 0.2, 0.3, 0.4}
	ticks := make([]string, len(probs))
	for i, p := range probs {
		ticks[i] = fmt.Sprintf("%g", p)
	}
	return resilienceSweep("resilience-loss", "transfer loss", "loss probability",
		probs, ticks, func(sc *config.Scenario, xi int) {
			sc.Faults.TransferLossProb = probs[xi]
		}, o)
}

// ResilienceChurn sweeps node crash/reboot churn with buffer wipe: the
// x-axis is the expected number of outages per node over the run (mean
// uptime = Duration/k), each outage lasting 1/40 of the run on average.
// Wiping reboots destroy queued copies, so buffer-management quality
// matters more the less redundancy survives.
func ResilienceChurn(o Options) ([]report.Panel, error) {
	outages := []float64{0, 1, 2, 4, 8}
	ticks := make([]string, len(outages))
	for i, k := range outages {
		ticks[i] = fmt.Sprintf("%g", k)
	}
	return resilienceSweep("resilience-churn", "node churn (wiping reboots)", "expected outages per node",
		outages, ticks, func(sc *config.Scenario, xi int) {
			if outages[xi] == 0 {
				return // no churn at the baseline point
			}
			sc.Faults.Churn = fault.Churn{
				MeanUp:       sc.Duration / outages[xi],
				MeanDown:     sc.Duration / 40,
				WipeOnReboot: true,
			}
		}, o)
}

// ResilienceBlackhole sweeps the fraction of nodes that accept every copy
// and silently discard it: the classic DTN black-hole attack. Senders keep
// spending spray tokens on attackers, so delivery degrades faster than the
// removed-node fraction alone would suggest.
func ResilienceBlackhole(o Options) ([]report.Panel, error) {
	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4}
	ticks := make([]string, len(fracs))
	for i, f := range fracs {
		ticks[i] = fmt.Sprintf("%g", f)
	}
	return resilienceSweep("resilience-blackhole", "black-hole nodes", "black-hole fraction",
		fracs, ticks, func(sc *config.Scenario, xi int) {
			sc.Faults.BlackHoleFraction = fracs[xi]
		}, o)
}
