package experiment

import (
	"sync"
	"testing"

	"sdsrp/internal/config"
)

func tinyScenario(seed uint64) config.Scenario {
	sc := config.RandomWaypoint()
	sc.Nodes = 10
	sc.Duration = 600
	sc.TTL = 300
	sc.Area.Max.X = 500
	sc.Area.Max.Y = 500
	sc.Seed = seed
	return sc
}

// TestRunTimedProgress checks the timed progress payload: done reaches
// total, elapsed is monotone per callback, ETA is non-negative and zero on
// the final run, and every run reports its own wall-clock.
func TestRunTimedProgress(t *testing.T) {
	scs := []config.Scenario{tinyScenario(1), tinyScenario(2), tinyScenario(3)}
	var mu sync.Mutex
	var infos []ProgressInfo
	_, err := RunTimed(scs, 2, func(p ProgressInfo) {
		mu.Lock()
		infos = append(infos, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(scs) {
		t.Fatalf("got %d callbacks, want %d", len(infos), len(scs))
	}
	seen := map[int]bool{}
	for _, p := range infos {
		if p.Total != len(scs) {
			t.Errorf("Total = %d, want %d", p.Total, len(scs))
		}
		if p.Done < 1 || p.Done > p.Total || seen[p.Done] {
			t.Errorf("bad or duplicate Done %d", p.Done)
		}
		seen[p.Done] = true
		if p.Elapsed < 0 || p.ETA < 0 || p.LastRunWall < 0 {
			t.Errorf("negative timing in %+v", p)
		}
		if p.Done == p.Total && p.ETA != 0 {
			t.Errorf("final callback has nonzero ETA %v", p.ETA)
		}
	}
}

// TestOptionsProgressMerge checks the merged callback drives both the
// legacy and the stats-rich interfaces.
func TestOptionsProgressMerge(t *testing.T) {
	if (Options{}).progress() != nil {
		t.Fatal("no callbacks should merge to nil")
	}
	var legacy, rich int
	o := Options{
		Progress:      func(done, total int) { legacy++ },
		ProgressStats: func(p ProgressInfo) { rich++ },
	}
	cb := o.progress()
	cb(ProgressInfo{Done: 1, Total: 2})
	if legacy != 1 || rich != 1 {
		t.Fatalf("legacy=%d rich=%d, want 1/1", legacy, rich)
	}
}
