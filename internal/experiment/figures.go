package experiment

import (
	"fmt"

	"sdsrp/internal/config"
	"sdsrp/internal/core"
	"sdsrp/internal/report"
	"sdsrp/internal/world"
)

// CopiesSweep returns the Table II initial-copies sweep: 16..64 step 4.
func CopiesSweep() []int {
	var out []int
	for l := 16; l <= 64; l += 4 {
		out = append(out, l)
	}
	return out
}

// BufferSweep returns the Table II buffer sweep: 2.0..5.0 MB step 0.5.
func BufferSweep() []int64 {
	var out []int64
	for b := 4; b <= 10; b++ { // half-megabytes
		out = append(out, int64(b)*config.MB/2)
	}
	return out
}

// RateSweep returns the Table II generation-interval sweep:
// [10,15], [15,20], ..., [45,50] seconds per message.
func RateSweep() [][2]float64 {
	var out [][2]float64
	for lo := 10.0; lo <= 45; lo += 5 {
		out = append(out, [2]float64{lo, lo + 5})
	}
	return out
}

// metric extracts one y-value from a run result.
type metric struct {
	label string
	get   func(world.Result) float64
}

func paperMetrics() []metric {
	return []metric{
		{"Delivery ratio", func(r world.Result) float64 { return r.DeliveryRatio }},
		{"Average hopcounts", func(r world.Result) float64 { return r.AvgHops }},
		{"Overhead ratio", func(r world.Result) float64 { return r.OverheadRatio }},
	}
}

// sweep describes one three-panel column of Fig. 8 / Fig. 9.
type sweep struct {
	figure string // "fig8" or "fig9"
	col    int    // 0: a–c, 1: d–f, 2: g–i
	title  string
	xlabel string
	x      []float64
	ticks  []string
	mutate func(*config.Scenario, int) // applies sweep point i
}

// panelSuffix maps (column, metric) to the paper's panel letter: columns
// are copies/buffer/rate, rows are delivery/hops/overhead.
func panelSuffix(col, row int) string {
	return string(rune('a' + col*3 + row))
}

// runSweep executes policies × sweep points × seeds and reduces to three
// panels (delivery ratio, hopcounts, overhead), averaging across seeds.
func runSweep(base config.Scenario, sw sweep, o Options) ([]report.Panel, error) {
	o = o.withDefaults()
	base = o.apply(base)

	type cell struct{ policy, point, seed int }
	var scs []config.Scenario
	var cells []cell
	for pi, pol := range o.Policies {
		for xi := range sw.x {
			for si, seed := range o.Seeds {
				sc := base
				sc.PolicyName = pol
				sc.Seed = seed
				sw.mutate(&sc, xi)
				sc.Name = fmt.Sprintf("%s-%s-%s-%d", sw.figure, pol, sw.ticks[xi], seed)
				scs = append(scs, sc)
				cells = append(cells, cell{pi, xi, si})
			}
		}
	}
	results, err := o.runBatch(scs)
	if err != nil {
		return nil, err
	}

	metrics := paperMetrics()
	panels := make([]report.Panel, len(metrics))
	for mi, m := range metrics {
		panels[mi] = report.Panel{
			ID:     sw.figure + panelSuffix(sw.col, mi),
			Title:  m.label + " vs " + sw.title,
			XLabel: sw.xlabel,
			YLabel: m.label,
			XTicks: sw.ticks,
			X:      sw.x,
		}
		for pi, pol := range o.Policies {
			y := make([]float64, len(sw.x))
			for xi := range sw.x {
				var sum float64
				n := 0
				for ci, c := range cells {
					if c.policy == pi && c.point == xi {
						sum += m.get(results[ci])
						n++
					}
				}
				y[xi] = sum / float64(n)
			}
			panels[mi].Curves = append(panels[mi].Curves, report.Curve{Label: pol, Y: y})
		}
	}
	return panels, nil
}

// Fig8Copies reproduces Fig. 8 (a)–(c): metrics vs initial copies under
// random-waypoint (buffer 2.5 MB, rate [25,35]).
func Fig8Copies(o Options) ([]report.Panel, error) {
	return figCopies("fig8", config.RandomWaypoint(), o)
}

// Fig9Copies reproduces Fig. 9 (a)–(c) on the EPFL substitute.
func Fig9Copies(o Options) ([]report.Panel, error) {
	return figCopies("fig9", config.EPFL(), o)
}

func figCopies(figure string, base config.Scenario, o Options) ([]report.Panel, error) {
	ls := CopiesSweep()
	x := make([]float64, len(ls))
	ticks := make([]string, len(ls))
	for i, l := range ls {
		x[i] = float64(l)
		ticks[i] = fmt.Sprintf("%d", l)
	}
	return runSweep(base, sweep{
		figure: figure, col: 0,
		title:  "initial number of copies",
		xlabel: "initial copies L",
		x:      x, ticks: ticks,
		mutate: func(sc *config.Scenario, i int) { sc.InitialCopies = ls[i] },
	}, o)
}

// Fig8Buffer reproduces Fig. 8 (d)–(f): metrics vs buffer size (L = 32,
// rate [25,35]).
func Fig8Buffer(o Options) ([]report.Panel, error) {
	return figBuffer("fig8", config.RandomWaypoint(), o)
}

// Fig9Buffer reproduces Fig. 9 (d)–(f) on the EPFL substitute.
func Fig9Buffer(o Options) ([]report.Panel, error) {
	return figBuffer("fig9", config.EPFL(), o)
}

func figBuffer(figure string, base config.Scenario, o Options) ([]report.Panel, error) {
	bs := BufferSweep()
	x := make([]float64, len(bs))
	ticks := make([]string, len(bs))
	for i, b := range bs {
		x[i] = float64(b) / float64(config.MB)
		ticks[i] = fmt.Sprintf("%.1fMB", x[i])
	}
	return runSweep(base, sweep{
		figure: figure, col: 1,
		title:  "buffer size",
		xlabel: "buffer size (MB)",
		x:      x, ticks: ticks,
		mutate: func(sc *config.Scenario, i int) { sc.BufferBytes = bs[i] },
	}, o)
}

// Fig8Rate reproduces Fig. 8 (g)–(i): metrics vs message generation rate
// (L = 32, buffer 2.5 MB). Interval [10,15] is the heaviest load; load
// decreases along the axis as in the paper.
func Fig8Rate(o Options) ([]report.Panel, error) {
	return figRate("fig8", config.RandomWaypoint(), o)
}

// Fig9Rate reproduces Fig. 9 (g)–(i) on the EPFL substitute.
func Fig9Rate(o Options) ([]report.Panel, error) {
	return figRate("fig9", config.EPFL(), o)
}

func figRate(figure string, base config.Scenario, o Options) ([]report.Panel, error) {
	rs := RateSweep()
	x := make([]float64, len(rs))
	ticks := make([]string, len(rs))
	for i, r := range rs {
		x[i] = r[0]
		ticks[i] = fmt.Sprintf("%.0f-%.0f", r[0], r[1])
	}
	return runSweep(base, sweep{
		figure: figure, col: 2,
		title:  "message generation interval",
		xlabel: "generation interval (s)",
		x:      x, ticks: ticks,
		mutate: func(sc *config.Scenario, i int) {
			sc.GenIntervalLo, sc.GenIntervalHi = rs[i][0], rs[i][1]
		},
	}, o)
}

// Fig3 reproduces the intermeeting-time distributions: traffic-free runs of
// both scenarios, with the empirical density binned against the fitted
// exponential λe^{−λx} (one panel per scenario).
func Fig3(o Options) ([]report.Panel, error) {
	o = o.withDefaults()
	rwp := o.apply(config.RandomWaypoint())
	epfl := o.apply(config.EPFL())
	for _, sc := range []*config.Scenario{&rwp, &epfl} {
		sc.GenIntervalLo = 0 // mobility only
		sc.RecordIntermeeting = true
		sc.PolicyName = "SprayAndWait"
	}
	rwp.Name, epfl.Name = "fig3a-rwp", "fig3b-epfl"
	// These runs are built directly (not through Run) because the panel
	// needs the full Intermeeting recorder, not just the Result digest.
	panels := make([]report.Panel, 0, 2)
	for i, sc := range []config.Scenario{rwp, epfl} {
		w, err := world.Build(sc)
		if err != nil {
			return nil, err
		}
		res, err := w.Run()
		if err != nil {
			return nil, err
		}
		const nbins = 20
		bins := w.Intermeeting.Histogram(nbins)
		p := report.Panel{
			ID:     []string{"fig3a", "fig3b"}[i],
			Title:  fmt.Sprintf("Intermeeting distribution, %s (n=%d, mean=%.0fs, fit err=%.3f)", sc.Name, res.IntermeetingN, res.MeanIntermeeting, res.ExpFitError),
			XLabel: "intermeeting time (s)",
			YLabel: "density",
		}
		for _, b := range bins {
			p.X = append(p.X, (b.Lo+b.Hi)/2)
		}
		emp := report.Curve{Label: "empirical"}
		model := report.Curve{Label: "exp fit"}
		for _, b := range bins {
			emp.Y = append(emp.Y, b.Density)
			model.Y = append(model.Y, b.ExpModel)
		}
		p.Curves = []report.Curve{emp, model}
		panels = append(panels, p)
	}
	return panels, nil
}

// Fig4 reproduces the priority-shape figure: U_i as a function of P(R_i)
// for the idealized Eq. 11 and the Eq. 13 Taylor truncations (k = 1, 2, 3,
// 5), with P(T_i) = 0 and n_i = 1 as in the paper's illustration.
func Fig4(Options) ([]report.Panel, error) {
	const steps = 50
	p := report.Panel{
		ID:     "fig4",
		Title:  "Priority U vs delivery probability P(R)",
		XLabel: "P(R)",
		YLabel: "U (pT=0, n=1)",
	}
	for i := 0; i <= steps; i++ {
		p.X = append(p.X, float64(i)/float64(steps)*0.99)
	}
	ideal := report.Curve{Label: "idealization"}
	for _, pr := range p.X {
		ideal.Y = append(ideal.Y, core.PriorityFromProbabilities(0, pr, 1))
	}
	p.Curves = append(p.Curves, ideal)
	for _, k := range []int{1, 2, 3, 5} {
		c := report.Curve{Label: fmt.Sprintf("Taylor k=%d", k)}
		for _, pr := range p.X {
			c.Y = append(c.Y, core.TaylorPriority(0, pr, 1, k))
		}
		p.Curves = append(p.Curves, c)
	}
	return []report.Panel{p}, nil
}
