package experiment

import (
	"math"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/core"
	"sdsrp/internal/report"
)

// tinyOptions shrinks every experiment enough for unit tests while keeping
// the full sweep structure.
func tinyOptions() Options {
	return Options{
		Scale:    0.08, // 1440 s horizon
		Nodes:    24,
		Policies: []string{"SprayAndWait", "SDSRP"},
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers <= 0 {
		t.Fatal("workers not defaulted")
	}
	if len(o.Seeds) != 1 || o.Seeds[0] != 1 {
		t.Fatalf("seeds = %v", o.Seeds)
	}
	if o.Scale != 1 {
		t.Fatalf("scale = %v", o.Scale)
	}
	if len(o.Policies) != 4 {
		t.Fatalf("policies = %v", o.Policies)
	}
}

func TestApplyScalesDurationAndArea(t *testing.T) {
	o := Options{Scale: 0.5, Nodes: 25}.withDefaults()
	sc := o.apply(config.RandomWaypoint())
	if sc.Duration != 9000 || sc.TTL != 9000 {
		t.Fatalf("duration/ttl = %v/%v", sc.Duration, sc.TTL)
	}
	if sc.Nodes != 25 {
		t.Fatalf("nodes = %d", sc.Nodes)
	}
	// Area shrinks by sqrt(25/100) = 1/2 per side: density preserved.
	if math.Abs(sc.Area.W()-2250) > 1e-9 || math.Abs(sc.Area.H()-1700) > 1e-9 {
		t.Fatalf("area = %v", sc.Area)
	}
}

func TestApplyScalesTaxiGeometry(t *testing.T) {
	o := Options{Nodes: 50}.withDefaults()
	sc := o.apply(config.EPFL())
	f := math.Sqrt(50.0 / 200.0)
	want := config.EPFL().Mobility.Taxi.Area.W() * f
	if math.Abs(sc.Mobility.Taxi.Area.W()-want) > 1e-6 {
		t.Fatalf("taxi area = %v, want %v", sc.Mobility.Taxi.Area.W(), want)
	}
	if sc.Area != sc.Mobility.Taxi.Area {
		t.Fatal("scenario area not synced with taxi area")
	}
	h0 := config.EPFL().Mobility.Taxi.Hotspots[0]
	if math.Abs(sc.Mobility.Taxi.Hotspots[0].Center.X-h0.Center.X*f) > 1e-6 {
		t.Fatal("hotspot centers not rescaled")
	}
}

func TestSweepValuesMatchTableII(t *testing.T) {
	ls := CopiesSweep()
	if len(ls) != 13 || ls[0] != 16 || ls[12] != 64 {
		t.Fatalf("copies sweep = %v", ls)
	}
	bs := BufferSweep()
	if len(bs) != 7 || bs[0] != 2_000_000 || bs[6] != 5_000_000 {
		t.Fatalf("buffer sweep = %v", bs)
	}
	rs := RateSweep()
	if len(rs) != 8 || rs[0] != [2]float64{10, 15} || rs[7] != [2]float64{45, 50} {
		t.Fatalf("rate sweep = %v", rs)
	}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	mk := func() []config.Scenario {
		var scs []config.Scenario
		for seed := uint64(1); seed <= 4; seed++ {
			sc := config.RandomWaypoint()
			sc.Seed = seed
			sc.Nodes = 20
			sc.Area.Max.X, sc.Area.Max.Y = 1000, 800
			sc.Duration, sc.TTL = 1200, 1200
			scs = append(scs, sc)
		}
		return scs
	}
	serial, err := Run(mk(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(mk(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Summary != parallel[i].Summary {
			t.Fatalf("run %d differs across worker counts", i)
		}
	}
}

func TestRunPropagatesBuildError(t *testing.T) {
	bad := config.RandomWaypoint()
	bad.Duration = -1
	if _, err := Run([]config.Scenario{bad}, 2, nil); err == nil {
		t.Fatal("bad scenario not reported")
	}
}

func TestRunProgressCallback(t *testing.T) {
	var calls int
	sc := config.RandomWaypoint()
	sc.Nodes, sc.Duration, sc.TTL = 10, 300, 300
	sc.Area.Max.X, sc.Area.Max.Y = 500, 400
	_, err := Run([]config.Scenario{sc, sc}, 2, func(done, total int) {
		calls++
		if total != 2 {
			t.Errorf("total = %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("progress calls = %d", calls)
	}
}

func TestFig4Shape(t *testing.T) {
	panels, err := Fig4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 1 {
		t.Fatalf("panels = %d", len(panels))
	}
	p := panels[0]
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Curves) != 5 {
		t.Fatalf("curves = %d", len(p.Curves))
	}
	ideal := p.CurveByLabel("idealization")
	// Peak near 1-1/e.
	best := 0
	for i, v := range ideal.Y {
		if v > ideal.Y[best] {
			best = i
		}
	}
	if math.Abs(p.X[best]-core.PeakPR) > 0.05 {
		t.Fatalf("ideal peak at %v, want ~%v", p.X[best], core.PeakPR)
	}
	// Taylor curves sit at or below the ideal everywhere and approach it
	// with k.
	k1 := p.CurveByLabel("Taylor k=1")
	k5 := p.CurveByLabel("Taylor k=5")
	for i := range p.X {
		if k1.Y[i] > ideal.Y[i]+1e-12 || k5.Y[i] > ideal.Y[i]+1e-12 {
			t.Fatalf("Taylor above ideal at %v", p.X[i])
		}
		if k5.Y[i]+1e-12 < k1.Y[i] {
			t.Fatalf("k=5 below k=1 at %v", p.X[i])
		}
	}
}

func TestFig8CopiesSmoke(t *testing.T) {
	panels, err := Fig8Copies(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	wantIDs := []string{"fig8a", "fig8b", "fig8c"}
	for i, p := range panels {
		if p.ID != wantIDs[i] {
			t.Fatalf("panel id = %s, want %s", p.ID, wantIDs[i])
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(p.Curves) != 2 || len(p.X) != 13 {
			t.Fatalf("panel %s: curves=%d points=%d", p.ID, len(p.Curves), len(p.X))
		}
	}
	// Delivery ratios are probabilities.
	for _, y := range panels[0].Curves[0].Y {
		if y < 0 || y > 1 {
			t.Fatalf("delivery ratio %v out of range", y)
		}
	}
}

func TestFig9RateSmoke(t *testing.T) {
	panels, err := Fig9Rate(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if panels[0].ID != "fig9g" || panels[2].ID != "fig9i" {
		t.Fatalf("panel ids = %s..%s", panels[0].ID, panels[2].ID)
	}
	if panels[0].XTicks[0] != "10-15" || panels[0].XTicks[7] != "45-50" {
		t.Fatalf("ticks = %v", panels[0].XTicks)
	}
}

func TestFig3Smoke(t *testing.T) {
	panels, err := Fig3(Options{Scale: 0.3, Nodes: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 || panels[0].ID != "fig3a" || panels[1].ID != "fig3b" {
		t.Fatalf("panels = %+v", panels)
	}
	for _, p := range panels {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		emp := p.CurveByLabel("empirical")
		fit := p.CurveByLabel("exp fit")
		if emp == nil || fit == nil {
			t.Fatal("curves missing")
		}
		// Both densities should be decreasing overall (exponential-ish):
		// the first bin dominates the last.
		if emp.Y[0] <= emp.Y[len(emp.Y)-1] {
			t.Fatalf("%s empirical density not front-loaded: %v", p.ID, emp.Y)
		}
	}
}

func TestAblationDropListSmoke(t *testing.T) {
	panels, err := AblationDropList(Options{Scale: 0.08, Nodes: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	for _, p := range panels {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.CurveByLabel("SDSRP") == nil || p.CurveByLabel("SDSRP no-droplist") == nil {
			t.Fatal("variant curves missing")
		}
	}
}

func TestRegistry(t *testing.T) {
	specs := All()
	if len(specs) < 12 {
		t.Fatalf("registry has %d specs", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Desc == "" || s.Run == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate spec %s", s.Name)
		}
		seen[s.Name] = true
	}
	if _, ok := ByName("fig8copies"); !ok {
		t.Fatal("ByName miss")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName false positive")
	}
}

// The headline claim at test scale: averaged over the copies sweep, SDSRP's
// delivery ratio beats plain Spray-and-Wait's, and its overhead is lower.
// (Full-scale confirmation lives in EXPERIMENTS.md.)
func TestSDSRPBeatsFIFOAtSmallScale(t *testing.T) {
	o := tinyOptions()
	o.Seeds = []uint64{1, 2}
	panels, err := Fig8Copies(o)
	if err != nil {
		t.Fatal(err)
	}
	dr := panels[0]
	sdsrp := dr.CurveByLabel("SDSRP")
	fifo := dr.CurveByLabel("SprayAndWait")
	if report.Mean(sdsrp.Y) <= report.Mean(fifo.Y) {
		t.Fatalf("SDSRP mean DR %.3f <= FIFO %.3f", report.Mean(sdsrp.Y), report.Mean(fifo.Y))
	}
	oh := panels[2]
	if report.Mean(oh.CurveByLabel("SDSRP").Y) >= report.Mean(oh.CurveByLabel("SprayAndWait").Y) {
		t.Fatalf("SDSRP overhead not lower at small scale")
	}
}
