package experiment

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/world"
)

// TestF64RoundTrip checks the journal float type survives JSON bit-exactly,
// including the values plain JSON cannot carry (an all-forwards run has
// OverheadRatio = +Inf).
func TestF64RoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 1.0 / 3.0, math.Pi, 5e-324, math.MaxFloat64,
		math.Inf(1), math.Inf(-1), math.NaN()}
	for _, v := range cases {
		data, err := json.Marshal(F64(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back F64
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if math.IsNaN(v) {
			if !math.IsNaN(float64(back)) {
				t.Errorf("NaN round-tripped to %v", back)
			}
			continue
		}
		if float64(back) != v {
			t.Errorf("%v round-tripped to %v (wire %s)", v, back, data)
		}
	}
}

// TestJournalResultRoundTrip runs a real scenario and checks the journaled
// Result restores field-for-field equal.
func TestJournalResultRoundTrip(t *testing.T) {
	w, err := world.Build(tinyScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(toWire(res))
	if err != nil {
		t.Fatal(err)
	}
	var jr JournalResult
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	if got := jr.Restore(); !resultsEqual(got, res) {
		t.Errorf("restored result differs:\n got %+v\nwant %+v", got, res)
	}
}

// resultsEqual compares two Results for exact equality of every
// deterministic field (WallSeconds is host-dependent and excluded).
func resultsEqual(a, b world.Result) bool {
	a.Perf.WallSeconds = 0
	b.Perf.WallSeconds = 0
	aj, _ := json.Marshal(toWire(a))
	bj, _ := json.Marshal(toWire(b))
	return string(aj) == string(bj)
}

func entry(digest, status string) Entry {
	return Entry{Digest: digest, Name: "n-" + digest, Seed: 1, Policy: "SDSRP", Status: status, Attempts: 1}
}

// TestJournalTruncatedTail checks that a torn final line — the crash
// signature of dying mid-append — is dropped, the surviving entries load,
// and the healed file is whole again.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	var body strings.Builder
	for _, e := range []Entry{entry("aaa", StatusDone), entry("bbb", StatusDone)} {
		line, _ := json.Marshal(e)
		body.Write(line)
		body.WriteByte('\n')
	}
	body.WriteString(`{"digest":"ccc","name":"n-ccc","se`) // torn mid-append
	if err := os.WriteFile(path, []byte(body.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (torn tail dropped)", j.Len())
	}
	if _, ok := j.Lookup("ccc"); ok {
		t.Error("torn entry survived")
	}
	// The open healed the file: every line on disk must now parse.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Errorf("healed journal line %d still corrupt: %v", i+1, err)
		}
	}
}

// TestJournalMiddleCorruption checks interior damage is an error, not a
// silent drop: those entries recorded completed work that would otherwise
// silently re-run or, worse, half-resume.
func TestJournalMiddleCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	good, _ := json.Marshal(entry("aaa", StatusDone))
	body := "not json at all\n" + string(good) + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt interior line loaded without error")
	}
}

// TestJournalLastWriterWins checks duplicate digests resolve to the latest
// record, across both in-memory recording and a reload.
func TestJournalLastWriterWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first := entry("aaa", StatusFailed)
	first.Error = "boom"
	second := entry("aaa", StatusDone)
	second.Attempts = 2
	for _, e := range []Entry{first, second} {
		if err := j.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if e, _ := j.Lookup("aaa"); e.Status != StatusDone || e.Attempts != 2 {
		t.Fatalf("in-memory lookup = %+v, want the second record", e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("reloaded Len = %d, want 1 (deduplicated)", j2.Len())
	}
	if e, _ := j2.Lookup("aaa"); e.Status != StatusDone || e.Attempts != 2 {
		t.Fatalf("reloaded lookup = %+v, want the second record", e)
	}
}

// TestJournalRecordAfterClose checks a closed journal refuses appends
// instead of panicking on a nil file.
func TestJournalRecordAfterClose(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "runs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(entry("aaa", StatusDone)); err == nil {
		t.Fatal("Record on closed journal succeeded")
	}
}

// TestDigestStability checks the digest is deterministic and sensitive to
// every run-relevant knob: equal scenarios collide, any mutation separates.
func TestDigestStability(t *testing.T) {
	base := tinyScenario(1)
	d1, err := Digest(base)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(tinyScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("equal scenarios digest differently: %s vs %s", d1, d2)
	}
	mutants := map[string]func(*config.Scenario){
		"seed":       func(sc *config.Scenario) { sc.Seed = 2 },
		"policy":     func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait" },
		"duration":   func(sc *config.Scenario) { sc.Duration *= 2 },
		"max-events": func(sc *config.Scenario) { sc.MaxEvents = 1000 },
	}
	for name, mutate := range mutants {
		sc := tinyScenario(1)
		mutate(&sc)
		d, err := Digest(sc)
		if err != nil {
			t.Fatal(err)
		}
		if d == d1 {
			t.Errorf("mutating %s left the digest unchanged", name)
		}
	}
}
