package experiment

import (
	"os"
	"strings"
	"testing"

	"sdsrp/internal/report"
)

// goodSweepPanels fabricates a three-panel figure satisfying every encoded
// Section IV claim.
func goodSweepPanels() []report.Panel {
	x := []float64{16, 20, 24, 28}
	mk := func(ylabel string, rows map[string][]float64) report.Panel {
		p := report.Panel{ID: "t", XLabel: "L", YLabel: ylabel, X: x}
		for _, label := range []string{"SprayAndWait", "SprayAndWait-O", "SprayAndWait-C", "SDSRP"} {
			p.Curves = append(p.Curves, report.Curve{Label: label, Y: rows[label]})
		}
		return p
	}
	delivery := mk("delivery", map[string][]float64{
		"SprayAndWait":   {0.30, 0.29, 0.28, 0.27},
		"SprayAndWait-O": {0.28, 0.26, 0.24, 0.22},
		"SprayAndWait-C": {0.16, 0.16, 0.15, 0.16},
		"SDSRP":          {0.30, 0.30, 0.31, 0.31},
	})
	hops := mk("hops", map[string][]float64{
		"SprayAndWait":   {2.9, 3.1, 3.3, 3.5},
		"SprayAndWait-O": {2.6, 2.6, 2.7, 2.7},
		"SprayAndWait-C": {2.3, 2.3, 2.4, 2.3},
		"SDSRP":          {2.6, 2.8, 3.0, 3.1},
	})
	oh := mk("overhead", map[string][]float64{
		"SprayAndWait":   {34, 39, 44, 48},
		"SprayAndWait-O": {38, 46, 53, 58},
		"SprayAndWait-C": {54, 76, 89, 94},
		"SDSRP":          {26, 28, 29, 32},
	})
	return []report.Panel{delivery, hops, oh}
}

func TestCheckShapesAcceptsGoodFigure(t *testing.T) {
	if v := CheckShapes("fig8copies", goodSweepPanels()); len(v) != 0 {
		t.Fatalf("violations on good figure: %v", v)
	}
}

func TestCheckShapesCatchesInvertedOrdering(t *testing.T) {
	panels := goodSweepPanels()
	// Make SW-C the best deliverer: multiple claims break.
	panels[0].CurveByLabel("SprayAndWait-C").Y = []float64{0.5, 0.5, 0.5, 0.5}
	v := CheckShapes("fig8copies", panels)
	if len(v) == 0 {
		t.Fatal("inverted SW-C not caught")
	}
	joined := strings.Join(v, "; ")
	if !strings.Contains(joined, "SW-C delivery") {
		t.Fatalf("violations do not name the problem: %v", v)
	}
}

func TestCheckShapesCatchesOverheadRegression(t *testing.T) {
	panels := goodSweepPanels()
	panels[2].CurveByLabel("SDSRP").Y = []float64{60, 70, 80, 90}
	v := CheckShapes("fig8copies", panels)
	if len(v) == 0 {
		t.Fatal("SDSRP overhead regression not caught")
	}
}

func TestCheckShapesCatchesMissingCurve(t *testing.T) {
	panels := goodSweepPanels()
	panels[0].Curves = panels[0].Curves[:2]
	if v := CheckShapes("fig8copies", panels); len(v) == 0 {
		t.Fatal("missing curve not reported")
	}
}

func TestCheckShapesBufferTrend(t *testing.T) {
	panels := goodSweepPanels()
	// As a buffer figure, flat/declining delivery must be flagged.
	v := CheckShapes("fig8buffer", panels)
	found := false
	for _, s := range v {
		if strings.Contains(s, "not rising") {
			found = true
		}
	}
	if !found {
		t.Fatalf("buffer trend not checked: %v", v)
	}
}

func TestCheckShapesFig4(t *testing.T) {
	panels, err := Fig4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckShapes("fig4", panels); len(v) != 0 {
		t.Fatalf("fig4 violations: %v", v)
	}
	// Corrupt the peak.
	panels[0].CurveByLabel("idealization").Y[2] = 99
	if v := CheckShapes("fig4", panels); len(v) == 0 {
		t.Fatal("corrupted fig4 peak not caught")
	}
}

func TestCheckShapesUnknownFigure(t *testing.T) {
	if v := CheckShapes("fig99", nil); len(v) != 1 {
		t.Fatalf("unknown figure handling: %v", v)
	}
}

func TestCheckableFiguresResolve(t *testing.T) {
	for _, name := range CheckableFigures() {
		if _, ok := ByName(name); !ok {
			t.Fatalf("checkable figure %q not in registry", name)
		}
	}
}

// End-to-end at full paper scale: regenerate a real figure and expect the
// encoded claims to hold — the same gate `cmd/experiments -check` runs.
// The claims are calibrated to Table II scale (reduced scales shift the
// congestion regime and genuinely reorder the light-load corner), so this
// test costs minutes and is opt-in: SDSRP_FULL_SHAPES=1 go test ./... .
func TestCheckShapesEndToEndFullScale(t *testing.T) {
	if os.Getenv("SDSRP_FULL_SHAPES") == "" {
		t.Skip("set SDSRP_FULL_SHAPES=1 to run the full-scale shape gate")
	}
	o := Options{Seeds: []uint64{1, 2, 3}}
	panels, err := Fig8Copies(o)
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckShapes("fig8copies", panels); len(v) != 0 {
		t.Fatalf("full-scale fig8copies violates shapes: %v", v)
	}
}
