package experiment

import "testing"

func TestResilienceLossSmoke(t *testing.T) {
	panels, err := ResilienceLoss(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	wantIDs := []string{"resilience-loss-a", "resilience-loss-b", "resilience-loss-c"}
	for i, p := range panels {
		if p.ID != wantIDs[i] {
			t.Fatalf("panel id = %s, want %s", p.ID, wantIDs[i])
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(p.Curves) != 2 || len(p.X) != 5 {
			t.Fatalf("panel %s: curves=%d points=%d", p.ID, len(p.Curves), len(p.X))
		}
	}
	// Loss can only hurt: the lossless left edge must deliver at least as
	// well as the 40% right edge for every policy.
	for _, c := range panels[0].Curves {
		if c.Y[0] < c.Y[len(c.Y)-1] {
			t.Errorf("%s: delivery improved under loss: %v", c.Label, c.Y)
		}
	}
}

func TestResilienceChurnSmoke(t *testing.T) {
	panels, err := ResilienceChurn(Options{Scale: 0.08, Nodes: 24, Policies: []string{"SDSRP"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	p := panels[0]
	if p.XTicks[0] != "0" || p.XTicks[4] != "8" {
		t.Fatalf("ticks = %v", p.XTicks)
	}
	c := p.Curves[0]
	if c.Y[0] < c.Y[len(c.Y)-1] {
		t.Errorf("delivery improved under wiping churn: %v", c.Y)
	}
}

func TestResilienceBlackholeSmoke(t *testing.T) {
	panels, err := ResilienceBlackhole(Options{Scale: 0.08, Nodes: 24, Policies: []string{"SprayAndWait"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range panels {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	c := panels[0].Curves[0]
	if c.Y[0] < c.Y[len(c.Y)-1] {
		t.Errorf("delivery improved with 40%% black holes: %v", c.Y)
	}
}

// TestResilienceReproducible is the sweep-level determinism gate: the same
// options must reproduce byte-identical TSV tables.
func TestResilienceReproducible(t *testing.T) {
	o := Options{Scale: 0.05, Nodes: 20, Policies: []string{"SDSRP"}}
	a, err := ResilienceLoss(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResilienceLoss(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].TSV() != b[i].TSV() {
			t.Fatalf("panel %s not reproducible:\n%s\nvs\n%s", a[i].ID, a[i].TSV(), b[i].TSV())
		}
	}
}
