// Package experiment regenerates every table and figure of the paper's
// evaluation: the Fig. 3 intermeeting distributions, the Fig. 4 priority
// curve, and the Fig. 8 / Fig. 9 nine-panel sweeps, plus the ablations
// listed in DESIGN.md §8.
//
// Simulation runs are deterministic and independent, so the runner fans
// them out over a worker pool and reduces results in input order. The
// runner is crash-safe: with a Journal attached, every finished run is
// durably recorded under its scenario digest, and a resumed sweep skips
// the journaled runs and produces byte-identical results to an
// uninterrupted one.
package experiment

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sdsrp/internal/config"
	"sdsrp/internal/world"
)

// ErrInterrupted is the sentinel carried (via errors.Is) by the RunError of
// every run a sweep never started because Options.Interrupt fired. In-flight
// runs drain to completion; only unclaimed runs report it.
var ErrInterrupted = errors.New("experiment: sweep interrupted")

// RunError attributes one failed run inside a batch: which scenario (by
// input index and name) and why. Batch errors are an errors.Join of these,
// so errors.Is/As reach both the RunError and its cause.
type RunError struct {
	// Index is the run's position in the input scenario slice.
	Index int
	// Name is the scenario name.
	Name string
	// Err is the final attempt's error.
	Err error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("run %d (%s): %v", e.Index, e.Name, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// PanicError is a worker panic converted into a per-run error, carrying the
// recovered value and the goroutine stack at recovery. Panics are permanent
// failures: they are never retried, and one panicking run cannot take down
// the rest of the batch.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("run panicked: %v\n%s", e.Value, e.Stack)
}

// maxRetryBackoff caps the exponential retry backoff.
const maxRetryBackoff = 5 * time.Second

// Options tunes an experiment's cost without changing its structure.
type Options struct {
	// Workers bounds run parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seeds replicates every configuration and averages the metrics;
	// empty means {1}.
	Seeds []uint64
	// Scale multiplies scenario duration and TTL (0 means 1). Values < 1
	// give quick smoke runs for tests and benchmarks.
	Scale float64
	// Nodes overrides the preset node count (0 keeps it); synthetic areas
	// shrink with sqrt(Nodes/preset) to preserve node density.
	Nodes int
	// Policies overrides the compared strategies; empty means the paper's
	// four.
	Policies []string
	// Progress, when set, receives (done, total) after each finished run.
	Progress func(done, total int)
	// ProgressStats, when set, receives the richer ProgressInfo payload
	// (wall-clock elapsed, ETA, per-run timing) after each finished run.
	// Both callbacks may fire concurrently from worker goroutines.
	ProgressStats func(ProgressInfo)
	// OnResult, when set, receives every finished run's Result (including
	// its Perf engine counters) — journal-skipped runs included, so
	// aggregations over a resumed sweep see the same stream as an
	// uninterrupted one. May fire concurrently from worker goroutines;
	// callbacks must be safe for that (or run with Workers: 1).
	OnResult func(world.Result)
	// Journal, when set, durably records every finished run (and every
	// exhausted failure) keyed by scenario digest.
	Journal *Journal
	// Resume, with a Journal attached, skips runs whose digest the journal
	// already records as done, replaying the stored Result instead.
	Resume bool
	// Retries is how many times a transiently failed run is re-attempted
	// (0 means failures are final on the first attempt). Panics and
	// deterministic budget stops are never retried.
	Retries int
	// RetryBackoff is the wait before the first re-attempt; it doubles per
	// retry and is capped at 5s. 0 retries immediately.
	RetryBackoff time.Duration
	// RunTimeout bounds each run's wall-clock time (0 means unbounded).
	// A timed-out run fails with world.ErrRunTimeout.
	RunTimeout time.Duration
	// Interrupt, when closed, stops the batch claiming new runs: in-flight
	// runs drain and are journaled, unstarted runs fail with
	// ErrInterrupted. Wire it to a signal handler for graceful shutdown.
	Interrupt <-chan struct{}

	// runOne replaces the build-and-simulate step in tests.
	runOne func(config.Scenario) (world.Result, error)
}

// ProgressInfo describes batch progress after one run finished.
type ProgressInfo struct {
	Done, Total int
	// Skipped is how many of Done were replayed from the journal instead
	// of executed (resume hits).
	Skipped int
	// Retried is the total number of re-attempts so far across the batch.
	Retried int
	// Elapsed is the wall-clock time since the batch started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time from the mean pace of
	// the *executed* runs so far (0 when done or nothing executed yet);
	// journal skips are free and must not skew it.
	ETA time.Duration
	// LastRunWall is the wall-clock duration of the run that just
	// finished (build + simulate); 0 for a journal skip.
	LastRunWall time.Duration
}

// PaperPolicies are the four buffer-management strategies of Section IV-A,
// in the paper's order.
var PaperPolicies = []string{"SprayAndWait", "SprayAndWait-O", "SprayAndWait-C", "SDSRP"}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Policies) == 0 {
		o.Policies = PaperPolicies
	}
	return o
}

// progress merges the two progress callbacks into one ProgressInfo consumer
// (nil when neither is set, preserving the no-callback fast path).
func (o Options) progress() func(ProgressInfo) {
	if o.Progress == nil && o.ProgressStats == nil {
		return nil
	}
	return func(p ProgressInfo) {
		if o.Progress != nil {
			o.Progress(p.Done, p.Total)
		}
		if o.ProgressStats != nil {
			o.ProgressStats(p)
		}
	}
}

// Rescale applies the options' Scale and Nodes reductions to a preset
// scenario exactly like the experiment sweeps do (duration and TTL scale
// together; synthetic areas shrink to preserve node density). Exported so
// external harnesses — internal/bench and the root `go test -bench`
// targets — derive reduced-scale scenarios from the same rule and cannot
// drift from the sweeps.
func (o Options) Rescale(sc config.Scenario) config.Scenario {
	return o.withDefaults().apply(sc)
}

// apply rescales a preset scenario per the options.
func (o Options) apply(sc config.Scenario) config.Scenario {
	if o.Scale != 1 {
		sc.Duration *= o.Scale
		sc.TTL *= o.Scale
	}
	if o.Nodes > 0 && o.Nodes != sc.Nodes {
		ratio := float64(o.Nodes) / float64(sc.Nodes)
		sc.Nodes = o.Nodes
		shrinkArea(&sc, ratio)
	}
	return sc
}

// shrinkArea preserves spatial node density when the node count changes.
func shrinkArea(sc *config.Scenario, ratio float64) {
	f := math.Sqrt(ratio)
	switch sc.Mobility.Kind {
	case config.MobilityTaxi:
		t := &sc.Mobility.Taxi
		t.Area.Max.X *= f
		t.Area.Max.Y *= f
		for i := range t.Hotspots {
			t.Hotspots[i].Center.X *= f
			t.Hotspots[i].Center.Y *= f
			t.Hotspots[i].Sigma *= f
		}
		sc.Area = t.Area
	case config.MobilityTraceDir:
		// Real traces keep their geometry.
	default:
		sc.Area.Max.X *= f
		sc.Area.Max.Y *= f
	}
}

// Run executes every scenario on a worker pool and returns results in input
// order. On failure it returns the partial results alongside the joined
// per-run errors; successful runs keep their slots.
func Run(scs []config.Scenario, workers int, progress func(done, total int)) ([]world.Result, error) {
	var cb func(ProgressInfo)
	if progress != nil {
		cb = func(p ProgressInfo) { progress(p.Done, p.Total) }
	}
	return RunTimed(scs, workers, cb)
}

// RunTimed is Run with wall-clock accounting: after each finished run the
// callback receives done/total plus elapsed time, a mean-pace ETA, and the
// duration of the run that just completed. The callback may fire
// concurrently from worker goroutines.
func RunTimed(scs []config.Scenario, workers int, progress func(ProgressInfo)) ([]world.Result, error) {
	return Options{Workers: workers, ProgressStats: progress}.RunScenarios(scs)
}

// runBatch executes scs under the options' worker count, progress
// callbacks, and per-result hook — the entry point every sweep uses.
func (o Options) runBatch(scs []config.Scenario) ([]world.Result, error) {
	return o.RunScenarios(scs)
}

// RunScenarios executes every scenario on a worker pool and returns results
// in input order, honoring the options' crash-safety machinery: journal
// recording, resume skips, panic isolation, bounded retries, per-run
// wall-clock timeouts, and graceful interruption.
//
// Failure handling is per run, not per batch: a failed (or panicked, or
// interrupted) run leaves a zero Result in its slot and contributes a
// *RunError to the joined error; every other run still executes and
// returns its result. Callers that can tolerate holes may use the partial
// results; errors.Is(err, ErrInterrupted) distinguishes an interrupt from
// real failures.
func (o Options) RunScenarios(scs []config.Scenario) ([]world.Result, error) {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	progress := o.progress()
	results := make([]world.Result, len(scs))
	errs := make([]error, len(scs))

	// Content-address every run up front when a journal is attached; a
	// digest failure is a programming error (scenario not serializable)
	// and aborts before any work starts.
	digests := make([]string, len(scs))
	if o.Journal != nil {
		for i, sc := range scs {
			d, err := Digest(sc)
			if err != nil {
				return nil, err
			}
			digests[i] = d
		}
	}

	// Resolve resume hits before the workers start: the skip set is then
	// fixed, so the ETA can cleanly separate free replays from executed
	// runs, and progress for skips fires in deterministic input order.
	skipped := make([]bool, len(scs))
	totalSkipped := 0
	if o.Resume && o.Journal != nil {
		for i := range scs {
			if e, ok := o.Journal.Lookup(digests[i]); ok && e.Status == StatusDone && e.Result != nil {
				results[i] = e.Result.Restore()
				skipped[i] = true
				totalSkipped++
			}
		}
	}

	batchStart := time.Now()
	var done, retried atomic.Int64
	report := func(executedWall time.Duration, isSkip bool) {
		if progress == nil {
			return
		}
		d := int(done.Add(1))
		elapsed := time.Since(batchStart)
		var eta time.Duration
		executed := d - totalSkipped
		if left := len(scs) - d; left > 0 && executed > 0 {
			eta = elapsed / time.Duration(executed) * time.Duration(left)
		}
		wall := executedWall
		if isSkip {
			wall = 0
		}
		progress(ProgressInfo{
			Done:        d,
			Total:       len(scs),
			Skipped:     totalSkipped,
			Retried:     int(retried.Load()),
			Elapsed:     elapsed,
			ETA:         eta,
			LastRunWall: wall,
		})
	}

	// Replay skips first, in input order, so downstream aggregation
	// (OnResult consumers) sees the same result stream as an
	// uninterrupted sweep.
	for i := range scs {
		if !skipped[i] {
			continue
		}
		if o.OnResult != nil {
			o.OnResult(results[i])
		}
		report(0, true)
	}

	interrupted := func() bool {
		if o.Interrupt == nil {
			return false
		}
		select {
		case <-o.Interrupt:
			return true
		default:
			return false
		}
	}

	claimed := make([]bool, len(scs))
	var next atomic.Int64
	//lint:invariant worker goroutines parallelize across WHOLE runs, never inside one: each scenario's engine, world, and RNG streams are constructed and driven entirely by the one worker that claimed it, so sweep-level concurrency cannot reorder any run's event stream
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if interrupted() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(scs) {
					return
				}
				if skipped[i] {
					continue
				}
				claimed[i] = true
				runStart := time.Now()
				res, err, attempts := o.execute(scs[i], &retried)
				if err != nil {
					errs[i] = err
					if o.Journal != nil {
						if jerr := o.Journal.RecordFailure(digests[i], scs[i], err, attempts); jerr != nil {
							errs[i] = errors.Join(err, jerr)
						}
					}
				} else {
					results[i] = res
					if o.Journal != nil {
						// Journal the resolved scenario carried by the
						// Result, so a resume replays exactly what ran.
						if jerr := o.Journal.RecordResult(digests[i], res.Scenario, res, attempts); jerr != nil {
							errs[i] = jerr
						}
					}
					if o.OnResult != nil {
						o.OnResult(res)
					}
				}
				report(time.Since(runStart), false)
			}
		}()
	}
	wg.Wait()

	// Runs never claimed because of an interrupt fail with the sentinel:
	// the caller can resume them, and they must not be mistaken for
	// simulation failures.
	if interrupted() {
		for i := range scs {
			if !skipped[i] && !claimed[i] && errs[i] == nil {
				errs[i] = ErrInterrupted
			}
		}
	}

	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &RunError{Index: i, Name: scs[i].Name, Err: err})
		}
	}
	if len(failed) > 0 {
		return results, fmt.Errorf("experiment: %d of %d runs failed: %w",
			len(failed), len(scs), errors.Join(failed...))
	}
	return results, nil
}

// execute runs one scenario with panic isolation and bounded retries,
// returning the result, the final error, and how many attempts were made.
func (o Options) execute(sc config.Scenario, retried *atomic.Int64) (world.Result, error, int) {
	attempts := 0
	for {
		attempts++
		res, err := o.attempt(sc)
		if err == nil {
			return res, nil, attempts
		}
		if attempts > o.Retries || permanentFailure(err) {
			return res, err, attempts
		}
		retried.Add(1)
		if o.RetryBackoff > 0 {
			backoff := o.RetryBackoff << (attempts - 1)
			if backoff > maxRetryBackoff || backoff <= 0 {
				backoff = maxRetryBackoff
			}
			time.Sleep(backoff)
		}
	}
}

// attempt builds and runs one scenario, converting a panic anywhere in the
// build/simulate path into a *PanicError so one poisoned run cannot take
// down the worker pool.
func (o Options) attempt(sc config.Scenario) (res world.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if o.runOne != nil {
		return o.runOne(sc)
	}
	w, err := world.Build(sc)
	if err != nil {
		return world.Result{}, err
	}
	if o.RunTimeout > 0 {
		w.Engine.SetWallDeadline(time.Now().Add(o.RunTimeout))
	}
	return w.Run()
}

// permanentFailure reports whether a run error is deterministic — retrying
// could only reproduce it. Panics and event-budget stops are permanent;
// wall-clock timeouts and I/O-flavored build failures are treated as
// transient and eligible for retry.
func permanentFailure(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe) || errors.Is(err, world.ErrBudgetExceeded)
}
