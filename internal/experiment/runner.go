// Package experiment regenerates every table and figure of the paper's
// evaluation: the Fig. 3 intermeeting distributions, the Fig. 4 priority
// curve, and the Fig. 8 / Fig. 9 nine-panel sweeps, plus the ablations
// listed in DESIGN.md §8.
//
// Simulation runs are deterministic and independent, so the runner fans
// them out over a worker pool and reduces results in input order.
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdsrp/internal/config"
	"sdsrp/internal/world"
)

// Options tunes an experiment's cost without changing its structure.
type Options struct {
	// Workers bounds run parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seeds replicates every configuration and averages the metrics;
	// empty means {1}.
	Seeds []uint64
	// Scale multiplies scenario duration and TTL (0 means 1). Values < 1
	// give quick smoke runs for tests and benchmarks.
	Scale float64
	// Nodes overrides the preset node count (0 keeps it); synthetic areas
	// shrink with sqrt(Nodes/preset) to preserve node density.
	Nodes int
	// Policies overrides the compared strategies; empty means the paper's
	// four.
	Policies []string
	// Progress, when set, receives (done, total) after each finished run.
	Progress func(done, total int)
	// ProgressStats, when set, receives the richer ProgressInfo payload
	// (wall-clock elapsed, ETA, per-run timing) after each finished run.
	// Both callbacks may fire concurrently from worker goroutines.
	ProgressStats func(ProgressInfo)
	// OnResult, when set, receives every finished run's Result (including
	// its Perf engine counters). Used by the benchmark harness to aggregate
	// engine-level work across a sweep. May fire concurrently from worker
	// goroutines; callbacks must be safe for that (or run with Workers: 1).
	OnResult func(world.Result)
}

// ProgressInfo describes batch progress after one run finished.
type ProgressInfo struct {
	Done, Total int
	// Elapsed is the wall-clock time since the batch started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time from the mean pace so
	// far (0 when done).
	ETA time.Duration
	// LastRunWall is the wall-clock duration of the run that just
	// finished (build + simulate).
	LastRunWall time.Duration
}

// PaperPolicies are the four buffer-management strategies of Section IV-A,
// in the paper's order.
var PaperPolicies = []string{"SprayAndWait", "SprayAndWait-O", "SprayAndWait-C", "SDSRP"}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Policies) == 0 {
		o.Policies = PaperPolicies
	}
	return o
}

// progress merges the two progress callbacks into one ProgressInfo consumer
// (nil when neither is set, preserving the no-callback fast path).
func (o Options) progress() func(ProgressInfo) {
	if o.Progress == nil && o.ProgressStats == nil {
		return nil
	}
	return func(p ProgressInfo) {
		if o.Progress != nil {
			o.Progress(p.Done, p.Total)
		}
		if o.ProgressStats != nil {
			o.ProgressStats(p)
		}
	}
}

// Rescale applies the options' Scale and Nodes reductions to a preset
// scenario exactly like the experiment sweeps do (duration and TTL scale
// together; synthetic areas shrink to preserve node density). Exported so
// external harnesses — internal/bench and the root `go test -bench`
// targets — derive reduced-scale scenarios from the same rule and cannot
// drift from the sweeps.
func (o Options) Rescale(sc config.Scenario) config.Scenario {
	return o.withDefaults().apply(sc)
}

// apply rescales a preset scenario per the options.
func (o Options) apply(sc config.Scenario) config.Scenario {
	if o.Scale != 1 {
		sc.Duration *= o.Scale
		sc.TTL *= o.Scale
	}
	if o.Nodes > 0 && o.Nodes != sc.Nodes {
		ratio := float64(o.Nodes) / float64(sc.Nodes)
		sc.Nodes = o.Nodes
		shrinkArea(&sc, ratio)
	}
	return sc
}

// shrinkArea preserves spatial node density when the node count changes.
func shrinkArea(sc *config.Scenario, ratio float64) {
	f := math.Sqrt(ratio)
	switch sc.Mobility.Kind {
	case config.MobilityTaxi:
		t := &sc.Mobility.Taxi
		t.Area.Max.X *= f
		t.Area.Max.Y *= f
		for i := range t.Hotspots {
			t.Hotspots[i].Center.X *= f
			t.Hotspots[i].Center.Y *= f
			t.Hotspots[i].Sigma *= f
		}
		sc.Area = t.Area
	case config.MobilityTraceDir:
		// Real traces keep their geometry.
	default:
		sc.Area.Max.X *= f
		sc.Area.Max.Y *= f
	}
}

// Run executes every scenario on a worker pool and returns results in input
// order. The first build error aborts the batch.
func Run(scs []config.Scenario, workers int, progress func(done, total int)) ([]world.Result, error) {
	var cb func(ProgressInfo)
	if progress != nil {
		cb = func(p ProgressInfo) { progress(p.Done, p.Total) }
	}
	return RunTimed(scs, workers, cb)
}

// RunTimed is Run with wall-clock accounting: after each finished run the
// callback receives done/total plus elapsed time, a mean-pace ETA, and the
// duration of the run that just completed. The callback may fire
// concurrently from worker goroutines.
func RunTimed(scs []config.Scenario, workers int, progress func(ProgressInfo)) ([]world.Result, error) {
	return runTimed(scs, workers, progress, nil)
}

// runBatch executes scs under the options' worker count, progress
// callbacks, and per-result hook — the entry point every sweep uses.
func (o Options) runBatch(scs []config.Scenario) ([]world.Result, error) {
	return runTimed(scs, o.Workers, o.progress(), o.OnResult)
}

func runTimed(scs []config.Scenario, workers int, progress func(ProgressInfo), onResult func(world.Result)) ([]world.Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]world.Result, len(scs))
	errs := make([]error, len(scs))
	batchStart := time.Now()
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scs) {
					return
				}
				runStart := time.Now()
				wld, err := world.Build(scs[i])
				if err != nil {
					errs[i] = err
				} else {
					results[i], errs[i] = wld.Run()
				}
				if onResult != nil && errs[i] == nil {
					onResult(results[i])
				}
				if progress != nil {
					d := int(done.Add(1))
					elapsed := time.Since(batchStart)
					var eta time.Duration
					if left := len(scs) - d; left > 0 {
						eta = elapsed / time.Duration(d) * time.Duration(left)
					}
					progress(ProgressInfo{
						Done:        d,
						Total:       len(scs),
						Elapsed:     elapsed,
						ETA:         eta,
						LastRunWall: time.Since(runStart),
					})
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}
	return results, nil
}
