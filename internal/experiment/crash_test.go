package experiment

import (
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/msg"
	"sdsrp/internal/policy"
	"sdsrp/internal/rng"
	"sdsrp/internal/world"
)

// panicFactoryPolicy is registered with a factory that panics, so any run
// naming it blows up inside world.Build — deterministically, on every host
// construction, exercising the worker recovery path with a real build.
const panicFactoryPolicy = "test-panic-factory"

// panicSendPolicy panics on the first SendScore call, exercising recovery
// from deep inside the event loop.
const panicSendPolicy = "test-panic-send"

type sendPanicPolicy struct{}

func (sendPanicPolicy) Name() string                              { return panicSendPolicy }
func (sendPanicPolicy) SendScore(policy.View, *msg.Stored) float64 { panic("injected SendScore panic") }
func (sendPanicPolicy) DropScore(policy.View, *msg.Stored) float64 { return 0 }

func init() {
	if err := policy.Register(panicFactoryPolicy, func(*rng.Stream) policy.Policy {
		panic("injected factory panic")
	}); err != nil {
		panic(err)
	}
	if err := policy.Register(panicSendPolicy, func(*rng.Stream) policy.Policy {
		return sendPanicPolicy{}
	}); err != nil {
		panic(err)
	}
}

// TestPartialResultsOnFailure checks the satellite fix for the old
// all-or-nothing batch: one failed run must not discard its siblings'
// results, and the joined error must attribute the failure by index and
// name.
func TestPartialResultsOnFailure(t *testing.T) {
	scs := []config.Scenario{tinyScenario(1), tinyScenario(2), tinyScenario(3)}
	boom := errors.New("boom")
	o := Options{Workers: 2, runOne: func(sc config.Scenario) (world.Result, error) {
		if sc.Seed == 2 {
			return world.Result{}, boom
		}
		return world.Result{Contacts: int(sc.Seed)}, nil
	}}
	res, err := o.RunScenarios(scs)
	if err == nil {
		t.Fatal("want a batch error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("joined error does not unwrap to the cause: %v", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Index != 1 {
		t.Errorf("want *RunError with Index 1, got %v", err)
	}
	if len(res) != 3 || res[0].Contacts != 1 || res[2].Contacts != 3 {
		t.Errorf("sibling results lost: %+v", res)
	}
}

// TestPanicIsolation checks a worker panic in one run — both at build time
// and deep inside the simulation loop — becomes that run's error while
// every other run still returns its result and is journaled.
func TestPanicIsolation(t *testing.T) {
	for _, bad := range []string{panicFactoryPolicy, panicSendPolicy} {
		t.Run(bad, func(t *testing.T) {
			scs := []config.Scenario{tinyScenario(1), tinyScenario(2), tinyScenario(3)}
			scs[1].PolicyName = bad
			j, err := OpenJournal(filepath.Join(t.TempDir(), "runs.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			res, err := Options{Workers: 2, Journal: j}.RunScenarios(scs)
			if err == nil {
				t.Fatal("want a batch error from the panicking run")
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PanicError in the chain, got %v", err)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic error carries no stack")
			}
			for _, i := range []int{0, 2} {
				if res[i].Perf.Events == 0 {
					t.Errorf("sibling run %d has no result", i)
				}
			}
			if j.Len() != 3 {
				t.Fatalf("journal has %d entries, want 3 (2 done + 1 failed)", j.Len())
			}
			var done, failed int
			for _, e := range j.Entries() {
				switch e.Status {
				case StatusDone:
					done++
				case StatusFailed:
					failed++
				}
			}
			if done != 2 || failed != 1 {
				t.Errorf("journal has %d done / %d failed, want 2/1", done, failed)
			}
		})
	}
}

// TestRetryTransient checks a transiently failing run is re-attempted up to
// Retries times and the retry count reaches the progress payload.
func TestRetryTransient(t *testing.T) {
	var calls atomic.Int64
	var last ProgressInfo
	o := Options{
		Workers: 1,
		Retries: 2,
		Progress: func(done, total int) {},
		ProgressStats: func(p ProgressInfo) { last = p },
		runOne: func(config.Scenario) (world.Result, error) {
			if calls.Add(1) < 3 {
				return world.Result{}, errors.New("transient")
			}
			return world.Result{Contacts: 7}, nil
		},
	}
	res, err := o.RunScenarios([]config.Scenario{tinyScenario(1)})
	if err != nil {
		t.Fatalf("run failed despite retries: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("runOne called %d times, want 3", calls.Load())
	}
	if res[0].Contacts != 7 {
		t.Errorf("result lost across retries: %+v", res[0])
	}
	if last.Retried != 2 {
		t.Errorf("ProgressInfo.Retried = %d, want 2", last.Retried)
	}
}

// TestNoRetryOnPermanent checks deterministic failures (event-budget stops,
// panics) are never re-attempted: retrying can only reproduce them.
func TestNoRetryOnPermanent(t *testing.T) {
	var calls atomic.Int64
	o := Options{Workers: 1, Retries: 5, runOne: func(config.Scenario) (world.Result, error) {
		calls.Add(1)
		return world.Result{}, &world.BudgetError{Events: 10, MaxEvents: 10}
	}}
	_, err := o.RunScenarios([]config.Scenario{tinyScenario(1)})
	if !errors.Is(err, world.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("permanent failure attempted %d times, want 1", calls.Load())
	}
}

// TestInterruptBeforeStart checks a pre-fired interrupt claims no runs and
// marks everything with the sentinel the CLI uses to print the resume hint.
func TestInterruptBeforeStart(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt)
	var calls atomic.Int64
	o := Options{Workers: 2, Interrupt: interrupt, runOne: func(config.Scenario) (world.Result, error) {
		calls.Add(1)
		return world.Result{}, nil
	}}
	_, err := o.RunScenarios([]config.Scenario{tinyScenario(1), tinyScenario(2)})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if calls.Load() != 0 {
		t.Errorf("interrupted batch still executed %d runs", calls.Load())
	}
}

// TestResumeSkipsJournaledRuns checks resume replays journaled results
// without re-executing them, fires OnResult for the replays, and accounts
// them in ProgressInfo.Skipped.
func TestResumeSkipsJournaledRuns(t *testing.T) {
	scs := []config.Scenario{tinyScenario(1), tinyScenario(2), tinyScenario(3)}
	path := filepath.Join(t.TempDir(), "runs.jsonl")

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Options{Workers: 1, Journal: j}.RunScenarios(scs[:2])
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var executed atomic.Int64
	var onResult atomic.Int64
	var last ProgressInfo
	var mu sync.Mutex
	o := Options{
		Workers: 1,
		Journal: j2,
		Resume:  true,
		OnResult: func(world.Result) { onResult.Add(1) },
		ProgressStats: func(p ProgressInfo) {
			mu.Lock()
			last = p
			mu.Unlock()
		},
	}
	// Instrument execution without changing behavior.
	o.runOne = func(sc config.Scenario) (world.Result, error) {
		executed.Add(1)
		w, err := world.Build(sc)
		if err != nil {
			return world.Result{}, err
		}
		return w.Run()
	}
	res, err := o.RunScenarios(scs)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 1 {
		t.Errorf("resume executed %d runs, want 1 (two journaled)", executed.Load())
	}
	if onResult.Load() != 3 {
		t.Errorf("OnResult fired %d times, want 3 (replays included)", onResult.Load())
	}
	if last.Skipped != 2 || last.Done != 3 {
		t.Errorf("final progress %+v, want Done 3 / Skipped 2", last)
	}
	for i := range first {
		if !resultsEqual(res[i], first[i]) {
			t.Errorf("replayed result %d differs from original", i)
		}
	}
}

// TestResumeRerunsOnDigestMismatch checks a journal recorded for different
// scenarios never satisfies a changed sweep: any scenario mutation moves
// the digest, forcing a re-run instead of serving a stale result.
func TestResumeRerunsOnDigestMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Options{Workers: 1, Journal: j}).RunScenarios([]config.Scenario{tinyScenario(1)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	changed := tinyScenario(1)
	changed.TTL *= 2 // any knob: the digest covers every field
	var executed atomic.Int64
	o := Options{Workers: 1, Journal: j2, Resume: true, runOne: func(sc config.Scenario) (world.Result, error) {
		executed.Add(1)
		w, err := world.Build(sc)
		if err != nil {
			return world.Result{}, err
		}
		return w.Run()
	}}
	if _, err := o.RunScenarios([]config.Scenario{changed}); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 1 {
		t.Errorf("mutated scenario was served from the journal (executed %d times, want 1)", executed.Load())
	}
}

// TestKillAndResumeByteIdentity is the acceptance gate: a sweep interrupted
// mid-batch and resumed from its journal must produce results identical to
// an uninterrupted sweep in every deterministic field.
func TestKillAndResumeByteIdentity(t *testing.T) {
	scs := []config.Scenario{tinyScenario(11), tinyScenario(12), tinyScenario(13), tinyScenario(14)}

	ref, err := Options{Workers: 1}.RunScenarios(scs)
	if err != nil {
		t.Fatal(err)
	}

	// First pass: interrupt after the second result, like SIGINT mid-sweep.
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	interrupt := make(chan struct{})
	var once sync.Once
	var finished atomic.Int64
	o := Options{Workers: 1, Journal: j, Interrupt: interrupt, OnResult: func(world.Result) {
		if finished.Add(1) == 2 {
			once.Do(func() { close(interrupt) })
		}
	}}
	if _, err := o.RunScenarios(scs); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted sweep error = %v, want ErrInterrupted", err)
	}
	j.Close()
	if got := finished.Load(); got != 2 {
		t.Fatalf("interrupted sweep finished %d runs, want 2", got)
	}

	// Second pass: resume. The journaled half replays, the rest executes.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	res, err := Options{Workers: 1, Journal: j2, Resume: true}.RunScenarios(scs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !resultsEqual(res[i], ref[i]) {
			t.Errorf("resumed result %d differs from uninterrupted run", i)
		}
	}
	// Digest identity: the journal now addresses exactly the sweep's runs.
	for i, sc := range scs {
		d, err := Digest(sc)
		if err != nil {
			t.Fatal(err)
		}
		e, ok := j2.Lookup(d)
		if !ok || e.Status != StatusDone {
			t.Errorf("run %d (digest %s) missing from resumed journal", i, d[:12])
		}
	}
}
