package experiment

import (
	"fmt"

	"sdsrp/internal/config"
	"sdsrp/internal/report"
)

// ablationSweep runs a buffer-size sweep comparing arbitrary scenario
// variants (rather than the paper's four policies), producing the usual
// three metric panels.
func ablationSweep(id, title string, base config.Scenario, variants []variant, o Options) ([]report.Panel, error) {
	o = o.withDefaults()
	base = o.apply(base)
	bs := BufferSweep()
	x := make([]float64, len(bs))
	ticks := make([]string, len(bs))
	for i, b := range bs {
		x[i] = float64(b) / float64(config.MB)
		ticks[i] = fmt.Sprintf("%.1fMB", x[i])
	}

	type cell struct{ variant, point int }
	var scs []config.Scenario
	var cells []cell
	for vi, v := range variants {
		for xi, b := range bs {
			for _, seed := range o.Seeds {
				sc := base
				sc.BufferBytes = b
				sc.Seed = seed
				v.mutate(&sc)
				sc.Name = fmt.Sprintf("%s-%s-%s-%d", id, v.label, ticks[xi], seed)
				scs = append(scs, sc)
				cells = append(cells, cell{vi, xi})
			}
		}
	}
	results, err := o.runBatch(scs)
	if err != nil {
		return nil, err
	}
	metrics := paperMetrics()
	panels := make([]report.Panel, len(metrics))
	for mi, m := range metrics {
		panels[mi] = report.Panel{
			ID:     fmt.Sprintf("%s-%c", id, 'a'+mi),
			Title:  title + " — " + m.label,
			XLabel: "buffer size (MB)",
			YLabel: m.label,
			XTicks: ticks,
			X:      x,
		}
		for vi, v := range variants {
			y := make([]float64, len(x))
			for xi := range x {
				var sum float64
				n := 0
				for ci, c := range cells {
					if c.variant == vi && c.point == xi {
						sum += m.get(results[ci])
						n++
					}
				}
				y[xi] = sum / float64(n)
			}
			panels[mi].Curves = append(panels[mi].Curves, report.Curve{Label: v.label, Y: y})
		}
	}
	return panels, nil
}

type variant struct {
	label  string
	mutate func(*config.Scenario)
}

// AblationRate compares SDSRP with the distributed λ estimator against an
// oracle fixed rate (DESIGN.md §8): how much does online estimation cost?
func AblationRate(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	base.PolicyName = "SDSRP"
	// The oracle mean comes from a traffic-free measurement run at the same
	// scale, mirroring how the paper computes E(I) in Fig. 3.
	oo := o.withDefaults()
	probe := oo.apply(config.RandomWaypoint())
	probe.GenIntervalLo = 0
	probe.RecordIntermeeting = true
	probe.Name = "ablation-rate-probe"
	res, err := Run([]config.Scenario{probe}, oo.Workers, nil)
	if err != nil {
		return nil, err
	}
	trueMean := res[0].MeanIntermeeting
	if trueMean <= 0 {
		trueMean = base.PriorMeanIntermeeting
	}
	return ablationSweep("ablation-rate", "estimated λ vs oracle λ", base, []variant{
		{"SDSRP estimated", func(*config.Scenario) {}},
		{"SDSRP oracle-rate", func(sc *config.Scenario) { sc.OracleRateMean = trueMean }},
	}, o)
}

// AblationDropList compares SDSRP with and without the Fig. 5 dropped-list
// gossip: without it d̂_i = 0 and re-receipt of dropped messages is allowed.
func AblationDropList(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	base.PolicyName = "SDSRP"
	return ablationSweep("ablation-droplist", "dropped-list gossip on/off", base, []variant{
		{"SDSRP", func(*config.Scenario) {}},
		{"SDSRP no-droplist", func(sc *config.Scenario) { sc.DisableDropList = true }},
	}, o)
}

// AblationTaylor compares the closed-form Eq. 10 priority against the
// Eq. 13 Taylor truncations the paper proposes for cheaper computation.
func AblationTaylor(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	return ablationSweep("ablation-taylor", "Eq.13 Taylor depth", base, []variant{
		{"SDSRP", func(sc *config.Scenario) { sc.PolicyName = "SDSRP" }},
		{"SDSRP-Taylor1", func(sc *config.Scenario) { sc.PolicyName = "SDSRP-Taylor1" }},
		{"SDSRP-Taylor3", func(sc *config.Scenario) { sc.PolicyName = "SDSRP-Taylor3" }},
	}, o)
}

// AblationOracleUtility compares SDSRP's distributed estimates of
// (m_i, n_i) against a GBSD-style oracle that reads the simulator's ground
// truth — the upper bound on what the Eq. 10 utility can achieve.
func AblationOracleUtility(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	return ablationSweep("ablation-oracle", "estimated vs ground-truth spread", base, []variant{
		{"SDSRP", func(sc *config.Scenario) { sc.PolicyName = "SDSRP" }},
		{"OracleUtility", func(sc *config.Scenario) { sc.PolicyName = "OracleUtility" }},
	}, o)
}

// AblationLambda compares the default contact-census λ estimator against
// the paper-literal intermeeting-gap average (censored at experiment
// scale — see core.CensusEstimator) and the fixed-rate oracle.
func AblationLambda(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	base.PolicyName = "SDSRP"
	return ablationSweep("ablation-lambda", "λ estimator: census vs gap-average", base, []variant{
		{"SDSRP census-λ", func(*config.Scenario) {}},
		{"SDSRP gap-λ", func(sc *config.Scenario) { sc.GapLambdaEstimator = true }},
	}, o)
}

// AblationPreflight compares the paper's Algorithm 1 receive-then-drop
// overflow handling against preflight refusal (evaluate the eviction plan
// before any bytes move), which saves the wasted transfers Algorithm 1
// charges to the heuristic policies.
func AblationPreflight(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	return ablationSweep("ablation-preflight", "receive-then-drop vs preflight refusal", base, []variant{
		{"SDSRP rtd", func(sc *config.Scenario) { sc.PolicyName = "SDSRP" }},
		{"SDSRP preflight", func(sc *config.Scenario) { sc.PolicyName = "SDSRP"; sc.PreflightEviction = true }},
		{"FIFO rtd", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait" }},
		{"FIFO preflight", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait"; sc.PreflightEviction = true }},
	}, o)
}

// ExtraProtocols is an extension beyond the paper: the same congested
// buffer sweep under different routing protocols (all with FIFO buffers),
// situating binary Spray-and-Wait between Epidemic's flooding and Direct
// Delivery's single-copy frugality, with source spray and Spray-and-Focus
// alongside.
func ExtraProtocols(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	base.PolicyName = "SprayAndWait"
	return ablationSweep("extra-protocols", "routing protocols under FIFO buffers", base, []variant{
		{"spray-and-wait", func(sc *config.Scenario) { sc.ProtocolName = "spray-and-wait" }},
		{"snw-source", func(sc *config.Scenario) { sc.ProtocolName = "spray-and-wait-source" }},
		{"spray-and-focus", func(sc *config.Scenario) { sc.ProtocolName = "spray-and-focus" }},
		{"snw-predict", func(sc *config.Scenario) { sc.ProtocolName = "spray-and-wait-predict" }},
		{"prophet", func(sc *config.Scenario) { sc.ProtocolName = "prophet" }},
		{"epidemic", func(sc *config.Scenario) { sc.ProtocolName = "epidemic" }},
		{"direct", func(sc *config.Scenario) { sc.ProtocolName = "direct" }},
	}, o)
}

// ExtraAck is an extension beyond the paper: the same buffer sweep with the
// ACK/immunization mechanism the paper's model excludes (Section III-A),
// for plain Spray-and-Wait and SDSRP. It bounds how much of the congestion
// problem immunization alone would solve.
func ExtraAck(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	return ablationSweep("extra-ack", "ACK immunization on/off", base, []variant{
		{"FIFO", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait" }},
		{"FIFO+ack", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait"; sc.UseAcks = true }},
		{"SDSRP", func(sc *config.Scenario) { sc.PolicyName = "SDSRP" }},
		{"SDSRP+ack", func(sc *config.Scenario) { sc.PolicyName = "SDSRP"; sc.UseAcks = true }},
	}, o)
}

// ExtraSizes is an extension beyond the paper: heterogeneous payloads
// (0.25–1 MB instead of fixed 0.5 MB) across the buffer sweep, comparing
// size-blind policies against the size-aware Knapsack (utility per byte,
// after the authors' EWSN 2015 follow-up) and DropLargest.
func ExtraSizes(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	base.MessageSize = config.MB / 4
	base.MessageSizeHi = config.MB
	return ablationSweep("extra-sizes", "heterogeneous payloads (0.25-1 MB)", base, []variant{
		{"FIFO", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait" }},
		{"SDSRP", func(sc *config.Scenario) { sc.PolicyName = "SDSRP" }},
		{"Knapsack", func(sc *config.Scenario) { sc.PolicyName = "Knapsack" }},
		{"DropLargest", func(sc *config.Scenario) { sc.PolicyName = "DropLargest" }},
	}, o)
}

// ExtraEnergy is an extension beyond the paper: finite batteries (the
// paper's model has none). Radios drain while scanning and transferring;
// policies that waste fewer transfers keep the fleet alive longer, turning
// SDSRP's overhead advantage into a survivability advantage.
func ExtraEnergy(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	base.Energy = config.Energy{
		// Scanning alone spends 9 kJ over the 18 000 s run; the remaining
		// ~21 kJ buys on the order of 90 transfers at 0.5 MB — below what
		// wasteful policies attempt, so radio economy decides who survives.
		Capacity:   30000,
		ScanPerSec: 0.5,
		TxPerSec:   15,
		RxPerSec:   10,
	}
	return ablationSweep("extra-energy", "finite batteries", base, []variant{
		{"FIFO", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait" }},
		{"SW-C", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait-C" }},
		{"SDSRP", func(sc *config.Scenario) { sc.PolicyName = "SDSRP" }},
	}, o)
}

// ExtraMap is an extension beyond the paper: the four buffer-management
// strategies on map-constrained mobility (shortest paths over a Manhattan
// street grid, the ONE simulator's signature model) instead of free-space
// random waypoint. Street geometry concentrates encounters on shared
// corridors; the experiment shows the policy ordering is not an artifact
// of open-field RWP.
func ExtraMap(o Options) ([]report.Panel, error) {
	base := config.RandomWaypoint()
	base.Mobility = config.Mobility{
		Kind:    config.MobilityMapGrid,
		SpeedLo: 2, SpeedHi: 2,
		MapCols: 12, MapRows: 9, MapSpacing: 400, MapDropProb: 0.1,
	}
	base.PriorMeanIntermeeting = 20000
	return ablationSweep("extra-map", "street-grid mobility (map-based movement)", base, []variant{
		{"SprayAndWait", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait" }},
		{"SprayAndWait-O", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait-O" }},
		{"SprayAndWait-C", func(sc *config.Scenario) { sc.PolicyName = "SprayAndWait-C" }},
		{"SDSRP", func(sc *config.Scenario) { sc.PolicyName = "SDSRP" }},
	}, o)
}

// Spec names one runnable experiment for cmd/experiments.
type Spec struct {
	Name string
	Desc string
	Run  func(Options) ([]report.Panel, error)
}

// All returns the experiment registry: every paper figure plus the
// ablations, in presentation order.
func All() []Spec {
	return []Spec{
		{"fig3", "Intermeeting time distributions (RWP + EPFL substitute)", Fig3},
		{"fig4", "Priority U vs P(R): idealization and Taylor truncations", Fig4},
		{"fig8copies", "RWP: metrics vs initial copies (Fig. 8 a-c)", Fig8Copies},
		{"fig8buffer", "RWP: metrics vs buffer size (Fig. 8 d-f)", Fig8Buffer},
		{"fig8rate", "RWP: metrics vs generation rate (Fig. 8 g-i)", Fig8Rate},
		{"fig9copies", "EPFL: metrics vs initial copies (Fig. 9 a-c)", Fig9Copies},
		{"fig9buffer", "EPFL: metrics vs buffer size (Fig. 9 d-f)", Fig9Buffer},
		{"fig9rate", "EPFL: metrics vs generation rate (Fig. 9 g-i)", Fig9Rate},
		{"ablation-rate", "SDSRP: estimated vs oracle intermeeting rate", AblationRate},
		{"ablation-droplist", "SDSRP: dropped-list gossip on/off", AblationDropList},
		{"ablation-taylor", "SDSRP: Taylor-truncated priority", AblationTaylor},
		{"ablation-oracle", "SDSRP vs ground-truth-utility (GBSD-style)", AblationOracleUtility},
		{"ablation-lambda", "SDSRP: census vs gap-average λ estimation", AblationLambda},
		{"ablation-preflight", "overflow semantics: receive-then-drop vs preflight", AblationPreflight},
		{"extra-protocols", "extension: routing-protocol comparison under FIFO", ExtraProtocols},
		{"extra-ack", "extension: ACK immunization the paper's model excludes", ExtraAck},
		{"extra-sizes", "extension: heterogeneous payloads with size-aware policies", ExtraSizes},
		{"extra-energy", "extension: finite batteries (radio economy as survivability)", ExtraEnergy},
		{"extra-map", "extension: paper policies on street-grid (map-based) mobility", ExtraMap},
		{"resilience-loss", "resilience: metrics vs per-transfer loss probability", ResilienceLoss},
		{"resilience-churn", "resilience: metrics vs node crash/reboot churn", ResilienceChurn},
		{"resilience-blackhole", "resilience: metrics vs black-hole node fraction", ResilienceBlackhole},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
