package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"sdsrp/internal/config"
)

// Digest returns the content address of a scenario: a SHA-256 hex digest
// over its canonical serialization. Two scenarios share a digest iff they
// would simulate identically, so the digest keys the run journal, result
// caches, and any future service-layer deduplication.
//
// Canonicalization rules (the byte-stability discipline of internal/bench):
//
//   - the serialization is encoding/json over config.Scenario, whose keys
//     follow struct declaration order — deterministic, map-free, and
//     timestamp-free;
//   - float64 fields use Go's shortest round-trip formatting, so two equal
//     bit patterns always serialize identically (scenario fields are finite
//     by validation, so the non-finite JSON gap cannot bite);
//   - every scenario field participates, including Name, Seed, PolicyName,
//     and MaxEvents. Mutating any field — or adding one to the struct —
//     changes the digest, which conservatively forces a re-run rather than
//     ever serving a stale cached result.
func Digest(sc config.Scenario) (string, error) {
	data, err := json.Marshal(sc)
	if err != nil {
		return "", fmt.Errorf("experiment: digest: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
