package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"sdsrp/internal/config"
	"sdsrp/internal/network"
	"sdsrp/internal/obs"
	"sdsrp/internal/stats"
	"sdsrp/internal/world"
)

// Journal entry statuses.
const (
	// StatusDone marks a run that completed and carries its Result; resume
	// skips these.
	StatusDone = "done"
	// StatusFailed marks a run whose every attempt errored; resume re-runs
	// these.
	StatusFailed = "failed"
)

// Entry is one journaled run outcome: the scenario's content address plus
// enough of the result to make a resumed sweep byte-identical to an
// uninterrupted one without re-executing the run. Seed, policy, and name are
// recorded redundantly (they are folded into the digest) so the journal
// stays greppable by humans.
type Entry struct {
	Digest   string `json:"digest"`
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`
	Policy   string `json:"policy"`
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	// Error holds the final attempt's error text for failed entries.
	Error string `json:"error,omitempty"`
	// Result is present iff Status is StatusDone.
	Result *JournalResult `json:"result,omitempty"`
}

// F64 is a float64 that survives the JSON round trip bit-for-bit: finite
// values use Go's shortest round-trip number formatting, and the values
// plain JSON cannot encode (±Inf from a zero-delivery overhead ratio, NaN)
// are spelled as quoted strings. Without this, journaling a Result with
// OverheadRatio = +Inf would fail outright.
type F64 float64

// MarshalJSON encodes finite values as JSON numbers and non-finite values
// as the strings "+Inf", "-Inf", and "NaN".
func (f F64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (f *F64) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+Inf"`:
		*f = F64(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = F64(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = F64(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = F64(v)
	return nil
}

// JournalResult is the wire form of a world.Result. Float fields use F64 so
// the stored metrics round-trip bit-exactly; the scenario is stored in its
// resolved form (world.Build fills Nodes and Area for trace-driven and
// group scenarios), so a reloaded Result equals the live one field for
// field.
type JournalResult struct {
	Scenario            config.Scenario `json:"scenario"`
	Summary             summaryWire     `json:"summary"`
	Contacts            int             `json:"contacts"`
	MeanContactDuration F64             `json:"mean_contact_duration"`
	Energy              energyWire      `json:"energy"`
	MeanIntermeeting    F64             `json:"mean_intermeeting"`
	ExpFitError         F64             `json:"exp_fit_error"`
	IntermeetingN       int             `json:"intermeeting_n"`
	Perf                perfWire        `json:"perf"`
}

// summaryWire mirrors stats.Summary with journal-safe floats.
type summaryWire struct {
	Created       int `json:"created"`
	Delivered     int `json:"delivered"`
	Forwards      int `json:"forwards"`
	Started       int `json:"started"`
	Aborted       int `json:"aborted"`
	Refused       int `json:"refused"`
	Lost          int `json:"lost"`
	PolicyDrops   int `json:"policy_drops"`
	ExpiredDrops  int `json:"expired_drops"`
	AckPurges     int `json:"ack_purges"`
	Duplicates    int `json:"duplicates"`
	DeliveryRatio F64 `json:"delivery_ratio"`
	AvgHops       F64 `json:"avg_hops"`
	OverheadRatio F64 `json:"overhead_ratio"`
	AvgLatency    F64 `json:"avg_latency"`
	MedianLatency F64 `json:"median_latency"`
	P95Latency    F64 `json:"p95_latency"`
}

// energyWire mirrors network.EnergyReport.
type energyWire struct {
	Enabled    bool `json:"enabled"`
	DeadNodes  int  `json:"dead_nodes"`
	TotalUsed  F64  `json:"total_used"`
	MeanLevel  F64  `json:"mean_level"`
	FirstDeath F64  `json:"first_death"`
}

// perfWire mirrors obs.RunStats. WallSeconds is the only field of the whole
// entry that legitimately differs between two executions of the same
// scenario; a resumed sweep reports the journaled value.
type perfWire struct {
	SimSeconds   F64    `json:"sim_seconds"`
	Events       uint64 `json:"events"`
	PeakQueue    int    `json:"peak_queue"`
	WallSeconds  F64    `json:"wall_seconds"`
	PairsChecked uint64 `json:"pairs_checked"`
	PairsSkipped uint64 `json:"pairs_skipped"`
	Wakeups      uint64 `json:"wakeups"`
}

// toWire converts a live Result into its journal form.
func toWire(r world.Result) *JournalResult {
	s := r.Summary
	return &JournalResult{
		Scenario: r.Scenario,
		Summary: summaryWire{
			Created: s.Created, Delivered: s.Delivered, Forwards: s.Forwards,
			Started: s.Started, Aborted: s.Aborted, Refused: s.Refused,
			Lost: s.Lost, PolicyDrops: s.PolicyDrops, ExpiredDrops: s.ExpiredDrops,
			AckPurges: s.AckPurges, Duplicates: s.Duplicates,
			DeliveryRatio: F64(s.DeliveryRatio), AvgHops: F64(s.AvgHops),
			OverheadRatio: F64(s.OverheadRatio), AvgLatency: F64(s.AvgLatency),
			MedianLatency: F64(s.MedianLatency), P95Latency: F64(s.P95Latency),
		},
		Contacts:            r.Contacts,
		MeanContactDuration: F64(r.MeanContactDuration),
		Energy: energyWire{
			Enabled: r.Energy.Enabled, DeadNodes: r.Energy.DeadNodes,
			TotalUsed: F64(r.Energy.TotalUsed), MeanLevel: F64(r.Energy.MeanLevel),
			FirstDeath: F64(r.Energy.FirstDeath),
		},
		MeanIntermeeting: F64(r.MeanIntermeeting),
		ExpFitError:      F64(r.ExpFitError),
		IntermeetingN:    r.IntermeetingN,
		Perf: perfWire{
			SimSeconds: F64(r.Perf.SimSeconds), Events: r.Perf.Events,
			PeakQueue: r.Perf.PeakQueue, WallSeconds: F64(r.Perf.WallSeconds),
			PairsChecked: r.Perf.PairsChecked, PairsSkipped: r.Perf.PairsSkipped,
			Wakeups: r.Perf.Wakeups,
		},
	}
}

// Restore reconstructs the live world.Result the entry was recorded from.
func (jr *JournalResult) Restore() world.Result {
	s := jr.Summary
	return world.Result{
		Summary: stats.Summary{
			Created: s.Created, Delivered: s.Delivered, Forwards: s.Forwards,
			Started: s.Started, Aborted: s.Aborted, Refused: s.Refused,
			Lost: s.Lost, PolicyDrops: s.PolicyDrops, ExpiredDrops: s.ExpiredDrops,
			AckPurges: s.AckPurges, Duplicates: s.Duplicates,
			DeliveryRatio: float64(s.DeliveryRatio), AvgHops: float64(s.AvgHops),
			OverheadRatio: float64(s.OverheadRatio), AvgLatency: float64(s.AvgLatency),
			MedianLatency: float64(s.MedianLatency), P95Latency: float64(s.P95Latency),
		},
		Scenario:            jr.Scenario,
		Contacts:            jr.Contacts,
		MeanContactDuration: float64(jr.MeanContactDuration),
		Energy: network.EnergyReport{
			Enabled: jr.Energy.Enabled, DeadNodes: jr.Energy.DeadNodes,
			TotalUsed: float64(jr.Energy.TotalUsed), MeanLevel: float64(jr.Energy.MeanLevel),
			FirstDeath: float64(jr.Energy.FirstDeath),
		},
		MeanIntermeeting: float64(jr.MeanIntermeeting),
		ExpFitError:      float64(jr.ExpFitError),
		IntermeetingN:    jr.IntermeetingN,
		Perf: obs.RunStats{
			SimSeconds: float64(jr.Perf.SimSeconds), Events: jr.Perf.Events,
			PeakQueue: jr.Perf.PeakQueue, WallSeconds: float64(jr.Perf.WallSeconds),
			PairsChecked: jr.Perf.PairsChecked, PairsSkipped: jr.Perf.PairsSkipped,
			Wakeups: jr.Perf.Wakeups,
		},
	}
}

// Journal is a crash-safe, append-only JSONL manifest of finished runs,
// keyed by scenario digest. Concurrency-safe: the experiment runner records
// entries from every worker goroutine.
//
// Durability model:
//
//   - Record appends one JSON line and fsyncs it, so a crash mid-sweep
//     loses at most the runs still in flight — never an already-recorded
//     one.
//   - OpenJournal tolerates a truncated tail line (the signature of a crash
//     mid-append) by dropping it, then rewrites the surviving entries
//     atomically (tmp file + fsync + rename) so the on-disk journal is
//     whole again before any new entry is appended.
//   - Re-recording a digest is last-writer-wins, both in memory and across
//     reloads (later lines shadow earlier ones; compaction keeps only the
//     winner).
//
// The journal contains no timestamps and no map-ordered emission, so
// journaling the same runs always produces the same bytes — the property
// the kill-and-resume gate (make resume-smoke) checks end to end.
type Journal struct {
	//lint:invariant the mutex serializes appends from sweep workers AFTER their runs complete; journal writes happen outside every engine's dispatch loop and feed nothing back into it
	mu      sync.Mutex
	path    string
	f       *os.File
	entries map[string]Entry
	// order holds digests in first-recorded order so compaction and
	// Entries emit deterministically without ranging over the map.
	order []string
}

// OpenJournal opens (creating if needed) the journal at path, loads every
// surviving entry, heals a truncated tail, and leaves the file open for
// appends. Corruption anywhere but the final line is reported as an error:
// a journal with a damaged interior records runs that can no longer be
// trusted, and silently dropping them would resurrect completed work.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path, entries: make(map[string]Entry)}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh journal.
	case err != nil:
		return nil, fmt.Errorf("experiment: journal: %w", err)
	default:
		if err := j.load(data); err != nil {
			return nil, err
		}
		// Heal: rewrite the surviving entries atomically so a dropped
		// truncated tail cannot corrupt the first appended line.
		if err := j.compact(); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// load parses the journal body, tolerating a truncated final line.
func (j *Journal) load(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("experiment: journal %s: %w", j.path, err)
	}
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.Digest == "" {
			if i == len(lines)-1 {
				// A torn final line is the expected crash signature:
				// the run it described was in flight and will re-run.
				continue
			}
			return fmt.Errorf("experiment: journal %s: line %d corrupt (only the final line may be truncated): %v",
				j.path, i+1, err)
		}
		j.remember(e)
	}
	return nil
}

// remember indexes an entry, last-writer-wins.
func (j *Journal) remember(e Entry) {
	if _, seen := j.entries[e.Digest]; !seen {
		j.order = append(j.order, e.Digest)
	}
	j.entries[e.Digest] = e
}

// compact atomically rewrites the journal with the surviving deduplicated
// entries: write to a tmp file, fsync it, rename over the journal, fsync
// the directory. A crash at any point leaves either the old or the new
// journal intact, never a blend.
func (j *Journal) compact() error {
	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("experiment: journal compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	for _, d := range j.order {
		line, err := json.Marshal(j.entries[d])
		if err != nil {
			tmp.Close()
			return fmt.Errorf("experiment: journal compact: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("experiment: journal compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("experiment: journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("experiment: journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("experiment: journal compact: %w", err)
	}
	syncDir(filepath.Dir(j.path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Best-effort: some filesystems refuse directory fsync, and losing the
// rename durability there degrades to re-running a few journaled runs.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Record appends one entry and fsyncs the journal. Safe for concurrent use.
func (j *Journal) Record(e Entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("experiment: journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("experiment: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("experiment: journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("experiment: journal record: %w", err)
	}
	j.remember(e)
	return nil
}

// RecordResult journals a completed run under its digest.
func (j *Journal) RecordResult(digest string, sc config.Scenario, res world.Result, attempts int) error {
	return j.Record(Entry{
		Digest:   digest,
		Name:     sc.Name,
		Seed:     sc.Seed,
		Policy:   sc.PolicyName,
		Status:   StatusDone,
		Attempts: attempts,
		Result:   toWire(res),
	})
}

// RecordFailure journals a run whose every attempt errored.
func (j *Journal) RecordFailure(digest string, sc config.Scenario, runErr error, attempts int) error {
	return j.Record(Entry{
		Digest:   digest,
		Name:     sc.Name,
		Seed:     sc.Seed,
		Policy:   sc.PolicyName,
		Status:   StatusFailed,
		Attempts: attempts,
		Error:    runErr.Error(),
	})
}

// Lookup returns the latest entry recorded for a digest.
func (j *Journal) Lookup(digest string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[digest]
	return e, ok
}

// Len returns the number of distinct digests journaled.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Entries returns every surviving entry in first-recorded order.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Entry, 0, len(j.order))
	for _, d := range j.order {
		out = append(out, j.entries[d])
	}
	return out
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal file. The Journal remains readable
// (Lookup/Entries) but further Records fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("experiment: journal close: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiment: journal close: %w", err)
	}
	return nil
}
