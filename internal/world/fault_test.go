package world

import (
	"bytes"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/fault"
	"sdsrp/internal/obs"
)

// heavyFaults exercises every fault axis at once.
func heavyFaults() fault.Config {
	return fault.Config{
		TransferLossProb:  0.2,
		LinkFlapMeanUp:    40,
		BandwidthJitterLo: 0.5,
		BandwidthJitterHi: 1.0,
		Churn:             fault.Churn{MeanUp: 400, MeanDown: 60, WipeOnReboot: true},
		BlackHoleFraction: 0.1,
		SelfishFraction:   0.1,
	}
}

// TestFaultRunDeterministic: the golden-log property must hold with every
// fault axis live — same seed, byte-identical JSONL; different seed differs.
func TestFaultRunDeterministic(t *testing.T) {
	sc := tinyTracedScenario()
	sc.Faults = heavyFaults()
	a := runTraced(t, sc)
	b := runTraced(t, sc)
	if len(a) == 0 {
		t.Fatal("faulted run produced an empty event log")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different event logs under faults")
	}
	sc.Seed = 8
	c := runTraced(t, sc)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical faulted logs (suspicious)")
	}
}

// TestZeroIntensityFaultsMatchDisabled: a config that enables the injector
// but injects nothing (bandwidth pinned to exactly 1.0) must be
// byte-identical to running with no fault config at all. This proves the
// fault substream is fully isolated from mobility, traffic, and policy
// randomness.
func TestZeroIntensityFaultsMatchDisabled(t *testing.T) {
	sc := tinyTracedScenario()
	base := runTraced(t, sc)

	sc.Faults = fault.Config{BandwidthJitterLo: 1, BandwidthJitterHi: 1}
	if !sc.Faults.Enabled() {
		t.Fatal("zero-intensity config must still enable the injector")
	}
	zero := runTraced(t, sc)
	if !bytes.Equal(base, zero) {
		t.Fatal("zero-intensity fault injector perturbed the simulation")
	}
}

// TestFaultEventsObservable: a heavy fault run must surface every new event
// type through the tracer, and the loss counter must land in the summary.
func TestFaultEventsObservable(t *testing.T) {
	sc := tinyTracedScenario()
	sc.Duration = 3600
	sc.Faults = heavyFaults()
	metrics := obs.NewMetrics()
	w, err := Build(sc, WithTracer(metrics))
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, w)
	for _, et := range []obs.Type{obs.TransferLost, obs.NodeDown, obs.NodeUp, obs.LinkFlap} {
		if metrics.Count(et) == 0 {
			t.Errorf("no %v events in a heavy fault run", et)
		}
	}
	if res.Lost == 0 {
		t.Error("summary.Lost = 0 under 20% transfer loss")
	}
	if int(metrics.Count(obs.TransferLost)) != res.Lost {
		t.Errorf("transfer_lost events %d != summary.Lost %d",
			metrics.Count(obs.TransferLost), res.Lost)
	}
}

// TestBlackHolesHurtDelivery: seeding a quarter of the fleet as black holes
// must not *improve* delivery, and the run must stay deterministic.
func TestBlackHolesHurtDelivery(t *testing.T) {
	sc := tinyTracedScenario()
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, w)

	sc.Faults = fault.Config{BlackHoleFraction: 0.25}
	w2, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	hole := mustRun(t, w2)
	if hole.Delivered > base.Delivered {
		t.Errorf("black holes improved delivery: %d > %d", hole.Delivered, base.Delivered)
	}
	if hole.Lost == 0 {
		t.Error("no transfers swallowed despite 3 black holes")
	}
}

// TestChurnGroupScoping: churn restricted to a named group must only take
// down nodes from that group.
func TestChurnGroupScoping(t *testing.T) {
	sc := tinyTracedScenario()
	sc.Groups = []config.Group{
		{Name: "fragile", Count: 4, Mobility: sc.Mobility},
		{Name: "solid", Count: 8, Mobility: sc.Mobility},
	}
	sc.Faults = fault.Config{
		Churn: fault.Churn{MeanUp: 200, MeanDown: 100, Groups: []string{"fragile"}},
	}
	ring := obs.NewRing(4096)
	w, err := Build(sc, WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	var downs int
	for _, ev := range ring.Events() {
		if ev.Type == obs.NodeDown || ev.Type == obs.NodeUp {
			downs++
			if ev.Node >= 4 {
				t.Fatalf("node %d churned outside the fragile group", ev.Node)
			}
		}
	}
	if downs == 0 {
		t.Fatal("no churn events for the fragile group")
	}
}
