package world

import (
	"errors"
	"reflect"
	"testing"

	"sdsrp/internal/config"
)

func budgetScenario(seed uint64) config.Scenario {
	sc := config.RandomWaypoint()
	sc.Nodes = 10
	sc.Duration = 600
	sc.TTL = 300
	sc.Area.Max.X = 500
	sc.Area.Max.Y = 500
	sc.Seed = seed
	return sc
}

// TestRunEventBudget checks Scenario.MaxEvents stops a run with the typed
// budget error and a usable partial result.
func TestRunEventBudget(t *testing.T) {
	full := budgetScenario(1)
	w, err := Build(full)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Perf.Events < 20 {
		t.Skipf("reference run too small (%d events) to cut meaningfully", ref.Perf.Events)
	}

	capped := budgetScenario(1)
	capped.MaxEvents = ref.Perf.Events / 2
	w2, err := Build(capped)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w2.Run()
	if err == nil {
		t.Fatal("capped run returned no error")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("errors.Is(err, ErrBudgetExceeded) = false for %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T", err)
	}
	if be.Events != capped.MaxEvents || be.MaxEvents != capped.MaxEvents {
		t.Errorf("budget error counts %d/%d, want %d/%d",
			be.Events, be.MaxEvents, capped.MaxEvents, capped.MaxEvents)
	}
	if res.Perf.Events != capped.MaxEvents {
		t.Errorf("partial result reports %d events, want %d", res.Perf.Events, capped.MaxEvents)
	}
	if be.SimTime <= 0 || be.SimTime > full.Duration {
		t.Errorf("cutoff sim time %v out of range (0, %v]", be.SimTime, full.Duration)
	}
}

// TestRunBudgetDeterministic checks the budget cutoff is reproducible: two
// capped runs of the same scenario stop at the same event with identical
// partial metrics.
func TestRunBudgetDeterministic(t *testing.T) {
	run := func() (Result, error) {
		sc := budgetScenario(1)
		sc.MaxEvents = 200
		w, err := Build(sc)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run()
	}
	a, errA := run()
	b, errB := run()
	if !errors.Is(errA, ErrBudgetExceeded) || !errors.Is(errB, ErrBudgetExceeded) {
		t.Fatalf("budget errors missing: %v / %v", errA, errB)
	}
	a.Perf.WallSeconds = 0
	b.Perf.WallSeconds = 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("capped runs diverge:\n a=%+v\n b=%+v", a, b)
	}
}
