package world

import (
	"os"
	"path/filepath"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/geo"
	"sdsrp/internal/msg"
)

// mustRun executes w to its horizon, failing the test on a run error.
func mustRun(t testing.TB, w *World) Result {
	t.Helper()
	r, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// smallScenario is a scaled-down Table II used by the integration tests:
// dense enough to deliver plenty of traffic in a couple of simulated hours.
func smallScenario(policyName string) config.Scenario {
	sc := config.RandomWaypoint()
	sc.Name = "small-" + policyName
	sc.Nodes = 30
	sc.Area = geo.NewRect(1200, 900)
	sc.Duration = 4000
	sc.TTL = 4000
	sc.GenIntervalLo, sc.GenIntervalHi = 20, 30
	sc.InitialCopies = 8
	sc.PolicyName = policyName
	sc.PriorMeanIntermeeting = 2000
	return sc
}

func TestBuildRejectsInvalid(t *testing.T) {
	sc := smallScenario("SDSRP")
	sc.Duration = -1
	if _, err := Build(sc); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	sc = smallScenario("NoSuchPolicy")
	if _, err := Build(sc); err == nil {
		t.Fatal("unknown policy accepted")
	}
	sc = smallScenario("SDSRP")
	sc.ProtocolName = "nope"
	if _, err := Build(sc); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunDeliversTraffic(t *testing.T) {
	w, err := Build(smallScenario("SDSRP"))
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)
	if r.Created < 100 {
		t.Fatalf("created = %d, traffic generator broken", r.Created)
	}
	if r.Delivered == 0 {
		t.Fatal("no deliveries in a dense scenario")
	}
	if r.DeliveryRatio <= 0 || r.DeliveryRatio > 1 {
		t.Fatalf("delivery ratio = %v", r.DeliveryRatio)
	}
	if r.Contacts == 0 {
		t.Fatal("no contacts")
	}
	if r.AvgHops < 1 {
		t.Fatalf("avg hops = %v", r.AvgHops)
	}
	if r.Forwards < r.Delivered {
		t.Fatalf("forwards %d < delivered %d", r.Forwards, r.Delivered)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		w, err := Build(smallScenario("SDSRP"))
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, w)
	}
	a, b := run(), run()
	if a.Summary != b.Summary || a.Contacts != b.Contacts {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	sc := smallScenario("SDSRP")
	w1, _ := Build(sc)
	sc.Seed = 999
	w2, _ := Build(sc)
	a, b := mustRun(t, w1), mustRun(t, w2)
	if a.Summary == b.Summary {
		t.Fatal("different seeds produced identical summaries")
	}
}

func TestPoliciesProduceDifferentOutcomes(t *testing.T) {
	results := map[string]Result{}
	for _, p := range []string{"SprayAndWait", "SprayAndWait-O", "SprayAndWait-C", "SDSRP"} {
		sc := smallScenario(p)
		sc.Seed = 7
		w, err := Build(sc)
		if err != nil {
			t.Fatal(err)
		}
		results[p] = mustRun(t, w)
	}
	if results["SprayAndWait"].Summary == results["SDSRP"].Summary {
		t.Fatal("FIFO and SDSRP produced identical runs; policy not wired")
	}
	if results["SprayAndWait-O"].Summary == results["SprayAndWait-C"].Summary {
		t.Fatal("SW-O and SW-C identical; priority functions not wired")
	}
}

// Token conservation: at any end state, for every message the spray tokens
// across all buffers never exceed the initial allocation.
func TestTokenConservation(t *testing.T) {
	w, err := Build(smallScenario("SprayAndWait")) // FIFO: no receipt rejection
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	tokens := map[msg.ID]int{}
	var initial map[msg.ID]int = map[msg.ID]int{}
	for _, h := range w.Hosts {
		for _, s := range h.Buffer().Items() {
			tokens[s.M.ID] += s.Copies
			initial[s.M.ID] = s.M.InitialCopies
		}
	}
	for id, tok := range tokens {
		if tok > initial[id] {
			t.Fatalf("message %d holds %d tokens, initial %d", id, tok, initial[id])
		}
	}
	if len(tokens) == 0 {
		t.Fatal("no live messages at end of congested run")
	}
}

// Buffer budget: no host may ever exceed its byte capacity; spot-check the
// end state.
func TestBufferBudgetRespected(t *testing.T) {
	sc := smallScenario("SDSRP")
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	for _, h := range w.Hosts {
		if h.Buffer().Used() > h.Buffer().Capacity() {
			t.Fatalf("host %d over budget: %d/%d", h.ID(), h.Buffer().Used(), h.Buffer().Capacity())
		}
	}
}

func TestCongestionCausesDrops(t *testing.T) {
	sc := smallScenario("SprayAndWait")
	sc.GenIntervalLo, sc.GenIntervalHi = 5, 8 // heavy traffic
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)
	if r.PolicyDrops == 0 {
		t.Fatal("no drops under heavy congestion; buffer management never exercised")
	}
}

func TestIntermeetingRecording(t *testing.T) {
	sc := smallScenario("SDSRP")
	sc.GenIntervalLo = 0 // no traffic: pure mobility measurement (Fig. 3 mode)
	sc.RecordIntermeeting = true
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)
	if r.IntermeetingN < 50 {
		t.Fatalf("intermeeting samples = %d", r.IntermeetingN)
	}
	if r.MeanIntermeeting <= 0 {
		t.Fatal("mean intermeeting not positive")
	}
	if r.Created != 0 || r.Forwards != 0 {
		t.Fatal("traffic ran in a traffic-free scenario")
	}
}

func TestTaxiScenarioRuns(t *testing.T) {
	sc := config.EPFL()
	sc.Nodes = 40
	sc.Duration = 3000
	sc.TTL = 3000
	sc.PolicyName = "SDSRP"
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)
	if r.Contacts == 0 {
		t.Fatal("taxi scenario produced no contacts")
	}
	if r.Created == 0 {
		t.Fatal("no traffic in taxi scenario")
	}
}

func TestEpidemicAndDirectBaselines(t *testing.T) {
	epi := smallScenario("SprayAndWait")
	epi.ProtocolName = "epidemic"
	dir := smallScenario("SprayAndWait")
	dir.ProtocolName = "direct"
	we, err := Build(epi)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := Build(dir)
	if err != nil {
		t.Fatal(err)
	}
	re, rd := mustRun(t, we), mustRun(t, wd)
	// Epidemic floods: overhead far above direct delivery's zero.
	if re.Forwards <= rd.Forwards {
		t.Fatalf("epidemic forwards %d <= direct %d", re.Forwards, rd.Forwards)
	}
	if rd.OverheadRatio != 0 && rd.Delivered > 0 {
		t.Fatalf("direct delivery overhead = %v, want 0", rd.OverheadRatio)
	}
}

func TestOracleRateMode(t *testing.T) {
	sc := smallScenario("SDSRP")
	sc.OracleRateMean = 1500
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)
	if r.Delivered == 0 {
		t.Fatal("oracle-rate run delivered nothing")
	}
}

func TestDropListAblation(t *testing.T) {
	base := smallScenario("SDSRP")
	base.Seed = 11
	off := base
	off.DisableDropList = true
	w1, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Build(off)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := mustRun(t, w1), mustRun(t, w2)
	if r1.Summary == r2.Summary {
		t.Fatal("drop-list ablation changed nothing; gossip not wired")
	}
}

func TestMobilityKinds(t *testing.T) {
	for _, kind := range []config.MobilityKind{config.MobilityRandomWalk, config.MobilityRandomDirection} {
		sc := smallScenario("SprayAndWait")
		sc.Mobility.Kind = kind
		sc.Mobility.EpochDist = 200
		sc.Duration = 1500
		w, err := Build(sc)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if r := mustRun(t, w); r.Contacts == 0 {
			t.Fatalf("%s: no contacts", kind)
		}
	}
}

func TestMapGridScenarioRuns(t *testing.T) {
	sc := smallScenario("SDSRP")
	sc.Mobility = config.Mobility{
		Kind:    config.MobilityMapGrid,
		SpeedLo: 3, SpeedHi: 8,
		PauseLo: 0, PauseHi: 30,
		MapCols: 8, MapRows: 6, MapSpacing: 150, MapDropProb: 0.15,
	}
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)
	if r.Contacts == 0 || r.Created == 0 {
		t.Fatalf("degenerate map run: %+v", r.Summary)
	}
	if r.Delivered == 0 {
		t.Fatal("no deliveries on a dense street grid")
	}
	// Determinism through the map path too.
	w2, _ := Build(sc)
	if mustRun(t, w2).Summary != r.Summary {
		t.Fatal("map scenario not deterministic")
	}
}

func TestMapFileScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "roads.txt")
	// A 2x2 block: enough for movement.
	roads := "0 0 300 0\n300 0 300 300\n300 300 0 300\n0 300 0 0\n0 0 300 300\n"
	if err := os.WriteFile(path, []byte(roads), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := smallScenario("SprayAndWait")
	sc.Nodes = 12
	sc.Duration, sc.TTL = 1500, 1500
	sc.Mobility = config.Mobility{
		Kind:    config.MobilityMapFile,
		SpeedLo: 2, SpeedHi: 4,
		MapFile: path,
	}
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r := mustRun(t, w); r.Contacts == 0 {
		t.Fatal("no contacts on a tiny map")
	}
	sc.Mobility.MapFile = filepath.Join(dir, "missing.txt")
	if _, err := Build(sc); err == nil {
		t.Fatal("missing map file accepted")
	}
}

func TestWarmupIntegration(t *testing.T) {
	base := smallScenario("SprayAndWait")
	w1, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	r1 := mustRun(t, w1)

	warm := base
	warm.Warmup = 2000 // half the horizon
	w2, err := Build(warm)
	if err != nil {
		t.Fatal(err)
	}
	r2 := mustRun(t, w2)
	// Roughly half the messages are excluded from the metrics.
	if r2.Created >= r1.Created || r2.Created < r1.Created/3 {
		t.Fatalf("warmup created = %d vs %d", r2.Created, r1.Created)
	}
	if r2.Delivered > r2.Created {
		t.Fatalf("delivered %d > created %d under warmup", r2.Delivered, r2.Created)
	}
	if r2.DeliveryRatio < 0 || r2.DeliveryRatio > 1 {
		t.Fatalf("ratio = %v", r2.DeliveryRatio)
	}
}

func TestHeterogeneousMessageSizes(t *testing.T) {
	sc := smallScenario("SprayAndWait")
	sc.MessageSize = 100_000
	sc.MessageSizeHi = 400_000
	sc.Duration, sc.TTL = 1500, 1500
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	seen := 0
	distinct := map[int64]bool{}
	for _, h := range w.Hosts {
		for _, s := range h.Buffer().Items() {
			if s.M.Size < 100_000 || s.M.Size > 400_000 {
				t.Fatalf("message size %d outside configured range", s.M.Size)
			}
			seen++
			distinct[s.M.Size] = true
		}
	}
	if seen == 0 {
		t.Fatal("no buffered messages to inspect")
	}
	if len(distinct) < 2 {
		t.Fatal("sizes not actually heterogeneous")
	}
}

func TestMessageSizeRangeValidation(t *testing.T) {
	sc := smallScenario("SprayAndWait")
	sc.MessageSize = 400_000
	sc.MessageSizeHi = 100_000 // inverted
	if _, err := Build(sc); err == nil {
		t.Fatal("inverted size range accepted")
	}
	sc = smallScenario("SprayAndWait")
	sc.MessageSizeHi = 3_000_000 // exceeds the 2.5 MB buffer
	if _, err := Build(sc); err == nil {
		t.Fatal("size range exceeding buffer accepted")
	}
}
