package world

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/fault"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/network"
	"sdsrp/internal/obs"
)

// diffBase is a small, fast scenario the differential matrix perturbs.
func diffBase() config.Scenario {
	sc := config.RandomWaypoint()
	sc.Nodes = 24
	sc.Area = geo.NewRect(1500, 1200)
	sc.Duration = 1200
	sc.TTL = 3000
	sc.BufferBytes = 2 * config.MB
	sc.RecordContacts = true
	return sc
}

// runScan executes sc under the given scan mode and returns the full JSONL
// event trace plus the result digest. The trace pins every link-up/down,
// transfer, drop, and delivery with its timestamp — byte equality between
// modes is the strongest observable equivalence the simulator offers.
func runScan(t *testing.T, sc config.Scenario, mode string) ([]byte, Result, []network.Contact) {
	t.Helper()
	sc.ScanMode = mode
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	w, err := Build(sc, WithTracer(jsonl))
	if err != nil {
		t.Fatalf("build (%s): %v", mode, err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatalf("run (%s): %v", mode, err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatalf("flush (%s): %v", mode, err)
	}
	return buf.Bytes(), res, w.Manager.ContactLog()
}

// assertScanModesAgree runs sc under both scanners and fails on the first
// diverging trace line.
func assertScanModesAgree(t *testing.T, sc config.Scenario) {
	t.Helper()
	naive, resN, logN := runScan(t, sc, "naive")
	lazy, resL, logL := runScan(t, sc, "lazy")
	if !bytes.Equal(naive, lazy) {
		nl := bytes.Split(naive, []byte("\n"))
		ll := bytes.Split(lazy, []byte("\n"))
		n := len(nl)
		if len(ll) < n {
			n = len(ll)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(nl[i], ll[i]) {
				t.Fatalf("scan modes diverge at trace line %d:\n  naive: %s\n  lazy:  %s", i+1, nl[i], ll[i])
			}
		}
		t.Fatalf("trace length differs: naive %d lines, lazy %d", len(nl), len(ll))
	}
	if resN.Summary != resL.Summary {
		t.Fatalf("summaries diverge:\nnaive: %+v\nlazy:  %+v", resN.Summary, resL.Summary)
	}
	if resN.Contacts != resL.Contacts || resN.MeanContactDuration != resL.MeanContactDuration {
		t.Fatalf("contact digests diverge: naive (%d, %v) lazy (%d, %v)",
			resN.Contacts, resN.MeanContactDuration, resL.Contacts, resL.MeanContactDuration)
	}
	if !reflect.DeepEqual(logN, logL) {
		t.Fatalf("recorded contact logs diverge: naive %d entries, lazy %d", len(logN), len(logL))
	}
	// The lazy scanner must actually have parked pairs on these scenarios
	// (otherwise the test only proves naive == naive). The raw checked
	// counters are NOT comparable across modes — naive's count is already
	// grid-prefiltered while lazy pays the full near set until parks kick
	// in — so the ns/op claim lives in the bench suite, not here.
	if resL.Perf.PairsSkipped == 0 {
		t.Errorf("lazy run skipped no pair checks — planner inert?")
	}
}

// diffFamilies is the scenario matrix shared by every scanner-equivalence
// test: all mobility kinds, per-node ranges, churn/flap faults, and energy
// death. TestLazyScanMatchesNaive runs it lazy-vs-naive;
// TestWorkerCountsMatchSerial (workers_diff_test.go) runs it across
// parallel worker counts.
func diffFamilies() map[string]func() config.Scenario {
	return map[string]func() config.Scenario{
		"rwp": diffBase,
		"random-walk": func() config.Scenario {
			sc := diffBase()
			sc.Mobility = config.Mobility{Kind: config.MobilityRandomWalk,
				SpeedLo: 1, SpeedHi: 6, EpochDist: 250}
			return sc
		},
		"random-direction": func() config.Scenario {
			sc := diffBase()
			sc.Mobility = config.Mobility{Kind: config.MobilityRandomDirection,
				SpeedLo: 0.5, SpeedHi: 3, PauseLo: 0, PauseHi: 60}
			return sc
		},
		"taxi-trace-replay": func() config.Scenario {
			// Synthesized fleet → Path playback: covers the parse-time
			// MaxSpeed measurement.
			sc := diffBase()
			sc.Nodes = 16
			sc.Mobility = config.Mobility{Kind: config.MobilityTaxi,
				Taxi: mobility.DefaultTaxiConfig(), SampleInterval: 30}
			sc.Area = sc.Mobility.Taxi.Area
			return sc
		},
		"map-grid": func() config.Scenario {
			sc := diffBase()
			sc.Mobility = config.Mobility{Kind: config.MobilityMapGrid,
				SpeedLo: 1, SpeedHi: 4, MapCols: 5, MapRows: 4, MapSpacing: 300}
			return sc
		},
		"groups-static-relays-per-node-ranges": func() config.Scenario {
			// Static relays (MaxSpeed 0 → retired pairs) with longer
			// radios among RWP walkers: covers per-node ranges and the
			// zero-closing-speed path.
			sc := diffBase()
			sc.Groups = []config.Group{
				{Name: "walkers", Count: 18, Mobility: config.Mobility{
					Kind: config.MobilityRWP, SpeedLo: 1, SpeedHi: 3}},
				{Name: "relays", Count: 6, Range: 250, Mobility: config.Mobility{
					Kind: config.MobilityStatic}},
			}
			return sc
		},
		"churn": func() config.Scenario {
			sc := diffBase()
			sc.Faults = fault.Config{Churn: fault.Churn{MeanUp: 300, MeanDown: 120}}
			return sc
		},
		"static-relays-churn": func() config.Scenario {
			// In-range static-static pairs (closing speed 0) whose endpoints
			// churn-crash and reboot: the lazy planner must keep them near —
			// retiring them would lose every post-reboot re-up the naive
			// scanner emits. Dense relays guarantee in-range static pairs.
			sc := diffBase()
			sc.Groups = []config.Group{
				{Name: "walkers", Count: 12, Mobility: config.Mobility{
					Kind: config.MobilityRWP, SpeedLo: 1, SpeedHi: 3}},
				{Name: "relays", Count: 12, Range: 400, Mobility: config.Mobility{
					Kind: config.MobilityStatic}},
			}
			sc.Faults = fault.Config{Churn: fault.Churn{MeanUp: 200, MeanDown: 100}}
			return sc
		},
		"flap-and-loss": func() config.Scenario {
			sc := diffBase()
			sc.Faults = fault.Config{LinkFlapMeanUp: 40, TransferLossProb: 0.05}
			return sc
		},
		"energy-death": func() config.Scenario {
			sc := diffBase()
			sc.Energy = config.Energy{Capacity: 400, ScanPerSec: 0.5, TxPerSec: 15, RxPerSec: 10}
			return sc
		},
	}
}

// TestLazyScanMatchesNaive is the differential property test: across seeds,
// every mobility kind, per-node ranges, and churn/flap faults, the lazy
// scanner's event stream must be byte-identical to the naive scanner's.
func TestLazyScanMatchesNaive(t *testing.T) {
	for name, mk := range diffFamilies() {
		for _, seed := range []uint64{1, 2, 3} {
			sc := mk()
			sc.Seed = seed
			sc.Name = fmt.Sprintf("diff-%s-%d", name, seed)
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				assertScanModesAgree(t, sc)
			})
		}
	}
}
