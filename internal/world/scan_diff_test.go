package world

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/fault"
	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/network"
	"sdsrp/internal/obs"
)

// diffBase is a small, fast scenario the differential matrix perturbs.
func diffBase() config.Scenario {
	sc := config.RandomWaypoint()
	sc.Nodes = 24
	sc.Area = geo.NewRect(1500, 1200)
	sc.Duration = 1200
	sc.TTL = 3000
	sc.BufferBytes = 2 * config.MB
	sc.RecordContacts = true
	return sc
}

// runScan executes sc under the given scan mode and returns the full JSONL
// event trace plus the result digest. The trace pins every link-up/down,
// transfer, drop, and delivery with its timestamp — byte equality between
// modes is the strongest observable equivalence the simulator offers.
func runScan(t *testing.T, sc config.Scenario, mode string) ([]byte, Result, []network.Contact) {
	t.Helper()
	sc.ScanMode = mode
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	w, err := Build(sc, WithTracer(jsonl))
	if err != nil {
		t.Fatalf("build (%s): %v", mode, err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatalf("run (%s): %v", mode, err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatalf("flush (%s): %v", mode, err)
	}
	return buf.Bytes(), res, w.Manager.ContactLog()
}

// assertScanModesAgree runs sc under the naive scanner and the given mode
// and fails on the first diverging trace line.
func assertScanModesAgree(t *testing.T, sc config.Scenario, mode string) {
	t.Helper()
	naive, resN, logN := runScan(t, sc, "naive")
	other, resO, logO := runScan(t, sc, mode)
	if !bytes.Equal(naive, other) {
		nl := bytes.Split(naive, []byte("\n"))
		ol := bytes.Split(other, []byte("\n"))
		n := len(nl)
		if len(ol) < n {
			n = len(ol)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(nl[i], ol[i]) {
				t.Fatalf("scan modes diverge at trace line %d:\n  naive: %s\n  %s: %s", i+1, nl[i], mode, ol[i])
			}
		}
		t.Fatalf("trace length differs: naive %d lines, %s %d", len(nl), mode, len(ol))
	}
	if resN.Summary != resO.Summary {
		t.Fatalf("summaries diverge:\nnaive: %+v\n%s: %+v", resN.Summary, mode, resO.Summary)
	}
	if resN.Contacts != resO.Contacts || resN.MeanContactDuration != resO.MeanContactDuration {
		t.Fatalf("contact digests diverge: naive (%d, %v) %s (%d, %v)",
			resN.Contacts, resN.MeanContactDuration, mode, resO.Contacts, resO.MeanContactDuration)
	}
	if !reflect.DeepEqual(logN, logO) {
		t.Fatalf("recorded contact logs diverge: naive %d entries, %s %d", len(logN), mode, len(logO))
	}
	// The planner under test must actually have skipped work on these
	// scenarios (otherwise the test only proves naive == naive): pair-ticks
	// parked for lazy, node-ticks parked for kinetic. The raw checked
	// counters are NOT comparable across modes — naive's count is already
	// grid-prefiltered while the planners pay different candidate sets —
	// so the ns/op claim lives in the bench suite, not here.
	if resO.Perf.PairsSkipped == 0 {
		t.Errorf("%s run skipped no pair checks — planner inert?", mode)
	}
}

// diffFamilies is the scenario matrix shared by every scanner-equivalence
// test: all mobility kinds, per-node ranges, churn/flap faults, and energy
// death. TestLazyScanMatchesNaive runs it lazy-vs-naive;
// TestWorkerCountsMatchSerial (workers_diff_test.go) runs it across
// parallel worker counts.
func diffFamilies() map[string]func() config.Scenario {
	return map[string]func() config.Scenario{
		"rwp": diffBase,
		"random-walk": func() config.Scenario {
			sc := diffBase()
			sc.Mobility = config.Mobility{Kind: config.MobilityRandomWalk,
				SpeedLo: 1, SpeedHi: 6, EpochDist: 250}
			return sc
		},
		"random-direction": func() config.Scenario {
			sc := diffBase()
			sc.Mobility = config.Mobility{Kind: config.MobilityRandomDirection,
				SpeedLo: 0.5, SpeedHi: 3, PauseLo: 0, PauseHi: 60}
			return sc
		},
		"taxi-trace-replay": func() config.Scenario {
			// Synthesized fleet → Path playback: covers the parse-time
			// MaxSpeed measurement.
			sc := diffBase()
			sc.Nodes = 16
			sc.Mobility = config.Mobility{Kind: config.MobilityTaxi,
				Taxi: mobility.DefaultTaxiConfig(), SampleInterval: 30}
			sc.Area = sc.Mobility.Taxi.Area
			return sc
		},
		"map-grid": func() config.Scenario {
			sc := diffBase()
			sc.Mobility = config.Mobility{Kind: config.MobilityMapGrid,
				SpeedLo: 1, SpeedHi: 4, MapCols: 5, MapRows: 4, MapSpacing: 300}
			// Non-default cell size, for two reasons: it runs the whole
			// scanner matrix at an overridden CellSize, and it breaks the
			// degenerate alignment where the 300 m road pitch is a multiple
			// of the 100 m default cell — roads sitting exactly on bucket
			// boundaries pin every kinetic cell deadline at zero.
			sc.CellSize = 130
			return sc
		},
		"groups-static-relays-per-node-ranges": func() config.Scenario {
			// Static relays (MaxSpeed 0 → retired pairs) with longer
			// radios among RWP walkers: covers per-node ranges and the
			// zero-closing-speed path.
			sc := diffBase()
			sc.Groups = []config.Group{
				{Name: "walkers", Count: 18, Mobility: config.Mobility{
					Kind: config.MobilityRWP, SpeedLo: 1, SpeedHi: 3}},
				{Name: "relays", Count: 6, Range: 250, Mobility: config.Mobility{
					Kind: config.MobilityStatic}},
			}
			return sc
		},
		"churn": func() config.Scenario {
			sc := diffBase()
			sc.Faults = fault.Config{Churn: fault.Churn{MeanUp: 300, MeanDown: 120}}
			return sc
		},
		"static-relays-churn": func() config.Scenario {
			// In-range static-static pairs (closing speed 0) whose endpoints
			// churn-crash and reboot: the lazy planner must keep them near —
			// retiring them would lose every post-reboot re-up the naive
			// scanner emits. Dense relays guarantee in-range static pairs.
			sc := diffBase()
			sc.Groups = []config.Group{
				{Name: "walkers", Count: 12, Mobility: config.Mobility{
					Kind: config.MobilityRWP, SpeedLo: 1, SpeedHi: 3}},
				{Name: "relays", Count: 12, Range: 400, Mobility: config.Mobility{
					Kind: config.MobilityStatic}},
			}
			sc.Faults = fault.Config{Churn: fault.Churn{MeanUp: 200, MeanDown: 100}}
			return sc
		},
		"flap-and-loss": func() config.Scenario {
			sc := diffBase()
			sc.Faults = fault.Config{LinkFlapMeanUp: 40, TransferLossProb: 0.05}
			return sc
		},
		"energy-death": func() config.Scenario {
			sc := diffBase()
			sc.Energy = config.Energy{Capacity: 400, ScanPerSec: 0.5, TxPerSec: 15, RxPerSec: 10}
			return sc
		},
	}
}

// TestLazyScanMatchesNaive is the differential property test: across seeds,
// every mobility kind, per-node ranges, and churn/flap faults, the lazy
// scanner's event stream must be byte-identical to the naive scanner's.
func TestLazyScanMatchesNaive(t *testing.T) {
	for name, mk := range diffFamilies() {
		for _, seed := range []uint64{1, 2, 3} {
			sc := mk()
			sc.Seed = seed
			sc.Name = fmt.Sprintf("diff-%s-%d", name, seed)
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				assertScanModesAgree(t, sc, "lazy")
			})
		}
	}
}

// TestKineticScanMatchesNaive runs the same differential matrix against the
// kinetic scanner: the grid-bucketed per-node planner must emit the naive
// scanner's event stream byte for byte on every family and seed.
func TestKineticScanMatchesNaive(t *testing.T) {
	for name, mk := range diffFamilies() {
		for _, seed := range []uint64{1, 2, 3} {
			sc := mk()
			sc.Seed = seed
			sc.Name = fmt.Sprintf("kin-%s-%d", name, seed)
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				assertScanModesAgree(t, sc, "kinetic")
			})
		}
	}
}

// TestLazyOverflowFallsBackToKinetic pins the large-fleet behaviour: at
// 65536 nodes the lazy scanner's triangular pair index would cost gigabytes,
// so newSweep refuses and the Manager substitutes the kinetic planner,
// recording the fallback reason. The run itself must still be byte-identical
// to an explicit kinetic run — proving the substitution changes only the
// perf profile. A naive cross-check at this n is far too slow for the
// suite; kinetic-vs-naive identity is covered by the matrix above plus the
// strategy-blind trace machinery.
func TestLazyOverflowFallsBackToKinetic(t *testing.T) {
	if testing.Short() {
		t.Skip("65536-node smoke is a few seconds; skipped in -short")
	}
	sc := config.RandomWaypoint()
	sc.Nodes = 65536
	sc.Area = geo.NewRect(200000, 200000)
	sc.Duration = 60
	sc.GenIntervalLo = 0 // traffic-free: this pins scanner behaviour only
	sc.Name = "lazy-overflow"
	lazyTrace, resLazy, _ := runScan(t, sc, "lazy")
	if want := "lazy:pair-index-overflow->kinetic"; resLazy.Perf.ScanFallback != want {
		t.Fatalf("fallback reason = %q, want %q", resLazy.Perf.ScanFallback, want)
	}
	kinTrace, resKin, _ := runScan(t, sc, "kinetic")
	if resKin.Perf.ScanFallback != "" {
		t.Fatalf("explicit kinetic run recorded fallback %q", resKin.Perf.ScanFallback)
	}
	if resKin.Perf.PairsSkipped == 0 {
		t.Fatalf("kinetic planner parked no node-ticks at 65536 nodes")
	}
	if !bytes.Equal(lazyTrace, kinTrace) {
		t.Fatalf("overflow-fallback trace differs from explicit kinetic trace")
	}
	if resLazy.Summary != resKin.Summary {
		t.Fatalf("summaries diverge:\nfallback: %+v\nkinetic:  %+v", resLazy.Summary, resKin.Summary)
	}
}
