package world

import (
	"math"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/geo"
)

// Cross-validation against theory (Groenevelt et al., "Message delay in
// MANET" — the paper's reference [22]): for random-waypoint mobility with
// small radio range r relative to the area A, the pairwise meeting rate is
//
//	λ ≈ 2·ω·r·E(V*) / A
//
// with ω ≈ 1.3683 the RWP correction constant and E(V*) the mean relative
// speed (= v for equal, constant node speeds... the commonly used
// approximation is E(V*) ≈ ω·v). The expected number of contacts over a
// run of length T is then pairs·T·λ. We verify the simulator's contact
// census lands within ±30% of the analytic prediction — a strong
// end-to-end check on mobility, grid indexing, and link detection.
func TestContactRateMatchesGroeneveltTheory(t *testing.T) {
	sc := config.RandomWaypoint()
	sc.GenIntervalLo = 0 // mobility only
	sc.Nodes = 60
	sc.Area = geo.NewRect(3000, 2500)
	sc.Duration = 12000

	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)

	const omega = 1.3683
	v := sc.Mobility.SpeedLo // constant 2 m/s
	area := sc.Area.W() * sc.Area.H()
	lambda := 2 * omega * sc.Range * (omega * v) / area
	pairs := float64(sc.Nodes*(sc.Nodes-1)) / 2
	expected := pairs * sc.Duration * lambda

	got := float64(r.Contacts)
	if got < expected*0.7 || got > expected*1.3 {
		t.Fatalf("contacts = %v, analytic prediction %v (±30%%)", got, expected)
	}
}

// The same prediction phrased as E(I): the measured mean contact rate per
// pair inverts to the pairwise mean intermeeting time.
func TestMeanIntermeetingMatchesTheory(t *testing.T) {
	sc := config.RandomWaypoint()
	sc.GenIntervalLo = 0
	sc.Nodes = 60
	sc.Area = geo.NewRect(3000, 2500)
	sc.Duration = 12000

	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)

	const omega = 1.3683
	area := sc.Area.W() * sc.Area.H()
	lambda := 2 * omega * sc.Range * (omega * sc.Mobility.SpeedLo) / area
	analyticEI := 1 / lambda

	pairs := float64(sc.Nodes*(sc.Nodes-1)) / 2
	measuredEI := pairs * sc.Duration / float64(r.Contacts)
	if math.Abs(measuredEI-analyticEI) > analyticEI*0.3 {
		t.Fatalf("census E(I) = %v, analytic %v", measuredEI, analyticEI)
	}
}
