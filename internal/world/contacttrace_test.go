package world

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sdsrp/internal/config"
)

// writeContactFixture emits a deterministic dense contact trace: a rotating
// ring where node i meets node (i+1)%n for 60 s every 200 s.
func writeContactFixture(t *testing.T, n int, horizon float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "contacts.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for start := 10.0; start < horizon; start += 200 {
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			a, b := i, j
			if _, err := writeLine(f, a, b, start+float64(i), start+float64(i)+60); err != nil {
				t.Fatal(err)
			}
		}
	}
	return path
}

func writeLine(f *os.File, a, b int, start, end float64) (int, error) {
	return fmt.Fprintf(f, "%d %d %g %g\n", a, b, start, end)
}

func TestContactTraceDrivenRun(t *testing.T) {
	path := writeContactFixture(t, 10, 4000)
	sc := config.RandomWaypoint()
	sc.Name = "contact-trace"
	sc.ContactTraceFile = path
	sc.Nodes = 2 // raised to the trace's 10 ids
	sc.Duration, sc.TTL = 4000, 4000
	sc.GenIntervalLo, sc.GenIntervalHi = 20, 30
	sc.InitialCopies = 8
	sc.PolicyName = "SDSRP"
	sc.PriorMeanIntermeeting = 500

	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Hosts) != 10 {
		t.Fatalf("hosts = %d (trace has ids 0-9)", len(w.Hosts))
	}
	r := mustRun(t, w)
	if r.Contacts == 0 {
		t.Fatal("no contacts replayed")
	}
	if r.Created == 0 || r.Delivered == 0 {
		t.Fatalf("degenerate trace-driven run: %+v", r.Summary)
	}
	// Deterministic like everything else.
	w2, _ := Build(sc)
	if mustRun(t, w2).Summary != r.Summary {
		t.Fatal("contact-trace run not deterministic")
	}
}

func TestContactTraceValidationAndErrors(t *testing.T) {
	sc := config.RandomWaypoint()
	sc.ContactTraceFile = filepath.Join(t.TempDir(), "missing.txt")
	if _, err := Build(sc); err == nil {
		t.Fatal("missing contact trace accepted")
	}
	// With a trace file set, bogus mobility fields are irrelevant.
	path := writeContactFixture(t, 4, 500)
	sc = config.RandomWaypoint()
	sc.ContactTraceFile = path
	sc.Nodes = 2
	sc.Duration, sc.TTL = 500, 500
	sc.Mobility = config.Mobility{Kind: "nonsense"}
	if _, err := Build(sc); err != nil {
		t.Fatalf("mobility should be ignored with a contact trace: %v", err)
	}
}

func TestContactTraceNodeOverride(t *testing.T) {
	// Scenario.Nodes larger than the trace's id space adds silent nodes.
	path := writeContactFixture(t, 4, 500)
	sc := config.RandomWaypoint()
	sc.ContactTraceFile = path
	sc.Nodes = 12
	sc.Duration, sc.TTL = 500, 500
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Hosts) != 12 {
		t.Fatalf("hosts = %d, want 12", len(w.Hosts))
	}
}
