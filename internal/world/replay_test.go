package world

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/trace"
)

// The export/replay loop: a mobility-driven run with contact recording,
// exported as a trace, replayed in contact-trace mode, must see the exact
// same contact structure and land on closely matching metrics (event
// ordering within one scan tick may differ, so metrics are compared with a
// tolerance rather than bit-exactly).
func TestContactExportReplayLoop(t *testing.T) {
	sc := smallScenario("SprayAndWait")
	sc.RecordContacts = true
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	orig := mustRun(t, w)
	log := w.Manager.ContactLog()
	if len(log) == 0 {
		t.Fatal("no contacts recorded")
	}

	// Export.
	contacts := make([]trace.Contact, len(log))
	for i, c := range log {
		contacts[i] = trace.Contact{A: c.A, B: c.B, Start: c.Start, End: c.End}
	}
	path := filepath.Join(t.TempDir(), "contacts.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteContacts(f, contacts); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Replay.
	rep := sc
	rep.RecordContacts = false
	rep.ContactTraceFile = path
	rep.Nodes = 2 // raised to the trace population
	w2, err := Build(rep)
	if err != nil {
		t.Fatal(err)
	}
	replay := mustRun(t, w2)

	// Links still up at the horizon were not exported, so the replay sees
	// at most the original contact count, within a small margin.
	if replay.Contacts > orig.Contacts || replay.Contacts < orig.Contacts-len(w.Hosts) {
		t.Fatalf("contacts: replay %d vs original %d", replay.Contacts, orig.Contacts)
	}
	if math.Abs(replay.DeliveryRatio-orig.DeliveryRatio) > 0.1 {
		t.Fatalf("delivery drifted: replay %.3f vs original %.3f",
			replay.DeliveryRatio, orig.DeliveryRatio)
	}
	if replay.Created == 0 || replay.Delivered == 0 {
		t.Fatal("replay degenerate")
	}
}

func TestContactLogDisabledByDefault(t *testing.T) {
	w, err := Build(smallScenario("SprayAndWait"))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	if len(w.Manager.ContactLog()) != 0 {
		t.Fatal("contacts recorded without RecordContacts")
	}
	_ = config.MB
}
