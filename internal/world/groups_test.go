package world

import (
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/geo"
)

func groupScenario() config.Scenario {
	sc := config.RandomWaypoint()
	sc.Name = "groups"
	sc.Area = geo.NewRect(1200, 900)
	sc.Duration, sc.TTL = 3000, 3000
	sc.GenIntervalLo, sc.GenIntervalHi = 20, 30
	sc.InitialCopies = 8
	sc.PriorMeanIntermeeting = 2000
	sc.Groups = []config.Group{
		{Name: "pedestrians", Count: 20, Mobility: config.Mobility{
			Kind: config.MobilityRWP, SpeedLo: 1, SpeedHi: 2}},
		{Name: "vehicles", Count: 8, Mobility: config.Mobility{
			Kind: config.MobilityRWP, SpeedLo: 8, SpeedHi: 14},
			BufferBytes: 5 * config.MB},
		{Name: "relays", Count: 4, Mobility: config.Mobility{
			Kind: config.MobilityStatic}, BufferBytes: 10 * config.MB},
	}
	return sc
}

func TestGroupsBuildAndRun(t *testing.T) {
	w, err := Build(groupScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Hosts) != 32 {
		t.Fatalf("hosts = %d, want 32", len(w.Hosts))
	}
	// Per-group buffer capacities.
	if w.Hosts[0].Buffer().Capacity() != 2_500_000 {
		t.Fatalf("pedestrian buffer = %d", w.Hosts[0].Buffer().Capacity())
	}
	if w.Hosts[20].Buffer().Capacity() != 5_000_000 {
		t.Fatalf("vehicle buffer = %d", w.Hosts[20].Buffer().Capacity())
	}
	if w.Hosts[28].Buffer().Capacity() != 10_000_000 {
		t.Fatalf("relay buffer = %d", w.Hosts[28].Buffer().Capacity())
	}
	r := mustRun(t, w)
	if r.Created == 0 || r.Contacts == 0 {
		t.Fatalf("degenerate group run: %+v", r.Summary)
	}
	if r.Delivered == 0 {
		t.Fatal("no deliveries in dense heterogeneous scenario")
	}
}

func TestGroupsStaticNodesDoNotMove(t *testing.T) {
	sc := groupScenario()
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	// Static relays occupy ids 28..31; verify their mobility by sampling
	// through a fresh build (models are not exported, so rebuild and check
	// determinism of the whole run instead).
	w2, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if mustRun(t, w).Summary != mustRun(t, w2).Summary {
		t.Fatal("group scenario not deterministic")
	}
}

func TestGroupsValidation(t *testing.T) {
	sc := groupScenario()
	sc.Groups[0].Count = 0
	if _, err := Build(sc); err == nil {
		t.Fatal("zero-count group accepted")
	}
	sc = groupScenario()
	sc.Groups[1].Mobility.Kind = config.MobilityTraceDir
	if _, err := Build(sc); err == nil {
		t.Fatal("trace mobility inside a group accepted")
	}
	sc = groupScenario()
	sc.Groups[2].BufferBytes = 100 // smaller than one message
	if _, err := Build(sc); err == nil {
		t.Fatal("undersized group buffer accepted")
	}
}
