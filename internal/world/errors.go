package world

import (
	"errors"
	"fmt"
)

// ErrBudgetExceeded is the sentinel matched (via errors.Is) by runs stopped
// by the Scenario.MaxEvents budget guard. The concrete error is a
// *BudgetError carrying the counts reached.
var ErrBudgetExceeded = errors.New("world: event budget exceeded")

// ErrRunTimeout is the sentinel matched (via errors.Is) by runs stopped by
// a wall-clock watchdog armed on the engine (sim.Engine.SetWallDeadline).
// The concrete error is a *TimeoutError.
var ErrRunTimeout = errors.New("world: run wall-clock timeout")

// BudgetError reports that a run dispatched its full Scenario.MaxEvents
// budget before reaching the scenario horizon. The partial Result returned
// alongside it summarizes the run up to the cutoff. Unlike a wall-clock
// timeout this stop is deterministic: the same scenario stops at the same
// event on every machine.
type BudgetError struct {
	// Events is the number of events dispatched when the run stopped.
	Events uint64
	// MaxEvents is the configured budget.
	MaxEvents uint64
	// SimTime is the simulation clock at the cutoff, in seconds.
	SimTime float64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("world: event budget exceeded: %d events dispatched (max %d) at sim time %.1fs",
		e.Events, e.MaxEvents, e.SimTime)
}

// Is makes errors.Is(err, ErrBudgetExceeded) match a *BudgetError.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// TimeoutError reports that a run was stopped by the wall-clock watchdog
// before reaching the scenario horizon. Wall-clock stops depend on host
// speed and are NOT deterministic; they exist as a runner-layer safety net,
// and a timed-out run must never be treated as a simulation result.
type TimeoutError struct {
	// Events is the number of events dispatched when the watchdog fired.
	Events uint64
	// SimTime is the simulation clock at the cutoff, in seconds.
	SimTime float64
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("world: run wall-clock timeout after %d events at sim time %.1fs",
		e.Events, e.SimTime)
}

// Is makes errors.Is(err, ErrRunTimeout) match a *TimeoutError.
func (e *TimeoutError) Is(target error) bool { return target == ErrRunTimeout }
