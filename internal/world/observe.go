package world

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sdsrp/internal/msg"
	"sdsrp/internal/obs"
)

// TimelinePoint is one periodic snapshot of global run state, for
// delivery-over-time and congestion plots.
type TimelinePoint struct {
	T             float64
	Created       int
	Delivered     int
	DeliveryRatio float64
	Forwards      int
	PolicyDrops   int
	ActiveLinks   int
	// BufferFill is the mean buffer occupancy fraction across hosts.
	BufferFill float64
}

// EnableTimeline schedules a snapshot every interval seconds (call before
// Run). The samples are available from Timeline afterwards. A
// non-positive interval is rejected.
func (w *World) EnableTimeline(interval float64) error {
	if interval <= 0 {
		return fmt.Errorf("world: timeline interval must be positive, got %v", interval)
	}
	w.Engine.Every(interval, func(now float64) {
		s := w.Collector.Summarize()
		// Mean fill over hosts with a real byte budget; zero-capacity
		// buffers (and host-less scenarios) would otherwise inject NaN
		// into the CSV.
		var fill float64
		counted := 0
		for _, h := range w.Hosts {
			if capacity := h.Buffer().Capacity(); capacity > 0 {
				fill += float64(h.Buffer().Used()) / float64(capacity)
				counted++
			}
		}
		if counted > 0 {
			fill /= float64(counted)
		}
		w.timeline = append(w.timeline, TimelinePoint{
			T:             now,
			Created:       s.Created,
			Delivered:     s.Delivered,
			DeliveryRatio: s.DeliveryRatio,
			Forwards:      s.Forwards,
			PolicyDrops:   s.PolicyDrops,
			ActiveLinks:   w.Manager.ActiveLinks(),
			BufferFill:    fill,
		})
	})
	return nil
}

// Timeline returns the snapshots collected so far.
func (w *World) Timeline() []TimelinePoint { return w.timeline }

// EnableSnapshots schedules a whole-network state sample every interval
// seconds of simulation time, emitted as an obs.Snapshot event through the
// run's tracer (call before Run). The sampler rides the same deterministic
// event stream as lifecycle events, so `dtntrace series` can plot buffer
// occupancy, live copies, active contacts, and engine queue depth over time
// from the one JSONL log. A non-positive interval or a tracer-less world is
// rejected.
func (w *World) EnableSnapshots(interval float64) error {
	if interval <= 0 {
		return fmt.Errorf("world: snapshot interval must be positive, got %v", interval)
	}
	if w.tracer == nil {
		return fmt.Errorf("world: snapshots need an event sink; build with WithTracer")
	}
	w.Engine.Every(interval, func(now float64) {
		w.tracer.Emit(w.Snapshot(now))
	})
	return nil
}

// Snapshot builds the instantaneous network-state event at time now: live
// message/copy census from the buffers, active link count, live engine
// queue depth, and per-node buffer occupancy.
func (w *World) Snapshot(now float64) obs.Event {
	used := make([]int64, len(w.Hosts))
	copies := 0
	distinct := make(map[msg.ID]struct{})
	for i, h := range w.Hosts {
		used[i] = h.Buffer().Used()
		items := h.Buffer().Items()
		copies += len(items)
		for _, s := range items {
			distinct[s.M.ID] = struct{}{}
		}
	}
	return obs.Event{
		T:          now,
		Type:       obs.Snapshot,
		LiveMsgs:   len(distinct),
		LiveCopies: copies,
		Contacts:   w.Manager.ActiveLinks(),
		Queue:      w.Engine.Live(),
		Used:       used,
	}
}

// WriteTimelineCSV writes the timeline as CSV with a header row.
func WriteTimelineCSV(out io.Writer, pts []TimelinePoint) error {
	cw := csv.NewWriter(out)
	if err := cw.Write([]string{"t", "created", "delivered", "delivery_ratio",
		"forwards", "policy_drops", "active_links", "buffer_fill"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			strconv.FormatFloat(p.T, 'g', -1, 64),
			strconv.Itoa(p.Created),
			strconv.Itoa(p.Delivered),
			strconv.FormatFloat(p.DeliveryRatio, 'g', -1, 64),
			strconv.Itoa(p.Forwards),
			strconv.Itoa(p.PolicyDrops),
			strconv.Itoa(p.ActiveLinks),
			strconv.FormatFloat(p.BufferFill, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fate is the end-of-run outcome of one generated message.
type Fate struct {
	ID         msg.ID
	Source     int
	Dest       int
	Created    float64
	Delivered  bool
	Latency    float64 // valid when Delivered
	Hops       int     // valid when Delivered
	LiveCopies int     // copies still buffered network-wide
	EverSeen   int     // true m_i: non-source nodes that carried it
}

// MessageFates returns the per-message outcomes at the current time, in
// generation order.
func (w *World) MessageFates() []Fate {
	out := make([]Fate, 0, len(w.msgLog))
	for _, rec := range w.msgLog {
		f := Fate{
			ID:         rec.id,
			Source:     rec.src,
			Dest:       rec.dst,
			Created:    rec.created,
			LiveCopies: w.Tracker.Live(rec.id),
			EverSeen:   w.Tracker.Seen(rec.id),
		}
		if dr, ok := w.Collector.DeliveryOf(rec.id); ok {
			f.Delivered = true
			f.Latency = dr.Latency
			f.Hops = dr.Hops
		}
		out = append(out, f)
	}
	return out
}

// WriteFatesCSV writes message fates as CSV with a header row. Latency and
// hops are empty for undelivered messages.
func WriteFatesCSV(out io.Writer, fates []Fate) error {
	cw := csv.NewWriter(out)
	if err := cw.Write([]string{"id", "source", "dest", "created",
		"delivered", "latency", "hops", "live_copies", "ever_seen"}); err != nil {
		return err
	}
	for _, f := range fates {
		lat, hops := "", ""
		if f.Delivered {
			lat = strconv.FormatFloat(f.Latency, 'g', -1, 64)
			hops = strconv.Itoa(f.Hops)
		}
		rec := []string{
			fmt.Sprint(f.ID),
			strconv.Itoa(f.Source),
			strconv.Itoa(f.Dest),
			strconv.FormatFloat(f.Created, 'g', -1, 64),
			strconv.FormatBool(f.Delivered),
			lat,
			hops,
			strconv.Itoa(f.LiveCopies),
			strconv.Itoa(f.EverSeen),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
