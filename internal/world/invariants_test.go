package world

import (
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/msg"
)

// countHolders tallies, for every message, how many buffers currently hold
// a copy — the ground truth the Tracker claims to maintain incrementally.
func countHolders(w *World) map[msg.ID]int {
	holders := map[msg.ID]int{}
	for _, h := range w.Hosts {
		for _, s := range h.Buffer().Items() {
			holders[s.M.ID]++
		}
	}
	return holders
}

// The tracker's live count must agree exactly with the buffers at any stop
// point: every store/remove path (originate, spray, relay, handoff,
// delivery cleanup, eviction, expiry) is paired with a tracker note.
func TestTrackerMatchesBuffersExactly(t *testing.T) {
	for _, pol := range []string{"SprayAndWait", "SDSRP", "SprayAndWait-C"} {
		sc := smallScenario(pol)
		sc.GenIntervalLo, sc.GenIntervalHi = 10, 15 // congested
		w, err := Build(sc)
		if err != nil {
			t.Fatal(err)
		}
		// Check at several intermediate horizons, not just the end.
		for _, horizon := range []float64{500, 1500, 3000, sc.Duration} {
			if !w.started {
				w.Manager.Start()
				w.started = true
			}
			w.Engine.Run(horizon)
			holders := countHolders(w)
			for id, n := range holders {
				if got := w.Tracker.Live(id); got != n {
					t.Fatalf("%s at t=%v: tracker live(%d)=%d, buffers hold %d",
						pol, horizon, id, got, n)
				}
			}
			// And the tracker must not believe in copies that don't exist,
			// except for messages currently mid-delivery (none at a scan
			// boundary with no in-flight state inspection — so allow only
			// exact zero mismatches).
			// Holders map covers all ids with n>0; verify a sample of known
			// ids with zero holders.
			for id := msg.ID(1); id < 20; id++ {
				if holders[id] == 0 && w.Tracker.Live(id) != 0 {
					// In-flight transfers can hold a sender copy; but the
					// sender copy is still in its buffer until commit, so
					// live>0 with no holder is a leak.
					t.Fatalf("%s at t=%v: tracker live(%d)=%d with no holders",
						pol, horizon, id, w.Tracker.Live(id))
				}
			}
		}
	}
}

// Seen must be monotone non-decreasing and at least the number of current
// holders excluding the source.
func TestTrackerSeenBounds(t *testing.T) {
	sc := smallScenario("SprayAndWait")
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	holders := countHolders(w)
	for id, n := range holders {
		seen := w.Tracker.Seen(id)
		if seen < n-1 { // source may be among the holders
			t.Fatalf("seen(%d)=%d < holders-1=%d", id, seen, n-1)
		}
		if seen > sc.Nodes-1 {
			t.Fatalf("seen(%d)=%d exceeds N-1", id, seen)
		}
	}
}

// Hop counts of delivered messages are bounded by log2(L)+1 sprays plus the
// delivery hop under binary spray-and-wait... in fact each copy's hop count
// is bounded by the spray-tree depth: hops <= log2(L)+1.
func TestHopBoundUnderBinarySpray(t *testing.T) {
	sc := smallScenario("SprayAndWait")
	sc.InitialCopies = 8
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	// log2(8) = 3 spray hops max, +1 for the final delivery hop.
	const maxHops = 4
	for _, h := range w.Hosts {
		for _, s := range h.Buffer().Items() {
			if s.Hops > maxHops-1 {
				t.Fatalf("buffered copy of %d has %d hops (max spray depth 3)", s.M.ID, s.Hops)
			}
		}
	}
	if avg := w.Collector.Summarize().AvgHops; avg > maxHops {
		t.Fatalf("avg hops %v exceeds bound %d", avg, maxHops)
	}
}

// Every message that was ever created is accounted for at the end: its
// copies are either still buffered, dropped, expired, or consumed by
// delivery. We verify the weaker end-to-end identity that no copies exist
// for messages past their TTL after an expiry sweep.
func TestNoZombieCopiesAfterExpiry(t *testing.T) {
	sc := smallScenario("SDSRP")
	sc.TTL = 800 // much shorter than the 4000 s horizon
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	now := w.Engine.Now()
	for _, h := range w.Hosts {
		for _, s := range h.Buffer().Items() {
			if now-s.M.Created > sc.TTL+sc.ExpiryInterval {
				t.Fatalf("zombie copy of message %d: age %v", s.M.ID, now-s.M.Created)
			}
		}
	}
	if w.Collector.ExpiredDrops == 0 {
		t.Fatal("short-TTL run expired nothing")
	}
}

// Delivered messages are never re-accepted by their destination, even
// under Epidemic flooding where every neighbour retries.
func TestNoDuplicateDeliveries(t *testing.T) {
	sc := smallScenario("SprayAndWait")
	sc.ProtocolName = "epidemic"
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)
	if r.Duplicates != 0 {
		t.Fatalf("%d duplicate deliveries slipped through", r.Duplicates)
	}
	_ = config.MB
}
