package world

import (
	"bytes"
	"strings"
	"testing"
)

func TestTimelineSampling(t *testing.T) {
	sc := smallScenario("SDSRP")
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTimeline(500); err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTimeline(0); err == nil {
		t.Fatal("non-positive timeline interval accepted")
	}
	mustRun(t, w)
	pts := w.Timeline()
	if len(pts) != 8 { // 4000s / 500s
		t.Fatalf("timeline points = %d, want 8", len(pts))
	}
	prevT := 0.0
	prevCreated := 0
	for _, p := range pts {
		if p.T <= prevT {
			t.Fatal("timeline not strictly increasing in time")
		}
		if p.Created < prevCreated {
			t.Fatal("created counter decreased")
		}
		if p.BufferFill < 0 || p.BufferFill > 1 {
			t.Fatalf("buffer fill = %v", p.BufferFill)
		}
		prevT, prevCreated = p.T, p.Created
	}
	last := pts[len(pts)-1]
	if last.Created == 0 || last.Delivered == 0 {
		t.Fatalf("final snapshot degenerate: %+v", last)
	}
}

func TestTimelineCSV(t *testing.T) {
	pts := []TimelinePoint{
		{T: 10, Created: 2, Delivered: 1, DeliveryRatio: 0.5, Forwards: 3, PolicyDrops: 1, ActiveLinks: 4, BufferFill: 0.25},
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t,created,delivered") {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "10,2,1,0.5,3,1,4,0.25" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestMessageFates(t *testing.T) {
	sc := smallScenario("SprayAndWait")
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w)
	fates := w.MessageFates()
	if len(fates) != r.Created {
		t.Fatalf("fates = %d, created = %d", len(fates), r.Created)
	}
	delivered := 0
	for i, f := range fates {
		if i > 0 && f.Created < fates[i-1].Created {
			t.Fatal("fates not in generation order")
		}
		if f.Source == f.Dest {
			t.Fatal("self-addressed message")
		}
		if f.Delivered {
			delivered++
			if f.Latency <= 0 || f.Hops < 1 {
				t.Fatalf("delivered fate inconsistent: %+v", f)
			}
		}
		if f.LiveCopies < 0 || f.EverSeen < 0 {
			t.Fatalf("negative counts: %+v", f)
		}
	}
	if delivered != r.Delivered {
		t.Fatalf("fate deliveries = %d, summary = %d", delivered, r.Delivered)
	}
}

func TestFatesCSV(t *testing.T) {
	fates := []Fate{
		{ID: 1, Source: 0, Dest: 5, Created: 30, Delivered: true, Latency: 12.5, Hops: 3, LiveCopies: 2, EverSeen: 7},
		{ID: 2, Source: 1, Dest: 4, Created: 60},
	}
	var buf bytes.Buffer
	if err := WriteFatesCSV(&buf, fates); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[1] != "1,0,5,30,true,12.5,3,2,7" {
		t.Fatalf("delivered row = %q", lines[1])
	}
	if lines[2] != "2,1,4,60,false,,,0,0" {
		t.Fatalf("undelivered row = %q", lines[2])
	}
}
