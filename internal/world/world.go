// Package world assembles a full simulation from a config.Scenario: engine,
// mobility, hosts, radio, traffic, and TTL sweeps — the equivalent of the
// ONE simulator's scenario loader.
//lint:shard-safe run state is per-World; the traffic substream touchpoint is annotated where it is scheduled
package world

import (
	"fmt"
	"os"

	"sdsrp/internal/config"
	"sdsrp/internal/core"
	"sdsrp/internal/fault"
	"sdsrp/internal/geo"
	"sdsrp/internal/graph"
	"sdsrp/internal/mobility"
	"sdsrp/internal/msg"
	"sdsrp/internal/network"
	"sdsrp/internal/obs"
	"sdsrp/internal/policy"
	"sdsrp/internal/rng"
	"sdsrp/internal/routing"
	"sdsrp/internal/sim"
	"sdsrp/internal/stats"
	"sdsrp/internal/trace"
)

// World is one assembled simulation run.
type World struct {
	Scenario     config.Scenario
	Engine       *sim.Engine
	Hosts        []*routing.Host
	Manager      *network.Manager
	Collector    *stats.Collector
	Intermeeting *stats.Intermeeting
	Tracker      *routing.Tracker

	started   bool
	tracer    obs.Tracer // nil when tracing is off
	timeline  []TimelinePoint
	msgLog    []msgRecord
	scheduled []network.Contact // non-nil for contact-trace-driven runs
}

// BuildOption customizes world assembly beyond what a config.Scenario
// (a serializable artifact) can describe — runtime wiring like tracers.
type BuildOption func(*buildOptions)

type buildOptions struct {
	tracer obs.Tracer
}

// WithTracer routes every lifecycle event of the run (message, contact,
// transfer, eviction) to tr. A nil tr keeps tracing disabled.
func WithTracer(tr obs.Tracer) BuildOption {
	return func(o *buildOptions) { o.tracer = tr }
}

// msgRecord remembers each generated message for fate reporting.
type msgRecord struct {
	id       msg.ID
	src, dst int
	created  float64
}

// Result is the digest of a finished run.
type Result struct {
	stats.Summary
	Scenario config.Scenario
	Contacts int
	// MeanContactDuration is the average length of finished contacts in
	// seconds.
	MeanContactDuration float64
	// Energy summarizes the battery model (Enabled false when off).
	Energy network.EnergyReport
	// MeanIntermeeting and ExpFitError are populated only when the
	// scenario records intermeeting samples (Fig. 3 runs).
	MeanIntermeeting float64
	ExpFitError      float64
	IntermeetingN    int
	// Perf is the engine-level performance digest: events dispatched,
	// events/sec, peak queue depth, wall-clock, the contact scanner's
	// pairs-checked/skipped/wakeups counters, and — when the sharded
	// parallel scan is active (Scenario.Workers ≥ 2) — the shard
	// windows/barriers/handoffs counters from DESIGN.md §13. The strategy
	// counters describe how the scan did its work and legitimately differ
	// across scan modes and worker counts; everything the simulation
	// observes (Events, PeakQueue, the trace, the Summary) is identical.
	Perf obs.RunStats
}

// Build validates the scenario and assembles a world. It does not start the
// clock; call Run.
func Build(sc config.Scenario, opts ...BuildOption) (*World, error) {
	var bo buildOptions
	for _, o := range opts {
		o(&bo)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("world: invalid scenario %q: %w", sc.Name, err)
	}
	root := rng.New(sc.Seed)
	eng := sim.NewEngine()
	collector := stats.NewCollector()
	collector.WarmupUntil = sc.Warmup
	tracker := routing.NewTracker()

	var scheduled []network.Contact
	var models []mobility.Model
	var buffers []int64
	var ranges []float64
	var area geo.Rect
	var nodes int
	var err error
	if sc.ContactTraceFile != "" {
		scheduled, models, buffers, ranges, area, nodes, err = buildScheduled(sc)
	} else {
		models, buffers, ranges, area, nodes, err = buildPopulation(sc, root)
	}
	if err != nil {
		return nil, err
	}
	sc.Nodes = nodes
	sc.Area = area

	if _, ok := routing.ProtocolByName(sc.ProtocolName); !ok {
		return nil, fmt.Errorf("world: unknown protocol %q", sc.ProtocolName)
	}

	// The fault injector draws only from its own pure split of the root
	// stream, so a fault-free scenario (nil injector) is byte-identical to
	// runs built before the fault layer existed.
	inj := fault.New(sc.Faults, root.Split("fault"), nodes, churnEligible(sc, nodes))

	useDrops := policyUsesDropList(sc.PolicyName) && !sc.DisableDropList
	hosts := make([]*routing.Host, nodes)
	for i := 0; i < nodes; i++ {
		pol, perr := policy.ByName(sc.PolicyName, root.SplitIndex("policy", i))
		if perr != nil {
			return nil, fmt.Errorf("world: %w", perr)
		}
		var rate core.RateSource
		switch {
		case sc.OracleRateMean > 0:
			rate = core.FixedRate{Mean: sc.OracleRateMean}
		case sc.GapLambdaEstimator:
			rate = core.NewLambdaEstimator(sc.PriorMeanIntermeeting, sc.PriorWeight)
		default:
			rate = core.NewCensusEstimator(sc.PriorMeanIntermeeting, sc.PriorWeight, nodes)
		}
		// Stateful protocols carry per-node tables: one instance per host.
		proto, _ := routing.ProtocolByName(sc.ProtocolName)
		hosts[i] = routing.NewHost(routing.HostConfig{
			ID:                i,
			Nodes:             nodes,
			Buffer:            buffers[i],
			Policy:            pol,
			Proto:             proto,
			Rate:              rate,
			UseDropList:       useDrops,
			UseAcks:           sc.UseAcks,
			PreflightEviction: sc.PreflightEviction,
			Clock:             eng.Now,
			Collector:         collector,
			Tracker:           tracker,
			Oracle:            tracker,
			Tracer:            bo.tracer,
			Role:              inj.Role(i),
		})
	}

	var inter *stats.Intermeeting
	if sc.RecordIntermeeting {
		inter = &stats.Intermeeting{}
	}
	mgr, err := network.NewManager(eng, network.Config{
		Area:           area,
		Range:          sc.Range,
		Bandwidth:      sc.Bandwidth,
		ScanInterval:   sc.ScanInterval,
		Ranges:         ranges,
		Scan:           sc.ScanMode,
		CellSize:       sc.CellSize,
		Workers:        sc.Workers,
		RecordContacts: sc.RecordContacts,
		Tracer:         bo.tracer,
		Faults:         inj,
		Energy: network.EnergyConfig{
			Capacity:   sc.Energy.Capacity,
			ScanPerSec: sc.Energy.ScanPerSec,
			TxPerSec:   sc.Energy.TxPerSec,
			RxPerSec:   sc.Energy.RxPerSec,
		},
	}, hosts, models, collector, inter)
	if err != nil {
		return nil, fmt.Errorf("world: %w", err)
	}

	w := &World{
		scheduled:    scheduled,
		tracer:       bo.tracer,
		Scenario:     sc,
		Engine:       eng,
		Hosts:        hosts,
		Manager:      mgr,
		Collector:    collector,
		Intermeeting: inter,
		Tracker:      tracker,
	}
	w.scheduleTraffic(root.Split("traffic"))
	eng.Every(sc.ExpiryInterval, func(now float64) {
		for _, h := range hosts {
			h.ExpireMessages(now)
		}
	})
	return w, nil
}

// policyUsesDropList reports whether the named policy relies on the Fig. 5
// dropped-list machinery (SDSRP and its Taylor variants).
func policyUsesDropList(name string) bool {
	return (len(name) >= 5 && name[:5] == "SDSRP") || name == "Knapsack"
}

// churnEligible marks the nodes belonging to the churn-restricted groups.
// Node ids are assigned group by group in declaration order (buildGroups),
// so membership follows the same walk. Returns nil when churn is
// unrestricted (every node may churn).
func churnEligible(sc config.Scenario, nodes int) []bool {
	if len(sc.Faults.Churn.Groups) == 0 {
		return nil
	}
	named := make(map[string]bool, len(sc.Faults.Churn.Groups))
	for _, g := range sc.Faults.Churn.Groups {
		named[g] = true
	}
	eligible := make([]bool, nodes)
	i := 0
	for _, g := range sc.Groups {
		for k := 0; k < g.Count && i < nodes; k++ {
			eligible[i] = named[g.Name]
			i++
		}
	}
	return eligible
}

// buildScheduled loads a contact trace and fabricates the static population
// that replays it (positions are irrelevant in scheduled mode).
func buildScheduled(sc config.Scenario) ([]network.Contact, []mobility.Model, []int64, []float64, geo.Rect, int, error) {
	f, err := os.Open(sc.ContactTraceFile)
	if err != nil {
		return nil, nil, nil, nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
	}
	defer f.Close()
	raw, err := trace.ParseContacts(f)
	if err != nil {
		return nil, nil, nil, nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
	}
	nodes := trace.MaxNode(raw) + 1
	if sc.Nodes > nodes {
		nodes = sc.Nodes
	}
	contacts := make([]network.Contact, len(raw))
	for i, c := range raw {
		contacts[i] = network.Contact{A: c.A, B: c.B, Start: c.Start, End: c.End}
	}
	// Validate now so replay at Run time cannot fail (Run treats a
	// StartScheduled error as a programming error).
	if err := network.ValidateContacts(contacts, nodes); err != nil {
		return nil, nil, nil, nil, geo.Rect{}, 0, fmt.Errorf("world: %s: %w", sc.ContactTraceFile, err)
	}
	models := make([]mobility.Model, nodes)
	buffers := make([]int64, nodes)
	for i := range models {
		models[i] = mobility.Static{}
		buffers[i] = sc.BufferBytes
	}
	return contacts, models, buffers, nil, geo.NewRect(1, 1), nodes, nil
}

// buildPopulation resolves the scenario into per-node mobility models and
// buffer capacities, handling both homogeneous scenarios and node groups.
func buildPopulation(sc config.Scenario, root *rng.Stream) ([]mobility.Model, []int64, []float64, geo.Rect, int, error) {
	if len(sc.Groups) > 0 {
		return buildGroups(sc, root)
	}
	models, area, nodes, err := buildMobility(sc, root)
	if err != nil {
		return nil, nil, nil, geo.Rect{}, 0, err
	}
	buffers := make([]int64, nodes)
	for i := range buffers {
		buffers[i] = sc.BufferBytes
	}
	return models, buffers, nil, area, nodes, nil
}

// buildGroups assembles a heterogeneous population. All groups share the
// scenario area; node ids are assigned group by group in declaration order.
func buildGroups(sc config.Scenario, root *rng.Stream) ([]mobility.Model, []int64, []float64, geo.Rect, int, error) {
	mroot := root.Split("mobility")
	var models []mobility.Model
	var buffers []int64
	var ranges []float64
	for gi, g := range sc.Groups {
		buf := g.BufferBytes
		if buf <= 0 {
			buf = sc.BufferBytes
		}
		radioRange := g.Range
		if radioRange <= 0 {
			radioRange = sc.Range
		}
		for k := 0; k < g.Count; k++ {
			i := len(models)
			stream := mroot.SplitIndex("node", i)
			var m mobility.Model
			switch g.Mobility.Kind {
			case config.MobilityRWP:
				m = mobility.NewRandomWaypoint(sc.Area,
					g.Mobility.SpeedLo, g.Mobility.SpeedHi,
					g.Mobility.PauseLo, g.Mobility.PauseHi, stream)
			case config.MobilityRandomWalk:
				m = mobility.NewRandomWalk(sc.Area,
					g.Mobility.SpeedLo, g.Mobility.SpeedHi,
					g.Mobility.EpochDist, stream)
			case config.MobilityRandomDirection:
				m = mobility.NewRandomDirection(sc.Area,
					g.Mobility.SpeedLo, g.Mobility.SpeedHi,
					g.Mobility.PauseLo, g.Mobility.PauseHi, stream)
			case config.MobilityStatic:
				m = mobility.Static{P: geo.Point{
					X: stream.Uniform(sc.Area.Min.X, sc.Area.Max.X),
					Y: stream.Uniform(sc.Area.Min.Y, sc.Area.Max.Y),
				}}
			default:
				return nil, nil, nil, geo.Rect{}, 0, fmt.Errorf("world: group %d: unsupported mobility %q", gi, g.Mobility.Kind)
			}
			models = append(models, m)
			buffers = append(buffers, buf)
			ranges = append(ranges, radioRange)
		}
	}
	return models, buffers, ranges, sc.Area, len(models), nil
}

func buildMobility(sc config.Scenario, root *rng.Stream) ([]mobility.Model, geo.Rect, int, error) {
	mroot := root.Split("mobility")
	switch sc.Mobility.Kind {
	case config.MobilityRWP:
		models := make([]mobility.Model, sc.Nodes)
		for i := range models {
			models[i] = mobility.NewRandomWaypoint(sc.Area,
				sc.Mobility.SpeedLo, sc.Mobility.SpeedHi,
				sc.Mobility.PauseLo, sc.Mobility.PauseHi,
				mroot.SplitIndex("node", i))
		}
		return models, sc.Area, sc.Nodes, nil
	case config.MobilityRandomWalk:
		models := make([]mobility.Model, sc.Nodes)
		for i := range models {
			models[i] = mobility.NewRandomWalk(sc.Area,
				sc.Mobility.SpeedLo, sc.Mobility.SpeedHi,
				sc.Mobility.EpochDist, mroot.SplitIndex("node", i))
		}
		return models, sc.Area, sc.Nodes, nil
	case config.MobilityRandomDirection:
		models := make([]mobility.Model, sc.Nodes)
		for i := range models {
			models[i] = mobility.NewRandomDirection(sc.Area,
				sc.Mobility.SpeedLo, sc.Mobility.SpeedHi,
				sc.Mobility.PauseLo, sc.Mobility.PauseHi,
				mroot.SplitIndex("node", i))
		}
		return models, sc.Area, sc.Nodes, nil
	case config.MobilityTaxi:
		fleet := trace.Synthesize(trace.SynthesizeConfig{
			Taxi:           sc.Mobility.Taxi,
			Nodes:          sc.Nodes,
			Duration:       sc.Duration,
			SampleInterval: sc.Mobility.SampleInterval,
			Seed:           sc.Seed,
		})
		models, err := fleet.Models()
		if err != nil {
			return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
		}
		return models, fleet.Area, fleet.Nodes(), nil
	case config.MobilityTraceDir:
		fleet, err := trace.LoadDir(sc.Mobility.TraceDir, trace.SanFrancisco, sc.Range, sc.Nodes)
		if err != nil {
			return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
		}
		models, err := fleet.Models()
		if err != nil {
			return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
		}
		return models, fleet.Area, fleet.Nodes(), nil
	case config.MobilityMapGrid, config.MobilityMapFile:
		var g *graph.Graph
		var err error
		if sc.Mobility.Kind == config.MobilityMapGrid {
			g, err = graph.GridCity(sc.Mobility.MapCols, sc.Mobility.MapRows,
				sc.Mobility.MapSpacing, sc.Mobility.MapDropProb, mroot.Split("map"))
		} else {
			snap := sc.Mobility.MapSnap
			if snap <= 0 {
				snap = 1
			}
			var f *os.File
			f, err = os.Open(sc.Mobility.MapFile)
			if err != nil {
				return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
			}
			g, err = graph.ParseEdgeList(f, snap)
			f.Close()
		}
		if err != nil {
			return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
		}
		models := make([]mobility.Model, sc.Nodes)
		for i := range models {
			m, merr := mobility.NewMapRoute(g,
				sc.Mobility.SpeedLo, sc.Mobility.SpeedHi,
				sc.Mobility.PauseLo, sc.Mobility.PauseHi,
				mroot.SplitIndex("node", i))
			if merr != nil {
				return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", merr)
			}
			models[i] = m
		}
		// Pad the radio area slightly so border vertices sit inside it.
		area := g.Bounds()
		area.Max.X += sc.Range
		area.Max.Y += sc.Range
		area.Min.X -= sc.Range
		area.Min.Y -= sc.Range
		return models, area, sc.Nodes, nil
	case config.MobilityONEFile:
		f, err := os.Open(sc.Mobility.TraceFile)
		if err != nil {
			return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
		}
		defer f.Close()
		fleet, err := trace.ParseONE(f)
		if err != nil {
			return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
		}
		models, err := fleet.Models()
		if err != nil {
			return nil, geo.Rect{}, 0, fmt.Errorf("world: %w", err)
		}
		return models, fleet.Area, fleet.Nodes(), nil
	default:
		return nil, geo.Rect{}, 0, fmt.Errorf("world: unknown mobility kind %q", sc.Mobility.Kind)
	}
}

// scheduleTraffic installs the network-wide message generator: one message
// every Uniform[lo,hi] seconds between a uniformly chosen (src ≠ dst) pair.
func (w *World) scheduleTraffic(s *rng.Stream) {
	sc := w.Scenario
	if sc.GenIntervalLo <= 0 {
		return
	}
	var nextID msg.ID
	var schedule func(now float64)
	schedule = func(now float64) {
		delay := s.Uniform(sc.GenIntervalLo, sc.GenIntervalHi)
		// The traffic substream deliberately rides inside the scheduled
		// closure: the generator is the world's own event chain, so every
		// draw happens at a single global (time, seq) point in the stream.
		// Under sharding, traffic generation stays a world-level (cross-
		// shard) event source scheduled at the barrier, never per-shard —
		// this closure is the documented touchpoint for that cut.
		//lint:invariant traffic substream is world-owned; draws occur in global event order at scheduling points, so no shard can observe a different sequence
		w.Engine.At(now+delay, func(at float64) {
			nextID++
			src := s.IntN(sc.Nodes)
			dst := s.IntN(sc.Nodes - 1)
			if dst >= src {
				dst++
			}
			size := sc.MessageSize
			if sc.MessageSizeHi > sc.MessageSize {
				size = sc.MessageSize + int64(s.Float64()*float64(sc.MessageSizeHi-sc.MessageSize))
			}
			m := &msg.Message{
				ID:            nextID,
				Source:        src,
				Dest:          dst,
				Size:          size,
				Created:       at,
				TTL:           sc.TTL,
				InitialCopies: sc.InitialCopies,
			}
			w.msgLog = append(w.msgLog, msgRecord{id: nextID, src: src, dst: dst, created: at})
			if w.Hosts[src].Originate(m, at) {
				w.Manager.Kick(src, at)
			}
			schedule(at)
		})
	}
	schedule(0)
}

// Run executes the scenario to its horizon and returns the result digest.
// Failure paths: a contact-trace-driven run whose schedule fails to install
// (zero Result), a Scenario.MaxEvents budget stop (*BudgetError), and a
// wall-clock watchdog stop (*TimeoutError) when a deadline was armed on the
// engine. Budget and timeout stops return the partial Result alongside the
// error so callers can report how far the run got.
func (w *World) Run() (Result, error) {
	if !w.started {
		if w.Scenario.MaxEvents > 0 {
			w.Engine.SetMaxEvents(w.Scenario.MaxEvents)
		}
		if w.scheduled != nil {
			if err := w.Manager.StartScheduled(w.scheduled); err != nil {
				return Result{}, fmt.Errorf("world: starting scheduled contacts: %w", err)
			}
		} else {
			w.Manager.Start()
		}
		w.started = true
	}
	w.Engine.Run(w.Scenario.Duration)
	if w.Engine.BudgetExceeded() {
		return w.Result(), &BudgetError{
			Events:    w.Engine.Processed(),
			MaxEvents: w.Scenario.MaxEvents,
			SimTime:   w.Engine.Now(),
		}
	}
	if w.Engine.DeadlineExceeded() {
		return w.Result(), &TimeoutError{
			Events:  w.Engine.Processed(),
			SimTime: w.Engine.Now(),
		}
	}
	return w.Result(), nil
}

// RunStats returns the engine-level performance digest of the run so far.
func (w *World) RunStats() obs.RunStats {
	checked, skipped, wakeups := w.Manager.ScanStats()
	windows, barriers, handoffs := w.Manager.ShardStats()
	return obs.RunStats{
		SimSeconds:    w.Engine.Now(),
		Events:        w.Engine.Processed(),
		PeakQueue:     w.Engine.PeakQueue(),
		WallSeconds:   w.Engine.Wall().Seconds(),
		PairsChecked:  checked,
		PairsSkipped:  skipped,
		Wakeups:       wakeups,
		ShardWindows:  windows,
		ShardBarriers: barriers,
		ShardHandoffs: handoffs,
		ScanFallback:  w.Manager.FallbackReason(),
	}
}

// Result summarizes the run so far (useful mid-run for progress output).
func (w *World) Result() Result {
	r := Result{
		Summary:             w.Collector.Summarize(),
		Scenario:            w.Scenario,
		Contacts:            w.Manager.Contacts(),
		MeanContactDuration: w.Manager.ContactDurations().Mean(),
		Energy:              w.Manager.EnergyReport(),
		Perf:                w.RunStats(),
	}
	if w.Intermeeting != nil {
		r.MeanIntermeeting = w.Intermeeting.Mean()
		r.ExpFitError = w.Intermeeting.ExpFitError()
		r.IntermeetingN = w.Intermeeting.Count()
	}
	return r
}
