package world

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/network"
	"sdsrp/internal/obs"
	"sdsrp/internal/sim"
	"sdsrp/internal/stats"
)

// tinyTracedScenario is a fast deterministic run that still exercises
// contacts, sprays, deliveries, drops, and expiries.
func tinyTracedScenario() config.Scenario {
	sc := config.RandomWaypoint()
	sc.Nodes = 12
	sc.Duration = 1800
	sc.TTL = 600
	sc.Area.Max.X = 600
	sc.Area.Max.Y = 600
	sc.MessageSize = 100 * 1000
	sc.MessageSizeHi = 0
	sc.BufferBytes = 300 * 1000 // tight: three messages, forcing policy drops
	sc.Seed = 7
	return sc
}

func runTraced(t *testing.T, sc config.Scenario) []byte {
	t.Helper()
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	w, err := Build(sc, WithTracer(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTracedRunDeterministic is the golden-log property: the same seed must
// produce a byte-identical JSONL event log.
func TestTracedRunDeterministic(t *testing.T) {
	sc := tinyTracedScenario()
	a := runTraced(t, sc)
	b := runTraced(t, sc)
	if len(a) == 0 {
		t.Fatal("traced run produced an empty event log")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different event logs")
	}
	sc.Seed = 8
	c := runTraced(t, sc)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical event logs (suspicious)")
	}
}

// TestTracedRunLifecycleConsistency checks the per-message event algebra:
// every delivered/dropped/expired/forwarded event refers to a message whose
// created event appeared earlier in the log, timestamps are non-decreasing,
// and at most one delivery per message exists.
func TestTracedRunLifecycleConsistency(t *testing.T) {
	log := runTraced(t, tinyTracedScenario())
	type line struct {
		T    float64 `json:"t"`
		Type string  `json:"type"`
		Msg  *int    `json:"msg"`
	}
	created := map[int]bool{}
	deliveredAt := map[int]int{}
	var prevT float64
	var n, fates int
	for _, raw := range strings.Split(strings.TrimSuffix(string(log), "\n"), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("bad JSONL line %q: %v", raw, err)
		}
		if l.T < prevT {
			t.Fatalf("time went backwards: %v after %v in %q", l.T, prevT, raw)
		}
		prevT = l.T
		n++
		switch l.Type {
		case "created":
			created[*l.Msg] = true
		case "delivered", "dropped", "expired", "forwarded", "transfer_start",
			"transfer_abort", "transfer_lost", "refused":
			if l.Msg == nil {
				t.Fatalf("%s event without msg: %q", l.Type, raw)
			}
			if !created[*l.Msg] {
				t.Fatalf("%s for message %d before its created event", l.Type, *l.Msg)
			}
			if l.Type == "delivered" {
				deliveredAt[*l.Msg]++
				if deliveredAt[*l.Msg] > 1 {
					t.Fatalf("message %d delivered twice", *l.Msg)
				}
			}
			if l.Type == "delivered" || l.Type == "dropped" || l.Type == "expired" {
				fates++
			}
		case "contact_up", "contact_down", "link_flap", "node_down", "node_up":
			// contact and node events are not message-scoped
		default:
			t.Fatalf("unknown event type %q", l.Type)
		}
	}
	if len(created) == 0 || fates == 0 {
		t.Fatalf("degenerate log: %d events, %d created, %d fates", n, len(created), fates)
	}
}

// TestTracedRunMatchesCollector cross-checks the metrics sink against the
// stats collector: both observe the same run, so headline counters must
// agree.
func TestTracedRunMatchesCollector(t *testing.T) {
	sc := tinyTracedScenario()
	metrics := obs.NewMetrics()
	w, err := Build(sc, WithTracer(metrics))
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, w)
	if got, want := int(metrics.Count(obs.MessageCreated)), res.Created; got != want {
		t.Errorf("created: tracer %d, collector %d", got, want)
	}
	if got, want := int(metrics.Count(obs.MessageDelivered)), res.Delivered; got != want {
		t.Errorf("delivered: tracer %d, collector %d", got, want)
	}
	if got, want := int(metrics.Count(obs.MessageForwarded))+int(metrics.Count(obs.MessageDelivered)), res.Forwards; got != want {
		t.Errorf("forwards: tracer %d, collector %d", got, want)
	}
	if got, want := int(metrics.Count(obs.MessageDropped)), res.PolicyDrops; got != want {
		t.Errorf("drops: tracer %d, collector %d", got, want)
	}
	if got, want := int(metrics.Count(obs.MessageExpired)), res.ExpiredDrops; got != want {
		t.Errorf("expired: tracer %d, collector %d", got, want)
	}
	if got, want := int(metrics.Count(obs.TransferStart)), res.Started; got != want {
		t.Errorf("starts: tracer %d, collector %d", got, want)
	}
	if got, want := int(metrics.Count(obs.ContactUp)), res.Contacts; got != want {
		t.Errorf("contacts: tracer %d, collector %d", got, want)
	}
	if res.Delivered > 0 && metrics.Latency.Count() == 0 {
		t.Error("latency histogram empty despite deliveries")
	}
}

// runTracedSnapshots is runTraced with the windowed sampler enabled.
func runTracedSnapshots(t *testing.T, sc config.Scenario, interval float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	w, err := Build(sc, WithTracer(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableSnapshots(interval); err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRunDeterministic extends the golden-log property to the
// sampler: snapshot events ride the same stream and must not disturb
// byte-identical replay.
func TestSnapshotRunDeterministic(t *testing.T) {
	sc := tinyTracedScenario()
	a := runTracedSnapshots(t, sc, 300)
	b := runTracedSnapshots(t, sc, 300)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different snapshot-bearing event logs")
	}
	if !bytes.Contains(a, []byte(`"type":"snapshot"`)) {
		t.Fatal("no snapshot events in the log")
	}
	// The sampler must not perturb the simulation itself: stripping the
	// snapshot lines recovers the sampler-less log exactly.
	plain := runTraced(t, sc)
	var stripped bytes.Buffer
	for _, line := range bytes.Split(a, []byte("\n")) {
		if len(line) == 0 || bytes.Contains(line, []byte(`"type":"snapshot"`)) {
			continue
		}
		stripped.Write(line)
		stripped.WriteByte('\n')
	}
	if !bytes.Equal(stripped.Bytes(), plain) {
		t.Fatal("enabling snapshots changed the lifecycle event stream")
	}
}

// TestSnapshotCadenceAndShape parses the sampled events and checks cadence,
// per-node vector width, and internal consistency.
func TestSnapshotCadenceAndShape(t *testing.T) {
	sc := tinyTracedScenario()
	const interval = 300.0
	log := runTracedSnapshots(t, sc, interval)
	var snaps []obs.Event
	for _, line := range bytes.Split(log, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		ev, err := obs.ParseEvent(line)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == obs.Snapshot {
			snaps = append(snaps, ev)
		}
	}
	want := int(sc.Duration / interval)
	if len(snaps) != want {
		t.Fatalf("got %d snapshots, want %d", len(snaps), want)
	}
	for i, s := range snaps {
		if wantT := interval * float64(i+1); s.T != wantT {
			t.Errorf("snapshot %d at t=%v, want %v", i, s.T, wantT)
		}
		if len(s.Used) != sc.Nodes {
			t.Errorf("snapshot %d: used vector has %d entries, want %d nodes", i, len(s.Used), sc.Nodes)
		}
		if s.LiveMsgs > s.LiveCopies {
			t.Errorf("snapshot %d: %d distinct messages exceed %d copies", i, s.LiveMsgs, s.LiveCopies)
		}
		if s.Queue < 0 {
			t.Errorf("snapshot %d: negative live queue depth %d", i, s.Queue)
		}
	}
}

// TestSnapshotMatchesResult cross-checks a post-run Snapshot against the
// world's own end-of-run accounting.
func TestSnapshotMatchesResult(t *testing.T) {
	sc := tinyTracedScenario()
	ring := obs.NewRing(8)
	w, err := Build(sc, WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, w)
	snap := w.Snapshot(sc.Duration)
	var liveCopies int
	liveIDs := map[int]bool{}
	for _, f := range w.MessageFates() {
		liveCopies += f.LiveCopies
		if f.LiveCopies > 0 {
			liveIDs[int(f.ID)] = true
		}
	}
	if snap.LiveCopies != liveCopies {
		t.Errorf("snapshot copies %d, tracker sum %d", snap.LiveCopies, liveCopies)
	}
	if snap.LiveMsgs != len(liveIDs) {
		t.Errorf("snapshot live msgs %d, tracker %d", snap.LiveMsgs, len(liveIDs))
	}
	if snap.Contacts != w.Manager.ActiveLinks() {
		t.Errorf("snapshot contacts %d, manager %d", snap.Contacts, w.Manager.ActiveLinks())
	}
	var used int64
	for _, u := range snap.Used {
		used += u
	}
	var bufUsed int64
	for _, h := range w.Hosts {
		bufUsed += h.Buffer().Used()
	}
	if used != bufUsed {
		t.Errorf("snapshot used sum %d, buffers %d", used, bufUsed)
	}
}

// TestEnableSnapshotsRejectsBadConfig pins the argument contract.
func TestEnableSnapshotsRejectsBadConfig(t *testing.T) {
	sc := tinyTracedScenario()
	w, err := Build(sc, WithTracer(obs.NewRing(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableSnapshots(0); err == nil {
		t.Error("zero interval accepted")
	}
	if err := w.EnableSnapshots(-5); err == nil {
		t.Error("negative interval accepted")
	}
	bare, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.EnableSnapshots(60); err == nil {
		t.Error("tracer-less world accepted a snapshot sampler")
	}
}

// TestRunStatsPopulated checks the engine perf digest lands in the result.
func TestRunStatsPopulated(t *testing.T) {
	sc := tinyTracedScenario()
	w, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, w)
	p := res.Perf
	if p.Events == 0 {
		t.Error("no events counted")
	}
	if p.PeakQueue <= 0 {
		t.Error("peak queue not tracked")
	}
	if p.WallSeconds <= 0 {
		t.Error("wall clock not tracked")
	}
	if p.SimSeconds != sc.Duration {
		t.Errorf("sim seconds %v, want %v", p.SimSeconds, sc.Duration)
	}
	if p.EventsPerSec() <= 0 {
		t.Error("events/sec not derivable")
	}
}

// TestTimelineZeroHostsAndZeroCapacity guards the mean-fill computation
// against division by zero: no hosts, or hosts reporting zero capacity,
// must yield BufferFill 0, not NaN.
func TestTimelineZeroHostsAndZeroCapacity(t *testing.T) {
	eng := sim.NewEngine()
	collector := stats.NewCollector()
	mgr, err := network.NewManager(eng, network.Config{
		Area: config.RandomWaypoint().Area, Range: 10, Bandwidth: 1, ScanInterval: 1e9,
	}, nil, nil, collector, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := &World{Engine: eng, Manager: mgr, Collector: collector,
		Scenario: config.Scenario{Duration: 10}}
	if err := w.EnableTimeline(2); err != nil {
		t.Fatal(err)
	}
	eng.Run(10)
	pts := w.Timeline()
	if len(pts) == 0 {
		t.Fatal("no timeline points")
	}
	for _, p := range pts {
		if p.BufferFill != p.BufferFill || p.BufferFill != 0 { // NaN check + zero
			t.Fatalf("BufferFill = %v, want 0 for host-less world", p.BufferFill)
		}
	}
	var csv bytes.Buffer
	if err := WriteTimelineCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv.String(), "NaN") {
		t.Fatal("timeline CSV contains NaN")
	}
}
