package world

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"

	"sdsrp/internal/config"
	"sdsrp/internal/obs"
)

// runWorkers executes sc with the given worker count under the default scan
// mode and returns the full JSONL trace, the result, and the contact log.
func runWorkers(t *testing.T, sc config.Scenario, workers int) ([]byte, Result) {
	t.Helper()
	sc.Workers = workers
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	w, err := Build(sc, WithTracer(jsonl))
	if err != nil {
		t.Fatalf("build (workers=%d): %v", workers, err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatalf("flush (workers=%d): %v", workers, err)
	}
	return buf.Bytes(), res
}

// workerCounts returns the deduplicated, sorted differential matrix
// {1, 2, 4, NumCPU} the acceptance criterion names.
func workerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var counts []int
	for w := range set {
		counts = append(counts, w)
	}
	sort.Ints(counts)
	return counts
}

// TestWorkerCountsMatchSerial is the parallel-DES acceptance gate: across
// every scenario family and seed of the scanner-differential matrix, the
// sharded scan must emit a byte-identical event trace for workers ∈
// {1, 2, 4, NumCPU}. Combined with TestLazyScanMatchesNaive this pins the
// whole equivalence chain: sharded ≡ lazy ≡ naive for every worker count.
//
// Fallback is legitimate: a family whose fleet speed or radio range leaves
// no conservative window (taxi replay's measured speeds, wide static-relay
// radios at high worker counts) runs serially and trivially matches. The
// parallelEngages map ensures the test cannot silently degenerate into
// serial-vs-serial everywhere: families known to admit a window at
// workers=2 must report shard windows > 0.
func TestWorkerCountsMatchSerial(t *testing.T) {
	// Families whose 2-worker stripe geometry provably admits a window on
	// the diffBase area (1500 m wide → 750 m bands, ≤ 400 m radios, fleet
	// speeds ≤ 6 m/s): the sharded path must actually engage there.
	parallelEngages := map[string]bool{
		"rwp":                                  true,
		"random-walk":                          true,
		"random-direction":                     true,
		"groups-static-relays-per-node-ranges": true,
		"churn":                                true,
		"static-relays-churn":                  true,
		"flap-and-loss":                        true,
		"energy-death":                         true,
	}
	counts := workerCounts()
	for name, mk := range diffFamilies() {
		for _, seed := range []uint64{1, 2, 3} {
			sc := mk()
			sc.Seed = seed
			sc.Name = fmt.Sprintf("wdiff-%s-%d", name, seed)
			mustEngage := parallelEngages[name]
			t.Run(sc.Name, func(t *testing.T) {
				t.Parallel()
				serial, resS := runWorkers(t, sc, 1)
				if resS.Perf.ShardWindows != 0 || resS.Perf.ShardBarriers != 0 {
					t.Fatalf("serial run reported shard counters: %+v", resS.Perf)
				}
				for _, workers := range counts[1:] {
					par, resP := runWorkers(t, sc, workers)
					if !bytes.Equal(serial, par) {
						sl := bytes.Split(serial, []byte("\n"))
						pl := bytes.Split(par, []byte("\n"))
						n := min(len(sl), len(pl))
						for i := 0; i < n; i++ {
							if !bytes.Equal(sl[i], pl[i]) {
								t.Fatalf("workers=%d diverges at trace line %d:\n  serial:   %s\n  workers: %s",
									workers, i+1, sl[i], pl[i])
							}
						}
						t.Fatalf("trace length differs: serial %d lines, workers=%d %d lines",
							len(sl), workers, len(pl))
					}
					if resS.Summary != resP.Summary {
						t.Fatalf("summaries diverge at workers=%d:\nserial:   %+v\nparallel: %+v",
							workers, resS.Summary, resP.Summary)
					}
					if resS.Contacts != resP.Contacts || resS.MeanContactDuration != resP.MeanContactDuration {
						t.Fatalf("contact digests diverge at workers=%d", workers)
					}
					if resS.Perf.Events != resP.Perf.Events || resS.Perf.PeakQueue != resP.Perf.PeakQueue {
						t.Fatalf("event accounting diverges at workers=%d: serial (%d, %d) parallel (%d, %d)",
							workers, resS.Perf.Events, resS.Perf.PeakQueue, resP.Perf.Events, resP.Perf.PeakQueue)
					}
					if workers == 2 && mustEngage {
						if resP.Perf.ShardWindows == 0 {
							t.Errorf("workers=2 fell back to serial on a family that admits a window (perf %+v)", resP.Perf)
						}
						if resP.Perf.ShardBarriers == 0 {
							t.Errorf("workers=2 crossed no barriers — sharded path inert")
						}
					}
				}
			})
		}
	}
}

// TestWorkersFallbackIsExact pins the documented fallback: a worker count
// whose stripes are too narrow for the fleet (or any scenario without a
// conservative window) must run serially — zero shard counters — and still
// match the serial trace byte for byte, now with the refusal recorded in
// the fallback-reason string.
func TestWorkersFallbackIsExact(t *testing.T) {
	sc := diffBase()
	sc.Seed = 7
	sc.Name = "wdiff-fallback"
	// 64 stripes over 1500 m → 23 m bands, far below the 100 m radio
	// range: no window exists, the run must fall back.
	serial, resS := runWorkers(t, sc, 1)
	par, resP := runWorkers(t, sc, 64)
	if resP.Perf.ShardWindows != 0 {
		t.Fatalf("expected serial fallback at 64 workers, got %d shard windows", resP.Perf.ShardWindows)
	}
	if want := "parscan:no-conservative-window->serial"; resP.Perf.ScanFallback != want {
		t.Fatalf("fallback reason = %q, want %q", resP.Perf.ScanFallback, want)
	}
	if resS.Perf.ScanFallback != "" {
		t.Fatalf("serial run recorded a fallback: %q", resS.Perf.ScanFallback)
	}
	if !bytes.Equal(serial, par) {
		t.Fatal("fallback trace diverges from serial")
	}
	if !reflect.DeepEqual(resS.Summary, resP.Summary) {
		t.Fatalf("fallback summary diverges:\n%+v\n%+v", resS.Summary, resP.Summary)
	}
}

// TestWorkersWithKineticConfigured closes the strategy matrix's last edge:
// ScanMode=kinetic with Workers ≥ 2. Where the sharded scan engages, the
// configured serial mode is bypassed; where it refuses (64 stripes over a
// 1500 m area leave no window), the run must land on the kinetic planner —
// not lazy — and still match the serial naive trace byte for byte.
func TestWorkersWithKineticConfigured(t *testing.T) {
	for name, mk := range diffFamilies() {
		sc := mk()
		sc.Seed = 1
		sc.ScanMode = "kinetic"
		sc.Name = fmt.Sprintf("wkin-%s", name)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			serial, resS := runWorkers(t, sc, 1)
			par, resP := runWorkers(t, sc, 2)
			if !bytes.Equal(serial, par) {
				t.Fatal("workers=2 kinetic-configured trace diverges from serial kinetic")
			}
			if resS.Summary != resP.Summary {
				t.Fatalf("summaries diverge:\nserial:   %+v\nparallel: %+v", resS.Summary, resP.Summary)
			}
		})
	}
	// Forced refusal: the parscan fallback must honour the configured
	// kinetic mode (PairsSkipped counts parked node-ticks only there).
	sc := diffBase()
	sc.Seed = 7
	sc.ScanMode = "kinetic"
	sc.Name = "wkin-fallback"
	serial, resS := runWorkers(t, sc, 1)
	par, resP := runWorkers(t, sc, 64)
	// Prefix, not equality: on this small dense base the kinetic planner may
	// legitimately retire itself later via its load monitor, appending a
	// second reason.
	if want := "parscan:no-conservative-window->serial"; !strings.HasPrefix(resP.Perf.ScanFallback, want) {
		t.Fatalf("fallback reason = %q, want prefix %q", resP.Perf.ScanFallback, want)
	}
	if resP.Perf.PairsSkipped == 0 {
		t.Fatal("parscan fallback did not engage the kinetic planner")
	}
	if !bytes.Equal(serial, par) {
		t.Fatal("kinetic fallback trace diverges from serial kinetic")
	}
	if resS.Summary != resP.Summary {
		t.Fatalf("fallback summary diverges:\n%+v\n%+v", resS.Summary, resP.Summary)
	}
}
