package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdsrp/internal/geo"
)

const cabFile = `37.75134 -122.39488 0 1213084687
37.75136 -122.39527 0 1213084659
37.75199 -122.39752 1 1213084540
`

func TestParseCab(t *testing.T) {
	samples, err := ParseCab(strings.NewReader(cabFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("len = %d", len(samples))
	}
	// Sorted ascending even though the file is newest-first.
	if samples[0].Time != 1213084540 || samples[2].Time != 1213084687 {
		t.Fatalf("not sorted: %v", samples)
	}
	if !samples[0].Occupied || samples[1].Occupied {
		t.Fatal("occupancy parsed wrong")
	}
	if math.Abs(samples[0].Lat-37.75199) > 1e-9 {
		t.Fatalf("lat = %v", samples[0].Lat)
	}
}

func TestParseCabSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n37.7 -122.4 0 100\n"
	samples, err := ParseCab(strings.NewReader(in))
	if err != nil || len(samples) != 1 {
		t.Fatalf("samples=%v err=%v", samples, err)
	}
}

func TestParseCabErrors(t *testing.T) {
	bad := []string{
		"37.7 -122.4 0",          // too few fields
		"37.7 -122.4 0 1 2",      // too many
		"x -122.4 0 100",         // bad lat
		"37.7 y 0 100",           // bad lon
		"37.7 -122.4 7 100",      // bad occupancy
		"37.7 -122.4 0 notatime", // bad time
	}
	for _, in := range bad {
		if _, err := ParseCab(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseCab(%q) accepted", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	in, err := ParseCab(strings.NewReader(cabFile))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCab(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Newest first on disk.
	firstLine := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasSuffix(firstLine, "1213084687") {
		t.Fatalf("not newest-first: %q", firstLine)
	}
	out, err := ParseCab(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost samples: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Time != in[i].Time || out[i].Occupied != in[i].Occupied ||
			math.Abs(out[i].Lat-in[i].Lat) > 1e-4 || math.Abs(out[i].Lon-in[i].Lon) > 1e-4 {
			t.Fatalf("sample %d mismatch: %v vs %v", i, out[i], in[i])
		}
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	p := SanFrancisco
	lat, lon := 37.75, -122.41
	pt := p.ToMeters(lat, lon)
	lat2, lon2 := p.ToGPS(pt)
	if math.Abs(lat2-lat) > 1e-9 || math.Abs(lon2-lon) > 1e-9 {
		t.Fatalf("round trip: %v %v", lat2, lon2)
	}
}

func TestProjectionScale(t *testing.T) {
	p := SanFrancisco
	// One degree of latitude is ~111 km.
	a := p.ToMeters(37.0, -122.44)
	b := p.ToMeters(38.0, -122.44)
	if d := b.Y - a.Y; math.Abs(d-111195) > 500 {
		t.Fatalf("1° latitude = %vm", d)
	}
	// One degree of longitude at 37.77°N is ~87.9 km.
	c := p.ToMeters(37.77, -122.0)
	d := p.ToMeters(37.77, -121.0)
	if dx := d.X - c.X; math.Abs(dx-87900) > 500 {
		t.Fatalf("1° longitude = %vm", dx)
	}
}

func TestFromSamplesNormalizes(t *testing.T) {
	cabs := [][]Sample{
		{{Lat: 37.75, Lon: -122.42, Time: 1000}, {Lat: 37.76, Lon: -122.41, Time: 1100}},
		{{Lat: 37.74, Lon: -122.43, Time: 950}, {Lat: 37.75, Lon: -122.42, Time: 1050}},
	}
	f, err := FromSamples(cabs, SanFrancisco, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 2 {
		t.Fatalf("nodes = %d", f.Nodes())
	}
	// Earliest sample (950) maps to t=0.
	if f.Paths[1][0].T != 0 {
		t.Fatalf("time origin = %v", f.Paths[1][0].T)
	}
	if f.Paths[0][0].T != 50 {
		t.Fatalf("relative time = %v", f.Paths[0][0].T)
	}
	// All points inside the padded area.
	for _, pts := range f.Paths {
		for _, tp := range pts {
			if !f.Area.Contains(tp.P) {
				t.Fatalf("point %v outside area %v", tp.P, f.Area)
			}
		}
	}
	// Padding kept points off the exact border.
	if f.Paths[1][0].P.X < 99 {
		t.Fatalf("padding missing: %v", f.Paths[1][0].P)
	}
}

func TestFromSamplesMaxNodes(t *testing.T) {
	cabs := [][]Sample{
		{{Lat: 37.75, Lon: -122.42, Time: 0}},
		{{Lat: 37.76, Lon: -122.41, Time: 0}},
		{{Lat: 37.77, Lon: -122.40, Time: 0}},
	}
	f, err := FromSamples(cabs, SanFrancisco, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2", f.Nodes())
	}
}

func TestFromSamplesEmpty(t *testing.T) {
	if _, err := FromSamples(nil, SanFrancisco, 0, 0); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := FromSamples([][]Sample{{}}, SanFrancisco, 0, 0); err == nil {
		t.Fatal("fleet of empty cabs accepted")
	}
}

func TestSynthesize(t *testing.T) {
	cfg := DefaultSynthesizeConfig()
	cfg.Nodes = 10
	cfg.Duration = 3600
	f := Synthesize(cfg)
	if f.Nodes() != 10 {
		t.Fatalf("nodes = %d", f.Nodes())
	}
	models, err := f.Models()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		for ti := 0; ti <= 3600; ti += 60 {
			if p := m.Pos(float64(ti)); !f.Area.Contains(p) {
				t.Fatalf("synthetic taxi left area: %v", p)
			}
		}
	}
	// Determinism.
	g := Synthesize(cfg)
	if g.Paths[3][7] != f.Paths[3][7] {
		t.Fatal("Synthesize not deterministic")
	}
}

func TestSynthesizeSampleCount(t *testing.T) {
	cfg := DefaultSynthesizeConfig()
	cfg.Nodes = 1
	cfg.Duration = 100
	cfg.SampleInterval = 10
	f := Synthesize(cfg)
	if len(f.Paths[0]) != 11 {
		t.Fatalf("samples = %d, want 11", len(f.Paths[0]))
	}
}

func TestToSamplesAndBack(t *testing.T) {
	cfg := DefaultSynthesizeConfig()
	cfg.Nodes = 3
	cfg.Duration = 600
	f := Synthesize(cfg)
	cabs := f.ToSamples(SanFrancisco, 1_300_000_000)
	if len(cabs) != 3 {
		t.Fatalf("cabs = %d", len(cabs))
	}
	// Re-ingest through the parser-facing constructor and verify geometry
	// survives within GPS-format precision (1e-5 deg ≈ 1 m).
	f2, err := FromSamples(cabs, SanFrancisco, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Paths {
		for j := range f.Paths[i] {
			dt := f.Paths[i][j].T - f2.Paths[i][j].T
			if math.Abs(dt) > 1 {
				t.Fatalf("time drift %v", dt)
			}
		}
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "new_abc.txt"), []byte(cabFile), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "new_def.txt"),
		[]byte("37.76 -122.40 0 1213084600\n37.761 -122.401 1 1213084700\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadDir(dir, SanFrancisco, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 2 {
		t.Fatalf("nodes = %d", f.Nodes())
	}
	if _, err := LoadDir(filepath.Join(dir, "missing"), SanFrancisco, 0, 0); err == nil {
		t.Fatal("missing dir accepted")
	}
	// A malformed file is reported with its name.
	os.WriteFile(filepath.Join(dir, "new_bad.txt"), []byte("garbage\n"), 0o644)
	if _, err := LoadDir(dir, SanFrancisco, 0, 0); err == nil || !strings.Contains(err.Error(), "new_bad.txt") {
		t.Fatalf("bad file error = %v", err)
	}
}

func TestFleetAreaNonDegenerate(t *testing.T) {
	f := Synthesize(DefaultSynthesizeConfig())
	if f.Area.W() < 1000 || f.Area.H() < 1000 {
		t.Fatalf("synthetic area degenerate: %v", f.Area)
	}
	_ = geo.Point{}
}
