package trace

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"sdsrp/internal/geo"
)

const oneTrace = `0 43200 0 4500 0 3400
0 n1 100 200
0 n2 4000 3000
30 n1 160 200
30 n2 3940 3000
60 n1 220 200
`

func TestParseONE(t *testing.T) {
	f, err := ParseONE(strings.NewReader(oneTrace))
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 2 {
		t.Fatalf("nodes = %d", f.Nodes())
	}
	if f.Area.Max.X != 4500 || f.Area.Max.Y != 3400 {
		t.Fatalf("area = %v", f.Area)
	}
	if len(f.Paths[0]) != 3 || len(f.Paths[1]) != 2 {
		t.Fatalf("path lengths = %d,%d", len(f.Paths[0]), len(f.Paths[1]))
	}
	models, err := f.Models()
	if err != nil {
		t.Fatal(err)
	}
	// n1 moves east at 2 m/s; interpolation at t=15 gives x=130.
	if p := models[0].Pos(15); math.Abs(p.X-130) > 1e-9 || p.Y != 200 {
		t.Fatalf("interpolated position = %v", p)
	}
}

func TestParseONEShiftsOrigin(t *testing.T) {
	in := "100 200 1000 2000 500 700\n100 a 1500 600\n"
	f, err := ParseONE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.Paths[0][0].T != 0 {
		t.Fatalf("time origin = %v", f.Paths[0][0].T)
	}
	if f.Paths[0][0].P != (geo.Point{X: 500, Y: 100}) {
		t.Fatalf("position origin = %v", f.Paths[0][0].P)
	}
	if f.Area.Max.X != 1000 || f.Area.Max.Y != 200 {
		t.Fatalf("area = %v", f.Area)
	}
}

func TestParseONEErrors(t *testing.T) {
	bad := []string{
		"",                          // empty
		"1 2 3\n",                   // short header
		"0 1 0 10 0 x\n",            // bad header field
		"0 1 0 10 10 0\n",           // inverted area... (maxY < minY)
		"0 1 0 10 0 10\n1 n1 2\n",   // short sample
		"0 1 0 10 0 10\nt n1 2 3\n", // bad time
		"0 1 0 10 0 10\n1 n1 x 3\n", // bad x
		"0 1 0 10 0 10\n",           // no samples
	}
	for _, in := range bad {
		if _, err := ParseONE(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseONE(%q) accepted", in)
		}
	}
}

func TestParseONEEightFieldHeader(t *testing.T) {
	in := "0 10 0 10 0 10 0 0\n0 a 1 2\n"
	if _, err := ParseONE(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteParseONERoundTrip(t *testing.T) {
	cfg := DefaultSynthesizeConfig()
	cfg.Nodes = 4
	cfg.Duration = 300
	cfg.SampleInterval = 60
	f := Synthesize(cfg)

	var buf bytes.Buffer
	if err := WriteONE(&buf, f); err != nil {
		t.Fatal(err)
	}
	// Header first, then globally time-sorted rows.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+4*6 {
		t.Fatalf("lines = %d", len(lines))
	}
	prev := -1.0
	for _, l := range lines[1:] {
		fields := strings.Fields(l)
		if len(fields) != 4 {
			t.Fatalf("row %q: want 4 fields", l)
		}
		tm, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("row %q: %v", l, err)
		}
		if tm < prev {
			t.Fatal("rows not time-sorted")
		}
		prev = tm
	}

	g, err := ParseONE(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != f.Nodes() {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	for i := range f.Paths {
		for j := range f.Paths[i] {
			dp := f.Paths[i][j].P.Dist(g.Paths[i][j].P)
			if dp > 1e-6 {
				t.Fatalf("node %d point %d drifted %v", i, j, dp)
			}
		}
	}
}

func TestWriteONEEmpty(t *testing.T) {
	if err := WriteONE(&bytes.Buffer{}, &Fleet{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}
