package trace

import (
	"math"

	"sdsrp/internal/geo"
)

// earthRadius in metres (mean).
const earthRadius = 6371000.0

// Projection converts GPS coordinates to local metres with an
// equirectangular projection around a reference point — accurate to well
// under a metre over a city-sized extent, which is all the radio model
// needs.
type Projection struct {
	latRef, lonRef float64
	cosLat         float64
}

// NewProjection returns a projection centred on (latRef, lonRef) degrees.
func NewProjection(latRef, lonRef float64) Projection {
	return Projection{latRef: latRef, lonRef: lonRef, cosLat: math.Cos(latRef * math.Pi / 180)}
}

// ToMeters projects a GPS coordinate to local metres (x east, y north).
func (p Projection) ToMeters(lat, lon float64) geo.Point {
	return geo.Point{
		X: earthRadius * (lon - p.lonRef) * math.Pi / 180 * p.cosLat,
		Y: earthRadius * (lat - p.latRef) * math.Pi / 180,
	}
}

// ToGPS inverts ToMeters.
func (p Projection) ToGPS(pt geo.Point) (lat, lon float64) {
	lat = p.latRef + pt.Y/earthRadius*180/math.Pi
	lon = p.lonRef + pt.X/(earthRadius*p.cosLat)*180/math.Pi
	return lat, lon
}

// SanFrancisco is the reference point used for the synthetic EPFL
// substitute (roughly the dataset's centroid).
var SanFrancisco = NewProjection(37.77, -122.44)
