package trace

import (
	"strings"
	"testing"
)

// Fuzzing guards the two text parsers against panics and quadratic
// behaviour on hostile input; run with `go test -fuzz=FuzzParseCab` etc.
// for deep exploration — the seed corpus below runs on every `go test`.

func FuzzParseCab(f *testing.F) {
	f.Add(cabFile)
	f.Add("")
	f.Add("# comment only\n")
	f.Add("37.7 -122.4 0 100\n37.8 -122.5 1 90\n")
	f.Add("nan inf 0 100\n")
	f.Add("37.7 -122.4 2 100\n")
	f.Add(strings.Repeat("37.7 -122.4 0 100\n", 100))
	f.Add("37.7 -122.4 0 100 extra\n")           // extra fields
	f.Add(strings.Repeat("7", 1_100_000) + "\n") // over the 1 MB line cap
	f.Fuzz(func(t *testing.T, in string) {
		samples, err := ParseCab(strings.NewReader(in))
		if err != nil {
			return
		}
		// On success the samples must be time-sorted.
		for i := 1; i < len(samples); i++ {
			if samples[i].Time < samples[i-1].Time {
				t.Fatalf("unsorted output at %d", i)
			}
		}
	})
}

func FuzzParseONE(f *testing.F) {
	f.Add(oneTrace)
	f.Add("")
	f.Add("0 1 0 10 0 10\n")
	f.Add("0 1 0 10 0 10\n5 a 3 4\n")
	f.Add("0 1 0 10 0 10 0 0\n5 a 3 4\n# c\n\n6 b 1 2\n")
	f.Add("0 1 0 10 0 10\n5 a 3 4 7\n")                      // extra fields
	f.Add("0 1 0 10 0 10\n" + strings.Repeat("1 ", 600_000)) // oversized record
	f.Fuzz(func(t *testing.T, in string) {
		fleet, err := ParseONE(strings.NewReader(in))
		if err != nil {
			return
		}
		// On success every path is time-sorted and non-empty, and models
		// can be built.
		for i, pts := range fleet.Paths {
			if len(pts) == 0 {
				t.Fatalf("empty path %d accepted", i)
			}
			for j := 1; j < len(pts); j++ {
				if pts[j].T < pts[j-1].T {
					t.Fatalf("unsorted path %d", i)
				}
			}
		}
		if _, err := fleet.Models(); err != nil {
			t.Fatalf("parsed fleet unusable: %v", err)
		}
	})
}

func FuzzParseContacts(f *testing.F) {
	f.Add(contactTrace)
	f.Add("")
	f.Add("# comments only\n\n")
	f.Add("0 1 10 60\n1 2 30 90\n")
	f.Add("0 0 10 20\n")                  // self contact
	f.Add("0 1 20 10\n")                  // inverted interval
	f.Add("0 1 10 20 5\n")                // extra fields
	f.Add("0 1 10\n")                     // truncated record
	f.Add(strings.Repeat("z", 1_100_000)) // over the 1 MB line cap
	f.Add("-1 1 10 20\n")                 // negative id
	f.Fuzz(func(t *testing.T, in string) {
		cs, err := ParseContacts(strings.NewReader(in))
		if err != nil {
			return
		}
		// On success every contact is well-formed and MaxNode covers it.
		max := MaxNode(cs)
		for i, c := range cs {
			if c.A < 0 || c.B < 0 || c.A == c.B || c.End <= c.Start {
				t.Fatalf("malformed contact %d accepted: %+v", i, c)
			}
			if c.A > max || c.B > max {
				t.Fatalf("MaxNode %d misses contact %d: %+v", max, i, c)
			}
		}
	})
}
