package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Contact mirrors network.Contact for trace I/O without an import cycle:
// one recorded encounter between two nodes.
type Contact struct {
	A, B       int
	Start, End float64
}

// ParseContacts reads a contact trace in the common whitespace format used
// by the Haggle/Infocom datasets and ONE's connectivity reports:
//
//	<nodeA> <nodeB> <start> <end>
//
// one contact per line, '#' comments and blank lines skipped. Node ids may
// be arbitrary non-negative integers; they are returned as-is (the caller
// sizes the network from MaxNode).
func ParseContacts(r io.Reader) ([]Contact, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Contact
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: node a: %v", lineNo, err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: node b: %v", lineNo, err)
		}
		start, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: start: %v", lineNo, err)
		}
		end, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: end: %v", lineNo, err)
		}
		if a < 0 || b < 0 || a == b || end <= start {
			return nil, fmt.Errorf("trace: line %d: invalid contact %d-%d [%v,%v]", lineNo, a, b, start, end)
		}
		out = append(out, Contact{A: a, B: b, Start: start, End: end})
	}
	if err := sc.Err(); err != nil {
		// The scanner died mid-record (oversized or truncated line):
		// report where, not just why.
		return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: empty contact trace")
	}
	return out, nil
}

// WriteContacts writes contacts in the ParseContacts format, sorted by
// start time.
func WriteContacts(w io.Writer, contacts []Contact) error {
	sorted := append([]Contact(nil), contacts...)
	for i := 1; i < len(sorted); i++ { // insertion sort: traces are near-sorted
		for j := i; j > 0 && sorted[j].Start < sorted[j-1].Start; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	bw := bufio.NewWriter(w)
	for _, c := range sorted {
		if _, err := fmt.Fprintf(bw, "%d %d %g %g\n", c.A, c.B, c.Start, c.End); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MaxNode returns the largest node id in the trace (-1 when empty).
func MaxNode(contacts []Contact) int {
	max := -1
	for _, c := range contacts {
		if c.A > max {
			max = c.A
		}
		if c.B > max {
			max = c.B
		}
	}
	return max
}
