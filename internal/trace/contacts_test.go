package trace

import (
	"bytes"
	"strings"
	"testing"
)

const contactTrace = `# infocom-style contact trace
0 1 10 60
1 2 30 90
0 2 120 150
`

func TestParseContacts(t *testing.T) {
	cs, err := ParseContacts(strings.NewReader(contactTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("contacts = %d", len(cs))
	}
	if cs[0] != (Contact{A: 0, B: 1, Start: 10, End: 60}) {
		t.Fatalf("first contact = %+v", cs[0])
	}
	if MaxNode(cs) != 2 {
		t.Fatalf("MaxNode = %d", MaxNode(cs))
	}
}

func TestParseContactsErrors(t *testing.T) {
	bad := []string{
		"",              // empty
		"0 1 10\n",      // short
		"x 1 10 20\n",   // bad id
		"0 0 10 20\n",   // self contact
		"0 1 20 10\n",   // inverted interval
		"-1 1 10 20\n",  // negative id
		"0 1 10 20 5\n", // too many fields
	}
	for _, in := range bad {
		if _, err := ParseContacts(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseContacts(%q) accepted", in)
		}
	}
}

// TestParseErrorsCarryLineNumbers pins the diagnostic contract: every parse
// failure — including a record the scanner itself chokes on — names the
// offending line.
func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		parse func(string) error
		in    string
		want  string
	}{
		{"contacts short record", func(s string) error {
			_, err := ParseContacts(strings.NewReader(s))
			return err
		}, "0 1 10 60\n1 2 30\n", "line 2"},
		{"contacts oversized record", func(s string) error {
			_, err := ParseContacts(strings.NewReader(s))
			return err
		}, "0 1 10 60\n" + strings.Repeat("9", 2<<20), "line 2"},
		{"cab truncated record", func(s string) error {
			_, err := ParseCab(strings.NewReader(s))
			return err
		}, "37.7 -122.4 0 100\n37.8 -122.5 1\n", "line 2"},
		{"cab oversized record", func(s string) error {
			_, err := ParseCab(strings.NewReader(s))
			return err
		}, strings.Repeat("x", 2<<20), "line 1"},
		{"one extra fields", func(s string) error {
			_, err := ParseONE(strings.NewReader(s))
			return err
		}, "0 1 0 10 0 10\n5 a 3 4 7\n", "line 2"},
		{"one oversized record", func(s string) error {
			_, err := ParseONE(strings.NewReader(s))
			return err
		}, "0 1 0 10 0 10\n5 a 3 4\n" + strings.Repeat("1 ", 1<<20), "line 3"},
	}
	for _, tc := range cases {
		err := tc.parse(tc.in)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

func TestWriteContactsRoundTrip(t *testing.T) {
	in := []Contact{
		{A: 3, B: 1, Start: 50, End: 70},
		{A: 0, B: 1, Start: 10, End: 60},
	}
	var buf bytes.Buffer
	if err := WriteContacts(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Written sorted by start.
	if !strings.HasPrefix(buf.String(), "0 1 10 60\n") {
		t.Fatalf("not sorted:\n%s", buf.String())
	}
	out, err := ParseContacts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1] != in[0] {
		t.Fatalf("round trip = %+v", out)
	}
	if MaxNode(nil) != -1 {
		t.Fatal("MaxNode(nil) != -1")
	}
}
