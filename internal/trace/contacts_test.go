package trace

import (
	"bytes"
	"strings"
	"testing"
)

const contactTrace = `# infocom-style contact trace
0 1 10 60
1 2 30 90
0 2 120 150
`

func TestParseContacts(t *testing.T) {
	cs, err := ParseContacts(strings.NewReader(contactTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("contacts = %d", len(cs))
	}
	if cs[0] != (Contact{A: 0, B: 1, Start: 10, End: 60}) {
		t.Fatalf("first contact = %+v", cs[0])
	}
	if MaxNode(cs) != 2 {
		t.Fatalf("MaxNode = %d", MaxNode(cs))
	}
}

func TestParseContactsErrors(t *testing.T) {
	bad := []string{
		"",              // empty
		"0 1 10\n",      // short
		"x 1 10 20\n",   // bad id
		"0 0 10 20\n",   // self contact
		"0 1 20 10\n",   // inverted interval
		"-1 1 10 20\n",  // negative id
		"0 1 10 20 5\n", // too many fields
	}
	for _, in := range bad {
		if _, err := ParseContacts(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseContacts(%q) accepted", in)
		}
	}
}

func TestWriteContactsRoundTrip(t *testing.T) {
	in := []Contact{
		{A: 3, B: 1, Start: 50, End: 70},
		{A: 0, B: 1, Start: 10, End: 60},
	}
	var buf bytes.Buffer
	if err := WriteContacts(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Written sorted by start.
	if !strings.HasPrefix(buf.String(), "0 1 10 60\n") {
		t.Fatalf("not sorted:\n%s", buf.String())
	}
	out, err := ParseContacts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1] != in[0] {
		t.Fatalf("round trip = %+v", out)
	}
	if MaxNode(nil) != -1 {
		t.Fatal("MaxNode(nil) != -1")
	}
}
