package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
)

// The ONE simulator's ExternalMovement format: a header line
//
//	minTime maxTime minX maxX minY maxY [minZ maxZ]
//
// followed by one sample per line,
//
//	time nodeID xPos yPos
//
// sorted by time. These helpers let fleets round-trip with ONE so scenarios
// can be cross-validated against the simulator the paper used.

// ParseONE reads an external-movement trace into a fleet. Node ids are
// remapped to dense indices in first-appearance order; times are shifted so
// the earliest sample is t = 0 and coordinates so the area minimum is the
// origin.
func ParseONE(r io.Reader) (*Fleet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty ONE movement file")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 && len(header) != 8 {
		return nil, fmt.Errorf("trace: ONE header has %d fields, want 6 or 8", len(header))
	}
	hf := make([]float64, len(header))
	for i, f := range header {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: ONE header field %d: %v", i, err)
		}
		hf[i] = v
	}
	minT, minX, maxX, minY, maxY := hf[0], hf[2], hf[3], hf[4], hf[5]
	if maxX < minX || maxY < minY {
		return nil, fmt.Errorf("trace: ONE header area inverted")
	}

	idx := map[string]int{}
	var paths [][]mobility.TimedPoint
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: time: %v", lineNo, err)
		}
		x, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: x: %v", lineNo, err)
		}
		y, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: y: %v", lineNo, err)
		}
		id, ok := idx[fields[1]]
		if !ok {
			id = len(paths)
			idx[fields[1]] = id
			paths = append(paths, nil)
		}
		paths[id] = append(paths[id], mobility.TimedPoint{
			T: t - minT,
			P: geo.Point{X: x - minX, Y: y - minY},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("trace: ONE movement file has no samples")
	}
	for i := range paths {
		pts := paths[i]
		sort.SliceStable(pts, func(a, b int) bool { return pts[a].T < pts[b].T })
	}
	return &Fleet{
		Paths: paths,
		Area:  geo.Rect{Max: geo.Point{X: maxX - minX, Y: maxY - minY}},
	}, nil
}

// WriteONE writes the fleet in the ONE external-movement format, sampling
// is whatever the fleet's waypoints are (one line per waypoint), globally
// sorted by time as ONE requires.
func WriteONE(w io.Writer, f *Fleet) error {
	type row struct {
		t  float64
		id int
		p  geo.Point
	}
	var rows []row
	minT, maxT := 0.0, 0.0
	first := true
	for id, pts := range f.Paths {
		for _, tp := range pts {
			rows = append(rows, row{tp.T, id, tp.P})
			if first || tp.T < minT {
				minT = tp.T
			}
			if first || tp.T > maxT {
				maxT = tp.T
			}
			first = false
		}
	}
	if first {
		return fmt.Errorf("trace: empty fleet")
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].t != rows[j].t {
			return rows[i].t < rows[j].t
		}
		return rows[i].id < rows[j].id
	})
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%g %g %g %g %g %g\n",
		minT, maxT, f.Area.Min.X, f.Area.Max.X, f.Area.Min.Y, f.Area.Max.Y)
	for _, r := range rows {
		fmt.Fprintf(bw, "%g %d %g %g\n", r.t, r.id, r.p.X, r.p.Y)
	}
	return bw.Flush()
}
