package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sdsrp/internal/geo"
	"sdsrp/internal/mobility"
	"sdsrp/internal/rng"
)

// Fleet is a set of per-node trajectories in local metres, ready to play
// back through mobility.Path. All trajectories share a common time origin
// of 0 and a common bounding area.
type Fleet struct {
	Paths [][]mobility.TimedPoint
	Area  geo.Rect
}

// Nodes returns the fleet size.
func (f *Fleet) Nodes() int { return len(f.Paths) }

// Models instantiates one playback mobility model per trajectory.
func (f *Fleet) Models() ([]mobility.Model, error) {
	out := make([]mobility.Model, len(f.Paths))
	for i, pts := range f.Paths {
		p, err := mobility.NewPath(pts)
		if err != nil {
			return nil, fmt.Errorf("trace: node %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// FromSamples builds a fleet from per-cab GPS samples. Coordinates are
// projected with proj, times are shifted so the earliest sample across all
// cabs is t = 0, and the area is the bounding box over every fix (padded by
// pad metres on each side, translated so the minimum corner is the origin).
// Cabs with no samples are skipped. maxNodes > 0 truncates the fleet (the
// paper uses "the first 200 taxis"); 0 keeps everything.
func FromSamples(cabs [][]Sample, proj Projection, pad float64, maxNodes int) (*Fleet, error) {
	if maxNodes > 0 && len(cabs) > maxNodes {
		cabs = cabs[:maxNodes]
	}
	var t0 int64
	first := true
	for _, c := range cabs {
		if len(c) == 0 {
			continue
		}
		if first || c[0].Time < t0 {
			t0 = c[0].Time
			first = false
		}
	}
	if first {
		return nil, fmt.Errorf("trace: no samples in any cab")
	}
	f := &Fleet{}
	var lo, hi geo.Point
	haveBounds := false
	for _, c := range cabs {
		if len(c) == 0 {
			continue
		}
		pts := make([]mobility.TimedPoint, 0, len(c))
		for _, s := range c {
			p := proj.ToMeters(s.Lat, s.Lon)
			pts = append(pts, mobility.TimedPoint{T: float64(s.Time - t0), P: p})
			if !haveBounds {
				lo, hi = p, p
				haveBounds = true
			} else {
				if p.X < lo.X {
					lo.X = p.X
				}
				if p.Y < lo.Y {
					lo.Y = p.Y
				}
				if p.X > hi.X {
					hi.X = p.X
				}
				if p.Y > hi.Y {
					hi.Y = p.Y
				}
			}
		}
		f.Paths = append(f.Paths, pts)
	}
	// Translate so the padded minimum corner is the origin.
	shift := geo.Vec{X: -(lo.X - pad), Y: -(lo.Y - pad)}
	for _, pts := range f.Paths {
		for i := range pts {
			pts[i].P = pts[i].P.Add(shift)
		}
	}
	f.Area = geo.Rect{Min: geo.Point{}, Max: geo.Point{X: hi.X - lo.X + 2*pad, Y: hi.Y - lo.Y + 2*pad}}
	return f, nil
}

// LoadDir reads every regular file in dir as a cab file (the dataset ships
// one `new_<id>.txt` per cab) in lexical order and assembles a fleet.
func LoadDir(dir string, proj Projection, pad float64, maxNodes int) (*Fleet, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var cabs [][]Sample
	for _, name := range names {
		fp, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		samples, perr := ParseCab(fp)
		fp.Close()
		if perr != nil {
			return nil, fmt.Errorf("trace: %s: %w", name, perr)
		}
		cabs = append(cabs, samples)
	}
	return FromSamples(cabs, proj, pad, maxNodes)
}

// SynthesizeConfig controls the synthetic EPFL substitute.
type SynthesizeConfig struct {
	Taxi           mobility.TaxiConfig
	Nodes          int
	Duration       float64 // seconds of trace
	SampleInterval float64 // GPS fix period (the real dataset averages ~60s)
	Seed           uint64
}

// DefaultSynthesizeConfig mirrors the paper's Table III: 200 taxis over the
// first 18 000 s, sampled every 30 s.
func DefaultSynthesizeConfig() SynthesizeConfig {
	return SynthesizeConfig{
		Taxi:           mobility.DefaultTaxiConfig(),
		Nodes:          200,
		Duration:       18000,
		SampleInterval: 30,
		Seed:           1,
	}
}

// Synthesize generates a fleet by driving Taxi models and sampling their
// positions at the GPS period, exactly as a cab's GPS logger would.
// Playback through mobility.Path therefore sees the same piecewise-linear
// approximation a real trace gives.
func Synthesize(cfg SynthesizeConfig) *Fleet {
	root := rng.New(cfg.Seed).Split("trace-synth")
	f := &Fleet{Area: cfg.Taxi.Area}
	for i := 0; i < cfg.Nodes; i++ {
		taxi := mobility.NewTaxi(cfg.Taxi, root.SplitIndex("taxi", i))
		var pts []mobility.TimedPoint
		for t := 0.0; t <= cfg.Duration; t += cfg.SampleInterval {
			pts = append(pts, mobility.TimedPoint{T: t, P: taxi.Pos(t)})
		}
		f.Paths = append(f.Paths, pts)
	}
	return f
}

// ToSamples converts a fleet back to GPS samples (for writing cabspotting
// files with WriteCab). epoch is the unix time of t = 0.
func (f *Fleet) ToSamples(proj Projection, epoch int64) [][]Sample {
	out := make([][]Sample, len(f.Paths))
	for i, pts := range f.Paths {
		samples := make([]Sample, len(pts))
		for j, tp := range pts {
			lat, lon := proj.ToGPS(tp.P)
			samples[j] = Sample{Lat: lat, Lon: lon, Occupied: j%2 == 0, Time: epoch + int64(tp.T)}
		}
		out[i] = samples
	}
	return out
}
