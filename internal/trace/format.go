// Package trace handles mobility traces in the CRAWDAD epfl/mobility
// ("cabspotting") format the paper evaluates on, plus a synthetic generator
// that stands in for the real dataset (see DESIGN.md §4).
//
// The cabspotting format is one file per cab, each line
//
//	<latitude> <longitude> <occupancy> <unix time>
//
// ordered newest-first. The parser accepts any ordering and returns samples
// sorted oldest-first.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one GPS fix of one cab.
type Sample struct {
	Lat, Lon float64
	Occupied bool
	Time     int64 // unix seconds
}

// ParseCab reads one cab file. Blank lines and lines starting with '#' are
// skipped; malformed lines are an error. Samples are returned sorted by
// ascending time.
func ParseCab(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		lat, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: latitude: %v", lineNo, err)
		}
		lon, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: longitude: %v", lineNo, err)
		}
		occ, err := strconv.Atoi(fields[2])
		if err != nil || (occ != 0 && occ != 1) {
			return nil, fmt.Errorf("trace: line %d: occupancy must be 0 or 1", lineNo)
		}
		ts, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: time: %v", lineNo, err)
		}
		out = append(out, Sample{Lat: lat, Lon: lon, Occupied: occ == 1, Time: ts})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// WriteCab writes samples in the cabspotting layout (newest first, as the
// original dataset ships).
func WriteCab(w io.Writer, samples []Sample) error {
	sorted := append([]Sample(nil), samples...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time > sorted[j].Time })
	bw := bufio.NewWriter(w)
	for _, s := range sorted {
		occ := 0
		if s.Occupied {
			occ = 1
		}
		if _, err := fmt.Fprintf(bw, "%.5f %.5f %d %d\n", s.Lat, s.Lon, occ, s.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}
