package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sdsrp/internal/obs"
	"sdsrp/internal/world"
)

// TestGoldenTraceByteIdentical proves the optimized hot paths did not change
// simulation behaviour: a traced run of the smoke scenario must be
// byte-identical to testdata/golden_trace.jsonl, which was captured from the
// tree BEFORE the event-pool, policy-ordering, estimate-memo, and scan-reuse
// optimizations landed. Any divergence in event order, timing, RNG draws, or
// metric values shows up here as the first differing line.
func TestGoldenTraceByteIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.jsonl"))
	if err != nil {
		t.Fatalf("read golden fixture: %v", err)
	}

	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	w, err := world.Build(SmokeScenario(), world.WithTracer(jsonl))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	got := buf.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("trace diverges from golden fixture at line %d:\n  golden:  %s\n  current: %s",
				i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("trace length changed: golden %d lines, current %d lines", len(wantLines), len(gotLines))
}
