package bench

import (
	"fmt"
	"strings"
)

// Delta is one case's baseline-to-current comparison.
type Delta struct {
	Name string
	// Base / Cur are the two measurements (Base zero-valued when the case
	// is new, Cur zero-valued when it disappeared).
	Base, Cur Perf
	// NsPct / AllocPct are the relative changes in ns/op and allocs/op,
	// in percent; positive means the current run is slower / allocates more.
	NsPct, AllocPct float64
	// SimChanged marks a digest mismatch: the two runs did not simulate the
	// same thing, so the perf numbers are not comparable.
	SimChanged bool
	// Missing / New flag cases present in only one report.
	Missing, New bool
}

// Compare diffs cur against base, case by case in cur's (sorted) order;
// baseline-only cases are appended as Missing.
func Compare(base, cur *Report) []Delta {
	var out []Delta
	for _, c := range cur.Cases {
		d := Delta{Name: c.Name, Cur: c.Perf}
		if b := base.Case(c.Name); b == nil {
			d.New = true
		} else {
			d.Base = b.Perf
			d.SimChanged = b.Sim != c.Sim
			d.NsPct = pctChange(float64(b.Perf.NsPerOp), float64(c.Perf.NsPerOp))
			d.AllocPct = pctChange(float64(b.Perf.AllocsPerOp), float64(c.Perf.AllocsPerOp))
		}
		out = append(out, d)
	}
	for _, b := range base.Cases {
		if cur.Case(b.Name) == nil {
			out = append(out, Delta{Name: b.Name, Base: b.Perf, Missing: true})
		}
	}
	return out
}

func pctChange(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// Regressions filters deltas to the ones that should fail the gate: ns/op
// regressions beyond maxPct, and structural problems (digest changes,
// vanished cases) that make the comparison itself unsound. Allocation
// growth alone does not gate — it shows in the report but only costs wall
// time indirectly, and ns/op already captures that.
func Regressions(deltas []Delta, maxPct float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		switch {
		case d.New:
			// New cases have no baseline to regress against.
		case d.Missing, d.SimChanged:
			out = append(out, d)
		case d.NsPct > maxPct:
			out = append(out, d)
		}
	}
	return out
}

// FormatDeltas renders the human-readable delta report: one aligned row per
// case with ns/op, allocs/op, and events/sec movements.
func FormatDeltas(deltas []Delta, maxPct float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %14s %14s %8s %14s %14s %8s  %s\n",
		"case", "base ns/op", "cur ns/op", "Δns", "base allocs", "cur allocs", "Δallocs", "note")
	for _, d := range deltas {
		note := ""
		switch {
		case d.New:
			note = "new case (no baseline)"
		case d.Missing:
			note = "MISSING from current run"
		case d.SimChanged:
			note = "SIM DIGEST CHANGED — perf delta not comparable"
		case d.NsPct > maxPct:
			note = fmt.Sprintf("REGRESSION (> %+.1f%%)", maxPct)
		case d.NsPct < -maxPct:
			note = "improvement"
		}
		fmt.Fprintf(&b, "%-18s %14d %14d %7.1f%% %14d %14d %7.1f%%  %s\n",
			d.Name, d.Base.NsPerOp, d.Cur.NsPerOp, d.NsPct,
			d.Base.AllocsPerOp, d.Cur.AllocsPerOp, d.AllocPct, note)
	}
	return b.String()
}
