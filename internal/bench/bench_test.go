package bench

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// fakeSim builds a distinct digest for table-driven tests.
func fakeSim(events uint64) Sim {
	return Sim{Runs: 1, Events: events, Created: 10, Delivered: 5, Fingerprint: "feed"}
}

func TestMeasureAssertsDeterminism(t *testing.T) {
	calls := 0
	flaky := Case{Name: "flaky", Run: func() (Sim, error) {
		calls++
		return fakeSim(uint64(calls)), nil
	}}
	if _, _, err := Measure(flaky, 3); err == nil {
		t.Fatal("want error for a digest that varies between iterations")
	}

	stable := Case{Name: "stable", Run: func() (Sim, error) { return fakeSim(7), nil }}
	sim, perf, err := Measure(stable, 3)
	if err != nil {
		t.Fatalf("stable case: %v", err)
	}
	if sim != fakeSim(7) {
		t.Fatalf("digest = %+v", sim)
	}
	if perf.Iters != 3 || perf.NsPerOp < 0 || perf.WallSeconds <= 0 {
		t.Fatalf("perf = %+v", perf)
	}
}

func TestMeasurePropagatesRunError(t *testing.T) {
	boom := errors.New("boom")
	c := Case{Name: "err", Run: func() (Sim, error) { return Sim{}, boom }}
	if _, _, err := Measure(c, 2); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestFilterCasesRejectsUnknownNames(t *testing.T) {
	if _, err := filterCases(Suite(), []string{"no-such-case"}); err == nil {
		t.Fatal("want error for unknown case name")
	}
	got, err := filterCases(Suite(), []string{"table2", "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "table2" || got[1].Name != "smoke" {
		t.Fatalf("filtered = %v", got)
	}
}

func TestSuiteNamesUniqueAndDescribed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Suite() {
		if c.Name == "" || c.Desc == "" || c.Run == nil {
			t.Fatalf("incomplete case %+v", c)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

// TestReportByteStable checks the serialization contract: marshaling is a
// pure function of the report value, perf-stripping zeroes exactly the
// timing fields, and a round trip through disk preserves everything.
func TestReportByteStable(t *testing.T) {
	rep := &Report{
		Schema:    SchemaVersion,
		Suite:     SuiteVersion,
		GoVersion: "go0.test",
		Cases: []CaseResult{
			{Name: "a", Sim: fakeSim(1), Perf: Perf{Iters: 2, NsPerOp: 100}},
			{Name: "b", Sim: fakeSim(2), Perf: Perf{Iters: 2, NsPerOp: 200}},
		},
	}
	one, err := rep.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	two, err := rep.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, two) {
		t.Fatal("MarshalStable is not byte-stable")
	}

	stripped := rep.ClonePerfStripped()
	if stripped.Cases[0].Perf != (Perf{}) || stripped.Cases[1].Perf != (Perf{}) {
		t.Fatal("ClonePerfStripped left perf data behind")
	}
	if rep.Cases[0].Perf.NsPerOp != 100 {
		t.Fatal("ClonePerfStripped mutated the original")
	}
	if stripped.Cases[0].Sim != rep.Cases[0].Sim {
		t.Fatal("ClonePerfStripped altered the sim digest")
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	three, err := back.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, three) {
		t.Fatal("disk round trip changed the report bytes")
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	rep := &Report{Schema: SchemaVersion + 1, Suite: SuiteVersion}
	path := filepath.Join(t.TempDir(), "future.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("want schema-version error")
	}
}

func TestCompareAndRegressions(t *testing.T) {
	base := &Report{Cases: []CaseResult{
		{Name: "fast", Sim: fakeSim(1), Perf: Perf{NsPerOp: 1000, AllocsPerOp: 100}},
		{Name: "same", Sim: fakeSim(2), Perf: Perf{NsPerOp: 1000, AllocsPerOp: 100}},
		{Name: "gone", Sim: fakeSim(3), Perf: Perf{NsPerOp: 1000}},
		{Name: "drift", Sim: fakeSim(4), Perf: Perf{NsPerOp: 1000}},
	}}
	cur := &Report{Cases: []CaseResult{
		{Name: "fast", Sim: fakeSim(1), Perf: Perf{NsPerOp: 1500, AllocsPerOp: 50}},
		{Name: "same", Sim: fakeSim(2), Perf: Perf{NsPerOp: 1005, AllocsPerOp: 100}},
		{Name: "drift", Sim: fakeSim(99), Perf: Perf{NsPerOp: 900}},
		{Name: "fresh", Sim: fakeSim(5), Perf: Perf{NsPerOp: 10}},
	}}

	deltas := Compare(base, cur)
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["fast"]; d.NsPct != 50 || d.AllocPct != -50 {
		t.Fatalf("fast delta = %+v", d)
	}
	if !byName["gone"].Missing {
		t.Fatal("gone should be Missing")
	}
	if !byName["drift"].SimChanged {
		t.Fatal("drift should flag SimChanged")
	}
	if !byName["fresh"].New {
		t.Fatal("fresh should be New")
	}

	regs := Regressions(deltas, 10)
	names := map[string]bool{}
	for _, d := range regs {
		names[d.Name] = true
	}
	// fast regressed 50% > 10%; gone vanished; drift changed digests.
	// same (+0.5%) passes; fresh is new and cannot regress.
	for _, want := range []string{"fast", "gone", "drift"} {
		if !names[want] {
			t.Fatalf("regressions missing %q: %v", want, regs)
		}
	}
	if names["same"] || names["fresh"] {
		t.Fatalf("false positives in %v", regs)
	}

	text := FormatDeltas(deltas, 10)
	for _, want := range []string{"REGRESSION", "MISSING", "SIM DIGEST CHANGED", "new case"} {
		if !strings.Contains(text, want) {
			t.Fatalf("delta report lacks %q:\n%s", want, text)
		}
	}
}

// TestSmokeCaseMatchesGoldenCounters ties the suite's smoke case to the
// golden-trace fixture scenario: same event count, creations, deliveries.
func TestSmokeCaseMatchesGoldenCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full smoke simulation")
	}
	cases, err := filterCases(Suite(), []string{"smoke"})
	if err != nil {
		t.Fatal(err)
	}
	sim, _, err := Measure(cases[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Runs != 1 || sim.Events != 3287 || sim.Created != 80 || sim.Delivered != 57 {
		t.Fatalf("smoke digest drifted from the golden scenario: %+v", sim)
	}
}
