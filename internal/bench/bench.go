// Package bench is the reproducible performance-regression harness behind
// cmd/dtnbench and the root `go test -bench` targets.
//
// The harness runs a fixed suite of scenarios (Suite): the paper's Table II
// and Table III configurations at full parameters, the Fig. 8 sweeps and a
// resilience-churn sweep at the shared reduced benchmark scale
// (BenchOptions), and a seconds-scale smoke case. Every case is a
// deterministic simulation workload, so each measurement run yields two
// kinds of data:
//
//   - a Sim digest — engine event counts, headline stats counters, and an
//     FNV-64a fingerprint of the simulation's observable results. The digest
//     must be identical on every iteration and every machine; the harness
//     fails a case whose digest varies between iterations, and the
//     regression report flags baselines whose digests differ (a behaviour
//     change, not just a speed change).
//   - a Perf measurement — wall time, ns/op (minimum over iterations),
//     allocations and bytes per op, and events/sec. These are the only
//     fields that legitimately differ between two runs of the same tree.
//
// Reports serialize to byte-stable JSON (Report / WriteJSON): struct-ordered
// keys, no maps, no timestamps. Two consecutive runs of the same binary
// produce byte-identical files modulo the Perf blocks — ClonePerfStripped
// gives the canonical comparable form. Compare diffs two reports into per-
// case deltas; Regressions applies the gate threshold that `dtnbench
// -baseline` turns into a nonzero exit.
//
// PERFORMANCE.md documents the performance model the suite exercises, the
// BENCH_<n>.json conventions, and the regression-gate policy.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"
)

// Case is one benchmark workload: a named, deterministic simulation run (or
// sweep of runs) whose digest must be reproducible bit-for-bit.
type Case struct {
	// Name identifies the case in reports and -cases filters.
	Name string
	// Desc is the one-line description printed by -list.
	Desc string
	// Run executes the workload once and returns its deterministic digest.
	Run func() (Sim, error)
}

// Sim is the deterministic digest of one case execution: how much work the
// simulation did and what it computed. Every field must be identical across
// iterations, runs, and machines for a given source tree — this is the
// byte-stability contract of BENCH_<n>.json.
type Sim struct {
	// Runs is the number of world executions the case performed (1 for
	// single-scenario cases, policies × points × seeds for sweeps).
	Runs int `json:"runs"`
	// Events is the total number of engine events dispatched across runs.
	Events uint64 `json:"events"`
	// PeakQueue is the deepest pending-event queue across runs.
	PeakQueue int `json:"peak_queue"`
	// Created / Delivered / PolicyDrops / Contacts are the summed headline
	// counters across runs.
	Created     int `json:"created"`
	Delivered   int `json:"delivered"`
	PolicyDrops int `json:"policy_drops"`
	Contacts    int `json:"contacts"`
	// Fingerprint is an FNV-64a hash over the case's observable results
	// (metric bit patterns), hex-encoded. Two trees that disagree on any
	// simulated outcome disagree here.
	Fingerprint string `json:"fingerprint"`
}

// Perf is the measured (non-deterministic) half of a case result. These are
// the "timing fields" excluded from byte-stability comparisons.
type Perf struct {
	// Iters is how many times the case was executed for this measurement.
	Iters int `json:"iters"`
	// NsPerOp is the minimum wall time of one execution, in nanoseconds —
	// the least-noise estimate of the workload's cost.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp are the minimum heap allocation count and
	// byte volume of one execution.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// WallSeconds is the total wall time spent across all iterations.
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec is the engine event throughput of the fastest iteration.
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakHeapBytes is the high-water HeapAlloc observed by a background
	// sampler while the case ran, maximised across iterations — the
	// memory-ceiling gate for large-fleet cases (sampled every few
	// milliseconds, so short spikes between samples can be missed; the gate
	// budgets leave headroom for that).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// CaseResult pairs a case's deterministic digest with its measurement.
type CaseResult struct {
	Name string `json:"name"`
	Sim  Sim    `json:"sim"`
	Perf Perf   `json:"perf"`
}

// Config tunes a suite run.
type Config struct {
	// Iters is the number of measured executions per case (default 3;
	// minimum 2 so the determinism assertion has something to compare).
	Iters int
	// Cases filters the suite by name; empty runs every case.
	Cases []string
	// Progress, when set, receives a line per case as it starts.
	Progress func(msg string)
}

// RunSuite executes the (filtered) suite and assembles a Report. A case
// whose Sim digest differs between iterations aborts the whole run with an
// error: a non-deterministic simulator cannot be benchmarked, only fixed.
func RunSuite(cfg Config) (*Report, error) {
	iters := cfg.Iters
	if iters <= 0 {
		iters = 3
	}
	if iters < 2 {
		iters = 2
	}
	cases, err := filterCases(Suite(), cfg.Cases)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema:    SchemaVersion,
		Suite:     SuiteVersion,
		GoVersion: runtime.Version(),
	}
	for _, c := range cases {
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("case %s (%d iters)", c.Name, iters))
		}
		sim, perf, err := Measure(c, iters)
		if err != nil {
			return nil, fmt.Errorf("bench: case %s: %w", c.Name, err)
		}
		rep.Cases = append(rep.Cases, CaseResult{Name: c.Name, Sim: sim, Perf: perf})
	}
	sort.Slice(rep.Cases, func(i, j int) bool { return rep.Cases[i].Name < rep.Cases[j].Name })
	return rep, nil
}

// filterCases resolves the -cases selection against the suite, rejecting
// unknown names so a typo cannot silently pass an empty gate.
func filterCases(all []Case, names []string) ([]Case, error) {
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Case, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	out := make([]Case, 0, len(names))
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("bench: unknown case %q (use -list)", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// Measure executes c iters times, asserting the Sim digest is identical on
// every iteration, and returns the digest plus the aggregated measurement.
// Minimums (not means) are reported for ns/op and allocs/op: the fastest,
// leanest iteration is the closest observation of the workload's true cost.
func Measure(c Case, iters int) (Sim, Perf, error) {
	if iters < 1 {
		iters = 1
	}
	var sim Sim
	perf := Perf{Iters: iters, NsPerOp: math.MaxInt64, AllocsPerOp: math.MaxInt64, BytesPerOp: math.MaxInt64}
	for i := 0; i < iters; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		stopSampler := sampleHeapPeak(&perf.PeakHeapBytes)
		start := time.Now()
		s, err := c.Run()
		elapsed := time.Since(start)
		stopSampler()
		runtime.ReadMemStats(&after)
		if err != nil {
			return Sim{}, Perf{}, err
		}
		if i == 0 {
			sim = s
		} else if s != sim {
			return Sim{}, Perf{}, fmt.Errorf("non-deterministic digest: iter 1 %+v, iter %d %+v", sim, i+1, s)
		}
		perf.WallSeconds += elapsed.Seconds()
		if ns := elapsed.Nanoseconds(); ns < perf.NsPerOp {
			perf.NsPerOp = ns
		}
		if allocs := int64(after.Mallocs - before.Mallocs); allocs < perf.AllocsPerOp {
			perf.AllocsPerOp = allocs
		}
		if bytes := int64(after.TotalAlloc - before.TotalAlloc); bytes < perf.BytesPerOp {
			perf.BytesPerOp = bytes
		}
	}
	if perf.NsPerOp > 0 {
		perf.EventsPerSec = float64(sim.Events) / (float64(perf.NsPerOp) / 1e9)
	}
	return sim, perf, nil
}

// sampleHeapPeak starts a background goroutine polling runtime.MemStats and
// raising *peak to the highest HeapAlloc it observes. The returned stop
// function takes one final reading, waits for the goroutine to exit, and
// leaves *peak at the maximum across every call sharing it (Measure passes
// the same pointer for all iterations). The sampler goroutine touches no
// simulation state — the engine stays strictly single-threaded — and is
// gone before Measure reads its post-run MemStats.
func sampleHeapPeak(peak *uint64) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	raise := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > *peak {
			*peak = ms.HeapAlloc
		}
	}
	go func() {
		defer close(exited)
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				raise()
			}
		}
	}()
	return func() {
		close(done)
		<-exited
		raise()
	}
}
