package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion is the BENCH_<n>.json format version.
const SchemaVersion = 1

// Report is one suite run, as serialized to BENCH_<n>.json. All fields are
// structs and slices (no maps), so encoding/json emits them in declaration
// order and the file is byte-stable: two runs of the same tree differ only
// inside the Perf blocks.
type Report struct {
	// Schema is the file-format version (SchemaVersion).
	Schema int `json:"schema"`
	// Suite is the suite-definition tag (SuiteVersion); reports with
	// different tags measured different workloads.
	Suite string `json:"suite"`
	// GoVersion records the toolchain the run was built with.
	GoVersion string `json:"go_version"`
	// Cases holds one entry per executed case, sorted by name.
	Cases []CaseResult `json:"cases"`
}

// Case returns the named case result, or nil.
func (r *Report) Case(name string) *CaseResult {
	for i := range r.Cases {
		if r.Cases[i].Name == name {
			return &r.Cases[i]
		}
	}
	return nil
}

// ClonePerfStripped returns a deep copy with every Perf block zeroed — the
// canonical form for byte-stability comparisons ("identical modulo timing
// fields").
func (r *Report) ClonePerfStripped() *Report {
	out := *r
	out.Cases = make([]CaseResult, len(r.Cases))
	copy(out.Cases, r.Cases)
	for i := range out.Cases {
		out.Cases[i].Perf = Perf{}
	}
	return &out
}

// WriteJSON serializes the report with stable two-space indentation and a
// trailing newline. Output bytes are a pure function of the report value.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MarshalStable returns the exact bytes WriteJSON would emit.
func (r *Report) MarshalStable() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile writes the report to path (0644), replacing any existing file.
func (r *Report) WriteFile(path string) error {
	data, err := r.MarshalStable()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a BENCH_<n>.json, rejecting unknown schema versions so a
// format change cannot be silently misread as a regression.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if rep.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema %d, this tool reads %d", path, rep.Schema, SchemaVersion)
	}
	return &rep, nil
}
