package bench

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"runtime"
	"sync"

	"sdsrp/internal/config"
	"sdsrp/internal/experiment"
	"sdsrp/internal/geo"
	"sdsrp/internal/report"
	"sdsrp/internal/world"
)

// SuiteVersion tags the suite definition embedded in a report. Bump it when
// existing cases change parameters or are removed, so a delta report can
// refuse to compare measurements of different workloads. Adding a case keeps
// the version: Compare reports baseline-absent cases as New without gating
// on them, so old reports stay comparable.
const SuiteVersion = "v1"

// BenchOptions is the shared reduced scale for sweep cases — identical to
// the root `go test -bench` targets (bench_test.go), so dtnbench and the
// testing.B benchmarks measure the same workloads and cannot drift apart.
// Workers is 1 because the harness measures simulation cost, not scheduling.
func BenchOptions() experiment.Options {
	return experiment.Options{
		Scale:   0.05, // 900 simulated seconds
		Nodes:   20,
		Workers: 1,
		Seeds:   []uint64{1},
	}
}

// SmokeScenario is the seconds-scale workload behind the "smoke" case, the
// golden-determinism fixture (testdata/golden_trace.jsonl), and `dtnbench
// -smoke`: a 16-node random-waypoint run small enough for CI yet busy
// enough (tight buffers, short TTL) to exercise eviction, expiry, and the
// full SDSRP priority path.
func SmokeScenario() config.Scenario {
	sc := config.RandomWaypoint()
	sc.Name = "bench-golden"
	sc.Nodes = 16
	sc.Duration = 2400
	sc.TTL = 900
	sc.Area.Max.X = 700
	sc.Area.Max.Y = 700
	sc.MessageSize = 100 * 1000
	sc.MessageSizeHi = 0
	sc.BufferBytes = 300 * 1000
	sc.PolicyName = "SDSRP"
	sc.Seed = 11
	return sc
}

// DenseScanScenario is the lazy-scanner showcase workload: a node count
// high enough that pair bookkeeping dominates (400 nodes, ~80k pairs)
// spread over an area sparse enough that almost every pair is provably out
// of range almost all the time. Traffic is disabled so the measurement
// isolates contact detection — the cost the motion-bounded sweep attacks.
func DenseScanScenario() config.Scenario {
	sc := config.RandomWaypoint()
	sc.Name = "bench-densescan"
	sc.Nodes = 400
	sc.Area = geo.NewRect(15000, 12000)
	sc.Duration = 3600
	sc.Range = 50
	sc.GenIntervalLo = 0 // traffic-free: scanner cost only
	return sc
}

// Scan100kScenario is the kinetic-scanner scale workload: 100 000 nodes —
// a fleet the lazy planner's triangular pair index cannot even represent
// (it refuses at n ≥ 65536) — walking a 250 km square sparse enough that
// nearly every node is parked nearly all the time. Traffic is disabled so
// the measurement isolates contact detection, and the cell size is raised
// to 500 m so cell deadlines span hundreds of ticks. The case doubles as
// the suite's peak-memory gate (Perf.PeakHeapBytes): the kinetic planner's
// state is ~45 B/node, so the whole run must fit a budget the per-pair
// design would blow past by three orders of magnitude. PERFORMANCE.md §7
// documents the cost model and the path from this case to 1M nodes.
// Scan100kPeakHeapBudget is the memory ceiling the scan100k case is gated
// against, both on fresh runs (TestScan100kKineticScalesWithinBudget) and on
// the committed baseline (TestCommittedScan100kPeakHeapWithinBudget). The
// observed peak is ~135 MB — hosts, models, and RNG substreams dominate; the
// planner itself is ~45 B/node — so 256 MB leaves ~1.9× headroom for
// allocator and GC variance without ever admitting a per-pair design (the
// lazy sweep's arrays would want ~180 GB here).
const Scan100kPeakHeapBudget = 256 << 20

func Scan100kScenario() config.Scenario {
	sc := config.RandomWaypoint()
	sc.Name = "bench-scan100k"
	sc.Nodes = 100_000
	sc.Area = geo.NewRect(250_000, 250_000)
	sc.Duration = 300
	sc.GenIntervalLo = 0 // traffic-free: scanner cost only
	sc.ScanMode = "kinetic"
	sc.CellSize = 500
	return sc
}

// MCWorkers is the worker count the multi-core (-mc) cases run at:
// runtime.NumCPU(), floored at 2 so the sharded scan path is exercised even
// on a single-core host (where the goroutines merely interleave). The -mc
// digests are host-independent either way — traces are byte-identical at
// every worker count — only the wall-clock halves of the report vary.
func MCWorkers() int {
	if n := runtime.NumCPU(); n > 2 {
		return n
	}
	return 2
}

// withWorkers lifts a scenario generator into its sharded-scan twin.
func withWorkers(gen func() config.Scenario, workers int) func() config.Scenario {
	return func() config.Scenario {
		sc := gen()
		sc.Workers = workers
		return sc
	}
}

// Suite returns the fixed benchmark suite, in definition order. Names are
// stable identifiers: reports key on them, and -cases filters by them.
// Every "-mc" case is the same workload as its serial namesake at
// Workers=MCWorkers(); its Sim digest must be identical to the serial one
// (TestMultiCoreCasesMatchSerialDigests), so the pair measures scheduling
// overhead/speedup with simulation outcome held fixed.
func Suite() []Case {
	return []Case{
		scenarioCase("smoke", "16-node RWP smoke run (seconds-scale, golden-trace scenario)", SmokeScenario),
		scenarioCase("smoke-mc", "smoke scenario under the sharded parallel scan (workers=NumCPU)", withWorkers(SmokeScenario, MCWorkers())),
		scenarioCase("table2", "full Table II baseline: 100-node RWP, 18000 s, SDSRP", config.RandomWaypoint),
		scenarioCase("table2-mc", "Table II under the sharded parallel scan (workers=NumCPU)", withWorkers(config.RandomWaypoint, MCWorkers())),
		scenarioCase("table3", "full Table III: 200-taxi EPFL substitute, 18000 s, SDSRP", config.EPFL),
		scenarioCase("table3-mc", "Table III under the sharded parallel scan (workers=NumCPU)", withWorkers(config.EPFL, MCWorkers())),
		scenarioCase("densescan", "400-node traffic-free RWP over 15×12 km: contact-scan cost in isolation", DenseScanScenario),
		scenarioCase("scan100k", "100k-node traffic-free RWP over 250×250 km under the kinetic scanner (peak-memory gate)", Scan100kScenario),
		experimentCase("fig8copies", "Fig. 8 a-c sweep: metrics vs initial copies (reduced scale)"),
		experimentCase("fig8buffer", "Fig. 8 d-f sweep: metrics vs buffer size (reduced scale)"),
		experimentCase("fig8rate", "Fig. 8 g-i sweep: metrics vs generation rate (reduced scale)"),
		experimentCase("resilience-churn", "resilience sweep: metrics vs node crash/reboot churn (reduced scale)"),
	}
}

// scenarioCase wraps a single full-parameter scenario run.
func scenarioCase(name, desc string, gen func() config.Scenario) Case {
	return Case{Name: name, Desc: desc, Run: func() (Sim, error) {
		wld, err := world.Build(gen())
		if err != nil {
			return Sim{}, err
		}
		res, err := wld.Run()
		if err != nil {
			return Sim{}, err
		}
		var d digest
		d.add(res)
		h := fnv.New64a()
		hashResult(h, res)
		return d.sim(h), nil
	}}
}

// experimentCase wraps a registered experiment sweep at BenchOptions scale.
// Engine counters are accumulated commutatively over the OnResult hook, and
// the fingerprint hashes the rendered panels, so the digest is independent
// of result arrival order.
func experimentCase(name, desc string) Case {
	return Case{Name: name, Desc: desc, Run: func() (Sim, error) {
		spec, ok := experiment.ByName(name)
		if !ok {
			return Sim{}, fmt.Errorf("experiment %q not registered", name)
		}
		var (
			//lint:invariant guards the cross-run digest accumulator fed by sweep workers after each run completes; accumulation is commutative and happens outside every engine's dispatch loop
			mu sync.Mutex
			d  digest
		)
		o := BenchOptions()
		o.OnResult = func(r world.Result) {
			mu.Lock()
			d.add(r)
			mu.Unlock()
		}
		panels, err := spec.Run(o)
		if err != nil {
			return Sim{}, err
		}
		if len(panels) == 0 {
			return Sim{}, fmt.Errorf("experiment %q produced no panels", name)
		}
		h := fnv.New64a()
		hashPanels(h, panels)
		return d.sim(h), nil
	}}
}

// digest accumulates per-run engine counters into a Sim. All operations are
// commutative (sums and maxima), so the result does not depend on the order
// runs finish in.
type digest struct {
	runs        int
	events      uint64
	peakQueue   int
	created     int
	delivered   int
	policyDrops int
	contacts    int
}

func (d *digest) add(r world.Result) {
	d.runs++
	d.events += r.Perf.Events
	if r.Perf.PeakQueue > d.peakQueue {
		d.peakQueue = r.Perf.PeakQueue
	}
	d.created += r.Summary.Created
	d.delivered += r.Summary.Delivered
	d.policyDrops += r.Summary.PolicyDrops
	d.contacts += r.Contacts
}

func (d *digest) sim(h hash.Hash64) Sim {
	return Sim{
		Runs:        d.runs,
		Events:      d.events,
		PeakQueue:   d.peakQueue,
		Created:     d.created,
		Delivered:   d.delivered,
		PolicyDrops: d.policyDrops,
		Contacts:    d.contacts,
		Fingerprint: fmt.Sprintf("%016x", h.Sum64()),
	}
}

// hashU64 / hashF64 feed fixed-width big-endian words into the fingerprint.
// Floats hash by bit pattern: two runs agree on the fingerprint iff they
// agree on every bit of every metric.
func hashU64(h hash.Hash64, v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func hashF64(h hash.Hash64, v float64) { hashU64(h, math.Float64bits(v)) }

func hashStr(h hash.Hash64, s string) {
	hashU64(h, uint64(len(s)))
	h.Write([]byte(s))
}

// hashResult fingerprints one run's observable outcome: the full stats
// summary plus contact counts and durations.
func hashResult(h hash.Hash64, r world.Result) {
	s := r.Summary
	for _, v := range []int{
		s.Created, s.Delivered, s.Forwards, s.Started, s.Aborted, s.Refused,
		s.Lost, s.PolicyDrops, s.ExpiredDrops, s.AckPurges, s.Duplicates,
	} {
		hashU64(h, uint64(int64(v)))
	}
	for _, v := range []float64{
		s.DeliveryRatio, s.AvgHops, s.OverheadRatio,
		s.AvgLatency, s.MedianLatency, s.P95Latency,
	} {
		hashF64(h, v)
	}
	hashU64(h, uint64(int64(r.Contacts)))
	hashF64(h, r.MeanContactDuration)
}

// hashPanels fingerprints a sweep's rendered output: every panel, curve
// label, and metric value in presentation order.
func hashPanels(h hash.Hash64, panels []report.Panel) {
	for _, p := range panels {
		hashStr(h, p.ID)
		for _, x := range p.X {
			hashF64(h, x)
		}
		for _, c := range p.Curves {
			hashStr(h, c.Label)
			for _, y := range c.Y {
				hashF64(h, y)
			}
		}
	}
}
