package bench

import (
	"testing"

	"sdsrp/internal/world"
)

// runCase executes one named suite case and returns its Sim digest.
func runCase(t *testing.T, name string) Sim {
	t.Helper()
	for _, c := range Suite() {
		if c.Name == name {
			sim, err := c.Run()
			if err != nil {
				t.Fatalf("case %s: %v", name, err)
			}
			return sim
		}
	}
	t.Fatalf("case %s not in suite", name)
	return Sim{}
}

// TestMultiCoreCasesMatchSerialDigests is the bench half of the parallel-DES
// determinism contract: every -mc case must produce a Sim digest (counters
// and fingerprint alike) identical to its serial namesake. The -mc/serial
// pairs may differ only in the Perf (wall-clock) half of a report.
func TestMultiCoreCasesMatchSerialDigests(t *testing.T) {
	pairs := [][2]string{{"smoke", "smoke-mc"}, {"table2", "table2-mc"}}
	if !testing.Short() {
		pairs = append(pairs, [2]string{"table3", "table3-mc"})
	}
	for _, p := range pairs {
		p := p
		t.Run(p[1], func(t *testing.T) {
			t.Parallel()
			serial := runCase(t, p[0])
			mc := runCase(t, p[1])
			if serial != mc {
				t.Fatalf("digest diverges:\n  %-9s %+v\n  %-9s %+v", p[0], serial, p[1], mc)
			}
		})
	}
}

// TestSmokeMCEngagesShardedScan guards the -mc cases against silently
// degenerating into serial reruns: at workers=2 the smoke geometry (700 m
// wide, 350 m stripes, 100 m radios, 2 m/s fleet) provably admits a
// conservative window, so the sharded path must report window activity.
// (MCWorkers() itself may legitimately fall back on hosts with enough cores
// to shrink stripes below the radio range; the digest identity above holds
// regardless.)
func TestSmokeMCEngagesShardedScan(t *testing.T) {
	sc := withWorkers(SmokeScenario, 2)()
	w, err := world.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Perf.ShardWindows == 0 || res.Perf.ShardBarriers == 0 {
		t.Fatalf("sharded scan inert on smoke at workers=2: %+v", res.Perf)
	}
}
