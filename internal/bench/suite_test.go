package bench

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"sdsrp/internal/world"
)

// runCase executes one named suite case and returns its Sim digest.
func runCase(t *testing.T, name string) Sim {
	t.Helper()
	for _, c := range Suite() {
		if c.Name == name {
			sim, err := c.Run()
			if err != nil {
				t.Fatalf("case %s: %v", name, err)
			}
			return sim
		}
	}
	t.Fatalf("case %s not in suite", name)
	return Sim{}
}

// TestMultiCoreCasesMatchSerialDigests is the bench half of the parallel-DES
// determinism contract: every -mc case must produce a Sim digest (counters
// and fingerprint alike) identical to its serial namesake. The -mc/serial
// pairs may differ only in the Perf (wall-clock) half of a report.
func TestMultiCoreCasesMatchSerialDigests(t *testing.T) {
	pairs := [][2]string{{"smoke", "smoke-mc"}, {"table2", "table2-mc"}}
	if !testing.Short() {
		pairs = append(pairs, [2]string{"table3", "table3-mc"})
	}
	for _, p := range pairs {
		p := p
		t.Run(p[1], func(t *testing.T) {
			t.Parallel()
			serial := runCase(t, p[0])
			mc := runCase(t, p[1])
			if serial != mc {
				t.Fatalf("digest diverges:\n  %-9s %+v\n  %-9s %+v", p[0], serial, p[1], mc)
			}
		})
	}
}

// TestSmokeMCEngagesShardedScan guards the -mc cases against silently
// degenerating into serial reruns: at workers=2 the smoke geometry (700 m
// wide, 350 m stripes, 100 m radios, 2 m/s fleet) provably admits a
// conservative window, so the sharded path must report window activity.
// (MCWorkers() itself may legitimately fall back on hosts with enough cores
// to shrink stripes below the radio range; the digest identity above holds
// regardless.)
func TestSmokeMCEngagesShardedScan(t *testing.T) {
	sc := withWorkers(SmokeScenario, 2)()
	w, err := world.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Perf.ShardWindows == 0 || res.Perf.ShardBarriers == 0 {
		t.Fatalf("sharded scan inert on smoke at workers=2: %+v", res.Perf)
	}
}

// TestScan100kKineticScalesWithinBudget is the live half of the large-fleet
// gate: the scan100k case must run under the kinetic planner without any
// strategy fallback, actually park nodes (the whole point at this scale),
// and keep its sampled peak heap under Scan100kPeakHeapBudget — the
// representability claim the kinetic scanner was built for.
func TestScan100kKineticScalesWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("scan100k is seconds-scale; skipped in -short")
	}
	w, err := world.Build(Scan100kScenario())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Perf.ScanFallback != "" {
		t.Fatalf("scan100k fell back: %q", res.Perf.ScanFallback)
	}
	if res.Perf.PairsSkipped == 0 {
		t.Fatal("kinetic planner parked nothing at 100k nodes")
	}
	var c Case
	for _, sc := range Suite() {
		if sc.Name == "scan100k" {
			c = sc
		}
	}
	_, perf, err := Measure(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if perf.PeakHeapBytes == 0 {
		t.Fatal("peak-heap sampler recorded nothing")
	}
	if perf.PeakHeapBytes > Scan100kPeakHeapBudget {
		t.Fatalf("peak heap %d B exceeds the %d B budget", perf.PeakHeapBytes, Scan100kPeakHeapBudget)
	}
}

// TestCommittedScan100kPeakHeapWithinBudget gates the committed baseline:
// the newest BENCH_<n>.json at the repo root must record a scan100k peak
// heap under budget, so a regression cannot be committed as the next
// baseline either. Baselines predating the case are skipped.
func TestCommittedScan100kPeakHeapWithinBudget(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		t.Skipf("no committed baselines found: %v", err)
	}
	sort.Strings(paths)
	newest := ""
	best := -1
	for _, p := range paths {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(p), "BENCH_%d.json", &n); err == nil && n > best {
			best, newest = n, p
		}
	}
	if newest == "" {
		t.Skip("no numbered baseline")
	}
	rep, err := ReadFile(newest)
	if err != nil {
		t.Fatalf("read %s: %v", newest, err)
	}
	c := rep.Case("scan100k")
	if c == nil {
		t.Skipf("%s predates the scan100k case", newest)
	}
	if c.Perf.PeakHeapBytes == 0 {
		t.Fatalf("%s: scan100k has no recorded peak heap", newest)
	}
	if c.Perf.PeakHeapBytes > Scan100kPeakHeapBudget {
		t.Fatalf("%s: scan100k peak heap %d B exceeds the %d B budget",
			newest, c.Perf.PeakHeapBytes, Scan100kPeakHeapBudget)
	}
}
