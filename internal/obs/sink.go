package obs

import (
	"bufio"
	"io"
)

// Tracer receives every instrumented event of one simulation run. A run is
// single-threaded, so implementations need no locking. Instrumented code
// treats a nil Tracer as "tracing off" and must not call Emit on it.
//
// Emit order is part of the determinism contract: callers must emit in the
// engine's deterministic dispatch order (never from a map iteration — see
// dtnlint's ordered-map-emit check), and sinks must preserve arrival order,
// so the same seed yields a byte-identical event stream.
type Tracer interface {
	Emit(Event)
}

// Multi fans events out to every non-nil sink. It returns nil when no sinks
// remain (so callers keep the zero-cost disabled path), the sink itself when
// only one remains, and a fan-out tracer otherwise.
func Multi(sinks ...Tracer) Tracer {
	live := make([]Tracer, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return multi(live)
	}
}

type multi []Tracer

func (m multi) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// JSONL writes one JSON object per event per line. Output is buffered; call
// Flush when the run finishes. Encoding errors are sticky: the first write
// error stops further output and is reported by Flush.
type JSONL struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 64<<10), buf: make([]byte, 0, 256)}
}

// Emit implements Tracer.
func (j *JSONL) Emit(ev Event) {
	if j.err != nil {
		return
	}
	j.buf = ev.AppendJSON(j.buf[:0])
	j.buf = append(j.buf, '\n')
	_, j.err = j.w.Write(j.buf)
}

// Flush drains the buffer and returns the first error encountered.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Ring keeps the most recent events in a fixed-capacity circular buffer —
// the in-memory sink for tests and post-mortem debugging.
type Ring struct {
	evs     []Event
	next    int
	full    bool
	dropped uint64
}

// NewRing returns a ring holding at most capacity events (capacity ≥ 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{evs: make([]Event, 0, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(ev Event) {
	if !r.full {
		r.evs = append(r.evs, ev)
		if len(r.evs) == cap(r.evs) {
			r.full = true
		}
		return
	}
	r.dropped++
	r.evs[r.next] = ev
	r.next++
	if r.next == len(r.evs) {
		r.next = 0
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.evs) }

// Dropped returns how many events were overwritten by newer ones.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events oldest-first as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.evs))
	out = append(out, r.evs[r.next:]...)
	return append(out, r.evs[:r.next]...)
}
