package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sdsrp/internal/msg"
)

// feedLedger folds a hand-written event sequence.
func feedLedger(evs []Event) *Ledger {
	l := NewLedger()
	for _, ev := range evs {
		l.Emit(ev)
	}
	return l
}

func TestLedgerDeliveredPath(t *testing.T) {
	// 0 creates for 9, sprays to 3, 3 sprays to 5, 5 delivers to 9. The
	// delivery hop emits only a delivered event — no forwarded — matching
	// CommitTransfer's KindDelivery path.
	l := feedLedger([]Event{
		{T: 0, Type: MessageCreated, Msg: 1, Node: 0, Peer: 9, Size: 25000, Copies: 8},
		{T: 10, Type: MessageForwarded, Msg: 1, Node: 0, Peer: 3, Copies: 4, Kind: "spray"},
		{T: 20, Type: MessageForwarded, Msg: 1, Node: 3, Peer: 5, Copies: 2, Kind: "spray"},
		{T: 30, Type: MessageDelivered, Msg: 1, Node: 5, Peer: 9, Hops: 3, Latency: 30},
	})
	r := l.Record(1)
	if r == nil {
		t.Fatal("message 1 missing")
	}
	if r.Fate != FateDelivered {
		t.Fatalf("fate = %s, want delivered", r.Fate)
	}
	if want := []int{0, 3, 5, 9}; !reflect.DeepEqual(r.Path, want) {
		t.Errorf("path = %v, want %v", r.Path, want)
	}
	if r.Hops != 3 || r.Latency != 30 || r.DeliveredAt != 30 {
		t.Errorf("hops/latency/at = %d/%v/%v", r.Hops, r.Latency, r.DeliveredAt)
	}
	if len(r.Path)-1 != r.Hops {
		t.Errorf("path length %d inconsistent with hops %d", len(r.Path), r.Hops)
	}
	// Delivery removes the relay's copy; 0 and 3 still hold theirs.
	if r.LiveCopies != 2 {
		t.Errorf("live copies = %d, want 2 (source + node 3)", r.LiveCopies)
	}
}

func TestLedgerPathIgnoresPostDeliverySprays(t *testing.T) {
	// A spray landing on the delivering relay AFTER delivery must not
	// corrupt the reconstructed lineage.
	l := feedLedger([]Event{
		{T: 0, Type: MessageCreated, Msg: 1, Node: 0, Peer: 9, Copies: 8},
		{T: 10, Type: MessageForwarded, Msg: 1, Node: 0, Peer: 5, Copies: 4, Kind: "spray"},
		{T: 20, Type: MessageDelivered, Msg: 1, Node: 5, Peer: 9, Hops: 2, Latency: 20},
		{T: 25, Type: MessageForwarded, Msg: 1, Node: 0, Peer: 5, Copies: 2, Kind: "spray"},
	})
	r := l.Record(1)
	if want := []int{0, 5, 9}; !reflect.DeepEqual(r.Path, want) {
		t.Errorf("path = %v, want %v", r.Path, want)
	}
}

func TestLedgerHandoffTransfersCustody(t *testing.T) {
	// Direct/last-token handoff: the sender deletes its copy.
	l := feedLedger([]Event{
		{T: 0, Type: MessageCreated, Msg: 2, Node: 1, Peer: 9, Copies: 1},
		{T: 10, Type: MessageForwarded, Msg: 2, Node: 1, Peer: 4, Copies: 1, Kind: "handoff"},
	})
	r := l.Record(2)
	if r.Fate != FateStranded {
		t.Fatalf("fate = %s, want stranded", r.Fate)
	}
	if r.LiveCopies != 1 {
		t.Errorf("live copies = %d, want 1 (custody moved to node 4)", r.LiveCopies)
	}
}

func TestLedgerTransferLostRevokesReceiverCopy(t *testing.T) {
	// Black-hole semantics: the stream emits forwarded THEN transfer_lost;
	// the receiver never actually stored the copy.
	l := feedLedger([]Event{
		{T: 0, Type: MessageCreated, Msg: 3, Node: 0, Peer: 9, Copies: 4},
		{T: 10, Type: MessageForwarded, Msg: 3, Node: 0, Peer: 6, Copies: 2, Kind: "spray"},
		{T: 10, Type: TransferLost, Msg: 3, Node: 0, Peer: 6},
	})
	r := l.Record(3)
	if r.Lost != 1 {
		t.Errorf("lost = %d, want 1", r.Lost)
	}
	if r.LiveCopies != 1 {
		t.Errorf("live copies = %d, want 1 (only the source)", r.LiveCopies)
	}
}

func TestLedgerFates(t *testing.T) {
	l := feedLedger([]Event{
		// msg 1: dropped everywhere (policy last).
		{T: 0, Type: MessageCreated, Msg: 1, Node: 0, Peer: 9, Copies: 2},
		{T: 5, Type: MessageForwarded, Msg: 1, Node: 0, Peer: 2, Copies: 1, Kind: "spray"},
		{T: 8, Type: MessageDropped, Msg: 1, Node: 2, Priority: 0.25},
		{T: 9, Type: MessageDropped, Msg: 1, Node: 0, Priority: 0.5},
		// msg 2: TTL sweep last → expired.
		{T: 1, Type: MessageCreated, Msg: 2, Node: 1, Peer: 8, Copies: 1},
		{T: 50, Type: MessageExpired, Msg: 2, Node: 1},
		// msg 3: still holding a copy → stranded.
		{T: 2, Type: MessageCreated, Msg: 3, Node: 2, Peer: 7, Copies: 4},
		// msg 4: refused then aborted, still live.
		{T: 3, Type: MessageCreated, Msg: 4, Node: 3, Peer: 6, Copies: 4},
		{T: 6, Type: MessageRefused, Msg: 4, Node: 3, Peer: 5},
		{T: 7, Type: TransferAbort, Msg: 4, Node: 3, Peer: 5},
	})
	wantFates := map[msg.ID]string{1: FateDropped, 2: FateExpired, 3: FateStranded, 4: FateStranded}
	for id, want := range wantFates {
		r := l.Record(id)
		if r == nil || r.Fate != want {
			t.Errorf("msg %d fate = %v, want %s", id, r, want)
		}
	}
	r4 := l.Record(4)
	if r4.Refused != 1 || r4.Aborted != 1 {
		t.Errorf("msg 4 refused/aborted = %d/%d, want 1/1", r4.Refused, r4.Aborted)
	}
	r1 := l.Record(1)
	if len(r1.Removals) != 2 || r1.Removals[0].Priority != 0.25 {
		t.Errorf("msg 1 removals = %+v", r1.Removals)
	}
	if l.Len() != 4 {
		t.Errorf("Len = %d, want 4", l.Len())
	}
	if l.Horizon() != 50 {
		t.Errorf("Horizon = %v, want 50", l.Horizon())
	}
}

func TestLedgerDropOnArrival(t *testing.T) {
	// Receiver's policy rejects the just-forwarded copy: forwarded then
	// dropped at the receiver. The sender keeps its copy.
	l := feedLedger([]Event{
		{T: 0, Type: MessageCreated, Msg: 1, Node: 0, Peer: 9, Copies: 4},
		{T: 10, Type: MessageForwarded, Msg: 1, Node: 0, Peer: 3, Copies: 2, Kind: "spray"},
		{T: 10, Type: MessageDropped, Msg: 1, Node: 3, Priority: 0.1},
	})
	r := l.Record(1)
	if r.Fate != FateStranded || r.LiveCopies != 1 {
		t.Errorf("fate/live = %s/%d, want stranded/1", r.Fate, r.LiveCopies)
	}
}

func TestLedgerWriteJSONLStable(t *testing.T) {
	evs := []Event{
		{T: 0, Type: MessageCreated, Msg: 1, Node: 0, Peer: 9, Size: 100, Copies: 8},
		{T: 10, Type: MessageForwarded, Msg: 1, Node: 0, Peer: 3, Copies: 4, Kind: "spray"},
		{T: 30, Type: MessageDelivered, Msg: 1, Node: 3, Peer: 9, Hops: 2, Latency: 30},
		{T: 1, Type: MessageCreated, Msg: 2, Node: 5, Peer: 4, Size: 100, Copies: 8},
	}
	var a, b bytes.Buffer
	if err := feedLedger(evs).WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := feedLedger(evs).WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two folds of the same stream encode differently")
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d records, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"fate":"delivered"`) ||
		!strings.Contains(lines[0], `"path":[0,3,9]`) {
		t.Errorf("record 1 = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"fate":"stranded"`) {
		t.Errorf("record 2 = %s", lines[1])
	}
}

func TestFoldLogRoundTrip(t *testing.T) {
	evs := []Event{
		{T: 0, Type: MessageCreated, Msg: 1, Node: 0, Peer: 9, Size: 100, Copies: 8},
		{T: 5, Type: ContactUp, Node: 0, Peer: 3},
		{T: 6, Type: TransferStart, Msg: 1, Node: 0, Peer: 3, Size: 100, Kind: "spray"},
		{T: 10, Type: MessageForwarded, Msg: 1, Node: 0, Peer: 3, Copies: 4, Kind: "spray"},
		{T: 12, Type: ContactDown, Node: 0, Peer: 3},
		{T: 30, Type: MessageDelivered, Msg: 1, Node: 3, Peer: 9, Hops: 2, Latency: 30},
		{T: 40, Type: Snapshot, LiveMsgs: 1, LiveCopies: 1, Contacts: 0, Queue: 3, Used: []int64{100, 0, 0}},
	}
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	for _, ev := range evs {
		j.Emit(ev)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	l, m, err := FoldLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != uint64(len(evs)) {
		t.Errorf("Total = %d, want %d", m.Total(), len(evs))
	}
	if m.Count(Snapshot) != 1 || m.Count(ContactUp) != 1 {
		t.Errorf("counts: snapshot=%d contact_up=%d", m.Count(Snapshot), m.Count(ContactUp))
	}
	r := l.Record(1)
	if r == nil || r.Fate != FateDelivered || r.Latency != 30 {
		t.Errorf("record = %+v", r)
	}
	if len(l.Deliveries()) != 1 {
		t.Errorf("deliveries = %d, want 1", len(l.Deliveries()))
	}
}

func TestFoldLogBadLine(t *testing.T) {
	in := strings.NewReader(`{"t":1,"type":"contact_up","node":0,"peer":1}` + "\n" +
		"not json\n")
	_, _, err := FoldLog(in)
	if err == nil {
		t.Fatal("want parse error on malformed line")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q should name the offending line", err)
	}
}
